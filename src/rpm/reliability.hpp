// Deterministic reliability tracking and adaptive membership — the
// negative-UNL-style liveness layer on top of RPM (DESIGN.md §13,
// docs/FAULTS.md "Adaptive membership").
//
// The RPM excludes *malicious* proposers but says nothing about validators
// that are merely offline: with a static committee, more than f crashed
// validators stall the chain forever. rippled's Negative UNL closes this gap
// by tracking per-validator reliability on-chain and letting the network
// agree to stop counting chronically-offline validators toward quorums.
//
// The evidence stream here is exactly the committed superblock sequence —
// which slots decided 1 (the proposer contributed a delivered block) and how
// many provably-invalid transactions each decided block carried. Both are
// pure functions of the committed chain prefix, so every correct node — live,
// catch-up-syncing, or replaying after a crash — derives bit-identical
// scores, and membership changes need no extra consensus round: the chain
// itself is the agreement. (EST/AUX participation and catch-up service are
// deliberately NOT scored: they are locally-observed quantities that differ
// across nodes under message loss, so they can only ever be diagnostics.)
//
// Rules, all deterministic:
//  - each committed superblock credits contributing proposers and debits
//    absent ones (saturating integer scores, no clocks, no heartbeats);
//  - a validator whose score falls below the low-water mark joins the
//    bounded disabled list (<= floor((n-1)/4), at most one add and one
//    re-admission per superblock — rippled's churn bound); disabled
//    validators keep their proposal slot (their decided blocks are the
//    recovery evidence) but count toward no quorum and accrue no rewards;
//  - a disabled validator whose slot decided 1 for `readmit_window`
//    consecutive superblocks while its score is back above the high-water
//    mark is re-admitted (hysteresis: flapping validators stay disabled);
//  - a proposer whose decided block carries >= removal_invalid_threshold
//    invalid transactions — the RPM report predicate, i.e. the paper's
//    flooding attack — is REMOVED outright, never merely disabled (slash
//    beats disable), freeing its disabled-list slot if it held one.
//
// The MembershipView governing consensus index k is derived from commits
// <= k - kViewLag only, so every node that is allowed to run instance k
// (the validator drops consensus traffic beyond its derivable range — such
// traffic already triggers catch-up sync) uses the identical view.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/bytes.hpp"
#include "consensus/quorum.hpp"

namespace srbb::rpm {

struct ReliabilityConfig {
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  /// Saturating score band and per-superblock increments.
  std::uint32_t score_max = 8;
  std::uint32_t score_initial = 8;
  std::uint32_t credit = 1;  // slot decided 1
  std::uint32_t debit = 2;   // slot decided 0 (misses hurt twice as fast)
  /// score < low_water  -> disable candidate;
  /// score >= high_water (plus the streak) -> re-admission candidate.
  std::uint32_t low_water = 2;
  std::uint32_t high_water = 6;
  /// W consecutive contributed superblocks required for re-admission.
  std::uint32_t readmit_window = 3;
  /// A decided block with at least this many *provably* invalid
  /// transactions — invalid txs from virgin (never-funded) senders, the
  /// paper's flooding construction — is removal evidence. Benign commit-time
  /// invalidity (duplicate resends, cross-endpoint nonce/balance races)
  /// comes from funded senders and is excluded at the source
  /// (validator.cpp commit evidence), so the threshold only has to separate
  /// a real flood (hundreds per block, §V-B) from noise.
  std::uint32_t removal_invalid_threshold = 8;
};

struct MembershipEvent {
  enum class Kind : std::uint8_t {
    kDisabled = 0,
    kReadmitted = 1,
    kRemoved = 2,
  };
  Kind kind = Kind::kDisabled;
  std::uint32_t rank = 0;
  std::uint64_t index = 0;  // the commit that triggered the transition
  bool operator==(const MembershipEvent&) const = default;
};

class ReliabilityTracker {
 public:
  /// Membership for index k is a function of commits <= k - kViewLag. Two is
  /// the exact falling-behind threshold of the validator (traffic at
  /// next_commit + 2 triggers catch-up sync), so every index a node may
  /// legitimately run an instance for has a derivable view.
  static constexpr std::uint64_t kViewLag = 2;

  explicit ReliabilityTracker(const ReliabilityConfig& config);

  /// Fold one committed superblock (must be called in strictly increasing
  /// index order starting at 0). `contributed[r]` = rank r's slot decided 1;
  /// `invalid_txs[r]` = invalid transactions in rank r's decided block.
  /// Returns the membership transitions this commit caused (usually none).
  std::vector<MembershipEvent> on_superblock_committed(
      std::uint64_t index, const std::vector<bool>& contributed,
      const std::vector<std::uint32_t>& invalid_txs);

  /// The view governing consensus index `index`. Only derivable up to
  /// max_view_index(); asking beyond it is a caller bug (the validator drops
  /// such traffic instead of routing it).
  const consensus::MembershipView& view_for(std::uint64_t index) const;
  /// Highest index whose membership view is derivable from the commits seen
  /// so far: next_index() + kViewLag - 1.
  std::uint64_t max_view_index() const {
    return next_index_ + kViewLag - 1;
  }
  const consensus::MembershipView& current_view() const { return view_; }

  std::uint32_t score(std::uint32_t rank) const;
  std::uint32_t readmit_streak(std::uint32_t rank) const;
  const std::vector<MembershipEvent>& events() const { return events_; }
  std::uint64_t next_index() const { return next_index_; }
  const ReliabilityConfig& config() const { return config_; }

  /// Byte-deterministic digest of scores, streaks, statuses, and the full
  /// event history — what the chaos suite compares across nodes and seeds.
  Hash32 fingerprint() const;

 private:
  void apply_scores(const std::vector<bool>& contributed);
  std::vector<MembershipEvent> apply_removals(
      std::uint64_t index, const std::vector<std::uint32_t>& invalid_txs);
  std::vector<MembershipEvent> apply_transitions(std::uint64_t index);
  void record_view(std::uint64_t index);

  ReliabilityConfig config_;
  consensus::MembershipView genesis_view_;
  consensus::MembershipView view_;  // after the last folded commit
  std::vector<std::uint32_t> score_;
  std::vector<std::uint32_t> streak_;  // consecutive contributed superblocks
  std::uint64_t next_index_ = 0;       // commits folded so far
  /// Exact views per index (keys kViewLag .. next_index_+kViewLag-1),
  /// pruned to the window live instances can still ask for. std::map:
  /// deterministic iteration, ordered pruning.
  std::map<std::uint64_t, consensus::MembershipView> views_;
  std::vector<MembershipEvent> events_;
};

}  // namespace srbb::rpm
