// Membership and committee reconfiguration (§IV-E): candidates lock a
// deposit; every epoch a committee of n validators is drawn uniformly at
// random from the candidate set, seeded by shared randomness (e.g. the hash
// of the last block of the previous epoch), so every replica computes the
// same committee. Deposits unlock after a configurable number of epochs;
// slashed candidates are excluded permanently.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/u256.hpp"

namespace srbb::rpm {

struct CommitteeConfig {
  std::uint32_t committee_size = 4;
  /// Blocks per epoch; the committee rotates between epochs, which is what
  /// bounds a slowly-adaptive adversary (§IV-A).
  std::uint64_t epoch_length = 100;
  U256 min_deposit = U256{1'000'000};
  /// Epochs a withdrawn deposit stays locked (PoS-style recoverability).
  std::uint64_t withdraw_lock_epochs = 2;
};

class CommitteeManager {
 public:
  explicit CommitteeManager(CommitteeConfig config) : config_(config) {}

  /// Candidate applies with a deposit; false if below the minimum
  /// (Sybil resistance: identities are as expensive as deposits).
  bool add_candidate(const Address& addr, const U256& deposit);

  /// Permanently remove a slashed validator (RPM exclusion event).
  void exclude(const Address& addr);

  /// Request withdrawal at `epoch`; funds release after the lock period.
  bool request_withdraw(const Address& addr, std::uint64_t epoch);
  /// Amount withdrawable at `epoch` (0 while locked); clears the candidate.
  U256 claim_withdraw(const Address& addr, std::uint64_t epoch);

  std::uint64_t epoch_of_block(std::uint64_t block_number) const {
    return block_number / config_.epoch_length;
  }

  /// Deterministic committee for an epoch: a Fisher-Yates draw over the
  /// eligible candidates seeded by (epoch, randomness). Identical at every
  /// replica given identical candidate sets.
  std::vector<Address> committee(std::uint64_t epoch,
                                 const Hash32& randomness) const;

  bool is_candidate(const Address& addr) const {
    return candidates_.contains(addr);
  }
  std::size_t candidate_count() const { return candidates_.size(); }
  U256 deposit_of(const Address& addr) const;

 private:
  struct Candidate {
    U256 deposit;
    std::optional<std::uint64_t> withdraw_requested_epoch;
  };

  CommitteeConfig config_;
  // Ordered map: deterministic iteration for the committee draw.
  std::map<Address, Candidate> candidates_;
};

}  // namespace srbb::rpm
