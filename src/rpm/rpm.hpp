// The Reward-Penalty Mechanism of Alg. 2, implemented as a deterministic
// protocol module (the paper deploys it as a smart contract; the state
// machine is identical — see DESIGN.md for the substitution note).
//
//  - propReceived: validators invoke it for each block of a decided
//    superblock; at n-f matching invocations the proposer's deposit grows by
//    R = I - C with I = r_b + sum(fees) and C = c * |T| (§IV-F reward
//    design).
//  - report: validators report an invalid transaction inside a decided
//    block, proving membership with a Merkle proof against the certified
//    tx root; at n-f matching reports the proposer loses its whole deposit
//    (P = K[address]), the penalty is redistributed to the other validators,
//    and an exclusion event is emitted (Alg. 2 line 42) — correct validators
//    drop the culprit from future committees.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "common/u256.hpp"
#include "consensus/quorum.hpp"
#include "crypto/merkle.hpp"
#include "crypto/signature.hpp"

namespace srbb::rpm {

struct RpmConfig {
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  /// r_b: constant block reward (in wei-like units).
  U256 block_reward = U256{2'000'000};
  /// c: modelled cost of eagerly validating one transaction.
  U256 validation_cost_per_tx = U256{10};
  const crypto::SignatureScheme* scheme = &crypto::SignatureScheme::ed25519();
};

/// What a validator passes to propReceived/report: the block certificate
/// Cert_B plus the summary data the mechanism charges/rewards on.
struct BlockSummary {
  crypto::PublicKey proposer_pubkey{};   // P_k
  crypto::Signature signed_tx_root{};    // (h_t)_Sk
  Hash32 tx_root;                        // hash(T)
  std::uint32_t tx_count = 0;            // |T|
  U256 total_fees;                       // sum of tx fees in the block
};

struct SlashEvent {
  Address validator;
  U256 penalty;
  std::uint64_t block_number = 0;
};

/// Adaptive-membership context for one propReceived/report invocation
/// (DESIGN.md §13): the effective quorums of the MembershipView governing
/// the decided superblock, plus whether the proposer may accrue rewards
/// (disabled validators accrue none). All correct callers derive the same
/// view for a given index, so thresholds stay consistent per key. Null
/// context = the static config (n, f) — the pre-membership behaviour.
struct QuorumContext {
  consensus::QuorumParams quorums{};
  bool proposer_reward_eligible = true;
};

class RewardPenaltyMechanism {
 public:
  explicit RewardPenaltyMechanism(RpmConfig config) : config_(config) {}

  /// Register a committee member and its deposit. Address must match the
  /// key the validator proposes blocks with.
  void register_validator(const Address& addr, const U256& deposit);

  bool is_validator(const Address& addr) const {
    return deposits_.contains(addr);
  }
  bool is_excluded(const Address& addr) const {
    return excluded_.contains(addr);
  }
  U256 deposit_of(const Address& addr) const;

  /// Alg. 2 propReceived. `caller` is the invoking validator's address;
  /// (slot, round) identify the block position in the decided superblock.
  /// Returns true when this invocation was counted.
  bool prop_received(const Address& caller, const BlockSummary& block,
                     std::uint32_t slot, std::uint64_t round,
                     const QuorumContext* ctx = nullptr);

  /// Alg. 2 report. `proof` shows `invalid_tx` under `block.tx_root`.
  /// Returns the slash event when this report crossed the n-f threshold.
  std::optional<SlashEvent> report(const Address& caller,
                                   const BlockSummary& block,
                                   std::uint64_t block_number,
                                   const Hash32& invalid_tx,
                                   const crypto::MerkleProof& proof,
                                   const QuorumContext* ctx = nullptr);

  const std::vector<SlashEvent>& slash_events() const { return events_; }

  /// Total rewards credited so far (diagnostics / tests).
  U256 total_rewards_paid() const { return total_rewards_; }

 private:
  /// Validate Cert_B: proposer is a registered validator and the signature
  /// over the tx root verifies.
  bool certificate_valid(const BlockSummary& block, Address* proposer) const;

  RpmConfig config_;
  std::unordered_map<Address, U256, AddressHasher> deposits_;
  std::unordered_set<Address, AddressHasher> excluded_;

  struct Key {
    Hash32 digest;
    bool operator==(const Key&) const = default;
  };
  struct KeyHasher {
    std::size_t operator()(const Key& k) const { return Hash32Hasher{}(k.digest); }
  };

  // count[hash(P_k, T, i, r)] -> distinct invokers (Alg. 2 line 21).
  std::unordered_map<Key, std::set<Address>, KeyHasher> prop_counts_;
  std::unordered_set<Key, KeyHasher> rewarded_;
  // count[hash(P_k, N_B, t)] -> distinct reporters (Alg. 2 line 36).
  std::unordered_map<Key, std::set<Address>, KeyHasher> report_counts_;
  std::unordered_set<Key, KeyHasher> slashed_keys_;

  std::vector<SlashEvent> events_;
  U256 total_rewards_;
};

}  // namespace srbb::rpm
