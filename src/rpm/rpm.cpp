#include "rpm/rpm.hpp"

#include "crypto/keccak.hpp"
#include "crypto/sha256.hpp"

namespace srbb::rpm {

namespace {

Hash32 digest_of(std::initializer_list<BytesView> parts) {
  crypto::Sha256 h;
  for (const BytesView part : parts) h.update(part);
  return h.finish();
}

Bytes be64(std::uint64_t v) {
  Bytes out(8);
  put_be64(out.data(), v);
  return out;
}

}  // namespace

void RewardPenaltyMechanism::register_validator(const Address& addr,
                                                const U256& deposit) {
  deposits_[addr] = deposit;
}

U256 RewardPenaltyMechanism::deposit_of(const Address& addr) const {
  const auto it = deposits_.find(addr);
  return it == deposits_.end() ? U256::zero() : it->second;
}

bool RewardPenaltyMechanism::certificate_valid(const BlockSummary& block,
                                               Address* proposer) const {
  const Address addr = crypto::address_from_pubkey(
      BytesView{block.proposer_pubkey.data(), block.proposer_pubkey.size()});
  // Alg. 2 line 16: the derived address must belong to the validator set V.
  if (!deposits_.contains(addr)) return false;
  // Alg. 2 line 19-20: recover h_t from (h_t)_Sk and compare with hash(T).
  if (!config_.scheme->verify(block.tx_root.view(), block.signed_tx_root,
                              block.proposer_pubkey)) {
    return false;
  }
  *proposer = addr;
  return true;
}

bool RewardPenaltyMechanism::prop_received(const Address& caller,
                                           const BlockSummary& block,
                                           std::uint32_t slot,
                                           std::uint64_t round,
                                           const QuorumContext* ctx) {
  if (!deposits_.contains(caller)) return false;  // only validators invoke

  Address proposer;
  if (!certificate_valid(block, &proposer)) return false;

  // Alg. 2 line 21: count keyed by hash(P_k, T, i, r); a caller counts once
  // (the set models both the invoked[] map and the duplicate-parse checker).
  const Key key{digest_of({BytesView{block.proposer_pubkey.data(), 32},
                           block.tx_root.view(),
                           BytesView{be64(slot)},
                           BytesView{be64(round)}})};
  auto& invokers = prop_counts_[key];
  if (!invokers.insert(caller).second) return false;  // duplicate invocation

  // Threshold over the effective committee of the governing view (n'-f'),
  // or the static n-f when no adaptive-membership context is supplied.
  const consensus::QuorumParams quorums =
      ctx ? ctx->quorums : consensus::QuorumParams{config_.n, config_.f};
  if (invokers.size() >= quorums.supermajority() && !rewarded_.contains(key)) {
    rewarded_.insert(key);
    // A disabled proposer's block can still decide 1 (its slot keeps running
    // — that is its re-admission evidence), but it accrues no reward while
    // disabled. The key is consumed either way so a later re-invocation
    // cannot double-count.
    if (!ctx || ctx->proposer_reward_eligible) {
      // Reward design (§IV-F c): R = I - C, I = r_b + sum(fees),
      // C = c * |T|. Negative rewards clamp to zero growth (cannot happen
      // with sane parameters; guarded for robustness).
      const U256 incentive = config_.block_reward + block.total_fees;
      const U256 cost = config_.validation_cost_per_tx * U256{block.tx_count};
      if (incentive >= cost) {
        const U256 reward = incentive - cost;
        deposits_[proposer] += reward;
        total_rewards_ += reward;
      }
    }
  }
  return true;
}

std::optional<SlashEvent> RewardPenaltyMechanism::report(
    const Address& caller, const BlockSummary& block,
    std::uint64_t block_number, const Hash32& invalid_tx,
    const crypto::MerkleProof& proof, const QuorumContext* ctx) {
  if (!deposits_.contains(caller)) return std::nullopt;

  Address proposer;
  if (!certificate_valid(block, &proposer)) return std::nullopt;
  // Already slashed and excluded: deposit is zero, nothing more to take.
  if (excluded_.contains(proposer)) return std::nullopt;
  // Alg. 2 line 32: t must be in T — checked against the certified tx root,
  // so false reports naming a transaction outside the block are rejected.
  if (!crypto::merkle_verify(invalid_tx, proof, block.tx_root)) {
    return std::nullopt;
  }

  const Key key{digest_of({BytesView{block.proposer_pubkey.data(), 32},
                           BytesView{be64(block_number)},
                           invalid_tx.view()})};
  if (slashed_keys_.contains(key)) return std::nullopt;  // already punished
  auto& reporters = report_counts_[key];
  if (!reporters.insert(caller).second) return std::nullopt;  // duplicate

  const consensus::QuorumParams quorums =
      ctx ? ctx->quorums : consensus::QuorumParams{config_.n, config_.f};
  if (reporters.size() < quorums.supermajority()) return std::nullopt;
  slashed_keys_.insert(key);

  // Alg. 2 lines 38-41: P = K[address]; zero the deposit and share P among
  // the other validators.
  const U256 penalty = deposits_[proposer];
  deposits_[proposer] = U256::zero();
  excluded_.insert(proposer);
  const std::uint64_t others = deposits_.size() > 1
                                   ? static_cast<std::uint64_t>(deposits_.size() - 1)
                                   : 1;
  const U256 share = penalty / U256{others};
  for (auto& [addr, deposit] : deposits_) {
    if (addr != proposer) deposit += share;
  }

  SlashEvent event{proposer, penalty, block_number};
  events_.push_back(event);
  return event;
}

}  // namespace srbb::rpm
