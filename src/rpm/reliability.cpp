#include "rpm/reliability.hpp"

#include <algorithm>

#include "common/invariant.hpp"
#include "crypto/sha256.hpp"

namespace srbb::rpm {

using consensus::MembershipView;
using consensus::MemberStatus;

ReliabilityTracker::ReliabilityTracker(const ReliabilityConfig& config)
    : config_(config),
      genesis_view_(config.n, config.f),
      view_(config.n, config.f),
      score_(config.n, config.score_initial),
      streak_(config.n, 0) {
  SRBB_CHECK(config_.n > 0);
  SRBB_CHECK(config_.score_initial <= config_.score_max);
  SRBB_CHECK(config_.low_water <= config_.high_water);
  SRBB_CHECK(config_.high_water <= config_.score_max);
  SRBB_CHECK(config_.readmit_window > 0);
}

void ReliabilityTracker::apply_scores(const std::vector<bool>& contributed) {
  for (std::uint32_t rank = 0; rank < config_.n; ++rank) {
    if (view_.removed(rank)) continue;  // out for good; scores frozen
    if (rank < contributed.size() && contributed[rank]) {
      score_[rank] = std::min(config_.score_max, score_[rank] + config_.credit);
      ++streak_[rank];
    } else {
      score_[rank] = score_[rank] > config_.debit
                         ? score_[rank] - config_.debit
                         : 0;
      streak_[rank] = 0;
    }
  }
}

std::vector<MembershipEvent> ReliabilityTracker::apply_removals(
    std::uint64_t index, const std::vector<std::uint32_t>& invalid_txs) {
  std::vector<MembershipEvent> out;
  for (std::uint32_t rank = 0; rank < config_.n; ++rank) {
    if (view_.removed(rank)) continue;
    if (rank >= invalid_txs.size() ||
        invalid_txs[rank] < config_.removal_invalid_threshold) {
      continue;
    }
    // Slash beats disable: a flooding proposer is removed outright, and a
    // disabled one forfeits its disabled-list slot (freeing cap headroom).
    view_.set_status(rank, MemberStatus::kRemoved);
    score_[rank] = 0;
    streak_[rank] = 0;
    out.push_back({MembershipEvent::Kind::kRemoved, rank, index});
  }
  return out;
}

std::vector<MembershipEvent> ReliabilityTracker::apply_transitions(
    std::uint64_t index) {
  std::vector<MembershipEvent> out;

  // Re-admission first (at most one per superblock): the freed quorum weight
  // is strictly good for safety margins, so it takes priority over adding a
  // new disable — and it lets a recovery and a fresh failure swap places in
  // one commit even when the disabled list is saturated.
  std::uint32_t readmit = config_.n;
  for (std::uint32_t rank = 0; rank < config_.n; ++rank) {
    if (!view_.disabled(rank)) continue;
    if (score_[rank] < config_.high_water) continue;
    if (streak_[rank] < config_.readmit_window) continue;
    readmit = rank;  // lowest qualifying rank wins (deterministic tie-break)
    break;
  }
  if (readmit < config_.n) {
    view_.set_status(readmit, MemberStatus::kActive);
    out.push_back({MembershipEvent::Kind::kReadmitted, readmit, index});
  }

  // One disable per superblock, bounded by the Negative-UNL cap. Candidate
  // choice is deterministic: lowest score, then lowest rank.
  if (view_.disabled_count() < MembershipView::disable_cap(config_.n)) {
    std::uint32_t worst = config_.n;
    for (std::uint32_t rank = 0; rank < config_.n; ++rank) {
      if (!view_.counts(rank)) continue;
      if (score_[rank] >= config_.low_water) continue;
      if (worst == config_.n || score_[rank] < score_[worst]) worst = rank;
    }
    if (worst < config_.n) {
      view_.set_status(worst, MemberStatus::kDisabled);
      out.push_back({MembershipEvent::Kind::kDisabled, worst, index});
    }
  }
  return out;
}

void ReliabilityTracker::record_view(std::uint64_t index) {
  views_[index + kViewLag] = view_;
  // Live instances only ever ask for views within a small window behind the
  // commit frontier (the validator prunes instances older than that); keep a
  // comfortable multiple and drop the rest.
  constexpr std::uint64_t kKeep = 8;
  while (!views_.empty() &&
         views_.begin()->first + kKeep < index + kViewLag) {
    views_.erase(views_.begin());
  }
}

std::vector<MembershipEvent> ReliabilityTracker::on_superblock_committed(
    std::uint64_t index, const std::vector<bool>& contributed,
    const std::vector<std::uint32_t>& invalid_txs) {
  SRBB_CHECK(index == next_index_);  // strict order keeps views a pure
  ++next_index_;                     // function of the committed prefix

  std::vector<MembershipEvent> out = apply_removals(index, invalid_txs);
  apply_scores(contributed);
  std::vector<MembershipEvent> transitions = apply_transitions(index);
  out.insert(out.end(), transitions.begin(), transitions.end());

  events_.insert(events_.end(), out.begin(), out.end());
  record_view(index);
  return out;
}

const MembershipView& ReliabilityTracker::view_for(std::uint64_t index) const {
  if (index < kViewLag) return genesis_view_;  // nothing committed yet counts
  const auto it = views_.find(index);
  // Callers must stay within max_view_index(); the validator enforces this
  // by dropping (and catch-up-syncing on) traffic beyond it.
  SRBB_CHECK(it != views_.end());
  return it->second;
}

std::uint32_t ReliabilityTracker::score(std::uint32_t rank) const {
  SRBB_CHECK(rank < config_.n);
  return score_[rank];
}

std::uint32_t ReliabilityTracker::readmit_streak(std::uint32_t rank) const {
  SRBB_CHECK(rank < config_.n);
  return streak_[rank];
}

Hash32 ReliabilityTracker::fingerprint() const {
  crypto::Sha256 digest;
  const auto fold_u64 = [&digest](std::uint64_t value) {
    std::uint8_t bytes[8];
    put_be64(bytes, value);
    digest.update(BytesView{bytes, 8});
  };
  fold_u64(config_.n);
  fold_u64(config_.f);
  fold_u64(next_index_);
  for (std::uint32_t rank = 0; rank < config_.n; ++rank) {
    fold_u64(score_[rank]);
    fold_u64(streak_[rank]);
    fold_u64(static_cast<std::uint64_t>(view_.status(rank)));
  }
  for (const MembershipEvent& event : events_) {
    fold_u64(static_cast<std::uint64_t>(event.kind));
    fold_u64(event.rank);
    fold_u64(event.index);
  }
  return digest.finish();
}

}  // namespace srbb::rpm
