#include "rpm/committee.hpp"

#include "common/rng.hpp"
#include "crypto/sha256.hpp"

namespace srbb::rpm {

bool CommitteeManager::add_candidate(const Address& addr, const U256& deposit) {
  if (deposit < config_.min_deposit) return false;
  auto [it, inserted] = candidates_.try_emplace(addr, Candidate{deposit, {}});
  if (!inserted) {
    it->second.deposit += deposit;  // top-up
    it->second.withdraw_requested_epoch.reset();
  }
  return true;
}

void CommitteeManager::exclude(const Address& addr) { candidates_.erase(addr); }

bool CommitteeManager::request_withdraw(const Address& addr,
                                        std::uint64_t epoch) {
  const auto it = candidates_.find(addr);
  if (it == candidates_.end()) return false;
  if (it->second.withdraw_requested_epoch.has_value()) return false;
  it->second.withdraw_requested_epoch = epoch;
  return true;
}

U256 CommitteeManager::claim_withdraw(const Address& addr,
                                      std::uint64_t epoch) {
  const auto it = candidates_.find(addr);
  if (it == candidates_.end()) return U256::zero();
  const auto requested = it->second.withdraw_requested_epoch;
  if (!requested.has_value()) return U256::zero();
  if (epoch < *requested + config_.withdraw_lock_epochs) return U256::zero();
  const U256 amount = it->second.deposit;
  candidates_.erase(it);
  return amount;
}

U256 CommitteeManager::deposit_of(const Address& addr) const {
  const auto it = candidates_.find(addr);
  return it == candidates_.end() ? U256::zero() : it->second.deposit;
}

std::vector<Address> CommitteeManager::committee(
    std::uint64_t epoch, const Hash32& randomness) const {
  std::vector<Address> eligible;
  eligible.reserve(candidates_.size());
  for (const auto& [addr, candidate] : candidates_) {
    // Candidates mid-withdrawal stay eligible until funds release; this
    // keeps their stake slashable for the lock period.
    eligible.push_back(addr);
  }
  if (eligible.empty()) return eligible;

  // Seed from (epoch, randomness) so all replicas agree.
  crypto::Sha256 h;
  std::uint8_t epoch_be[8];
  put_be64(epoch_be, epoch);
  h.update(BytesView{epoch_be, 8});
  h.update(randomness.view());
  const Hash32 seed = h.finish();
  Rng rng{get_be64(seed.data.data())};

  // Partial Fisher-Yates: draw committee_size entries.
  const std::size_t take =
      std::min<std::size_t>(config_.committee_size, eligible.size());
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t j = i + rng.next_below(eligible.size() - i);
    std::swap(eligible[i], eligible[j]);
  }
  eligible.resize(take);
  return eligible;
}

}  // namespace srbb::rpm
