#include "consensus/superblock.hpp"

#include <algorithm>

#include "common/invariant.hpp"

namespace srbb::consensus {

SuperblockInstance::SuperblockInstance(const SuperblockConfig& config,
                                       std::uint64_t index,
                                       SuperblockCallbacks callbacks)
    : config_(config), index_(index), cb_(std::move(callbacks)) {
  // An unset view means the static committee; quorums then reduce to the
  // classic (n, f) thresholds and counted() passes every rank.
  if (config_.membership.committee_n() == 0) {
    config_.membership = MembershipView(config_.n, config_.f);
  }
  SRBB_CHECK(config_.membership.committee_n() == config_.n);
  quorums_ = config_.membership.quorums();
  // Every slot keeps its binary instance regardless of membership status:
  // slots_ is indexed by committee rank, only the quorum sizes shrink.
  slots_.resize(config_.n);
}

BinaryConsensus& SuperblockInstance::bin_for(std::uint32_t proposer) {
  ProposalSlot& slot = slots_[proposer];
  if (!slot.bin) {
    BinaryConsensus::Callbacks bin_cb;
    bin_cb.send_est = [this, proposer](std::uint32_t round, bool value) {
      auto msg = std::make_shared<BinMsg>();
      msg->index = index_;
      msg->proposer = proposer;
      msg->round = round;
      msg->phase = BinPhase::kEst;
      msg->value = value;
      cb_.broadcast(msg);
      // Self-delivery: our own EST counts toward our quorums — unless we are
      // not a counting member, in which case peers ignore it and so must we.
      if (counted(config_.self)) {
        slots_[proposer].bin->on_est(config_.self, round, value);
      }
    };
    bin_cb.send_aux = [this, proposer](std::uint32_t round, bool value) {
      auto msg = std::make_shared<BinMsg>();
      msg->index = index_;
      msg->proposer = proposer;
      msg->round = round;
      msg->phase = BinPhase::kAux;
      msg->value = value;
      cb_.broadcast(msg);
      if (counted(config_.self)) {
        slots_[proposer].bin->on_aux(config_.self, round, value);
      }
    };
    bin_cb.send_decided = [this, proposer](bool value) {
      auto msg = std::make_shared<DecidedMsg>();
      msg->index = index_;
      msg->proposer = proposer;
      msg->value = value;
      cb_.broadcast(msg);
    };
    bin_cb.send_decided_to = [this, proposer](std::uint32_t peer, bool value) {
      if (peer == config_.self) return;
      auto msg = std::make_shared<DecidedMsg>();
      msg->index = index_;
      msg->proposer = proposer;
      msg->value = value;
      cb_.send_to(peer, msg);
    };
    bin_cb.on_decide = [this, proposer](bool value) {
      ProposalSlot& s = slots_[proposer];
      s.bin_decided = true;
      s.bin_value = value;
      SRBB_TRACE(config_.trace, trace_now(), 0, config_.self, "consensus",
                 "consensus.bin_decided", "proposer", proposer, "value",
                 value ? 1 : 0);
      if (value && !slot_ready(s)) request_pull(proposer);
      maybe_complete();
    };
    slot.bin = std::make_unique<BinaryConsensus>(
        quorums_.n, quorums_.f, std::move(bin_cb));
  }
  return *slot.bin;
}

void SuperblockInstance::arm_timer(SimDuration delay,
                                   std::function<void()> fn) {
  cb_.set_timer(delay, [weak = std::weak_ptr<bool>(alive_),
                        fn = std::move(fn)] {
    if (weak.lock()) fn();
  });
}

void SuperblockInstance::begin(txn::BlockPtr own_proposal) {
  if (began_) return;
  began_ = true;
  SRBB_TRACE(config_.trace, trace_now(), 0, config_.self, "consensus",
             "consensus.begin", "index", index_, "own",
             own_proposal != nullptr ? 1 : 0);
  if (cb_.expect_proposal) {
    for (std::uint32_t i = 0; i < config_.n; ++i) {
      if (!slots_[i].bin_started && !cb_.expect_proposal(i)) {
        start_bin(i, false);
      }
    }
  }
  if (own_proposal != nullptr) {
    own_proposal_ = own_proposal;
    auto msg = std::make_shared<ProposeMsg>();
    msg->index = index_;
    msg->block = own_proposal;
    cb_.broadcast(msg);
    on_propose(config_.self, *msg);  // self-delivery
  }
  arm_timer(config_.proposal_timeout, [this] { on_proposal_timeout(); });
  if (config_.rebroadcast_interval != 0) {
    arm_timer(config_.rebroadcast_interval, [this] { on_rebroadcast_timer(); });
  }
}

void SuperblockInstance::handle(std::uint32_t from,
                                const sim::MessagePtr& message) {
  if (const auto* propose = dynamic_cast<const ProposeMsg*>(message.get())) {
    on_propose(from, *propose);
  } else if (const auto* echo = dynamic_cast<const EchoMsg*>(message.get())) {
    on_echo(from, *echo);
  } else if (const auto* pull = dynamic_cast<const PullMsg*>(message.get())) {
    on_pull(from, *pull);
  } else if (const auto* bin = dynamic_cast<const BinMsg*>(message.get())) {
    on_bin_msg(from, *bin);
  } else if (const auto* dec = dynamic_cast<const DecidedMsg*>(message.get())) {
    on_decided_msg(from, *dec);
  }
}

void SuperblockInstance::on_propose(std::uint32_t from, const ProposeMsg& msg) {
  if (msg.block == nullptr) return;
  const std::uint64_t proposer64 = msg.block->header.proposer;
  if (proposer64 >= config_.n) return;
  const auto proposer = static_cast<std::uint32_t>(proposer64);
  // Only the proposer itself may push its proposal unsolicited; anyone may
  // answer a PULL, which also lands here.
  (void)from;
  ProposalSlot& slot = slots_[proposer];
  const Hash32 block_hash = msg.block->hash();
  if (slot.delivered_hash.has_value() && *slot.delivered_hash != block_hash) {
    return;  // body does not match the echo-quorum hash
  }
  if (slot.block != nullptr) return;  // first valid body wins
  // Discard blocks with invalid headers before consensus (Alg. 1 line 16).
  if (!txn::verify_block_certificate(*msg.block, *config_.scheme)) return;
  if (cb_.validate_header && !cb_.validate_header(*msg.block)) return;
  if (msg.block->header.index != index_) return;

  slot.block = msg.block;
  if (!slot.echoed) {
    slot.echoed = true;
    slot.echoed_hash = block_hash;
    auto echo = std::make_shared<EchoMsg>();
    echo->index = index_;
    echo->proposer = proposer;
    echo->block_hash = block_hash;
    cb_.broadcast(echo);
    record_echo(proposer, config_.self, block_hash);
  }
  // Body may have been the missing piece for delivery/completion.
  if (slot.delivered_hash.has_value() && *slot.delivered_hash == block_hash) {
    if (!slot.bin_started && !timeout_fired_) start_bin(proposer, true);
    maybe_complete();
  }
}

void SuperblockInstance::record_echo(std::uint32_t proposer, std::uint32_t from,
                                     const Hash32& hash) {
  SRBB_CHECK(proposer < config_.n && from < config_.n);
  // Only counting members contribute to echo quorums. This includes our own
  // echo when we are disabled: we still broadcast it (it is useful PULL
  // collateral) but must not count it, or our delivery quorum would run one
  // ahead of every member's.
  if (!counted(from)) return;
  ProposalSlot& slot = slots_[proposer];
  auto& senders = slot.echoes[hash];
  senders.insert(from);
  // Quorum sizes are bounded by the validator set; more echoers than ranks
  // means sender accounting is corrupt and every quorum below is suspect.
  SRBB_CHECK(senders.size() <= config_.n);

  // Bracha amplification: f+1 echoes for a hash we have not echoed -> echo
  // it too (without needing the body), so every correct node reaches the
  // delivery quorum when any does.
  if (!slot.echoed && senders.size() >= quorums_.amplify()) {
    slot.echoed = true;
    slot.echoed_hash = hash;
    auto echo = std::make_shared<EchoMsg>();
    echo->index = index_;
    echo->proposer = proposer;
    echo->block_hash = hash;
    cb_.broadcast(echo);
    record_echo(proposer, config_.self, hash);
    return;  // recursion handled the quorum check
  }

  if (!slot.delivered_hash.has_value() &&
      senders.size() >= quorums_.supermajority()) {
    // Quorum intersection makes this hash unique for the slot.
    slot.delivered_hash = hash;
    const bool have_body =
        slot.block != nullptr && slot.block->hash() == hash;
    if (have_body) {
      if (!slot.bin_started && !timeout_fired_) start_bin(proposer, true);
    } else if (slot.block != nullptr) {
      slot.block = nullptr;  // stored body contradicts the quorum hash
    }
    if (slot.bin_decided && slot.bin_value && !slot_ready(slot)) {
      request_pull(proposer);
    }
    maybe_complete();
  }
}

void SuperblockInstance::on_echo(std::uint32_t from, const EchoMsg& msg) {
  if (msg.proposer >= config_.n) return;
  if (from >= config_.n) return;  // not a validator rank: ignore
  record_echo(msg.proposer, from, msg.block_hash);
}

void SuperblockInstance::on_pull(std::uint32_t from, const PullMsg& msg) {
  if (msg.proposer >= config_.n) return;
  const ProposalSlot& slot = slots_[msg.proposer];
  if (slot.block == nullptr) return;
  auto reply = std::make_shared<ProposeMsg>();
  reply->index = index_;
  reply->block = slot.block;
  cb_.send_to(from, reply);
  // The puller may be missing ECHOes as well as the body (slot readiness
  // requires the quorum); re-assert ours so a node that rejoined after the
  // echo phase can still assemble one. Echoes are idempotent per sender.
  if (slot.echoed && slot.echoed_hash.has_value()) {
    auto echo = std::make_shared<EchoMsg>();
    echo->index = index_;
    echo->proposer = msg.proposer;
    echo->block_hash = *slot.echoed_hash;
    cb_.send_to(from, echo);
  }
}

void SuperblockInstance::on_bin_msg(std::uint32_t from, const BinMsg& msg) {
  if (msg.proposer >= config_.n) return;
  if (!counted(from)) return;  // non-members feed no quorum
  BinaryConsensus& bin = bin_for(msg.proposer);
  // A peer's EST can arrive before our own instance started; the binary
  // machine buffers per-round state, and start() later folds it in.
  if (msg.phase == BinPhase::kEst) {
    bin.on_est(from, msg.round, msg.value);
  } else {
    bin.on_aux(from, msg.round, msg.value);
  }
}

void SuperblockInstance::on_decided_msg(std::uint32_t from,
                                        const DecidedMsg& msg) {
  if (msg.proposer >= config_.n) return;
  if (!counted(from)) return;  // adoption quorum counts members only
  bin_for(msg.proposer).on_decided(from, msg.value);
}

void SuperblockInstance::on_proposal_timeout() {
  if (timeout_fired_ || completed_) return;
  timeout_fired_ = true;
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    if (!slots_[i].bin_started) {
      const bool delivered = slot_ready(slots_[i]);
      start_bin(i, delivered);
    }
  }
}

void SuperblockInstance::on_rebroadcast_timer() {
  if (completed_) return;  // done; let the timer chain die
  rebroadcast();
  arm_timer(config_.rebroadcast_interval, [this] { on_rebroadcast_timer(); });
}

void SuperblockInstance::rebroadcast() {
  // Everything re-sent here is idempotent at the receiver (first-body-wins,
  // echo sender sets, per-round EST/AUX sets, DECIDED f+1 sets), so the only
  // cost of a redundant rebroadcast is bandwidth. This is what lets a round
  // stranded by message loss — or split by a partition — finish after the
  // network heals: the lost PROPOSE/ECHO/EST/AUX/DECIDED messages are simply
  // sent again.
  if (own_proposal_ != nullptr &&
      !slots_[config_.self].delivered_hash.has_value()) {
    auto msg = std::make_shared<ProposeMsg>();
    msg->index = index_;
    msg->block = own_proposal_;
    cb_.broadcast(msg);
  }
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    ProposalSlot& slot = slots_[i];
    if (slot.echoed && slot.echoed_hash.has_value()) {
      auto echo = std::make_shared<EchoMsg>();
      echo->index = index_;
      echo->proposer = i;
      echo->block_hash = *slot.echoed_hash;
      cb_.broadcast(echo);
    }
    if (slot.bin != nullptr && slot.bin->started()) slot.bin->rebroadcast();
  }
}

void SuperblockInstance::start_bin(std::uint32_t proposer, bool input) {
  ProposalSlot& slot = slots_[proposer];
  if (slot.bin_started) return;
  slot.bin_started = true;
  bin_for(proposer).start(input);
}

bool SuperblockInstance::slot_ready(const ProposalSlot& slot) const {
  return slot.delivered_hash.has_value() && slot.block != nullptr &&
         slot.block->hash() == *slot.delivered_hash;
}

bool SuperblockInstance::quorum_certified(const ProposalSlot& slot) const {
  if (!slot.delivered_hash.has_value()) return false;
  const auto it = slot.echoes.find(*slot.delivered_hash);
  return it != slot.echoes.end() &&
         it->second.size() >= quorums_.supermajority();
}

void SuperblockInstance::request_pull(std::uint32_t proposer) {
  ProposalSlot& slot = slots_[proposer];
  if (slot.pulling || completed_) return;
  slot.pulling = true;
  SRBB_TRACE(config_.trace, trace_now(), 0, config_.self, "consensus",
             "consensus.pull", "proposer", proposer);
  // Ask every known echoer (at least one correct node holds the body when a
  // binary instance decided 1); retry until the body lands.
  auto attempt = std::make_shared<std::function<void()>>();
  slot.pull_attempt = attempt;  // lifetime bound to the slot, not itself
  const std::weak_ptr<std::function<void()>> weak_attempt = attempt;
  *attempt = [this, proposer, weak_attempt] {
    // Weak capture: a self-referencing shared_ptr would cycle and leak one
    // closure per pull (found by the LeakSanitizer leg of the matrix).
    const auto self_fn = weak_attempt.lock();
    if (!self_fn) return;  // instance/slot gone
    ProposalSlot& s = slots_[proposer];
    if (completed_ || slot_ready(s)) return;
    auto pull = std::make_shared<PullMsg>();
    pull->index = index_;
    pull->proposer = proposer;
    const std::uint32_t attempt_no = s.pull_attempt_count++;
    // Target the delivered hash's echoers when the quorum is known; they
    // claimed the body at echo time.
    std::vector<std::uint32_t> candidates;
    if (s.delivered_hash.has_value()) {
      const auto quorum = s.echoes.find(*s.delivered_hash);
      if (quorum != s.echoes.end()) {
        for (const std::uint32_t peer : quorum->second) {
          if (peer != config_.self) candidates.push_back(peer);
        }
      }
    }
    if (candidates.empty() || attempt_no % 4 == 3) {
      // Either readiness still needs echoes too (a node that rejoined after
      // the echo phase may hold neither body nor quorum — replies carry the
      // replier's echo alongside the body), or several targeted rounds went
      // unanswered: ask everyone.
      cb_.broadcast(pull);
    } else {
      // Rotate through the quorum's echoers across retries. An echoer can
      // itself have lost the body since echoing (crash wipe, or a conflicting
      // re-proposal discarded against the quorum hash), so a static
      // first-f-plus-one choice can starve forever even though some correct
      // node still holds the block.
      const std::size_t ask =
          std::min<std::size_t>(candidates.size(), quorums_.adoption());
      for (std::size_t i = 0; i < ask; ++i) {
        cb_.send_to(candidates[(attempt_no + i) % candidates.size()], pull);
      }
    }
    arm_timer(config_.pull_retry, *self_fn);
  };
  (*attempt)();
}

std::uint32_t SuperblockInstance::decided_count() const {
  std::uint32_t count = 0;
  for (const ProposalSlot& slot : slots_) count += slot.bin_decided ? 1 : 0;
  return count;
}

std::uint32_t SuperblockInstance::ones_decided() const {
  std::uint32_t count = 0;
  for (const ProposalSlot& slot : slots_) {
    count += (slot.bin_decided && slot.bin_value) ? 1 : 0;
  }
  return count;
}

std::vector<txn::BlockPtr> SuperblockInstance::undecided_blocks() const {
  std::vector<txn::BlockPtr> out;
  for (const ProposalSlot& slot : slots_) {
    if (slot.bin_decided && !slot.bin_value && slot.block != nullptr) {
      out.push_back(slot.block);
    }
  }
  return out;
}

SuperblockInstance::SlotDebug SuperblockInstance::slot_debug(
    std::uint32_t proposer) const {
  SlotDebug out;
  if (proposer >= config_.n) return out;
  const ProposalSlot& slot = slots_[proposer];
  out.bin_decided = slot.bin_decided;
  out.bin_value = slot.bin_value;
  out.has_block = slot.block != nullptr;
  out.delivered = slot.delivered_hash.has_value();
  out.pulling = slot.pulling;
  for (const auto& [hash, senders] : slot.echoes) {
    out.echoers = std::max(out.echoers, senders.size());
  }
  out.bin_started = slot.bin_started;
  if (slot.bin != nullptr) {
    out.bin_round = slot.bin->round();
    out.decided_votes[0] = slot.bin->decided_votes(false);
    out.decided_votes[1] = slot.bin->decided_votes(true);
  }
  return out;
}

void SuperblockInstance::maybe_complete() {
  if (completed_) return;
  std::vector<txn::BlockPtr> blocks;
  for (std::uint32_t i = 0; i < config_.n; ++i) {
    const ProposalSlot& slot = slots_[i];
    if (!slot.bin_decided) return;
    if (slot.bin_value) {
      if (!slot_ready(slot)) return;  // body still being pulled
      // Every included block's delivered hash must be backed by its n-f echo
      // quorum — the certificate the reliable-broadcast stage promised.
      SRBB_PARANOID(quorum_certified(slot));
      blocks.push_back(slot.block);
    }
  }
  completed_ = true;
  SRBB_TRACE(config_.trace, trace_now(), 0, config_.self, "consensus",
             "consensus.decide", "index", index_, "ones", blocks.size());
  cb_.on_superblock(std::move(blocks));
}

}  // namespace srbb::consensus
