// Red Belly-style superblock consensus for one index k (§IV-C stage 2):
//
//  1. every validator reliably broadcasts its block proposal b_i
//     (PROPOSE + hash ECHO with Bracha-style amplification on f+1 echoes;
//     n-f echoes fix the unique hash for proposer i);
//  2. one binary DBFT instance per proposer decides whether b_i enters the
//     superblock (input 1 iff the proposal was delivered before the local
//     proposal timeout);
//  3. the decided superblock is the set of blocks whose instance decided 1,
//     ordered by proposer id. Nodes that decided 1 without holding the block
//     body PULL it from an echoer.
//
// Like BinaryConsensus this is a pure state machine driven by callbacks, so
// it can be unit tested without a network and reused by both the SRBB node
// and the EVM+DBFT baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/time.hpp"
#include "consensus/binary.hpp"
#include "consensus/messages.hpp"
#include "consensus/quorum.hpp"
#include "obs/trace.hpp"

namespace srbb::consensus {

struct SuperblockConfig {
  std::uint32_t n = 4;     // validators (ranks 0..n-1)
  std::uint32_t f = 1;     // tolerated Byzantine validators, f < n/3
  std::uint32_t self = 0;  // this validator's rank
  /// How long to wait for proposals before inputting 0 for the missing ones.
  SimDuration proposal_timeout = millis(800);
  /// Retry interval for PULLing a decided-but-missing block body.
  SimDuration pull_retry = millis(200);
  /// While the instance is incomplete, re-broadcast this node's protocol
  /// state (echoes, undelivered own proposal, current binary round, DECIDED
  /// announcements) every interval, so rounds stalled by message loss or a
  /// partition finish once the network heals. 0 disables (unit-test mode —
  /// an incomplete instance would otherwise re-arm timers forever and
  /// run_until_idle() would not terminate).
  SimDuration rebroadcast_interval = 0;
  const crypto::SignatureScheme* scheme = &crypto::SignatureScheme::ed25519();
  /// Emit `consensus.*` trace events (begin / per-slot binary decisions /
  /// superblock decide / body pulls). Null disables (the default). Timestamps
  /// come from SuperblockCallbacks::now; without it events are stamped 0.
  obs::TraceSink* trace = nullptr;
  /// Adaptive-membership view governing this index (DESIGN.md §13): every
  /// quorum below runs over the effective (n', f') of this view, and
  /// messages from non-counting ranks (disabled/removed validators) are
  /// ignored for quorum purposes. Every slot — including disabled proposers'
  /// — still gets its binary instance; a disabled proposer's decided-1 slot
  /// is its re-admission evidence. Default-constructed (unset) means the
  /// static all-active committee: bit-identical to the pre-membership
  /// behaviour.
  MembershipView membership{};
};

struct SuperblockCallbacks {
  /// Broadcast to every *other* validator (self-delivery is internal).
  std::function<void(sim::MessagePtr)> broadcast;
  std::function<void(std::uint32_t peer, sim::MessagePtr)> send_to;
  /// Extra block-header validity beyond the certificate (e.g. RPM exclusion
  /// of slashed proposers). Blocks failing this are discarded before
  /// consensus (Alg. 1 line 16).
  std::function<bool(const txn::Block&)> validate_header;
  /// Optional: return false when no proposal should be awaited from this
  /// rank (e.g. RPM-excluded validators); its instance starts with input 0
  /// at begin() instead of burning the proposal timeout.
  std::function<bool(std::uint32_t proposer)> expect_proposal;
  /// Decided superblock, ordered by proposer rank. Fired exactly once.
  std::function<void(std::vector<txn::BlockPtr>)> on_superblock;
  /// One-shot timer; the instance may request several.
  std::function<void(SimDuration, std::function<void()>)> set_timer;
  /// Current simulated time, used only to stamp trace events. Optional; a
  /// traced instance without it stamps everything 0.
  std::function<SimTime()> now;
};

class SuperblockInstance {
 public:
  SuperblockInstance(const SuperblockConfig& config, std::uint64_t index,
                     SuperblockCallbacks callbacks);

  /// Start this node's participation: broadcast our proposal and arm the
  /// proposal timeout. `own_proposal` may be null (propose nothing).
  void begin(txn::BlockPtr own_proposal);

  /// Route any consensus message for this index.
  void handle(std::uint32_t from, const sim::MessagePtr& message);

  bool complete() const { return completed_; }
  std::uint64_t index() const { return index_; }

  // Introspection for tests/metrics.
  std::uint32_t decided_count() const;
  std::uint32_t ones_decided() const;

  /// Blocks received locally whose binary instance decided 0 — the set C of
  /// Alg. 1 line 27, whose valid transactions get recycled into the pool.
  std::vector<txn::BlockPtr> undecided_blocks() const;

  /// Per-slot progress snapshot for harness diagnostics.
  struct SlotDebug {
    bool bin_decided = false;
    bool bin_value = false;
    bool has_block = false;
    bool delivered = false;
    bool pulling = false;
    std::size_t echoers = 0;  // senders of the most-echoed hash
    bool bin_started = false;
    std::uint32_t bin_round = 0;
    std::size_t decided_votes[2] = {0, 0};
  };
  SlotDebug slot_debug(std::uint32_t proposer) const;

 private:
  struct ProposalSlot {
    txn::BlockPtr block;            // body as received (hash-checked)
    std::optional<Hash32> delivered_hash;  // fixed by n-f echoes
    std::map<Hash32, std::set<std::uint32_t>> echoes;
    bool echoed = false;
    std::optional<Hash32> echoed_hash;  // what we echoed, for rebroadcast
    bool bin_started = false;
    bool bin_decided = false;
    bool bin_value = false;
    std::unique_ptr<BinaryConsensus> bin;
    bool pulling = false;
    std::uint32_t pull_attempt_count = 0;  // rotates the peers asked
    // Owns the PULL retry closure; the timer copies capture it weakly so
    // the closure cannot keep itself alive (shared_ptr cycle = leak).
    std::shared_ptr<std::function<void()>> pull_attempt;
  };

  void on_propose(std::uint32_t from, const ProposeMsg& msg);
  void on_echo(std::uint32_t from, const EchoMsg& msg);
  void on_pull(std::uint32_t from, const PullMsg& msg);
  void on_bin_msg(std::uint32_t from, const BinMsg& msg);
  void on_decided_msg(std::uint32_t from, const DecidedMsg& msg);
  void on_proposal_timeout();
  void on_rebroadcast_timer();
  void rebroadcast();
  /// set_timer wrapper whose callback no-ops once this instance is
  /// destroyed. Instances die while timers are pending (commit-window
  /// pruning, node crash wiping instances_), so raw `this` captures in
  /// timer closures would be use-after-free.
  void arm_timer(SimDuration delay, std::function<void()> fn);

  /// Trace timestamp: the callback's clock when wired, else 0.
  SimTime trace_now() const { return cb_.now ? cb_.now() : 0; }

  /// True when `rank`'s messages count toward quorums under this instance's
  /// membership view (uniform for peers AND self-delivery: a disabled node
  /// does not count its own echoes/ESTs either, so its quorum arithmetic
  /// never diverges from the members').
  bool counted(std::uint32_t rank) const {
    return config_.membership.counts(rank);
  }

  void record_echo(std::uint32_t proposer, std::uint32_t from,
                   const Hash32& hash);
  void start_bin(std::uint32_t proposer, bool input);
  void request_pull(std::uint32_t proposer);
  bool slot_ready(const ProposalSlot& slot) const;
  /// True when the slot's delivered hash is backed by an n-f echo quorum —
  /// the certificate every included block must carry (invariant checks).
  bool quorum_certified(const ProposalSlot& slot) const;
  void maybe_complete();
  BinaryConsensus& bin_for(std::uint32_t proposer);

  SuperblockConfig config_;
  /// Effective quorum thresholds: derived from config_.membership (or the
  /// static (n, f) when no view is set). The single source for every
  /// threshold in this file.
  QuorumParams quorums_;
  std::uint64_t index_;
  SuperblockCallbacks cb_;
  std::vector<ProposalSlot> slots_;
  bool began_ = false;
  bool timeout_fired_ = false;
  bool completed_ = false;
  txn::BlockPtr own_proposal_;  // kept for rebroadcast until delivered
  /// Liveness sentinel for timer closures (see arm_timer).
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace srbb::consensus
