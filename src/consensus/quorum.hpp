// Quorum arithmetic and membership views — the single seam for every
// threshold the protocol stack derives from (n, f).
//
// QuorumParams centralizes the f+1 / 2f+1 / n-f expressions that were
// previously re-derived inline in binary.cpp, superblock.cpp, and rpm.cpp.
// With a static committee the values are the classic DBFT ones; with
// adaptive membership (rpm/reliability.hpp) they are computed from the
// *effective* committee — the registered ranks minus the on-chain disabled
// list and removed (slashed) validators — so shrinking the membership
// shrinks every quorum in lock-step.
//
// MembershipView is one snapshot of that committee: per-rank
// Active/Disabled/Removed status plus the derived effective (n, f). Views
// are pure values; the reliability tracker owns their evolution and the
// lag rule that makes every correct node use the identical view for a
// given consensus index.
#pragma once

#include <cstdint>
#include <vector>

#include "common/invariant.hpp"

namespace srbb::consensus {

/// The four quorum thresholds of the DBFT/Red Belly stack, derived from one
/// (n, f) pair. Callers never write `n - f` or `2 * f + 1` inline again.
struct QuorumParams {
  std::uint32_t n = 4;
  std::uint32_t f = 1;

  /// BV-broadcast echo amplification: f+1 copies of a value include one from
  /// a correct node, so echoing it is safe.
  std::uint32_t amplify() const { return f + 1; }
  /// Binding: 2f+1 copies put the value into bin_values (any two such
  /// quorums intersect in a correct node).
  std::uint32_t binding() const { return 2 * f + 1; }
  /// Delivery / completion: n-f responses are the most a node can wait for
  /// without risking a permanent stall on the f faulty ones. Used for the
  /// reliable-broadcast echo certificate, the AUX completion rule, and the
  /// RPM propReceived/report counts.
  std::uint32_t supermajority() const { return n - f; }
  /// Adoption: f+1 matching DECIDED announcements (or pull targets) include
  /// one correct node, whose decision/body is safe to take.
  std::uint32_t adoption() const { return f + 1; }

  /// Largest f with 3f < n — what a committee of `n` can actually tolerate.
  static std::uint32_t max_faults(std::uint32_t n) {
    return n >= 4 ? (n - 1) / 3 : 0;
  }

  bool operator==(const QuorumParams&) const = default;
};

enum class MemberStatus : std::uint8_t {
  kActive = 0,    // counts toward quorums, expected to propose
  kDisabled = 1,  // on the disabled list: keeps its slot, counts nowhere
  kRemoved = 2,   // slashed: out for good, proposals rejected
};

/// One committee snapshot. Default-constructed views are *unset*
/// (committee_n() == 0); consumers substitute the all-active static view.
class MembershipView {
 public:
  MembershipView() = default;
  MembershipView(std::uint32_t n, std::uint32_t f)
      : n_(n), f_(f), status_(n, MemberStatus::kActive) {}

  std::uint32_t committee_n() const { return n_; }
  std::uint32_t committee_f() const { return f_; }

  MemberStatus status(std::uint32_t rank) const {
    SRBB_CHECK(rank < n_);
    return status_[rank];
  }
  void set_status(std::uint32_t rank, MemberStatus status) {
    SRBB_CHECK(rank < n_);
    status_[rank] = status;
  }

  /// True when messages from `rank` count toward quorums. Out-of-range ranks
  /// (clients, unknown ids) never count.
  bool counts(std::uint32_t rank) const {
    return rank < n_ && status_[rank] == MemberStatus::kActive;
  }
  bool disabled(std::uint32_t rank) const {
    return rank < n_ && status_[rank] == MemberStatus::kDisabled;
  }
  bool removed(std::uint32_t rank) const {
    return rank < n_ && status_[rank] == MemberStatus::kRemoved;
  }

  std::uint32_t disabled_count() const {
    std::uint32_t count = 0;
    for (const MemberStatus s : status_) count += s == MemberStatus::kDisabled;
    return count;
  }
  std::uint32_t removed_count() const {
    std::uint32_t count = 0;
    for (const MemberStatus s : status_) count += s == MemberStatus::kRemoved;
    return count;
  }

  /// Effective committee size: the ranks whose messages count.
  std::uint32_t effective_n() const {
    std::uint32_t count = 0;
    for (const MemberStatus s : status_) count += s == MemberStatus::kActive;
    return count;
  }
  /// Effective fault tolerance: never more than the committee's configured f
  /// (disabling trades Byzantine margin for crash liveness, it does not mint
  /// new tolerance) and never more than the shrunken committee can bear.
  std::uint32_t effective_f() const {
    const std::uint32_t cap = QuorumParams::max_faults(effective_n());
    return f_ < cap ? f_ : cap;
  }

  QuorumParams quorums() const { return {effective_n(), effective_f()}; }

  /// Negative-UNL bound: at most floor((n-1)/4) validators may ever sit on
  /// the disabled list, so quorums over the effective committee still
  /// intersect in a correct node (rippled's 25% safety argument).
  static std::uint32_t disable_cap(std::uint32_t n) {
    return n == 0 ? 0 : (n - 1) / 4;
  }

  bool operator==(const MembershipView&) const = default;

 private:
  std::uint32_t n_ = 0;
  std::uint32_t f_ = 0;
  std::vector<MemberStatus> status_;
};

}  // namespace srbb::consensus
