#include "consensus/binary.hpp"

namespace srbb::consensus {

void BinaryConsensus::start(bool input) {
  if (started_) return;
  started_ = true;
  est_ = input;
  broadcast_est(0, est_);
  try_advance();
}

void BinaryConsensus::broadcast_est(std::uint32_t r, bool value) {
  RoundState& state = round_state(r);
  if (state.est_sent[value ? 1 : 0]) return;
  state.est_sent[value ? 1 : 0] = true;
  cb_.send_est(r, value);
}

void BinaryConsensus::on_est(std::uint32_t from, std::uint32_t r, bool value) {
  if (decided_) {
    cb_.send_decided_to(from, decision_);
    return;
  }
  RoundState& state = round_state(r);
  state.est_from[value ? 1 : 0].insert(from);
  // BV-broadcast echo rule: t+1 copies of a value we have not yet sent.
  if (state.est_from[value ? 1 : 0].size() >= f_ + 1) {
    broadcast_est(r, value);
  }
  // Binding rule: 2t+1 copies -> the value enters bin_values.
  if (state.est_from[value ? 1 : 0].size() >= 2 * f_ + 1) {
    state.bin_values[value ? 1 : 0] = true;
  }
  try_advance();
}

void BinaryConsensus::on_aux(std::uint32_t from, std::uint32_t r, bool value) {
  if (decided_) {
    cb_.send_decided_to(from, decision_);
    return;
  }
  RoundState& state = round_state(r);
  state.aux_from.emplace(from, value);  // first AUX per peer counts
  try_advance();
}

void BinaryConsensus::on_decided(std::uint32_t from, bool value) {
  if (decided_) return;
  decided_from_[value ? 1 : 0].insert(from);
  // t+1 matching decisions include one from a correct node, whose decision
  // is safe to adopt.
  if (decided_from_[value ? 1 : 0].size() >= f_ + 1) {
    decide(value);
  }
}

void BinaryConsensus::try_advance() {
  if (!started_ || decided_) return;
  if (advancing_) {
    dirty_ = true;
    return;
  }
  advancing_ = true;
  do {
    dirty_ = false;
    advance_loop();
  } while (dirty_ && !decided_);
  advancing_ = false;
}

void BinaryConsensus::advance_loop() {
  // A single message can unlock several steps (echo -> bin_values -> aux ->
  // round completion), so loop to a fixed point.
  for (;;) {
    if (decided_) return;
    RoundState& state = round_state(round_);

    if (!state.est_sent[est_ ? 1 : 0]) broadcast_est(round_, est_);

    if (!state.aux_sent) {
      if (state.bin_values[0] || state.bin_values[1]) {
        state.aux_sent = true;
        // Send an AUX carrying a value from bin_values (prefer our estimate
        // when it is bound).
        const bool aux_value =
            state.bin_values[est_ ? 1 : 0] ? est_ : state.bin_values[1];
        cb_.send_aux(round_, aux_value);
      } else {
        return;  // wait for bin_values
      }
    }

    // Completion check: n-t AUX values all inside bin_values.
    std::size_t in_bin = 0;
    bool saw[2] = {false, false};
    for (const auto& [peer, value] : state.aux_from) {
      if (state.bin_values[value ? 1 : 0]) {
        ++in_bin;
        saw[value ? 1 : 0] = true;
      }
    }
    if (in_bin < n_ - f_) return;  // wait for more AUX

    const bool coin = (round_ % 2) == 1;  // deterministic round parity
    if (saw[0] != saw[1]) {
      const bool v = saw[1];
      if (v == coin) {
        decide(v);
        return;
      }
      est_ = v;
    } else {
      est_ = coin;
    }
    ++round_;
  }
}

void BinaryConsensus::decide(bool value) {
  if (decided_) return;
  decided_ = true;
  decision_ = value;
  cb_.send_decided(value);
  cb_.on_decide(value);
}

}  // namespace srbb::consensus
