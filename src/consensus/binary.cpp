#include "consensus/binary.hpp"

namespace srbb::consensus {

void BinaryConsensus::start(bool input) {
  if (started_) return;
  started_ = true;
  est_ = input;
  broadcast_est(0, est_);
  try_advance();
}

void BinaryConsensus::broadcast_est(std::uint32_t r, bool value) {
  RoundState& state = round_state(r);
  if (state.est_sent[value ? 1 : 0]) return;
  state.est_sent[value ? 1 : 0] = true;
  cb_.send_est(r, value);
}

void BinaryConsensus::on_est(std::uint32_t from, std::uint32_t r, bool value) {
  if (decided_) {
    cb_.send_decided_to(from, decision_);
    return;
  }
  RoundState& state = round_state(r);
  state.est_from[value ? 1 : 0].insert(from);
  // BV-broadcast echo rule: t+1 copies of a value we have not yet sent.
  if (state.est_from[value ? 1 : 0].size() >= quorums_.amplify()) {
    broadcast_est(r, value);
  }
  // Binding rule: 2t+1 copies -> the value enters bin_values.
  if (state.est_from[value ? 1 : 0].size() >= quorums_.binding()) {
    state.bin_values[value ? 1 : 0] = true;
  }
  try_advance();
}

void BinaryConsensus::on_aux(std::uint32_t from, std::uint32_t r, bool value) {
  if (decided_) {
    cb_.send_decided_to(from, decision_);
    return;
  }
  RoundState& state = round_state(r);
  state.aux_from.emplace(from, value);  // first AUX per peer counts
  try_advance();
}

void BinaryConsensus::on_decided(std::uint32_t from, bool value) {
  if (decided_) return;
  decided_from_[value ? 1 : 0].insert(from);
  // t+1 matching decisions include one from a correct node, whose decision
  // is safe to adopt.
  if (decided_from_[value ? 1 : 0].size() >= quorums_.adoption()) {
    decide(value);
  }
}

void BinaryConsensus::try_advance() {
  if (!started_ || decided_) return;
  if (advancing_) {
    dirty_ = true;
    return;
  }
  advancing_ = true;
  do {
    dirty_ = false;
    advance_loop();
  } while (dirty_ && !decided_);
  advancing_ = false;
}

void BinaryConsensus::advance_loop() {
  // A single message can unlock several steps (echo -> bin_values -> aux ->
  // round completion), so loop to a fixed point.
  for (;;) {
    if (decided_) return;
    RoundState& state = round_state(round_);

    if (!state.est_sent[est_ ? 1 : 0]) broadcast_est(round_, est_);

    if (!state.aux_sent) {
      if (state.bin_values[0] || state.bin_values[1]) {
        state.aux_sent = true;
        // Send an AUX carrying a value from bin_values (prefer our estimate
        // when it is bound).
        state.aux_value =
            state.bin_values[est_ ? 1 : 0] ? est_ : state.bin_values[1];
        cb_.send_aux(round_, state.aux_value);
      } else {
        return;  // wait for bin_values
      }
    }

    // Completion check: n-t AUX values all inside bin_values.
    std::size_t in_bin = 0;
    bool saw[2] = {false, false};
    for (const auto& [peer, value] : state.aux_from) {
      if (state.bin_values[value ? 1 : 0]) {
        ++in_bin;
        saw[value ? 1 : 0] = true;
      }
    }
    if (in_bin < quorums_.supermajority()) return;  // wait for more AUX

    const bool coin = (round_ % 2) == 1;  // deterministic round parity
    if (saw[0] != saw[1]) {
      const bool v = saw[1];
      if (v == coin) {
        decide(v);
        return;
      }
      est_ = v;
    } else {
      est_ = coin;
    }
    ++round_;
  }
}

void BinaryConsensus::rebroadcast() {
  if (!started_) return;
  if (decided_) {
    // Peers adopt on f+1 matching DECIDEDs; re-announcing is idempotent.
    cb_.send_decided(decision_);
    return;
  }
  // Re-send EVERY round's EST/AUX, not just the current round's. Peers can
  // be starved in different rounds (one node advanced to round r+1 while
  // another still waits for a lost round-r AUX); re-sending only the current
  // round would leave the laggard starved forever, deadlocking the instance
  // even though everyone rebroadcasts. Rounds stay few (the parity coin
  // converges quickly), and receivers deduplicate via per-round sender sets,
  // so re-sending the full history is cheap and always safe. Iterating the
  // std::map is deterministic (ordered by round).
  for (const auto& [r, state] : rounds_) {
    if (r > round_) break;  // buffered future-round state is not ours to send
    for (const bool value : {false, true}) {
      if (state.est_sent[value ? 1 : 0]) cb_.send_est(r, value);
    }
    if (state.aux_sent) cb_.send_aux(r, state.aux_value);
  }
}

void BinaryConsensus::decide(bool value) {
  if (decided_) return;
  decided_ = true;
  decision_ = value;
  cb_.send_decided(value);
  cb_.on_decide(value);
}

}  // namespace srbb::consensus
