// Wire messages of the SRBB consensus: reliable broadcast of block proposals
// (PROPOSE/ECHO/PULL) and the per-proposal binary DBFT instances (EST/AUX/
// DECIDED). Sizes approximate real encodings for bandwidth accounting.
#pragma once

#include <cstdint>

#include "sim/network.hpp"
#include "txn/block.hpp"

namespace srbb::consensus {

/// Proposal for index k from its proposer (also the reply to a PULL).
struct ProposeMsg final : sim::Message {
  std::uint64_t index = 0;
  txn::BlockPtr block;

  std::size_t size_bytes() const override { return 16 + block->wire_size(); }
  const char* type() const override { return "propose"; }
};

/// Echo of proposer `proposer`'s block hash at index k (reliable broadcast).
struct EchoMsg final : sim::Message {
  std::uint64_t index = 0;
  std::uint32_t proposer = 0;
  Hash32 block_hash;

  std::size_t size_bytes() const override { return 16 + 4 + 32 + 64; }
  const char* type() const override { return "echo"; }
};

/// Request the proposal body for (index, proposer) after deciding 1 without
/// having received the block.
struct PullMsg final : sim::Message {
  std::uint64_t index = 0;
  std::uint32_t proposer = 0;

  std::size_t size_bytes() const override { return 16 + 4 + 16; }
  const char* type() const override { return "pull"; }
};

enum class BinPhase : std::uint8_t { kEst, kAux };

/// Binary consensus message for instance (index, proposer).
struct BinMsg final : sim::Message {
  std::uint64_t index = 0;
  std::uint32_t proposer = 0;
  std::uint32_t round = 0;
  BinPhase phase = BinPhase::kEst;
  bool value = false;

  std::size_t size_bytes() const override { return 16 + 4 + 4 + 2 + 64; }
  const char* type() const override {
    return phase == BinPhase::kEst ? "est" : "aux";
  }
};

/// Decision announcement for instance (index, proposer); lets late nodes
/// finish via the t+1 rule.
struct DecidedMsg final : sim::Message {
  std::uint64_t index = 0;
  std::uint32_t proposer = 0;
  bool value = false;

  std::size_t size_bytes() const override { return 16 + 4 + 1 + 64; }
  const char* type() const override { return "decided"; }
};

}  // namespace srbb::consensus
