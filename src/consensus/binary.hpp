// Binary Byzantine consensus in the style of DBFT's underlying
// binary-value broadcast protocol (Crain, Gramoli, Larrea, Raynal):
//
//   round r:  BV-broadcast EST(est) — echo a value on t+1 copies, add it to
//             bin_values on 2t+1;
//             once bin_values is non-empty, broadcast AUX(w), w in bin_values;
//             on n-t AUX values all within bin_values: vals = their union;
//             if vals == {v}: decide v when v == (r mod 2), else est = v;
//             if vals == {0,1}: est = r mod 2; next round.
//
// Safety (agreement + validity) is unconditional. The deterministic
// round-parity replaces DBFT's weak-coordinator fast path — a documented
// simplification: termination is guaranteed under the simulator's fair
// scheduling rather than against an adaptive network adversary. A DECIDED
// announcement lets nodes finish on t+1 matching decisions, so early
// deciders cannot stall the rest.
//
// This class is a pure state machine: it emits messages through callbacks
// and never touches the network or the clock directly, which makes it unit
// testable in isolation and reusable across node types.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "consensus/quorum.hpp"

namespace srbb::consensus {

class BinaryConsensus {
 public:
  struct Callbacks {
    /// Broadcast EST/AUX for a round (delivered to every validator
    /// including, immediately, this one).
    std::function<void(std::uint32_t round, bool value)> send_est;
    std::function<void(std::uint32_t round, bool value)> send_aux;
    /// Broadcast the decision announcement.
    std::function<void(bool value)> send_decided;
    /// Point-to-point decision hint to a straggler.
    std::function<void(std::uint32_t peer, bool value)> send_decided_to;
    /// Fired exactly once on decision.
    std::function<void(bool value)> on_decide;
  };

  /// (n, f) may be a static committee or the *effective* values of a
  /// MembershipView; the machine itself is membership-agnostic — the caller
  /// (SuperblockInstance) filters non-member senders before feeding it.
  BinaryConsensus(std::uint32_t n, std::uint32_t f, Callbacks callbacks)
      : quorums_{n, f}, cb_(std::move(callbacks)) {}

  /// Begin with this node's proposal. Idempotent.
  void start(bool input);

  bool started() const { return started_; }
  bool decided() const { return decided_; }
  bool decision() const { return decision_; }
  std::uint32_t round() const { return round_; }
  /// DECIDED announcements received for `value` (harness diagnostics).
  std::size_t decided_votes(bool value) const {
    return decided_from_[value ? 1 : 0].size();
  }

  // Message inputs (from peer `from`, deduplicated internally).
  void on_est(std::uint32_t from, std::uint32_t round, bool value);
  void on_aux(std::uint32_t from, std::uint32_t round, bool value);
  void on_decided(std::uint32_t from, bool value);

  /// Re-emit this node's current protocol messages: the EST values and AUX
  /// already sent for the current round, or the DECIDED announcement once
  /// decided. Receivers deduplicate, so rebroadcasting is always safe; it is
  /// how rounds stalled by message loss or a healed partition make progress
  /// (driven by the superblock layer's rebroadcast timer).
  void rebroadcast();

 private:
  struct RoundState {
    std::set<std::uint32_t> est_from[2];
    bool est_sent[2] = {false, false};
    bool bin_values[2] = {false, false};
    std::map<std::uint32_t, bool> aux_from;
    bool aux_sent = false;
    bool aux_value = false;  // what we sent, for rebroadcast()
  };

  RoundState& round_state(std::uint32_t r) { return rounds_[r]; }
  void broadcast_est(std::uint32_t r, bool value);
  /// Reentrancy-safe: a callback that synchronously self-delivers a message
  /// (re-entering on_est/on_aux) only marks the machine dirty; the outer
  /// invocation re-runs the advance loop.
  void try_advance();
  void advance_loop();
  void decide(bool value);

  QuorumParams quorums_;
  Callbacks cb_;

  bool started_ = false;
  bool decided_ = false;
  bool decision_ = false;
  bool est_ = false;
  std::uint32_t round_ = 0;
  std::map<std::uint32_t, RoundState> rounds_;
  std::set<std::uint32_t> decided_from_[2];
  bool advancing_ = false;
  bool dirty_ = false;
};

}  // namespace srbb::consensus
