// DIABLO-style workloads (§V): pre-signed transactions sent on a fixed
// per-second schedule against a DApp. The three real traces are reproduced
// by their published statistics:
//   NASDAQ — 3 min, avg 168 TPS with a 19 800 TPS burst (stock trades),
//   Uber   — 2 min, avg 852 TPS, peak 900 (ride events),
//   FIFA   — 3 min, avg 3483 TPS, peak 5305 (ticket sales).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "common/time.hpp"

namespace srbb::diablo {

enum class TxShape : std::uint8_t {
  kTransfer,        // native payment
  kExchangeTrade,   // exchange DApp: trade(stockId, price, volume)
  kMobilityRide,    // mobility DApp: ride(rideId, fare)
  kTicketBuy,       // ticketing DApp: buy(matchId, seat)
  kRouterTransfer,  // router DApp: rtransfer(to, amount), DELEGATECALLs the
                    // token — the interprocedural-analysis workload
};

struct WorkloadSpec {
  std::string name;
  TxShape shape = TxShape::kTransfer;
  /// Target send rate for each 1-second bucket.
  std::vector<double> rates_per_second;

  SimDuration duration() const { return seconds(rates_per_second.size()); }
  std::uint64_t total_txs() const;
  double average_tps() const;
  double peak_tps() const;

  /// Scale every rate (used to shrink full-scale runs proportionally).
  WorkloadSpec scaled(double factor) const;

  static WorkloadSpec nasdaq();
  static WorkloadSpec uber();
  static WorkloadSpec fifa();
  /// Flat synthetic load (tests, Table I stress runs).
  static WorkloadSpec constant(std::string name, double tps,
                               std::uint32_t duration_s,
                               TxShape shape = TxShape::kTransfer);
};

/// Exact send times derived from the per-second rates (evenly spaced within
/// each bucket, as DIABLO's rate controller does).
std::vector<SimTime> send_schedule(const WorkloadSpec& workload);

/// CSV persistence: "second,rate" rows with a one-line header carrying name
/// and shape, so custom traces can be captured and replayed.
std::string to_csv(const WorkloadSpec& workload);
Result<WorkloadSpec> from_csv(std::string_view csv);

}  // namespace srbb::diablo
