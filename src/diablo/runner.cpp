#include "diablo/runner.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "chains/gossip_chain.hpp"
#include "crypto/keccak.hpp"
#include "diablo/client.hpp"
#include "evm/contracts.hpp"

namespace srbb::diablo {

namespace {

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::fast_sim();
}

Address fixed_address(std::uint8_t tag) {
  Address a;
  a[0] = 0xDA;
  a[19] = tag;
  return a;
}

const Address kExchange = fixed_address(1);
const Address kMobility = fixed_address(2);
const Address kTicketing = fixed_address(3);
const Address kKvStore = fixed_address(4);
const Address kToken = fixed_address(5);
const Address kRouter = fixed_address(6);

// The hot recipient every kRouterTransfer pays: one shared credit slot, while
// each sender debits its own — the regime where composed interprocedural
// hints prove the per-sender writes disjoint but blind speculation cannot.
const U256 kHotRecipientWord{0x707ull};

Bytes calldata_for(TxShape shape, std::uint64_t i) {
  switch (shape) {
    case TxShape::kExchangeTrade:
      // Five hot stocks (AAPL/AMZN/FB/MSFT/GOOG in the trace).
      return evm::encode_call("trade(uint256,uint256,uint256)",
                              {U256{i % 5}, U256{100 + i % 50}, U256{1 + i % 9}});
    case TxShape::kMobilityRide:
      return evm::encode_call("ride(uint256,uint256)",
                              {U256{i}, U256{10 + i % 40}});
    case TxShape::kTicketBuy:
      // Unique seats so honest buys never double-sell.
      return evm::encode_call("buy(uint256,uint256)",
                              {U256{i / 50'000}, U256{i % 50'000}});
    case TxShape::kRouterTransfer:
      return evm::encode_call("rtransfer(uint256,uint256)",
                              {kHotRecipientWord, U256{1}});
    case TxShape::kTransfer:
      return {};
  }
  return {};
}

/// Token-ledger slot keccak(addressWord ++ 0) — the token contract's balance
/// mapping, living in *router* storage under DELEGATECALL.
Hash32 token_balance_slot(const Address& holder) {
  Bytes preimage;
  append(preimage, U256::from_be(holder.view()).be_bytes());
  append(preimage, U256{0}.be_bytes());
  return crypto::Keccak256::hash(BytesView{preimage});
}

struct PreparedTx {
  txn::TxPtr tx;
};

}  // namespace

RunConfig scale_config(RunConfig config, double factor) {
  if (factor >= 1.0) return config;
  const auto scaled_size = [factor](std::size_t value, std::size_t floor_at) {
    return std::max<std::size_t>(
        floor_at, static_cast<std::size_t>(
                      std::lround(static_cast<double>(value) * factor)));
  };
  config.validators = static_cast<std::uint32_t>(
      scaled_size(config.validators, 4));
  config.workload = config.workload.scaled(factor);
  // Capacity/load ratios must survive scaling: block caps bound commit rate
  // against the scaled offered rate, pool slots bound burst absorption
  // against the scaled gossip inflow.
  config.preset.max_block_txs = scaled_size(config.preset.max_block_txs, 1);
  // Pool occupancy scales with what a pool holds: gossip-based systems
  // (modern chains, EVM+DBFT) replicate the GLOBAL stream into every pool,
  // so their capacity scales with the offered rate; a TVPR pool only holds
  // its own clients' share (rate/n), which is scale-invariant, so SRBB pools
  // keep their real size.
  config.preset.pool.capacity = scaled_size(config.preset.pool.capacity, 64);
  // Per-validator commit-path load is total_rate x cost; with rates scaled
  // down by `factor`, costs scale up by 1/factor so the saturation point —
  // where congestion starts — is preserved. (The EVM+DBFT duplicate burden
  // additionally scales with committee size, so its collapse factor grows
  // toward the paper's full-scale value as scale -> 1; see EXPERIMENTS.md.)
  const auto boost = [factor](SimDuration d) {
    return static_cast<SimDuration>(static_cast<double>(d) / factor);
  };
  config.costs.lazy_validation = boost(config.costs.lazy_validation);
  config.costs.sig_check_exec = boost(config.costs.sig_check_exec);
  config.costs.execution_per_tx = boost(config.costs.execution_per_tx);
  return config;
}

RunResult run_experiment(const RunConfig& config) {
  sim::Simulation simulation;
  sim::NetworkConfig net_config;
  net_config.latency = config.latency;
  net_config.bandwidth_bps = config.bandwidth_bps;
  net_config.seed = config.seed;
  sim::Network network{simulation, net_config};

  const bool inject_faults = !config.faults.empty();
  sim::FaultInjector injector{config.faults};
  if (inject_faults) network.set_fault_injector(&injector);

  // The run's metrics home: every node publishes into this one registry, so
  // the per-phase histograms reduced into RunResult are already network-wide.
  obs::MetricsRegistry registry;
  network.set_trace(config.trace);

  const std::uint32_t n = config.validators;
  const std::uint32_t f = n >= 4 ? (n - 1) / 3 : 0;
  const auto regions = config.latency.assign_round_robin(n + config.clients);
  sim::GossipOverlay overlay{n, 8, config.seed ^ 0x60551Full};

  // --- workload and genesis -------------------------------------------------
  const std::vector<SimTime> schedule = send_schedule(config.workload);
  const std::uint64_t total = schedule.size();
  // Enough pre-funded accounts that a dropped transaction only strands a
  // handful of same-sender successors (DIABLO pre-signs from many accounts
  // for the same reason). Rounded up to a multiple of the target-validator
  // count so every account always submits to the same validator and nonces
  // arrive in order.
  const std::uint32_t targets = config.client_target_count == 0
                                    ? n
                                    : std::min(n, config.client_target_count);
  std::size_t sender_count = std::max<std::size_t>(
      512, static_cast<std::size_t>(total / 4));
  sender_count = (sender_count + targets - 1) / targets * targets;

  node::GenesisSpec genesis;
  std::vector<crypto::Identity> senders;
  senders.reserve(sender_count);
  for (std::size_t i = 0; i < sender_count; ++i) {
    senders.push_back(scheme().make_identity(1'000'000 + i));
    genesis.accounts.push_back(
        {senders.back().address(), U256{1'000'000'000'000ull}});
  }
  genesis.contracts.push_back({kExchange, evm::exchange_contract().runtime_code});
  genesis.contracts.push_back({kMobility, evm::mobility_contract().runtime_code});
  genesis.contracts.push_back(
      {kTicketing, evm::ticketing_contract().runtime_code});
  if (config.workload.shape == TxShape::kRouterTransfer) {
    genesis.contracts.push_back({kKvStore, evm::kvstore_contract().runtime_code});
    genesis.contracts.push_back({kToken, evm::token_contract().runtime_code});
    node::GenesisSpec::PredeployedContract router{
        kRouter, evm::router_contract(kKvStore, kToken).runtime_code, {}};
    // The token ledger lives in router storage (DELEGATECALL): pre-fund every
    // sender so rtransfer never reverts for lack of balance.
    router.storage_slots.reserve(sender_count);
    for (const crypto::Identity& sender : senders) {
      router.storage_slots.push_back(
          {token_balance_slot(sender.address()), U256{1'000'000'000ull}});
    }
    genesis.contracts.push_back(std::move(router));
  }

  evm::BlockContext block_template;
  auto shared_oracle =
      std::make_shared<node::ExecutionOracle>(genesis, block_template, scheme());

  // --- validators -----------------------------------------------------------
  rpm::RpmConfig rpm_config;
  rpm_config.n = n;
  rpm_config.f = f;
  rpm_config.scheme = &scheme();
  auto rpm_contract = std::make_shared<rpm::RewardPenaltyMechanism>(rpm_config);

  std::vector<std::unique_ptr<node::ValidatorNode>> srbb_validators;
  std::vector<std::unique_ptr<chains::GossipChainNode>> modern_validators;

  for (std::uint32_t rank = 0; rank < n; ++rank) {
    auto oracle = config.replicated_execution
                      ? std::make_shared<node::ExecutionOracle>(
                            genesis, block_template, scheme())
                      : shared_oracle;
    if (config.kind == SystemKind::kModern) {
      chains::GossipChainConfig node_config;
      node_config.n = n;
      node_config.self = rank;
      node_config.preset = config.preset;
      node_config.scheme = &scheme();
      modern_validators.push_back(std::make_unique<chains::GossipChainNode>(
          simulation, rank, regions[rank], node_config, oracle, &overlay));
      modern_validators.back()->set_observability(config.trace, &registry);
      network.attach(modern_validators.back().get());
    } else {
      node::ValidatorConfig node_config;
      node_config.n = n;
      node_config.f = f;
      node_config.self = rank;
      node_config.tvpr = config.kind == SystemKind::kSrbb;
      node_config.rpm = config.rpm;
      node_config.scheme = &scheme();
      node_config.costs = config.costs;
      node_config.pool = config.pool;
      node_config.max_block_txs = config.max_block_txs;
      node_config.min_block_interval = config.min_block_interval;
      node_config.proposal_timeout = config.proposal_timeout;
      node_config.oracle_private = config.replicated_execution;
      node_config.rebroadcast_interval = config.rebroadcast_interval;
      node_config.adaptive_membership = config.adaptive_membership;
      node_config.trace = config.trace;
      node_config.metrics = &registry;
      if (rank >= n - config.byzantine) {
        node_config.behavior.flood_invalid_per_block =
            config.flood_invalid_per_block;
        node_config.behavior.flood_total_limit = config.flood_total;
      }
      srbb_validators.push_back(std::make_unique<node::ValidatorNode>(
          simulation, rank, regions[rank], node_config, oracle, rpm_contract,
          &overlay));
      network.attach(srbb_validators.back().get());
      rpm_contract->register_validator(
          srbb_validators.back()->identity().address(), U256{1'000'000'000});
    }
  }

  // --- clients ---------------------------------------------------------------
  std::vector<std::unique_ptr<ClientNode>> clients;
  for (std::uint32_t c = 0; c < config.clients; ++c) {
    clients.push_back(std::make_unique<ClientNode>(
        simulation, n + c, regions[n + c]));
    clients.back()->set_observability(config.trace, &registry);
    if (config.client_resend_timeout != 0) {
      clients.back()->enable_resend(config.client_resend_timeout, n);
    }
    network.attach(clients.back().get());
  }

  std::vector<std::uint64_t> nonces(sender_count, 0);
  for (std::uint64_t i = 0; i < total; ++i) {
    const std::size_t sender = i % sender_count;
    txn::TxParams params;
    params.nonce = nonces[sender]++;
    params.gas_price = U256{1};
    if (config.workload.shape == TxShape::kTransfer) {
      params.kind = txn::TxKind::kTransfer;
      params.gas_limit = 30'000;
      params.to = scheme().make_identity(42).address();
      params.value = U256{1};
    } else {
      params.kind = txn::TxKind::kInvoke;
      params.gas_limit = 200'000;
      switch (config.workload.shape) {
        case TxShape::kExchangeTrade: params.to = kExchange; break;
        case TxShape::kMobilityRide: params.to = kMobility; break;
        case TxShape::kRouterTransfer: params.to = kRouter; break;
        default: params.to = kTicketing; break;
      }
      params.data = calldata_for(config.workload.shape, i);
    }
    const txn::TxPtr tx =
        txn::make_tx_ptr(txn::make_signed(params, senders[sender], scheme()));
    // DIABLO distributes load round-robin over validators and clients.
    clients[i % config.clients]->add_submission(
        schedule[i], tx, static_cast<sim::NodeId>(i % targets));
  }

  if (inject_faults) {
    injector.arm(
        simulation,
        [&srbb_validators](sim::NodeId node) {
          if (node < srbb_validators.size()) srbb_validators[node]->crash();
        },
        [&srbb_validators](sim::NodeId node) {
          if (node < srbb_validators.size()) srbb_validators[node]->restart();
        });
  }

  // Windowed commit sampler: cumulative client-observed commits at every
  // window boundary, diffed into per-window counts after the run.
  std::vector<std::uint64_t> cumulative_commits;
  if (config.tps_window > 0) {
    const SimTime end = config.workload.duration() + config.drain;
    for (SimTime at = config.tps_window; at <= end; at += config.tps_window) {
      simulation.schedule_at(at, [&clients, &cumulative_commits] {
        std::uint64_t sum = 0;
        for (const auto& client : clients) sum += client->committed();
        cumulative_commits.push_back(sum);
      });
    }
  }

  for (auto& validator : srbb_validators) validator->start();
  for (auto& validator : modern_validators) validator->start();
  for (auto& client : clients) client->start();

  simulation.run_until(config.workload.duration() + config.drain);

  // --- reduce ---------------------------------------------------------------
  RunResult result;
  result.system = config.system_name;
  result.workload = config.workload.name;
  std::vector<double> latencies;
  SimTime first_send = ~0ull;
  SimTime last_commit = 0;
  for (const auto& client : clients) {
    result.sent += client->sent();
    result.committed += client->committed();
    const auto client_latencies = client->latencies();
    latencies.insert(latencies.end(), client_latencies.begin(),
                     client_latencies.end());
    first_send = std::min(first_send, client->first_send());
    last_commit = std::max(last_commit, client->last_commit());
  }
  result.commit_pct =
      result.sent == 0
          ? 0
          : 100.0 * static_cast<double>(result.committed) /
                static_cast<double>(result.sent);
  if (result.committed > 0 && last_commit > first_send) {
    result.throughput_tps = static_cast<double>(result.committed) /
                            to_seconds(last_commit - first_send);
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    double sum = 0;
    for (const double l : latencies) sum += l;
    result.avg_latency_s = sum / static_cast<double>(latencies.size());
    result.p50_latency_s = latencies[latencies.size() / 2];
    result.p95_latency_s = latencies[latencies.size() * 95 / 100];
    result.max_latency_s = latencies.back();
  }

  // invalid_discarded is the same set at every replica (they replay the
  // same blocks), so report the network-wide count via max, not sum.
  for (const auto& validator : srbb_validators) {
    result.eager_validations += validator->metrics().eager_validations;
    result.gossip_tx_messages += validator->metrics().gossip_txs_sent;
    result.pool_drops += validator->tx_pool().dropped_full();
    result.invalid_discarded = std::max(
        result.invalid_discarded, validator->metrics().txs_discarded_invalid);
    result.validator_crashes += validator->metrics().crashes;
    result.validator_restarts += validator->metrics().restarts;
    result.superblocks_synced += validator->metrics().superblocks_synced;
    result.membership_disables = std::max(
        result.membership_disables, validator->metrics().membership_disables);
    result.membership_readmissions =
        std::max(result.membership_readmissions,
                 validator->metrics().membership_readmissions);
    result.membership_removals = std::max(
        result.membership_removals, validator->metrics().membership_removals);
  }
  for (const auto& validator : modern_validators) {
    result.eager_validations += validator->metrics().eager_validations;
    result.gossip_tx_messages += validator->metrics().gossip_txs_sent;
    result.pool_drops += validator->tx_pool().dropped_full();
    result.invalid_discarded = std::max(
        result.invalid_discarded, validator->metrics().txs_discarded_invalid);
    result.crashed_nodes += validator->metrics().crashed ? 1 : 0;
  }
  std::uint64_t previous = 0;
  for (const std::uint64_t commits : cumulative_commits) {
    result.window_commits.push_back(commits - previous);
    previous = commits;
  }
  if (inject_faults) {
    result.faults_dropped = injector.stats().dropped;
    result.faults_duplicated = injector.stats().duplicated;
  }
  result.network_messages = network.total_messages();
  result.network_bytes = network.total_bytes();
  result.slash_events = rpm_contract->slash_events().size();
  // Guard the observation-window division: a zero-duration run (empty
  // workload, no drain) has no rate, not an infinite one.
  const double run_seconds =
      to_seconds(config.workload.duration() + config.drain);
  if (!srbb_validators.empty() && run_seconds > 0.0) {
    result.valid_committed_per_validator_tps =
        static_cast<double>(srbb_validators[0]->metrics().txs_committed_valid) /
        run_seconds;
  }

  // Per-phase histograms out of the shared registry (empty snapshot when the
  // phase never fired, e.g. no SRBB validators -> no propose_to_decide).
  const auto snap = [&registry](std::string_view name) {
    const obs::Histogram* hist = registry.find_histogram(name);
    return hist != nullptr ? hist->snapshot() : obs::HistogramSnapshot{};
  };
  result.pool_wait = snap("pool.wait");
  result.propose_to_decide = snap("lat.propose_to_decide");
  result.decide_to_commit = snap("lat.decide_to_commit");
  result.e2e_commit = snap("lat.e2e_commit");
  return result;
}

}  // namespace srbb::diablo
