#include "diablo/client.hpp"

namespace srbb::diablo {

void ClientNode::set_observability(obs::TraceSink* trace,
                                   obs::MetricsRegistry* metrics) {
  trace_ = trace;
  hist_e2e_ = metrics != nullptr ? &metrics->histogram("lat.e2e_commit")
                                 : nullptr;
}

void ClientNode::add_submission(SimTime at, txn::TxPtr tx, sim::NodeId target) {
  schedule_.push_back(Submission{at, std::move(tx), target});
}

void ClientNode::start() {
  for (const Submission& submission : schedule_) {
    sim().schedule_at(
        submission.at, [this, tx = submission.tx, target = submission.target] {
          ++sent_;
          first_send_ = std::min(first_send_, now());
          sent_at_.emplace(tx->hash, now());
          dispatch(tx, target, 0);
        });
  }
}

void ClientNode::dispatch(const txn::TxPtr& tx, sim::NodeId target,
                          std::uint32_t attempt) {
  auto msg = std::make_shared<node::ClientTxMsg>();
  msg->tx = tx;
  SRBB_TRACE(trace_, now(), 0, static_cast<std::uint32_t>(id()), "client",
             "client.send", "tx", obs::trace_id(tx->hash), "attempt", attempt);
  send(target, msg);
  if (resend_timeout_ == 0 || attempt >= max_resends_) return;
  // §VI: without a transaction receipt within the period, resend to another
  // validator; randomness is replaced by round-robin for determinism.
  sim().schedule_after(resend_timeout_, [this, tx, target, attempt] {
    if (committed_.contains(tx->hash)) return;
    ++resends_;
    // validator_count == 1 means a single fixed endpoint (e.g. a load
    // balancer that does its own spreading): resend to the same place.
    const sim::NodeId next =
        validator_count_ <= 1 ? target : (target + 1) % validator_count_;
    dispatch(tx, next, attempt + 1);
  });
}

void ClientNode::handle_message(sim::NodeId, const sim::MessagePtr& message) {
  const auto* ack = dynamic_cast<const node::CommitAckMsg*>(message.get());
  if (ack == nullptr) return;
  if (committed_.contains(ack->tx_hash)) return;  // duplicate ack
  if (!sent_at_.contains(ack->tx_hash)) return;   // not ours
  committed_.emplace(ack->tx_hash, now());
  last_commit_ = std::max(last_commit_, now());
  const SimDuration e2e = now() - sent_at_.at(ack->tx_hash);
  if (hist_e2e_ != nullptr) hist_e2e_->observe(e2e);
  SRBB_TRACE(trace_, now(), 0, static_cast<std::uint32_t>(id()), "client",
             "client.ack", "tx", obs::trace_id(ack->tx_hash), "latency", e2e);
}

std::vector<double> ClientNode::latencies() const {
  std::vector<double> out;
  out.reserve(committed_.size());
  for (const auto& [hash, at] : committed_) {
    out.push_back(to_seconds(at - sent_at_.at(hash)));
  }
  return out;
}

}  // namespace srbb::diablo
