#include "diablo/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>

namespace srbb::diablo {

std::uint64_t WorkloadSpec::total_txs() const {
  double total = 0;
  for (const double rate : rates_per_second) total += rate;
  return static_cast<std::uint64_t>(std::llround(total));
}

double WorkloadSpec::average_tps() const {
  if (rates_per_second.empty()) return 0;
  return static_cast<double>(total_txs()) /
         static_cast<double>(rates_per_second.size());
}

double WorkloadSpec::peak_tps() const {
  double peak = 0;
  for (const double rate : rates_per_second) peak = std::max(peak, rate);
  return peak;
}

WorkloadSpec WorkloadSpec::scaled(double factor) const {
  WorkloadSpec out = *this;
  for (double& rate : out.rates_per_second) rate *= factor;
  return out;
}

WorkloadSpec WorkloadSpec::nasdaq() {
  // 180 s of stock trades: a modest baseline with the market-open burst.
  // Baseline ~58 TPS + one 19800 TPS second reproduces avg 168 / peak 19800.
  WorkloadSpec w;
  w.name = "NASDAQ";
  w.shape = TxShape::kExchangeTrade;
  w.rates_per_second.assign(180, 0.0);
  double remaining = 168.0 * 180 - 19'800.0;
  const double baseline = remaining / 179.0;
  for (std::size_t s = 0; s < 180; ++s) w.rates_per_second[s] = baseline;
  w.rates_per_second[60] = 19'800.0;  // the burst second
  return w;
}

WorkloadSpec WorkloadSpec::uber() {
  // 120 s of ride events: near-flat demand oscillating up to the 900 peak.
  WorkloadSpec w;
  w.name = "Uber";
  w.shape = TxShape::kMobilityRide;
  w.rates_per_second.resize(120);
  for (std::size_t s = 0; s < 120; ++s) {
    const double phase = static_cast<double>(s) / 120.0 * 2.0 * 3.14159265;
    w.rates_per_second[s] = 852.0 + 48.0 * std::sin(phase);
  }
  return w;
}

WorkloadSpec WorkloadSpec::fifa() {
  // 180 s of ticket sales ramping toward the 5305 peak and back; the mean
  // lands on 3483.
  WorkloadSpec w;
  w.name = "FIFA";
  w.shape = TxShape::kTicketBuy;
  w.rates_per_second.resize(180);
  // Half-sine ramp with the peak pinned at 5305; the base solves
  // base + (peak - base) * 2/pi == 3483 so the mean matches the trace.
  constexpr double kPi = 3.14159265358979323846;
  constexpr double kTwoOverPi = 2.0 / kPi;
  const double base = (3483.0 - 5305.0 * kTwoOverPi) / (1.0 - kTwoOverPi);
  for (std::size_t s = 0; s < 180; ++s) {
    const double phase = (static_cast<double>(s) + 0.5) / 180.0 * kPi;
    w.rates_per_second[s] = base + (5305.0 - base) * std::sin(phase);
  }
  return w;
}

WorkloadSpec WorkloadSpec::constant(std::string name, double tps,
                                    std::uint32_t duration_s, TxShape shape) {
  WorkloadSpec w;
  w.name = std::move(name);
  w.shape = shape;
  w.rates_per_second.assign(duration_s, tps);
  return w;
}

std::string to_csv(const WorkloadSpec& workload) {
  std::string out = "# name=" + workload.name +
                    " shape=" + std::to_string(static_cast<int>(workload.shape)) +
                    "\nsecond,rate\n";
  char line[64];
  for (std::size_t s = 0; s < workload.rates_per_second.size(); ++s) {
    std::snprintf(line, sizeof(line), "%zu,%.6f\n", s,
                  workload.rates_per_second[s]);
    out += line;
  }
  return out;
}

Result<WorkloadSpec> from_csv(std::string_view csv) {
  WorkloadSpec out;
  out.name = "unnamed";
  std::size_t pos = 0;
  bool saw_header = false;
  while (pos < csv.size()) {
    std::size_t end = csv.find('\n', pos);
    if (end == std::string_view::npos) end = csv.size();
    std::string_view line = csv.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Metadata: "# name=<name> shape=<int>"
      const auto name_at = line.find("name=");
      if (name_at != std::string_view::npos) {
        const auto name_end = line.find(' ', name_at);
        out.name = std::string(line.substr(
            name_at + 5, (name_end == std::string_view::npos
                              ? line.size()
                              : name_end) -
                             (name_at + 5)));
      }
      const auto shape_at = line.find("shape=");
      if (shape_at != std::string_view::npos) {
        const int shape = std::atoi(std::string(line.substr(shape_at + 6)).c_str());
        if (shape < 0 || shape > 4) return Status::error("trace: bad shape");
        out.shape = static_cast<TxShape>(shape);
      }
      continue;
    }
    if (line == "second,rate") {
      saw_header = true;
      continue;
    }
    const auto comma = line.find(',');
    if (comma == std::string_view::npos) {
      return Status::error("trace: malformed row");
    }
    const double rate = std::atof(std::string(line.substr(comma + 1)).c_str());
    if (rate < 0) return Status::error("trace: negative rate");
    out.rates_per_second.push_back(rate);
  }
  if (!saw_header) return Status::error("trace: missing header row");
  if (out.rates_per_second.empty()) return Status::error("trace: no rows");
  return out;
}

std::vector<SimTime> send_schedule(const WorkloadSpec& workload) {
  std::vector<SimTime> times;
  times.reserve(workload.total_txs());
  double carry = 0.0;
  for (std::size_t bucket = 0; bucket < workload.rates_per_second.size();
       ++bucket) {
    // Fractional rates accumulate across buckets so low-rate workloads do
    // not round to zero.
    const double want = workload.rates_per_second[bucket] + carry;
    const std::uint64_t count = static_cast<std::uint64_t>(want);
    carry = want - static_cast<double>(count);
    const SimTime start = seconds(bucket);
    for (std::uint64_t i = 0; i < count; ++i) {
      times.push_back(start + i * kSecond / std::max<std::uint64_t>(count, 1));
    }
  }
  return times;
}

}  // namespace srbb::diablo
