#include "diablo/report.hpp"

#include <cstdio>
#include <utility>

namespace srbb::diablo {

std::string format_header() {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-12s %-8s %10s %9s %9s %9s %9s %9s",
                "system", "workload", "tput(TPS)", "commit%", "avg-lat",
                "p50-lat", "p95-lat", "max-lat");
  return std::string(buf) + "\n" + std::string(82, '-');
}

std::string format_row(const RunResult& r) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%-12s %-8s %10.2f %8.1f%% %8.2fs %8.2fs %8.2fs %8.2fs",
                r.system.c_str(), r.workload.c_str(), r.throughput_tps,
                r.commit_pct, r.avg_latency_s, r.p50_latency_s,
                r.p95_latency_s, r.max_latency_s);
  return buf;
}

std::string format_table(const std::vector<RunResult>& results) {
  std::string out = format_header();
  for (const RunResult& r : results) {
    out += "\n";
    out += format_row(r);
  }
  return out;
}

std::string format_diagnostics(const RunResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  [%s/%s] sent=%llu committed=%llu eager-validations=%llu "
                "gossip-tx-msgs=%llu pool-drops=%llu invalid-discarded=%llu "
                "net-msgs=%llu net-MB=%.1f crashed=%llu slashes=%llu",
                r.system.c_str(), r.workload.c_str(),
                static_cast<unsigned long long>(r.sent),
                static_cast<unsigned long long>(r.committed),
                static_cast<unsigned long long>(r.eager_validations),
                static_cast<unsigned long long>(r.gossip_tx_messages),
                static_cast<unsigned long long>(r.pool_drops),
                static_cast<unsigned long long>(r.invalid_discarded),
                static_cast<unsigned long long>(r.network_messages),
                static_cast<double>(r.network_bytes) / 1e6,
                static_cast<unsigned long long>(r.crashed_nodes),
                static_cast<unsigned long long>(r.slash_events));
  return buf;
}

std::string format_phase_histograms(const RunResult& r) {
  const std::pair<const char*, const obs::HistogramSnapshot*> phases[] = {
      {"pool-wait", &r.pool_wait},
      {"propose->decide", &r.propose_to_decide},
      {"decide->commit", &r.decide_to_commit},
      {"e2e-commit", &r.e2e_commit},
  };
  std::string out;
  for (const auto& [name, snapshot] : phases) {
    if (snapshot->count == 0) continue;
    if (!out.empty()) out += "\n";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  %-16s ", name);
    out += buf;
    out += snapshot->summary();
  }
  return out;
}

}  // namespace srbb::diablo
