// Experiment runner: assembles a complete deployment — validators of the
// chosen system, region-distributed clients, genesis with the DApp contracts
// — replays a workload, and reduces the run to the metrics the paper's
// figures report (throughput, latency, commit percentage) plus the
// congestion counters behind them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chains/presets.hpp"
#include "diablo/workload.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/fault.hpp"
#include "sim/latency.hpp"
#include "srbb/validator.hpp"

namespace srbb::diablo {

enum class SystemKind : std::uint8_t {
  kSrbb,     // ValidatorNode, TVPR on (RPM per flag)
  kEvmDbft,  // ValidatorNode, TVPR off: the naive baseline of §V-A
  kModern,   // GossipChainNode with a ChainPreset
};

struct RunConfig {
  std::string system_name = "SRBB";
  SystemKind kind = SystemKind::kSrbb;
  chains::ChainPreset preset;  // only for kModern
  bool rpm = false;

  std::uint32_t validators = 20;
  WorkloadSpec workload;
  sim::LatencyModel latency = sim::LatencyModel::aws_global();
  double bandwidth_bps = 2.5e9;
  std::uint32_t clients = 10;
  std::uint64_t seed = 1;
  /// Observation continues this long after the last scheduled send.
  SimDuration drain = seconds(120);

  // SRBB/EVM+DBFT node parameters.
  node::CostModel costs;
  std::size_t max_block_txs = 4096;
  SimDuration min_block_interval = millis(400);
  SimDuration proposal_timeout = millis(800);
  pool::TxPoolConfig pool;
  bool replicated_execution = false;

  // Byzantine setup (Table I): the last `byzantine` validators flood this
  // many invalid transactions per proposed block, up to `flood_total` each
  // (0 = unlimited).
  std::uint32_t byzantine = 0;
  std::uint32_t flood_invalid_per_block = 0;
  std::uint64_t flood_total = 0;
  /// Clients submit only to the first `client_target_count` validators
  /// (0 = all). DIABLO points its clients at non-faulty endpoints, so the
  /// Table I bench sets this to n - byzantine.
  std::uint32_t client_target_count = 0;

  /// §VI client retry: resend unacknowledged transactions to the next
  /// validator after this timeout (0 = fire-once, DIABLO behaviour).
  SimDuration client_resend_timeout = 0;

  // --- robustness (DESIGN.md §7) ---
  /// Scripted fault injection (drops, partitions, crash/restart cycles); an
  /// empty plan leaves the network fault-free. Crash/restart events target
  /// SRBB-style validators (ranks < validators); with crashes in the plan,
  /// set replicated_execution so each validator owns the oracle it wipes.
  sim::FaultPlan faults;
  /// Superblock-layer state rebroadcast while an instance is incomplete;
  /// required for liveness under message loss (0 = off, the fault-free
  /// default).
  SimDuration rebroadcast_interval = 0;
  /// Adaptive membership (DESIGN.md §13): reliability scoring + the bounded
  /// disabled list, so the chain stays live through > f gradual crashes.
  /// Requires replicated_execution when combined with crashes.
  bool adaptive_membership = false;
  /// Sample cumulative client-observed commits every `tps_window` of
  /// simulated time into RunResult::window_commits (0 = off). Makes the
  /// throughput dip around a crash or partition window visible.
  SimDuration tps_window = 0;

  // --- observability (DESIGN.md §8) ---
  /// Commit-path trace sink, threaded through every node, the network's
  /// fault attribution, and the clients (not owned; null = no tracing). The
  /// runner always owns an internal MetricsRegistry — the per-phase
  /// histograms in RunResult come from it at no extra configuration.
  obs::TraceSink* trace = nullptr;
};

struct RunResult {
  std::string system;
  std::string workload;
  std::uint64_t sent = 0;
  std::uint64_t committed = 0;
  double commit_pct = 0;
  /// committed / (last commit - first send), the DIABLO average throughput.
  double throughput_tps = 0;
  double avg_latency_s = 0;
  double p50_latency_s = 0;
  double p95_latency_s = 0;
  double max_latency_s = 0;

  // Congestion diagnostics.
  std::uint64_t eager_validations = 0;
  std::uint64_t gossip_tx_messages = 0;
  std::uint64_t network_messages = 0;
  std::uint64_t network_bytes = 0;
  std::uint64_t pool_drops = 0;
  std::uint64_t invalid_discarded = 0;
  std::uint64_t crashed_nodes = 0;
  std::uint64_t slash_events = 0;
  double valid_committed_per_validator_tps = 0;

  // Robustness diagnostics (fault-injected runs).
  std::vector<std::uint64_t> window_commits;  // commits per tps_window
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_duplicated = 0;
  std::uint64_t validator_crashes = 0;
  std::uint64_t validator_restarts = 0;
  std::uint64_t superblocks_synced = 0;
  /// Adaptive-membership transitions (identical at every replica — the
  /// disabled list is derived from the committed chain — so reported via
  /// max, not sum).
  std::uint64_t membership_disables = 0;
  std::uint64_t membership_readmissions = 0;
  std::uint64_t membership_removals = 0;

  // Per-phase latency distributions along the commit path (DESIGN.md §8),
  // aggregated across every node of the run. All values are simulated
  // nanoseconds; empty snapshots (count == 0) mean the phase never fired.
  obs::HistogramSnapshot pool_wait;          // pool admit -> batch extraction
  obs::HistogramSnapshot propose_to_decide;  // round begin -> DBFT decide
  obs::HistogramSnapshot decide_to_commit;   // decide -> exec + chain append
  obs::HistogramSnapshot e2e_commit;         // client send -> commit ack
};

RunResult run_experiment(const RunConfig& config);

/// Shrink a full-scale (200-validator) configuration: validator count and
/// offered rates scale together so per-validator load — and therefore the
/// congestion behaviour — is preserved; modern-chain block caps scale with
/// the committee so capacity/load ratios stay put.
RunConfig scale_config(RunConfig config, double factor);

}  // namespace srbb::diablo
