// DIABLO client: sends pre-signed transactions on a fixed schedule and
// timestamps the commit acknowledgements. Latency is commit time minus send
// time as seen by the client; a transaction with no ack by the end of the
// observation window counts as lost (§V).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/network.hpp"
#include "srbb/messages.hpp"

namespace srbb::diablo {

class ClientNode : public sim::SimNode {
 public:
  struct Submission {
    SimTime at = 0;
    txn::TxPtr tx;
    sim::NodeId target = 0;
  };

  ClientNode(sim::Simulation& simulation, sim::NodeId id, sim::RegionId region)
      : sim::SimNode(simulation, id, region) {}

  /// Enable the §VI retry mechanism: a transaction unacknowledged after
  /// `timeout` is resubmitted to the next validator (round-robin over
  /// `validator_count`), up to `max_resends` times. Disabled by default to
  /// match DIABLO's fire-once clients.
  void enable_resend(SimDuration timeout, std::uint32_t validator_count,
                     std::uint32_t max_resends = 3) {
    resend_timeout_ = timeout;
    validator_count_ = validator_count;
    max_resends_ = max_resends;
  }

  /// Attach the observability layer: `client.send` / `client.ack` trace
  /// events plus the exact-nanosecond end-to-end commit latency histogram
  /// "lat.e2e_commit" (send -> ack, the number Fig. 3 plots). Either pointer
  /// may be null.
  void set_observability(obs::TraceSink* trace, obs::MetricsRegistry* metrics);

  /// Register the full schedule before the run starts.
  void add_submission(SimTime at, txn::TxPtr tx, sim::NodeId target);
  /// Arm timers for every scheduled submission.
  void start();

  void handle_message(sim::NodeId from, const sim::MessagePtr& message) override;

  // --- results ---
  std::uint64_t sent() const { return sent_; }
  std::uint64_t committed() const { return committed_.size(); }
  /// Latencies in seconds for every committed transaction.
  std::vector<double> latencies() const;
  SimTime first_send() const { return first_send_; }
  SimTime last_commit() const { return last_commit_; }

  std::uint64_t resends() const { return resends_; }

 private:
  void dispatch(const txn::TxPtr& tx, sim::NodeId target, std::uint32_t attempt);

  std::vector<Submission> schedule_;
  std::unordered_map<Hash32, SimTime, Hash32Hasher> sent_at_;
  std::unordered_map<Hash32, SimTime, Hash32Hasher> committed_;
  std::uint64_t sent_ = 0;
  std::uint64_t resends_ = 0;
  SimTime first_send_ = ~0ull;
  SimTime last_commit_ = 0;
  SimDuration resend_timeout_ = 0;
  std::uint32_t validator_count_ = 0;
  std::uint32_t max_resends_ = 0;

  // Observability (null = disabled).
  obs::TraceSink* trace_ = nullptr;
  obs::Histogram* hist_e2e_ = nullptr;
};

}  // namespace srbb::diablo
