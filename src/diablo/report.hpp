// Table/figure formatting: prints the rows the paper's Figures 2-3 and
// Table I report, in a fixed-width layout the benches share.
#pragma once

#include <string>
#include <vector>

#include "diablo/runner.hpp"

namespace srbb::diablo {

/// Figure 2/3 style row: system, workload, throughput, commit %, latency.
std::string format_row(const RunResult& result);
std::string format_header();

/// Full table for a batch of runs.
std::string format_table(const std::vector<RunResult>& results);

/// One-line congestion diagnostics (validations, gossip, drops).
std::string format_diagnostics(const RunResult& result);

/// Per-phase latency histogram summaries (DESIGN.md §8): one line per
/// non-empty phase (pool wait, propose->decide, decide->commit, e2e commit)
/// with count/mean/p50/p90/p99. Empty string when no phase fired.
std::string format_phase_histograms(const RunResult& result);

}  // namespace srbb::diablo
