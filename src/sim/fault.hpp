// Deterministic fault injection for the simulated network. A FaultPlan is a
// scripted timeline of adversarial conditions — per-link message drop /
// duplication / reordering probabilities, delay spikes, symmetric and
// asymmetric partitions with timed healing, and mid-run node crash/restart
// events. The FaultInjector evaluates the plan per send attempt with its own
// seeded RNG stream, so a (plan, seed) pair reproduces the exact same fault
// schedule bit-for-bit — the property the chaos harness (tests/test_chaos.cpp,
// tools/chaos_soak.sh) relies on to replay failing seeds.
//
// The injector only decides *what happens on the wire*; crash semantics (what
// state a node loses, how it recovers) live in the node layer. arm() schedules
// the plan's crash/restart callbacks on the event loop, and the Network
// consults node_down()/link_blocked()/judge() on every send.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/event_loop.hpp"

namespace srbb::sim {

using NodeId = std::uint32_t;

/// Stochastic per-link misbehaviour, applied to every traversing message.
struct LinkFaults {
  double drop = 0.0;       // P(message lost in flight)
  double duplicate = 0.0;  // P(a second copy is delivered)
  double reorder = 0.0;    // P(extra random delay, letting later msgs overtake)
  SimDuration reorder_delay_max = millis(50);

  bool quiet() const {
    return drop == 0.0 && duplicate == 0.0 && reorder == 0.0;
  }
};

/// One island of nodes cut off from the rest of the network for a time
/// window. Symmetric: no traffic crosses the cut in either direction.
/// Asymmetric: only island -> outside is blocked (the island hears the world
/// but cannot speak — the classic one-way partition DBFT must tolerate).
struct PartitionSpec {
  SimTime from = 0;
  SimTime until = 0;  // heal time; 0 = never heals
  std::vector<NodeId> island;
  bool asymmetric = false;

  bool active_at(SimTime now) const {
    return now >= from && (until == 0 || now < until);
  }
};

/// Crash-recover schedule for one node. While down the node neither sends
/// nor receives; at `restart_at` (0 = stays down) the node layer's restart
/// callback runs (wiping volatile state and starting catch-up sync).
struct CrashSpec {
  NodeId node = 0;
  SimTime at = 0;
  SimTime restart_at = 0;  // 0 = never restarts

  bool down_at(SimTime now) const {
    return now >= at && (restart_at == 0 || now < restart_at);
  }
};

/// Global latency degradation window (congestion spike, route flap): every
/// delivery during the window is delayed by `extra`.
struct DelaySpike {
  SimTime from = 0;
  SimTime until = 0;
  SimDuration extra = 0;
};

struct FaultPlan {
  /// Seed of the injector's private RNG stream (drop/dup/reorder sampling).
  std::uint64_t seed = 1;
  LinkFaults default_link;
  /// Per-(from,to) overrides; missing links use default_link.
  std::map<std::pair<NodeId, NodeId>, LinkFaults> links;
  std::vector<PartitionSpec> partitions;
  std::vector<CrashSpec> crashes;
  std::vector<DelaySpike> delay_spikes;

  bool empty() const {
    return default_link.quiet() && links.empty() && partitions.empty() &&
           crashes.empty() && delay_spikes.empty();
  }

  /// Periodic crash/restart cycling for one node ("flapping"): starting at
  /// `from`, each `period` the node runs for duty_cycle * period and is down
  /// for the remainder, repeating until `until`. duty_cycle clamps to
  /// [0, 1]; cycles whose down window would be empty (duty near 1) or start
  /// past `until` are skipped. Builder-style: appends CrashSpecs and returns
  /// *this so scenarios chain helpers onto one plan.
  FaultPlan& flapping(NodeId node, SimTime from, SimTime until,
                      SimDuration period, double duty_cycle);

  /// Staggered crash/restart sweep across ranks 0..n-1 ("rolling restart"):
  /// rank r crashes at from + r * (window / n) and restarts `downtime`
  /// later. With downtime > window / n consecutive ranks overlap while down
  /// — the interesting regime for quorum pressure.
  FaultPlan& rolling_restart(std::uint32_t n, SimTime from, SimDuration window,
                             SimDuration downtime);

  /// Seed-deterministic randomized plan over nodes 0..n-1 within
  /// [0, horizon): uniform link faults with drop <= max_drop (duplicate and
  /// reorder up to half that), one symmetric partition that always heals
  /// before `horizon`, and up to `max_crashes` crash/restart cycles (each
  /// restarting before `horizon`). The same (n, horizon, seed) triple always
  /// builds the identical plan.
  static FaultPlan randomized(std::uint32_t n, SimTime horizon,
                              std::uint64_t seed, double max_drop = 0.2,
                              std::uint32_t max_crashes = 1);
};

struct FaultStats {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t partition_blocked = 0;
  std::uint64_t crash_blocked = 0;
  std::uint64_t crashes_fired = 0;
  std::uint64_t restarts_fired = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Schedule the plan's crash/restart timeline on the event loop. The
  /// callbacks fire at the scripted times; message blocking while a node is
  /// down is handled by the Network consulting node_down(). Call once,
  /// before the simulation runs past the first crash time.
  void arm(Simulation& sim, std::function<void(NodeId)> on_crash,
           std::function<void(NodeId)> on_restart);

  /// The fate of one send attempt. `copies` > 1 means duplicate delivery;
  /// `extra_delay` is added to the propagation of every copy.
  struct Verdict {
    bool deliver = true;
    std::uint32_t copies = 1;
    SimDuration extra_delay = 0;
  };

  /// Judge one physical send. Consumes from the injector's RNG stream, so
  /// call exactly once per Network::send for reproducibility. Blocked and
  /// dropped messages are counted in stats().
  Verdict judge(NodeId from, NodeId to, SimTime now);

  bool node_down(NodeId node, SimTime now) const;
  bool link_blocked(NodeId from, NodeId to, SimTime now) const;

  const FaultStats& stats() const { return stats_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  const LinkFaults& link_faults(NodeId from, NodeId to) const;
  SimDuration spike_delay(SimTime now) const;

  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_;
};

}  // namespace srbb::sim
