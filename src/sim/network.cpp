#include "sim/network.hpp"

#include <algorithm>
#include <cassert>

namespace srbb::sim {

void SimNode::post_work(SimDuration cpu_cost, EventFn fn) {
  const SimTime start = std::max(now(), cpu_free_at_);
  const SimTime done = start + cpu_cost;
  cpu_free_at_ = done;
  stats_.cpu_busy += cpu_cost;
  sim_.schedule_at(done, std::move(fn));
}

void SimNode::send(NodeId to, MessagePtr message) {
  network_->send(id_, to, std::move(message));
}

void Network::attach(SimNode* node) {
  assert(node->id() == nodes_.size());
  node->network_ = this;
  nodes_.push_back(node);
  nics_.push_back(Nic{});
}

void Network::send(NodeId from, NodeId to, MessagePtr message) {
  const std::size_t bytes = message->size_bytes();
  SimNode* sender = nodes_[from];
  SimNode* receiver = nodes_[to];

  sender->stats_.messages_sent += 1;
  sender->stats_.bytes_sent += bytes;
  total_messages_ += 1;
  total_bytes_ += bytes;

  // Egress serialization: the sender's NIC pushes one message at a time.
  const SimDuration tx_delay = transmission_delay(bytes);
  Nic& sender_nic = nics_[from];
  const SimTime egress_done =
      std::max(sim_.now(), sender_nic.egress_free_at) + tx_delay;
  sender_nic.egress_free_at = egress_done;

  // Propagation across the wire.
  const SimDuration propagation =
      config_.latency.sample(sender->region(), receiver->region(), rng_);

  // Ingress serialization at the receiver.
  Nic& receiver_nic = nics_[to];
  const SimTime arrival = egress_done + propagation;
  const SimTime ingress_done =
      std::max(arrival, receiver_nic.ingress_free_at) + tx_delay;
  receiver_nic.ingress_free_at = ingress_done;

  sim_.schedule_at(ingress_done, [receiver, from, message = std::move(message),
                                  bytes]() {
    receiver->stats_.messages_received += 1;
    receiver->stats_.bytes_received += bytes;
    receiver->handle_message(from, message);
  });
}

}  // namespace srbb::sim
