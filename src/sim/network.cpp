#include "sim/network.hpp"

#include <algorithm>

#include "common/invariant.hpp"
#include "sim/fault.hpp"

namespace srbb::sim {

void SimNode::post_work(SimDuration cpu_cost, EventFn fn) {
  const SimTime start = std::max(now(), cpu_free_at_);
  const SimTime done = start + cpu_cost;
  cpu_free_at_ = done;
  stats_.cpu_busy += cpu_cost;
  sim_.schedule_at(done, std::move(fn));
}

void SimNode::send(NodeId to, MessagePtr message) {
  network_->send(id_, to, std::move(message));
}

void Network::attach(SimNode* node) {
  SRBB_CHECK(node != nullptr);
  // Double-attach would alias two slots onto one node and corrupt every
  // per-node stat and NIC queue below; ids must equal registration order so
  // nodes_[id] indexing stays total.
  SRBB_CHECK(node->network_ == nullptr);
  SRBB_CHECK(node->id() == nodes_.size());
  node->network_ = this;
  nodes_.push_back(node);
  nics_.push_back(Nic{});
}

void Network::ensure_link_stats() {
  const std::size_t slots = nodes_.size() * nodes_.size();
  if (link_messages_.size() < slots) {
    link_messages_.resize(slots, 0);
    link_bytes_.resize(slots, 0);
  }
}

std::uint64_t Network::link_messages(NodeId from, NodeId to) const {
  const std::size_t slot = link_slot(from, to);
  return slot < link_messages_.size() ? link_messages_[slot] : 0;
}

std::uint64_t Network::link_bytes(NodeId from, NodeId to) const {
  const std::size_t slot = link_slot(from, to);
  return slot < link_bytes_.size() ? link_bytes_[slot] : 0;
}

void Network::send(NodeId from, NodeId to, MessagePtr message) {
  SRBB_CHECK(from < nodes_.size());
  SRBB_CHECK(to < nodes_.size());
  const std::size_t bytes = message->size_bytes();
  SimNode* sender = nodes_[from];

  sender->stats_.messages_sent += 1;
  sender->stats_.bytes_sent += bytes;
  total_messages_ += 1;
  total_bytes_ += bytes;
  if (link_stats_enabled_) {
    ensure_link_stats();
    link_messages_[link_slot(from, to)] += 1;
    link_bytes_[link_slot(from, to)] += bytes;
  }

  FaultInjector::Verdict verdict;
  if (faults_ != nullptr) {
    const FaultStats before = faults_->stats();
    verdict = faults_->judge(from, to, sim_.now());
    // Mirror every injector decision into the trace, one event per stats
    // increment, so a trace's `net.*` counts reconcile exactly with
    // FaultStats (asserted by tests/test_chaos.cpp ChaosTrace).
    if (trace_ != nullptr && trace_->enabled()) {
      const FaultStats& after = faults_->stats();
      if (after.dropped != before.dropped) {
        trace_->emit(sim_.now(), 0, from, "net", "net.drop", "to", to);
      }
      if (after.partition_blocked != before.partition_blocked) {
        trace_->emit(sim_.now(), 0, from, "net", "net.partition_block", "to",
                     to);
      }
      if (after.crash_blocked != before.crash_blocked) {
        trace_->emit(sim_.now(), 0, from, "net", "net.crash_block", "to", to);
      }
      if (after.duplicated != before.duplicated) {
        trace_->emit(sim_.now(), 0, from, "net", "net.dup", "to", to);
      }
      if (after.reordered != before.reordered) {
        trace_->emit(sim_.now(), 0, from, "net", "net.reorder", "to", to,
                     "delay", verdict.extra_delay);
      }
    }
    if (!verdict.deliver) {
      // Attribute the loss on the sender: a cut link (partition or crashed
      // endpoint) vs an in-flight drop. The packet still left the NIC, so
      // egress serialization is charged either way.
      const FaultStats& after = faults_->stats();
      if (after.partition_blocked != before.partition_blocked ||
          after.crash_blocked != before.crash_blocked) {
        sender->stats_.partition_blocked += 1;
      } else {
        sender->stats_.messages_dropped += 1;
      }
      Nic& sender_nic = nics_[from];
      sender_nic.egress_free_at =
          std::max(sim_.now(), sender_nic.egress_free_at) +
          transmission_delay(bytes);
      return;
    }
    if (verdict.copies > 1) {
      sender->stats_.messages_duplicated += verdict.copies - 1;
    }
  }

  for (std::uint32_t copy = 0; copy < verdict.copies; ++copy) {
    deliver_copy(from, to, message, bytes, verdict.extra_delay);
  }
}

void Network::deliver_copy(NodeId from, NodeId to, MessagePtr message,
                           std::size_t bytes, SimDuration extra_delay) {
  SimNode* sender = nodes_[from];
  SimNode* receiver = nodes_[to];

  // Egress serialization: the sender's NIC pushes one message at a time
  // (a duplicated copy is a real retransmission, so it queues too).
  const SimDuration tx_delay = transmission_delay(bytes);
  Nic& sender_nic = nics_[from];
  const SimTime egress_done =
      std::max(sim_.now(), sender_nic.egress_free_at) + tx_delay;
  sender_nic.egress_free_at = egress_done;

  // Propagation across the wire, plus any injected reorder/spike delay.
  const SimDuration propagation =
      config_.latency.sample(sender->region(), receiver->region(), rng_) +
      extra_delay;

  // Ingress serialization at the receiver.
  Nic& receiver_nic = nics_[to];
  const SimTime arrival = egress_done + propagation;
  const SimTime ingress_done =
      std::max(arrival, receiver_nic.ingress_free_at) + tx_delay;
  receiver_nic.ingress_free_at = ingress_done;

  sim_.schedule_at(ingress_done, [this, receiver, from, to,
                                  message = std::move(message), bytes]() {
    // A node that crashed while the message was in flight loses it.
    if (faults_ != nullptr && faults_->node_down(to, sim_.now())) return;
    receiver->stats_.messages_received += 1;
    receiver->stats_.bytes_received += bytes;
    receiver->handle_message(from, message);
  });
}

}  // namespace srbb::sim
