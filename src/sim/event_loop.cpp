#include "sim/event_loop.hpp"

#include <utility>

namespace srbb::sim {

void Simulation::schedule_at(SimTime time, EventFn fn) {
  if (time < now_) time = now_;  // no scheduling into the past
  queue_.push(Event{time, next_seq_++, std::move(fn)});
}

void Simulation::run_until(SimTime end) {
  while (!queue_.empty() && queue_.top().time <= end) {
    // Copy out before pop so the handler may schedule freely.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++processed_;
    event.fn();
  }
  if (now_ < end) now_ = end;
}

void Simulation::run_until_idle() {
  while (!queue_.empty()) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++processed_;
    event.fn();
  }
}

}  // namespace srbb::sim
