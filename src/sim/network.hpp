// The simulated machine and wire: nodes with a FIFO CPU (one core of work at
// a time, matching the per-validator service queue the paper's congestion
// argument is about) and NICs with finite bandwidth, connected by the latency
// model. All three contended resources — CPU cycles spent on eager
// validation, bandwidth spent on per-transaction gossip, and pool slots —
// live above this layer; this layer provides the queueing.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "obs/trace.hpp"
#include "sim/event_loop.hpp"
#include "sim/latency.hpp"

namespace srbb::sim {

using NodeId = std::uint32_t;

/// Wire payloads: immutable, shared, size-accounted.
struct Message {
  virtual ~Message() = default;
  virtual std::size_t size_bytes() const = 0;
  virtual const char* type() const = 0;
};
using MessagePtr = std::shared_ptr<const Message>;

struct NodeStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  SimDuration cpu_busy = 0;
  // Fault attribution (sender side), filled when a FaultInjector is armed:
  // in-flight losses, extra copies delivered, and sends blocked because a
  // partition (or a crashed endpoint) cut the link. Lets DIABLO reports and
  // benches attribute loss instead of lumping it into "not committed".
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t partition_blocked = 0;
};

class Network;
class FaultInjector;

/// Actor base class. Protocol nodes (validators, clients, load balancers)
/// derive from this and receive messages via handle_message.
class SimNode {
 public:
  SimNode(Simulation& simulation, NodeId id, RegionId region)
      : sim_(simulation), id_(id), region_(region) {}
  virtual ~SimNode() = default;

  NodeId id() const { return id_; }
  RegionId region() const { return region_; }
  Simulation& sim() { return sim_; }
  SimTime now() const { return sim_.now(); }
  const NodeStats& stats() const { return stats_; }

  virtual void handle_message(NodeId from, const MessagePtr& message) = 0;

  /// Serialize `cpu_cost` of work on this node's single core, then run `fn`.
  /// Work queues FIFO behind whatever the node is already doing — this is
  /// where validation cost turns into queueing delay under load.
  void post_work(SimDuration cpu_cost, EventFn fn);

  /// Convenience: send via the attached network.
  void send(NodeId to, MessagePtr message);

 private:
  friend class Network;
  Simulation& sim_;
  NodeId id_;
  RegionId region_;
  Network* network_ = nullptr;
  SimTime cpu_free_at_ = 0;
  NodeStats stats_;
};

struct NetworkConfig {
  LatencyModel latency = LatencyModel::uniform(1, millis(1));
  /// Per-node egress and ingress line rate. c5.2xlarge sustains ~2.5 Gbit/s;
  /// the default is deliberately in that range.
  double bandwidth_bps = 2.5e9;
  std::uint64_t seed = 42;
};

class Network {
 public:
  Network(Simulation& simulation, NetworkConfig config)
      : sim_(simulation), config_(std::move(config)), rng_(config_.seed) {}

  /// Register a node (not owned). Its id must equal its registration order;
  /// out-of-order ids and double-attach are SRBB_CHECK violations.
  void attach(SimNode* node);

  void send(NodeId from, NodeId to, MessagePtr message);

  /// Route every subsequent send through `injector` (not owned; nullptr
  /// disables injection). The injector decides drops, duplicates, reorder
  /// delays, and partition/crash blocking; the Network stays the sole owner
  /// of the queueing model.
  void set_fault_injector(FaultInjector* injector) { faults_ = injector; }
  FaultInjector* fault_injector() { return faults_; }

  std::size_t node_count() const { return nodes_.size(); }
  SimNode* node(NodeId id) { return nodes_[id]; }
  Simulation& sim() { return sim_; }
  const LatencyModel& latency() const { return config_.latency; }

  std::uint64_t total_messages() const { return total_messages_; }
  std::uint64_t total_bytes() const { return total_bytes_; }

  /// Emit `net.*` trace events (fault drops, duplicates, partition/crash
  /// blocking) into `trace`. Null disables (the default).
  void set_trace(obs::TraceSink* trace) { trace_ = trace; }

  /// Start accumulating a per-(from,to)-link message/byte matrix. Off by
  /// default: it costs n^2 counters, which the congestion benches at n=200
  /// don't want on every send.
  void enable_link_stats() { link_stats_enabled_ = true; }
  bool link_stats_enabled() const { return link_stats_enabled_; }
  std::uint64_t link_messages(NodeId from, NodeId to) const;
  std::uint64_t link_bytes(NodeId from, NodeId to) const;

 private:
  struct Nic {
    SimTime egress_free_at = 0;
    SimTime ingress_free_at = 0;
  };

  SimDuration transmission_delay(std::size_t bytes) const {
    return static_cast<SimDuration>(static_cast<double>(bytes) * 8.0 /
                                    config_.bandwidth_bps * kSecond);
  }

  void deliver_copy(NodeId from, NodeId to, MessagePtr message,
                    std::size_t bytes, SimDuration extra_delay);

  /// nodes_.size()^2 slots, row-major by sender; grown lazily on send so
  /// attach order doesn't matter.
  std::size_t link_slot(NodeId from, NodeId to) const {
    return static_cast<std::size_t>(from) * nodes_.size() + to;
  }
  void ensure_link_stats();

  Simulation& sim_;
  NetworkConfig config_;
  Rng rng_;
  FaultInjector* faults_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  std::vector<SimNode*> nodes_;
  std::vector<Nic> nics_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool link_stats_enabled_ = false;
  std::vector<std::uint64_t> link_messages_;
  std::vector<std::uint64_t> link_bytes_;
};

}  // namespace srbb::sim
