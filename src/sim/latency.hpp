// Inter-region latency model. aws_global() encodes the ten regions the paper
// deploys across (§V): Bahrain, Cape Town, Milan, Mumbai, N. Virginia, Ohio,
// Oregon, Stockholm, Sydney, Tokyo, with approximate one-way delays.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace srbb::sim {

using RegionId = std::uint32_t;

class LatencyModel {
 public:
  /// The paper's 10 AWS regions with measured-order-of-magnitude one-way
  /// delays and 10% jitter.
  static LatencyModel aws_global();
  /// One region (the Table I setup: Sydney only) with LAN-scale delay.
  static LatencyModel single_region(SimDuration one_way = millis(1));
  /// Uniform synthetic mesh for unit tests.
  static LatencyModel uniform(std::size_t regions, SimDuration one_way);

  std::size_t region_count() const { return names_.size(); }
  const std::string& region_name(RegionId region) const {
    return names_[region];
  }

  /// Sampled one-way delay between regions (base +/- jitter).
  SimDuration sample(RegionId from, RegionId to, Rng& rng) const;
  SimDuration base(RegionId from, RegionId to) const {
    return matrix_[from * names_.size() + to];
  }

  /// Spread n nodes across regions round-robin (the paper balances 200
  /// validators over 10 regions, 20 each).
  std::vector<RegionId> assign_round_robin(std::size_t n) const;

 private:
  std::vector<std::string> names_;
  std::vector<SimDuration> matrix_;  // row-major one-way base delays
  double jitter_fraction_ = 0.1;
};

}  // namespace srbb::sim
