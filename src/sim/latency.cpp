#include "sim/latency.hpp"

namespace srbb::sim {

namespace {

// One-way delays in milliseconds between the paper's 10 AWS regions,
// approximated from public inter-region RTT measurements (order: Bahrain,
// Cape Town, Milan, Mumbai, N. Virginia, Ohio, Oregon, Stockholm, Sydney,
// Tokyo). Within-region delay is ~1 ms.
constexpr std::uint32_t kAwsOneWayMs[10][10] = {
    //  BAH  CPT  MIL  BOM  IAD  CMH  PDX  ARN  SYD  NRT
    {1, 90, 55, 20, 95, 100, 130, 65, 110, 95},     // Bahrain
    {90, 1, 75, 55, 110, 115, 145, 85, 105, 120},   // Cape Town
    {55, 75, 1, 55, 45, 50, 75, 18, 125, 110},      // Milan
    {20, 55, 55, 1, 95, 100, 110, 70, 75, 60},      // Mumbai
    {95, 110, 45, 95, 1, 6, 35, 55, 100, 75},       // N. Virginia
    {100, 115, 50, 100, 6, 1, 25, 55, 95, 70},      // Ohio
    {130, 145, 75, 110, 35, 25, 1, 80, 70, 50},     // Oregon
    {65, 85, 18, 70, 55, 55, 80, 1, 140, 125},      // Stockholm
    {110, 105, 125, 75, 100, 95, 70, 140, 1, 55},   // Sydney
    {95, 120, 110, 60, 75, 70, 50, 125, 55, 1},     // Tokyo
};

}  // namespace

LatencyModel LatencyModel::aws_global() {
  LatencyModel model;
  model.names_ = {"Bahrain",     "Cape Town", "Milan",  "Mumbai",
                  "N. Virginia", "Ohio",      "Oregon", "Stockholm",
                  "Sydney",      "Tokyo"};
  model.matrix_.resize(100);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      model.matrix_[i * 10 + j] = millis(kAwsOneWayMs[i][j]);
    }
  }
  return model;
}

LatencyModel LatencyModel::single_region(SimDuration one_way) {
  LatencyModel model;
  model.names_ = {"Sydney"};
  model.matrix_ = {one_way};
  return model;
}

LatencyModel LatencyModel::uniform(std::size_t regions, SimDuration one_way) {
  LatencyModel model;
  for (std::size_t i = 0; i < regions; ++i) {
    model.names_.push_back("region-" + std::to_string(i));
  }
  model.matrix_.assign(regions * regions, one_way);
  return model;
}

SimDuration LatencyModel::sample(RegionId from, RegionId to, Rng& rng) const {
  const SimDuration base_delay = base(from, to);
  // Symmetric jitter: base * (1 +/- jitter_fraction).
  const double factor =
      1.0 + jitter_fraction_ * (2.0 * rng.next_double() - 1.0);
  return static_cast<SimDuration>(static_cast<double>(base_delay) * factor);
}

std::vector<RegionId> LatencyModel::assign_round_robin(std::size_t n) const {
  std::vector<RegionId> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<RegionId>(i % names_.size());
  }
  return out;
}

}  // namespace srbb::sim
