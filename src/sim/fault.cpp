#include "sim/fault.hpp"

#include <algorithm>

#include "common/invariant.hpp"

namespace srbb::sim {

FaultPlan FaultPlan::randomized(std::uint32_t n, SimTime horizon,
                                std::uint64_t seed, double max_drop,
                                std::uint32_t max_crashes) {
  // Derive everything from one private stream so the plan is a pure function
  // of (n, horizon, seed) and never perturbs the injector's runtime stream.
  Rng rng{seed ^ 0xFA017'F1A5ull};
  FaultPlan plan;
  plan.seed = seed;

  plan.default_link.drop = rng.next_double() * max_drop;
  plan.default_link.duplicate = rng.next_double() * max_drop * 0.5;
  plan.default_link.reorder = rng.next_double() * max_drop * 0.5;
  plan.default_link.reorder_delay_max = millis(10 + rng.next_below(90));

  // One symmetric partition that always heals inside the horizon: start in
  // the first half, last at most a quarter of the horizon. The island is a
  // contiguous rank range of size 1..n/2 (minority, so the rest can often —
  // but not always — keep quorum; with small n both sides may stall until
  // healing, which is exactly the liveness case the chaos suite checks).
  if (n >= 2 && horizon > 0) {
    PartitionSpec part;
    part.from = horizon / 8 + rng.next_below(horizon / 2);
    part.until = part.from + horizon / 8 + rng.next_below(horizon / 4);
    part.until = std::min<SimTime>(part.until, horizon - 1);
    const std::uint32_t island_size =
        1 + static_cast<std::uint32_t>(rng.next_below(std::max(1u, n / 2)));
    const std::uint32_t first =
        static_cast<std::uint32_t>(rng.next_below(n));
    for (std::uint32_t i = 0; i < island_size; ++i) {
      part.island.push_back((first + i) % n);
    }
    part.asymmetric = rng.next_bool(0.25);
    if (part.until > part.from) plan.partitions.push_back(part);
  }

  // Crash/restart cycles: each node crashes at most once, always restarting
  // with at least a quarter of the horizon left to catch up.
  const std::uint32_t crash_count = max_crashes == 0
                                        ? 0
                                        : static_cast<std::uint32_t>(
                                              rng.next_below(max_crashes + 1));
  std::vector<NodeId> crashed;
  for (std::uint32_t c = 0; c < crash_count && n > 0; ++c) {
    CrashSpec crash;
    crash.node = static_cast<NodeId>(rng.next_below(n));
    if (std::find(crashed.begin(), crashed.end(), crash.node) !=
        crashed.end()) {
      continue;
    }
    crashed.push_back(crash.node);
    crash.at = horizon / 8 + rng.next_below(horizon / 4);
    crash.restart_at = crash.at + horizon / 8 + rng.next_below(horizon / 4);
    plan.crashes.push_back(crash);
  }

  // Occasionally a global delay spike somewhere in the middle of the run.
  if (rng.next_bool(0.5) && horizon > 0) {
    DelaySpike spike;
    spike.from = rng.next_below(horizon / 2);
    spike.until = spike.from + rng.next_below(horizon / 4);
    spike.extra = millis(5 + rng.next_below(45));
    if (spike.until > spike.from) plan.delay_spikes.push_back(spike);
  }
  return plan;
}

FaultPlan& FaultPlan::flapping(NodeId node, SimTime from, SimTime until,
                               SimDuration period, double duty_cycle) {
  SRBB_CHECK(period > 0);
  const double duty = std::clamp(duty_cycle, 0.0, 1.0);
  const auto up =
      static_cast<SimDuration>(static_cast<double>(period) * duty);
  for (SimTime cycle = from; cycle < until; cycle += period) {
    const SimTime down_at = cycle + up;
    const SimTime back_at = std::min<SimTime>(cycle + period, until);
    if (down_at >= back_at) continue;  // no down window inside this cycle
    crashes.push_back(CrashSpec{node, down_at, back_at});
  }
  return *this;
}

FaultPlan& FaultPlan::rolling_restart(std::uint32_t n, SimTime from,
                                      SimDuration window,
                                      SimDuration downtime) {
  SRBB_CHECK(n > 0);
  SRBB_CHECK(downtime > 0);
  const SimDuration stride = window / n;
  for (std::uint32_t r = 0; r < n; ++r) {
    const SimTime at = from + static_cast<SimTime>(r) * stride;
    crashes.push_back(CrashSpec{r, at, at + downtime});
  }
  return *this;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed ^ 0xC4A05ull) {}

void FaultInjector::arm(Simulation& sim, std::function<void(NodeId)> on_crash,
                        std::function<void(NodeId)> on_restart) {
  for (const CrashSpec& crash : plan_.crashes) {
    const NodeId node = crash.node;
    sim.schedule_at(crash.at, [this, node, on_crash] {
      ++stats_.crashes_fired;
      if (on_crash) on_crash(node);
    });
    if (crash.restart_at != 0) {
      SRBB_CHECK(crash.restart_at > crash.at);
      sim.schedule_at(crash.restart_at, [this, node, on_restart] {
        ++stats_.restarts_fired;
        if (on_restart) on_restart(node);
      });
    }
  }
}

bool FaultInjector::node_down(NodeId node, SimTime now) const {
  for (const CrashSpec& crash : plan_.crashes) {
    if (crash.node == node && crash.down_at(now)) return true;
  }
  return false;
}

bool FaultInjector::link_blocked(NodeId from, NodeId to, SimTime now) const {
  for (const PartitionSpec& part : plan_.partitions) {
    if (!part.active_at(now)) continue;
    const bool from_in = std::find(part.island.begin(), part.island.end(),
                                   from) != part.island.end();
    const bool to_in = std::find(part.island.begin(), part.island.end(),
                                 to) != part.island.end();
    if (from_in == to_in) continue;  // same side of the cut
    if (part.asymmetric) {
      if (from_in) return true;  // island cannot speak out
    } else {
      return true;  // symmetric: nothing crosses
    }
  }
  return false;
}

const LinkFaults& FaultInjector::link_faults(NodeId from, NodeId to) const {
  const auto it = plan_.links.find({from, to});
  return it != plan_.links.end() ? it->second : plan_.default_link;
}

SimDuration FaultInjector::spike_delay(SimTime now) const {
  SimDuration extra = 0;
  for (const DelaySpike& spike : plan_.delay_spikes) {
    if (now >= spike.from && now < spike.until) extra += spike.extra;
  }
  return extra;
}

FaultInjector::Verdict FaultInjector::judge(NodeId from, NodeId to,
                                            SimTime now) {
  Verdict verdict;
  // Crash and partition blocking are pure functions of the timeline — they
  // never consume randomness, so adding a partition to a plan does not
  // reshuffle the drop schedule elsewhere.
  if (node_down(from, now) || node_down(to, now)) {
    ++stats_.crash_blocked;
    verdict.deliver = false;
    return verdict;
  }
  if (link_blocked(from, to, now)) {
    ++stats_.partition_blocked;
    verdict.deliver = false;
    return verdict;
  }
  const LinkFaults& faults = link_faults(from, to);
  if (faults.drop > 0.0 && rng_.next_bool(faults.drop)) {
    ++stats_.dropped;
    verdict.deliver = false;
    return verdict;
  }
  if (faults.duplicate > 0.0 && rng_.next_bool(faults.duplicate)) {
    ++stats_.duplicated;
    verdict.copies = 2;
  }
  if (faults.reorder > 0.0 && rng_.next_bool(faults.reorder)) {
    ++stats_.reordered;
    verdict.extra_delay += static_cast<SimDuration>(
        rng_.next_below(static_cast<std::uint64_t>(faults.reorder_delay_max)));
  }
  verdict.extra_delay += spike_delay(now);
  return verdict;
}

}  // namespace srbb::sim
