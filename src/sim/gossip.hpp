// Static random overlay used for per-transaction gossip in the modern-
// blockchain protocol (Alg. 1 line 9) and for block dissemination. Each node
// gets `fanout` distinct peers; the graph is connected by construction (a
// random ring plus random extra edges), deterministic in the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/network.hpp"

namespace srbb::sim {

class GossipOverlay {
 public:
  GossipOverlay(std::size_t node_count, std::size_t fanout, std::uint64_t seed);

  const std::vector<NodeId>& peers(NodeId node) const { return peers_[node]; }
  std::size_t node_count() const { return peers_.size(); }

  /// True when every node can reach every other (sanity check for tests).
  bool connected() const;

 private:
  std::vector<std::vector<NodeId>> peers_;
};

}  // namespace srbb::sim
