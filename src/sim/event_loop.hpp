// Deterministic discrete-event engine. Events fire in (time, insertion)
// order, so a run is a pure function of its seed — the property every
// experiment in EXPERIMENTS.md relies on for reproducibility.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.hpp"

namespace srbb::sim {

using EventFn = std::function<void()>;

class Simulation {
 public:
  SimTime now() const { return now_; }

  void schedule_at(SimTime time, EventFn fn);
  void schedule_after(SimDuration delay, EventFn fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Process events up to and including `end`; the clock lands on `end`.
  void run_until(SimTime end);
  /// Process until the queue drains.
  void run_until_idle();

  std::uint64_t events_processed() const { return processed_; }
  std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace srbb::sim
