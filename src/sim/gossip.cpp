#include "sim/gossip.hpp"

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"

namespace srbb::sim {

GossipOverlay::GossipOverlay(std::size_t node_count, std::size_t fanout,
                             std::uint64_t seed) {
  peers_.resize(node_count);
  if (node_count <= 1) return;
  fanout = std::min(fanout, node_count - 1);
  Rng rng{seed};

  // Random ring for guaranteed connectivity.
  std::vector<NodeId> ring(node_count);
  std::iota(ring.begin(), ring.end(), 0u);
  for (std::size_t i = ring.size(); i > 1; --i) {
    std::swap(ring[i - 1], ring[rng.next_below(i)]);
  }
  const auto add_edge = [this](NodeId a, NodeId b) {
    if (a == b) return;
    auto& pa = peers_[a];
    if (std::find(pa.begin(), pa.end(), b) == pa.end()) pa.push_back(b);
    auto& pb = peers_[b];
    if (std::find(pb.begin(), pb.end(), a) == pb.end()) pb.push_back(a);
  };
  for (std::size_t i = 0; i < node_count; ++i) {
    add_edge(ring[i], ring[(i + 1) % node_count]);
  }

  // Random extra edges until every node has at least `fanout` peers.
  for (NodeId node = 0; node < node_count; ++node) {
    std::size_t attempts = 0;
    while (peers_[node].size() < fanout && attempts < 16 * node_count) {
      add_edge(node, static_cast<NodeId>(rng.next_below(node_count)));
      ++attempts;
    }
  }
}

bool GossipOverlay::connected() const {
  if (peers_.empty()) return true;
  std::vector<bool> seen(peers_.size(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId current = stack.back();
    stack.pop_back();
    for (const NodeId peer : peers_[current]) {
      if (!seen[peer]) {
        seen[peer] = true;
        ++visited;
        stack.push_back(peer);
      }
    }
  }
  return visited == peers_.size();
}

}  // namespace srbb::sim
