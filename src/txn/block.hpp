// Blocks and proposer certificates. A block is a batch of transactions
// (§II-A); its certificate Cert_B = {P_k, (h_t)_Sk} — the proposer's public
// key and the signed transaction-set hash — is what RPM (Alg. 2) verifies
// when rewarding and reporting proposers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/merkle.hpp"
#include "crypto/signature.hpp"
#include "txn/txref.hpp"

namespace srbb::txn {

struct BlockCertificate {
  crypto::PublicKey proposer_pubkey{};
  crypto::Signature signed_tx_root{};  // (h_t)_Sk
};

struct BlockHeader {
  std::uint64_t index = 0;     // consensus index k
  std::uint64_t proposer = 0;  // validator id (for bookkeeping/metrics)
  std::uint64_t timestamp = 0;
  Hash32 parent_hash;
  Hash32 tx_root;  // merkle root over transaction hashes == h_t
  BlockCertificate cert;
};

struct Block {
  BlockHeader header;
  std::vector<TxPtr> txs;

  /// Merkle root over the transaction hashes (h_t in Alg. 2).
  Hash32 compute_tx_root() const;
  /// Block identity: hash of header fields + tx root.
  Hash32 hash() const;
  /// Wire size estimate for bandwidth accounting: header overhead plus the
  /// exact wire size of every transaction.
  std::size_t wire_size() const;
};

using BlockPtr = std::shared_ptr<const Block>;

/// Header validity as consensus sees it (Alg. 1 line 16): the certificate's
/// signature over the tx root verifies and the root matches the payload.
bool verify_block_certificate(const Block& block,
                              const crypto::SignatureScheme& scheme);

/// Build a block over `txs` and sign its certificate with `proposer`.
Block make_block(std::uint64_t index, std::uint64_t proposer_id,
                 std::uint64_t timestamp, const Hash32& parent_hash,
                 std::vector<TxPtr> txs, const crypto::Identity& proposer,
                 const crypto::SignatureScheme& scheme);

/// RLP wire format:
/// [index, proposer, timestamp, parent_hash, tx_root, pubkey, sig, [tx...]].
Bytes encode_block(const Block& block);
/// Strict decode; transaction bodies are re-parsed and re-cached.
Result<Block> decode_block(BytesView wire);

/// Superblock frame: `[index, [block, block, ...]]` with the blocks in their
/// decided (proposer-rank) order — what a validator persists per index and
/// serves to nodes syncing the chain.
Bytes encode_superblock(std::uint64_t index,
                        const std::vector<BlockPtr>& blocks);
struct Superblock {
  std::uint64_t index = 0;
  std::vector<BlockPtr> blocks;
};
/// Strict decode of a superblock frame. Rejects frames whose blocks carry a
/// different consensus index than the frame itself.
Result<Superblock> decode_superblock(BytesView wire);

}  // namespace srbb::txn
