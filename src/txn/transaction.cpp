#include "txn/transaction.hpp"

#include <cstring>

#include "codec/rlp.hpp"
#include "crypto/keccak.hpp"

namespace srbb::txn {

namespace {

rlp::ListBuilder unsigned_fields(const Transaction& tx) {
  rlp::ListBuilder rlp;
  rlp.add_u64(static_cast<std::uint64_t>(tx.kind));
  rlp.add_u64(tx.nonce);
  rlp.add_u256(tx.gas_price);
  rlp.add_u64(tx.gas_limit);
  rlp.add_bytes(tx.to.view());
  rlp.add_u256(tx.value);
  rlp.add_bytes(tx.data);
  return rlp;
}

}  // namespace

Address Transaction::sender() const {
  return crypto::address_from_pubkey(
      BytesView{sender_pubkey.data(), sender_pubkey.size()});
}

Hash32 Transaction::signing_hash() const {
  return crypto::Keccak256::hash(unsigned_fields(*this).build());
}

Hash32 Transaction::hash() const {
  return crypto::Keccak256::hash(encode());
}

Bytes Transaction::encode() const {
  rlp::ListBuilder rlp = unsigned_fields(*this);
  rlp.add_bytes(BytesView{sender_pubkey.data(), sender_pubkey.size()});
  rlp.add_bytes(BytesView{signature.data(), signature.size()});
  return rlp.build();
}

std::size_t Transaction::wire_size() const { return encode().size(); }

Result<Transaction> Transaction::decode(BytesView wire) {
  rlp::ViewDoc doc;
  auto root = rlp::decode_view(wire, doc);
  if (!root) return root.status();
  return decode_tx_view(root.value());
}

Result<Transaction> decode_tx_view(const rlp::ItemView& root) {
  if (!root.is_list() || root.size() != 9) {
    return Status::error("tx: expected 9-item list");
  }
  // One O(n) sibling walk instead of nine O(i) child() lookups.
  rlp::ItemView f[9];
  f[0] = root.child(0);
  for (std::size_t i = 1; i < 9; ++i) f[i] = f[i - 1].next_sibling();

  Transaction tx;
  auto kind = f[0].as_u64();
  if (!kind || kind.value() > 2) return Status::error("tx: bad kind");
  tx.kind = static_cast<TxKind>(kind.value());
  auto nonce = f[1].as_u64();
  if (!nonce) return nonce.status();
  tx.nonce = nonce.value();
  auto gas_price = f[2].as_u256();
  if (!gas_price) return gas_price.status();
  tx.gas_price = gas_price.value();
  auto gas_limit = f[3].as_u64();
  if (!gas_limit) return gas_limit.status();
  tx.gas_limit = gas_limit.value();
  if (f[4].is_list() || f[4].payload().size() != 20) {
    return Status::error("tx: bad to-address");
  }
  tx.to = Address{f[4].payload()};
  auto value = f[5].as_u256();
  if (!value) return value.status();
  tx.value = value.value();
  if (f[6].is_list()) return Status::error("tx: bad data field");
  tx.data.assign(f[6].payload().begin(), f[6].payload().end());
  if (f[7].is_list() || f[7].payload().size() != 32) {
    return Status::error("tx: bad public key");
  }
  std::memcpy(tx.sender_pubkey.data(), f[7].payload().data(), 32);
  if (f[8].is_list() || f[8].payload().size() != 64) {
    return Status::error("tx: bad signature");
  }
  std::memcpy(tx.signature.data(), f[8].payload().data(), 64);
  return tx;
}

Result<Transaction> Transaction::decode_copying(BytesView wire) {
  auto doc = rlp::decode(wire);
  if (!doc) return doc.status();
  const rlp::Item& root = doc.value();
  if (!root.is_list || root.items.size() != 9) {
    return Status::error("tx: expected 9-item list");
  }
  Transaction tx;
  auto kind = root.items[0].as_u64();
  if (!kind || kind.value() > 2) return Status::error("tx: bad kind");
  tx.kind = static_cast<TxKind>(kind.value());
  auto nonce = root.items[1].as_u64();
  if (!nonce) return nonce.status();
  tx.nonce = nonce.value();
  auto gas_price = root.items[2].as_u256();
  if (!gas_price) return gas_price.status();
  tx.gas_price = gas_price.value();
  auto gas_limit = root.items[3].as_u64();
  if (!gas_limit) return gas_limit.status();
  tx.gas_limit = gas_limit.value();
  if (root.items[4].is_list || root.items[4].payload.size() != 20) {
    return Status::error("tx: bad to-address");
  }
  tx.to = Address{BytesView{root.items[4].payload}};
  auto value = root.items[5].as_u256();
  if (!value) return value.status();
  tx.value = value.value();
  if (root.items[6].is_list) return Status::error("tx: bad data field");
  tx.data = root.items[6].payload;
  if (root.items[7].is_list || root.items[7].payload.size() != 32) {
    return Status::error("tx: bad public key");
  }
  std::memcpy(tx.sender_pubkey.data(), root.items[7].payload.data(), 32);
  if (root.items[8].is_list || root.items[8].payload.size() != 64) {
    return Status::error("tx: bad signature");
  }
  std::memcpy(tx.signature.data(), root.items[8].payload.data(), 64);
  return tx;
}

Transaction make_signed(const TxParams& params, const crypto::Identity& identity,
                        const crypto::SignatureScheme& scheme) {
  Transaction tx;
  tx.kind = params.kind;
  tx.nonce = params.nonce;
  tx.gas_price = params.gas_price;
  tx.gas_limit = params.gas_limit;
  tx.to = params.to;
  tx.value = params.value;
  tx.data = params.data;
  tx.sender_pubkey = identity.public_key;
  const Hash32 digest = tx.signing_hash();
  tx.signature = scheme.sign(identity, digest.view());
  return tx;
}

bool verify_signature(const Transaction& tx,
                      const crypto::SignatureScheme& scheme) {
  const Hash32 digest = tx.signing_hash();
  return scheme.verify(digest.view(), tx.signature, tx.sender_pubkey);
}

}  // namespace srbb::txn
