#include "txn/rwset.hpp"

#include "evm/analysis/interproc.hpp"

namespace srbb::txn {

namespace {

using state::AccessField;
using state::AccessKey;

/// Low 20 bytes of a 32-byte word — the interpreter's address_from_u256.
Address address_from_word(const U256& word) {
  const Bytes be = word.be_bytes();
  return Address{BytesView{be.data() + 12, 20}};
}

/// Predict the writes of OverlayState::touch() on `addr`: when the base
/// account does not exist, the first write masks the base and (re)defines
/// every scalar field.
void predict_touch(PredictedRwSet& p, const state::StateDB& db,
                   const Address& addr) {
  p.reads.insert(AccessKey::account(addr, AccessField::kExists));
  if (!db.account_exists(addr)) {
    p.writes.insert(AccessKey::account(addr, AccessField::kExists));
    p.writes.insert(AccessKey::account(addr, AccessField::kBalance));
    p.writes.insert(AccessKey::account(addr, AccessField::kNonce));
    p.writes.insert(AccessKey::account(addr, AccessField::kCode));
  }
}

void predict_balance_rw(PredictedRwSet& p, const state::StateDB& db,
                        const Address& addr) {
  predict_touch(p, db, addr);
  p.reads.insert(AccessKey::account(addr, AccessField::kBalance));
  p.writes.insert(AccessKey::account(addr, AccessField::kBalance));
}

}  // namespace

PredictedRwSet predict_rwset(const Transaction& tx, const state::StateDB& db,
                             const evm::BlockContext& block,
                             evm::analysis::AnalysisCache& cache) {
  PredictedRwSet p;
  if (tx.kind == TxKind::kDeploy) {
    // Deployments create a fresh account at a nonce-derived address and run
    // arbitrary init code — no useful bound.
    p.top = true;
    return p;
  }

  const Address sender = tx.sender();

  // apply_transaction's own touches: lazy validation reads the sender's
  // nonce and balance; execution prepays gas (balance r/w), bumps the nonce
  // (nonce r/w) and refunds leftover gas (balance r/w again).
  predict_balance_rw(p, db, sender);
  p.reads.insert(AccessKey::account(sender, AccessField::kNonce));
  p.writes.insert(AccessKey::account(sender, AccessField::kNonce));

  // Block reward: add_balance on a non-zero coinbase when gas was burned.
  if (!block.coinbase.is_zero()) {
    predict_balance_rw(p, db, block.coinbase);
  }

  // Value transfer to the target (both kTransfer and payable kInvoke).
  if (!tx.value.is_zero()) {
    predict_balance_rw(p, db, tx.to);
  }

  // The EVM checks the target account's existence and loads its code for
  // every message call (kTransfer runs target code too when the destination
  // is a contract); a missing target is created by the first touch.
  predict_touch(p, db, tx.to);
  p.reads.insert(AccessKey::account(tx.to, AccessField::kCode));

  const Bytes& code = db.code(tx.to);
  if (code.empty()) return p;  // plain transfer / EOA target: done

  // Composed whole-call-tree summary (interproc.hpp): the state-keyed wrapper
  // is the only sanctioned path to callee summaries here — it re-validates
  // the resolved callee code set against `db` on every lookup.
  const std::shared_ptr<const evm::analysis::ComposedSummary> composed =
      evm::analysis::InterprocCache::global().get(db, tx.to, cache);
  if (composed->top) {
    p.top = true;
    return p;
  }

  // Every resolved non-precompile call edge makes the interpreter check the
  // callee's existence and load its code (empty-code targets included);
  // precompiles short-circuit before any state read.
  for (const evm::analysis::CallEdge& e : composed->edges) {
    if (e.precompile) continue;
    predict_touch(p, db, e.callee);
    p.reads.insert(AccessKey::account(e.callee, AccessField::kCode));
  }

  const evm::analysis::ResolveContext ctx{
      .calldata = BytesView{tx.data.data(), tx.data.size()},
      .caller = sender,
      .self = tx.to,
      .callvalue = tx.value,
  };
  const auto resolve_into = [&](const std::vector<evm::analysis::SymExpr>& exprs,
                                const Address& account, state::AccessSet& reads,
                                state::AccessSet* writes) {
    for (const evm::analysis::SymExpr& e : exprs) {
      const std::optional<U256> word = evm::analysis::resolve(e, ctx);
      if (!word) {  // unresolvable key escaped the summary: no silent miss
        p.top = true;
        return;
      }
      const AccessKey key = AccessKey::storage_slot(account, word->to_hash());
      // SSTORE reads the current value before writing, so every predicted
      // write slot is also a predicted read.
      reads.insert(key);
      if (writes != nullptr) writes->insert(key);
    }
  };
  for (const evm::analysis::AccountAccess& aa : composed->accesses) {
    const std::optional<U256> account_word = evm::analysis::resolve(aa.account, ctx);
    if (!account_word) {
      p.top = true;
      break;
    }
    const Address account = address_from_word(*account_word);
    resolve_into(aa.reads, account, p.reads, nullptr);
    if (p.top) break;
    resolve_into(aa.writes, account, p.reads, &p.writes);
    if (p.top) break;
  }
  if (!p.top) {
    for (const evm::analysis::SymExpr& e : composed->balance_reads) {
      const std::optional<U256> word = evm::analysis::resolve(e, ctx);
      if (!word) {
        p.top = true;
        break;
      }
      p.reads.insert(AccessKey::account(address_from_word(*word),
                                        AccessField::kBalance));
    }
  }
  return p;
}

}  // namespace srbb::txn
