// The paper's two validation tiers (§II-B):
//
//  - Eager validation runs when a transaction first arrives (from a client in
//    SRBB; from clients *and* peers in modern blockchains). It checks the
//    signature — the expensive part — plus size, balance and a nonce window.
//  - Lazy validation runs just before execution and checks only nonce, gas
//    affordability and balance. It is deliberately weaker and cheaper; a
//    transaction that slips through fails at execution time without touching
//    state (Alg. 1 lines 32-40).
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "crypto/signature.hpp"
#include "evm/analysis/cache.hpp"
#include "state/statedb.hpp"
#include "txn/transaction.hpp"

namespace srbb::txn {

struct ValidationConfig {
  std::size_t max_tx_size = 128 * 1024;  // bytes on the wire
  std::uint64_t min_gas_limit = 21'000;
  /// How far ahead of the account nonce a pending tx may be queued.
  std::uint64_t nonce_window = 1024;
  /// Static min-gas gate (check (vi), PR 5): an invoke whose gas budget is
  /// below the callee's statically-proven minimum for any successful path is
  /// doomed work — drop it at eager time instead of shipping it through
  /// consensus. nullptr disables the gate.
  evm::analysis::AnalysisCache* analysis_cache =
      &evm::analysis::AnalysisCache::global();
};

/// Full check: signature (i), size (ii), nonce window (iii), gas
/// affordability (iv), transferred value coverage (v).
Status eager_validate(const Transaction& tx, const state::StateView& db,
                      const crypto::SignatureScheme& scheme,
                      const ValidationConfig& config);

/// Cheap pre-execution check: (iii) nonce is next, (iv) gas covered,
/// (v) value covered. No signature verification.
Status lazy_validate(const Transaction& tx, const state::StateView& db);

/// 21000 + calldata pricing + creation surcharge; transactions whose gas
/// limit cannot cover this are invalid.
std::uint64_t intrinsic_gas(const Transaction& tx);

}  // namespace srbb::txn
