#include "txn/pipeline.hpp"

#include <string>

#include "evm/analysis/interproc.hpp"

namespace srbb::txn {

namespace {

// Maximum wei the transaction can cost: gas budget plus transferred value.
U256 max_cost(const Transaction& tx) {
  return tx.gas_price * U256{tx.gas_limit} + tx.value;
}

Status structural_check(const CachedTx& cached,
                        const ValidationConfig& config) {
  // (ii) size limit first: cheap and bounds later work. The cached wire size
  // equals tx.wire_size() — the codec round-trip is canonical.
  if (cached.size > config.max_tx_size) {
    return Status::error("eager: transaction exceeds size limit");
  }
  if (cached.tx.gas_limit < config.min_gas_limit ||
      cached.tx.gas_limit < intrinsic_gas(cached.tx)) {
    return Status::error("eager: gas limit below intrinsic cost");
  }
  return Status::ok();
}

Status state_check(const CachedTx& cached, const state::StateView& db,
                   const ValidationConfig& config) {
  const Transaction& tx = cached.tx;
  const Address& sender = cached.sender;
  // (iii) nonce must not be in the past, and not absurdly far in the future.
  const std::uint64_t account_nonce = db.nonce(sender);
  if (tx.nonce < account_nonce) {
    return Status::error("eager: stale nonce");
  }
  if (tx.nonce > account_nonce + config.nonce_window) {
    return Status::error("eager: nonce too far in the future");
  }
  // (iv) + (v) the account can afford worst-case gas plus the value moved.
  if (db.balance(sender) < max_cost(tx)) {
    return Status::error("eager: insufficient balance for gas + value");
  }
  // (vi) static min-gas gate, as in eager_validate: the composed
  // interprocedural bound, so invoke-of-router transactions are gated by
  // their whole call tree, not just the entry frame.
  if (config.analysis_cache != nullptr && tx.kind == TxKind::kInvoke) {
    const Bytes& code = db.code(tx.to);
    if (!code.empty()) {
      const auto composed = evm::analysis::InterprocCache::global().get(
          db, tx.to, *config.analysis_cache);
      const std::uint64_t budget = tx.gas_limit - intrinsic_gas(tx);
      if (composed->min_gas ==
              evm::analysis::AnalysisResult::kNoSuccessfulPath ||
          budget < composed->min_gas) {
        return Status::error("eager: gas limit below callee static minimum");
      }
    }
  }
  return Status::ok();
}

}  // namespace

void StructuralStage::run(ValidationBatch& batch) const {
  const std::size_t n = batch.txs.size();
  auto check = [&](std::size_t i) {
    if (!batch.results[i].is_ok()) return;
    Status status = structural_check(*batch.txs[i], *config_);
    if (!status.is_ok()) batch.results[i] = std::move(status);
  };
  if (pool_ != nullptr && n >= min_parallel_) {
    // Distinct vector elements; no two workers touch the same index.
    pool_->parallel_for(n, check);
  } else {
    for (std::size_t i = 0; i < n; ++i) check(i);
  }
}

void SignatureStage::run(ValidationBatch& batch) const {
  std::vector<std::uint32_t> live;
  std::vector<crypto::BatchVerifyItem> items;
  live.reserve(batch.txs.size());
  items.reserve(batch.txs.size());
  for (std::size_t i = 0; i < batch.txs.size(); ++i) {
    if (!batch.results[i].is_ok()) continue;
    const CachedTx& cached = *batch.txs[i];
    // The message is the cached signing digest — a view into the CachedTx,
    // which outlives the call via the batch's TxPtr span.
    items.push_back({cached.signing_hash.view(), cached.tx.signature,
                     cached.tx.sender_pubkey});
    live.push_back(static_cast<std::uint32_t>(i));
  }
  if (items.empty()) return;
  const std::vector<bool> ok = verifier_->verify(*scheme_, items);
  for (std::size_t j = 0; j < live.size(); ++j) {
    if (!ok[j]) {
      batch.results[live[j]] = Status::error("eager: invalid signature");
    }
  }
}

void StateStage::run(ValidationBatch& batch) const {
  for (std::size_t i = 0; i < batch.txs.size(); ++i) {
    if (!batch.results[i].is_ok()) continue;
    Status status = state_check(*batch.txs[i], *batch.db, *config_);
    if (!status.is_ok()) batch.results[i] = std::move(status);
  }
}

ValidationPipeline::ValidationPipeline(const crypto::SignatureScheme& scheme,
                                       ValidationConfig config,
                                       PipelineOptions options)
    : scheme_(&scheme), config_(config) {
  const crypto::BatchVerifier& verifier =
      options.verifier != nullptr ? *options.verifier : default_verifier_;
  stages_.push_back(std::make_unique<StructuralStage>(config_, options.pool,
                                                      options.min_parallel));
  stages_.push_back(std::make_unique<SignatureStage>(*scheme_, verifier));
  stages_.push_back(std::make_unique<StateStage>(config_));
  if (options.metrics != nullptr) {
    counters_.reserve(stages_.size());
    for (const auto& stage : stages_) {
      const std::string base =
          std::string("validate.stage.") + stage->name();
      counters_.push_back({&options.metrics->counter(base + ".pass"),
                           &options.metrics->counter(base + ".fail")});
    }
  }
}

std::vector<Status> ValidationPipeline::validate(
    std::span<const TxPtr> txs, const state::StateView& db) const {
  ValidationBatch batch;
  batch.txs = txs;
  batch.db = &db;
  batch.results.assign(txs.size(), Status::ok());
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    std::size_t entering = 0;
    if (!counters_.empty()) {
      for (const Status& r : batch.results) entering += r.is_ok() ? 1 : 0;
    }
    stages_[s]->run(batch);
    if (!counters_.empty()) {
      std::size_t surviving = 0;
      for (const Status& r : batch.results) surviving += r.is_ok() ? 1 : 0;
      counters_[s].pass->inc(surviving);
      counters_[s].fail->inc(entering - surviving);
    }
  }
  return std::move(batch.results);
}

Status ValidationPipeline::validate_one(const CachedTx& tx,
                                        const state::StateView& db) const {
  return eager_validate_cached(tx, db, *scheme_, config_);
}

Status eager_validate_cached(const CachedTx& tx, const state::StateView& db,
                             const crypto::SignatureScheme& scheme,
                             const ValidationConfig& config) {
  Status status = structural_check(tx, config);
  if (!status.is_ok()) return status;
  // (i) signature over the cached digest — the expensive check.
  if (!scheme.verify(tx.signing_hash.view(), tx.tx.signature,
                     tx.tx.sender_pubkey)) {
    return Status::error("eager: invalid signature");
  }
  return state_check(tx, db, config);
}

}  // namespace srbb::txn
