#include "txn/block.hpp"

#include <cstring>

#include "codec/rlp.hpp"
#include "crypto/sha256.hpp"

namespace srbb::txn {

Hash32 Block::compute_tx_root() const {
  std::vector<Hash32> leaves;
  leaves.reserve(txs.size());
  for (const TxPtr& tx : txs) leaves.push_back(tx->hash);
  return crypto::merkle_root(leaves);
}

Hash32 Block::hash() const {
  crypto::Sha256 h;
  std::uint8_t buf[8];
  put_be64(buf, header.index);
  h.update(BytesView{buf, 8});
  put_be64(buf, header.proposer);
  h.update(BytesView{buf, 8});
  put_be64(buf, header.timestamp);
  h.update(BytesView{buf, 8});
  h.update(header.parent_hash.view());
  h.update(header.tx_root.view());
  h.update(BytesView{header.cert.proposer_pubkey.data(), 32});
  return h.finish();
}

std::size_t Block::wire_size() const {
  // Header fields + certificate: index/proposer/timestamp (24) + parent and
  // root hashes (64) + pubkey (32) + signature (64).
  std::size_t size = 184;
  for (const TxPtr& tx : txs) size += tx->size;
  return size;
}

bool verify_block_certificate(const Block& block,
                              const crypto::SignatureScheme& scheme) {
  if (block.compute_tx_root() != block.header.tx_root) return false;
  return scheme.verify(block.header.tx_root.view(),
                       block.header.cert.signed_tx_root,
                       block.header.cert.proposer_pubkey);
}

Bytes encode_block(const Block& block) {
  rlp::ListBuilder rlp;
  rlp.add_u64(block.header.index);
  rlp.add_u64(block.header.proposer);
  rlp.add_u64(block.header.timestamp);
  rlp.add_bytes(block.header.parent_hash.view());
  rlp.add_bytes(block.header.tx_root.view());
  rlp.add_bytes(BytesView{block.header.cert.proposer_pubkey.data(), 32});
  rlp.add_bytes(BytesView{block.header.cert.signed_tx_root.data(), 64});
  rlp::ListBuilder tx_list;
  for (const TxPtr& tx : block.txs) tx_list.add_bytes(tx->tx.encode());
  rlp.add_raw(tx_list.build());
  return rlp.build();
}

namespace {

// Zero-copy block decode: the frame is parsed once into `doc`, each
// transaction entry is a view slice of `wire`, and `tx_doc` is reused as the
// parse arena across entries. The wire slice also supplies each CachedTx id
// hash and size without re-encoding.
Result<Block> decode_block_view(BytesView wire, rlp::ViewDoc& doc,
                                rlp::ViewDoc& tx_doc) {
  auto parsed = rlp::decode_view(wire, doc);
  if (!parsed) return parsed.status();
  const rlp::ItemView root = parsed.value();
  if (!root.is_list() || root.size() != 8) {
    return Status::error("block: expected 8-item list");
  }
  rlp::ItemView f[8];
  f[0] = root.child(0);
  for (std::size_t i = 1; i < 8; ++i) f[i] = f[i - 1].next_sibling();

  Block block;
  auto index = f[0].as_u64();
  if (!index) return index.status();
  block.header.index = index.value();
  auto proposer = f[1].as_u64();
  if (!proposer) return proposer.status();
  block.header.proposer = proposer.value();
  auto timestamp = f[2].as_u64();
  if (!timestamp) return timestamp.status();
  block.header.timestamp = timestamp.value();
  if (f[3].payload().size() != 32 || f[4].payload().size() != 32) {
    return Status::error("block: bad hash field");
  }
  block.header.parent_hash = Hash32{f[3].payload()};
  block.header.tx_root = Hash32{f[4].payload()};
  if (f[5].payload().size() != 32 || f[6].payload().size() != 64) {
    return Status::error("block: bad certificate field");
  }
  std::memcpy(block.header.cert.proposer_pubkey.data(), f[5].payload().data(),
              32);
  std::memcpy(block.header.cert.signed_tx_root.data(), f[6].payload().data(),
              64);
  if (!f[7].is_list()) return Status::error("block: bad tx list");
  const std::size_t tx_count = f[7].size();
  block.txs.reserve(tx_count);
  rlp::ItemView entry = tx_count > 0 ? f[7].child(0) : rlp::ItemView{};
  for (std::size_t i = 0; i < tx_count; ++i, entry = entry.next_sibling()) {
    if (entry.is_list()) return Status::error("block: bad tx entry");
    const BytesView tx_wire = entry.payload();
    auto tx_parsed = rlp::decode_view(tx_wire, tx_doc);
    if (!tx_parsed) return tx_parsed.status();
    auto tx = decode_tx_view(tx_parsed.value());
    if (!tx) return tx.status();
    block.txs.push_back(make_tx_ptr(std::move(tx).take(), tx_wire));
  }
  return block;
}

}  // namespace

Result<Block> decode_block(BytesView wire) {
  rlp::ViewDoc doc;
  rlp::ViewDoc tx_doc;
  return decode_block_view(wire, doc, tx_doc);
}

Bytes encode_superblock(std::uint64_t index,
                        const std::vector<BlockPtr>& blocks) {
  rlp::ListBuilder frame;
  frame.add_u64(index);
  rlp::ListBuilder block_list;
  for (const BlockPtr& block : blocks) block_list.add_bytes(encode_block(*block));
  frame.add_raw(block_list.build());
  return frame.build();
}

Result<Superblock> decode_superblock(BytesView wire) {
  rlp::ViewDoc doc;
  auto parsed = rlp::decode_view(wire, doc);
  if (!parsed) return parsed.status();
  const rlp::ItemView root = parsed.value();
  if (!root.is_list() || root.size() != 2) {
    return Status::error("superblock: expected 2-item frame");
  }
  Superblock superblock;
  auto index = root.child(0).as_u64();
  if (!index) return index.status();
  superblock.index = index.value();
  const rlp::ItemView list = root.child(1);
  if (!list.is_list()) return Status::error("superblock: bad block list");
  // Each block entry is a wire slice; the per-block and per-tx parse arenas
  // are reused across the whole frame.
  rlp::ViewDoc block_doc;
  rlp::ViewDoc tx_doc;
  const std::size_t count = list.size();
  superblock.blocks.reserve(count);
  rlp::ItemView entry = count > 0 ? list.child(0) : rlp::ItemView{};
  for (std::size_t i = 0; i < count; ++i, entry = entry.next_sibling()) {
    if (entry.is_list()) return Status::error("superblock: bad block entry");
    auto block = decode_block_view(entry.payload(), block_doc, tx_doc);
    if (!block) return block.status();
    if (block.value().header.index != superblock.index) {
      return Status::error("superblock: block index mismatch");
    }
    superblock.blocks.push_back(
        std::make_shared<const Block>(std::move(block).take()));
  }
  return superblock;
}

Block make_block(std::uint64_t index, std::uint64_t proposer_id,
                 std::uint64_t timestamp, const Hash32& parent_hash,
                 std::vector<TxPtr> txs, const crypto::Identity& proposer,
                 const crypto::SignatureScheme& scheme) {
  Block block;
  block.header.index = index;
  block.header.proposer = proposer_id;
  block.header.timestamp = timestamp;
  block.header.parent_hash = parent_hash;
  block.txs = std::move(txs);
  block.header.tx_root = block.compute_tx_root();
  block.header.cert.proposer_pubkey = proposer.public_key;
  block.header.cert.signed_tx_root =
      scheme.sign(proposer, block.header.tx_root.view());
  return block;
}

}  // namespace srbb::txn
