// Shared transaction handles. Hash and wire size are computed once at
// creation — nodes across the simulation share one immutable object, which is
// also how the event-driven network avoids re-serializing payloads.
#pragma once

#include <memory>

#include "crypto/keccak.hpp"
#include "txn/transaction.hpp"

namespace srbb::txn {

struct CachedTx {
  Transaction tx;
  Hash32 hash;
  std::size_t size = 0;      // wire bytes
  Address sender;

  explicit CachedTx(Transaction t) : tx(std::move(t)) {
    const Bytes wire = tx.encode();
    hash = crypto::Keccak256::hash(wire);
    size = wire.size();
    sender = tx.sender();
  }
};

using TxPtr = std::shared_ptr<const CachedTx>;

inline TxPtr make_tx_ptr(Transaction t) {
  return std::make_shared<const CachedTx>(std::move(t));
}

}  // namespace srbb::txn
