// Shared transaction handles. Hash, signing digest and wire size are computed
// once at creation — nodes across the simulation share one immutable object,
// which is also how the event-driven network avoids re-serializing payloads
// and how validation avoids re-hashing the signed fields per check.
#pragma once

#include <memory>

#include "crypto/keccak.hpp"
#include "txn/transaction.hpp"

namespace srbb::txn {

struct CachedTx {
  Transaction tx;
  Hash32 hash;          // tx id: keccak of the wire encoding
  Hash32 signing_hash;  // digest the sender signed; cached so signature
                        // checks never re-encode the unsigned fields
  std::size_t size = 0;  // wire bytes
  Address sender;

  explicit CachedTx(Transaction t) : tx(std::move(t)) {
    const Bytes wire = tx.encode();
    init(wire);
  }

  /// From a decoded transaction whose wire bytes are at hand (the zero-copy
  /// decode paths): id hash and size come straight from the wire slice —
  /// the canonical codec guarantees re-encoding reproduces it byte for byte
  /// (fuzz_tx proves the round-trip).
  CachedTx(Transaction t, BytesView wire) : tx(std::move(t)) { init(wire); }

 private:
  void init(BytesView wire) {
    hash = crypto::Keccak256::hash(wire);
    size = wire.size();
    sender = tx.sender();
    signing_hash = tx.signing_hash();
  }
};

using TxPtr = std::shared_ptr<const CachedTx>;

inline TxPtr make_tx_ptr(Transaction t) {
  return std::make_shared<const CachedTx>(std::move(t));
}

inline TxPtr make_tx_ptr(Transaction t, BytesView wire) {
  return std::make_shared<const CachedTx>(std::move(t), wire);
}

}  // namespace srbb::txn
