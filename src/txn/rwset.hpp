// Schedule-time resolution of static storage summaries into concrete
// per-transaction predicted rw-sets (docs/ANALYSIS.md §rw-sets).
//
// predict_rwset() combines two sources:
//   1. the fixed state touches apply_transaction itself makes (sender
//      nonce/balance, value transfer to the target, optional coinbase fee),
//   2. the target's *composed* interprocedural summary (interproc.hpp) —
//      per-account symbolic key sets spanning statically resolved
//      CALL/STATICCALL/DELEGATECALL subtrees, plus the code/existence reads
//      of every resolved call edge — resolved against the concrete
//      calldata/sender/value of this transaction.
//
// The prediction is a *superset* claim: if `top` is false, every account
// field and storage slot the transaction touches at execution time must be
// in the predicted sets — the parallel executor's runtime guard aborts the
// speculation and falls back to blind mode otherwise, so a bad prediction
// can cost a retry but never a wrong receipt.
#pragma once

#include "evm/analysis/cache.hpp"
#include "evm/types.hpp"
#include "state/overlay.hpp"
#include "state/statedb.hpp"
#include "txn/transaction.hpp"

namespace srbb::txn {

/// Concrete predicted access sets for one transaction. `top` means no usable
/// prediction (deploys, ⊤ summaries, unresolvable keys): the transaction
/// keeps blind Block-STM speculation.
struct PredictedRwSet {
  bool top = false;
  state::AccessSet reads;
  state::AccessSet writes;

  /// Conservative may-conflict test: either side ⊤, or write/read,
  /// write/write or read/write intersection.
  bool conflicts_with(const PredictedRwSet& other) const {
    if (top || other.top) return true;
    return writes.intersects(other.reads) || writes.intersects(other.writes) ||
           reads.intersects(other.writes);
  }

  /// Soundness check against what a speculative execution actually touched:
  /// predicted ⊇ observed on both sets. Meaningless when `top` (callers skip
  /// the guard for ⊤ transactions).
  bool covers(const state::AccessSet& observed_reads,
              const state::AccessSet& observed_writes) const {
    return reads.contains_all(observed_reads) &&
           writes.contains_all(observed_writes);
  }
};

/// Resolve the predicted rw-set of `tx` against the pre-block state `db`.
/// Consults `cache` for the target's storage summary (keyed by the state
/// layer's memoized code keccak, so the per-block cost is one map lookup per
/// transaction). Never fails: unpredictable transactions come back as ⊤.
PredictedRwSet predict_rwset(const Transaction& tx, const state::StateDB& db,
                             const evm::BlockContext& block,
                             evm::analysis::AnalysisCache& cache);

}  // namespace srbb::txn
