#include "txn/parallel_executor.hpp"

#include <memory>
#include <numeric>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/invariant.hpp"
#include "obs/metrics.hpp"
#include "state/overlay.hpp"

namespace srbb::txn {

namespace {

// A speculative execution kept across rounds: the overlay (read-set +
// buffered writes) and the receipt it produced.
struct Speculation {
  std::unique_ptr<state::OverlayState> overlay;
  std::optional<Result<Receipt>> result;
};

}  // namespace

ParallelExecutor::ParallelExecutor(std::size_t workers,
                                   std::size_t max_retries)
    : pool_(workers), max_retries_(max_retries) {}

void ParallelExecutor::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    hint_hit_counter_ = nullptr;
    hint_miss_counter_ = nullptr;
    hint_violation_counter_ = nullptr;
    return;
  }
  hint_hit_counter_ = &registry->counter("analysis.rwset.hit");
  hint_miss_counter_ = &registry->counter("analysis.rwset.miss");
  hint_violation_counter_ = &registry->counter("analysis.rwset.violation");
}

std::vector<Result<Receipt>> ParallelExecutor::execute_block(
    const std::vector<const Transaction*>& txs, state::StateDB& db,
    const evm::BlockContext& block, const ExecutionConfig& config,
    ParallelExecStats* stats, const ExecTraceContext& trace,
    const std::vector<PredictedRwSet>* hint_override) {
  ParallelExecStats local;
  local.txs = txs.size();
  std::vector<Result<Receipt>> out(txs.size(),
                                   Status::error("exec: not executed"));

  // Schedule-time hint resolution (coordinator thread; the base StateDB is
  // the pre-block state, so predictions see exactly what round-0 speculation
  // sees). A ⊤ prediction keeps the blind Block-STM behaviour for that
  // transaction; a usable one serializes it behind its predicted conflicts.
  const bool hints = config.analysis_hints;
  std::vector<PredictedRwSet> pred;
  std::vector<std::vector<std::uint32_t>> earlier_conflicts;
  if (hints) {
    if (hint_override != nullptr) {
      SRBB_CHECK(hint_override->size() == txs.size());
      pred = *hint_override;
    } else {
      evm::analysis::AnalysisCache& cache =
          config.hint_cache != nullptr ? *config.hint_cache
                                       : evm::analysis::AnalysisCache::global();
      pred.reserve(txs.size());
      for (const Transaction* tx : txs) {
        pred.push_back(predict_rwset(*tx, db, block, cache));
      }
    }
    for (const PredictedRwSet& p : pred) {
      if (p.top) {
        ++local.top_txs;
        if (hint_miss_counter_ != nullptr) hint_miss_counter_->inc();
      } else {
        ++local.hinted_txs;
        if (hint_hit_counter_ != nullptr) hint_hit_counter_->inc();
      }
    }
    // Dependency DAG over the superblock: for every hinted transaction, the
    // earlier transactions it may conflict with (⊤ conflicts with
    // everything). Waves fall out of the round loop: a transaction
    // speculates once every earlier conflict has committed.
    earlier_conflicts.resize(txs.size());
    for (std::size_t j = 1; j < txs.size(); ++j) {
      if (pred[j].top) continue;  // ⊤ speculates blindly regardless
      for (std::size_t i = 0; i < j; ++i) {
        if (pred[j].conflicts_with(pred[i])) {
          earlier_conflicts[j].push_back(static_cast<std::uint32_t>(i));
        }
      }
    }
  }

  std::vector<std::size_t> pending(txs.size());
  std::iota(pending.begin(), pending.end(), std::size_t{0});
  std::unordered_map<std::size_t, Speculation> specs;
  std::vector<char> unresolved(txs.size(), 1);
  std::size_t abort_rounds = 0;

  while (!pending.empty()) {
    // Blind mode keeps the historical budget (total rounds); hinted mode
    // spends the budget only on rounds that aborted — a round that merely
    // serialized predicted conflicts is pacing, not failure, and each round
    // still commits at least the head.
    if (hints ? abort_rounds > max_retries_ : local.rounds > max_retries_) {
      break;
    }
    const std::uint64_t round = local.rounds++;

    // Speculation: run every pending transaction that has no carried-over
    // speculation and is not predicted to conflict with an earlier
    // unresolved transaction. The base StateDB is read-only until the pool
    // is idle again, so concurrent overlay reads are safe. Transactions
    // deferred (not aborted) by the previous commit pass keep their overlay
    // and are merely re-validated.
    std::vector<std::size_t> to_run;
    for (const std::size_t idx : pending) {
      if (specs.contains(idx)) continue;
      if (hints && !pred[idx].top) {
        bool blocked = false;
        for (const std::uint32_t e : earlier_conflicts[idx]) {
          if (unresolved[e] != 0) {
            blocked = true;
            break;
          }
        }
        if (blocked) {  // wait for the conflict class ahead to commit
          ++local.hint_deferrals;
          continue;
        }
      }
      to_run.push_back(idx);
    }
    std::vector<Speculation> fresh(to_run.size());
    pool_.parallel_for(to_run.size(), [&](std::size_t j) {
      fresh[j].overlay = std::make_unique<state::OverlayState>(db);
      fresh[j].result =
          apply_transaction(*txs[to_run[j]], *fresh[j].overlay, block, config);
    });
    for (std::size_t j = 0; j < to_run.size(); ++j) {
      specs[to_run[j]] = std::move(fresh[j]);
    }
    local.speculative_runs += to_run.size();

    // Commit pass: walk the pending transactions in canonical order and
    // commit the longest prefix whose read-sets validate against the live
    // state. The first validation failure (or scheduler hold) stops the
    // prefix — later transactions may depend on the stopped one's eventual
    // writes, so committing past it would break sequential equivalence.
    // Everything after the stop is deferred with its speculation intact (a
    // later-round validation may still prove it untouched).
    bool aborted_this_round = false;
    std::vector<std::size_t> retry;
    for (std::size_t j = 0; j < pending.size(); ++j) {
      const std::size_t idx = pending[j];
      if (!retry.empty()) {  // behind a stop: defer, keep any speculation
        retry.push_back(idx);
        continue;
      }
      if (!specs.contains(idx)) {
        // Held back by the conflict pre-schedule this round. Never the head:
        // everything before the head is resolved, so the head is never
        // blocked — the liveness argument is unchanged under hints.
        SRBB_CHECK(hints && j > 0);
        retry.push_back(idx);
        continue;
      }
      Speculation& spec = specs.at(idx);
      // Runtime guard: a hinted speculation whose observed accesses escape
      // the predicted set is discarded outright — even if it would validate —
      // and the transaction is demoted to blind speculation. Receipts can
      // therefore never depend on hint quality, only the schedule can.
      bool violation = false;
      if (hints && !pred[idx].top) {
        violation = !pred[idx].covers(spec.overlay->observed_reads(),
                                      spec.overlay->observed_writes());
      }
      if (!violation && spec.overlay->validate(db)) {
        spec.overlay->apply_to(db);
        out[idx] = std::move(*spec.result);
        specs.erase(idx);
        unresolved[idx] = 0;
        continue;
      }
      ++local.aborts;
      aborted_this_round = true;
      if (violation) {
        ++local.hint_violations;
        if (hint_violation_counter_ != nullptr) hint_violation_counter_->inc();
        pred[idx].top = true;  // prediction was wrong: stop trusting it
      }
      specs.erase(idx);  // stale: the read-set no longer holds
      if (j == 0) {
        // Every earlier transaction is final, so executing the head inline
        // is sequential execution — commit it directly. This guarantees at
        // least one commit per round.
        out[idx] = apply_transaction(*txs[idx], db, block, config);
        unresolved[idx] = 0;
      } else {
        retry.push_back(idx);
      }
    }
    // The head of the pending list always resolves (commit or inline
    // re-execution), so each round strictly shrinks the pending set — the
    // liveness argument for the optimistic loop.
    SRBB_CHECK(retry.size() < pending.size() || pending.empty());
    pending = std::move(retry);
    if (aborted_this_round) ++abort_rounds;
    SRBB_TRACE(trace.sink, trace.at, 0, trace.node, "exec", "exec.round",
               "round", round, "pending", pending.size());
  }

  // Sequential fallback for transactions still unresolved after the
  // optimistic rounds.
  local.fallback_txs = pending.size();
  if (!pending.empty()) {
    SRBB_TRACE(trace.sink, trace.at, 0, trace.node, "exec", "exec.fallback",
               "txs", pending.size());
  }
  for (const std::size_t i : pending) {
    out[i] = apply_transaction(*txs[i], db, block, config);
  }

#ifdef SRBB_PARANOID_CHECKS
  // No receipt slot may survive as the "not executed" sentinel: every
  // transaction either committed optimistically, re-ran inline, or fell back.
  for (const Result<Receipt>& r : out) {
    SRBB_PARANOID(r.is_ok() || r.message() != "exec: not executed");
  }
#endif

  if (stats != nullptr) *stats += local;
  return out;
}

}  // namespace srbb::txn
