#include "txn/parallel_executor.hpp"

#include <memory>
#include <numeric>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/invariant.hpp"
#include "state/overlay.hpp"

namespace srbb::txn {

namespace {

// A speculative execution kept across rounds: the overlay (read-set +
// buffered writes) and the receipt it produced.
struct Speculation {
  std::unique_ptr<state::OverlayState> overlay;
  std::optional<Result<Receipt>> result;
};

}  // namespace

ParallelExecutor::ParallelExecutor(std::size_t workers,
                                   std::size_t max_retries)
    : pool_(workers), max_retries_(max_retries) {}

std::vector<Result<Receipt>> ParallelExecutor::execute_block(
    const std::vector<const Transaction*>& txs, state::StateDB& db,
    const evm::BlockContext& block, const ExecutionConfig& config,
    ParallelExecStats* stats, const ExecTraceContext& trace) {
  ParallelExecStats local;
  local.txs = txs.size();
  std::vector<Result<Receipt>> out(txs.size(),
                                   Status::error("exec: not executed"));

  std::vector<std::size_t> pending(txs.size());
  std::iota(pending.begin(), pending.end(), std::size_t{0});
  std::unordered_map<std::size_t, Speculation> specs;

  for (std::size_t round = 0; !pending.empty() && round <= max_retries_;
       ++round) {
    ++local.rounds;
    // Speculation: run every pending transaction that has no carried-over
    // speculation against its own overlay of the committed state. The base
    // StateDB is read-only until the pool is idle again, so concurrent
    // overlay reads are safe. Transactions deferred (not aborted) by the
    // previous commit pass keep their overlay and are merely re-validated.
    std::vector<std::size_t> to_run;
    for (const std::size_t idx : pending) {
      if (!specs.contains(idx)) to_run.push_back(idx);
    }
    std::vector<Speculation> fresh(to_run.size());
    pool_.parallel_for(to_run.size(), [&](std::size_t j) {
      fresh[j].overlay = std::make_unique<state::OverlayState>(db);
      fresh[j].result =
          apply_transaction(*txs[to_run[j]], *fresh[j].overlay, block, config);
    });
    for (std::size_t j = 0; j < to_run.size(); ++j) {
      specs[to_run[j]] = std::move(fresh[j]);
    }
    local.speculative_runs += to_run.size();

    // Commit pass: walk the pending transactions in canonical order and
    // commit the longest prefix whose read-sets validate against the live
    // state. The first validation failure stops the prefix — later
    // transactions may depend on the aborted one's eventual writes, so
    // committing past it would break sequential equivalence. Everything
    // after the failure is deferred with its speculation intact (a
    // later-round validation may still prove it untouched).
    std::vector<std::size_t> retry;
    for (std::size_t j = 0; j < pending.size(); ++j) {
      const std::size_t idx = pending[j];
      if (!retry.empty()) {  // behind an abort: defer, keep the speculation
        retry.push_back(idx);
        continue;
      }
      // Every transaction reaching the commit pass carries a speculation:
      // fresh ones were just run, deferred ones kept theirs.
      SRBB_CHECK(specs.contains(idx));
      Speculation& spec = specs.at(idx);
      if (spec.overlay->validate(db)) {
        spec.overlay->apply_to(db);
        out[idx] = std::move(*spec.result);
        specs.erase(idx);
        continue;
      }
      ++local.aborts;
      specs.erase(idx);  // stale: the read-set no longer holds
      if (j == 0) {
        // Every earlier transaction is final, so executing the head inline
        // is sequential execution — commit it directly. This guarantees at
        // least one commit per round.
        out[idx] = apply_transaction(*txs[idx], db, block, config);
      } else {
        retry.push_back(idx);
      }
    }
    // The head of the pending list always resolves (commit or inline
    // re-execution), so each round strictly shrinks the pending set — the
    // liveness argument for the optimistic loop.
    SRBB_CHECK(retry.size() < pending.size() || pending.empty());
    pending = std::move(retry);
    SRBB_TRACE(trace.sink, trace.at, 0, trace.node, "exec", "exec.round",
               "round", round, "pending", pending.size());
  }

  // Sequential fallback for transactions still unresolved after the
  // optimistic rounds.
  local.fallback_txs = pending.size();
  if (!pending.empty()) {
    SRBB_TRACE(trace.sink, trace.at, 0, trace.node, "exec", "exec.fallback",
               "txs", pending.size());
  }
  for (const std::size_t i : pending) {
    out[i] = apply_transaction(*txs[i], db, block, config);
  }

#ifdef SRBB_PARANOID_CHECKS
  // No receipt slot may survive as the "not executed" sentinel: every
  // transaction either committed optimistically, re-ran inline, or fell back.
  for (const Result<Receipt>& r : out) {
    SRBB_PARANOID(r.is_ok() || r.message() != "exec: not executed");
  }
#endif

  if (stats != nullptr) *stats += local;
  return out;
}

}  // namespace srbb::txn
