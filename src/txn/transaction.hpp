// Transactions: the three kinds the paper names (§II-A) — native payments,
// smart-contract deployments and smart-contract invocations — with Ed25519
// sender authentication and an RLP wire format.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "common/u256.hpp"
#include "crypto/signature.hpp"

namespace srbb::rlp {
class ItemView;
}

namespace srbb::txn {

enum class TxKind : std::uint8_t {
  kTransfer = 0,  // native payment
  kDeploy = 1,    // contract creation (data = init code)
  kInvoke = 2,    // contract call (data = ABI calldata)
};

struct Transaction {
  TxKind kind = TxKind::kTransfer;
  std::uint64_t nonce = 0;
  U256 gas_price;
  std::uint64_t gas_limit = 0;
  Address to;  // unused for kDeploy
  U256 value;
  Bytes data;
  crypto::PublicKey sender_pubkey{};
  crypto::Signature signature{};

  /// Keccak address of the sender public key.
  Address sender() const;
  /// Digest signed by the sender (all fields except the signature).
  Hash32 signing_hash() const;
  /// Transaction id: keccak of the full wire encoding.
  Hash32 hash() const;

  Bytes encode() const;
  /// Strict decode via the zero-copy RLP path: field payloads are read as
  /// views into `wire` and copied at most once, into the Transaction itself.
  static Result<Transaction> decode(BytesView wire);
  /// The original copying decoder, kept as the differential oracle —
  /// fuzz_rlp_view and test_transaction check it agrees with decode() on
  /// every input, byte for byte and error for error.
  static Result<Transaction> decode_copying(BytesView wire);
  /// Size of the wire encoding in bytes (drives bandwidth accounting).
  std::size_t wire_size() const;

  friend bool operator==(const Transaction&, const Transaction&) = default;
};

/// Decode a transaction from an already-parsed RLP view node — the shared
/// zero-copy path under Transaction::decode and the block/superblock
/// decoders (which slice transaction frames out of the enclosing wire
/// buffer without re-parsing or re-encoding).
Result<Transaction> decode_tx_view(const rlp::ItemView& root);

/// Build and sign a transaction with `identity` under `scheme`.
struct TxParams {
  TxKind kind = TxKind::kTransfer;
  std::uint64_t nonce = 0;
  U256 gas_price = U256{1};
  std::uint64_t gas_limit = 1'000'000;
  Address to;
  U256 value;
  Bytes data;
};

Transaction make_signed(const TxParams& params, const crypto::Identity& identity,
                        const crypto::SignatureScheme& scheme);

/// Verify the sender signature under `scheme`.
bool verify_signature(const Transaction& tx,
                      const crypto::SignatureScheme& scheme);

}  // namespace srbb::txn
