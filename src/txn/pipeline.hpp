// Pipelined eager validation (DESIGN.md §11). eager_validate's monolithic
// checks (i)-(vi) decomposed into composable ValidationStage plugins — the
// block-validator plugin idiom — ordered cheapest first:
//
//   structural  (ii) wire-size cap, gas floor / intrinsic cost   data-parallel
//   signature   (i)  sender signature                            batched
//   state       (iii) nonce window, (iv)+(v) balance,            sequential
//               (vi) static min-gas gate
//
// A transaction stops at its first failing stage with exactly the Status
// string eager_validate would produce, so batch results are positionally
// identical to the monolith (test_validation_pipeline checks this
// differentially). The signature stage hands the whole surviving batch to a
// BatchVerifier — by default the scheme's shared-computation algorithm, for
// ed25519 one multi-scalar multiplication — which is where the >=N-fold
// per-item cost collapses to well under N independent verifies.
//
// The pipeline reads only cached per-transaction values (CachedTx size,
// signing hash, sender), so validating never re-encodes or re-hashes a
// transaction.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "crypto/batch.hpp"
#include "obs/metrics.hpp"
#include "txn/txref.hpp"
#include "txn/validation.hpp"

namespace srbb::txn {

/// A batch moving through the stages. results[i] stays ok() while item i is
/// passing; the first failing stage writes the monolith's error Status and
/// later stages skip the item.
struct ValidationBatch {
  std::span<const TxPtr> txs;
  const state::StateView* db = nullptr;
  std::vector<Status> results;
};

/// One composable stage: stateless and const, so a stage object may be run
/// from several pipeline instances (and, for the data-parallel stages, from
/// pool workers on disjoint items) concurrently.
class ValidationStage {
 public:
  virtual ~ValidationStage() = default;
  virtual const char* name() const = 0;
  virtual void run(ValidationBatch& batch) const = 0;
};

struct PipelineOptions {
  /// Worker pool for the data-parallel stages; nullptr runs everything on
  /// the calling thread.
  ThreadPool* pool = nullptr;
  /// Batches smaller than this stay on the calling thread even with a pool.
  std::size_t min_parallel = 16;
  /// Signature strategy override; nullptr uses the scheme's own batch
  /// algorithm on the calling thread (crypto::SharedBatchVerifier).
  const crypto::BatchVerifier* verifier = nullptr;
  /// When set, per-stage pass/fail counters are registered as
  /// "validate.stage.<name>.pass|fail" and batch admission counters update
  /// alongside. Counting happens on the calling thread only.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Checks (ii): wire-size cap and gas floor, from cached sizes.
class StructuralStage final : public ValidationStage {
 public:
  StructuralStage(const ValidationConfig& config, ThreadPool* pool,
                  std::size_t min_parallel)
      : config_(&config), pool_(pool), min_parallel_(min_parallel) {}
  const char* name() const override { return "structural"; }
  void run(ValidationBatch& batch) const override;

 private:
  const ValidationConfig* config_;
  ThreadPool* pool_;
  std::size_t min_parallel_;
};

/// Check (i): every surviving item's signature, verified as one batch over
/// the cached signing digests.
class SignatureStage final : public ValidationStage {
 public:
  SignatureStage(const crypto::SignatureScheme& scheme,
                 const crypto::BatchVerifier& verifier)
      : scheme_(&scheme), verifier_(&verifier) {}
  const char* name() const override { return "signature"; }
  void run(ValidationBatch& batch) const override;

 private:
  const crypto::SignatureScheme* scheme_;
  const crypto::BatchVerifier* verifier_;
};

/// Checks (iii)-(vi): nonce window, balance, static min-gas gate. Sequential
/// — state reads are cheap and the StateView interface makes no concurrency
/// promises.
class StateStage final : public ValidationStage {
 public:
  explicit StateStage(const ValidationConfig& config) : config_(&config) {}
  const char* name() const override { return "state"; }
  void run(ValidationBatch& batch) const override;

 private:
  const ValidationConfig* config_;
};

class ValidationPipeline {
 public:
  ValidationPipeline(const crypto::SignatureScheme& scheme,
                     ValidationConfig config, PipelineOptions options = {});

  /// Validate a batch; results are positionally identical to running
  /// eager_validate on each transaction. External synchronization required
  /// (one validate() at a time per pipeline); internal parallelism comes
  /// from PipelineOptions::pool.
  std::vector<Status> validate(std::span<const TxPtr> txs,
                               const state::StateView& db) const;

  /// Single-transaction fast path over the cached fields — the monolith's
  /// exact check order and error strings without re-encoding. This is what
  /// per-event callers (validator nodes inside the sim) use, keeping their
  /// per-transaction trace cadence bit-identical.
  Status validate_one(const CachedTx& tx, const state::StateView& db) const;

  const ValidationConfig& config() const { return config_; }
  std::span<const std::unique_ptr<ValidationStage>> stages() const {
    return stages_;
  }

 private:
  const crypto::SignatureScheme* scheme_;
  ValidationConfig config_;
  crypto::SharedBatchVerifier default_verifier_;
  std::vector<std::unique_ptr<ValidationStage>> stages_;
  struct StageCounters {
    obs::Counter* pass = nullptr;
    obs::Counter* fail = nullptr;
  };
  std::vector<StageCounters> counters_;  // parallel to stages_; empty if no
                                         // metrics registry was supplied
};

/// eager_validate over the cached fields of a CachedTx: identical check
/// order and error strings, no re-encode (size), no re-hash (signing
/// digest), no sender re-derivation.
Status eager_validate_cached(const CachedTx& tx, const state::StateView& db,
                             const crypto::SignatureScheme& scheme,
                             const ValidationConfig& config);

}  // namespace srbb::txn
