// Transaction execution against the world state — the paper's execute(t)
// (Alg. 1 lines 32-40): lazy-validate, then ApplyTransaction. Returns an
// error (no state transition) for *invalid* transactions, which the commit
// loop discards from the block; a *valid* transaction that merely reverts
// still consumes gas and is recorded with a failed receipt.
#pragma once

#include <vector>

#include "common/status.hpp"
#include "crypto/signature.hpp"
#include "evm/interpreter.hpp"
#include "state/statedb.hpp"
#include "txn/transaction.hpp"

namespace srbb::evm::analysis {
class AnalysisCache;
}

namespace srbb::txn {

struct Receipt {
  Hash32 tx_hash;
  bool success = false;       // false when the EVM frame reverted/failed
  std::uint64_t gas_used = 0;
  Address contract_address;   // set for deployments
  std::vector<evm::LogEntry> logs;
};

struct ExecutionConfig {
  /// Re-check the signature during execution (check (i) of §IV-D: the VM
  /// raises the equivalent of ErrInvalidSig). Skippable when the caller
  /// already eagerly validated this transaction.
  bool verify_signature = true;
  const crypto::SignatureScheme* scheme = &crypto::SignatureScheme::ed25519();

  /// CREATE-time static code validation (evm/analysis): deployments whose
  /// init or runtime code is provably doomed fail with kCodeRejected instead
  /// of entering the interpreter. Compat flag — turn off to accept any
  /// bytecode, as before the analyzer existed.
  bool validate_code = true;

  // --- Parallel optimistic execution (parallel_executor.hpp) ---
  /// Execute superblocks with the Block-STM-style optimistic executor
  /// instead of one transaction at a time. Results are bit-identical to
  /// sequential execution; off by default until callers opt in.
  bool parallel = false;
  /// Speculation threads (0 = hardware concurrency).
  std::size_t workers = 0;
  /// Optimistic rounds before the remaining transactions fall back to
  /// sequential execution. With analysis_hints on, the budget counts only
  /// rounds that aborted a speculation — hint-serialized rounds are paced,
  /// not failing.
  std::size_t max_retries = 3;

  /// Conflict-aware pre-scheduling from static storage summaries
  /// (docs/ANALYSIS.md §rw-sets): each transaction's predicted rw-set gates
  /// when it speculates, so known conflicts serialize instead of aborting;
  /// ⊤-verdict transactions keep blind speculation. Hints steer scheduling
  /// only — every commit still runs the read-set validation, so receipts and
  /// state are bit-identical with hints on, off, or wrong. Off by default.
  bool analysis_hints = false;
  /// Analysis cache consulted for storage summaries when analysis_hints is
  /// on; nullptr selects the process-global cache (the one the interpreter
  /// already fills, so predictions are usually cache hits).
  evm::analysis::AnalysisCache* hint_cache = nullptr;
};

/// Execute one transaction. Status error == invalid transaction (lazy
/// validation or signature failed): state is untouched and the caller should
/// discard the transaction (Alg. 1 line 23).
Result<Receipt> apply_transaction(const Transaction& tx, state::StateView& db,
                                  const evm::BlockContext& block,
                                  const ExecutionConfig& config);

}  // namespace srbb::txn
