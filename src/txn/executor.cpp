#include "txn/executor.hpp"

#include "txn/validation.hpp"

namespace srbb::txn {

Result<Receipt> apply_transaction(const Transaction& tx, state::StateView& db,
                                  const evm::BlockContext& block,
                                  const ExecutionConfig& config) {
  // Pull the two accounts every transaction touches into the resident cache
  // before validation starts (no-op on fully resident states), so the reads
  // below are flat-map hits instead of interleaved backend faults.
  db.prefetch(tx.sender());
  if (tx.kind != TxKind::kDeploy) db.prefetch(tx.to);
  // Lazy validation: checks (iii)-(v). Failure -> invalid, no transition.
  if (Status lazy = lazy_validate(tx, db); !lazy) return lazy;
  // Check (i): signature, raised as an execution-time error when an invalid
  // transaction slipped past (only possible when eager validation was skipped
  // or forged by a Byzantine proposer).
  if (config.verify_signature && !verify_signature(tx, *config.scheme)) {
    return Status::error("exec: invalid signature (ErrInvalidSig)");
  }

  const Address sender = tx.sender();
  const U256 gas_prepay = tx.gas_price * U256{tx.gas_limit};

  const state::StateView::Snapshot tx_snapshot = db.snapshot();
  // Buy gas and bump the nonce; from here on the transaction is committed to
  // the block even if the EVM frame fails.
  if (!db.sub_balance(sender, gas_prepay)) {
    return Status::error("exec: cannot buy gas");
  }
  db.increment_nonce(sender);

  const std::uint64_t intrinsic = intrinsic_gas(tx);

  evm::TxContext tx_ctx;
  tx_ctx.origin = sender;
  tx_ctx.gas_price = tx.gas_price;
  evm::Evm evm{db, block, tx_ctx};
  evm.set_validate_code(config.validate_code);

  evm::Message msg;
  msg.caller = sender;
  msg.value = tx.value;
  msg.gas = tx.gas_limit - intrinsic;
  msg.data = tx.data;
  if (tx.kind == TxKind::kDeploy) {
    msg.is_create = true;
  } else {
    msg.to = tx.to;
  }

  const evm::ExecResult run = evm.execute(msg);

  Receipt receipt;
  receipt.tx_hash = tx.hash();
  receipt.success = run.ok();
  receipt.gas_used = tx.gas_limit - run.gas_left;
  if (run.ok()) {
    receipt.contract_address = run.created_address;
    receipt.logs = evm.logs();
  } else if (run.status == evm::ExecStatus::kInsufficientBalance) {
    // The sender could not fund the transfer after buying gas. Treat as an
    // invalid transaction (matches lazy check (v) being violated mid-flight).
    db.revert_to(tx_snapshot);
    return Status::error("exec: insufficient balance for value transfer");
  }

  // Refund the unused gas, pay the coinbase for the used part.
  db.add_balance(sender, tx.gas_price * U256{run.gas_left});
  if (!block.coinbase.is_zero() && receipt.gas_used > 0) {
    db.add_balance(block.coinbase, tx.gas_price * U256{receipt.gas_used});
  }
  return receipt;
}

}  // namespace srbb::txn
