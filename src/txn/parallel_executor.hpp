// Optimistic parallel superblock execution (Block-STM / Reddio style).
//
// Every pending transaction of a superblock executes speculatively, in
// parallel, against an OverlayState view of the committed StateDB: reads are
// recorded, writes buffered. A deterministic commit pass then walks the
// transactions in canonical order, re-validates each recorded read against
// the live state and either commits the buffered write-set or schedules the
// transaction for re-execution in the next round. The first pending
// transaction always validates (its speculation base equals the live state
// at its commit point), so every round commits at least one transaction;
// after `max_retries` rounds the remainder executes sequentially. The final
// receipts and state are bit-identical to sequential execution — see
// DESIGN.md "Parallel execution" for the argument.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/time.hpp"
#include "obs/trace.hpp"
#include "state/statedb.hpp"
#include "txn/executor.hpp"
#include "txn/rwset.hpp"

namespace srbb::obs {
class MetricsRegistry;
class Counter;
}  // namespace srbb::obs

namespace srbb::txn {

/// Per-superblock counters surfaced through IndexExecResult.
struct ParallelExecStats {
  std::uint64_t txs = 0;               // transactions executed
  std::uint64_t speculative_runs = 0;  // overlay executions (>= txs)
  std::uint64_t aborts = 0;            // failed validations (re-runs)
  std::uint64_t fallback_txs = 0;      // committed via sequential fallback
  std::uint64_t rounds = 0;            // optimistic rounds used

  // Analysis-hint scheduling (ExecutionConfig::analysis_hints):
  std::uint64_t hinted_txs = 0;       // usable (non-⊤) predictions
  std::uint64_t top_txs = 0;          // ⊤ predictions (blind speculation)
  std::uint64_t hint_deferrals = 0;   // tx-rounds held back by a conflict
  std::uint64_t hint_violations = 0;  // predicted ⊉ observed (guard aborts)

  /// Fraction of speculative executions that had to be thrown away.
  double conflict_rate() const {
    return speculative_runs == 0
               ? 0.0
               : static_cast<double>(aborts) /
                     static_cast<double>(speculative_runs);
  }

  ParallelExecStats& operator+=(const ParallelExecStats& other) {
    txs += other.txs;
    speculative_runs += other.speculative_runs;
    aborts += other.aborts;
    fallback_txs += other.fallback_txs;
    rounds += other.rounds;
    hinted_txs += other.hinted_txs;
    top_txs += other.top_txs;
    hint_deferrals += other.hint_deferrals;
    hint_violations += other.hint_violations;
    return *this;
  }
};

/// Executor-internal tracing: category-"exec" events (per-round progress,
/// sequential fallback) emitted into `sink`, stamped with the fixed simulated
/// time `at` — the executor runs between sim events, so every event of one
/// block shares one timestamp. Only the coordinator thread emits; worker
/// threads never touch the sink. These events are deliberately the only
/// difference between a sequential and a parallel trace of the same block
/// (tests/test_parallel_executor.cpp asserts equality after filtering them).
struct ExecTraceContext {
  obs::TraceSink* sink = nullptr;
  SimTime at = 0;
  std::uint32_t node = 0;
};

class ParallelExecutor {
 public:
  /// `workers` == 0 selects hardware concurrency.
  explicit ParallelExecutor(std::size_t workers = 0,
                            std::size_t max_retries = 3);

  /// Execute `txs` (canonical superblock order) against `db`, mutating it
  /// exactly as the equivalent sequence of apply_transaction calls would.
  /// Returns one Result<Receipt> per transaction, in order; errors mark
  /// invalid transactions (discarded, no state transition), exactly as in
  /// sequential execution.
  ///
  /// With config.analysis_hints set, predicted rw-sets (txn/rwset.hpp) gate
  /// which pending transactions speculate each round; `hint_override`, when
  /// non-null, supplies precomputed (or deliberately wrong, in tests)
  /// predictions instead of resolving them here — receipts are bit-identical
  /// regardless, because the commit pass still validates every read-set.
  std::vector<Result<Receipt>> execute_block(
      const std::vector<const Transaction*>& txs, state::StateDB& db,
      const evm::BlockContext& block, const ExecutionConfig& config,
      ParallelExecStats* stats = nullptr, const ExecTraceContext& trace = {},
      const std::vector<PredictedRwSet>* hint_override = nullptr);

  /// Publish `analysis.rwset.hit` / `analysis.rwset.miss` /
  /// `analysis.rwset.violation` counters (per-tx prediction outcomes and
  /// runtime-guard trips). Pass nullptr to detach. Increments happen on the
  /// coordinator thread only, so totals reconcile exactly with the stats.
  void set_metrics(obs::MetricsRegistry* registry);

  std::size_t worker_count() const { return pool_.thread_count(); }

 private:
  ThreadPool pool_;
  std::size_t max_retries_;
  obs::Counter* hint_hit_counter_ = nullptr;
  obs::Counter* hint_miss_counter_ = nullptr;
  obs::Counter* hint_violation_counter_ = nullptr;
};

}  // namespace srbb::txn
