#include "txn/validation.hpp"

#include "evm/analysis/interproc.hpp"

namespace srbb::txn {

std::uint64_t intrinsic_gas(const Transaction& tx) {
  std::uint64_t gas = 21'000;
  for (const std::uint8_t b : tx.data) gas += (b == 0) ? 4 : 16;
  if (tx.kind == TxKind::kDeploy) gas += 32'000;
  return gas;
}

namespace {

// Maximum wei the transaction can cost: gas budget plus transferred value.
U256 max_cost(const Transaction& tx) {
  return tx.gas_price * U256{tx.gas_limit} + tx.value;
}

}  // namespace

Status eager_validate(const Transaction& tx, const state::StateView& db,
                      const crypto::SignatureScheme& scheme,
                      const ValidationConfig& config) {
  // (ii) size limit first: cheap and bounds later work.
  if (tx.wire_size() > config.max_tx_size) {
    return Status::error("eager: transaction exceeds size limit");
  }
  if (tx.gas_limit < config.min_gas_limit ||
      tx.gas_limit < intrinsic_gas(tx)) {
    return Status::error("eager: gas limit below intrinsic cost");
  }
  // (i) signature — the expensive check that TVPR avoids repeating n times.
  if (!verify_signature(tx, scheme)) {
    return Status::error("eager: invalid signature");
  }
  const Address sender = tx.sender();
  // (iii) nonce must not be in the past, and not absurdly far in the future.
  const std::uint64_t account_nonce = db.nonce(sender);
  if (tx.nonce < account_nonce) {
    return Status::error("eager: stale nonce");
  }
  if (tx.nonce > account_nonce + config.nonce_window) {
    return Status::error("eager: nonce too far in the future");
  }
  // (iv) + (v) the account can afford worst-case gas plus the value moved.
  if (db.balance(sender) < max_cost(tx)) {
    return Status::error("eager: insufficient balance for gas + value");
  }
  // (vi) static min-gas gate: every successful path through the callee costs
  // at least its statically-analyzed minimum, so a budget below that cannot
  // buy a successful execution — reject before it reaches consensus. The
  // *composed* bound (interproc.hpp) also charges guarded resolved call
  // sites their callee's minimum, so an invoke of a router contract is gated
  // on the whole call tree, not just the router's own frame.
  if (config.analysis_cache != nullptr && tx.kind == TxKind::kInvoke) {
    const Bytes& code = db.code(tx.to);
    if (!code.empty()) {
      const auto composed = evm::analysis::InterprocCache::global().get(
          db, tx.to, *config.analysis_cache);
      const std::uint64_t budget = tx.gas_limit - intrinsic_gas(tx);
      if (composed->min_gas == evm::analysis::AnalysisResult::kNoSuccessfulPath ||
          budget < composed->min_gas) {
        return Status::error("eager: gas limit below callee static minimum");
      }
    }
  }
  return Status::ok();
}

Status lazy_validate(const Transaction& tx, const state::StateView& db) {
  const Address sender = tx.sender();
  const std::uint64_t account_nonce = db.nonce(sender);
  if (tx.nonce != account_nonce) {
    return Status::error("lazy: nonce is not the next sequence number");
  }
  if (tx.gas_limit < intrinsic_gas(tx)) {
    return Status::error("lazy: gas limit below intrinsic cost");
  }
  if (db.balance(sender) < max_cost(tx)) {
    return Status::error("lazy: insufficient balance for gas + value");
  }
  return Status::ok();
}

}  // namespace srbb::txn
