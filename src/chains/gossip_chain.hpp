// The modern-blockchain node model: Alg. 1 *with* line 9. Transactions are
// eagerly validated and gossiped individually to every validator, a rotating
// slot leader batches its pool into a block, blocks are gossiped again, and
// each validator commits a block `consensus_overhead` after receiving it
// (standing in for the chain's voting exchange). Instantiated with a
// ChainPreset this models each of the six DIABLO chains; it is also the
// "redundant validation and propagation" half of the EVM+DBFT baseline
// story (the baseline itself is ValidatorNode with tvpr=false, which keeps
// the superblock consensus).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "chains/presets.hpp"
#include "pool/txpool.hpp"
#include "sim/gossip.hpp"
#include "sim/network.hpp"
#include "srbb/messages.hpp"
#include "srbb/oracle.hpp"
#include "txn/pipeline.hpp"

namespace srbb::chains {

/// A block gossiped between modern-chain validators.
struct GossipBlockMsg final : sim::Message {
  txn::BlockPtr block;

  std::size_t size_bytes() const override { return block->wire_size(); }
  const char* type() const override { return "gossip-block"; }
};

struct GossipChainConfig {
  std::uint32_t n = 4;
  std::uint32_t self = 0;
  ChainPreset preset;
  txn::ValidationConfig validation;
  const crypto::SignatureScheme* scheme = &crypto::SignatureScheme::fast_sim();
};

class GossipChainNode : public sim::SimNode {
 public:
  struct Metrics {
    std::uint64_t client_txs_received = 0;
    std::uint64_t eager_validations = 0;
    std::uint64_t eager_failures = 0;
    std::uint64_t gossip_txs_received = 0;
    std::uint64_t gossip_txs_sent = 0;
    std::uint64_t blocks_proposed = 0;
    std::uint64_t blocks_committed = 0;
    std::uint64_t txs_committed_valid = 0;
    std::uint64_t txs_discarded_invalid = 0;
    std::uint64_t slots_skipped = 0;
    bool crashed = false;
  };

  GossipChainNode(sim::Simulation& simulation, sim::NodeId id,
                  sim::RegionId region, GossipChainConfig config,
                  std::shared_ptr<node::ExecutionOracle> oracle,
                  const sim::GossipOverlay* overlay);

  /// Attach the observability layer: pool counters/trace plus block-commit
  /// events. Either pointer may be null.
  void set_observability(obs::TraceSink* trace, obs::MetricsRegistry* metrics);

  void start();
  void handle_message(sim::NodeId from, const sim::MessagePtr& message) override;

  const Metrics& metrics() const { return metrics_; }
  const pool::TxPool& tx_pool() const { return pool_; }
  std::uint64_t committed_height() const { return next_commit_slot_; }

 private:
  void on_client_tx(sim::NodeId from, const txn::TxPtr& tx);
  void on_gossip_tx(sim::NodeId from, const txn::TxPtr& tx);
  void on_block(sim::NodeId from, const txn::BlockPtr& block);
  void gossip_tx(const txn::TxPtr& tx, std::optional<sim::NodeId> skip);
  void on_slot_tick();
  void propose(std::uint64_t slot);
  void try_commit();
  void commit_block(const txn::BlockPtr& block);
  void maybe_crash();

  GossipChainConfig config_;
  crypto::Identity identity_;
  std::shared_ptr<node::ExecutionOracle> oracle_;
  const sim::GossipOverlay* overlay_;

  pool::TxPool pool_;
  /// Staged validation over cached fields; per-event paths use validate_one.
  txn::ValidationPipeline pipeline_;
  std::unordered_set<Hash32, Hash32Hasher> seen_txs_;
  std::unordered_set<Hash32, Hash32Hasher> seen_blocks_;
  std::unordered_set<Hash32, Hash32Hasher> committed_txs_;
  std::unordered_map<Hash32, sim::NodeId, Hash32Hasher> client_origins_;

  std::map<std::uint64_t, txn::BlockPtr> committable_;  // slot -> block
  std::uint64_t slot_counter_ = 0;
  std::uint64_t next_commit_slot_ = 0;
  bool started_ = false;
  bool crashed_ = false;

  Metrics metrics_;
  obs::TraceSink* trace_ = nullptr;  // null = disabled
};

}  // namespace srbb::chains
