#include "chains/gossip_chain.hpp"

#include "txn/validation.hpp"

namespace srbb::chains {

GossipChainNode::GossipChainNode(sim::Simulation& simulation, sim::NodeId id,
                                 sim::RegionId region, GossipChainConfig config,
                                 std::shared_ptr<node::ExecutionOracle> oracle,
                                 const sim::GossipOverlay* overlay)
    : sim::SimNode(simulation, id, region),
      config_(std::move(config)),
      identity_(config_.scheme->make_identity(config_.self)),
      oracle_(std::move(oracle)),
      overlay_(overlay),
      pool_(config_.preset.pool),
      pipeline_(*config_.scheme, config_.validation) {}

void GossipChainNode::set_observability(obs::TraceSink* trace,
                                        obs::MetricsRegistry* metrics) {
  trace_ = trace;
  pool_.set_observability(trace, metrics, config_.self);
}

void GossipChainNode::start() {
  if (started_) return;
  started_ = true;
  on_slot_tick();
}

void GossipChainNode::handle_message(sim::NodeId from,
                                     const sim::MessagePtr& message) {
  if (crashed_) return;
  if (const auto* client = dynamic_cast<const node::ClientTxMsg*>(message.get())) {
    on_client_tx(from, client->tx);
  } else if (const auto* gossip =
                 dynamic_cast<const node::GossipTxMsg*>(message.get())) {
    on_gossip_tx(from, gossip->tx);
  } else if (const auto* block = dynamic_cast<const GossipBlockMsg*>(message.get())) {
    on_block(from, block->block);
  }
}

void GossipChainNode::on_client_tx(sim::NodeId from, const txn::TxPtr& tx) {
  ++metrics_.client_txs_received;
  post_work(config_.preset.costs.eager_validation, [this, from, tx] {
    if (crashed_) return;
    ++metrics_.eager_validations;
    if (committed_txs_.contains(tx->hash) || pool_.contains(tx->hash)) return;
    if (!pipeline_.validate_one(*tx, oracle_->db())) {
      ++metrics_.eager_failures;
      return;
    }
    client_origins_.emplace(tx->hash, from);
    if (pool_.add(tx, now()) == pool::TxPool::AddResult::kAdded) {
      gossip_tx(tx, std::nullopt);  // Alg. 1 line 9
    }
    maybe_crash();
  });
}

void GossipChainNode::on_gossip_tx(sim::NodeId from, const txn::TxPtr& tx) {
  ++metrics_.gossip_txs_received;
  post_work(config_.preset.costs.gossip_dedup, [this, from, tx] {
    if (crashed_) return;
    if (seen_txs_.contains(tx->hash) || committed_txs_.contains(tx->hash) ||
        pool_.contains(tx->hash)) {
      return;
    }
    seen_txs_.insert(tx->hash);
    post_work(config_.preset.costs.eager_validation, [this, from, tx] {
      if (crashed_) return;
      ++metrics_.eager_validations;  // the redundant validation (§III-A)
      if (!pipeline_.validate_one(*tx, oracle_->db())) {
        ++metrics_.eager_failures;
        return;
      }
      if (pool_.add(tx, now()) == pool::TxPool::AddResult::kAdded) {
        gossip_tx(tx, from);
      }
      maybe_crash();
    });
  });
}

void GossipChainNode::gossip_tx(const txn::TxPtr& tx,
                                std::optional<sim::NodeId> skip) {
  if (overlay_ == nullptr) return;
  seen_txs_.insert(tx->hash);
  auto msg = std::make_shared<node::GossipTxMsg>();
  msg->tx = tx;
  for (const sim::NodeId peer : overlay_->peers(id())) {
    if (peer >= config_.n) continue;
    if (skip.has_value() && peer == *skip) continue;
    ++metrics_.gossip_txs_sent;
    send(peer, msg);
  }
}

void GossipChainNode::on_slot_tick() {
  if (crashed_) return;
  const std::uint64_t slot = slot_counter_++;
  if (slot % config_.n == config_.self) propose(slot);

  // Slot expiry: a slot is skipped once enough time has passed for its block
  // to have arrived and cleared the voting overhead (leader idle/failed or
  // block lost).
  const std::uint64_t grace =
      3 + (config_.preset.consensus_overhead + config_.preset.block_interval -
           1) /
              config_.preset.block_interval;
  while (next_commit_slot_ + grace <= slot &&
         !committable_.contains(next_commit_slot_)) {
    ++metrics_.slots_skipped;
    ++next_commit_slot_;
  }
  try_commit();
  sim().schedule_after(config_.preset.block_interval, [this] { on_slot_tick(); });
}

void GossipChainNode::propose(std::uint64_t slot) {
  std::vector<txn::TxPtr> txs = pool_.take_batch(
      config_.preset.max_block_txs, config_.preset.max_block_bytes, now());
  if (txs.empty()) return;  // idle slot
  ++metrics_.blocks_proposed;
  auto block = std::make_shared<const txn::Block>(
      txn::make_block(slot, config_.self, now(), Hash32{}, std::move(txs),
                      identity_, *config_.scheme));
  seen_blocks_.insert(block->hash());
  auto msg = std::make_shared<GossipBlockMsg>();
  msg->block = block;
  if (config_.preset.gossip_blocks && overlay_ != nullptr) {
    for (const sim::NodeId peer : overlay_->peers(id())) {
      if (peer < config_.n) send(peer, msg);
    }
  } else {
    // No block gossip (Avalanche-style): ship directly to every validator.
    for (std::uint32_t peer = 0; peer < config_.n; ++peer) {
      if (peer != config_.self) send(peer, msg);
    }
  }
  // Own commit path after the voting exchange.
  sim().schedule_after(config_.preset.consensus_overhead, [this, block] {
    committable_[block->header.index] = block;
    try_commit();
  });
}

void GossipChainNode::on_block(sim::NodeId from, const txn::BlockPtr& block) {
  const Hash32 hash = block->hash();
  if (seen_blocks_.contains(hash)) return;
  seen_blocks_.insert(hash);
  if (block->header.index < next_commit_slot_) return;  // too late
  if (!txn::verify_block_certificate(*block, *config_.scheme)) return;

  if (config_.preset.gossip_blocks && overlay_ != nullptr) {
    auto msg = std::make_shared<GossipBlockMsg>();
    msg->block = block;
    for (const sim::NodeId peer : overlay_->peers(id())) {
      if (peer < config_.n && peer != from) send(peer, msg);
    }
  }
  sim().schedule_after(config_.preset.consensus_overhead, [this, block] {
    // First block wins a slot (honest leaders do not equivocate here).
    committable_.emplace(block->header.index, block);
    try_commit();
  });
}

void GossipChainNode::try_commit() {
  if (crashed_) return;
  while (true) {
    const auto it = committable_.find(next_commit_slot_);
    if (it == committable_.end()) {
      // Drop anything below the commit frontier (skipped slots).
      committable_.erase(committable_.begin(),
                         committable_.lower_bound(next_commit_slot_));
      return;
    }
    const txn::BlockPtr block = it->second;
    committable_.erase(it);
    const std::uint64_t slot = next_commit_slot_++;
    const SimDuration cost =
        static_cast<SimDuration>(block->txs.size()) *
        (config_.preset.costs.lazy_validation +
         config_.preset.costs.sig_check_exec +
         config_.preset.costs.execution_per_tx);
    (void)slot;
    post_work(cost, [this, block] { commit_block(block); });
  }
}

void GossipChainNode::commit_block(const txn::BlockPtr& block) {
  if (crashed_) return;
  const node::IndexExecResult& result =
      oracle_->execute(block->header.index, {block});
  std::vector<Hash32> committed;
  for (const node::TxOutcome& outcome : result.blocks[0].outcomes) {
    if (outcome.valid) {
      ++metrics_.txs_committed_valid;
      committed_txs_.insert(outcome.hash);
      committed.push_back(outcome.hash);
      const auto origin = client_origins_.find(outcome.hash);
      if (origin != client_origins_.end()) {
        auto ack = std::make_shared<node::CommitAckMsg>();
        ack->tx_hash = outcome.hash;
        ack->executed_ok = outcome.executed_ok;
        send(origin->second, ack);
        client_origins_.erase(origin);
      }
    } else {
      ++metrics_.txs_discarded_invalid;
    }
  }
  pool_.remove_committed(committed);
  ++metrics_.blocks_committed;
  SRBB_TRACE(trace_, now(), 0, config_.self, "commit", "block.commit", "slot",
             block->header.index, "valid", result.total_valid);
}

void GossipChainNode::maybe_crash() {
  if (config_.preset.crash_after_pool_drops == 0) return;
  if (pool_.dropped_full() >= config_.preset.crash_after_pool_drops) {
    crashed_ = true;
    metrics_.crashed = true;
  }
}

}  // namespace srbb::chains
