#include "chains/presets.hpp"

namespace srbb::chains {

namespace {

ChainPreset base() {
  ChainPreset p;
  p.pool.capacity = 5120;  // Geth-like default
  // Shared realistic per-tx costs; each chain's throughput ceiling is set by
  // its block cap / interval, which dominates these.
  p.costs.eager_validation = micros(100);
  p.costs.lazy_validation = micros(5);
  p.costs.sig_check_exec = micros(150);
  p.costs.execution_per_tx = micros(300);
  return p;
}

}  // namespace

// Parameter sources: each chain's documented cadence and capacity, bent
// toward the operating point DIABLO observed under DApp load (see the file
// header and DESIGN.md §1). Throughput ceiling ~= max_block_txs /
// block_interval.

ChainPreset preset_algorand() {
  ChainPreset p = base();
  p.name = "Algorand";
  p.block_interval = millis(4400);   // ~4.4 s rounds
  p.max_block_txs = 2200;            // ceiling ~500 TPS
  p.consensus_overhead = millis(900);  // BA* soft/cert vote exchange
  p.pool.capacity = 4096;
  return p;
}

ChainPreset preset_avalanche() {
  ChainPreset p = base();
  p.name = "Avalanche";
  p.block_interval = millis(500);    // frequent small vertices
  p.max_block_txs = 30;              // ceiling ~60 TPS at DIABLO's op point
  p.consensus_overhead = millis(1200);  // repeated snowball query rounds
  p.gossip_blocks = false;           // snowman: transactions, not blocks (§VII)
  p.pool.capacity = 2048;
  return p;
}

ChainPreset preset_diem() {
  ChainPreset p = base();
  p.name = "Diem";
  p.block_interval = millis(3000);
  p.max_block_txs = 200;             // ceiling ~66 TPS; admission-limited pool
  p.consensus_overhead = millis(800);  // HotStuff 3-chain
  p.pool.capacity = 1024;            // small mempool admission window
  return p;
}

ChainPreset preset_ethereum_poa() {
  ChainPreset p = base();
  p.name = "Ethereum";
  p.block_interval = millis(5000);   // clique PoA period
  p.max_block_txs = 1500;            // ~30M gas / simple call
  p.consensus_overhead = millis(300);
  return p;
}

ChainPreset preset_quorum_ibft() {
  ChainPreset p = base();
  p.name = "Quorum";
  p.block_interval = millis(2000);
  p.max_block_txs = 1800;            // ceiling ~900 TPS, the best modern chain
  p.consensus_overhead = millis(600);  // IBFT prepare/commit phases
  return p;
}

ChainPreset preset_solana() {
  ChainPreset p = base();
  p.name = "Solana";
  p.block_interval = millis(400);    // slot cadence
  p.max_block_txs = 250;
  p.consensus_overhead = millis(400);
  p.pool.capacity = 1024;
  // DIABLO observed validator crashes under DApp load; the model crashes a
  // node once its pool has shed this many transactions.
  p.crash_after_pool_drops = 2048;
  p.costs.eager_validation = micros(60);
  return p;
}

std::vector<ChainPreset> all_modern_presets() {
  return {preset_algorand(),     preset_avalanche(),   preset_diem(),
          preset_ethereum_poa(), preset_quorum_ibft(), preset_solana()};
}

}  // namespace srbb::chains
