// Parameterized models of the six blockchains DIABLO evaluates (§V-A).
//
// All six share the modern-blockchain protocol of Alg. 1 *including* line 9:
// every transaction is gossiped individually and eagerly validated at every
// validator, then propagated again inside blocks. They differ in consensus
// cadence, block capacity, pool size and per-operation costs — the knobs
// below. The presets steer each instance toward the qualitative operating
// point DIABLO reported (who saturates, who loses transactions); absolute
// numbers are out of scope (see DESIGN.md, substitutions).
#pragma once

#include <string>

#include "common/time.hpp"
#include "pool/txpool.hpp"
#include "srbb/validator.hpp"

namespace srbb::chains {

struct ChainPreset {
  std::string name;
  /// One leader slot per interval; the slot leader batches its pool.
  SimDuration block_interval = seconds(1);
  std::size_t max_block_txs = 1000;
  std::size_t max_block_bytes = 2 * 1024 * 1024;
  pool::TxPoolConfig pool;
  node::CostModel costs;
  /// Extra voting/finality delay between block receipt and commit
  /// (e.g. IBFT's 3-phase exchange, BA*'s soft/cert votes).
  SimDuration consensus_overhead = millis(500);
  /// Per-tx gossip fanout.
  std::size_t gossip_fanout = 8;
  /// Blocks are also gossiped (false only for Avalanche, whose snowman
  /// consensus propagates transactions, not blocks — §VII).
  bool gossip_blocks = true;
  /// Crash the node once its pool has dropped this many transactions
  /// (0 = never). Models the under-load validator crashes DIABLO observed
  /// (notably Solana).
  std::uint64_t crash_after_pool_drops = 0;
};

ChainPreset preset_algorand();
ChainPreset preset_avalanche();
ChainPreset preset_diem();
ChainPreset preset_ethereum_poa();
ChainPreset preset_quorum_ibft();
ChainPreset preset_solana();

/// All six, in the paper's figure order.
std::vector<ChainPreset> all_modern_presets();

}  // namespace srbb::chains
