// Merkle Patricia Trie: the authenticated key-value structure Ethereum uses
// for its state and receipt commitments, implemented from scratch (leaf /
// extension / branch nodes over nibble paths, hex-prefix encoding, Keccak
// over RLP node encodings).
//
// One deliberate simplification relative to the yellow paper: child nodes
// are always referenced by their 32-byte hash (Ethereum inlines nodes whose
// encoding is shorter than 32 bytes). Roots are therefore self-consistent
// within this implementation but not byte-identical to Geth's — commitment
// semantics (binding, order-independence, proof of absence of collisions)
// are unaffected.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>

#include "common/bytes.hpp"

namespace srbb::state {

class MerklePatriciaTrie {
 public:
  MerklePatriciaTrie();
  ~MerklePatriciaTrie();
  MerklePatriciaTrie(MerklePatriciaTrie&&) noexcept;
  MerklePatriciaTrie& operator=(MerklePatriciaTrie&&) noexcept;

  /// Insert or overwrite. Empty values are legal and distinct from absence.
  void put(BytesView key, Bytes value);
  std::optional<Bytes> get(BytesView key) const;
  /// Remove a key; no-op when absent.
  void erase(BytesView key);

  bool empty() const { return root_ == nullptr; }
  std::size_t size() const { return size_; }

  /// keccak256 of the RLP encoding of the root node; a fixed sentinel for
  /// the empty trie.
  Hash32 root_hash() const;

 private:
  struct Node;
  using NodePtr = std::unique_ptr<Node>;

  static NodePtr insert(NodePtr node, std::span<const std::uint8_t> nibbles,
                        Bytes value, bool& inserted);
  static const Node* lookup(const Node* node,
                            std::span<const std::uint8_t> nibbles);
  static NodePtr remove(NodePtr node, std::span<const std::uint8_t> nibbles,
                        bool& removed);
  /// Re-normalise a node whose children changed (collapse single-child
  /// branches into extensions/leaves).
  static NodePtr normalize(NodePtr node);
  static Bytes encode(const Node& node);

  NodePtr root_;
  std::size_t size_ = 0;
};

/// Nibble helpers (exposed for tests).
std::vector<std::uint8_t> to_nibbles(BytesView key);
/// Hex-prefix encoding of a nibble path with the leaf flag (yellow paper
/// appendix C).
Bytes hex_prefix_encode(std::span<const std::uint8_t> nibbles, bool is_leaf);

}  // namespace srbb::state
