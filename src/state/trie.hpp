// Merkle Patricia Trie: the authenticated key-value structure Ethereum uses
// for its state and receipt commitments, implemented from scratch (leaf /
// extension / branch nodes over nibble paths, hex-prefix encoding, Keccak
// over RLP node encodings).
//
// Child references follow the yellow paper (appendix D): a child whose RLP
// encoding is shorter than 32 bytes is inlined into its parent's encoding;
// longer encodings are referenced by their Keccak hash. Roots are therefore
// byte-compatible with Ethereum's trie for the same key/value bytes (pinned
// by the known-root vectors in tests/test_trie.cpp).
//
// Incremental hashing: every node memoizes the RLP reference its parent
// embeds (hash or inline encoding). put()/erase() invalidate the memo only
// along the touched path, so root_hash() after k mutations re-hashes
// O(k * depth) nodes instead of the whole trie — the property the StateDB
// commitment layer (state_trie.hpp) builds on. The memo pool is bounded:
// when the number of cached references exceeds set_node_cache_limit(), the
// next root_hash() drops every memo (one full recompute, then re-warm),
// keeping worst-case memory O(limit) instead of O(nodes).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>

#include "common/bytes.hpp"

namespace srbb::state {

/// keccak256(rlp("")) — the canonical empty-trie sentinel root.
const Hash32& empty_trie_root();

class MerklePatriciaTrie {
 public:
  MerklePatriciaTrie();
  ~MerklePatriciaTrie();
  MerklePatriciaTrie(MerklePatriciaTrie&&) noexcept;
  MerklePatriciaTrie& operator=(MerklePatriciaTrie&&) noexcept;

  /// Insert or overwrite. Empty values are legal and distinct from absence.
  void put(BytesView key, Bytes value);
  std::optional<Bytes> get(BytesView key) const;
  /// Remove a key; no-op when absent.
  void erase(BytesView key);

  bool empty() const { return root_ == nullptr; }
  std::size_t size() const { return size_; }

  /// keccak256 of the RLP encoding of the root node; empty_trie_root() for
  /// the empty trie. Incremental: only nodes dirtied since the previous call
  /// are re-encoded/re-hashed.
  Hash32 root_hash() const;

  // --- node-cache bookkeeping (bounded memo pool) ---
  struct CacheStats {
    std::size_t cached_refs = 0;  // nodes currently holding a memoized ref
    std::uint64_t full_drops = 0; // times the whole memo pool was dropped
  };
  const CacheStats& cache_stats() const { return cache_stats_; }
  /// Cap on memoized node references (0 = unbounded). Exceeding the cap
  /// drops every memo at the next root_hash() — bounded memory at the cost
  /// of one full recompute.
  void set_node_cache_limit(std::size_t limit) { cache_limit_ = limit; }

 private:
  struct Node;
  using NodePtr = std::unique_ptr<Node>;

  NodePtr insert(NodePtr node, std::span<const std::uint8_t> nibbles,
                 Bytes value, bool& inserted);
  static const Node* lookup(const Node* node,
                            std::span<const std::uint8_t> nibbles);
  NodePtr remove(NodePtr node, std::span<const std::uint8_t> nibbles,
                 bool& removed);
  /// Re-normalise a node whose children changed (collapse single-child
  /// branches into extensions/leaves).
  NodePtr normalize(NodePtr node);
  /// Full RLP encoding of a node (children embedded per the yellow paper).
  Bytes encode(const Node& node) const;
  /// The RLP item a parent embeds for `node`: the encoding itself when
  /// shorter than 32 bytes, rlp(keccak(encoding)) otherwise. Memoized.
  Bytes child_ref(const Node& node) const;
  /// Drop a node's memoized ref (cache-stat bookkeeping funnel).
  void invalidate(Node& node);
  void drop_all_refs(Node* node);

  NodePtr root_;
  std::size_t size_ = 0;
  std::size_t cache_limit_ = 0;
  mutable CacheStats cache_stats_;
};

/// Nibble helpers (exposed for tests).
std::vector<std::uint8_t> to_nibbles(BytesView key);
/// Hex-prefix encoding of a nibble path with the leaf flag (yellow paper
/// appendix C).
Bytes hex_prefix_encode(std::span<const std::uint8_t> nibbles, bool is_leaf);

}  // namespace srbb::state
