// World state with journaled mutation: every write appends an undo record so
// the EVM can snapshot before a call frame and revert on failure, exactly the
// mechanism transaction execution needs for REVERT/out-of-gas semantics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/u256.hpp"
#include "state/account.hpp"

namespace srbb::state {

class StateDB {
 public:
  using Snapshot = std::size_t;

  // --- Reads (never create accounts) ---
  bool account_exists(const Address& addr) const;
  U256 balance(const Address& addr) const;
  std::uint64_t nonce(const Address& addr) const;
  const Bytes& code(const Address& addr) const;
  Hash32 code_hash(const Address& addr) const;
  U256 storage(const Address& addr, const Hash32& key) const;
  std::size_t account_count() const { return accounts_.size(); }

  // --- Writes (journaled) ---
  void create_account(const Address& addr);
  void set_balance(const Address& addr, const U256& value);
  void add_balance(const Address& addr, const U256& delta);
  /// False (no mutation) if the balance is insufficient.
  bool sub_balance(const Address& addr, const U256& delta);
  void set_nonce(const Address& addr, std::uint64_t nonce);
  void increment_nonce(const Address& addr);
  void set_code(const Address& addr, Bytes code);
  void set_storage(const Address& addr, const Hash32& key, const U256& value);
  /// Remove the account entirely (SELFDESTRUCT).
  void delete_account(const Address& addr);

  // --- Journal control ---
  Snapshot snapshot() const { return journal_.size(); }
  void revert_to(Snapshot snapshot);
  /// Drop undo history (end of transaction); state stays as-is.
  void commit();

  /// Deterministic digest of the entire world state. Accounts are hashed in
  /// address order, storage in key order, so two replicas that executed the
  /// same blocks produce identical roots. O(n log n) per call; this is the
  /// root the protocol uses.
  Hash32 state_root() const;

  /// Ethereum-shaped commitment: a Merkle Patricia Trie over accounts, each
  /// leaf rlp([nonce, balance, storage_trie_root, code_hash]) with a nested
  /// storage trie per contract. Binding like state_root() but additionally
  /// supports trie inclusion proofs; rebuilds the tries on every call, so
  /// use it at commitment points, not per transaction.
  Hash32 state_root_mpt() const;

 private:
  enum class Op : std::uint8_t {
    kCreateAccount,   // undo: erase account
    kBalanceChange,   // undo: restore prev_value
    kNonceChange,     // undo: restore prev_nonce
    kCodeChange,      // undo: restore prev_code
    kStorageChange,   // undo: restore prev_value / erase if !prev_existed
    kDeleteAccount,   // undo: restore prev_account
  };

  struct JournalEntry {
    Op op;
    Address addr;
    Hash32 key;                 // storage ops
    U256 prev_value;            // balance / storage
    std::uint64_t prev_nonce = 0;
    bool prev_existed = false;  // storage slot existed before write
    Bytes prev_code;
    Account prev_account;  // delete undo
  };

  Account& mutable_account(const Address& addr);
  const Account* find(const Address& addr) const;

  std::unordered_map<Address, Account, AddressHasher> accounts_;
  std::vector<JournalEntry> journal_;
};

}  // namespace srbb::state
