// World state with journaled mutation: every write appends an undo record so
// the EVM can snapshot before a call frame and revert on failure, exactly the
// mechanism transaction execution needs for REVERT/out-of-gas semantics.
//
// StateView is the abstract interface the EVM and the transaction executor
// run against; StateDB is the canonical backing store and OverlayState
// (overlay.hpp) is the speculative copy-on-write view the parallel executor
// uses for optimistic execution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/u256.hpp"
#include "state/account.hpp"

namespace srbb::state {

/// keccak256 of the empty byte string — the code hash of every EOA.
const Hash32& empty_code_keccak();

/// Abstract world-state view: the exact surface the interpreter and
/// apply_transaction need. Reads never create accounts; writes are journaled
/// so snapshot()/revert_to() give call-frame semantics.
class StateView {
 public:
  using Snapshot = std::size_t;

  virtual ~StateView() = default;

  // --- Reads (never create accounts) ---
  virtual bool account_exists(const Address& addr) const = 0;
  virtual U256 balance(const Address& addr) const = 0;
  virtual std::uint64_t nonce(const Address& addr) const = 0;
  virtual const Bytes& code(const Address& addr) const = 0;
  virtual Hash32 code_hash(const Address& addr) const = 0;
  /// keccak256 of code(addr) — the key the EVM analysis cache is addressed
  /// by. Implementations memoize where they can; the default recomputes.
  virtual Hash32 code_keccak(const Address& addr) const;
  virtual U256 storage(const Address& addr, const Hash32& key) const = 0;

  // --- Writes (journaled) ---
  virtual void create_account(const Address& addr) = 0;
  virtual void set_balance(const Address& addr, const U256& value) = 0;
  virtual void add_balance(const Address& addr, const U256& delta) = 0;
  /// False (no mutation) if the balance is insufficient.
  virtual bool sub_balance(const Address& addr, const U256& delta) = 0;
  virtual void set_nonce(const Address& addr, std::uint64_t nonce) = 0;
  virtual void increment_nonce(const Address& addr) = 0;
  virtual void set_code(const Address& addr, Bytes code) = 0;
  virtual void set_storage(const Address& addr, const Hash32& key,
                           const U256& value) = 0;
  /// Remove the account entirely (SELFDESTRUCT).
  virtual void delete_account(const Address& addr) = 0;

  // --- Journal control ---
  virtual Snapshot snapshot() const = 0;
  virtual void revert_to(Snapshot snapshot) = 0;
};

class StateDB final : public StateView {
 public:
  using Snapshot = StateView::Snapshot;

  // --- Reads (never create accounts) ---
  bool account_exists(const Address& addr) const override;
  U256 balance(const Address& addr) const override;
  std::uint64_t nonce(const Address& addr) const override;
  const Bytes& code(const Address& addr) const override;
  Hash32 code_hash(const Address& addr) const override;
  /// O(1): returns the hash memoized by set_code (empty-code hash for
  /// code-less accounts). Pure read — safe under concurrent readers.
  Hash32 code_keccak(const Address& addr) const override;
  U256 storage(const Address& addr, const Hash32& key) const override;
  std::size_t account_count() const { return accounts_.size(); }

  // --- Writes (journaled) ---
  void create_account(const Address& addr) override;
  void set_balance(const Address& addr, const U256& value) override;
  void add_balance(const Address& addr, const U256& delta) override;
  /// False (no mutation) if the balance is insufficient.
  bool sub_balance(const Address& addr, const U256& delta) override;
  void set_nonce(const Address& addr, std::uint64_t nonce) override;
  void increment_nonce(const Address& addr) override;
  void set_code(const Address& addr, Bytes code) override;
  void set_storage(const Address& addr, const Hash32& key,
                   const U256& value) override;
  /// Remove the account entirely (SELFDESTRUCT).
  void delete_account(const Address& addr) override;

  // --- Journal control ---
  Snapshot snapshot() const override { return journal_.size(); }
  void revert_to(Snapshot snapshot) override;
  /// Drop undo history (end of transaction); state stays as-is.
  void commit();

  /// Deterministic digest of the entire world state. Accounts are hashed in
  /// address order, storage in key order, so two replicas that executed the
  /// same blocks produce identical roots. O(n log n) per recompute; the
  /// result is memoized and reused until the next journaled write, so
  /// back-to-back calls (oracle indexing, convergence tests) are O(1).
  /// Not safe to call concurrently with writes or with itself.
  Hash32 state_root() const;

  /// Ethereum-shaped commitment: a Merkle Patricia Trie over accounts, each
  /// leaf rlp([nonce, balance, storage_trie_root, code_hash]) with a nested
  /// storage trie per contract. Binding like state_root() but additionally
  /// supports trie inclusion proofs; rebuilds the tries on every call, so
  /// use it at commitment points, not per transaction.
  Hash32 state_root_mpt() const;

 private:
  enum class Op : std::uint8_t {
    kCreateAccount,   // undo: erase account
    kBalanceChange,   // undo: restore prev_value
    kNonceChange,     // undo: restore prev_nonce
    kCodeChange,      // undo: restore prev_code
    kStorageChange,   // undo: restore prev_value / erase if !prev_existed
    kDeleteAccount,   // undo: restore prev_account
  };

  struct JournalEntry {
    Op op;
    Address addr;
    Hash32 key;                 // storage ops
    U256 prev_value;            // balance / storage
    std::uint64_t prev_nonce = 0;
    bool prev_existed = false;  // storage slot existed before write
    Bytes prev_code;
    Account prev_account;  // delete undo
  };

  Account& mutable_account(const Address& addr);
  const Account* find(const Address& addr) const;

  std::unordered_map<Address, Account, AddressHasher> accounts_;
  std::vector<JournalEntry> journal_;
  // state_root() memoization: any journaled write (or revert) invalidates.
  mutable Hash32 root_cache_;
  mutable bool root_dirty_ = true;
};

}  // namespace srbb::state
