// World state with journaled mutation: every write appends an undo record so
// the EVM can snapshot before a call frame and revert on failure, exactly the
// mechanism transaction execution needs for REVERT/out-of-gas semantics.
//
// StateView is the abstract interface the EVM and the transaction executor
// run against; StateDB is the canonical backing store and OverlayState
// (overlay.hpp) is the speculative copy-on-write view the parallel executor
// uses for optimistic execution.
//
// StateDB runs in one of two modes (docs/STATE.md):
//  - Default (no backend): every account is resident in the flat map and
//    reads are lock-free — byte-for-byte the original behaviour.
//  - Backend mode (constructed with a StorageBackend): the flat map becomes
//    a bounded resident cache. Reads fault missing records in from the
//    backend under a read-write lock (safe against the parallel executor's
//    concurrent speculation reads); commit() flushes the journal-derived
//    dirty set through the backend and then evicts clean entries FIFO down
//    to StateConfig::snapshot_capacity. A StateDB reopened over the same
//    backend reproduces the flushed state exactly, including its roots.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "common/u256.hpp"
#include "state/account.hpp"
#include "state/backend.hpp"
#include "state/config.hpp"
#include "state/snapshot.hpp"
#include "state/state_trie.hpp"

namespace srbb::state {

/// keccak256 of the empty byte string — the code hash of every EOA.
const Hash32& empty_code_keccak();

/// Abstract world-state view: the exact surface the interpreter and
/// apply_transaction need. Reads never create accounts; writes are journaled
/// so snapshot()/revert_to() give call-frame semantics.
class StateView {
 public:
  using Snapshot = std::size_t;

  virtual ~StateView() = default;

  // --- Reads (never create accounts) ---
  virtual bool account_exists(const Address& addr) const = 0;
  virtual U256 balance(const Address& addr) const = 0;
  virtual std::uint64_t nonce(const Address& addr) const = 0;
  virtual const Bytes& code(const Address& addr) const = 0;
  virtual Hash32 code_hash(const Address& addr) const = 0;
  /// keccak256 of code(addr) — the key the EVM analysis cache is addressed
  /// by. Implementations memoize where they can; the default recomputes.
  virtual Hash32 code_keccak(const Address& addr) const;
  virtual U256 storage(const Address& addr, const Hash32& key) const = 0;
  /// Hint that the address is about to be read: backed states pull the
  /// record into the resident cache so the upcoming reads are flat-map
  /// hits. No-op by default and for fully resident states.
  virtual void prefetch(const Address& /*addr*/) const {}

  // --- Writes (journaled) ---
  virtual void create_account(const Address& addr) = 0;
  virtual void set_balance(const Address& addr, const U256& value) = 0;
  virtual void add_balance(const Address& addr, const U256& delta) = 0;
  /// False (no mutation) if the balance is insufficient.
  virtual bool sub_balance(const Address& addr, const U256& delta) = 0;
  virtual void set_nonce(const Address& addr, std::uint64_t nonce) = 0;
  virtual void increment_nonce(const Address& addr) = 0;
  virtual void set_code(const Address& addr, Bytes code) = 0;
  virtual void set_storage(const Address& addr, const Hash32& key,
                           const U256& value) = 0;
  /// Remove the account entirely (SELFDESTRUCT).
  virtual void delete_account(const Address& addr) = 0;

  // --- Journal control ---
  virtual Snapshot snapshot() const = 0;
  virtual void revert_to(Snapshot snapshot) = 0;
};

class StateDB final : public StateView {
 public:
  using Snapshot = StateView::Snapshot;

  /// Default mode: fully resident, no backend — the original behaviour.
  StateDB() = default;
  /// Fully resident but with the commitment knobs from `config`
  /// (trie_node_cache_limit, storage_trie_cache) applied.
  explicit StateDB(StateConfig config) : config_(config) {}
  /// Backend mode: `backend` holds the durable records; the flat map is a
  /// resident cache bounded by config.snapshot_capacity. Existing backend
  /// records become the initial world state (reopen).
  StateDB(StateConfig config, std::shared_ptr<StorageBackend> backend);

  // Copyable for test/bench fixtures. A copy shares the backend pointer but
  // starts with fresh lock/commitment caches (they rebuild on demand); do
  // not commit through two copies of a backend-mode state.
  StateDB(const StateDB&) = default;
  StateDB& operator=(const StateDB&) = default;
  StateDB(StateDB&&) = default;
  StateDB& operator=(StateDB&&) = default;

  // --- Reads (never create accounts) ---
  bool account_exists(const Address& addr) const override;
  U256 balance(const Address& addr) const override;
  std::uint64_t nonce(const Address& addr) const override;
  const Bytes& code(const Address& addr) const override;
  Hash32 code_hash(const Address& addr) const override;
  /// O(1): returns the hash memoized by set_code (empty-code hash for
  /// code-less accounts). Pure read — safe under concurrent readers.
  Hash32 code_keccak(const Address& addr) const override;
  U256 storage(const Address& addr, const Hash32& key) const override;
  void prefetch(const Address& addr) const override;
  /// Live accounts (resident + backend-only, minus pending deletions).
  std::size_t account_count() const {
    return backend_ ? live_count_ : accounts_.size();
  }
  /// Accounts currently resident in the flat map.
  std::size_t resident_accounts() const { return accounts_.size(); }

  // --- Writes (journaled) ---
  void create_account(const Address& addr) override;
  void set_balance(const Address& addr, const U256& value) override;
  void add_balance(const Address& addr, const U256& delta) override;
  /// False (no mutation) if the balance is insufficient.
  bool sub_balance(const Address& addr, const U256& delta) override;
  void set_nonce(const Address& addr, std::uint64_t nonce) override;
  void increment_nonce(const Address& addr) override;
  void set_code(const Address& addr, Bytes code) override;
  void set_storage(const Address& addr, const Hash32& key,
                   const U256& value) override;
  /// Remove the account entirely (SELFDESTRUCT).
  void delete_account(const Address& addr) override;

  // --- Journal control ---
  Snapshot snapshot() const override { return journal_.size(); }
  void revert_to(Snapshot snapshot) override;
  /// Drop undo history (end of transaction); state stays as-is. In backend
  /// mode this is also the durability + eviction point: dirty records are
  /// flushed through the backend, then clean residents beyond
  /// snapshot_capacity are evicted FIFO.
  void commit();

  /// Deterministic digest of the entire world state. Accounts are hashed in
  /// address order, storage in key order, so two replicas that executed the
  /// same blocks produce identical roots. O(n log n) per recompute; the
  /// result is memoized and reused until the next journaled write, so
  /// back-to-back calls (oracle indexing, convergence tests) are O(1).
  /// Identical across modes for the same logical state. Not safe to call
  /// concurrently with writes or with itself.
  Hash32 state_root() const;

  /// Ethereum-shaped commitment: a Merkle Patricia Trie over accounts, each
  /// leaf rlp([nonce, balance, storage_trie_root, code_hash]) with a nested
  /// storage trie per contract. Binding like state_root() but additionally
  /// supports trie inclusion proofs. Incremental: the first call builds the
  /// trie, subsequent calls re-sync only accounts dirtied in between
  /// (state_trie.hpp), so a root after k mutations costs O(k·depth) instead
  /// of O(n). Not safe to call concurrently with reads or writes.
  Hash32 state_root_mpt() const;

  /// From-scratch MPT rebuild — the reference the incremental path is
  /// differentially tested against. Always equals state_root_mpt().
  Hash32 state_root_mpt_full() const;

  // --- introspection (obs wiring, tests) ---
  struct BackingStats {
    std::uint64_t hits = 0;       // reads served by the resident map
    std::uint64_t misses = 0;     // reads of records absent everywhere
    std::uint64_t faults = 0;     // records faulted in from the backend
    std::uint64_t evictions = 0;  // clean residents evicted at commit
  };
  BackingStats backing_stats() const {
    return {hits_.get(), misses_.get(), faults_.get(), evictions_};
  }
  const IncrementalStateTrie& state_trie() const { return mpt_.trie; }
  const StateConfig& config() const { return config_; }
  StorageBackend* backend() const { return backend_.get(); }

 private:
  enum class Op : std::uint8_t {
    kCreateAccount,   // undo: erase account
    kBalanceChange,   // undo: restore prev_value
    kNonceChange,     // undo: restore prev_nonce
    kCodeChange,      // undo: restore prev_code
    kStorageChange,   // undo: restore prev_value / erase if !prev_existed
    kDeleteAccount,   // undo: restore prev_account
  };

  struct JournalEntry {
    Op op;
    Address addr;
    Hash32 key;                 // storage ops
    U256 prev_value;            // balance / storage
    std::uint64_t prev_nonce = 0;
    bool prev_existed = false;  // storage slot existed before write
    /// Backend mode, create/delete ops: whether `addr` carried a deletion
    /// tombstone when the op ran. The undo restores the tombstone (and its
    /// pending backend-erase flush) exactly, so partial reverts of
    /// self-destruct/recreate sequences cannot resurrect stale backend
    /// records after commit clears the tombstone set.
    bool prev_tombstoned = false;
    Bytes prev_code;
    Account prev_account;  // delete undo
  };

  /// std::shared_mutex that copies/moves as a fresh mutex, so StateDB keeps
  /// its defaulted special members.
  struct FaultMutex {
    std::shared_mutex m;
    FaultMutex() = default;
    FaultMutex(const FaultMutex&) {}
    FaultMutex& operator=(const FaultMutex&) { return *this; }
    FaultMutex(FaultMutex&&) noexcept {}
    FaultMutex& operator=(FaultMutex&&) noexcept { return *this; }
  };

  /// Relaxed-atomic event counter (incremented under a shared lock by
  /// concurrent readers); copyable so StateDB stays copyable.
  struct RelaxedCounter {
    std::atomic<std::uint64_t> v{0};
    RelaxedCounter() = default;
    RelaxedCounter(const RelaxedCounter& o)
        : v(o.v.load(std::memory_order_relaxed)) {}
    RelaxedCounter& operator=(const RelaxedCounter& o) {
      v.store(o.v.load(std::memory_order_relaxed), std::memory_order_relaxed);
      return *this;
    }
    void inc() { v.fetch_add(1, std::memory_order_relaxed); }
    std::uint64_t get() const { return v.load(std::memory_order_relaxed); }
  };

  /// Incremental-commitment state. Copies (and copy-assignments) reset to
  /// unsynced — the commitment is a cache over the flat state and rebuilds
  /// on the next state_root_mpt() call.
  struct MptState {
    IncrementalStateTrie trie;
    bool synced = false;
    std::unordered_map<Address, DirtyInfo, AddressHasher> dirty;
    MptState() = default;
    MptState(const MptState&) {}
    MptState& operator=(const MptState&) {
      trie = IncrementalStateTrie{};
      synced = false;
      dirty.clear();
      return *this;
    }
    MptState(MptState&&) = default;
    MptState& operator=(MptState&&) = default;
  };

  Account& mutable_account(const Address& addr);
  const Account* find(const Address& addr) const;
  /// Backend-mode read: resident map under a shared lock, fault-in from the
  /// backend under the exclusive lock. Returned pointers stay valid until
  /// the next commit() (eviction) or delete of that account.
  const Account* fault_in(const Address& addr) const;
  /// Resolve an account without touching the resident cache: returns the
  /// resident pointer, or decodes the backend record into `scratch`.
  const Account* resolve(const Address& addr, Account& scratch) const;
  /// Every live address, ascending (resident ∪ backend − pending deletes).
  std::vector<Address> live_addresses() const;
  void mark_mpt_dirty(const Address& addr) const;
  void mark_mpt_slot(const Address& addr, const Hash32& key) const;
  void mark_mpt_full(const Address& addr) const;

  StateConfig config_;
  std::shared_ptr<StorageBackend> backend_;
  // accounts_ is mutable because backend-mode fault-in populates it from
  // const reads (under fault_mutex_). Default mode never mutates it const.
  mutable std::unordered_map<Address, Account, AddressHasher> accounts_;
  mutable FaultMutex fault_mutex_;
  // Accounts deleted since the last commit: the backend still holds their
  // records, so fault-in must not resurrect them.
  mutable std::unordered_set<Address, AddressHasher> deleted_;
  mutable FlatSnapshot snapshot_;
  std::size_t live_count_ = 0;  // backend mode only
  std::vector<JournalEntry> journal_;
  // state_root() memoization: any journaled write (or revert) invalidates.
  mutable Hash32 root_cache_;
  mutable bool root_dirty_ = true;
  mutable MptState mpt_;
  mutable RelaxedCounter hits_;
  mutable RelaxedCounter misses_;
  mutable RelaxedCounter faults_;
  std::uint64_t evictions_ = 0;
};

}  // namespace srbb::state
