#include "state/snapshot.hpp"

#include <algorithm>

namespace srbb::state {

void FlatSnapshot::note_resident(const Address& addr) {
  // Only a fresh residency earns a queue slot; re-noting an already-resident
  // address (e.g. repeated create_account) must not promote it.
  if (resident_.insert(addr).second) fifo_.push_back(addr);
}

void FlatSnapshot::note_erased(const Address& addr) {
  resident_.erase(addr);
  dirty_.erase(addr);
  // The fifo_ entry (if any) goes stale and is skipped during eviction.
}

std::vector<Address> FlatSnapshot::take_dirty_sorted() {
  std::vector<Address> out{dirty_.begin(), dirty_.end()};
  std::sort(out.begin(), out.end());
  dirty_.clear();
  return out;
}

std::vector<Address> FlatSnapshot::plan_eviction() {
  std::vector<Address> evicted;
  if (capacity_ == 0) return evicted;
  // Dirty entries are exempt; they re-enter the queue in their original
  // relative order so eviction stays FIFO across commits.
  std::vector<Address> deferred;
  std::size_t budget = fifo_.size();  // each original entry inspected once
  while (budget-- > 0 && resident_.size() > capacity_) {
    const Address addr = fifo_.front();
    fifo_.pop_front();
    if (!resident_.contains(addr)) continue;  // stale (erased earlier)
    if (dirty_.contains(addr)) {
      deferred.push_back(addr);
      continue;
    }
    resident_.erase(addr);
    evicted.push_back(addr);
  }
  fifo_.insert(fifo_.begin(), deferred.begin(), deferred.end());
  return evicted;
}

}  // namespace srbb::state
