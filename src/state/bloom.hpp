// 2048-bit log bloom filter, Ethereum-style: each datum sets three bits
// selected by the low 11 bits of three Keccak-256 digest pairs. Blocks carry
// the union of their receipts' blooms so light clients can skip blocks that
// cannot contain a topic of interest.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace srbb::state {

class LogBloom {
 public:
  static constexpr std::size_t kBytes = 256;  // 2048 bits

  /// Set the three bits for `datum` (an address or a topic).
  void add(BytesView datum);
  /// True when all three bits for `datum` are set (may be a false positive,
  /// never a false negative).
  bool may_contain(BytesView datum) const;

  /// Union with another bloom (block bloom = union of receipt blooms).
  void merge(const LogBloom& other);

  bool empty() const;
  const std::array<std::uint8_t, kBytes>& bits() const { return bits_; }

  friend bool operator==(const LogBloom&, const LogBloom&) = default;

 private:
  std::array<std::uint8_t, kBytes> bits_{};
};

}  // namespace srbb::state
