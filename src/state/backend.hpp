// Pluggable persistence for the world state (docs/STATE.md).
//
// A StorageBackend is a flat key→value store holding one record per account
// (key = the 20-byte address, value = the RLP account record produced by
// encode_account_record). StateDB in backend mode keeps only a bounded flat
// snapshot of accounts resident in memory; commits flush the dirty set
// through this interface and evict, reads fault records back in on demand.
//
// Contract:
//  - get() is called concurrently with other get()s (parallel speculation
//    faulting accounts in under StateDB's fault lock) but never concurrently
//    with put()/erase()/compact() — commits are single-threaded.
//  - keys() may return addresses in any order; callers sort. It must reflect
//    every committed put/erase (the root computation walks it).
//  - A backend reopened from its durable medium must serve exactly the
//    records of the last successful flush (crash-safe prefix; see
//    LogBackend in log_backend.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "state/account.hpp"

namespace srbb::state {

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  virtual std::optional<Bytes> get(const Address& key) const = 0;
  virtual void put(const Address& key, BytesView value) = 0;
  virtual void erase(const Address& key) = 0;
  /// Every live key, in unspecified order (callers sort).
  virtual std::vector<Address> keys() const = 0;
  /// Number of live records.
  virtual std::size_t size() const = 0;
  /// Durability point: after flush() returns, a reopen must see every
  /// preceding put/erase. No-op for volatile backends.
  virtual void flush() {}
  virtual std::string name() const = 0;
};

/// Reference in-memory backend: a sorted map, so keys() is deterministic by
/// construction. The baseline the differential suite holds every other
/// backend against.
class MemoryBackend final : public StorageBackend {
 public:
  std::optional<Bytes> get(const Address& key) const override;
  void put(const Address& key, BytesView value) override;
  void erase(const Address& key) override;
  std::vector<Address> keys() const override;
  std::size_t size() const override { return records_.size(); }
  std::string name() const override { return "memory"; }

 private:
  std::map<Address, Bytes> records_;
};

// --- account record codec ---------------------------------------------------
//
// rlp([nonce, balance, code, [[slot, value], ...]]) with storage slots in
// ascending slot order — canonical, so record bytes are a pure function of
// the logical account and byte-compare across replicas.

Bytes encode_account_record(const Account& account);
/// Strict decode; nullopt on any malformed or non-canonical record. The
/// returned account has code_keccak recomputed.
std::optional<Account> decode_account_record(BytesView record);

/// CRC-32 (IEEE 802.3, reflected) over `data` — the per-record integrity
/// check of the log-structured backend's frames.
std::uint32_t crc32(BytesView data);

}  // namespace srbb::state
