#include "state/trie.hpp"

#include <algorithm>
#include <cassert>

#include "codec/rlp.hpp"
#include "crypto/keccak.hpp"

namespace srbb::state {

const Hash32& empty_trie_root() {
  // keccak256(rlp("")) — the canonical empty-trie sentinel.
  static const Hash32 root = crypto::Keccak256::hash(rlp::encode_bytes(BytesView{}));
  return root;
}

struct MerklePatriciaTrie::Node {
  enum class Kind : std::uint8_t { kLeaf, kExtension, kBranch };

  Kind kind = Kind::kLeaf;
  std::vector<std::uint8_t> path;  // nibbles (leaf / extension)
  Bytes value;                     // leaf value, or branch slot-17 value
  bool has_value = false;          // branch: value present at this prefix
  NodePtr child;                   // extension target
  std::array<NodePtr, 16> children{};  // branch children

  // Memoized parent-embeddable reference (hash item or inline encoding).
  // Valid iff ref_valid; every mutation path must clear it through
  // MerklePatriciaTrie::invalidate so the cache stats stay exact.
  mutable Bytes ref;
  mutable bool ref_valid = false;

  static NodePtr leaf(std::vector<std::uint8_t> nibbles, Bytes val) {
    auto node = std::make_unique<Node>();
    node->kind = Kind::kLeaf;
    node->path = std::move(nibbles);
    node->value = std::move(val);
    node->has_value = true;
    return node;
  }

  static NodePtr extension(std::vector<std::uint8_t> nibbles, NodePtr target) {
    auto node = std::make_unique<Node>();
    node->kind = Kind::kExtension;
    node->path = std::move(nibbles);
    node->child = std::move(target);
    return node;
  }

  static NodePtr branch() {
    auto node = std::make_unique<Node>();
    node->kind = Kind::kBranch;
    return node;
  }

  std::size_t branch_child_count() const {
    std::size_t count = 0;
    for (const NodePtr& c : children) count += c != nullptr ? 1 : 0;
    return count;
  }
};

MerklePatriciaTrie::MerklePatriciaTrie() = default;
MerklePatriciaTrie::~MerklePatriciaTrie() = default;
MerklePatriciaTrie::MerklePatriciaTrie(MerklePatriciaTrie&&) noexcept = default;
MerklePatriciaTrie& MerklePatriciaTrie::operator=(MerklePatriciaTrie&&) noexcept =
    default;

std::vector<std::uint8_t> to_nibbles(BytesView key) {
  std::vector<std::uint8_t> out;
  out.reserve(key.size() * 2);
  for (const std::uint8_t byte : key) {
    out.push_back(byte >> 4);
    out.push_back(byte & 0x0f);
  }
  return out;
}

Bytes hex_prefix_encode(std::span<const std::uint8_t> nibbles, bool is_leaf) {
  Bytes out;
  const std::uint8_t flag = is_leaf ? 2 : 0;
  if (nibbles.size() % 2 == 0) {
    out.push_back(static_cast<std::uint8_t>(flag << 4));
    for (std::size_t i = 0; i < nibbles.size(); i += 2) {
      out.push_back(static_cast<std::uint8_t>((nibbles[i] << 4) | nibbles[i + 1]));
    }
  } else {
    out.push_back(static_cast<std::uint8_t>(((flag | 1) << 4) | nibbles[0]));
    for (std::size_t i = 1; i < nibbles.size(); i += 2) {
      out.push_back(static_cast<std::uint8_t>((nibbles[i] << 4) | nibbles[i + 1]));
    }
  }
  return out;
}

namespace {

std::size_t common_prefix(std::span<const std::uint8_t> a,
                          std::span<const std::uint8_t> b) {
  const std::size_t limit = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < limit && a[i] == b[i]) ++i;
  return i;
}

std::vector<std::uint8_t> slice(std::span<const std::uint8_t> nibbles,
                                std::size_t from) {
  return std::vector<std::uint8_t>(nibbles.begin() + static_cast<std::ptrdiff_t>(from),
                                   nibbles.end());
}

}  // namespace

void MerklePatriciaTrie::invalidate(Node& node) {
  if (!node.ref_valid) return;
  node.ref_valid = false;
  node.ref.clear();
  --cache_stats_.cached_refs;
}

void MerklePatriciaTrie::drop_all_refs(Node* node) {
  if (node == nullptr) return;
  invalidate(*node);
  if (node->kind == Node::Kind::kExtension) {
    drop_all_refs(node->child.get());
  } else if (node->kind == Node::Kind::kBranch) {
    for (const NodePtr& c : node->children) drop_all_refs(c.get());
  }
}

// --- insert -----------------------------------------------------------------

MerklePatriciaTrie::NodePtr MerklePatriciaTrie::insert(
    NodePtr node, std::span<const std::uint8_t> nibbles, Bytes value,
    bool& inserted) {
  if (node == nullptr) {
    inserted = true;
    return Node::leaf(std::vector<std::uint8_t>(nibbles.begin(), nibbles.end()),
                      std::move(value));
  }
  // Every node on the descent path is (potentially) mutated; nodes hanging
  // off the path keep their memoized refs — that is the incremental win.
  invalidate(*node);

  switch (node->kind) {
    case Node::Kind::kLeaf: {
      const std::size_t shared = common_prefix(node->path, nibbles);
      if (shared == node->path.size() && shared == nibbles.size()) {
        node->value = std::move(value);  // overwrite
        return node;
      }
      // Split into a branch (possibly behind an extension for the shared
      // prefix).
      NodePtr branch = Node::branch();
      // Existing leaf's remainder.
      if (shared == node->path.size()) {
        branch->value = std::move(node->value);
        branch->has_value = true;
      } else {
        const std::uint8_t idx = node->path[shared];
        branch->children[idx] =
            Node::leaf(slice(node->path, shared + 1), std::move(node->value));
      }
      // New value's remainder.
      if (shared == nibbles.size()) {
        branch->value = std::move(value);
        branch->has_value = true;
      } else {
        const std::uint8_t idx = nibbles[shared];
        branch->children[idx] =
            Node::leaf(slice(nibbles, shared + 1), std::move(value));
      }
      inserted = true;
      if (shared == 0) return branch;
      return Node::extension(
          std::vector<std::uint8_t>(nibbles.begin(),
                                    nibbles.begin() + static_cast<std::ptrdiff_t>(shared)),
          std::move(branch));
    }

    case Node::Kind::kExtension: {
      const std::size_t shared = common_prefix(node->path, nibbles);
      if (shared == node->path.size()) {
        node->child = insert(std::move(node->child), nibbles.subspan(shared),
                             std::move(value), inserted);
        return node;
      }
      // Split the extension.
      NodePtr branch = Node::branch();
      {
        // Remainder of the existing extension path.
        const std::uint8_t idx = node->path[shared];
        std::vector<std::uint8_t> rest = slice(node->path, shared + 1);
        branch->children[idx] =
            rest.empty() ? std::move(node->child)
                         : Node::extension(std::move(rest), std::move(node->child));
      }
      if (shared == nibbles.size()) {
        branch->value = std::move(value);
        branch->has_value = true;
      } else {
        const std::uint8_t idx = nibbles[shared];
        branch->children[idx] =
            Node::leaf(slice(nibbles, shared + 1), std::move(value));
      }
      inserted = true;
      if (shared == 0) return branch;
      return Node::extension(
          std::vector<std::uint8_t>(nibbles.begin(),
                                    nibbles.begin() + static_cast<std::ptrdiff_t>(shared)),
          std::move(branch));
    }

    case Node::Kind::kBranch: {
      if (nibbles.empty()) {
        if (!node->has_value) inserted = true;
        node->value = std::move(value);
        node->has_value = true;
        return node;
      }
      const std::uint8_t idx = nibbles[0];
      node->children[idx] = insert(std::move(node->children[idx]),
                                   nibbles.subspan(1), std::move(value), inserted);
      return node;
    }
  }
  return node;  // unreachable
}

void MerklePatriciaTrie::put(BytesView key, Bytes value) {
  const auto nibbles = to_nibbles(key);
  bool inserted = false;
  root_ = insert(std::move(root_), nibbles, std::move(value), inserted);
  if (inserted) ++size_;
}

// --- lookup -----------------------------------------------------------------

const MerklePatriciaTrie::Node* MerklePatriciaTrie::lookup(
    const Node* node, std::span<const std::uint8_t> nibbles) {
  while (node != nullptr) {
    switch (node->kind) {
      case Node::Kind::kLeaf:
        return (nibbles.size() == node->path.size() &&
                std::equal(nibbles.begin(), nibbles.end(), node->path.begin()))
                   ? node
                   : nullptr;
      case Node::Kind::kExtension: {
        if (nibbles.size() < node->path.size() ||
            !std::equal(node->path.begin(), node->path.end(), nibbles.begin())) {
          return nullptr;
        }
        nibbles = nibbles.subspan(node->path.size());
        node = node->child.get();
        break;
      }
      case Node::Kind::kBranch: {
        if (nibbles.empty()) return node->has_value ? node : nullptr;
        node = node->children[nibbles[0]].get();
        nibbles = nibbles.subspan(1);
        break;
      }
    }
  }
  return nullptr;
}

std::optional<Bytes> MerklePatriciaTrie::get(BytesView key) const {
  const auto nibbles = to_nibbles(key);
  const Node* node = lookup(root_.get(), nibbles);
  if (node == nullptr) return std::nullopt;
  return node->value;
}

// --- erase ------------------------------------------------------------------

MerklePatriciaTrie::NodePtr MerklePatriciaTrie::normalize(NodePtr node) {
  if (node == nullptr || node->kind != Node::Kind::kBranch) return node;
  const std::size_t child_count = node->branch_child_count();
  if (node->has_value && child_count == 0) {
    // Branch degenerated into a value at this prefix: a leaf with empty path.
    return Node::leaf({}, std::move(node->value));
  }
  if (!node->has_value && child_count == 1) {
    // Single child: merge the branch nibble into the child's path.
    for (std::uint8_t i = 0; i < 16; ++i) {
      if (node->children[i] == nullptr) continue;
      NodePtr child = std::move(node->children[i]);
      switch (child->kind) {
        case Node::Kind::kLeaf:
        case Node::Kind::kExtension:
          invalidate(*child);  // path changes below
          child->path.insert(child->path.begin(), i);
          return child;
        case Node::Kind::kBranch:
          return Node::extension({i}, std::move(child));
      }
    }
  }
  if (!node->has_value && child_count == 0) return nullptr;
  return node;
}

MerklePatriciaTrie::NodePtr MerklePatriciaTrie::remove(
    NodePtr node, std::span<const std::uint8_t> nibbles, bool& removed) {
  if (node == nullptr) return nullptr;
  switch (node->kind) {
    case Node::Kind::kLeaf: {
      if (nibbles.size() == node->path.size() &&
          std::equal(nibbles.begin(), nibbles.end(), node->path.begin())) {
        invalidate(*node);
        removed = true;
        return nullptr;
      }
      return node;
    }
    case Node::Kind::kExtension: {
      if (nibbles.size() < node->path.size() ||
          !std::equal(node->path.begin(), node->path.end(), nibbles.begin())) {
        return node;
      }
      invalidate(*node);
      node->child = remove(std::move(node->child),
                           nibbles.subspan(node->path.size()), removed);
      if (node->child == nullptr) return nullptr;
      // Merge chained extensions / absorb leaf children.
      if (node->child->kind != Node::Kind::kBranch) {
        NodePtr child = std::move(node->child);
        invalidate(*child);  // path changes below
        child->path.insert(child->path.begin(), node->path.begin(),
                           node->path.end());
        return child;
      }
      return node;
    }
    case Node::Kind::kBranch: {
      invalidate(*node);
      if (nibbles.empty()) {
        if (node->has_value) {
          node->has_value = false;
          node->value.clear();
          removed = true;
        }
        return normalize(std::move(node));
      }
      const std::uint8_t idx = nibbles[0];
      node->children[idx] =
          remove(std::move(node->children[idx]), nibbles.subspan(1), removed);
      return normalize(std::move(node));
    }
  }
  return node;  // unreachable
}

void MerklePatriciaTrie::erase(BytesView key) {
  const auto nibbles = to_nibbles(key);
  bool removed = false;
  root_ = remove(std::move(root_), nibbles, removed);
  if (removed) --size_;
}

// --- hashing ----------------------------------------------------------------

Bytes MerklePatriciaTrie::encode(const Node& node) const {
  switch (node.kind) {
    case Node::Kind::kLeaf: {
      rlp::ListBuilder rlp;
      rlp.add_bytes(hex_prefix_encode(node.path, true));
      rlp.add_bytes(node.value);
      return rlp.build();
    }
    case Node::Kind::kExtension: {
      rlp::ListBuilder rlp;
      rlp.add_bytes(hex_prefix_encode(node.path, false));
      rlp.add_raw(child_ref(*node.child));
      return rlp.build();
    }
    case Node::Kind::kBranch: {
      rlp::ListBuilder rlp;
      for (const NodePtr& child : node.children) {
        if (child == nullptr) {
          rlp.add_bytes(BytesView{});
        } else {
          rlp.add_raw(child_ref(*child));
        }
      }
      rlp.add_bytes(node.has_value ? BytesView{node.value} : BytesView{});
      return rlp.build();
    }
  }
  return {};  // unreachable
}

Bytes MerklePatriciaTrie::child_ref(const Node& node) const {
  if (node.ref_valid) return node.ref;
  Bytes enc = encode(node);
  // Yellow paper appendix D: nodes whose encoding is shorter than 32 bytes
  // are embedded verbatim in the parent; longer ones by hash. A node
  // encoding is always an RLP list, so the two forms cannot collide with
  // each other inside the parent's item slots.
  if (enc.size() < 32) {
    node.ref = std::move(enc);
  } else {
    node.ref = rlp::encode_bytes(crypto::Keccak256::hash(enc).view());
  }
  node.ref_valid = true;
  ++cache_stats_.cached_refs;
  return node.ref;
}

Hash32 MerklePatriciaTrie::root_hash() const {
  if (root_ == nullptr) return empty_trie_root();
  if (cache_limit_ != 0 && cache_stats_.cached_refs > cache_limit_) {
    // Memo pool over budget: drop everything, recompute from scratch once.
    const_cast<MerklePatriciaTrie*>(this)->drop_all_refs(root_.get());
    ++cache_stats_.full_drops;
  }
  // The root node itself is always hashed (TRIE(J) = KEC(c(J,0))), even when
  // its encoding is shorter than 32 bytes.
  return crypto::Keccak256::hash(encode(*root_));
}

}  // namespace srbb::state
