#include "state/bloom.hpp"

#include "crypto/keccak.hpp"

namespace srbb::state {

namespace {

// The three bit indices for a datum: low 11 bits of digest byte pairs
// (0,1), (2,3), (4,5) — the yellow paper's M3:2048 function.
std::array<std::uint32_t, 3> bloom_bits(BytesView datum) {
  const Hash32 digest = crypto::Keccak256::hash(datum);
  std::array<std::uint32_t, 3> out{};
  for (int i = 0; i < 3; ++i) {
    out[i] = ((static_cast<std::uint32_t>(digest[2 * i]) << 8) |
              digest[2 * i + 1]) &
             0x7ff;
  }
  return out;
}

}  // namespace

void LogBloom::add(BytesView datum) {
  for (const std::uint32_t bit : bloom_bits(datum)) {
    bits_[kBytes - 1 - bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

bool LogBloom::may_contain(BytesView datum) const {
  for (const std::uint32_t bit : bloom_bits(datum)) {
    if ((bits_[kBytes - 1 - bit / 8] & (1u << (bit % 8))) == 0) return false;
  }
  return true;
}

void LogBloom::merge(const LogBloom& other) {
  for (std::size_t i = 0; i < kBytes; ++i) bits_[i] |= other.bits_[i];
}

bool LogBloom::empty() const {
  for (const std::uint8_t byte : bits_) {
    if (byte != 0) return false;
  }
  return true;
}

}  // namespace srbb::state
