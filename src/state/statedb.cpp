#include "state/statedb.hpp"

#include <algorithm>
#include <mutex>

#include "codec/rlp.hpp"
#include "common/invariant.hpp"
#include "crypto/keccak.hpp"
#include "crypto/sha256.hpp"
#include "state/trie.hpp"

namespace srbb::state {

namespace {
const Bytes kEmptyCode;

Hash32 keccak_of_code(const Bytes& code) {
  return code.empty() ? Hash32{} : crypto::Keccak256::hash(code);
}
}

const Hash32& empty_code_keccak() {
  static const Hash32 hash = crypto::Keccak256::hash(BytesView{});
  return hash;
}

Hash32 StateView::code_keccak(const Address& addr) const {
  const Bytes& c = code(addr);
  return c.empty() ? empty_code_keccak() : crypto::Keccak256::hash(c);
}

StateDB::StateDB(StateConfig config, std::shared_ptr<StorageBackend> backend)
    : config_(config), backend_(std::move(backend)) {
  SRBB_CHECK(backend_ != nullptr);
  snapshot_.set_capacity(config_.snapshot_capacity);
  live_count_ = backend_->size();  // reopen: backend records are the state
}

// --- read path --------------------------------------------------------------

const Account* StateDB::find(const Address& addr) const {
  if (backend_ == nullptr) {
    const auto it = accounts_.find(addr);
    return it == accounts_.end() ? nullptr : &it->second;
  }
  return fault_in(addr);
}

const Account* StateDB::fault_in(const Address& addr) const {
  {
    std::shared_lock lock{fault_mutex_.m};
    const auto it = accounts_.find(addr);
    if (it != accounts_.end()) {
      hits_.inc();
      // Safe to return after unlock: entries are only erased at commit()
      // (eviction/deletion), never concurrently with reads.
      return &it->second;
    }
    if (deleted_.contains(addr)) {
      misses_.inc();
      return nullptr;
    }
  }
  std::unique_lock lock{fault_mutex_.m};
  // Double-check: another reader may have faulted it in meanwhile.
  const auto it = accounts_.find(addr);
  if (it != accounts_.end()) {
    hits_.inc();
    return &it->second;
  }
  if (deleted_.contains(addr)) {
    misses_.inc();
    return nullptr;
  }
  const std::optional<Bytes> record = backend_->get(addr);
  if (!record.has_value()) {
    misses_.inc();
    return nullptr;
  }
  std::optional<Account> account = decode_account_record(*record);
  // Backend records are this process's own flushes; a decode failure means
  // the backend returned bytes we never wrote.
  SRBB_CHECK(account.has_value());
  const auto inserted = accounts_.emplace(addr, std::move(*account)).first;
  snapshot_.note_resident(addr);
  faults_.inc();
  return &inserted->second;
}

const Account* StateDB::resolve(const Address& addr, Account& scratch) const {
  const auto it = accounts_.find(addr);
  if (it != accounts_.end()) return &it->second;
  if (backend_ == nullptr || deleted_.contains(addr)) return nullptr;
  const std::optional<Bytes> record = backend_->get(addr);
  if (!record.has_value()) return nullptr;
  std::optional<Account> account = decode_account_record(*record);
  SRBB_CHECK(account.has_value());
  scratch = std::move(*account);
  return &scratch;
}

std::vector<Address> StateDB::live_addresses() const {
  std::vector<Address> out;
  out.reserve(account_count());
  for (const auto& [addr, acc] : accounts_) out.push_back(addr);
  if (backend_ != nullptr) {
    for (const Address& addr : backend_->keys()) {
      if (!accounts_.contains(addr) && !deleted_.contains(addr)) {
        out.push_back(addr);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool StateDB::account_exists(const Address& addr) const {
  return find(addr) != nullptr;
}

U256 StateDB::balance(const Address& addr) const {
  const Account* acc = find(addr);
  return acc ? acc->balance : U256::zero();
}

std::uint64_t StateDB::nonce(const Address& addr) const {
  const Account* acc = find(addr);
  return acc ? acc->nonce : 0;
}

const Bytes& StateDB::code(const Address& addr) const {
  const Account* acc = find(addr);
  return acc ? acc->code : kEmptyCode;
}

Hash32 StateDB::code_hash(const Address& addr) const {
  return crypto::Sha256::hash(code(addr));
}

Hash32 StateDB::code_keccak(const Address& addr) const {
  const Account* acc = find(addr);
  if (acc == nullptr || acc->code.empty()) return empty_code_keccak();
  return acc->code_keccak;
}

U256 StateDB::storage(const Address& addr, const Hash32& key) const {
  const Account* acc = find(addr);
  if (acc == nullptr) return U256::zero();
  const auto it = acc->storage.find(key);
  return it == acc->storage.end() ? U256::zero() : it->second;
}

void StateDB::prefetch(const Address& addr) const {
  if (backend_ != nullptr) fault_in(addr);
}

// --- write path -------------------------------------------------------------

void StateDB::mark_mpt_dirty(const Address& addr) const {
  if (mpt_.synced) mpt_.dirty[addr];
}

void StateDB::mark_mpt_slot(const Address& addr, const Hash32& key) const {
  if (mpt_.synced) mpt_.dirty[addr].slots.insert(key);
}

void StateDB::mark_mpt_full(const Address& addr) const {
  if (mpt_.synced) mpt_.dirty[addr].full_storage = true;
}

Account& StateDB::mutable_account(const Address& addr) {
  root_dirty_ = true;  // every write path funnels through here
  mark_mpt_dirty(addr);
  if (backend_ == nullptr) {
    auto it = accounts_.find(addr);
    if (it == accounts_.end()) {
      journal_.push_back(JournalEntry{.op = Op::kCreateAccount, .addr = addr});
      it = accounts_.emplace(addr, Account{}).first;
    }
    return it->second;
  }

  snapshot_.mark_dirty(addr);
  // Fault the record in first: an account that lives only in the backend
  // must not be journaled (and reset) as a fresh creation.
  if (const Account* existing = fault_in(addr)) {
    return const_cast<Account&>(*existing);
  }
  std::unique_lock lock{fault_mutex_.m};
  journal_.push_back(JournalEntry{.op = Op::kCreateAccount,
                                  .addr = addr,
                                  .prev_tombstoned = deleted_.contains(addr)});
  const auto it = accounts_.emplace(addr, Account{}).first;
  snapshot_.note_resident(addr);
  ++live_count_;
  return it->second;
}

void StateDB::create_account(const Address& addr) { mutable_account(addr); }

void StateDB::set_balance(const Address& addr, const U256& value) {
  Account& acc = mutable_account(addr);
  journal_.push_back(JournalEntry{
      .op = Op::kBalanceChange, .addr = addr, .prev_value = acc.balance});
  acc.balance = value;
}

void StateDB::add_balance(const Address& addr, const U256& delta) {
  set_balance(addr, balance(addr) + delta);
}

bool StateDB::sub_balance(const Address& addr, const U256& delta) {
  const U256 current = balance(addr);
  if (current < delta) return false;
  set_balance(addr, current - delta);
  return true;
}

void StateDB::set_nonce(const Address& addr, std::uint64_t nonce) {
  Account& acc = mutable_account(addr);
  journal_.push_back(JournalEntry{
      .op = Op::kNonceChange, .addr = addr, .prev_nonce = acc.nonce});
  acc.nonce = nonce;
}

void StateDB::increment_nonce(const Address& addr) {
  set_nonce(addr, nonce(addr) + 1);
}

void StateDB::set_code(const Address& addr, Bytes code) {
  Account& acc = mutable_account(addr);
  JournalEntry entry{.op = Op::kCodeChange, .addr = addr};
  entry.prev_code = acc.code;
  journal_.push_back(std::move(entry));
  acc.code = std::move(code);
  acc.code_keccak = keccak_of_code(acc.code);
}

void StateDB::set_storage(const Address& addr, const Hash32& key,
                          const U256& value) {
  Account& acc = mutable_account(addr);
  mark_mpt_slot(addr, key);
  const auto it = acc.storage.find(key);
  JournalEntry entry{.op = Op::kStorageChange, .addr = addr, .key = key};
  entry.prev_existed = it != acc.storage.end();
  if (entry.prev_existed) entry.prev_value = it->second;
  journal_.push_back(std::move(entry));
  if (value.is_zero()) {
    acc.storage.erase(key);  // zero writes clear the slot, as in the EVM
  } else {
    acc.storage[key] = value;
  }
}

void StateDB::delete_account(const Address& addr) {
  const Account* acc = find(addr);  // faults in under a backend
  if (acc == nullptr) return;
  root_dirty_ = true;
  // The account's storage identity resets: a later recreation must not
  // inherit the old materialized storage trie.
  mark_mpt_full(addr);
  JournalEntry entry{.op = Op::kDeleteAccount, .addr = addr};
  entry.prev_account = *acc;
  if (backend_ == nullptr) {
    journal_.push_back(std::move(entry));
    accounts_.erase(addr);
    return;
  }
  std::unique_lock lock{fault_mutex_.m};
  // Tombstoned-but-resident happens when a recreate over a tombstone is
  // itself deleted; the undo must restore that exact intermediate state.
  entry.prev_tombstoned = deleted_.contains(addr);
  journal_.push_back(std::move(entry));
  accounts_.erase(addr);
  snapshot_.note_erased(addr);   // clears the dirty flag, so re-mark below
  snapshot_.mark_dirty(addr);    // the deletion itself must be flushed
  deleted_.insert(addr);         // fault-in must not resurrect the record
  --live_count_;
}

void StateDB::revert_to(Snapshot snapshot) {
  // Reverting to a snapshot that was never taken (or taken after writes that
  // were already reverted) means call-frame bookkeeping is corrupt.
  SRBB_CHECK(snapshot <= journal_.size());
  if (journal_.size() > snapshot) root_dirty_ = true;
  while (journal_.size() > snapshot) {
    JournalEntry& entry = journal_.back();
    // Every undo except account (re)creation targets an account the journal
    // says exists; a miss means the journal and the map disagree. Checked
    // lookups here keep operator[] from papering over corruption by
    // silently creating empty accounts.
    const auto target = [&]() -> Account& {
      const auto it = accounts_.find(entry.addr);
      SRBB_CHECK(it != accounts_.end());
      return it->second;
    };
    switch (entry.op) {
      case Op::kCreateAccount:
        mark_mpt_dirty(entry.addr);
        accounts_.erase(entry.addr);
        if (backend_ != nullptr) {
          snapshot_.note_erased(entry.addr);
          if (entry.prev_tombstoned) {
            // The creation resurrected a tombstoned account; undoing it
            // reinstates the tombstone, and the pending backend erase must
            // survive note_erased() having cleared the dirty flag.
            deleted_.insert(entry.addr);
            snapshot_.mark_dirty(entry.addr);
          }
          --live_count_;
        }
        break;
      case Op::kBalanceChange:
        mark_mpt_dirty(entry.addr);
        target().balance = entry.prev_value;
        break;
      case Op::kNonceChange:
        mark_mpt_dirty(entry.addr);
        target().nonce = entry.prev_nonce;
        break;
      case Op::kCodeChange: {
        mark_mpt_dirty(entry.addr);
        Account& acc = target();
        acc.code = std::move(entry.prev_code);
        // Reverted deployments are rare; recomputing beats journaling the
        // previous hash on every set_code.
        acc.code_keccak = keccak_of_code(acc.code);
        break;
      }
      case Op::kStorageChange: {
        mark_mpt_slot(entry.addr, entry.key);
        auto& storage = target().storage;
        if (entry.prev_existed) {
          storage[entry.key] = entry.prev_value;
        } else {
          storage.erase(entry.key);
        }
        break;
      }
      case Op::kDeleteAccount:
        // The deletion undo recreates the account, so it must be absent.
        SRBB_PARANOID(!accounts_.contains(entry.addr));
        mark_mpt_full(entry.addr);
        accounts_[entry.addr] = std::move(entry.prev_account);
        if (backend_ != nullptr) {
          snapshot_.note_resident(entry.addr);
          snapshot_.mark_dirty(entry.addr);
          // Deleting a recreated-over-tombstone account keeps the tombstone;
          // restore whichever state the deletion actually saw.
          if (entry.prev_tombstoned) {
            deleted_.insert(entry.addr);
          } else {
            deleted_.erase(entry.addr);
          }
          ++live_count_;
        }
        break;
    }
    journal_.pop_back();
  }
}

void StateDB::commit() {
  if (backend_ != nullptr) {
    // Flush every record that may have changed since the last commit. The
    // set is conservative (a write that was later reverted re-puts an
    // identical record); the order is sorted, so the backend's record
    // stream is deterministic across replicas.
    std::vector<Address> to_flush = snapshot_.take_dirty_sorted();
    if (!deleted_.empty()) {
      // Every tombstone means the backend may still hold the record; union
      // it in so a deletion whose dirty mark was consumed by journal undo
      // bookkeeping still flushes its erase.
      for (const Address& addr : deleted_) to_flush.push_back(addr);
      std::sort(to_flush.begin(), to_flush.end());
      to_flush.erase(std::unique(to_flush.begin(), to_flush.end()),
                     to_flush.end());
    }
    for (const Address& addr : to_flush) {
      const auto it = accounts_.find(addr);
      if (it != accounts_.end()) {
        backend_->put(addr, encode_account_record(it->second));
      } else {
        backend_->erase(addr);
      }
    }
    backend_->flush();
    deleted_.clear();  // flushed: the backend no longer holds these records
    for (const Address& addr : snapshot_.plan_eviction()) {
      accounts_.erase(addr);
      ++evictions_;
    }
  }
  journal_.clear();
}

// --- commitments ------------------------------------------------------------

Hash32 StateDB::state_root() const {
  if (!root_dirty_) return root_cache_;
  const std::vector<Address> addresses = live_addresses();

  crypto::Sha256 root;
  Account scratch;
  for (const Address& addr : addresses) {
    const Account* resolved = resolve(addr, scratch);
    SRBB_CHECK(resolved != nullptr);
    const Account& acc = *resolved;
    root.update(addr.view());
    std::uint8_t nonce_be[8];
    put_be64(nonce_be, acc.nonce);
    root.update(BytesView{nonce_be, 8});
    root.update(acc.balance.be_bytes());
    root.update(crypto::Sha256::hash(acc.code).view());

    std::vector<Hash32> keys;
    keys.reserve(acc.storage.size());
    for (const auto& [key, value] : acc.storage) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (const Hash32& key : keys) {
      root.update(key.view());
      root.update(acc.storage.at(key).be_bytes());
    }
  }
  root_cache_ = root.finish();
  root_dirty_ = false;
  return root_cache_;
}

Hash32 StateDB::state_root_mpt() const {
  if (!mpt_.synced) {
    // First call (or first after a copy): build the whole commitment once;
    // later calls only re-sync accounts the write path marked dirty.
    mpt_.trie = IncrementalStateTrie{};
    mpt_.trie.configure(config_.storage_trie_cache,
                        config_.trie_node_cache_limit);
    Account scratch;
    for (const Address& addr : live_addresses()) {
      mpt_.trie.update(addr, resolve(addr, scratch),
                       DirtyInfo{.full_storage = true});
    }
    mpt_.synced = true;
    mpt_.dirty.clear();
    return mpt_.trie.root_hash();
  }

  std::vector<Address> addresses;
  addresses.reserve(mpt_.dirty.size());
  for (const auto& [addr, info] : mpt_.dirty) addresses.push_back(addr);
  std::sort(addresses.begin(), addresses.end());
  Account scratch;
  for (const Address& addr : addresses) {
    mpt_.trie.update(addr, resolve(addr, scratch), mpt_.dirty.at(addr));
  }
  mpt_.dirty.clear();
  return mpt_.trie.root_hash();
}

Hash32 StateDB::state_root_mpt_full() const {
  MerklePatriciaTrie trie;
  Account scratch;
  for (const Address& addr : live_addresses()) {
    const Account* acc = resolve(addr, scratch);
    SRBB_CHECK(acc != nullptr);
    trie.put(addr.view(), encode_account_leaf(*acc, storage_trie_root(*acc)));
  }
  return trie.root_hash();
}

}  // namespace srbb::state
