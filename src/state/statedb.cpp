#include "state/statedb.hpp"

#include <algorithm>

#include "codec/rlp.hpp"
#include "common/invariant.hpp"
#include "crypto/keccak.hpp"
#include "crypto/sha256.hpp"
#include "state/trie.hpp"

namespace srbb::state {

namespace {
const Bytes kEmptyCode;

Hash32 keccak_of_code(const Bytes& code) {
  return code.empty() ? Hash32{} : crypto::Keccak256::hash(code);
}
}

const Hash32& empty_code_keccak() {
  static const Hash32 hash = crypto::Keccak256::hash(BytesView{});
  return hash;
}

Hash32 StateView::code_keccak(const Address& addr) const {
  const Bytes& c = code(addr);
  return c.empty() ? empty_code_keccak() : crypto::Keccak256::hash(c);
}

const Account* StateDB::find(const Address& addr) const {
  const auto it = accounts_.find(addr);
  return it == accounts_.end() ? nullptr : &it->second;
}

Account& StateDB::mutable_account(const Address& addr) {
  root_dirty_ = true;  // every write path funnels through here
  auto it = accounts_.find(addr);
  if (it == accounts_.end()) {
    journal_.push_back(JournalEntry{.op = Op::kCreateAccount, .addr = addr});
    it = accounts_.emplace(addr, Account{}).first;
  }
  return it->second;
}

bool StateDB::account_exists(const Address& addr) const {
  return find(addr) != nullptr;
}

U256 StateDB::balance(const Address& addr) const {
  const Account* acc = find(addr);
  return acc ? acc->balance : U256::zero();
}

std::uint64_t StateDB::nonce(const Address& addr) const {
  const Account* acc = find(addr);
  return acc ? acc->nonce : 0;
}

const Bytes& StateDB::code(const Address& addr) const {
  const Account* acc = find(addr);
  return acc ? acc->code : kEmptyCode;
}

Hash32 StateDB::code_hash(const Address& addr) const {
  return crypto::Sha256::hash(code(addr));
}

Hash32 StateDB::code_keccak(const Address& addr) const {
  const Account* acc = find(addr);
  if (acc == nullptr || acc->code.empty()) return empty_code_keccak();
  return acc->code_keccak;
}

U256 StateDB::storage(const Address& addr, const Hash32& key) const {
  const Account* acc = find(addr);
  if (acc == nullptr) return U256::zero();
  const auto it = acc->storage.find(key);
  return it == acc->storage.end() ? U256::zero() : it->second;
}

void StateDB::create_account(const Address& addr) { mutable_account(addr); }

void StateDB::set_balance(const Address& addr, const U256& value) {
  Account& acc = mutable_account(addr);
  journal_.push_back(JournalEntry{
      .op = Op::kBalanceChange, .addr = addr, .prev_value = acc.balance});
  acc.balance = value;
}

void StateDB::add_balance(const Address& addr, const U256& delta) {
  set_balance(addr, balance(addr) + delta);
}

bool StateDB::sub_balance(const Address& addr, const U256& delta) {
  const U256 current = balance(addr);
  if (current < delta) return false;
  set_balance(addr, current - delta);
  return true;
}

void StateDB::set_nonce(const Address& addr, std::uint64_t nonce) {
  Account& acc = mutable_account(addr);
  journal_.push_back(JournalEntry{
      .op = Op::kNonceChange, .addr = addr, .prev_nonce = acc.nonce});
  acc.nonce = nonce;
}

void StateDB::increment_nonce(const Address& addr) {
  set_nonce(addr, nonce(addr) + 1);
}

void StateDB::set_code(const Address& addr, Bytes code) {
  Account& acc = mutable_account(addr);
  JournalEntry entry{.op = Op::kCodeChange, .addr = addr};
  entry.prev_code = acc.code;
  journal_.push_back(std::move(entry));
  acc.code = std::move(code);
  acc.code_keccak = keccak_of_code(acc.code);
}

void StateDB::set_storage(const Address& addr, const Hash32& key,
                          const U256& value) {
  Account& acc = mutable_account(addr);
  const auto it = acc.storage.find(key);
  JournalEntry entry{.op = Op::kStorageChange, .addr = addr, .key = key};
  entry.prev_existed = it != acc.storage.end();
  if (entry.prev_existed) entry.prev_value = it->second;
  journal_.push_back(std::move(entry));
  if (value.is_zero()) {
    acc.storage.erase(key);  // zero writes clear the slot, as in the EVM
  } else {
    acc.storage[key] = value;
  }
}

void StateDB::delete_account(const Address& addr) {
  const auto it = accounts_.find(addr);
  if (it == accounts_.end()) return;
  root_dirty_ = true;
  JournalEntry entry{.op = Op::kDeleteAccount, .addr = addr};
  entry.prev_account = it->second;
  journal_.push_back(std::move(entry));
  accounts_.erase(it);
}

void StateDB::revert_to(Snapshot snapshot) {
  // Reverting to a snapshot that was never taken (or taken after writes that
  // were already reverted) means call-frame bookkeeping is corrupt.
  SRBB_CHECK(snapshot <= journal_.size());
  if (journal_.size() > snapshot) root_dirty_ = true;
  while (journal_.size() > snapshot) {
    JournalEntry& entry = journal_.back();
    // Every undo except account (re)creation targets an account the journal
    // says exists; a miss means the journal and the map disagree. Checked
    // lookups here keep operator[] from papering over corruption by
    // silently creating empty accounts.
    const auto target = [&]() -> Account& {
      const auto it = accounts_.find(entry.addr);
      SRBB_CHECK(it != accounts_.end());
      return it->second;
    };
    switch (entry.op) {
      case Op::kCreateAccount:
        accounts_.erase(entry.addr);
        break;
      case Op::kBalanceChange:
        target().balance = entry.prev_value;
        break;
      case Op::kNonceChange:
        target().nonce = entry.prev_nonce;
        break;
      case Op::kCodeChange: {
        Account& acc = target();
        acc.code = std::move(entry.prev_code);
        // Reverted deployments are rare; recomputing beats journaling the
        // previous hash on every set_code.
        acc.code_keccak = keccak_of_code(acc.code);
        break;
      }
      case Op::kStorageChange: {
        auto& storage = target().storage;
        if (entry.prev_existed) {
          storage[entry.key] = entry.prev_value;
        } else {
          storage.erase(entry.key);
        }
        break;
      }
      case Op::kDeleteAccount:
        // The deletion undo recreates the account, so it must be absent.
        SRBB_PARANOID(!accounts_.contains(entry.addr));
        accounts_[entry.addr] = std::move(entry.prev_account);
        break;
    }
    journal_.pop_back();
  }
}

void StateDB::commit() { journal_.clear(); }

Hash32 StateDB::state_root() const {
  if (!root_dirty_) return root_cache_;
  std::vector<Address> addresses;
  addresses.reserve(accounts_.size());
  for (const auto& [addr, acc] : accounts_) addresses.push_back(addr);
  std::sort(addresses.begin(), addresses.end());

  crypto::Sha256 root;
  for (const Address& addr : addresses) {
    const Account& acc = accounts_.at(addr);
    root.update(addr.view());
    std::uint8_t nonce_be[8];
    put_be64(nonce_be, acc.nonce);
    root.update(BytesView{nonce_be, 8});
    root.update(acc.balance.be_bytes());
    root.update(crypto::Sha256::hash(acc.code).view());

    std::vector<Hash32> keys;
    keys.reserve(acc.storage.size());
    for (const auto& [key, value] : acc.storage) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (const Hash32& key : keys) {
      root.update(key.view());
      root.update(acc.storage.at(key).be_bytes());
    }
  }
  root_cache_ = root.finish();
  root_dirty_ = false;
  return root_cache_;
}

Hash32 StateDB::state_root_mpt() const {
  // Trie roots are insertion-order independent in principle, but feeding a
  // commitment from unordered_map iteration makes the root's correctness
  // depend on that property holding under every future trie change. Sorted
  // insertion keeps the whole path deterministic by construction.
  std::vector<Address> addresses;
  addresses.reserve(accounts_.size());
  for (const auto& [addr, acc] : accounts_) addresses.push_back(addr);
  std::sort(addresses.begin(), addresses.end());

  MerklePatriciaTrie state_trie;
  for (const Address& addr : addresses) {
    const Account& acc = accounts_.at(addr);
    std::vector<Hash32> keys;
    keys.reserve(acc.storage.size());
    for (const auto& [key, value] : acc.storage) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    MerklePatriciaTrie storage_trie;
    for (const Hash32& key : keys) {
      storage_trie.put(key.view(), rlp::encode_u256(acc.storage.at(key)));
    }
    rlp::ListBuilder body;
    body.add_u64(acc.nonce);
    body.add_u256(acc.balance);
    body.add_bytes(storage_trie.root_hash().view());
    body.add_bytes(crypto::Keccak256::hash(acc.code).view());
    state_trie.put(addr.view(), body.build());
  }
  return state_trie.root_hash();
}

}  // namespace srbb::state
