#include "state/state_trie.hpp"

#include <algorithm>
#include <vector>

#include "codec/rlp.hpp"
#include "common/invariant.hpp"
#include "crypto/keccak.hpp"

namespace srbb::state {

namespace {
const Hash32& keccak_of_empty() {
  static const Hash32 hash = crypto::Keccak256::hash(BytesView{});
  return hash;
}
}  // namespace

Bytes encode_account_leaf(const Account& account, const Hash32& storage_root) {
  rlp::ListBuilder body;
  body.add_u64(account.nonce);
  body.add_u256(account.balance);
  body.add_bytes(storage_root.view());
  // Account::code_keccak is the zero hash for code-less accounts; the leaf
  // wants keccak("") there, same as hashing the code directly.
  const Hash32& code_hash =
      account.code.empty() ? keccak_of_empty() : account.code_keccak;
  body.add_bytes(code_hash.view());
  return body.build();
}

Hash32 storage_trie_root(const Account& account) {
  if (account.storage.empty()) return empty_trie_root();
  std::vector<Hash32> slots;
  slots.reserve(account.storage.size());
  for (const auto& [slot, value] : account.storage) slots.push_back(slot);
  std::sort(slots.begin(), slots.end());
  MerklePatriciaTrie trie;
  for (const Hash32& slot : slots) {
    trie.put(slot.view(), rlp::encode_u256(account.storage.at(slot)));
  }
  return trie.root_hash();
}

void IncrementalStateTrie::configure(std::size_t storage_trie_cache,
                                     std::size_t node_cache_limit) {
  storage_cache_ = storage_trie_cache;
  account_trie_.set_node_cache_limit(node_cache_limit);
  evict_storage_tries();
}

void IncrementalStateTrie::update(const Address& addr, const Account* account,
                                  const DirtyInfo& dirty) {
  ++stats_.leaf_updates;
  if (account == nullptr) {
    account_trie_.erase(addr.view());
    drop_storage_trie(addr);
    storage_roots_.erase(addr);
    return;
  }
  const Hash32 storage_root = storage_root_for(addr, *account, dirty);
  account_trie_.put(addr.view(), encode_account_leaf(*account, storage_root));
}

Hash32 IncrementalStateTrie::storage_root_for(const Address& addr,
                                              const Account& account,
                                              const DirtyInfo& dirty) {
  if (account.storage.empty()) {
    drop_storage_trie(addr);
    storage_roots_.erase(addr);
    return empty_trie_root();
  }

  const auto it = storage_tries_.find(addr);
  if (it != storage_tries_.end() && !dirty.full_storage) {
    // Materialized: apply only the dirty slots.
    MerklePatriciaTrie& trie = it->second.trie;
    for (const Hash32& slot : dirty.slots) {
      const auto value = account.storage.find(slot);
      if (value == account.storage.end()) {
        trie.erase(slot.view());
      } else {
        trie.put(slot.view(), rlp::encode_u256(value->second));
      }
    }
    touch(addr);
    const Hash32 root = trie.root_hash();
    storage_roots_[addr] = root;
    return root;
  }

  if (it == storage_tries_.end() && !dirty.full_storage && dirty.slots.empty()) {
    // Leaf-only change (nonce/balance/code): the memoized root still holds.
    const auto memo = storage_roots_.find(addr);
    if (memo != storage_roots_.end()) {
      ++stats_.storage_root_memo_hits;
      return memo->second;
    }
  }

  // Rebuild from the flat storage map (first sight, post-eviction write, or
  // a full_storage change).
  drop_storage_trie(addr);
  std::vector<Hash32> slots;
  slots.reserve(account.storage.size());
  for (const auto& [slot, value] : account.storage) slots.push_back(slot);
  std::sort(slots.begin(), slots.end());
  StorageEntry entry;
  for (const Hash32& slot : slots) {
    entry.trie.put(slot.view(), rlp::encode_u256(account.storage.at(slot)));
  }
  ++stats_.storage_trie_rebuilds;
  const Hash32 root = entry.trie.root_hash();
  entry.tick = ++tick_;
  lru_.emplace(entry.tick, addr);
  storage_tries_.emplace(addr, std::move(entry));
  storage_roots_[addr] = root;
  evict_storage_tries();
  return root;
}

void IncrementalStateTrie::drop_storage_trie(const Address& addr) {
  const auto it = storage_tries_.find(addr);
  if (it == storage_tries_.end()) return;
  lru_.erase(it->second.tick);
  storage_tries_.erase(it);
}

void IncrementalStateTrie::touch(const Address& addr) {
  const auto it = storage_tries_.find(addr);
  SRBB_CHECK(it != storage_tries_.end());
  lru_.erase(it->second.tick);
  it->second.tick = ++tick_;
  lru_.emplace(it->second.tick, addr);
}

void IncrementalStateTrie::evict_storage_tries() {
  if (storage_cache_ == 0) return;
  while (storage_tries_.size() > storage_cache_) {
    const auto oldest = lru_.begin();
    SRBB_CHECK(oldest != lru_.end());
    storage_tries_.erase(oldest->second);  // storage_roots_ memo is kept
    lru_.erase(oldest);
    ++stats_.storage_trie_evictions;
  }
}

}  // namespace srbb::state
