#include "state/log_backend.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/invariant.hpp"

namespace srbb::state {

namespace {

constexpr std::size_t kHeaderSize = 1 + 1 + 4;  // op, key_len, val_len
constexpr std::size_t kCrcSize = 4;
constexpr std::uint8_t kOpPut = 0;
constexpr std::uint8_t kOpErase = 1;

void write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    SRBB_CHECK(n > 0);  // disk-full / IO error: no way to stay consistent
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

bool read_exact_at(int fd, std::uint8_t* out, std::size_t size,
                   std::uint64_t offset) {
  while (size > 0) {
    const ssize_t n = ::pread(fd, out, size, static_cast<off_t>(offset));
    if (n <= 0) return false;
    out += n;
    size -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
  return true;
}

}  // namespace

LogBackend::LogBackend(std::string path)
    : LogBackend(std::move(path), Options{}) {}

LogBackend::LogBackend(std::string path, Options options)
    : path_(std::move(path)), options_(options) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  SRBB_CHECK(fd_ >= 0);
  recover();
}

LogBackend::~LogBackend() {
  if (fd_ >= 0) ::close(fd_);
}

void LogBackend::recover() {
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  SRBB_CHECK(end >= 0);
  const auto file_size = static_cast<std::uint64_t>(end);

  // Replay frame by frame; the first malformed or torn frame ends the valid
  // prefix. Header+key reads are small; values are validated through the CRC
  // without being retained (the index stores offsets only).
  std::uint64_t offset = 0;
  std::vector<std::uint8_t> scratch;
  while (offset + kHeaderSize <= file_size) {
    std::uint8_t header[kHeaderSize];
    if (!read_exact_at(fd_, header, kHeaderSize, offset)) break;
    const std::uint8_t op = header[0];
    const std::uint8_t key_len = header[1];
    const std::uint32_t val_len = get_be32(header + 2);
    if ((op != kOpPut && op != kOpErase) || key_len != Address::size()) break;
    if (op == kOpErase && val_len != 0) break;
    const std::uint64_t body = static_cast<std::uint64_t>(key_len) + val_len;
    if (offset + kHeaderSize + body + kCrcSize > file_size) break;  // torn

    scratch.resize(kHeaderSize + body + kCrcSize);
    if (!read_exact_at(fd_, scratch.data(), scratch.size(), offset)) break;
    const std::uint32_t stored =
        get_be32(scratch.data() + kHeaderSize + body);
    const std::uint32_t computed =
        crc32(BytesView{scratch.data(), kHeaderSize + body});
    if (stored != computed) break;

    const Address key{BytesView{scratch.data() + kHeaderSize, key_len}};
    if (op == kOpPut) {
      offsets_[key] = Entry{offset + kHeaderSize + key_len, val_len};
    } else {
      offsets_.erase(key);
    }
    offset += kHeaderSize + body + kCrcSize;
  }

  if (offset < file_size) {
    // Torn or corrupt suffix: drop it so future appends extend a valid log.
    stats_.torn_bytes_dropped += file_size - offset;
    SRBB_CHECK(::ftruncate(fd_, static_cast<off_t>(offset)) == 0);
  }
  append_offset_ = offset;
  stats_.records_recovered = offsets_.size();
}

void LogBackend::append_record(std::uint8_t op, const Address& key,
                               BytesView value) {
  SRBB_CHECK(value.size() <= 0xFFFFFFFFull);
  Bytes frame;
  frame.reserve(kHeaderSize + key.size() + value.size() + kCrcSize);
  frame.push_back(op);
  frame.push_back(static_cast<std::uint8_t>(Address::size()));
  std::uint8_t len_be[4];
  put_be32(len_be, static_cast<std::uint32_t>(value.size()));
  append(frame, BytesView{len_be, 4});
  append(frame, key.view());
  append(frame, value);
  std::uint8_t crc_be[4];
  put_be32(crc_be, crc32(frame));
  append(frame, BytesView{crc_be, 4});

  SRBB_CHECK(::lseek(fd_, static_cast<off_t>(append_offset_), SEEK_SET) >= 0);
  write_all(fd_, frame.data(), frame.size());
  if (op == kOpPut) {
    offsets_[key] = Entry{
        append_offset_ + kHeaderSize + Address::size(),
        static_cast<std::uint32_t>(value.size())};
  } else {
    offsets_.erase(key);
  }
  append_offset_ += frame.size();
  ++stats_.records_appended;
}

std::optional<Bytes> LogBackend::get(const Address& key) const {
  const auto it = offsets_.find(key);
  if (it == offsets_.end()) return std::nullopt;
  Bytes value(it->second.length);
  if (!value.empty()) {
    const bool ok =
        read_exact_at(fd_, value.data(), value.size(), it->second.offset);
    SRBB_CHECK(ok);  // index points into the validated prefix
  }
  return value;
}

void LogBackend::put(const Address& key, BytesView value) {
  append_record(kOpPut, key, value);
}

void LogBackend::erase(const Address& key) {
  if (!offsets_.contains(key)) return;  // no tombstone for a key never written
  append_record(kOpErase, key, BytesView{});
}

std::vector<Address> LogBackend::keys() const {
  std::vector<Address> out;
  out.reserve(offsets_.size());
  for (const auto& [key, entry] : offsets_) out.push_back(key);
  return out;
}

void LogBackend::flush() {
  if (options_.fsync_on_flush) SRBB_CHECK(::fsync(fd_) == 0);
}

void LogBackend::compact() {
  const std::string tmp_path = path_ + ".compact";
  ::unlink(tmp_path.c_str());  // stale temp from an interrupted compact
  {
    LogBackend tmp{tmp_path};
    for (const auto& [key, entry] : offsets_) {
      const std::optional<Bytes> value = get(key);
      SRBB_CHECK(value.has_value());
      tmp.put(key, *value);
    }
    SRBB_CHECK(::fsync(tmp.fd_) == 0);
  }
  SRBB_CHECK(::rename(tmp_path.c_str(), path_.c_str()) == 0);
  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_RDWR | O_CLOEXEC);
  SRBB_CHECK(fd_ >= 0);
  const Stats kept = stats_;
  offsets_.clear();
  append_offset_ = 0;
  recover();
  stats_ = kept;
  ++stats_.compactions;
}

}  // namespace srbb::state
