// Flat snapshot bookkeeping for StateDB's backend mode (docs/STATE.md).
//
// In backend mode the account map doubles as a bounded resident cache over
// the storage backend: reads hit the flat map in O(1) when the account is
// resident and fault the record in when it is not. FlatSnapshot tracks the
// bookkeeping around that cache — which addresses are resident, which are
// dirty (must be flushed at the next commit), and the deterministic FIFO
// order clean entries are evicted in once the cache exceeds its capacity.
// It never stores account data itself; StateDB's map stays the single store
// so the default (no-backend) configuration is untouched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"

namespace srbb::state {

class FlatSnapshot {
 public:
  /// Max clean resident entries kept after plan_eviction() (0 = unbounded).
  void set_capacity(std::size_t capacity) { capacity_ = capacity; }
  std::size_t capacity() const { return capacity_; }

  // --- residency ---
  /// An account entered the resident map (created, restored, or faulted in).
  void note_resident(const Address& addr);
  /// An account left the resident map (deleted or evicted by the caller).
  void note_erased(const Address& addr);
  bool resident(const Address& addr) const { return resident_.contains(addr); }
  std::size_t resident_count() const { return resident_.size(); }

  // --- dirty tracking ---
  /// The account's record changed since the last flush; it must be written
  /// to the backend at the next commit and is exempt from eviction.
  void mark_dirty(const Address& addr) { dirty_.insert(addr); }
  bool dirty(const Address& addr) const { return dirty_.contains(addr); }
  std::size_t dirty_count() const { return dirty_.size(); }
  /// Drain the dirty set in ascending address order (flush iteration must be
  /// deterministic — the backend's record sequence is replayed on reopen).
  std::vector<Address> take_dirty_sorted();

  // --- eviction ---
  /// Addresses to drop from the resident map to get back under capacity:
  /// clean entries in first-became-resident order. The returned addresses
  /// are already removed from the resident set here; the caller erases the
  /// map entries. Dirty entries are skipped (and keep their queue slot).
  std::vector<Address> plan_eviction();

 private:
  std::size_t capacity_ = 0;
  std::unordered_set<Address, AddressHasher> resident_;
  std::unordered_set<Address, AddressHasher> dirty_;
  // Residency order; may hold stale (no longer resident) entries, which
  // plan_eviction() skips lazily.
  std::deque<Address> fifo_;
};

}  // namespace srbb::state
