// Append-only log-structured storage backend (docs/STATE.md "Log backend").
//
// Every put/erase appends one CRC-framed record to a single log file:
//
//   u8  op        0 = put, 1 = erase
//   u8  key_len   address width (20)
//   u32 val_len   big-endian value length (0 for erase)
//   key bytes
//   value bytes
//   u32 crc       big-endian CRC-32 over everything above
//
// The in-memory index maps address → (file offset, length) of the newest
// value, so get() is one positioned read and memory stays O(accounts), not
// O(state bytes). Reopening replays the log and truncates the first torn or
// corrupt frame and everything after it — a crash mid-append loses at most
// the unfinished suffix, never committed history (crash-safe prefix
// property; fuzzed in fuzz/fuzz_state_backend.cpp). compact() rewrites only
// live records through an atomic rename, reclaiming superseded versions.
#pragma once

#include <cstdint>
#include <map>

#include "state/backend.hpp"

namespace srbb::state {

class LogBackend final : public StorageBackend {
 public:
  struct Options {
    /// fsync the log on flush() (durability against power loss, not just
    /// process crash). Off by default: benchmarks measure the stack, not the
    /// disk.
    bool fsync_on_flush = false;
  };

  /// Opens (creating if absent) and recovers the log at `path`.
  explicit LogBackend(std::string path);
  LogBackend(std::string path, Options options);
  ~LogBackend() override;

  LogBackend(const LogBackend&) = delete;
  LogBackend& operator=(const LogBackend&) = delete;

  std::optional<Bytes> get(const Address& key) const override;
  void put(const Address& key, BytesView value) override;
  void erase(const Address& key) override;
  std::vector<Address> keys() const override;
  std::size_t size() const override { return offsets_.size(); }
  void flush() override;
  std::string name() const override { return "log"; }

  /// Rewrite the log with only the newest record per live key (atomic
  /// replace via rename). Reclaims space from superseded versions.
  void compact();

  struct Stats {
    std::uint64_t records_appended = 0;
    std::uint64_t records_recovered = 0;  // live records found at open
    std::uint64_t torn_bytes_dropped = 0; // corrupt/torn suffix truncated
    std::uint64_t compactions = 0;
  };
  const Stats& stats() const { return stats_; }
  /// Current log file size in bytes (live + superseded records).
  std::uint64_t file_bytes() const { return append_offset_; }

 private:
  struct Entry {
    std::uint64_t offset = 0;  // of the value bytes within the file
    std::uint32_t length = 0;
  };

  void recover();
  void append_record(std::uint8_t op, const Address& key, BytesView value);

  std::string path_;
  Options options_;
  int fd_ = -1;
  std::uint64_t append_offset_ = 0;
  // Sorted index: keys() is deterministic by construction.
  std::map<Address, Entry> offsets_;
  Stats stats_;
};

}  // namespace srbb::state
