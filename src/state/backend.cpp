#include "state/backend.hpp"

#include <algorithm>

#include "codec/rlp.hpp"
#include "crypto/keccak.hpp"

namespace srbb::state {

// --- MemoryBackend ----------------------------------------------------------

std::optional<Bytes> MemoryBackend::get(const Address& key) const {
  const auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

void MemoryBackend::put(const Address& key, BytesView value) {
  records_[key] = Bytes{value.begin(), value.end()};
}

void MemoryBackend::erase(const Address& key) { records_.erase(key); }

std::vector<Address> MemoryBackend::keys() const {
  std::vector<Address> out;
  out.reserve(records_.size());
  for (const auto& [key, value] : records_) out.push_back(key);
  return out;
}

// --- account record codec ---------------------------------------------------

Bytes encode_account_record(const Account& account) {
  std::vector<Hash32> slots;
  slots.reserve(account.storage.size());
  for (const auto& [slot, value] : account.storage) slots.push_back(slot);
  std::sort(slots.begin(), slots.end());

  rlp::ListBuilder storage_list;
  for (const Hash32& slot : slots) {
    rlp::ListBuilder entry;
    entry.add_bytes(slot.view());
    entry.add_u256(account.storage.at(slot));
    storage_list.add_raw(entry.build());
  }

  rlp::ListBuilder record;
  record.add_u64(account.nonce);
  record.add_u256(account.balance);
  record.add_bytes(account.code);
  record.add_raw(storage_list.build());
  return record.build();
}

std::optional<Account> decode_account_record(BytesView record) {
  const Result<rlp::Item> doc = rlp::decode(record);
  if (!doc.is_ok()) return std::nullopt;
  const rlp::Item& top = doc.value();
  if (!top.is_list || top.items.size() != 4) return std::nullopt;

  Account account;
  const Result<std::uint64_t> nonce = top.items[0].as_u64();
  if (!nonce.is_ok()) return std::nullopt;
  account.nonce = nonce.value();
  const Result<U256> balance = top.items[1].as_u256();
  if (!balance.is_ok()) return std::nullopt;
  account.balance = balance.value();
  if (top.items[2].is_list) return std::nullopt;
  account.code = top.items[2].payload;
  account.code_keccak =
      account.code.empty() ? Hash32{} : crypto::Keccak256::hash(account.code);

  const rlp::Item& storage = top.items[3];
  if (!storage.is_list) return std::nullopt;
  Hash32 prev_slot;
  bool first = true;
  for (const rlp::Item& entry : storage.items) {
    if (!entry.is_list || entry.items.size() != 2) return std::nullopt;
    const rlp::Item& slot_item = entry.items[0];
    if (slot_item.is_list || slot_item.payload.size() != Hash32::size()) {
      return std::nullopt;
    }
    const Hash32 slot{BytesView{slot_item.payload}};
    // Canonical records are strictly slot-ascending; reject duplicates and
    // reordered slots so record bytes stay a bijection with accounts.
    if (!first && !(prev_slot < slot)) return std::nullopt;
    first = false;
    prev_slot = slot;
    const Result<U256> value = entry.items[1].as_u256();
    if (!value.is_ok()) return std::nullopt;
    // EVM zero-write semantics: a zero-valued slot never appears in the map.
    if (value.value().is_zero()) return std::nullopt;
    account.storage.emplace(slot, value.value());
  }
  return account;
}

// --- crc32 ------------------------------------------------------------------

std::uint32_t crc32(BytesView data) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace srbb::state
