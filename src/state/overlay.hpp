// Speculative copy-on-write view over a StateDB for optimistic parallel
// execution (Block-STM / Reddio style, see DESIGN.md "Parallel execution").
//
// An OverlayState wraps an immutable base StateDB. Every read that falls
// through to the base is recorded in a value-based read-set; every write is
// buffered in a per-account overlay entry and never touches the base. After
// speculation, the commit pass calls validate() — re-reading each recorded
// key from the (by then possibly advanced) base and comparing values — and,
// on success, apply_to() replays the buffered write-set through the base's
// journaled API. If every observed value still matches, the speculative
// execution is bit-identical to a sequential execution at the commit point,
// which is the determinism argument for the parallel executor.
//
// The overlay carries its own journal so the EVM's snapshot()/revert_to()
// call-frame semantics work unchanged during speculation. Read records are
// deliberately NOT rolled back on revert: reads made inside a reverted frame
// still influenced control flow, so they must stay in the conflict set.
//
// Thread model: many OverlayStates may read one base StateDB concurrently,
// as long as nothing mutates the base meanwhile. validate()/apply_to() are
// called from a single commit thread.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/u256.hpp"
#include "state/statedb.hpp"

namespace srbb::state {

/// Conflict granularity for access sets: one scalar account field, or one
/// storage slot. Field-level keys keep e.g. a code read of a contract from
/// conflicting with a balance write to the same account.
enum class AccessField : std::uint8_t {
  kExists = 0,
  kBalance,
  kNonce,
  kCode,
  kStorage,
};

struct AccessKey {
  Address addr;
  AccessField field = AccessField::kExists;
  Hash32 slot;  // meaningful only when field == kStorage

  static AccessKey account(const Address& a, AccessField f) {
    return AccessKey{a, f, Hash32{}};
  }
  static AccessKey storage_slot(const Address& a, const Hash32& s) {
    return AccessKey{a, AccessField::kStorage, s};
  }

  friend bool operator==(const AccessKey&, const AccessKey&) = default;
  friend auto operator<=>(const AccessKey&, const AccessKey&) = default;
};

/// Sorted, deduplicated set of AccessKeys — the exchange format between the
/// overlay's observed accesses and the scheduler's predicted rw-sets.
struct AccessSet {
  std::vector<AccessKey> keys;

  void insert(const AccessKey& k);
  bool contains(const AccessKey& k) const;
  /// True when the two sorted sets share at least one key.
  bool intersects(const AccessSet& other) const;
  /// True when every key of `other` is in this set (predicted ⊇ observed).
  bool contains_all(const AccessSet& other) const;
  bool empty() const { return keys.empty(); }
  std::size_t size() const { return keys.size(); }
};

class OverlayState final : public StateView {
 public:
  explicit OverlayState(const StateDB& base) : base_(base) {}

  // --- Reads (base fall-through recorded in the read-set) ---
  bool account_exists(const Address& addr) const override;
  U256 balance(const Address& addr) const override;
  std::uint64_t nonce(const Address& addr) const override;
  const Bytes& code(const Address& addr) const override;
  Hash32 code_hash(const Address& addr) const override;
  Hash32 code_keccak(const Address& addr) const override;
  U256 storage(const Address& addr, const Hash32& key) const override;
  /// Forwarded to the base: faulting the record in is a cache effect, not a
  /// state read, so it does not enter the read-set.
  void prefetch(const Address& addr) const override { base_.prefetch(addr); }

  // --- Writes (buffered, journaled locally) ---
  void create_account(const Address& addr) override;
  void set_balance(const Address& addr, const U256& value) override;
  void add_balance(const Address& addr, const U256& delta) override;
  bool sub_balance(const Address& addr, const U256& delta) override;
  void set_nonce(const Address& addr, std::uint64_t nonce) override;
  void increment_nonce(const Address& addr) override;
  void set_code(const Address& addr, Bytes code) override;
  void set_storage(const Address& addr, const Hash32& key,
                   const U256& value) override;
  void delete_account(const Address& addr) override;

  // --- Journal control (local to the overlay) ---
  Snapshot snapshot() const override { return journal_.size(); }
  void revert_to(Snapshot snapshot) override;

  // --- Optimistic-concurrency protocol ---
  /// Re-read every recorded base read from `base` and compare with the value
  /// observed during speculation. True == the speculative execution is
  /// exactly what a sequential execution would produce right now.
  bool validate(const StateDB& base) const;
  /// Replay the buffered write-set onto `base` (which must be the base this
  /// overlay was built over, possibly advanced by already-committed
  /// transactions). Only meaningful after validate() returned true.
  void apply_to(StateDB& base) const;

  /// Number of distinct base reads recorded (exists/balance/nonce/code plus
  /// storage slots) — stats and tests.
  std::size_t read_set_size() const;
  /// Every base read this overlay recorded, as field-granular keys — what
  /// the scheduler's runtime guard compares against the predicted read-set.
  AccessSet observed_reads() const;
  /// Every buffered write, as field-granular keys. A masking entry (fresh
  /// create or tombstone) counts as a write to all scalar fields; buffered
  /// storage slots are listed individually.
  AccessSet observed_writes() const;
  /// True if the transaction buffered no writes (e.g. it was invalid).
  bool write_set_empty() const { return entries_.empty(); }

 private:
  // Buffered writes for one account. `masks_base` means the base account is
  // invisible (deleted, or created fresh over a non-existent base account);
  // unset optional fields fall through to the base (or to defaults when the
  // base is masked).
  struct OverlayAccount {
    bool masks_base = false;
    bool exists = true;  // only meaningful when masks_base (tombstone if false)
    std::optional<U256> balance;
    std::optional<std::uint64_t> nonce;
    std::optional<Bytes> code;
    // nullopt value == slot erased (EVM zero-write semantics).
    std::unordered_map<Hash32, std::optional<U256>, Hash32Hasher> storage;
  };

  enum class Op : std::uint8_t {
    kCreateEntry,  // undo: erase the whole overlay entry
    kBalance,      // undo: restore prev_balance
    kNonce,        // undo: restore prev_nonce
    kCode,         // undo: restore prev_code
    kStorage,      // undo: restore prev_slot (or erase)
    kWhole,        // undo: restore the whole entry (delete/recreate paths)
  };

  struct JournalEntry {
    Op op;
    Address addr;
    Hash32 key;  // kStorage
    std::optional<U256> prev_balance;
    std::optional<std::uint64_t> prev_nonce;
    std::optional<Bytes> prev_code;
    bool slot_was_buffered = false;        // kStorage: key present in overlay
    std::optional<U256> prev_slot;         // kStorage: buffered value
    std::optional<OverlayAccount> prev_whole;  // kWhole
  };

  const OverlayAccount* find(const Address& addr) const;
  /// Overlay entry for a write; consults (and records) base existence on
  /// first touch and resurrects tombstones, mirroring
  /// StateDB::mutable_account.
  OverlayAccount& touch(const Address& addr);
  bool record_exists(const Address& addr) const;

  const StateDB& base_;
  std::unordered_map<Address, OverlayAccount, AddressHasher> entries_;
  std::vector<JournalEntry> journal_;

  // Value-based read-set, deduplicated per key: the first observation wins
  // (the base is stable during speculation, so later ones are identical).
  // Mutable because reads are const on the StateView interface.
  mutable std::unordered_map<Address, bool, AddressHasher> exists_reads_;
  mutable std::unordered_map<Address, U256, AddressHasher> balance_reads_;
  mutable std::unordered_map<Address, std::uint64_t, AddressHasher>
      nonce_reads_;
  mutable std::unordered_map<Address, Bytes, AddressHasher> code_reads_;
  mutable std::unordered_map<Address,
                             std::unordered_map<Hash32, U256, Hash32Hasher>,
                             AddressHasher>
      storage_reads_;
};

}  // namespace srbb::state
