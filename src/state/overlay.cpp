#include "state/overlay.hpp"

#include <algorithm>

#include "common/invariant.hpp"
#include "crypto/keccak.hpp"
#include "crypto/sha256.hpp"

namespace srbb::state {

namespace {
const Bytes kEmptyCode;
}

void AccessSet::insert(const AccessKey& k) {
  const auto it = std::lower_bound(keys.begin(), keys.end(), k);
  if (it != keys.end() && *it == k) return;
  keys.insert(it, k);
}

bool AccessSet::contains(const AccessKey& k) const {
  return std::binary_search(keys.begin(), keys.end(), k);
}

bool AccessSet::intersects(const AccessSet& other) const {
  auto a = keys.begin();
  auto b = other.keys.begin();
  while (a != keys.end() && b != other.keys.end()) {
    if (*a == *b) return true;
    if (*a < *b) {
      ++a;
    } else {
      ++b;
    }
  }
  return false;
}

bool AccessSet::contains_all(const AccessSet& other) const {
  return std::includes(keys.begin(), keys.end(), other.keys.begin(),
                       other.keys.end());
}

const OverlayState::OverlayAccount* OverlayState::find(
    const Address& addr) const {
  const auto it = entries_.find(addr);
  return it == entries_.end() ? nullptr : &it->second;
}

bool OverlayState::record_exists(const Address& addr) const {
  const bool exists = base_.account_exists(addr);
  exists_reads_.try_emplace(addr, exists);
  return exists;
}

bool OverlayState::account_exists(const Address& addr) const {
  if (const OverlayAccount* acc = find(addr)) {
    return acc->masks_base ? acc->exists : true;
  }
  return record_exists(addr);
}

U256 OverlayState::balance(const Address& addr) const {
  if (const OverlayAccount* acc = find(addr)) {
    if (acc->balance) return *acc->balance;
    if (acc->masks_base) return U256::zero();
  }
  const U256 value = base_.balance(addr);
  balance_reads_.try_emplace(addr, value);
  return value;
}

std::uint64_t OverlayState::nonce(const Address& addr) const {
  if (const OverlayAccount* acc = find(addr)) {
    if (acc->nonce) return *acc->nonce;
    if (acc->masks_base) return 0;
  }
  const std::uint64_t value = base_.nonce(addr);
  nonce_reads_.try_emplace(addr, value);
  return value;
}

const Bytes& OverlayState::code(const Address& addr) const {
  if (const OverlayAccount* acc = find(addr)) {
    if (acc->code) return *acc->code;
    if (acc->masks_base) return kEmptyCode;
  }
  const Bytes& value = base_.code(addr);
  code_reads_.try_emplace(addr, value);
  return value;
}

Hash32 OverlayState::code_hash(const Address& addr) const {
  return crypto::Sha256::hash(code(addr));
}

Hash32 OverlayState::code_keccak(const Address& addr) const {
  // Route through code() so the read lands in the read-set even when the
  // hash itself comes from the base's memo.
  const Bytes& c = code(addr);
  if (c.empty()) return empty_code_keccak();
  const OverlayAccount* acc = find(addr);
  if (acc != nullptr && acc->code) return crypto::Keccak256::hash(c);
  return base_.code_keccak(addr);
}

U256 OverlayState::storage(const Address& addr, const Hash32& key) const {
  if (const OverlayAccount* acc = find(addr)) {
    const auto it = acc->storage.find(key);
    if (it != acc->storage.end()) {
      return it->second ? *it->second : U256::zero();
    }
    if (acc->masks_base) return U256::zero();
  }
  const U256 value = base_.storage(addr, key);
  storage_reads_[addr].try_emplace(key, value);
  return value;
}

OverlayState::OverlayAccount& OverlayState::touch(const Address& addr) {
  auto it = entries_.find(addr);
  if (it == entries_.end()) {
    // The fresh-vs-existing decision depends on base state, so it is a read.
    const bool base_exists = record_exists(addr);
    journal_.push_back(JournalEntry{.op = Op::kCreateEntry, .addr = addr});
    it = entries_.emplace(addr, OverlayAccount{}).first;
    if (!base_exists) it->second.masks_base = true;
    return it->second;
  }
  OverlayAccount& acc = it->second;
  if (acc.masks_base && !acc.exists) {
    // Writing to a locally deleted account resurrects it empty, mirroring
    // StateDB::mutable_account after delete_account.
    JournalEntry entry{.op = Op::kWhole, .addr = addr};
    entry.prev_whole = acc;
    journal_.push_back(std::move(entry));
    acc = OverlayAccount{};
    acc.masks_base = true;
  }
  return acc;
}

void OverlayState::create_account(const Address& addr) { touch(addr); }

void OverlayState::set_balance(const Address& addr, const U256& value) {
  OverlayAccount& acc = touch(addr);
  journal_.push_back(JournalEntry{
      .op = Op::kBalance, .addr = addr, .prev_balance = acc.balance});
  acc.balance = value;
}

void OverlayState::add_balance(const Address& addr, const U256& delta) {
  set_balance(addr, balance(addr) + delta);
}

bool OverlayState::sub_balance(const Address& addr, const U256& delta) {
  const U256 current = balance(addr);
  if (current < delta) return false;
  set_balance(addr, current - delta);
  return true;
}

void OverlayState::set_nonce(const Address& addr, std::uint64_t nonce) {
  OverlayAccount& acc = touch(addr);
  journal_.push_back(
      JournalEntry{.op = Op::kNonce, .addr = addr, .prev_nonce = acc.nonce});
  acc.nonce = nonce;
}

void OverlayState::increment_nonce(const Address& addr) {
  set_nonce(addr, nonce(addr) + 1);
}

void OverlayState::set_code(const Address& addr, Bytes code) {
  OverlayAccount& acc = touch(addr);
  JournalEntry entry{.op = Op::kCode, .addr = addr};
  entry.prev_code = std::move(acc.code);
  journal_.push_back(std::move(entry));
  acc.code = std::move(code);
}

void OverlayState::set_storage(const Address& addr, const Hash32& key,
                               const U256& value) {
  OverlayAccount& acc = touch(addr);
  const auto it = acc.storage.find(key);
  JournalEntry entry{.op = Op::kStorage, .addr = addr, .key = key};
  entry.slot_was_buffered = it != acc.storage.end();
  if (entry.slot_was_buffered) entry.prev_slot = it->second;
  journal_.push_back(std::move(entry));
  if (value.is_zero()) {
    acc.storage[key] = std::nullopt;  // erase marker (EVM zero-write)
  } else {
    acc.storage[key] = value;
  }
}

void OverlayState::delete_account(const Address& addr) {
  if (!account_exists(addr)) return;  // mirrors StateDB::delete_account
  auto it = entries_.find(addr);
  if (it == entries_.end()) {
    journal_.push_back(JournalEntry{.op = Op::kCreateEntry, .addr = addr});
    it = entries_.emplace(addr, OverlayAccount{}).first;
  } else {
    JournalEntry entry{.op = Op::kWhole, .addr = addr};
    entry.prev_whole = it->second;
    journal_.push_back(std::move(entry));
  }
  it->second = OverlayAccount{};
  it->second.masks_base = true;
  it->second.exists = false;
}

void OverlayState::revert_to(Snapshot snapshot) {
  SRBB_CHECK(snapshot <= journal_.size());
  while (journal_.size() > snapshot) {
    JournalEntry& entry = journal_.back();
    const auto it = entries_.find(entry.addr);
    // Every undo except entry creation dereferences the overlay entry the
    // journal recorded the write against; a miss means journal/entry
    // bookkeeping diverged and the deref below would be undefined behaviour.
    SRBB_CHECK(entry.op == Op::kCreateEntry || it != entries_.end());
    switch (entry.op) {
      case Op::kCreateEntry:
        entries_.erase(entry.addr);
        break;
      case Op::kBalance:
        it->second.balance = entry.prev_balance;
        break;
      case Op::kNonce:
        it->second.nonce = entry.prev_nonce;
        break;
      case Op::kCode:
        it->second.code = std::move(entry.prev_code);
        break;
      case Op::kStorage:
        if (entry.slot_was_buffered) {
          it->second.storage[entry.key] = entry.prev_slot;
        } else {
          it->second.storage.erase(entry.key);
        }
        break;
      case Op::kWhole:
        it->second = std::move(*entry.prev_whole);
        break;
    }
    journal_.pop_back();
  }
}

bool OverlayState::validate(const StateDB& base) const {
  for (const auto& [addr, exists] : exists_reads_) {
    if (base.account_exists(addr) != exists) return false;
  }
  for (const auto& [addr, value] : balance_reads_) {
    if (base.balance(addr) != value) return false;
  }
  for (const auto& [addr, value] : nonce_reads_) {
    if (base.nonce(addr) != value) return false;
  }
  for (const auto& [addr, value] : code_reads_) {
    if (base.code(addr) != value) return false;
  }
  for (const auto& [addr, slots] : storage_reads_) {
    for (const auto& [key, value] : slots) {
      if (base.storage(addr, key) != value) return false;
    }
  }
  return true;
}

void OverlayState::apply_to(StateDB& base) const {
  // apply_to is only meaningful for an overlay whose read-set still matches
  // the base; committing a stale overlay silently diverges the replica.
  SRBB_PARANOID(validate(base));
  // Replay in address order (and storage in key order) so the base's journal
  // and account-creation sequence are canonical rather than hash-map
  // iteration order; the commit path stays bitwise-replayable.
  std::vector<Address> addresses;
  addresses.reserve(entries_.size());
  for (const auto& [addr, acc] : entries_) addresses.push_back(addr);
  std::sort(addresses.begin(), addresses.end());
  for (const Address& addr : addresses) {
    const OverlayAccount& acc = entries_.at(addr);
    if (acc.masks_base) {
      base.delete_account(addr);  // no-op when the base never had it
      if (!acc.exists) continue;  // tombstone: deletion was the write
      base.create_account(addr);
    }
    if (acc.balance) base.set_balance(addr, *acc.balance);
    if (acc.nonce) base.set_nonce(addr, *acc.nonce);
    if (acc.code) base.set_code(addr, *acc.code);
    std::vector<Hash32> keys;
    keys.reserve(acc.storage.size());
    for (const auto& [key, value] : acc.storage) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (const Hash32& key : keys) {
      const std::optional<U256>& value = acc.storage.at(key);
      base.set_storage(addr, key, value ? *value : U256::zero());
    }
  }
}

AccessSet OverlayState::observed_reads() const {
  AccessSet out;
  for (const auto& [addr, v] : exists_reads_) {
    out.insert(AccessKey::account(addr, AccessField::kExists));
  }
  for (const auto& [addr, v] : balance_reads_) {
    out.insert(AccessKey::account(addr, AccessField::kBalance));
  }
  for (const auto& [addr, v] : nonce_reads_) {
    out.insert(AccessKey::account(addr, AccessField::kNonce));
  }
  for (const auto& [addr, v] : code_reads_) {
    out.insert(AccessKey::account(addr, AccessField::kCode));
  }
  for (const auto& [addr, slots] : storage_reads_) {
    for (const auto& [key, v] : slots) {
      out.insert(AccessKey::storage_slot(addr, key));
    }
  }
  return out;
}

AccessSet OverlayState::observed_writes() const {
  AccessSet out;
  for (const auto& [addr, acc] : entries_) {
    if (acc.masks_base) {
      // Fresh create or tombstone: existence changed and every scalar field
      // was (re)defined relative to the base.
      out.insert(AccessKey::account(addr, AccessField::kExists));
      out.insert(AccessKey::account(addr, AccessField::kBalance));
      out.insert(AccessKey::account(addr, AccessField::kNonce));
      out.insert(AccessKey::account(addr, AccessField::kCode));
    }
    if (acc.balance) out.insert(AccessKey::account(addr, AccessField::kBalance));
    if (acc.nonce) out.insert(AccessKey::account(addr, AccessField::kNonce));
    if (acc.code) out.insert(AccessKey::account(addr, AccessField::kCode));
    for (const auto& [key, v] : acc.storage) {
      out.insert(AccessKey::storage_slot(addr, key));
    }
  }
  return out;
}

std::size_t OverlayState::read_set_size() const {
  std::size_t n = exists_reads_.size() + balance_reads_.size() +
                  nonce_reads_.size() + code_reads_.size();
  for (const auto& [addr, slots] : storage_reads_) n += slots.size();
  return n;
}

}  // namespace srbb::state
