// Incremental Ethereum-shaped state commitment (docs/STATE.md).
//
// The commitment is a Merkle Patricia Trie over accounts — each leaf
// rlp([nonce, balance, storage_root, keccak(code)]) with a nested storage
// trie per contract — exactly the shape StateDB::state_root_mpt() has always
// produced, but maintained incrementally: StateDB feeds the set of accounts
// (and storage slots) dirtied since the last root, and only those leaves and
// storage sub-tries are re-synced. Combined with the per-node hash memos
// inside MerklePatriciaTrie, a root after k account mutations costs
// O(k * depth) node hashes instead of a full O(n) rebuild.
//
// Memory is bounded on two axes: the account trie's memo pool via
// StateConfig::trie_node_cache_limit, and the number of *materialized*
// per-account storage tries via StateConfig::storage_trie_cache (LRU; an
// evicted account keeps only its memoized storage-root hash, and the next
// write to its storage rebuilds the trie from the flat state).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>

#include "common/bytes.hpp"
#include "state/account.hpp"
#include "state/trie.hpp"

namespace srbb::state {

/// What StateDB knows about an account's storage since the last sync.
struct DirtyInfo {
  /// Storage may have changed in unknown ways (e.g. a reverted
  /// SELFDESTRUCT restored the whole account) — rebuild the storage trie.
  bool full_storage = false;
  /// Slots that may have changed (sorted: sync order is deterministic).
  std::set<Hash32> slots;
};

/// rlp([nonce, balance, storage_root, keccak(code)]) — the account leaf.
Bytes encode_account_leaf(const Account& account, const Hash32& storage_root);
/// From-scratch storage-trie root over an account's flat storage map.
Hash32 storage_trie_root(const Account& account);

class IncrementalStateTrie {
 public:
  /// `storage_trie_cache`: max materialized storage tries (0 = unbounded).
  /// `node_cache_limit`: account-trie memo bound (0 = unbounded).
  void configure(std::size_t storage_trie_cache, std::size_t node_cache_limit);

  /// Sync one dirty account into the commitment; `account == nullptr` means
  /// the account no longer exists.
  void update(const Address& addr, const Account* account,
              const DirtyInfo& dirty);

  /// Root over everything synced so far (incremental; see trie.hpp).
  Hash32 root_hash() { return account_trie_.root_hash(); }

  struct Stats {
    std::uint64_t leaf_updates = 0;
    std::uint64_t storage_trie_rebuilds = 0;   // built from flat storage
    std::uint64_t storage_trie_evictions = 0;  // LRU drops (memo kept)
    std::uint64_t storage_root_memo_hits = 0;  // root served without a trie
  };
  const Stats& stats() const { return stats_; }
  const MerklePatriciaTrie::CacheStats& node_cache_stats() const {
    return account_trie_.cache_stats();
  }
  std::size_t materialized_storage_tries() const {
    return storage_tries_.size();
  }

 private:
  Hash32 storage_root_for(const Address& addr, const Account& account,
                          const DirtyInfo& dirty);
  void drop_storage_trie(const Address& addr);
  void touch(const Address& addr);
  void evict_storage_tries();

  MerklePatriciaTrie account_trie_;
  std::size_t storage_cache_ = 0;

  struct StorageEntry {
    MerklePatriciaTrie trie;
    std::uint64_t tick = 0;
  };
  std::unordered_map<Address, StorageEntry, AddressHasher> storage_tries_;
  /// tick → address, oldest first: deterministic LRU eviction order (ticks
  /// are assigned in sync order, which callers keep deterministic).
  std::map<std::uint64_t, Address> lru_;
  std::uint64_t tick_ = 0;
  /// Last computed storage root per account with storage — lets a leaf
  /// update (nonce/balance/code only) skip the storage trie entirely.
  std::unordered_map<Address, Hash32, AddressHasher> storage_roots_;
  Stats stats_;
};

}  // namespace srbb::state
