// Account model: externally owned accounts (balance + nonce) and contract
// accounts (code + storage), matching the Ethereum world-state shape the
// SRBB VM replicates.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/u256.hpp"

namespace srbb::state {

struct Account {
  std::uint64_t nonce = 0;
  U256 balance;
  Bytes code;
  /// keccak256(code), maintained by StateDB::set_code (and recomputed on
  /// journal revert) so hot-path consumers — the analysis cache keys every
  /// call frame by it — get an O(1) lookup instead of rehashing the code.
  /// Zero for code-less accounts; StateDB::code_keccak substitutes the
  /// canonical empty-code hash on read.
  Hash32 code_keccak;
  std::unordered_map<Hash32, U256, Hash32Hasher> storage;

  bool is_contract() const { return !code.empty(); }
  bool is_empty() const {
    return nonce == 0 && balance.is_zero() && code.empty() && storage.empty();
  }
};

}  // namespace srbb::state
