// Tuning knobs for the authenticated state stack (docs/STATE.md). Every
// default reproduces the seed StateDB behaviour bit-for-bit: fully resident
// accounts, no backend, a state root computed at every commit point. The
// knobs exist so benchmarks and large-scale runs can opt into the layered
// stack (flat snapshot cache over a storage backend, deferred roots) without
// changing what any default-configured replica observes.
#pragma once

#include <cstddef>
#include <cstdint>

namespace srbb::state {

struct StateConfig {
  // --- deferred root computation (Reddio-style, off the commit path) ---
  /// When true, the execution oracle publishes a recomputed state root only
  /// every `root_interval` superblock indices; in between it republishes the
  /// last computed root. Deterministic across replicas as long as they share
  /// the config (the root is a pure function of (state, index)). Default off:
  /// every commit point carries a fresh root, exactly the seed behaviour.
  bool defer_root = false;
  /// Interval (in superblock indices) between root recomputations when
  /// defer_root is on. Index 0 always computes.
  std::uint64_t root_interval = 8;

  // --- flat snapshot layer (meaningful only with a storage backend) ---
  /// Max resident accounts kept in the flat snapshot cache after a commit
  /// (0 = unbounded). Dirty (uncommitted) entries are never evicted;
  /// eviction is deterministic FIFO over clean entries.
  std::size_t snapshot_capacity = 0;

  // --- incremental trie commitment ---
  /// Bound on memoized trie-node references in the account trie
  /// (0 = unbounded; see MerklePatriciaTrie::set_node_cache_limit).
  std::size_t trie_node_cache_limit = 0;
  /// Max per-account storage tries kept materialized for incremental
  /// updates (0 = unbounded). Evicted accounts keep only their storage-root
  /// hash; the next write to one rebuilds its trie from the flat state.
  std::size_t storage_trie_cache = 0;
};

}  // namespace srbb::state
