#include "pool/txpool.hpp"

#include "common/invariant.hpp"

namespace srbb::pool {

void TxPool::set_observability(obs::TraceSink* trace,
                               obs::MetricsRegistry* metrics,
                               std::uint32_t node) {
  trace_ = trace;
  obs_node_ = node;
  if (metrics != nullptr) {
    ctr_admitted_ = &metrics->counter("pool.admitted");
    ctr_dropped_full_ = &metrics->counter("pool.dropped_full");
    ctr_dropped_expired_ = &metrics->counter("pool.dropped_expired");
    ctr_duplicates_ = &metrics->counter("pool.duplicates");
    hist_wait_ = &metrics->histogram("pool.wait");
  } else {
    ctr_admitted_ = nullptr;
    ctr_dropped_full_ = nullptr;
    ctr_dropped_expired_ = nullptr;
    ctr_duplicates_ = nullptr;
    hist_wait_ = nullptr;
  }
}

void TxPool::check_coherence() const {
  SRBB_CHECK(index_.size() == entries_.size());
#ifdef SRBB_PARANOID_CHECKS
  for (const Entry& entry : entries_) {
    SRBB_PARANOID(index_.contains(entry.tx->hash));
  }
#endif
}

TxPool::AddResult TxPool::add(txn::TxPtr tx, SimTime now) {
  if (index_.contains(tx->hash)) {
    if (ctr_duplicates_ != nullptr) ctr_duplicates_->inc();
    return AddResult::kDuplicate;
  }
  if (entries_.size() >= config_.capacity) {
    ++dropped_full_;
    if (ctr_dropped_full_ != nullptr) ctr_dropped_full_->inc();
    SRBB_TRACE(trace_, now, 0, obs_node_, "pool", "pool.drop_full", "tx",
               obs::trace_id(tx->hash));
    return AddResult::kFull;
  }
  SRBB_TRACE(trace_, now, 0, obs_node_, "pool", "pool.admit", "tx",
             obs::trace_id(tx->hash), "occupancy", entries_.size() + 1);
  index_.insert(tx->hash);
  entries_.push_back(Entry{std::move(tx), now});
  ++admitted_;
  if (ctr_admitted_ != nullptr) ctr_admitted_->inc();
  check_coherence();
  return AddResult::kAdded;
}

TxPool::AddBatchResult TxPool::add_batch(std::span<txn::TxPtr> txs,
                                         SimTime now) {
  AddBatchResult result;
  for (txn::TxPtr& tx : txs) {
    switch (add(std::move(tx), now)) {
      case AddResult::kAdded: ++result.added; break;
      case AddResult::kDuplicate: ++result.duplicates; break;
      case AddResult::kFull: ++result.dropped_full; break;
    }
  }
  return result;
}

std::vector<txn::TxPtr> TxPool::take_batch(std::size_t max_count,
                                           std::size_t max_bytes, SimTime now) {
  std::vector<txn::TxPtr> batch;
  std::size_t bytes = 0;
  while (!entries_.empty() && batch.size() < max_count) {
    Entry& front = entries_.front();
    if (expired(front, now)) {
      index_.erase(front.tx->hash);
      entries_.pop_front();
      ++dropped_expired_;
      if (ctr_dropped_expired_ != nullptr) ctr_dropped_expired_->inc();
      continue;
    }
    if (max_bytes != 0 && bytes + front.tx->size > max_bytes) break;
    bytes += front.tx->size;
    if (hist_wait_ != nullptr) hist_wait_->observe(now - front.added_at);
    index_.erase(front.tx->hash);
    batch.push_back(std::move(front.tx));
    entries_.pop_front();
  }
  if (!batch.empty()) {
    SRBB_TRACE(trace_, now, 0, obs_node_, "pool", "pool.take_batch", "txs",
               batch.size(), "bytes", bytes);
  }
  check_coherence();
  return batch;
}

void TxPool::remove_committed(const std::vector<Hash32>& committed) {
  if (entries_.empty() || committed.empty()) return;
  // One O(m) pass builds the pruning set (and drops the hashes from the
  // index as a side effect), then one O(n) in-place sweep over the deque:
  // O(n+m) total with a single hash lookup per element on either side.
  std::unordered_set<Hash32, Hash32Hasher> gone;
  gone.reserve(committed.size());
  for (const Hash32& h : committed) {
    if (index_.erase(h) != 0) gone.insert(h);
  }
  if (gone.empty()) return;
  std::erase_if(entries_,
                [&](const Entry& entry) { return gone.contains(entry.tx->hash); });
  check_coherence();
}

}  // namespace srbb::pool
