#include "pool/txpool.hpp"

namespace srbb::pool {

TxPool::AddResult TxPool::add(txn::TxPtr tx, SimTime now) {
  if (index_.contains(tx->hash)) return AddResult::kDuplicate;
  if (entries_.size() >= config_.capacity) {
    ++dropped_full_;
    return AddResult::kFull;
  }
  index_.insert(tx->hash);
  entries_.push_back(Entry{std::move(tx), now});
  ++admitted_;
  return AddResult::kAdded;
}

std::vector<txn::TxPtr> TxPool::take_batch(std::size_t max_count,
                                           std::size_t max_bytes, SimTime now) {
  std::vector<txn::TxPtr> batch;
  std::size_t bytes = 0;
  while (!entries_.empty() && batch.size() < max_count) {
    Entry& front = entries_.front();
    if (expired(front, now)) {
      index_.erase(front.tx->hash);
      entries_.pop_front();
      ++dropped_expired_;
      continue;
    }
    if (max_bytes != 0 && bytes + front.tx->size > max_bytes) break;
    bytes += front.tx->size;
    index_.erase(front.tx->hash);
    batch.push_back(std::move(front.tx));
    entries_.pop_front();
  }
  return batch;
}

void TxPool::remove_committed(const std::vector<Hash32>& committed) {
  std::unordered_set<Hash32, Hash32Hasher> gone;
  for (const Hash32& h : committed) {
    if (index_.contains(h)) gone.insert(h);
  }
  if (gone.empty()) return;
  std::deque<Entry> kept;
  for (Entry& entry : entries_) {
    if (gone.contains(entry.tx->hash)) {
      index_.erase(entry.tx->hash);
    } else {
      kept.push_back(std::move(entry));
    }
  }
  entries_ = std::move(kept);
}

}  // namespace srbb::pool
