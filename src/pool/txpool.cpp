#include "pool/txpool.hpp"

#include "common/invariant.hpp"

namespace srbb::pool {

void TxPool::check_coherence() const {
  SRBB_CHECK(index_.size() == entries_.size());
#ifdef SRBB_PARANOID_CHECKS
  for (const Entry& entry : entries_) {
    SRBB_PARANOID(index_.contains(entry.tx->hash));
  }
#endif
}

TxPool::AddResult TxPool::add(txn::TxPtr tx, SimTime now) {
  if (index_.contains(tx->hash)) return AddResult::kDuplicate;
  if (entries_.size() >= config_.capacity) {
    ++dropped_full_;
    return AddResult::kFull;
  }
  index_.insert(tx->hash);
  entries_.push_back(Entry{std::move(tx), now});
  ++admitted_;
  check_coherence();
  return AddResult::kAdded;
}

std::vector<txn::TxPtr> TxPool::take_batch(std::size_t max_count,
                                           std::size_t max_bytes, SimTime now) {
  std::vector<txn::TxPtr> batch;
  std::size_t bytes = 0;
  while (!entries_.empty() && batch.size() < max_count) {
    Entry& front = entries_.front();
    if (expired(front, now)) {
      index_.erase(front.tx->hash);
      entries_.pop_front();
      ++dropped_expired_;
      continue;
    }
    if (max_bytes != 0 && bytes + front.tx->size > max_bytes) break;
    bytes += front.tx->size;
    index_.erase(front.tx->hash);
    batch.push_back(std::move(front.tx));
    entries_.pop_front();
  }
  check_coherence();
  return batch;
}

void TxPool::remove_committed(const std::vector<Hash32>& committed) {
  if (entries_.empty() || committed.empty()) return;
  // One O(m) pass builds the pruning set (and drops the hashes from the
  // index as a side effect), then one O(n) in-place sweep over the deque:
  // O(n+m) total with a single hash lookup per element on either side.
  std::unordered_set<Hash32, Hash32Hasher> gone;
  gone.reserve(committed.size());
  for (const Hash32& h : committed) {
    if (index_.erase(h) != 0) gone.insert(h);
  }
  if (gone.empty()) return;
  std::erase_if(entries_,
                [&](const Entry& entry) { return gone.contains(entry.tx->hash); });
  check_coherence();
}

}  // namespace srbb::pool
