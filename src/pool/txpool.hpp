// Bounded transaction pool: the pending queue `p` of Alg. 1. Saturation of
// this queue under load is the paper's congestion mechanism — when it fills,
// transactions are dropped and counted as lost. Entries also carry a TTL
// (Alg. 1 line 8).
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "txn/txref.hpp"

namespace srbb::pool {

struct TxPoolConfig {
  /// Pending-slot capacity (Geth defaults to 4096 executable + 1024 queued).
  std::size_t capacity = 5120;
  /// Entries older than this are dropped on access; 0 disables expiry.
  SimDuration ttl = 0;
};

class TxPool {
 public:
  explicit TxPool(TxPoolConfig config = {}) : config_(config) {}

  /// Attach the observability layer (DESIGN.md §8): admit/drop trace events
  /// tagged with `node`, plus registry counters and the `pool.wait`
  /// histogram (admission -> extraction, the Alg. 1 queueing delay). Either
  /// pointer may be null; with both null the pool behaves exactly as before.
  void set_observability(obs::TraceSink* trace, obs::MetricsRegistry* metrics,
                         std::uint32_t node);

  enum class AddResult : std::uint8_t { kAdded, kDuplicate, kFull };

  AddResult add(txn::TxPtr tx, SimTime now);

  /// Aggregate outcome of a batch admission.
  struct AddBatchResult {
    std::size_t added = 0;
    std::size_t duplicates = 0;
    std::size_t dropped_full = 0;
  };

  /// Admit a batch in order. Exactly equivalent to calling add() once per
  /// entry — same trace events, counters and drop accounting — so the
  /// pipelined validators can admit a validated batch in one call without
  /// perturbing the observable stream.
  AddBatchResult add_batch(std::span<txn::TxPtr> txs, SimTime now);

  bool contains(const Hash32& hash) const { return index_.contains(hash); }

  /// Pop up to `max_count` transactions whose total wire size stays within
  /// `max_bytes` (0 = unlimited), skipping expired entries.
  std::vector<txn::TxPtr> take_batch(std::size_t max_count,
                                     std::size_t max_bytes, SimTime now);

  /// Drop any pending transactions that appear in `committed` (they made it
  /// into a decided block proposed by someone else).
  void remove_committed(const std::vector<Hash32>& committed);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  std::size_t capacity() const { return config_.capacity; }

  // Congestion accounting.
  std::uint64_t dropped_full() const { return dropped_full_; }
  std::uint64_t dropped_expired() const { return dropped_expired_; }
  std::uint64_t admitted() const { return admitted_; }

 private:
  struct Entry {
    txn::TxPtr tx;
    SimTime added_at = 0;
  };

  bool expired(const Entry& entry, SimTime now) const {
    return config_.ttl != 0 && entry.added_at + config_.ttl <= now;
  }

  /// Invariant: the hash index and the pending deque describe the same set
  /// of transactions. Checked after every mutating operation (O(1) size
  /// check always, full containment sweep under SRBB_PARANOID).
  void check_coherence() const;

  TxPoolConfig config_;
  std::deque<Entry> entries_;
  std::unordered_set<Hash32, Hash32Hasher> index_;
  std::uint64_t dropped_full_ = 0;
  std::uint64_t dropped_expired_ = 0;
  std::uint64_t admitted_ = 0;

  // Observability (all optional; null = disabled, branch-predicted away).
  obs::TraceSink* trace_ = nullptr;
  std::uint32_t obs_node_ = 0;
  obs::Counter* ctr_admitted_ = nullptr;
  obs::Counter* ctr_dropped_full_ = nullptr;
  obs::Counter* ctr_dropped_expired_ = nullptr;
  obs::Counter* ctr_duplicates_ = nullptr;
  obs::Histogram* hist_wait_ = nullptr;
};

}  // namespace srbb::pool
