#include "evm/interpreter.hpp"

#include <algorithm>
#include <cstring>

#include "codec/rlp.hpp"
#include "crypto/keccak.hpp"
#include "evm/opcodes.hpp"
#include "evm/precompiles.hpp"

namespace srbb::evm {

const char* to_string(ExecStatus status) {
  switch (status) {
    case ExecStatus::kSuccess: return "success";
    case ExecStatus::kRevert: return "revert";
    case ExecStatus::kOutOfGas: return "out of gas";
    case ExecStatus::kStackUnderflow: return "stack underflow";
    case ExecStatus::kStackOverflow: return "stack overflow";
    case ExecStatus::kInvalidJump: return "invalid jump";
    case ExecStatus::kInvalidOpcode: return "invalid opcode";
    case ExecStatus::kStaticViolation: return "write in static context";
    case ExecStatus::kDepthExceeded: return "call depth exceeded";
    case ExecStatus::kInsufficientBalance: return "insufficient balance";
    case ExecStatus::kCodeRejected: return "code rejected by static analysis";
  }
  return "unknown";
}

namespace {

std::uint64_t words_for(std::uint64_t bytes) { return (bytes + 31) / 32; }

// Quadratic memory pricing, as in the yellow paper.
std::uint64_t memory_cost(std::uint64_t size_bytes) {
  const std::uint64_t w = words_for(size_bytes);
  return 3 * w + (w * w) / 512;
}

class Frame {
 public:
  Frame(std::uint64_t gas) : gas_(gas) { stack_.reserve(64); }

  // --- gas ---
  bool charge(std::uint64_t amount) {
    if (gas_ < amount) {
      gas_ = 0;
      return false;
    }
    gas_ -= amount;
    return true;
  }
  std::uint64_t gas() const { return gas_; }
  void refund_to(std::uint64_t amount) { gas_ = amount; }

  // --- stack ---
  bool require(std::size_t in, std::size_t out) {
    if (stack_.size() < in) return false;
    return stack_.size() - in + out <= kMaxStack;
  }
  U256 pop() {
    U256 top = stack_.back();
    stack_.pop_back();
    return top;
  }
  void push(const U256& v) { stack_.push_back(v); }
  U256& peek(std::size_t depth_from_top) {
    return stack_[stack_.size() - 1 - depth_from_top];
  }
  std::size_t stack_size() const { return stack_.size(); }

  // --- memory ---
  /// Charge expansion to cover [offset, offset+size) and return false on OOG
  /// or absurd ranges. size == 0 never expands.
  bool expand_memory(const U256& offset, const U256& size) {
    if (size.is_zero()) return true;
    if (!offset.fits_u64() || !size.fits_u64()) return false;
    const std::uint64_t end = offset.as_u64() + size.as_u64();
    if (end < offset.as_u64() || end > (1ull << 32)) return false;
    if (end <= memory_.size()) return true;
    const std::uint64_t new_cost = memory_cost(end);
    const std::uint64_t old_cost = memory_cost(memory_.size());
    if (!charge(new_cost - old_cost)) return false;
    memory_.resize(words_for(end) * 32, 0);
    return true;
  }
  Bytes& memory() { return memory_; }
  std::size_t memory_size() const { return memory_.size(); }

  /// Copy `size` bytes out of memory (caller must have expanded).
  Bytes read_memory(std::uint64_t offset, std::uint64_t size) const {
    Bytes out(size, 0);
    if (size > 0) std::memcpy(out.data(), memory_.data() + offset, size);
    return out;
  }
  void write_memory(std::uint64_t offset, BytesView data) {
    if (!data.empty()) std::memcpy(memory_.data() + offset, data.data(), data.size());
  }

 private:
  std::uint64_t gas_ = 0;
  std::vector<U256> stack_;
  Bytes memory_;
};

U256 u256_from_address(const Address& a) { return U256::from_be(a.view()); }

Address address_from_u256(const U256& v) {
  const Bytes be = v.be_bytes();
  Address out;
  std::memcpy(out.data.data(), be.data() + 12, 20);
  return out;
}

// Zero-padded read of `size` bytes at `offset` from a data buffer.
Bytes padded_slice(BytesView data, const U256& offset, std::uint64_t size) {
  Bytes out(size, 0);
  if (!offset.fits_u64()) return out;
  const std::uint64_t off = offset.as_u64();
  if (off >= data.size()) return out;
  const std::uint64_t available =
      std::min<std::uint64_t>(size, data.size() - off);
  std::memcpy(out.data(), data.data() + off, available);
  return out;
}

}  // namespace

Address create_address(const Address& creator, std::uint64_t nonce) {
  rlp::ListBuilder rlp;
  rlp.add_bytes(creator.view());
  rlp.add_u64(nonce);
  const Hash32 h = crypto::Keccak256::hash(rlp.build());
  Address out;
  std::memcpy(out.data.data(), h.data.data() + 12, 20);
  return out;
}

Address Evm::compute_create_address(const Address& creator,
                                    std::uint64_t nonce) {
  return create_address(creator, nonce);
}

bool Evm::rejects_code(BytesView code) const {
  if (!validate_code_ || analysis_cache_ == nullptr) return false;
  return analysis_cache_->get(code)->verdict == analysis::Verdict::kReject;
}

ExecResult Evm::execute(const Message& msg) {
  ExecResult result;
  result.gas_left = msg.gas;
  if (msg.depth > kMaxCallDepth) {
    result.status = ExecStatus::kDepthExceeded;
    return result;
  }

  const state::StateView::Snapshot snap = db_.snapshot();
  const std::size_t logs_mark = logs_.size();

  if (msg.is_create) {
    // Static code validation: init code that is provably doomed (guaranteed
    // underflow, INVALID entry path, truncated PUSH, ...) never deserves a
    // frame. Same all-gas-consumed outcome as the failure it would hit.
    if (rejects_code(msg.data)) {
      result.status = ExecStatus::kCodeRejected;
      result.gas_left = 0;
      return result;
    }
    // The creator's nonce was incremented by the caller (txn layer or CREATE
    // opcode) before entering here; the address derives from the pre-bump
    // value.
    const std::uint64_t creator_nonce = db_.nonce(msg.caller);
    const Address created =
        compute_create_address(msg.caller, creator_nonce == 0 ? 0 : creator_nonce - 1);
    if (db_.nonce(created) != 0 || !db_.code(created).empty()) {
      result.status = ExecStatus::kInvalidOpcode;  // address collision
      result.gas_left = 0;
      return result;
    }
    db_.create_account(created);
    db_.set_nonce(created, 1);
    if (!msg.value.is_zero()) {
      if (!db_.sub_balance(msg.caller, msg.value)) {
        db_.revert_to(snap);
        result.status = ExecStatus::kInsufficientBalance;
        return result;
      }
      db_.add_balance(created, msg.value);
    }
    Message frame_msg = msg;
    frame_msg.to = created;
    ExecResult run_result = run(frame_msg, msg.data, created, nullptr);
    if (run_result.ok()) {
      // Deployment: returned bytes become the account code.
      const std::uint64_t deposit =
          200 * static_cast<std::uint64_t>(run_result.output.size());
      if (run_result.output.size() > kMaxCodeSize ||
          run_result.gas_left < deposit) {
        db_.revert_to(snap);
        logs_.resize(logs_mark);
        run_result.status = ExecStatus::kOutOfGas;
        run_result.gas_left = 0;
        run_result.output.clear();
        return run_result;
      }
      // The code about to be deposited gets the same static screening as
      // the init code: a contract that can never execute a single
      // successful path has no business living in the state.
      if (rejects_code(run_result.output)) {
        db_.revert_to(snap);
        logs_.resize(logs_mark);
        run_result.status = ExecStatus::kCodeRejected;
        run_result.gas_left = 0;
        run_result.output.clear();
        return run_result;
      }
      run_result.gas_left -= deposit;
      db_.set_code(created, run_result.output);
      run_result.created_address = created;
      run_result.output.clear();
      return run_result;
    }
    db_.revert_to(snap);
    logs_.resize(logs_mark);
    if (run_result.status != ExecStatus::kRevert) run_result.gas_left = 0;
    return run_result;
  }

  // Plain message call: transfer value, then run the target's code.
  if (!msg.value.is_zero()) {
    if (!db_.sub_balance(msg.caller, msg.value)) {
      result.status = ExecStatus::kInsufficientBalance;
      return result;
    }
    db_.create_account(msg.to);
    db_.add_balance(msg.to, msg.value);
  }
  if (is_precompile(msg.to)) {
    return run_precompile(msg.to, msg.data, msg.gas);
  }
  const Bytes code = db_.code(msg.to);
  if (code.empty()) return result;  // simple transfer, success

  const Hash32 code_keccak = db_.code_keccak(msg.to);
  ExecResult run_result = run(msg, code, msg.to, &code_keccak);
  if (!run_result.ok()) {
    db_.revert_to(snap);
    logs_.resize(logs_mark);
    if (run_result.status != ExecStatus::kRevert) run_result.gas_left = 0;
  }
  return run_result;
}

ExecResult Evm::run(const Message& msg, BytesView code, const Address& self,
                    const Hash32* code_keccak) {
  ExecResult result;
  Frame frame{msg.gas};
  // Jumpdest bitmap: one shared analysis per code hash instead of a rescan
  // per call frame. The nullptr-cache fallback keeps the historical
  // per-frame behaviour for A/B measurement.
  std::shared_ptr<const analysis::AnalysisResult> code_analysis;
  std::vector<bool> local_jumpdests;
  const std::vector<bool>* jumpdests = nullptr;
  if (analysis_cache_ != nullptr) {
    code_analysis = code_keccak != nullptr
                        ? analysis_cache_->get(*code_keccak, code)
                        : analysis_cache_->get(code);
    jumpdests = &code_analysis->jumpdests;
  } else {
    local_jumpdests = analysis::jumpdest_bitmap(code);
    jumpdests = &local_jumpdests;
  }
  Bytes return_data;  // RETURNDATA buffer from the most recent child call

  const auto fail = [&](ExecStatus status) {
    result.status = status;
    result.gas_left =
        status == ExecStatus::kRevert ? frame.gas() : 0;
    return result;
  };

  std::size_t pc = 0;
  for (;;) {
    if (pc >= code.size()) break;  // implicit STOP
    const std::uint8_t op = code[pc];
    const OpcodeInfo& info = opcode_info(op);
    if (!info.defined) return fail(ExecStatus::kInvalidOpcode);
    if (!frame.require(info.stack_in, info.stack_out)) {
      return fail(frame.stack_size() < info.stack_in
                      ? ExecStatus::kStackUnderflow
                      : ExecStatus::kStackOverflow);
    }
    if (!frame.charge(info.base_gas)) return fail(ExecStatus::kOutOfGas);

    const Opcode opcode = static_cast<Opcode>(op);
    switch (opcode) {
      case Opcode::STOP:
        result.gas_left = frame.gas();
        return result;

      case Opcode::ADD: {
        const U256 a = frame.pop(), b = frame.pop();
        frame.push(a + b);
        break;
      }
      case Opcode::MUL: {
        const U256 a = frame.pop(), b = frame.pop();
        frame.push(a * b);
        break;
      }
      case Opcode::SUB: {
        const U256 a = frame.pop(), b = frame.pop();
        frame.push(a - b);
        break;
      }
      case Opcode::DIV: {
        const U256 a = frame.pop(), b = frame.pop();
        frame.push(a / b);
        break;
      }
      case Opcode::SDIV: {
        const U256 a = frame.pop(), b = frame.pop();
        frame.push(sdiv(a, b));
        break;
      }
      case Opcode::MOD: {
        const U256 a = frame.pop(), b = frame.pop();
        frame.push(a % b);
        break;
      }
      case Opcode::SMOD: {
        const U256 a = frame.pop(), b = frame.pop();
        frame.push(smod(a, b));
        break;
      }
      case Opcode::ADDMOD: {
        const U256 a = frame.pop(), b = frame.pop(), m = frame.pop();
        frame.push(addmod(a, b, m));
        break;
      }
      case Opcode::MULMOD: {
        const U256 a = frame.pop(), b = frame.pop(), m = frame.pop();
        frame.push(mulmod(a, b, m));
        break;
      }
      case Opcode::EXP: {
        const U256 base = frame.pop(), exponent = frame.pop();
        const std::uint64_t exp_bytes = (exponent.bit_length() + 7) / 8;
        if (!frame.charge(50 * exp_bytes)) return fail(ExecStatus::kOutOfGas);
        frame.push(exp_pow(base, exponent));
        break;
      }
      case Opcode::SIGNEXTEND: {
        const U256 index = frame.pop(), value = frame.pop();
        frame.push(index.fits_u64() && index.as_u64() < 32
                       ? signextend(static_cast<unsigned>(index.as_u64()), value)
                       : value);
        break;
      }

      case Opcode::LT: {
        const U256 a = frame.pop(), b = frame.pop();
        frame.push(a < b ? U256::one() : U256::zero());
        break;
      }
      case Opcode::GT: {
        const U256 a = frame.pop(), b = frame.pop();
        frame.push(a > b ? U256::one() : U256::zero());
        break;
      }
      case Opcode::SLT: {
        const U256 a = frame.pop(), b = frame.pop();
        frame.push(slt(a, b) ? U256::one() : U256::zero());
        break;
      }
      case Opcode::SGT: {
        const U256 a = frame.pop(), b = frame.pop();
        frame.push(sgt(a, b) ? U256::one() : U256::zero());
        break;
      }
      case Opcode::EQ: {
        const U256 a = frame.pop(), b = frame.pop();
        frame.push(a == b ? U256::one() : U256::zero());
        break;
      }
      case Opcode::ISZERO:
        frame.push(frame.pop().is_zero() ? U256::one() : U256::zero());
        break;
      case Opcode::AND: {
        const U256 a = frame.pop(), b = frame.pop();
        frame.push(a & b);
        break;
      }
      case Opcode::OR: {
        const U256 a = frame.pop(), b = frame.pop();
        frame.push(a | b);
        break;
      }
      case Opcode::XOR: {
        const U256 a = frame.pop(), b = frame.pop();
        frame.push(a ^ b);
        break;
      }
      case Opcode::NOT:
        frame.push(~frame.pop());
        break;
      case Opcode::BYTE: {
        const U256 index = frame.pop(), value = frame.pop();
        frame.push(index.fits_u64() && index.as_u64() < 32
                       ? U256{nth_byte(value, static_cast<unsigned>(index.as_u64()))}
                       : U256::zero());
        break;
      }
      case Opcode::SHL: {
        const U256 shift = frame.pop(), value = frame.pop();
        frame.push(shift.fits_u64() && shift.as_u64() < 256
                       ? value << static_cast<unsigned>(shift.as_u64())
                       : U256::zero());
        break;
      }
      case Opcode::SHR: {
        const U256 shift = frame.pop(), value = frame.pop();
        frame.push(shift.fits_u64() && shift.as_u64() < 256
                       ? value >> static_cast<unsigned>(shift.as_u64())
                       : U256::zero());
        break;
      }
      case Opcode::SAR: {
        const U256 shift = frame.pop(), value = frame.pop();
        const unsigned n = shift.fits_u64() && shift.as_u64() < 256
                               ? static_cast<unsigned>(shift.as_u64())
                               : 256;
        frame.push(sar(value, n));
        break;
      }

      case Opcode::SHA3: {
        const U256 offset = frame.pop(), size = frame.pop();
        if (!frame.expand_memory(offset, size)) return fail(ExecStatus::kOutOfGas);
        if (!size.is_zero() && !frame.charge(6 * words_for(size.as_u64()))) {
          return fail(ExecStatus::kOutOfGas);
        }
        const Bytes data = size.is_zero()
                               ? Bytes{}
                               : frame.read_memory(offset.as_u64(), size.as_u64());
        frame.push(U256::from_be(crypto::Keccak256::hash(data).view()));
        break;
      }

      case Opcode::ADDRESS:
        frame.push(u256_from_address(self));
        break;
      case Opcode::BALANCE:
        frame.push(db_.balance(address_from_u256(frame.pop())));
        break;
      case Opcode::ORIGIN:
        frame.push(u256_from_address(tx_.origin));
        break;
      case Opcode::CALLER:
        frame.push(u256_from_address(msg.caller));
        break;
      case Opcode::CALLVALUE:
        frame.push(msg.value);
        break;
      case Opcode::CALLDATALOAD: {
        const U256 offset = frame.pop();
        const Bytes word = padded_slice(msg.data, offset, 32);
        frame.push(U256::from_be(word));
        break;
      }
      case Opcode::CALLDATASIZE:
        frame.push(U256{msg.data.size()});
        break;
      case Opcode::CALLDATACOPY:
      case Opcode::CODECOPY:
      case Opcode::RETURNDATACOPY: {
        const U256 mem_off = frame.pop(), src_off = frame.pop(), size = frame.pop();
        if (!frame.expand_memory(mem_off, size)) return fail(ExecStatus::kOutOfGas);
        if (!size.is_zero()) {
          if (!frame.charge(3 * words_for(size.as_u64()))) {
            return fail(ExecStatus::kOutOfGas);
          }
          const BytesView src = opcode == Opcode::CALLDATACOPY
                                    ? BytesView{msg.data}
                                : opcode == Opcode::CODECOPY
                                    ? code
                                    : BytesView{return_data};
          const Bytes chunk = padded_slice(src, src_off, size.as_u64());
          frame.write_memory(mem_off.as_u64(), chunk);
        }
        break;
      }
      case Opcode::CODESIZE:
        frame.push(U256{code.size()});
        break;
      case Opcode::EXTCODECOPY: {
        const Address target = address_from_u256(frame.pop());
        const U256 mem_off = frame.pop(), src_off = frame.pop(), size = frame.pop();
        if (!frame.expand_memory(mem_off, size)) return fail(ExecStatus::kOutOfGas);
        if (!size.is_zero()) {
          if (!frame.charge(3 * words_for(size.as_u64()))) {
            return fail(ExecStatus::kOutOfGas);
          }
          const Bytes& ext_code = db_.code(target);
          const Bytes chunk = padded_slice(ext_code, src_off, size.as_u64());
          frame.write_memory(mem_off.as_u64(), chunk);
        }
        break;
      }
      case Opcode::GASPRICE:
        frame.push(tx_.gas_price);
        break;
      case Opcode::EXTCODESIZE:
        frame.push(U256{db_.code(address_from_u256(frame.pop())).size()});
        break;
      case Opcode::RETURNDATASIZE:
        frame.push(U256{return_data.size()});
        break;

      case Opcode::BLOCKHASH:
        frame.pop();
        frame.push(U256::zero());  // historical hashes not modelled
        break;
      case Opcode::COINBASE:
        frame.push(u256_from_address(block_.coinbase));
        break;
      case Opcode::TIMESTAMP:
        frame.push(U256{block_.timestamp});
        break;
      case Opcode::NUMBER:
        frame.push(U256{block_.number});
        break;
      case Opcode::DIFFICULTY:
        frame.push(U256::zero());
        break;
      case Opcode::GASLIMIT:
        frame.push(U256{block_.gas_limit});
        break;
      case Opcode::CHAINID:
        frame.push(U256{block_.chain_id});
        break;
      case Opcode::SELFBALANCE:
        frame.push(db_.balance(self));
        break;

      case Opcode::POP:
        frame.pop();
        break;
      case Opcode::MLOAD: {
        const U256 offset = frame.pop();
        if (!frame.expand_memory(offset, U256{32})) return fail(ExecStatus::kOutOfGas);
        frame.push(U256::from_be(frame.read_memory(offset.as_u64(), 32)));
        break;
      }
      case Opcode::MSTORE: {
        const U256 offset = frame.pop(), value = frame.pop();
        if (!frame.expand_memory(offset, U256{32})) return fail(ExecStatus::kOutOfGas);
        frame.write_memory(offset.as_u64(), value.be_bytes());
        break;
      }
      case Opcode::MSTORE8: {
        const U256 offset = frame.pop(), value = frame.pop();
        if (!frame.expand_memory(offset, U256{1})) return fail(ExecStatus::kOutOfGas);
        const std::uint8_t byte = static_cast<std::uint8_t>(value.limb[0] & 0xff);
        frame.write_memory(offset.as_u64(), BytesView{&byte, 1});
        break;
      }
      case Opcode::SLOAD: {
        const Hash32 key = frame.pop().to_hash();
        frame.push(db_.storage(self, key));
        break;
      }
      case Opcode::SSTORE: {
        if (msg.is_static) return fail(ExecStatus::kStaticViolation);
        const Hash32 key = frame.pop().to_hash();
        const U256 value = frame.pop();
        const U256 current = db_.storage(self, key);
        std::uint64_t cost = 200;
        if (!(value == current)) {
          cost = current.is_zero() && !value.is_zero() ? 20000 : 5000;
        }
        if (!frame.charge(cost)) return fail(ExecStatus::kOutOfGas);
        db_.set_storage(self, key, value);
        break;
      }
      case Opcode::JUMP: {
        const U256 dest = frame.pop();
        if (!dest.fits_u64() || dest.as_u64() >= code.size() ||
            !(*jumpdests)[dest.as_u64()]) {
          return fail(ExecStatus::kInvalidJump);
        }
        pc = dest.as_u64();
        continue;
      }
      case Opcode::JUMPI: {
        const U256 dest = frame.pop(), condition = frame.pop();
        if (!condition.is_zero()) {
          if (!dest.fits_u64() || dest.as_u64() >= code.size() ||
              !(*jumpdests)[dest.as_u64()]) {
            return fail(ExecStatus::kInvalidJump);
          }
          pc = dest.as_u64();
          continue;
        }
        break;
      }
      case Opcode::PC:
        frame.push(U256{pc});
        break;
      case Opcode::MSIZE:
        frame.push(U256{frame.memory_size()});
        break;
      case Opcode::GAS:
        frame.push(U256{frame.gas()});
        break;
      case Opcode::JUMPDEST:
        break;

      case Opcode::CREATE: {
        if (msg.is_static) return fail(ExecStatus::kStaticViolation);
        const U256 value = frame.pop(), offset = frame.pop(), size = frame.pop();
        if (!frame.expand_memory(offset, size)) return fail(ExecStatus::kOutOfGas);
        const Bytes init_code =
            size.is_zero() ? Bytes{}
                           : frame.read_memory(offset.as_u64(), size.as_u64());
        db_.increment_nonce(self);
        Message child;
        child.caller = self;
        child.value = value;
        child.data = init_code;
        child.gas = frame.gas() - frame.gas() / 64;
        child.is_create = true;
        child.depth = msg.depth + 1;
        const std::uint64_t parent_reserve = frame.gas() - child.gas;
        const ExecResult child_result = execute(child);
        frame.refund_to(parent_reserve + child_result.gas_left);
        return_data = child_result.output;
        frame.push(child_result.ok()
                       ? u256_from_address(child_result.created_address)
                       : U256::zero());
        break;
      }

      case Opcode::CALL:
      case Opcode::DELEGATECALL:
      case Opcode::STATICCALL: {
        const U256 gas_req = frame.pop();
        const Address target = address_from_u256(frame.pop());
        const U256 value =
            opcode == Opcode::CALL ? frame.pop() : U256::zero();
        const U256 in_off = frame.pop(), in_size = frame.pop();
        const U256 out_off = frame.pop(), out_size = frame.pop();

        if (opcode == Opcode::CALL && msg.is_static && !value.is_zero()) {
          return fail(ExecStatus::kStaticViolation);
        }
        if (!frame.expand_memory(in_off, in_size)) return fail(ExecStatus::kOutOfGas);
        if (!frame.expand_memory(out_off, out_size)) return fail(ExecStatus::kOutOfGas);

        std::uint64_t extra = 0;
        if (!value.is_zero()) {
          extra += 9000;
          if (!db_.account_exists(target)) extra += 25000;
        }
        if (!frame.charge(extra)) return fail(ExecStatus::kOutOfGas);

        std::uint64_t child_gas = frame.gas() - frame.gas() / 64;
        if (gas_req.fits_u64() && gas_req.as_u64() < child_gas) {
          child_gas = gas_req.as_u64();
        }
        const std::uint64_t parent_reserve = frame.gas() - child_gas;
        if (!value.is_zero()) child_gas += 2300;  // call stipend

        Message child;
        child.depth = msg.depth + 1;
        child.gas = child_gas;
        child.data = in_size.is_zero()
                         ? Bytes{}
                         : frame.read_memory(in_off.as_u64(), in_size.as_u64());
        if (opcode == Opcode::DELEGATECALL) {
          // Run the target's code in the current account's context.
          child.caller = msg.caller;
          child.to = self;
          child.value = msg.value;
          child.is_static = msg.is_static;
          const Bytes target_code = db_.code(target);
          const Hash32 target_keccak = db_.code_keccak(target);
          const state::StateView::Snapshot snap = db_.snapshot();
          const std::size_t logs_mark = logs_.size();
          ExecResult child_result = run(child, target_code, self, &target_keccak);
          if (!child_result.ok()) {
            db_.revert_to(snap);
            logs_.resize(logs_mark);
            if (child_result.status != ExecStatus::kRevert) {
              child_result.gas_left = 0;
            }
          }
          frame.refund_to(parent_reserve + child_result.gas_left);
          return_data = child_result.output;
          if (!out_size.is_zero()) {
            Bytes chunk = padded_slice(return_data, U256::zero(),
                                       out_size.as_u64());
            frame.write_memory(out_off.as_u64(), chunk);
          }
          frame.push(child_result.ok() ? U256::one() : U256::zero());
        } else {
          child.caller = self;
          child.to = target;
          child.value = value;
          child.is_static = opcode == Opcode::STATICCALL || msg.is_static;
          const ExecResult child_result = execute(child);
          frame.refund_to(parent_reserve + child_result.gas_left);
          return_data = child_result.output;
          if (!out_size.is_zero()) {
            Bytes chunk = padded_slice(return_data, U256::zero(),
                                       out_size.as_u64());
            frame.write_memory(out_off.as_u64(), chunk);
          }
          frame.push(child_result.ok() ? U256::one() : U256::zero());
        }
        break;
      }

      case Opcode::RETURN:
      case Opcode::REVERT: {
        const U256 offset = frame.pop(), size = frame.pop();
        if (!frame.expand_memory(offset, size)) return fail(ExecStatus::kOutOfGas);
        result.output = size.is_zero()
                            ? Bytes{}
                            : frame.read_memory(offset.as_u64(), size.as_u64());
        result.status = opcode == Opcode::RETURN ? ExecStatus::kSuccess
                                                 : ExecStatus::kRevert;
        result.gas_left = frame.gas();
        return result;
      }
      case Opcode::INVALID:
        return fail(ExecStatus::kInvalidOpcode);
      case Opcode::SELFDESTRUCT: {
        if (msg.is_static) return fail(ExecStatus::kStaticViolation);
        const Address beneficiary = address_from_u256(frame.pop());
        const U256 balance = db_.balance(self);
        if (!balance.is_zero()) {
          db_.create_account(beneficiary);
          db_.add_balance(beneficiary, balance);
        }
        db_.delete_account(self);
        result.gas_left = frame.gas();
        return result;
      }

      default: {
        if (is_push(op)) {
          const unsigned n = immediate_size(op);
          const std::size_t available =
              pc + 1 <= code.size() ? code.size() - pc - 1 : 0;
          const std::size_t take = std::min<std::size_t>(n, available);
          // Missing immediate bytes read as zero (right-padded), as in Geth.
          Bytes imm(code.begin() + static_cast<std::ptrdiff_t>(pc + 1),
                    code.begin() + static_cast<std::ptrdiff_t>(pc + 1 + take));
          imm.resize(n, 0);
          frame.push(U256::from_be(imm));
          pc += 1 + n;
          continue;
        }
        if (op >= 0x80 && op <= 0x8f) {  // DUPn
          frame.push(frame.peek(op - 0x80));
          break;
        }
        if (op >= 0x90 && op <= 0x9f) {  // SWAPn
          std::swap(frame.peek(0), frame.peek(op - 0x90 + 1));
          break;
        }
        if (op >= 0xa0 && op <= 0xa4) {  // LOGn
          if (msg.is_static) return fail(ExecStatus::kStaticViolation);
          const unsigned topic_count = op - 0xa0;
          const U256 offset = frame.pop(), size = frame.pop();
          if (!frame.expand_memory(offset, size)) return fail(ExecStatus::kOutOfGas);
          if (!size.is_zero() && !frame.charge(8 * size.as_u64())) {
            return fail(ExecStatus::kOutOfGas);
          }
          LogEntry entry;
          entry.address = self;
          for (unsigned i = 0; i < topic_count; ++i) {
            entry.topics.push_back(frame.pop().to_hash());
          }
          entry.data = size.is_zero()
                           ? Bytes{}
                           : frame.read_memory(offset.as_u64(), size.as_u64());
          logs_.push_back(std::move(entry));
          break;
        }
        return fail(ExecStatus::kInvalidOpcode);
      }
    }
    pc += 1;
  }

  result.gas_left = frame.gas();
  return result;
}

}  // namespace srbb::evm
