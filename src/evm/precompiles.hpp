// Precompiled contracts, reachable at the low reserved addresses as in
// Ethereum. The SRBB VM ships three:
//   0x01  sigverify  — Ed25519 signature check (this chain's analogue of
//                      ecrecover): input = msg_hash(32) ++ pubkey(32) ++
//                      sig(64), output = 32-byte 1/0. Gas 3000.
//   0x02  sha256     — FIPS SHA-256 of the input. Gas 60 + 12/word.
//   0x04  identity   — returns the input. Gas 15 + 3/word.
//
// Precompiles execute on plain and static calls; DELEGATECALL to a
// precompile behaves like a call to empty code (a documented divergence —
// Geth runs them, but no contract in this repo relies on that).
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "evm/types.hpp"

namespace srbb::evm {

/// True when `address` designates a precompiled contract.
bool is_precompile(const Address& address);

/// Execute the precompile at `address` (must satisfy is_precompile).
/// Returns the result with gas accounting applied against `gas`.
ExecResult run_precompile(const Address& address, BytesView input,
                          std::uint64_t gas);

}  // namespace srbb::evm
