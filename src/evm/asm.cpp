#include "evm/asm.hpp"

#include <cctype>
#include <sstream>

namespace srbb::evm {

Program& Program::op(Opcode opcode) {
  code_.push_back(static_cast<std::uint8_t>(opcode));
  return *this;
}

Program& Program::push(const U256& value) {
  const Bytes be = value.be_bytes();
  std::size_t first = 0;
  while (first < 31 && be[first] == 0) ++first;
  const std::size_t len = 32 - first;  // at least 1
  code_.push_back(static_cast<std::uint8_t>(0x60 + len - 1));
  code_.insert(code_.end(), be.begin() + static_cast<std::ptrdiff_t>(first),
               be.end());
  return *this;
}

Program& Program::push_label(const std::string& name) {
  code_.push_back(static_cast<std::uint8_t>(Opcode::PUSH2));
  fixups_.emplace_back(code_.size(), name);
  code_.push_back(0);
  code_.push_back(0);
  return *this;
}

Program& Program::label(const std::string& name) {
  labels_[name] = code_.size();
  return op(Opcode::JUMPDEST);
}

Program& Program::raw(BytesView data) {
  append(code_, data);
  return *this;
}

Result<Bytes> Program::build() const {
  Bytes out = code_;
  for (const auto& [offset, name] : fixups_) {
    const auto it = labels_.find(name);
    if (it == labels_.end()) {
      return Status::error("asm: undefined label '" + name + "'");
    }
    if (it->second > 0xffff) return Status::error("asm: label offset overflow");
    out[offset] = static_cast<std::uint8_t>(it->second >> 8);
    out[offset + 1] = static_cast<std::uint8_t>(it->second & 0xff);
  }
  return out;
}

namespace {

struct Token {
  std::string text;
};

// Split source into tokens, dropping comments.
std::vector<std::string> tokenize(std::string_view source) {
  std::vector<std::string> tokens;
  std::string current;
  bool in_comment = false;
  for (char c : source) {
    if (c == '\n') in_comment = false;
    if (in_comment) continue;
    if (c == ';') {
      in_comment = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

Result<U256> parse_number(const std::string& tok) {
  if (tok.size() > 2 && tok[0] == '0' && (tok[1] == 'x' || tok[1] == 'X')) {
    auto v = U256::from_hex(tok);
    if (!v) return Status::error("asm: bad hex literal '" + tok + "'");
    return *v;
  }
  auto v = U256::from_dec(tok);
  if (!v) return Status::error("asm: bad numeric literal '" + tok + "'");
  return *v;
}

}  // namespace

Result<Bytes> assemble(std::string_view source) {
  const std::vector<std::string> tokens = tokenize(source);
  Program program;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok.size() > 1 && tok.back() == ':') {
      program.label(tok.substr(0, tok.size() - 1));
      continue;
    }
    std::string upper = tok;
    for (char& c : upper) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));

    // Bare PUSH: label reference (PUSH2) or auto-sized numeric literal.
    if (upper == "PUSH") {
      if (i + 1 >= tokens.size()) {
        return Status::error("asm: PUSH requires an operand");
      }
      const std::string& operand = tokens[++i];
      if (!operand.empty() && operand[0] == '@') {
        program.push_label(operand.substr(1));
        continue;
      }
      auto value = parse_number(operand);
      if (!value) return value.status();
      program.push(value.value());
      continue;
    }

    const auto opcode = opcode_by_name(upper);
    if (!opcode) return Status::error("asm: unknown mnemonic '" + tok + "'");

    if (is_push(*opcode)) {
      if (i + 1 >= tokens.size()) {
        return Status::error("asm: PUSH requires an operand");
      }
      const std::string& operand = tokens[++i];
      if (!operand.empty() && operand[0] == '@') {
        program.push_label(operand.substr(1));
        continue;
      }
      auto value = parse_number(operand);
      if (!value) return value.status();
      const unsigned width = immediate_size(*opcode);
      const unsigned needed = std::max(1u, (value.value().bit_length() + 7) / 8);
      if (needed > width) {
        return Status::error("asm: literal too wide for " + upper);
      }
      // Emit the exact PUSHn the programmer asked for.
      Bytes be = value.value().be_bytes();
      Bytes imm{be.end() - static_cast<std::ptrdiff_t>(width), be.end()};
      Bytes chunk;
      chunk.push_back(*opcode);
      append(chunk, imm);
      program.raw(chunk);
      continue;
    }
    const std::uint8_t byte = *opcode;
    program.raw(BytesView{&byte, 1});
  }
  return program.build();
}

std::string disassemble(BytesView code) {
  std::ostringstream out;
  for (std::size_t pc = 0; pc < code.size();) {
    const std::uint8_t op = code[pc];
    const OpcodeInfo& info = opcode_info(op);
    out << pc << ": ";
    if (!info.defined) {
      out << "UNDEFINED(0x" << to_hex(BytesView{&op, 1}) << ")\n";
      ++pc;
      continue;
    }
    out << info.name;
    const unsigned imm = immediate_size(op);
    if (imm > 0) {
      const std::size_t take = std::min<std::size_t>(imm, code.size() - pc - 1);
      out << " 0x" << to_hex(code.subspan(pc + 1, take));
    }
    out << "\n";
    pc += 1 + imm;
  }
  return out.str();
}

Bytes make_deployer(BytesView runtime_code) {
  // PUSH2 <len> DUP1 PUSH2 <offset-of-payload> PUSH1 0 CODECOPY
  // PUSH1 0 RETURN <payload>
  Bytes out;
  const auto push2 = [&out](std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(Opcode::PUSH2));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
  };
  // Layout: PUSH2 len | DUP1 | PUSH2 off | PUSH1 0 | CODECOPY | PUSH1 0 |
  //         RETURN | payload        => header is 3+1+3+2+1+2+1 = 13 bytes.
  constexpr std::uint16_t kHeader = 13;
  push2(static_cast<std::uint16_t>(runtime_code.size()));
  out.push_back(static_cast<std::uint8_t>(Opcode::DUP1));
  push2(kHeader);
  out.push_back(static_cast<std::uint8_t>(Opcode::PUSH1));
  out.push_back(0);
  out.push_back(static_cast<std::uint8_t>(Opcode::CODECOPY));
  out.push_back(static_cast<std::uint8_t>(Opcode::PUSH1));
  out.push_back(0);
  out.push_back(static_cast<std::uint8_t>(Opcode::RETURN));
  append(out, runtime_code);
  return out;
}

}  // namespace srbb::evm
