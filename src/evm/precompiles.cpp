#include "evm/precompiles.hpp"

#include <cstring>

#include "crypto/ed25519.hpp"
#include "crypto/sha256.hpp"

namespace srbb::evm {

namespace {

constexpr std::uint8_t kSigVerify = 0x01;
constexpr std::uint8_t kSha256 = 0x02;
constexpr std::uint8_t kIdentity = 0x04;

std::uint64_t words(std::size_t bytes) { return (bytes + 31) / 32; }

ExecResult out_of_gas() {
  ExecResult r;
  r.status = ExecStatus::kOutOfGas;
  r.gas_left = 0;
  return r;
}

}  // namespace

bool is_precompile(const Address& address) {
  for (int i = 0; i < 19; ++i) {
    if (address[i] != 0) return false;
  }
  const std::uint8_t tag = address[19];
  return tag == kSigVerify || tag == kSha256 || tag == kIdentity;
}

ExecResult run_precompile(const Address& address, BytesView input,
                          std::uint64_t gas) {
  ExecResult result;
  switch (address[19]) {
    case kSigVerify: {
      constexpr std::uint64_t kCost = 3000;
      if (gas < kCost) return out_of_gas();
      result.gas_left = gas - kCost;
      // Malformed input verifies as false rather than failing the call,
      // matching ecrecover's forgiving behaviour.
      bool ok = false;
      if (input.size() == 32 + 32 + 64) {
        crypto::PublicKey pubkey;
        crypto::Signature signature;
        std::memcpy(pubkey.data(), input.data() + 32, 32);
        std::memcpy(signature.data(), input.data() + 64, 64);
        ok = crypto::ed25519_verify(input.subspan(0, 32), signature, pubkey);
      }
      result.output.assign(32, 0);
      result.output[31] = ok ? 1 : 0;
      return result;
    }
    case kSha256: {
      const std::uint64_t cost = 60 + 12 * words(input.size());
      if (gas < cost) return out_of_gas();
      result.gas_left = gas - cost;
      result.output = crypto::Sha256::hash(input).bytes();
      return result;
    }
    case kIdentity: {
      const std::uint64_t cost = 15 + 3 * words(input.size());
      if (gas < cost) return out_of_gas();
      result.gas_left = gas - cost;
      result.output.assign(input.begin(), input.end());
      return result;
    }
    default:
      break;
  }
  result.status = ExecStatus::kInvalidOpcode;
  result.gas_left = 0;
  return result;
}

}  // namespace srbb::evm
