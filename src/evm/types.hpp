// Execution-context types shared by the interpreter and its callers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/u256.hpp"

namespace srbb::evm {

/// Block-level environment visible to contracts (NUMBER, TIMESTAMP, ...).
struct BlockContext {
  std::uint64_t number = 0;
  std::uint64_t timestamp = 0;
  Address coinbase;
  std::uint64_t gas_limit = 30'000'000;
  std::uint64_t chain_id = 4242;  // SRBB simulation chain id
};

/// Transaction-level environment (ORIGIN, GASPRICE).
struct TxContext {
  Address origin;
  U256 gas_price;
};

/// A message call or contract creation.
struct Message {
  Address caller;
  Address to;          // ignored when is_create
  U256 value;
  Bytes data;          // calldata, or init code when is_create
  std::uint64_t gas = 0;
  bool is_create = false;
  bool is_static = false;
  std::uint32_t depth = 0;
};

struct LogEntry {
  Address address;
  std::vector<Hash32> topics;
  Bytes data;
};

enum class ExecStatus : std::uint8_t {
  kSuccess,
  kRevert,
  kOutOfGas,
  kStackUnderflow,
  kStackOverflow,
  kInvalidJump,
  kInvalidOpcode,
  kStaticViolation,
  kDepthExceeded,
  kInsufficientBalance,
  /// CREATE-time static analysis proved the init or deployed code doomed
  /// (evm/analysis, gated by ExecutionConfig::validate_code).
  kCodeRejected,
};

const char* to_string(ExecStatus status);

struct ExecResult {
  ExecStatus status = ExecStatus::kSuccess;
  std::uint64_t gas_left = 0;
  Bytes output;              // RETURN/REVERT data, or deployed code on create
  Address created_address;   // set for successful creates

  bool ok() const { return status == ExecStatus::kSuccess; }
};

}  // namespace srbb::evm
