// The SRBB VM interpreter: a 256-bit stack machine over the opcode set in
// opcodes.hpp with gas metering, journaled state access, nested calls and
// contract creation. This is the execution engine every validator replays
// blocks through (Alg. 1 line 21 / lines 32-40 of the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "evm/analysis/cache.hpp"
#include "evm/types.hpp"
#include "state/statedb.hpp"

namespace srbb::evm {

inline constexpr std::uint32_t kMaxCallDepth = 1024;
inline constexpr std::size_t kMaxStack = 1024;
inline constexpr std::size_t kMaxCodeSize = 24 * 1024;

/// Contract address for a creation by `creator` at `nonce`:
/// keccak256(rlp([creator, nonce]))[12:], as in Ethereum.
Address create_address(const Address& creator, std::uint64_t nonce);

class Evm {
 public:
  Evm(state::StateView& db, BlockContext block, TxContext tx)
      : db_(db), block_(block), tx_(tx) {}

  /// Execute a message call or creation against the current state. State
  /// mutations from failed frames are reverted; the caller is responsible
  /// for charging intrinsic transaction gas beforehand.
  ExecResult execute(const Message& msg);

  /// Logs emitted by successful frames since the last clear.
  const std::vector<LogEntry>& logs() const { return logs_; }
  void clear_logs() { logs_.clear(); }

  const BlockContext& block() const { return block_; }
  state::StateView& db() { return db_; }

  /// Analysis cache consulted for per-frame jumpdest bitmaps and CREATE-time
  /// code validation. Defaults to the process-wide cache; nullptr restores
  /// the historical per-frame rescan (the microbench A/B baseline).
  void set_analysis_cache(analysis::AnalysisCache* cache) {
    analysis_cache_ = cache;
  }
  analysis::AnalysisCache* analysis_cache() const { return analysis_cache_; }

  /// CREATE-time static validation: reject provably-doomed init/runtime code
  /// with kCodeRejected. On by default; ExecutionConfig::validate_code is
  /// the compat flag callers plumb through.
  void set_validate_code(bool enabled) { validate_code_ = enabled; }

 private:
  ExecResult run(const Message& msg, BytesView code, const Address& self,
                 const Hash32* code_keccak);
  Address compute_create_address(const Address& creator, std::uint64_t nonce);
  /// kReject verdict for `code` (create paths); false when validation is off
  /// or no cache is attached.
  bool rejects_code(BytesView code) const;

  state::StateView& db_;
  BlockContext block_;
  TxContext tx_;
  std::vector<LogEntry> logs_;
  analysis::AnalysisCache* analysis_cache_ = &analysis::AnalysisCache::global();
  bool validate_code_ = true;
};

}  // namespace srbb::evm
