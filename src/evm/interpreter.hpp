// The SRBB VM interpreter: a 256-bit stack machine over the opcode set in
// opcodes.hpp with gas metering, journaled state access, nested calls and
// contract creation. This is the execution engine every validator replays
// blocks through (Alg. 1 line 21 / lines 32-40 of the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "evm/types.hpp"
#include "state/statedb.hpp"

namespace srbb::evm {

inline constexpr std::uint32_t kMaxCallDepth = 1024;
inline constexpr std::size_t kMaxStack = 1024;
inline constexpr std::size_t kMaxCodeSize = 24 * 1024;

/// Contract address for a creation by `creator` at `nonce`:
/// keccak256(rlp([creator, nonce]))[12:], as in Ethereum.
Address create_address(const Address& creator, std::uint64_t nonce);

class Evm {
 public:
  Evm(state::StateView& db, BlockContext block, TxContext tx)
      : db_(db), block_(block), tx_(tx) {}

  /// Execute a message call or creation against the current state. State
  /// mutations from failed frames are reverted; the caller is responsible
  /// for charging intrinsic transaction gas beforehand.
  ExecResult execute(const Message& msg);

  /// Logs emitted by successful frames since the last clear.
  const std::vector<LogEntry>& logs() const { return logs_; }
  void clear_logs() { logs_.clear(); }

  const BlockContext& block() const { return block_; }
  state::StateView& db() { return db_; }

 private:
  ExecResult run(const Message& msg, BytesView code, const Address& self);
  Address compute_create_address(const Address& creator, std::uint64_t nonce);

  state::StateView& db_;
  BlockContext block_;
  TxContext tx_;
  std::vector<LogEntry> logs_;
};

}  // namespace srbb::evm
