// Opcode table for the SRBB VM: the Ethereum instruction set subset that the
// paper's DApp workloads exercise, with per-opcode metadata (mnemonic, stack
// effect, base gas) used by the interpreter and the assembler.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace srbb::evm {

enum class Opcode : std::uint8_t {
  STOP = 0x00,
  ADD = 0x01,
  MUL = 0x02,
  SUB = 0x03,
  DIV = 0x04,
  SDIV = 0x05,
  MOD = 0x06,
  SMOD = 0x07,
  ADDMOD = 0x08,
  MULMOD = 0x09,
  EXP = 0x0a,
  SIGNEXTEND = 0x0b,

  LT = 0x10,
  GT = 0x11,
  SLT = 0x12,
  SGT = 0x13,
  EQ = 0x14,
  ISZERO = 0x15,
  AND = 0x16,
  OR = 0x17,
  XOR = 0x18,
  NOT = 0x19,
  BYTE = 0x1a,
  SHL = 0x1b,
  SHR = 0x1c,
  SAR = 0x1d,

  SHA3 = 0x20,

  ADDRESS = 0x30,
  BALANCE = 0x31,
  ORIGIN = 0x32,
  CALLER = 0x33,
  CALLVALUE = 0x34,
  CALLDATALOAD = 0x35,
  CALLDATASIZE = 0x36,
  CALLDATACOPY = 0x37,
  CODESIZE = 0x38,
  CODECOPY = 0x39,
  GASPRICE = 0x3a,
  EXTCODESIZE = 0x3b,
  EXTCODECOPY = 0x3c,
  RETURNDATASIZE = 0x3d,
  RETURNDATACOPY = 0x3e,

  BLOCKHASH = 0x40,
  COINBASE = 0x41,
  TIMESTAMP = 0x42,
  NUMBER = 0x43,
  DIFFICULTY = 0x44,
  GASLIMIT = 0x45,
  CHAINID = 0x46,
  SELFBALANCE = 0x47,

  POP = 0x50,
  MLOAD = 0x51,
  MSTORE = 0x52,
  MSTORE8 = 0x53,
  SLOAD = 0x54,
  SSTORE = 0x55,
  JUMP = 0x56,
  JUMPI = 0x57,
  PC = 0x58,
  MSIZE = 0x59,
  GAS = 0x5a,
  JUMPDEST = 0x5b,

  PUSH1 = 0x60,  // PUSH1..PUSH32 are 0x60..0x7f
  PUSH2 = 0x61,
  PUSH4 = 0x63,
  PUSH32 = 0x7f,
  DUP1 = 0x80,  // DUP1..DUP16 are 0x80..0x8f
  DUP2 = 0x81,
  DUP3 = 0x82,
  DUP16 = 0x8f,
  SWAP1 = 0x90,  // SWAP1..SWAP16 are 0x90..0x9f
  SWAP16 = 0x9f,
  LOG0 = 0xa0,  // LOG0..LOG4 are 0xa0..0xa4
  LOG4 = 0xa4,

  CREATE = 0xf0,
  CALL = 0xf1,
  RETURN = 0xf3,
  DELEGATECALL = 0xf4,
  STATICCALL = 0xfa,
  REVERT = 0xfd,
  INVALID = 0xfe,
  SELFDESTRUCT = 0xff,
};

struct OpcodeInfo {
  std::string_view name;
  std::uint8_t stack_in = 0;   // operands popped
  std::uint8_t stack_out = 0;  // results pushed
  std::uint32_t base_gas = 0;
  bool defined = false;
};

/// Metadata for a raw opcode byte; `defined == false` for holes in the table.
const OpcodeInfo& opcode_info(std::uint8_t opcode);

/// Mnemonic lookup used by the assembler ("ADD", "PUSH1", "DUP3", ...).
std::optional<std::uint8_t> opcode_by_name(std::string_view name);

/// Number of immediate bytes following the opcode (nonzero only for PUSHes).
constexpr unsigned immediate_size(std::uint8_t opcode) {
  if (opcode >= 0x60 && opcode <= 0x7f) return opcode - 0x5f;
  return 0;
}

constexpr bool is_push(std::uint8_t opcode) {
  return opcode >= 0x60 && opcode <= 0x7f;
}

}  // namespace srbb::evm
