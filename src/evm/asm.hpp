// Bytecode authoring tools: a programmatic builder and a small two-pass text
// assembler. Contracts in this repo are written against these instead of
// Solidity; labels compile to PUSH2 immediates.
//
// Text syntax:
//   ; comment until end of line
//   label:            define a jump target (emits nothing by itself)
//   JUMPDEST          ordinary mnemonics
//   PUSH1 0x2a        push with numeric immediate (hex 0x.. or decimal)
//   PUSH @label       pushes the 2-byte offset of `label` (PUSH2)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "common/u256.hpp"
#include "evm/opcodes.hpp"

namespace srbb::evm {

/// Programmatic bytecode builder with label fixups.
class Program {
 public:
  Program& op(Opcode opcode);
  /// PUSHn with the smallest n that fits `value` (minimum PUSH1).
  Program& push(const U256& value);
  Program& push(std::uint64_t value) { return push(U256{value}); }
  /// PUSH2 placeholder resolved to the label's offset at build time.
  Program& push_label(const std::string& name);
  /// Define `name` at the current offset and emit a JUMPDEST.
  Program& label(const std::string& name);
  /// Raw bytes (e.g. embedded data).
  Program& raw(BytesView data);

  /// Resolve labels and return the bytecode; error on unknown labels.
  Result<Bytes> build() const;
  std::size_t size() const { return code_.size(); }

 private:
  Bytes code_;
  std::unordered_map<std::string, std::size_t> labels_;
  std::vector<std::pair<std::size_t, std::string>> fixups_;  // offset -> label
};

/// Assemble text source (see syntax above).
Result<Bytes> assemble(std::string_view source);

/// Disassemble bytecode into one instruction per line (for debugging and
/// golden tests).
std::string disassemble(BytesView code);

/// Wrap runtime bytecode in a standard deployer: the init code copies the
/// runtime to memory and returns it, so `deployer(runtime)` can be used as a
/// CREATE/deployment payload.
Bytes make_deployer(BytesView runtime_code);

}  // namespace srbb::evm
