#include "evm/contracts.hpp"

#include "crypto/keccak.hpp"
#include "evm/asm.hpp"
#include "evm/opcodes.hpp"

namespace srbb::evm {

std::uint32_t selector(std::string_view signature) {
  const Hash32 h = crypto::Keccak256::hash(
      BytesView{reinterpret_cast<const std::uint8_t*>(signature.data()),
                signature.size()});
  return get_be32(h.data.data());
}

Bytes encode_call(std::uint32_t sel, const std::vector<U256>& args) {
  Bytes out(4);
  put_be32(out.data(), sel);
  for (const U256& arg : args) append(out, arg.be_bytes());
  return out;
}

Bytes encode_call(std::string_view signature, const std::vector<U256>& args) {
  return encode_call(selector(signature), args);
}

namespace {

// --- small emission helpers over Program ---

// selector = calldata[0..4] >> 224, left on the stack.
void emit_load_selector(Program& p) {
  p.push(0).op(Opcode::CALLDATALOAD).push(224).op(Opcode::SHR);
}

// With the selector on top of the stack, jump to `label` when it matches.
void emit_route(Program& p, std::string_view signature, const std::string& label) {
  p.op(Opcode::DUP1).push(U256{selector(signature)}).op(Opcode::EQ);
  p.push_label(label);
  p.op(Opcode::JUMPI);
}

void emit_revert(Program& p) {
  p.push(0).push(0).op(Opcode::REVERT);
}

// Push calldata argument `index` (32-byte words after the selector).
void emit_arg(Program& p, unsigned index) {
  p.push(4 + 32 * index).op(Opcode::CALLDATALOAD);
}

// Compute sha3(word_on_stack, tag) -> key on stack. Consumes the word.
void emit_map_key(Program& p, std::uint64_t tag) {
  p.push(0).op(Opcode::MSTORE);         // mem[0] = word
  p.push(tag).push(32).op(Opcode::MSTORE);  // mem[32] = tag
  p.push(64).push(0).op(Opcode::SHA3);
}

// storage[slot] += 1
void emit_increment_slot(Program& p, std::uint64_t slot) {
  p.push(slot).op(Opcode::SLOAD).push(1).op(Opcode::ADD);
  p.push(slot).op(Opcode::SSTORE);
}

// Return the single word on top of the stack.
void emit_return_top(Program& p) {
  p.push(0).op(Opcode::MSTORE).push(32).push(0).op(Opcode::RETURN);
}

// View returning storage[slot].
void emit_return_slot(Program& p, std::uint64_t slot) {
  p.push(slot).op(Opcode::SLOAD);
  emit_return_top(p);
}

Contract finish(Program& p) {
  Contract out;
  auto built = p.build();
  out.runtime_code = built ? std::move(built).take() : Bytes{};
  out.deploy_code = make_deployer(out.runtime_code);
  return out;
}

Contract build_counter() {
  Program p;
  emit_load_selector(p);
  emit_route(p, "increment()", "inc");
  emit_route(p, "get()", "get");
  emit_revert(p);

  p.label("inc").op(Opcode::POP);
  emit_increment_slot(p, 0);
  p.op(Opcode::STOP);

  p.label("get").op(Opcode::POP);
  emit_return_slot(p, 0);
  return finish(p);
}

Contract build_exchange() {
  Program p;
  emit_load_selector(p);
  emit_route(p, "trade(uint256,uint256,uint256)", "trade");
  emit_route(p, "quote(uint256)", "quote");
  emit_route(p, "count()", "count");
  emit_revert(p);

  // trade(stockId, price, volume)
  p.label("trade").op(Opcode::POP);
  // lastPrice[stockId] = price
  emit_arg(p, 1);         // [price]
  emit_arg(p, 0);         // [price, stockId]
  emit_map_key(p, 0);     // [price, key]
  p.op(Opcode::SSTORE);   // storage[key] = price
  // volume[stockId] += volume
  emit_arg(p, 2);         // [volume]
  emit_arg(p, 0);
  emit_map_key(p, 1);     // [volume, key]
  p.op(Opcode::DUP1).op(Opcode::SLOAD);  // [volume, key, cur]
  p.op(Opcode::DUP3).op(Opcode::ADD);    // [volume, key, cur+volume]
  p.op(Opcode::SWAP1).op(Opcode::SSTORE).op(Opcode::POP);
  // trades++
  emit_increment_slot(p, 0);
  // emit Trade(stockId) as a log with one topic
  p.push(U256{selector("Trade(uint256,uint256,uint256)")});
  p.push(0).push(0);
  p.op(static_cast<Opcode>(0xa1));  // LOG1
  p.op(Opcode::STOP);

  // quote(stockId) -> lastPrice
  p.label("quote").op(Opcode::POP);
  emit_arg(p, 0);
  emit_map_key(p, 0);
  p.op(Opcode::SLOAD);
  emit_return_top(p);

  p.label("count").op(Opcode::POP);
  emit_return_slot(p, 0);
  return finish(p);
}

Contract build_mobility() {
  Program p;
  emit_load_selector(p);
  emit_route(p, "ride(uint256,uint256)", "ride");
  emit_route(p, "fareOf(uint256)", "fare_of");
  emit_route(p, "totalFares()", "total");
  emit_route(p, "count()", "count");
  emit_revert(p);

  // ride(rideId, fare)
  p.label("ride").op(Opcode::POP);
  // fare[rideId] = fare
  emit_arg(p, 1);
  emit_arg(p, 0);
  emit_map_key(p, 0);
  p.op(Opcode::SSTORE);
  // totalFares (slot 1) += fare
  p.push(1).op(Opcode::SLOAD);
  emit_arg(p, 1);
  p.op(Opcode::ADD).push(1).op(Opcode::SSTORE);
  // rides (slot 0) ++
  emit_increment_slot(p, 0);
  p.op(Opcode::STOP);

  p.label("fare_of").op(Opcode::POP);
  emit_arg(p, 0);
  emit_map_key(p, 0);
  p.op(Opcode::SLOAD);
  emit_return_top(p);

  p.label("total").op(Opcode::POP);
  emit_return_slot(p, 1);

  p.label("count").op(Opcode::POP);
  emit_return_slot(p, 0);
  return finish(p);
}

Contract build_kvstore() {
  Program p;
  emit_load_selector(p);
  emit_route(p, "put(uint256,uint256)", "put");
  emit_route(p, "get(uint256)", "get");
  emit_revert(p);

  // put(key, value) — deliberately no global counter: distinct keys are
  // fully disjoint, so hinted scheduling can prove non-conflict.
  p.label("put").op(Opcode::POP);
  emit_arg(p, 1);        // [value]
  emit_arg(p, 0);        // [value, key]
  emit_map_key(p, 0);    // [value, slot]
  p.op(Opcode::SSTORE);  // storage[slot] = value
  p.op(Opcode::STOP);

  p.label("get").op(Opcode::POP);
  emit_arg(p, 0);
  emit_map_key(p, 0);
  p.op(Opcode::SLOAD);
  emit_return_top(p);
  return finish(p);
}

Contract build_ticketing() {
  Program p;
  emit_load_selector(p);
  emit_route(p, "buy(uint256,uint256)", "buy");
  emit_route(p, "ownerOf(uint256,uint256)", "owner_of");
  emit_route(p, "sold()", "sold");
  emit_revert(p);

  // buy(matchId, seat): revert when the seat is taken.
  p.label("buy").op(Opcode::POP);
  emit_arg(p, 0);
  p.push(0).op(Opcode::MSTORE);
  emit_arg(p, 1);
  p.push(32).op(Opcode::MSTORE);
  p.push(64).push(0).op(Opcode::SHA3);   // [key]
  p.op(Opcode::DUP1).op(Opcode::SLOAD);  // [key, cur]
  p.push_label("taken").op(Opcode::JUMPI);  // jump if cur != 0, leaves [key]
  p.op(Opcode::CALLER).op(Opcode::SWAP1).op(Opcode::SSTORE);  // seat -> caller
  emit_increment_slot(p, 0);
  p.op(Opcode::STOP);

  p.label("taken");
  emit_revert(p);

  p.label("owner_of").op(Opcode::POP);
  emit_arg(p, 0);
  p.push(0).op(Opcode::MSTORE);
  emit_arg(p, 1);
  p.push(32).op(Opcode::MSTORE);
  p.push(64).push(0).op(Opcode::SHA3);
  p.op(Opcode::SLOAD);
  emit_return_top(p);

  p.label("sold").op(Opcode::POP);
  emit_return_slot(p, 0);
  return finish(p);
}

Contract build_staking() {
  Program p;
  emit_load_selector(p);
  emit_route(p, "deposit()", "deposit");
  emit_route(p, "stakeOf(uint256)", "stake_of");
  emit_route(p, "totalStake()", "total");
  emit_revert(p);

  // deposit() payable: stake[caller] += callvalue; total (slot 0) += value.
  p.label("deposit").op(Opcode::POP);
  p.op(Opcode::CALLVALUE);  // [value]
  p.op(Opcode::CALLER);
  emit_map_key(p, 0);                    // [value, key]
  p.op(Opcode::DUP1).op(Opcode::SLOAD);  // [value, key, cur]
  p.op(Opcode::DUP3).op(Opcode::ADD);    // [value, key, cur+value]
  p.op(Opcode::SWAP1).op(Opcode::SSTORE).op(Opcode::POP);
  p.push(0).op(Opcode::SLOAD).op(Opcode::CALLVALUE).op(Opcode::ADD);
  p.push(0).op(Opcode::SSTORE);
  p.op(Opcode::STOP);

  // stakeOf(addressWord)
  p.label("stake_of").op(Opcode::POP);
  emit_arg(p, 0);
  emit_map_key(p, 0);
  p.op(Opcode::SLOAD);
  emit_return_top(p);

  p.label("total").op(Opcode::POP);
  emit_return_slot(p, 0);
  return finish(p);
}

Contract build_token() {
  Program p;
  emit_load_selector(p);
  emit_route(p, "mint(uint256,uint256)", "mint");
  emit_route(p, "transfer(uint256,uint256)", "transfer");
  emit_route(p, "balanceOf(uint256)", "balance_of");
  emit_route(p, "totalSupply()", "supply");
  emit_revert(p);

  // mint(to, amount): balances[to] += amount; totalSupply (slot 0) += amount.
  p.label("mint").op(Opcode::POP);
  emit_arg(p, 1);                        // [amount]
  emit_arg(p, 0);                        // [amount, to]
  emit_map_key(p, 0);                    // [amount, key]
  p.op(Opcode::DUP1).op(Opcode::SLOAD);  // [amount, key, cur]
  p.op(Opcode::DUP3).op(Opcode::ADD);    // [amount, key, cur+amount]
  p.op(Opcode::SWAP1).op(Opcode::SSTORE).op(Opcode::POP);
  p.push(0).op(Opcode::SLOAD);
  emit_arg(p, 1);
  p.op(Opcode::ADD).push(0).op(Opcode::SSTORE);
  p.op(Opcode::STOP);

  // transfer(to, amount): revert unless balances[caller] >= amount.
  p.label("transfer").op(Opcode::POP);
  p.op(Opcode::CALLER);
  emit_map_key(p, 0);                    // [key_from]
  p.op(Opcode::DUP1).op(Opcode::SLOAD);  // [key_from, bal]
  p.op(Opcode::DUP1);                    // [key_from, bal, bal]
  emit_arg(p, 1);                        // [key_from, bal, bal, amount]
  p.op(Opcode::GT);                      // amount > bal ?
  p.push_label("insufficient").op(Opcode::JUMPI);  // [key_from, bal]
  emit_arg(p, 1);                        // [key_from, bal, amount]
  p.op(Opcode::SWAP1).op(Opcode::SUB);   // [key_from, bal-amount]
  p.op(Opcode::SWAP1).op(Opcode::SSTORE);  // storage[key_from] = bal-amount
  emit_arg(p, 1);                        // [amount]
  emit_arg(p, 0);                        // [amount, to]
  emit_map_key(p, 0);                    // [amount, key_to]
  p.op(Opcode::DUP1).op(Opcode::SLOAD);  // [amount, key_to, cur]
  p.op(Opcode::DUP3).op(Opcode::ADD);
  p.op(Opcode::SWAP1).op(Opcode::SSTORE).op(Opcode::POP);
  // Canonical Transfer event topic.
  p.push(U256{selector("Transfer(address,address,uint256)")});
  p.push(0).push(0);
  p.op(static_cast<Opcode>(0xa1));  // LOG1
  p.op(Opcode::STOP);

  p.label("insufficient");
  emit_revert(p);

  p.label("balance_of").op(Opcode::POP);
  emit_arg(p, 0);
  emit_map_key(p, 0);
  p.op(Opcode::SLOAD);
  emit_return_top(p);

  p.label("supply").op(Opcode::POP);
  emit_return_slot(p, 0);
  return finish(p);
}

// Write `selector(signature) ++ args...` to memory at offset 0 by loading the
// router's own arguments (forwarded 1:1, so callee calldata offsets equal the
// router's). Returns the child-calldata size.
std::uint64_t emit_child_calldata(Program& p, std::string_view signature,
                                  unsigned argc) {
  // mem[0..32) = selector in the top 4 bytes; the tail is immediately
  // overwritten by the first argument word.
  p.push(U256{selector(signature)} << 224).push(0).op(Opcode::MSTORE);
  for (unsigned i = 0; i < argc; ++i) {
    emit_arg(p, i);
    p.push(4 + 32 * i).op(Opcode::MSTORE);
  }
  return 4 + 32 * static_cast<std::uint64_t>(argc);
}

// Check the call's success flag (on top of the stack) and revert when the
// child failed — the guarded-call idiom call_is_guarded() recognizes.
void emit_call_guard(Program& p, const std::string& ok_label) {
  p.push_label(ok_label).op(Opcode::JUMPI);
  emit_revert(p);
  p.label(ok_label);
}

Contract build_router(const Address& kvstore_at, const Address& token_at) {
  const U256 kv_word = U256::from_be(kvstore_at.view());
  const U256 token_word = U256::from_be(token_at.view());

  Program p;
  emit_load_selector(p);
  emit_route(p, "rput(uint256,uint256)", "rput");
  emit_route(p, "rtransfer(uint256,uint256)", "rtransfer");
  emit_route(p, "rget(uint256)", "rget");
  emit_revert(p);

  // rput(key, value): CALL kvstore.put(key, value).
  p.label("rput").op(Opcode::POP);
  {
    const std::uint64_t in_size = emit_child_calldata(p, "put(uint256,uint256)", 2);
    p.push(0).push(0);                 // ret size, ret offset
    p.push(in_size).push(0).push(0);   // args size, args offset, value 0
    p.push(kv_word).op(Opcode::GAS).op(Opcode::CALL);
  }
  emit_call_guard(p, "rput_ok");
  p.op(Opcode::STOP);

  // rtransfer(to, amount): DELEGATECALL token.transfer — the token ledger
  // lives in the router's own storage under the token's slot layout.
  p.label("rtransfer").op(Opcode::POP);
  {
    const std::uint64_t in_size =
        emit_child_calldata(p, "transfer(uint256,uint256)", 2);
    p.push(0).push(0);               // ret size, ret offset
    p.push(in_size).push(0);         // args size, args offset
    p.push(token_word).op(Opcode::GAS).op(Opcode::DELEGATECALL);
  }
  emit_call_guard(p, "rtransfer_ok");
  p.op(Opcode::STOP);

  // rget(key): STATICCALL kvstore.get(key) and return the word it wrote to
  // the 32-byte return area at memory 0.
  p.label("rget").op(Opcode::POP);
  {
    const std::uint64_t in_size = emit_child_calldata(p, "get(uint256)", 1);
    p.push(32).push(0);              // ret size, ret offset
    p.push(in_size).push(0);         // args size, args offset
    p.push(kv_word).op(Opcode::GAS).op(Opcode::STATICCALL);
  }
  emit_call_guard(p, "rget_ok");
  p.push(0).op(Opcode::MLOAD);
  emit_return_top(p);
  return finish(p);
}

}  // namespace

Contract router_contract(const Address& kvstore_at, const Address& token_at) {
  return build_router(kvstore_at, token_at);
}

const Contract& token_contract() {
  static const Contract c = build_token();
  return c;
}

const Contract& counter_contract() {
  static const Contract c = build_counter();
  return c;
}

const Contract& exchange_contract() {
  static const Contract c = build_exchange();
  return c;
}

const Contract& mobility_contract() {
  static const Contract c = build_mobility();
  return c;
}

const Contract& ticketing_contract() {
  static const Contract c = build_ticketing();
  return c;
}

const Contract& staking_contract() {
  static const Contract c = build_staking();
  return c;
}

const Contract& kvstore_contract() {
  static const Contract c = build_kvstore();
  return c;
}

}  // namespace srbb::evm
