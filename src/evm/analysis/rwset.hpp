// Storage access summaries (docs/ANALYSIS.md §rw-sets): an abstract
// interpretation over the CFG that infers, per contract, which storage slots
// any execution may SLOAD/SSTORE and which balances it may read — as
// *symbolic* keys over the call inputs (constants, calldata words, caller,
// self, callvalue, keccak of those). A transaction scheduler resolves the
// symbols against a concrete transaction to get a predicted rw-set.
//
// Soundness contract (enforced by tests/test_rwset.cpp and fuzz_rwset): for
// every execution of the code from an empty stack at pc 0,
//
//     observed accesses  ⊆  resolve(summary)      or  summary.top == true.
//
// Whenever a key cannot be bounded — a computed slot, an unmodeled memory
// read feeding SHA3, a CALL/CREATE/SELFDESTRUCT/EXTCODE* that can touch
// arbitrary accounts, or an exhausted analysis budget — the summary degrades
// to the explicit ⊤ verdict (`top == true`, "may touch anything"). There is
// no silent miss: every bailout path sets ⊤.
//
// Deterministic by construction: ordered containers, explicit visit budget,
// no clocks or randomness — the fuzz harness replays inference twice per
// input and requires identical digests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/u256.hpp"

namespace srbb::evm::analysis {

struct Cfg;  // analysis.hpp

/// Leaf/node classes of a symbolic storage key. Everything except kUnknown
/// is resolvable to a concrete 32-byte word given the call inputs.
enum class SymClass : std::uint8_t {
  kConst = 0,   // compile-time constant word
  kCalldata,    // CALLDATALOAD at a constant offset (zero-padded 32 bytes)
  kCaller,      // CALLER as a 32-byte word (top frame: the tx sender)
  kSelf,        // ADDRESS as a 32-byte word (top frame: tx.to)
  kCallvalue,   // CALLVALUE (top frame: tx.value)
  kOrigin,      // ORIGIN as a 32-byte word (top frame: the tx sender)
  kKeccak,      // keccak256 of the children words, in memory order
  kUnknown,     // unbounded — poisons any key it reaches
};

const char* to_string(SymClass c);

/// A symbolic 32-byte word. Keccak nodes carry the hashed words as children
/// (the mapping-slot idiom: sha3(mem[0..32) ++ mem[32..64))).
struct SymExpr {
  SymClass cls = SymClass::kUnknown;
  U256 constant;                       // kConst
  std::uint64_t calldata_offset = 0;   // kCalldata
  std::vector<SymExpr> children;       // kKeccak

  static SymExpr unknown() { return SymExpr{}; }
  static SymExpr make_const(const U256& v) {
    SymExpr e;
    e.cls = SymClass::kConst;
    e.constant = v;
    return e;
  }
  static SymExpr make_calldata(std::uint64_t offset) {
    SymExpr e;
    e.cls = SymClass::kCalldata;
    e.calldata_offset = offset;
    return e;
  }
  static SymExpr make_leaf(SymClass c) {
    SymExpr e;
    e.cls = c;
    return e;
  }

  /// True when no kUnknown occurs anywhere in the tree, i.e. resolve() will
  /// produce a concrete word.
  bool resolvable() const;
  /// Total tree nodes (depth/width cap enforcement).
  std::size_t node_count() const;

  friend bool operator==(const SymExpr& a, const SymExpr& b) {
    return compare(a, b) == 0;
  }
  /// Deterministic total order (class, payload, children lexicographic).
  static int compare(const SymExpr& a, const SymExpr& b);
};

/// Human/JSON rendering: "0x2a", "calldata[4]", "caller",
/// "keccak(calldata[4], 0x0)", "unknown".
std::string to_string(const SymExpr& e);

/// Concrete top-frame call inputs a symbolic key is resolved against.
struct ResolveContext {
  BytesView calldata;
  Address caller;  // also ORIGIN for the top frame
  Address self;
  U256 callvalue;
};

/// Concrete 32-byte word for `e` under `ctx`; nullopt iff the tree contains
/// kUnknown. kCalldata resolves with the interpreter's zero-padded slice
/// semantics; kKeccak hashes the big-endian concatenation of its children,
/// matching the SHA3 opcode over the memory layout the children were read
/// from.
std::optional<U256> resolve(const SymExpr& e, const ResolveContext& ctx);

/// Per-contract storage access summary. `reads`/`writes` hold symbolic
/// SLOAD/SSTORE keys on the contract's own storage (an SSTORE also reads the
/// slot, so resolvers must fold writes into the read prediction);
/// `balance_reads` holds BALANCE/SELFBALANCE targets as address words. All
/// three are sorted by SymExpr::compare and deduplicated. When `top` is set
/// the lists are best-effort partial information only — the contract may
/// touch anything.
struct StorageSummary {
  bool top = false;
  std::vector<SymExpr> reads;
  std::vector<SymExpr> writes;
  std::vector<SymExpr> balance_reads;

  // Diagnostics (CLI, tests): why/whether the fixpoint completed.
  std::uint32_t visited_blocks = 0;
  bool budget_exhausted = false;

  /// Order-stable FNV-1a digest, folded into AnalysisResult::fingerprint().
  std::uint64_t digest() const;
};

/// Run the abstract interpretation over a built CFG. Total and deterministic
/// for arbitrary input; never throws. An empty CFG yields the empty summary
/// (empty code touches nothing).
StorageSummary infer_storage_summary(const Cfg& cfg);

// --- Frame summaries: the single-frame product of the interprocedural
// --- analysis (interproc.hpp composes them through resolved call edges).

enum class CallKind : std::uint8_t {
  kCall = 0,
  kStaticCall,
  kDelegateCall,
};

const char* to_string(CallKind k);

/// One CALL/STATICCALL/DELEGATECALL site observed by the frame-local pass.
/// Everything here is in the *caller's* frame symbols; composition
/// substitutes them into the callee's summary. Joins across abstract states
/// reaching the same pc keep only what agrees on every path (target/value
/// widen to kUnknown, input words intersect), so a site never claims more
/// precision than the least-informed path through it.
struct CallSite {
  std::uint32_t pc = 0;
  std::uint32_t block = 0;  // CFG block containing the call instruction
  CallKind kind = CallKind::kCall;
  SymExpr target;  // callee address word (kConst => statically resolved)
  SymExpr value;   // forwarded wei; const 0 for STATICCALL/DELEGATECALL
  std::uint64_t in_offset = 0;  // child-calldata memory range, when tracked
  std::uint64_t in_size = 0;
  bool args_tracked = false;
  /// Tracked caller memory words inside [in_offset, in_offset+in_size),
  /// keyed by byte offset relative to in_offset. Absent offsets are
  /// untracked — composition bails to ⊤ if the callee reads them.
  std::vector<std::pair<std::uint64_t, SymExpr>> input_words;
  /// The call's success flag syntactically feeds the block's JUMPI whose
  /// failing branch can only revert: caller success implies callee success,
  /// which makes adding the callee's min-gas to this block sound.
  bool guarded = false;
};

/// Frame-local storage summary: the same abstract interpretation as
/// StorageSummary, except CALL/STATICCALL/DELEGATECALL are modeled as
/// explicit CallSites instead of collapsing straight to ⊤. The soundness
/// contract of `local` covers only the accesses *this* frame performs;
/// child-frame effects are represented by `sites` and composed against
/// state-resolved callee code by interproc.cpp. CREATE/SELFDESTRUCT/
/// EXTCODE* still force `local.top` (their effects are unbounded even
/// interprocedurally).
struct FrameSummary {
  StorageSummary local;
  std::vector<CallSite> sites;  // pc order
  /// More call sites than the model bound: dropped sites force composition
  /// to ⊤ (never a silent miss).
  bool sites_overflow = false;

  std::uint64_t digest() const;
};

/// Second interpretation pass producing the frame summary. Kept separate
/// from infer_storage_summary so the intraprocedural summary (and its
/// digests, consumed by fuzz_rwset) is bit-identical to the pre-composition
/// behavior.
FrameSummary infer_frame_summary(const Cfg& cfg);

}  // namespace srbb::evm::analysis
