// Worklist fixpoint over stack-height intervals, verdict derivation and the
// min-gas shortest path. See the header for the verdict contract and
// docs/ANALYSIS.md for the lattice write-up.
#include <algorithm>
#include <deque>
#include <queue>
#include <utility>

#include "common/invariant.hpp"
#include "evm/analysis/analysis.hpp"
#include "evm/opcodes.hpp"

namespace srbb::evm::analysis {

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kAccept: return "accept";
    case Verdict::kUnknown: return "unknown";
    case Verdict::kReject: return "reject";
  }
  return "?";
}

const char* to_string(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kUnderflow: return "guaranteed stack underflow";
    case RejectReason::kOverflow: return "guaranteed stack overflow";
    case RejectReason::kInvalidOpcode: return "INVALID on entry path";
    case RejectReason::kUndefinedOpcode: return "undefined opcode on entry path";
    case RejectReason::kBadJump: return "static jump to non-JUMPDEST";
    case RejectReason::kTruncatedPush: return "truncated PUSH on entry path";
  }
  return "?";
}

namespace {

constexpr std::uint32_t kStackLimit = 1024;

// Inputs larger than any deployable code (24 KiB) plus generous headroom for
// init code get a conservative kUnknown instead of a quadratic-ish fixpoint:
// the analyzer must stay total on arbitrary fuzz input.
constexpr std::size_t kMaxAnalyzableCode = 128 * 1024;

struct Propagated {
  bool dies = false;  // every entry height fails inside the block
  std::uint32_t exit_lo = 0;
  std::uint32_t exit_hi = 0;
};

/// Filter the entry interval through the block's summary: heights that
/// underflow or overflow die inside the block; survivors exit shifted by
/// delta. Also refreshes the per-block fact flags (monotone, so recomputing
/// on every visit is safe).
Propagated transfer(const BasicBlock& b, BlockFacts& f) {
  Propagated out;
  f.may_underflow = f.entry_lo < b.needed;
  f.must_underflow = f.entry_hi < b.needed;
  if (f.must_underflow) {
    out.dies = true;
    return out;
  }
  const std::uint32_t lo_s = std::max(f.entry_lo, b.needed);
  f.may_overflow = f.entry_hi + b.peak > kStackLimit;
  f.must_overflow = lo_s + b.peak > kStackLimit;
  if (f.must_overflow) {
    out.dies = true;
    return out;
  }
  const std::uint32_t hi_s =
      b.peak > 0 ? std::min(f.entry_hi, kStackLimit - b.peak) : f.entry_hi;
  // Survivor heights satisfy entry >= needed >= -delta and
  // entry + peak <= limit with delta <= peak, so the exit heights stay in
  // [0, kStackLimit].
  out.exit_lo = static_cast<std::uint32_t>(
      static_cast<std::int64_t>(lo_s) + b.delta);
  out.exit_hi = static_cast<std::uint32_t>(
      static_cast<std::int64_t>(hi_s) + b.delta);
  return out;
}

class Fixpoint {
 public:
  Fixpoint(const Cfg& cfg, std::vector<BlockFacts>& facts)
      : cfg_(cfg), facts_(facts), queued_(cfg.blocks.size(), false) {}

  void run() {
    if (cfg_.blocks.empty()) return;
    join(0, 0, 0);
    while (!worklist_.empty()) {
      const std::uint32_t id = worklist_.front();
      worklist_.pop_front();
      queued_[id] = false;
      step(cfg_.blocks[id]);
    }
  }

 private:
  void join(std::uint32_t id, std::uint32_t lo, std::uint32_t hi) {
    BlockFacts& f = facts_[id];
    if (!f.reachable) {
      f.reachable = true;
      f.entry_lo = lo;
      f.entry_hi = hi;
    } else if (lo >= f.entry_lo && hi <= f.entry_hi) {
      return;  // no widening
    } else {
      f.entry_lo = std::min(f.entry_lo, lo);
      f.entry_hi = std::max(f.entry_hi, hi);
    }
    if (!queued_[id]) {
      queued_[id] = true;
      worklist_.push_back(id);
    }
  }

  /// Computed-jump targets are over-approximated as "any JUMPDEST block":
  /// instead of materializing the quadratic edge set, every unknown jump
  /// folds its exit interval into one shared entry interval that all
  /// JUMPDEST blocks join.
  void fold_unknown(std::uint32_t lo, std::uint32_t hi) {
    if (!unknown_set_) {
      unknown_set_ = true;
      unknown_lo_ = lo;
      unknown_hi_ = hi;
    } else if (lo >= unknown_lo_ && hi <= unknown_hi_) {
      return;
    } else {
      unknown_lo_ = std::min(unknown_lo_, lo);
      unknown_hi_ = std::max(unknown_hi_, hi);
    }
    for (const std::uint32_t jd : cfg_.jumpdest_blocks) {
      join(jd, unknown_lo_, unknown_hi_);
    }
  }

  void step(const BasicBlock& b) {
    BlockFacts& f = facts_[b.id];
    const Propagated p = transfer(b, f);
    if (p.dies) return;
    switch (b.terminator) {
      case Terminator::kFallThrough:
        join(*b.fallthrough, p.exit_lo, p.exit_hi);
        break;
      case Terminator::kJump:
        if (b.jump_succ) {
          join(*b.jump_succ, p.exit_lo, p.exit_hi);
        } else if (b.unknown_jump) {
          fold_unknown(p.exit_lo, p.exit_hi);
        }
        // resolved-invalid: the jump always faults, no successors
        break;
      case Terminator::kJumpI:
        if (b.jump_succ) {
          join(*b.jump_succ, p.exit_lo, p.exit_hi);
        } else if (b.unknown_jump) {
          fold_unknown(p.exit_lo, p.exit_hi);
        }
        if (b.fallthrough) join(*b.fallthrough, p.exit_lo, p.exit_hi);
        break;
      default:
        break;  // terminal: stop/return/revert/selfdestruct/invalid/...
    }
  }

  const Cfg& cfg_;
  std::vector<BlockFacts>& facts_;
  std::deque<std::uint32_t> worklist_;
  std::vector<bool> queued_;
  bool unknown_set_ = false;
  std::uint32_t unknown_lo_ = 0;
  std::uint32_t unknown_hi_ = 0;
};

/// Walk the unique-successor chain from the entry with exact stack heights
/// and prove doom if every execution must fail (or must execute a truncated
/// PUSH). Stops at the first branch, computed jump, revisit (loops prove
/// nothing) or success terminator.
void prove_reject(const Cfg& cfg, AnalysisResult& r) {
  if (cfg.blocks.empty()) return;
  std::vector<bool> visited(cfg.blocks.size(), false);
  std::uint32_t id = 0;
  std::int64_t h = 0;
  const auto reject = [&](RejectReason reason, std::uint32_t pc) {
    r.verdict = Verdict::kReject;
    r.reject_reason = reason;
    r.reject_pc = pc;
  };
  while (!visited[id]) {
    visited[id] = true;
    const BasicBlock& b = cfg.blocks[id];
    for (std::uint32_t i = 0; i < b.instr_count; ++i) {
      const Instruction& ins = cfg.instrs[b.first_instr + i];
      const OpcodeInfo& info = opcode_info(ins.opcode);
      if (!info.defined) {
        return reject(RejectReason::kUndefinedOpcode, ins.pc);
      }
      if (h < static_cast<std::int64_t>(info.stack_in)) {
        return reject(RejectReason::kUnderflow, ins.pc);
      }
      if (ins.opcode == static_cast<std::uint8_t>(Opcode::INVALID)) {
        return reject(RejectReason::kInvalidOpcode, ins.pc);
      }
      h += static_cast<std::int64_t>(info.stack_out) -
           static_cast<std::int64_t>(info.stack_in);
      if (h > static_cast<std::int64_t>(kStackLimit)) {
        return reject(RejectReason::kOverflow, ins.pc);
      }
      if (ins.truncated) {
        return reject(RejectReason::kTruncatedPush, ins.pc);
      }
    }
    const std::uint32_t last_pc =
        cfg.instrs[b.first_instr + b.instr_count - 1].pc;
    switch (b.terminator) {
      case Terminator::kFallThrough:
        id = *b.fallthrough;
        continue;
      case Terminator::kJump:
        if (b.jump_resolved && b.jump_target_invalid) {
          return reject(RejectReason::kBadJump, last_pc);
        }
        if (b.jump_succ) {
          id = *b.jump_succ;
          continue;
        }
        return;  // computed jump: no proof
      default:
        return;  // branch or terminal: no doom proof past here
    }
  }
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

/// Lower bound on gas to reach any successful exit: single-source shortest
/// path where entering a successor costs the predecessor's static gas (plus
/// the optional per-block surcharge). Unknown jumps route through one
/// virtual node into every JUMPDEST block, keeping the edge count linear.
std::uint64_t min_success_gas(const Cfg& cfg,
                              const std::vector<std::uint64_t>* extra_block_gas) {
  if (cfg.blocks.empty()) return 0;
  const std::size_t n = cfg.blocks.size();
  const std::size_t virt = n;  // computed-jump hub
  constexpr std::uint64_t kInf = AnalysisResult::kNoSuccessfulPath;
  std::vector<std::uint64_t> dist(n + 1, kInf);
  using Item = std::pair<std::uint64_t, std::size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[0] = 0;
  heap.emplace(0, 0);
  std::uint64_t best = kInf;

  const auto relax = [&](std::size_t node, std::uint64_t d) {
    if (d < dist[node]) {
      dist[node] = d;
      heap.emplace(d, node);
    }
  };
  const auto sat_add = [](std::uint64_t a, std::uint64_t b) {
    return a > kInf - b ? kInf : a + b;
  };

  while (!heap.empty()) {
    const auto [d, node] = heap.top();
    heap.pop();
    if (d != dist[node]) continue;
    if (node == virt) {
      for (const std::uint32_t jd : cfg.jumpdest_blocks) relax(jd, d);
      continue;
    }
    const BasicBlock& b = cfg.blocks[node];
    const std::uint64_t extra =
        extra_block_gas != nullptr ? (*extra_block_gas)[node] : 0;
    const std::uint64_t out = sat_add(sat_add(d, b.static_gas), extra);
    if (out == kInf) continue;  // surcharged to "no successful path through"
    switch (b.terminator) {
      case Terminator::kStop:
      case Terminator::kReturn:
      case Terminator::kSelfdestruct:
      case Terminator::kFallOffEnd:
        best = std::min(best, out);
        break;
      case Terminator::kFallThrough:
        relax(*b.fallthrough, out);
        break;
      case Terminator::kJump:
        if (b.jump_succ) relax(*b.jump_succ, out);
        if (b.unknown_jump) relax(virt, out);
        break;
      case Terminator::kJumpI:
        if (b.jump_succ) relax(*b.jump_succ, out);
        if (b.unknown_jump) relax(virt, out);
        if (b.fallthrough) {
          relax(*b.fallthrough, out);
        } else {
          best = std::min(best, out);  // not-taken runs off the end
        }
        break;
      default:
        break;  // revert/invalid/undefined: not a successful exit
    }
  }
  return best;
}

std::uint64_t AnalysisResult::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a(h, static_cast<std::uint64_t>(verdict));
  h = fnv1a(h, static_cast<std::uint64_t>(reject_reason));
  h = fnv1a(h, reject_pc);
  h = fnv1a(h, min_gas);
  h = fnv1a(h, reachable_blocks);
  h = fnv1a(h, unknown_jump_blocks);
  h = fnv1a(h, (reachable_truncated_push ? 2u : 0u) |
                   (reachable_invalid ? 1u : 0u));
  h = fnv1a(h, jumpdests.size());
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < jumpdests.size(); ++i) {
    bits = (bits << 1) | (jumpdests[i] ? 1u : 0u);
    if (i % 64 == 63) {
      h = fnv1a(h, bits);
      bits = 0;
    }
  }
  h = fnv1a(h, bits);
  for (std::size_t i = 0; i < cfg.blocks.size(); ++i) {
    const BasicBlock& b = cfg.blocks[i];
    h = fnv1a(h, (static_cast<std::uint64_t>(b.start_pc) << 32) | b.end_pc);
    h = fnv1a(h, static_cast<std::uint64_t>(b.terminator));
    h = fnv1a(h, (static_cast<std::uint64_t>(b.needed) << 32) | b.peak);
    h = fnv1a(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(b.delta)));
    h = fnv1a(h, b.static_gas);
    const BlockFacts& f = facts[i];
    h = fnv1a(h, (f.reachable ? 1u : 0u) | (f.may_underflow ? 2u : 0u) |
                     (f.must_underflow ? 4u : 0u) | (f.may_overflow ? 8u : 0u) |
                     (f.must_overflow ? 16u : 0u));
    h = fnv1a(h, (static_cast<std::uint64_t>(f.entry_lo) << 32) | f.entry_hi);
  }
  h = fnv1a(h, storage.digest());
  h = fnv1a(h, frame.digest());
  return h;
}

AnalysisResult analyze(BytesView code) {
  AnalysisResult r;
  r.jumpdests = jumpdest_bitmap(code);
  if (code.empty()) {
    r.verdict = Verdict::kAccept;  // immediate implicit STOP
    r.min_gas = 0;
    return r;
  }
  if (code.size() > kMaxAnalyzableCode) {
    r.verdict = Verdict::kUnknown;
    r.min_gas = 0;
    r.storage.top = true;  // unanalyzed code may touch anything
    r.frame.local.top = true;
    return r;
  }

  r.cfg = build_cfg(code);
  r.facts.assign(r.cfg.blocks.size(), BlockFacts{});
  Fixpoint{r.cfg, r.facts}.run();

  bool provably_safe = true;
  for (std::size_t i = 0; i < r.cfg.blocks.size(); ++i) {
    const BasicBlock& b = r.cfg.blocks[i];
    const BlockFacts& f = r.facts[i];
    if (!f.reachable) continue;
    ++r.reachable_blocks;
    if (b.unknown_jump) ++r.unknown_jump_blocks;
    if (b.has_truncated_push) r.reachable_truncated_push = true;
    if (b.terminator == Terminator::kInvalid ||
        b.terminator == Terminator::kUndefined) {
      r.reachable_invalid = true;
    }
    if (f.may_underflow || f.may_overflow || b.unknown_jump ||
        b.has_truncated_push || b.jump_target_invalid ||
        b.terminator == Terminator::kInvalid ||
        b.terminator == Terminator::kUndefined) {
      provably_safe = false;
    }
  }
  r.verdict = provably_safe ? Verdict::kAccept : Verdict::kUnknown;
  prove_reject(r.cfg, r);  // upgrades to kReject when doom is provable
  r.min_gas = min_success_gas(r.cfg);
  r.storage = infer_storage_summary(r.cfg);
  r.frame = infer_frame_summary(r.cfg);
  return r;
}

}  // namespace srbb::evm::analysis
