// Static analysis over EVM bytecode (DESIGN.md §9, docs/ANALYSIS.md): a
// structured disassembler, a basic-block CFG with resolved static jump
// targets, and a worklist fixpoint abstract interpretation over stack-height
// intervals with per-block static gas lower bounds.
//
// The product is an AnalysisResult: a three-valued verdict plus the jumpdest
// bitmap the interpreter needs anyway, a CFG summary, and a whole-contract
// minimum-gas estimate. Verdict semantics (the contract the soundness
// differential in tests/test_analysis_soundness.cpp enforces):
//
//  - kAccept: proven safe. Starting from an empty stack at pc 0, no
//    execution of this code can hit stack underflow/overflow, an invalid or
//    undefined opcode, an invalid jump target, or a truncated PUSH.
//  - kReject: provably doomed. The entry path that every execution must
//    follow (unique-successor chain from pc 0) reaches a guaranteed failure
//    — or executes a truncated PUSH, which is structural malformation even
//    though the interpreter pads it with zeros.
//  - kUnknown: neither proof went through (computed jumps, data-dependent
//    stack heights). Enforcement points admit kUnknown.
//
// Everything here is deterministic by construction: plain vectors, ordered
// maps, no clocks, no randomness — the fuzz harness replays analyze() twice
// per input and requires identical fingerprints.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/u256.hpp"
#include "evm/analysis/rwset.hpp"

namespace srbb::evm::analysis {

/// One decoded instruction. PUSH immediates are decoded with the same
/// zero-padding rule the interpreter applies to truncated trailing PUSHes.
struct Instruction {
  std::uint32_t pc = 0;
  std::uint8_t opcode = 0;
  std::uint8_t imm_size = 0;  // declared immediate width (PUSH only)
  bool truncated = false;     // PUSH immediate runs past the end of code
  U256 immediate;
};

/// Valid JUMPDEST positions: JUMPDEST bytes that are not PUSH immediates.
/// Bit-identical to the scan the interpreter historically ran per frame.
std::vector<bool> jumpdest_bitmap(BytesView code);

/// Linear instruction stream (leaders are identified by build_cfg).
std::vector<Instruction> disassemble_code(BytesView code);

enum class Terminator : std::uint8_t {
  kFallThrough,   // block ends because the next instruction is a leader
  kJump,
  kJumpI,
  kStop,
  kReturn,
  kRevert,
  kSelfdestruct,
  kInvalid,       // INVALID (0xfe)
  kUndefined,     // hole in the opcode table
  kFallOffEnd,    // runs past the end of code: implicit STOP, a success
};

const char* to_string(Terminator t);

struct BasicBlock {
  std::uint32_t id = 0;
  std::uint32_t start_pc = 0;
  std::uint32_t end_pc = 0;      // exclusive
  std::uint32_t first_instr = 0; // index into Cfg::instrs
  std::uint32_t instr_count = 0;
  Terminator terminator = Terminator::kFallThrough;

  // Stack-effect summary relative to the entry height (computed once; the
  // fixpoint then works in pure interval arithmetic):
  std::uint32_t needed = 0;  // min entry height to execute every instruction
  std::int32_t delta = 0;    // exit height minus entry height
  std::uint32_t peak = 0;    // max height above entry after any instruction
  std::uint64_t static_gas = 0;  // sum of base costs: a lower bound
  bool has_truncated_push = false;

  // Jump resolution for kJump/kJumpI via per-block constant-stack tracking
  // (PUSH immediately before the jump is the idiom every contract in this
  // repo compiles to).
  bool jump_resolved = false;
  std::uint32_t jump_target = 0;      // meaningful when jump_resolved
  bool jump_target_invalid = false;   // resolved but not a valid JUMPDEST
  bool unknown_jump = false;          // computed target: edge class that
                                      // conservatively reaches every
                                      // JUMPDEST-led block

  // Successor block ids.
  std::optional<std::uint32_t> fallthrough;
  std::optional<std::uint32_t> jump_succ;
};

struct Cfg {
  std::vector<Instruction> instrs;
  std::vector<BasicBlock> blocks;               // ordered by start_pc
  std::vector<std::uint32_t> jumpdest_blocks;   // JUMPDEST-led block ids

  /// Block whose range covers `pc`, if any.
  std::optional<std::uint32_t> block_at(std::uint32_t pc) const;
};

Cfg build_cfg(BytesView code);

enum class Verdict : std::uint8_t { kAccept, kUnknown, kReject };
enum class RejectReason : std::uint8_t {
  kNone,
  kUnderflow,        // guaranteed stack underflow on the entry path
  kOverflow,         // guaranteed stack overflow on the entry path
  kInvalidOpcode,    // INVALID executed on the entry path
  kUndefinedOpcode,  // undefined opcode executed on the entry path
  kBadJump,          // static jump to a non-JUMPDEST on the entry path
  kTruncatedPush,    // entry path executes a PUSH whose immediate is cut off
};

const char* to_string(Verdict v);
const char* to_string(RejectReason r);

/// Per-block fixpoint facts, parallel to Cfg::blocks.
struct BlockFacts {
  bool reachable = false;
  std::uint32_t entry_lo = 0;  // stack-height interval at block entry
  std::uint32_t entry_hi = 0;
  bool may_underflow = false;
  bool must_underflow = false;
  bool may_overflow = false;
  bool must_overflow = false;
};

struct AnalysisResult {
  /// min_gas when no successful terminator is reachable at all: every
  /// execution fails, so no finite budget can help.
  static constexpr std::uint64_t kNoSuccessfulPath = ~0ull;

  Verdict verdict = Verdict::kUnknown;
  RejectReason reject_reason = RejectReason::kNone;
  std::uint32_t reject_pc = 0;  // meaningful when verdict == kReject

  std::vector<bool> jumpdests;  // what the interpreter consumes per frame

  /// Lower bound on gas consumed by any execution that ends in a successful
  /// terminator (STOP/RETURN/SELFDESTRUCT/implicit stop). A call whose
  /// budget is below this cannot succeed.
  std::uint64_t min_gas = 0;

  Cfg cfg;
  std::vector<BlockFacts> facts;  // parallel to cfg.blocks

  // CFG summary counters (also what the CLI prints).
  std::uint32_t reachable_blocks = 0;
  std::uint32_t unknown_jump_blocks = 0;
  bool reachable_truncated_push = false;
  bool reachable_invalid = false;  // INVALID or undefined opcode reachable

  /// Storage access summary (rwset.hpp): symbolic SLOAD/SSTORE keys and
  /// balance touches, or ⊤ when a key can't be bounded. Cached with the rest
  /// of the result under the code hash, so schedule-time resolution is a
  /// cache hit per (code, tx) pair.
  StorageSummary storage;

  /// Frame-local summary with explicit CALL/STATICCALL/DELEGATECALL sites —
  /// the per-contract input of interprocedural composition (interproc.hpp).
  FrameSummary frame;

  /// Order-stable FNV-1a digest of the verdict, bitmap, min-gas and every
  /// per-block fact — what the fuzz harness compares across runs.
  std::uint64_t fingerprint() const;
};

/// Full pipeline: disassemble, build the CFG, run the fixpoint, derive the
/// verdict and min-gas. Total and deterministic for arbitrary input bytes.
AnalysisResult analyze(BytesView code);

/// Cheapest successful execution over the CFG: Dijkstra on block static-gas
/// lower bounds with the computed-jump hub edge class. `extra_block_gas`
/// (parallel to cfg.blocks, when given) adds a per-block surcharge — the
/// interprocedural layer charges guarded resolved call sites the callee's
/// own min-gas there. A surcharge of AnalysisResult::kNoSuccessfulPath
/// marks the block unusable on any successful path (the guarded callee can
/// never succeed). Returns kNoSuccessfulPath when no successful terminator
/// is reachable.
std::uint64_t min_success_gas(
    const Cfg& cfg, const std::vector<std::uint64_t>* extra_block_gas = nullptr);

}  // namespace srbb::evm::analysis
