// Keccak-code-hash-keyed cache of AnalysisResults, shared by the interpreter
// (per-frame jumpdest bitmaps), eager validation (min-gas gate) and
// CREATE-time code validation. One contract is analyzed once per process
// instead of once per call frame.
//
// Thread model: the parallel executor runs EVM frames from worker threads
// against one global cache, so every access takes the mutex — the map is
// read-mostly and the critical section is a lookup, so contention is not a
// concern at the scales this repo simulates. Results are immutable
// shared_ptrs, safe to hold outside the lock.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "common/bytes.hpp"
#include "evm/analysis/analysis.hpp"

namespace srbb::obs {
class MetricsRegistry;
class Counter;
}  // namespace srbb::obs

namespace srbb::evm::analysis {

class AnalysisCache {
 public:
  /// Bounded: once full, new results are returned but not retained, which
  /// keeps behaviour deterministic (no eviction order to get wrong).
  explicit AnalysisCache(std::size_t max_entries = 1024)
      : max_entries_(max_entries) {}

  /// Process-wide instance: the default every Evm consults.
  static AnalysisCache& global();

  /// Result for `code`, keyed by its (caller-provided) keccak256 — the state
  /// layer memoizes that hash, so the hit path never rehashes the code.
  std::shared_ptr<const AnalysisResult> get(const Hash32& code_keccak,
                                            BytesView code);

  /// Convenience for callers without a memoized hash (CREATE init code).
  std::shared_ptr<const AnalysisResult> get(BytesView code);

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t size() const;
  void clear();

  /// Publish hit/miss counts as `analysis.cache.hit` / `analysis.cache.miss`
  /// counters. Pass nullptr to detach. Counter increments happen under the
  /// cache mutex, so the registry totals reconcile exactly with hits()/
  /// misses() once the workers are quiesced.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  mutable std::mutex mu_;
  std::size_t max_entries_;
  std::map<Hash32, std::shared_ptr<const AnalysisResult>> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  obs::Counter* hit_counter_ = nullptr;
  obs::Counter* miss_counter_ = nullptr;
};

}  // namespace srbb::evm::analysis
