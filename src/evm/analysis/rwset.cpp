#include "evm/analysis/rwset.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "common/invariant.hpp"
#include "crypto/keccak.hpp"
#include "evm/analysis/analysis.hpp"
#include "evm/opcodes.hpp"

namespace srbb::evm::analysis {

const char* to_string(SymClass c) {
  switch (c) {
    case SymClass::kConst: return "const";
    case SymClass::kCalldata: return "calldata";
    case SymClass::kCaller: return "caller";
    case SymClass::kSelf: return "self";
    case SymClass::kCallvalue: return "callvalue";
    case SymClass::kOrigin: return "origin";
    case SymClass::kKeccak: return "keccak";
    case SymClass::kUnknown: return "unknown";
  }
  return "unknown";
}

bool SymExpr::resolvable() const {
  if (cls == SymClass::kUnknown) return false;
  for (const SymExpr& c : children) {
    if (!c.resolvable()) return false;
  }
  return true;
}

std::size_t SymExpr::node_count() const {
  std::size_t n = 1;
  for (const SymExpr& c : children) n += c.node_count();
  return n;
}

int SymExpr::compare(const SymExpr& a, const SymExpr& b) {
  if (a.cls != b.cls) return a.cls < b.cls ? -1 : 1;
  switch (a.cls) {
    case SymClass::kConst:
      if (a.constant == b.constant) return 0;
      return a.constant < b.constant ? -1 : 1;
    case SymClass::kCalldata:
      if (a.calldata_offset == b.calldata_offset) return 0;
      return a.calldata_offset < b.calldata_offset ? -1 : 1;
    case SymClass::kKeccak: {
      const std::size_t n = std::min(a.children.size(), b.children.size());
      for (std::size_t i = 0; i < n; ++i) {
        const int c = compare(a.children[i], b.children[i]);
        if (c != 0) return c;
      }
      if (a.children.size() == b.children.size()) return 0;
      return a.children.size() < b.children.size() ? -1 : 1;
    }
    default:
      return 0;  // payload-free leaves
  }
}

std::string to_string(const SymExpr& e) {
  switch (e.cls) {
    case SymClass::kConst: {
      // Compact hex for small constants, full hex otherwise.
      std::string hex = e.constant.to_hex();
      return hex;
    }
    case SymClass::kCalldata:
      return "calldata[" + std::to_string(e.calldata_offset) + "]";
    case SymClass::kCaller: return "caller";
    case SymClass::kSelf: return "self";
    case SymClass::kCallvalue: return "callvalue";
    case SymClass::kOrigin: return "origin";
    case SymClass::kKeccak: {
      std::string out = "keccak(";
      for (std::size_t i = 0; i < e.children.size(); ++i) {
        if (i != 0) out += ", ";
        out += to_string(e.children[i]);
      }
      out += ")";
      return out;
    }
    case SymClass::kUnknown: return "unknown";
  }
  return "unknown";
}

std::optional<U256> resolve(const SymExpr& e, const ResolveContext& ctx) {
  switch (e.cls) {
    case SymClass::kConst:
      return e.constant;
    case SymClass::kCalldata: {
      // Interpreter CALLDATALOAD semantics: zero-padded 32-byte slice.
      std::uint8_t word[32] = {};
      if (e.calldata_offset < ctx.calldata.size()) {
        const std::size_t available =
            std::min<std::size_t>(32, ctx.calldata.size() - e.calldata_offset);
        std::copy_n(ctx.calldata.data() + e.calldata_offset, available, word);
      }
      return U256::from_be(BytesView{word, 32});
    }
    case SymClass::kCaller:
      return U256::from_be(ctx.caller.view());
    case SymClass::kSelf:
      return U256::from_be(ctx.self.view());
    case SymClass::kCallvalue:
      return ctx.callvalue;
    case SymClass::kOrigin:
      return U256::from_be(ctx.caller.view());
    case SymClass::kKeccak: {
      // SHA3 over the children's contiguous memory image: big-endian words.
      Bytes buf;
      buf.reserve(e.children.size() * 32);
      for (const SymExpr& c : e.children) {
        const std::optional<U256> word = resolve(c, ctx);
        if (!word) return std::nullopt;
        const Bytes be = word->be_bytes();
        append(buf, BytesView{be.data(), be.size()});
      }
      return U256::from_be(crypto::Keccak256::hash(buf).view());
    }
    case SymClass::kUnknown:
      return std::nullopt;
  }
  return std::nullopt;
}

namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fold_expr(std::uint64_t h, const SymExpr& e) {
  h = fnv1a(h, static_cast<std::uint64_t>(e.cls));
  switch (e.cls) {
    case SymClass::kConst:
      for (const std::uint64_t limb : e.constant.limb) h = fnv1a(h, limb);
      break;
    case SymClass::kCalldata:
      h = fnv1a(h, e.calldata_offset);
      break;
    case SymClass::kKeccak:
      h = fnv1a(h, e.children.size());
      for (const SymExpr& c : e.children) h = fold_expr(h, c);
      break;
    default:
      break;
  }
  return h;
}

// --- Abstract interpretation ------------------------------------------------

// Budget and caps. All deterministic; every cap that loses information
// degrades to ⊤ or kUnknown, never to a silent miss.
constexpr std::size_t kMaxBlockVisits = 20'000;
constexpr std::size_t kMaxStackModel = 128;  // modeled stack-suffix length
constexpr std::size_t kMaxMemWords = 64;     // tracked constant-offset words
constexpr std::size_t kMaxKeccakWords = 4;   // hashed words per SHA3 node
constexpr std::size_t kMaxExprNodes = 24;    // SymExpr tree size cap

// Abstract machine state at a block boundary: the top suffix of the stack
// (values below the suffix are unknown) and 32-byte words written to
// constant byte offsets in memory. An absent memory entry reads as unknown —
// sound, because unknown only widens keys toward ⊤.
struct AbsState {
  std::vector<SymExpr> stack;
  std::map<std::uint64_t, SymExpr> mem;
};

/// Pointwise join toward kUnknown; stack suffixes align at the top and
/// truncate to the shorter one, memory keeps only entries equal on both
/// sides. Returns true when `into` changed.
bool join_into(AbsState& into, const AbsState& from) {
  bool changed = false;
  const std::size_t keep = std::min(into.stack.size(), from.stack.size());
  if (into.stack.size() != keep) {
    into.stack.erase(into.stack.begin(),
                     into.stack.end() - static_cast<std::ptrdiff_t>(keep));
    changed = true;
  }
  for (std::size_t i = 0; i < keep; ++i) {
    SymExpr& a = into.stack[into.stack.size() - 1 - i];
    const SymExpr& b = from.stack[from.stack.size() - 1 - i];
    if (!(a == b) && a.cls != SymClass::kUnknown) {
      a = SymExpr::unknown();
      changed = true;
    }
  }
  for (auto it = into.mem.begin(); it != into.mem.end();) {
    const auto other = from.mem.find(it->first);
    if (other == from.mem.end() || !(other->second == it->second)) {
      it = into.mem.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  return changed;
}

constexpr std::size_t kMaxCallSites = 32;       // modeled call sites
constexpr std::uint64_t kMaxCallInputBytes = 4096;  // tracked child calldata

class RwSetInterpreter {
 public:
  /// `frame == nullptr` runs the classic intraprocedural pass (calls are
  /// ⊤); with a frame, CALL/STATICCALL/DELEGATECALL record CallSites.
  explicit RwSetInterpreter(const Cfg& cfg, FrameSummary* frame = nullptr)
      : cfg_(cfg), frame_(frame) {}

  StorageSummary run() {
    StorageSummary sum;
    if (cfg_.blocks.empty()) return sum;
    std::vector<std::optional<AbsState>> entry(cfg_.blocks.size());
    std::vector<bool> queued(cfg_.blocks.size(), false);
    std::deque<std::uint32_t> work;
    entry[0] = AbsState{};
    work.push_back(0);
    queued[0] = true;

    const auto propagate = [&](std::uint32_t succ, const AbsState& out) {
      bool changed;
      if (!entry[succ]) {
        entry[succ] = out;
        changed = true;
      } else {
        changed = join_into(*entry[succ], out);
      }
      if (changed && !queued[succ]) {
        work.push_back(succ);
        queued[succ] = true;
      }
    };

    while (!work.empty()) {
      if (++sum.visited_blocks > kMaxBlockVisits) {
        sum.top = true;
        sum.budget_exhausted = true;
        break;
      }
      const std::uint32_t id = work.front();
      work.pop_front();
      queued[id] = false;
      const BasicBlock& b = cfg_.blocks[id];
      AbsState out = exec_block(b, *entry[id], sum);
      if (sum.top) break;  // ⊤ absorbs everything: no point refining further

      if (b.fallthrough) propagate(*b.fallthrough, out);
      if (b.jump_succ) propagate(*b.jump_succ, out);
      if (b.unknown_jump) {
        // Computed jump: the exit state may reach any JUMPDEST-led block.
        for (const std::uint32_t jd : cfg_.jumpdest_blocks) propagate(jd, out);
      }
    }

    finalize(sum.reads);
    finalize(sum.writes);
    finalize(sum.balance_reads);
    if (frame_ != nullptr) {
      for (auto& [pc, site] : site_map_) frame_->sites.push_back(std::move(site));
    }
    return sum;
  }

 private:
  static void finalize(std::vector<SymExpr>& v) {
    std::sort(v.begin(), v.end(), [](const SymExpr& a, const SymExpr& b) {
      return SymExpr::compare(a, b) < 0;
    });
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  static void record(std::vector<SymExpr>& list, const SymExpr& key,
                     StorageSummary& sum) {
    if (!key.resolvable() || key.node_count() > kMaxExprNodes) {
      sum.top = true;  // unbounded key: the access can land anywhere
      return;
    }
    list.push_back(key);
  }

  AbsState exec_block(const BasicBlock& b, AbsState st, StorageSummary& sum) {
    const auto pop = [&st]() -> SymExpr {
      if (st.stack.empty()) return SymExpr::unknown();  // below modeled suffix
      SymExpr e = std::move(st.stack.back());
      st.stack.pop_back();
      return e;
    };
    const auto push = [&st](SymExpr e) {
      st.stack.push_back(std::move(e));
      if (st.stack.size() > kMaxStackModel) {
        st.stack.erase(st.stack.begin());  // forget the deepest value
      }
    };
    const auto push_unknowns = [&](std::uint8_t n) {
      for (std::uint8_t i = 0; i < n; ++i) push(SymExpr::unknown());
    };
    // A byte write at [off, off+len) invalidates every tracked word it
    // overlaps. The upper bound saturates so offsets near 2^64 (unexecutable,
    // but reachable by the analysis on arbitrary bytes) still invalidate.
    const auto clobber = [&st](std::uint64_t off, std::uint64_t len) {
      const std::uint64_t lo = off >= 31 ? off - 31 : 0;
      const std::uint64_t last = off > ~0ull - (len - 1) ? ~0ull : off + len - 1;
      for (auto it = st.mem.lower_bound(lo);
           it != st.mem.end() && it->first <= last;) {
        it = st.mem.erase(it);
      }
    };

    for (std::uint32_t i = 0; i < b.instr_count && !sum.top; ++i) {
      const Instruction& ins = cfg_.instrs[b.first_instr + i];
      const std::uint8_t op = ins.opcode;
      const OpcodeInfo& info = opcode_info(op);

      if (is_push(op)) {
        push(SymExpr::make_const(ins.immediate));
        continue;
      }
      if (op >= 0x80 && op <= 0x8f) {  // DUPn
        const std::size_t n = static_cast<std::size_t>(op - 0x80) + 1;
        push(st.stack.size() >= n ? st.stack[st.stack.size() - n]
                                  : SymExpr::unknown());
        continue;
      }
      if (op >= 0x90 && op <= 0x9f) {  // SWAPn
        const std::size_t n = static_cast<std::size_t>(op - 0x90) + 1;
        if (st.stack.size() >= n + 1) {
          std::swap(st.stack.back(), st.stack[st.stack.size() - 1 - n]);
        } else if (!st.stack.empty()) {
          // Counterpart below the modeled suffix: the new top is unseen (and
          // the unmodeled slot silently absorbs our old top).
          st.stack.back() = SymExpr::unknown();
        }
        continue;
      }

      switch (static_cast<Opcode>(op)) {
        case Opcode::CALLER:
          push(SymExpr::make_leaf(SymClass::kCaller));
          break;
        case Opcode::ADDRESS:
          push(SymExpr::make_leaf(SymClass::kSelf));
          break;
        case Opcode::ORIGIN:
          push(SymExpr::make_leaf(SymClass::kOrigin));
          break;
        case Opcode::CALLVALUE:
          push(SymExpr::make_leaf(SymClass::kCallvalue));
          break;
        case Opcode::CALLDATALOAD: {
          const SymExpr off = pop();
          if (off.cls == SymClass::kConst && off.constant.fits_u64()) {
            push(SymExpr::make_calldata(off.constant.as_u64()));
          } else {
            push(SymExpr::unknown());
          }
          break;
        }
        case Opcode::PC:
          push(SymExpr::make_const(U256{ins.pc}));
          break;

        // Constant folding for the handful of ops that appear in slot
        // computations. Semantics must match the interpreter bit for bit —
        // a wrong fold would be a *silent* soundness miss.
        case Opcode::ADD:
        case Opcode::SUB:
        case Opcode::MUL:
        case Opcode::AND:
        case Opcode::OR:
        case Opcode::XOR:
        case Opcode::SHL:
        case Opcode::SHR: {
          const SymExpr a = pop(), bb = pop();
          if (a.cls == SymClass::kConst && bb.cls == SymClass::kConst) {
            push(SymExpr::make_const(
                fold_binop(static_cast<Opcode>(op), a.constant, bb.constant)));
          } else {
            push(SymExpr::unknown());
          }
          break;
        }
        case Opcode::NOT: {
          const SymExpr a = pop();
          push(a.cls == SymClass::kConst ? SymExpr::make_const(~a.constant)
                                         : SymExpr::unknown());
          break;
        }

        case Opcode::MLOAD: {
          const SymExpr off = pop();
          if (off.cls == SymClass::kConst && off.constant.fits_u64()) {
            const auto it = st.mem.find(off.constant.as_u64());
            push(it != st.mem.end() ? it->second : SymExpr::unknown());
          } else {
            push(SymExpr::unknown());
          }
          break;
        }
        case Opcode::MSTORE: {
          const SymExpr off = pop();
          SymExpr value = pop();
          if (off.cls == SymClass::kConst && off.constant.fits_u64()) {
            const std::uint64_t o = off.constant.as_u64();
            clobber(o, 32);
            st.mem[o] = std::move(value);
            if (st.mem.size() > kMaxMemWords) st.mem.clear();  // sound havoc
          } else {
            st.mem.clear();  // write anywhere: forget everything
          }
          break;
        }
        case Opcode::MSTORE8: {
          const SymExpr off = pop();
          pop();  // value
          if (off.cls == SymClass::kConst && off.constant.fits_u64()) {
            clobber(off.constant.as_u64(), 1);
          } else {
            st.mem.clear();
          }
          break;
        }
        case Opcode::CALLDATACOPY:
        case Opcode::CODECOPY:
        case Opcode::RETURNDATACOPY:
          pop();
          pop();
          pop();
          st.mem.clear();  // bulk memory write: havoc the model
          break;

        case Opcode::SHA3: {
          const SymExpr off = pop(), size = pop();
          push(eval_sha3(st, off, size));
          break;
        }

        case Opcode::SLOAD: {
          const SymExpr key = pop();
          record(sum.reads, key, sum);
          push(SymExpr::unknown());  // stored value is runtime state
          break;
        }
        case Opcode::SSTORE: {
          const SymExpr key = pop();
          pop();  // value
          record(sum.writes, key, sum);
          break;
        }
        case Opcode::BALANCE: {
          const SymExpr addr = pop();
          record(sum.balance_reads, addr, sum);
          push(SymExpr::unknown());
          break;
        }
        case Opcode::SELFBALANCE:
          record(sum.balance_reads, SymExpr::make_leaf(SymClass::kSelf), sum);
          push(SymExpr::unknown());
          break;

        // Message calls reach other accounts. The intraprocedural pass
        // degrades to ⊤; the frame pass records an explicit CallSite that
        // interproc.cpp composes against the callee's summary.
        case Opcode::CALL:
        case Opcode::DELEGATECALL:
        case Opcode::STATICCALL: {
          if (frame_ == nullptr) {
            sum.top = true;
            break;
          }
          const Opcode o = static_cast<Opcode>(op);
          CallSite site;
          site.pc = ins.pc;
          site.block = b.id;
          site.kind = o == Opcode::CALL          ? CallKind::kCall
                      : o == Opcode::STATICCALL ? CallKind::kStaticCall
                                                : CallKind::kDelegateCall;
          pop();  // gas (63/64 forwarding makes the child budget dynamic)
          site.target = pop();
          site.value = o == Opcode::CALL ? pop()
                                         : SymExpr::make_const(U256::zero());
          const SymExpr in_off = pop(), in_size = pop();
          const SymExpr out_off = pop(), out_size = pop();
          if (in_off.cls == SymClass::kConst && in_off.constant.fits_u64() &&
              in_size.cls == SymClass::kConst && in_size.constant.fits_u64() &&
              in_size.constant.as_u64() <= kMaxCallInputBytes &&
              in_off.constant.as_u64() <=
                  ~0ull - in_size.constant.as_u64()) {
            site.in_offset = in_off.constant.as_u64();
            site.in_size = in_size.constant.as_u64();
            site.args_tracked = true;
            for (const auto& [moff, word] : st.mem) {
              if (moff >= site.in_offset &&
                  moff < site.in_offset + site.in_size && word.resolvable()) {
                site.input_words.emplace_back(moff - site.in_offset, word);
              }
            }
          }
          site.guarded = call_is_guarded(b, i);
          // The out region is overwritten with (padded) return data.
          if (out_off.cls == SymClass::kConst && out_off.constant.fits_u64() &&
              out_size.cls == SymClass::kConst &&
              out_size.constant.fits_u64()) {
            if (out_size.constant.as_u64() > 0) {
              clobber(out_off.constant.as_u64(), out_size.constant.as_u64());
            }
          } else {
            st.mem.clear();
          }
          push(SymExpr::unknown());  // success flag
          record_site(site);
          break;
        }

        // Unbounded even interprocedurally (fresh code, account deletion,
        // foreign code reads feeding arbitrary state): always ⊤.
        case Opcode::CREATE:
        case Opcode::SELFDESTRUCT:
        case Opcode::EXTCODESIZE:
        case Opcode::EXTCODECOPY:
          sum.top = true;
          break;

        default:
          // Generic transfer: pop the operands, push unknowns.
          for (std::uint8_t p = 0; p < info.stack_in; ++p) pop();
          push_unknowns(info.stack_out);
          break;
      }
    }
    return st;
  }

  static U256 fold_binop(Opcode op, const U256& a, const U256& b) {
    switch (op) {
      case Opcode::ADD: return a + b;
      case Opcode::SUB: return a - b;
      case Opcode::MUL: return a * b;
      case Opcode::AND: return a & b;
      case Opcode::OR: return a | b;
      case Opcode::XOR: return a ^ b;
      case Opcode::SHL:
        return a.fits_u64() && a.as_u64() < 256
                   ? b << static_cast<unsigned>(a.as_u64())
                   : U256::zero();
      case Opcode::SHR:
        return a.fits_u64() && a.as_u64() < 256
                   ? b >> static_cast<unsigned>(a.as_u64())
                   : U256::zero();
      default:
        SRBB_CHECK(false);
        return U256::zero();
    }
  }

  /// keccak over [off, off+size): resolvable only for a constant range of
  /// whole tracked words. Anything else is an unknown *value* (not an
  /// access), so degrading to kUnknown here is sound on its own — it only
  /// becomes ⊤ if the result ends up keying an SLOAD/SSTORE/BALANCE.
  static SymExpr eval_sha3(const AbsState& st, const SymExpr& off,
                           const SymExpr& size) {
    if (off.cls != SymClass::kConst || size.cls != SymClass::kConst ||
        !off.constant.fits_u64() || !size.constant.fits_u64()) {
      return SymExpr::unknown();
    }
    const std::uint64_t o = off.constant.as_u64();
    const std::uint64_t n = size.constant.as_u64();
    if (n == 0 || n % 32 != 0 || n / 32 > kMaxKeccakWords ||
        o > ~0ull - n) {
      return SymExpr::unknown();
    }
    SymExpr out;
    out.cls = SymClass::kKeccak;
    for (std::uint64_t w = 0; w < n / 32; ++w) {
      const auto it = st.mem.find(o + w * 32);
      if (it == st.mem.end() || !it->second.resolvable()) {
        return SymExpr::unknown();
      }
      out.children.push_back(it->second);
    }
    if (out.node_count() > kMaxExprNodes) return SymExpr::unknown();
    return out;
  }

  /// True when every execution entering `id` ends the frame in failure:
  /// follow unconditional successors a few hops to REVERT/INVALID/undefined.
  bool block_fails(std::uint32_t id) const {
    for (int hops = 0; hops < 4; ++hops) {
      const BasicBlock& b = cfg_.blocks[id];
      switch (b.terminator) {
        case Terminator::kRevert:
        case Terminator::kInvalid:
        case Terminator::kUndefined:
          return true;
        case Terminator::kFallThrough:
          if (!b.fallthrough) return false;
          id = *b.fallthrough;
          break;
        case Terminator::kJump:
          if (b.unknown_jump || !b.jump_succ) return false;
          id = *b.jump_succ;
          break;
        default:
          return false;
      }
    }
    return false;
  }

  /// Syntactic success guard on the call at instruction index `i` of `b`:
  /// the flag feeds the block's terminating JUMPI and the failing branch
  /// provably reverts, so a successful caller implies a successful callee.
  /// Two compiler idioms:
  ///   A: CALL; ISZERO; PUSH fail; JUMPI    (taken branch fails)
  ///   B: CALL; PUSH ok; JUMPI; <revert...> (fallthrough fails)
  bool call_is_guarded(const BasicBlock& b, std::uint32_t i) const {
    if (b.terminator != Terminator::kJumpI || b.instr_count == 0) return false;
    const std::uint32_t last = b.instr_count - 1;  // the JUMPI
    const auto opcode_at = [&](std::uint32_t k) {
      return cfg_.instrs[b.first_instr + k].opcode;
    };
    if (i + 3 == last &&
        opcode_at(i + 1) == static_cast<std::uint8_t>(Opcode::ISZERO) &&
        is_push(opcode_at(i + 2)) && b.jump_succ) {
      return block_fails(*b.jump_succ);
    }
    if (i + 2 == last && is_push(opcode_at(i + 1)) && b.fallthrough) {
      return block_fails(*b.fallthrough);
    }
    return false;
  }

  /// One CallSite per pc; repeated visits under different abstract states
  /// join toward less precision so the site covers every path reaching it.
  void record_site(const CallSite& site) {
    auto it = site_map_.find(site.pc);
    if (it == site_map_.end()) {
      if (site_map_.size() >= kMaxCallSites) {
        frame_->sites_overflow = true;  // dropped site: composition must ⊤
        return;
      }
      site_map_.emplace(site.pc, site);
      return;
    }
    CallSite& old = it->second;
    if (!(old.target == site.target)) old.target = SymExpr::unknown();
    if (!(old.value == site.value)) old.value = SymExpr::unknown();
    if (!old.args_tracked || !site.args_tracked ||
        old.in_offset != site.in_offset || old.in_size != site.in_size) {
      old.args_tracked = false;
      old.input_words.clear();
    } else {
      std::vector<std::pair<std::uint64_t, SymExpr>> kept;
      for (const auto& [off, word] : old.input_words) {
        for (const auto& [noff, nword] : site.input_words) {
          if (noff == off && nword == word) {
            kept.emplace_back(off, word);
            break;
          }
        }
      }
      old.input_words = std::move(kept);
    }
  }

  const Cfg& cfg_;
  FrameSummary* frame_ = nullptr;
  std::map<std::uint32_t, CallSite> site_map_;  // pc -> joined site
};

}  // namespace

std::uint64_t StorageSummary::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a(h, (top ? 1u : 0u) | (budget_exhausted ? 2u : 0u));
  h = fnv1a(h, reads.size());
  for (const SymExpr& e : reads) h = fold_expr(h, e);
  h = fnv1a(h, writes.size());
  for (const SymExpr& e : writes) h = fold_expr(h, e);
  h = fnv1a(h, balance_reads.size());
  for (const SymExpr& e : balance_reads) h = fold_expr(h, e);
  return h;
}

StorageSummary infer_storage_summary(const Cfg& cfg) {
  return RwSetInterpreter{cfg}.run();
}

const char* to_string(CallKind k) {
  switch (k) {
    case CallKind::kCall: return "call";
    case CallKind::kStaticCall: return "staticcall";
    case CallKind::kDelegateCall: return "delegatecall";
  }
  return "call";
}

std::uint64_t FrameSummary::digest() const {
  std::uint64_t h = local.digest();
  h = fnv1a(h, sites_overflow ? 1u : 0u);
  h = fnv1a(h, sites.size());
  for (const CallSite& s : sites) {
    h = fnv1a(h, (static_cast<std::uint64_t>(s.pc) << 32) | s.block);
    h = fnv1a(h, static_cast<std::uint64_t>(s.kind) |
                     (s.guarded ? 0x100u : 0u) |
                     (s.args_tracked ? 0x200u : 0u));
    h = fold_expr(h, s.target);
    h = fold_expr(h, s.value);
    h = fnv1a(h, s.in_offset);
    h = fnv1a(h, s.in_size);
    h = fnv1a(h, s.input_words.size());
    for (const auto& [off, word] : s.input_words) {
      h = fnv1a(h, off);
      h = fold_expr(h, word);
    }
  }
  return h;
}

FrameSummary infer_frame_summary(const Cfg& cfg) {
  FrameSummary frame;
  frame.local = RwSetInterpreter{cfg, &frame}.run();
  return frame;
}

}  // namespace srbb::evm::analysis
