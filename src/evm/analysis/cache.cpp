#include "evm/analysis/cache.hpp"

#include "crypto/keccak.hpp"
#include "obs/metrics.hpp"

namespace srbb::evm::analysis {

AnalysisCache& AnalysisCache::global() {
  static AnalysisCache cache;
  return cache;
}

std::shared_ptr<const AnalysisResult> AnalysisCache::get(
    const Hash32& code_keccak, BytesView code) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(code_keccak);
    if (it != entries_.end()) {
      ++hits_;
      if (hit_counter_ != nullptr) hit_counter_->inc();
      return it->second;
    }
    ++misses_;
    if (miss_counter_ != nullptr) miss_counter_->inc();
  }
  // Analyze outside the lock: analysis is the expensive part and is
  // deterministic, so two racing misses produce identical results.
  auto result = std::make_shared<const AnalysisResult>(analyze(code));
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.size() < max_entries_) {
    // try_emplace keeps the first insert, so racing threads converge on one
    // shared instance.
    const auto [it, _] = entries_.try_emplace(code_keccak, result);
    return it->second;
  }
  return result;
}

std::shared_ptr<const AnalysisResult> AnalysisCache::get(BytesView code) {
  return get(crypto::Keccak256::hash(code), code);
}

std::uint64_t AnalysisCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t AnalysisCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t AnalysisCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void AnalysisCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

void AnalysisCache::set_metrics(obs::MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (registry == nullptr) {
    hit_counter_ = nullptr;
    miss_counter_ = nullptr;
    return;
  }
  hit_counter_ = &registry->counter("analysis.cache.hit");
  miss_counter_ = &registry->counter("analysis.cache.miss");
}

}  // namespace srbb::evm::analysis
