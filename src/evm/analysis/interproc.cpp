#include "evm/analysis/interproc.hpp"

#include <algorithm>

#include "evm/analysis/analysis.hpp"
#include "evm/precompiles.hpp"
#include "state/statedb.hpp"

namespace srbb::evm::analysis {

const char* to_string(ComposeBailout b) {
  switch (b) {
    case ComposeBailout::kNone: return "none";
    case ComposeBailout::kLocalTop: return "local-top";
    case ComposeBailout::kSitesOverflow: return "sites-overflow";
    case ComposeBailout::kUnknownTarget: return "unknown-target";
    case ComposeBailout::kValueTransfer: return "value-transfer";
    case ComposeBailout::kArgsUntracked: return "args-untracked";
    case ComposeBailout::kSubstitution: return "substitution";
    case ComposeBailout::kCycle: return "cycle";
    case ComposeBailout::kDepthBudget: return "depth-budget";
    case ComposeBailout::kFrameBudget: return "frame-budget";
    case ComposeBailout::kKeyBudget: return "key-budget";
  }
  return "none";
}

namespace {

constexpr std::uint32_t kMaxComposeDepth = 4;    // root = depth 0
constexpr std::uint32_t kMaxComposedFrames = 64;
constexpr std::size_t kMaxComposedKeys = 512;    // total keys across accounts
constexpr std::size_t kMaxSubstNodes = 48;       // expr growth cap

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fold_expr(std::uint64_t h, const SymExpr& e) {
  h = fnv1a(h, static_cast<std::uint64_t>(e.cls));
  switch (e.cls) {
    case SymClass::kConst:
      for (const std::uint64_t limb : e.constant.limb) h = fnv1a(h, limb);
      break;
    case SymClass::kCalldata:
      h = fnv1a(h, e.calldata_offset);
      break;
    case SymClass::kKeccak:
      h = fnv1a(h, e.children.size());
      for (const SymExpr& c : e.children) h = fold_expr(h, c);
      break;
    default:
      break;
  }
  return h;
}

/// Low 20 bytes of the constant target word — the interpreter's
/// address-from-word rule for call targets.
Address address_from_word(const U256& word) {
  const Bytes be = word.be_bytes();
  return Address{BytesView{be.data() + 12, 20}};
}

/// The 32-byte word an ADDRESS opcode would push for `addr` (the target
/// word with its high 12 bytes masked off).
SymExpr masked_address_word(const Address& addr) {
  return SymExpr::make_const(U256::from_be(addr.view()));
}

bool expr_less(const SymExpr& a, const SymExpr& b) {
  return SymExpr::compare(a, b) < 0;
}

void finalize_exprs(std::vector<SymExpr>& v) {
  std::sort(v.begin(), v.end(), expr_less);
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

/// A frame's composed contribution, in that frame's own symbols; the caller
/// substitutes per call site. min_gas is valid independently of `top`.
struct FrameOut {
  bool top = false;
  ComposeBailout bailout = ComposeBailout::kNone;
  std::uint32_t bailout_pc = 0;
  std::vector<AccountAccess> accesses;
  std::vector<SymExpr> balance_reads;
  std::uint64_t min_gas = 0;
};

class Composer {
 public:
  Composer(const state::StateView& db, AnalysisCache& analyses,
           ComposedSummary& out)
      : db_(db), analyses_(analyses), out_(out) {}

  FrameOut compose_frame(const Hash32& code_keccak, BytesView code,
                         std::uint32_t depth) {
    FrameOut r;
    if (++out_.frames > kMaxComposedFrames) {
      set_top(r, ComposeBailout::kFrameBudget, 0);
      return r;  // min_gas 0: still a sound lower bound
    }
    // On the visiting stack for the whole frame so self-calls are cycles too.
    visiting_.push_back(code_keccak);
    const std::shared_ptr<const AnalysisResult> analysis =
        analyses_.get(code_keccak, code);
    const FrameSummary& frame = analysis->frame;
    r.min_gas = analysis->min_gas;

    if (frame.local.top) {
      set_top(r, ComposeBailout::kLocalTop, 0);
    } else {
      AccountAccess self;
      self.account = SymExpr::make_leaf(SymClass::kSelf);
      self.reads = frame.local.reads;
      self.writes = frame.local.writes;
      if (!self.reads.empty() || !self.writes.empty()) {
        r.accesses.push_back(std::move(self));
      }
      r.balance_reads = frame.local.balance_reads;
    }
    if (frame.sites_overflow) {
      set_top(r, ComposeBailout::kSitesOverflow, 0);
    }

    std::vector<std::uint64_t> extra(analysis->cfg.blocks.size(), 0);
    bool any_extra = false;
    // A guarded site whose resolved callee needs at least `child_min` gas to
    // succeed charges that onto the caller block: caller success implies the
    // callee succeeded there. kNoSuccessfulPath marks the block doomed.
    const auto charge = [&](const CallSite& site, std::uint64_t child_min) {
      if (!site.guarded || child_min == 0) return;
      constexpr std::uint64_t kInf = AnalysisResult::kNoSuccessfulPath;
      std::uint64_t& slot = extra[site.block];
      slot = slot > kInf - child_min ? kInf : slot + child_min;
      any_extra = true;
    };

    for (const CallSite& site : frame.sites) {
      if (site.target.cls != SymClass::kConst) {
        ++out_.unknown_target_sites;
        set_top(r, ComposeBailout::kUnknownTarget, site.pc);
        continue;  // an unknown callee adds no *guaranteed* gas: no charge
      }
      const Address callee = address_from_word(site.target.constant);

      CallEdge edge;
      edge.pc = site.pc;
      edge.depth = depth + 1;
      edge.kind = site.kind;
      edge.callee = callee;

      if (!(site.value.cls == SymClass::kConst &&
            site.value.constant == U256::zero())) {
        set_top(r, ComposeBailout::kValueTransfer, site.pc);
      }

      // DELEGATECALL runs the *code at* the address — for precompile
      // addresses that is empty code (precompiles.hpp's documented
      // divergence), so only plain/static calls take the precompile path.
      if (site.kind != CallKind::kDelegateCall && is_precompile(callee)) {
        edge.precompile = true;
        out_.edges.push_back(edge);
        continue;  // no state touches; precompile gas is not a static bound
      }
      const Bytes& callee_code = db_.code(callee);
      if (callee_code.empty()) {
        edge.empty_code = true;
        out_.edges.push_back(edge);
        continue;  // implicit success touching nothing
      }
      const Hash32 callee_keccak = db_.code_keccak(callee);
      edge.code_keccak = callee_keccak;
      out_.edges.push_back(edge);
      out_.max_depth = std::max(out_.max_depth, depth + 1);

      const BytesView callee_view{callee_code.data(), callee_code.size()};
      if (std::find(visiting_.begin(), visiting_.end(), callee_keccak) !=
          visiting_.end()) {
        set_top(r, ComposeBailout::kCycle, site.pc);
        // No recursion, but the callee's own intraprocedural minimum still
        // lower-bounds a successful child frame.
        charge(site, analyses_.get(callee_keccak, callee_view)->min_gas);
        continue;
      }
      if (depth + 1 >= kMaxComposeDepth) {
        set_top(r, ComposeBailout::kDepthBudget, site.pc);
        charge(site, analyses_.get(callee_keccak, callee_view)->min_gas);
        continue;
      }

      const FrameOut child = compose_frame(callee_keccak, callee_view, depth + 1);
      charge(site, child.min_gas);

      if (child.top) {
        set_top(r, child.bailout, site.pc);  // propagate the root cause
        continue;
      }
      if (r.top) continue;  // rw already ⊤; only min-gas is still refined
      if (!site.args_tracked) {
        set_top(r, ComposeBailout::kArgsUntracked, site.pc);
        continue;
      }
      if (!splice_child(r, child, site)) {
        // splice_child already set the reason (substitution/key budget)
        continue;
      }
    }

    if (any_extra) {
      r.min_gas = std::max(r.min_gas, min_success_gas(analysis->cfg, &extra));
    }
    visiting_.pop_back();
    return r;
  }

 private:
  void set_top(FrameOut& r, ComposeBailout why, std::uint32_t pc) {
    if (r.top) return;  // first reason wins
    r.top = true;
    r.bailout = why == ComposeBailout::kNone ? ComposeBailout::kLocalTop : why;
    r.bailout_pc = pc;
    r.accesses.clear();
    r.balance_reads.clear();
  }

  /// Re-base `e` from the callee frame into the caller frame through `site`.
  /// nullopt = not representable (composition must ⊤).
  std::optional<SymExpr> subst(const SymExpr& e, const CallSite& site) const {
    switch (e.cls) {
      case SymClass::kConst:
      case SymClass::kOrigin:  // tx-global
        return e;
      case SymClass::kUnknown:
        return std::nullopt;
      case SymClass::kCaller:
        // Child's CALLER is the calling frame's self — except DELEGATECALL,
        // which keeps the parent's caller.
        return site.kind == CallKind::kDelegateCall
                   ? e
                   : SymExpr::make_leaf(SymClass::kSelf);
      case SymClass::kSelf:
        return site.kind == CallKind::kDelegateCall
                   ? e
                   : masked_address_word(address_from_word(site.target.constant));
      case SymClass::kCallvalue:
        if (site.kind == CallKind::kDelegateCall) return e;  // inherited
        if (site.kind == CallKind::kStaticCall) {
          return SymExpr::make_const(U256::zero());
        }
        return site.value.cls == SymClass::kConst ? std::make_optional(site.value)
                                                  : std::nullopt;
      case SymClass::kCalldata: {
        if (!site.args_tracked) return std::nullopt;
        const std::uint64_t o = e.calldata_offset;
        if (o >= site.in_size) {
          return SymExpr::make_const(U256::zero());  // zero-padded load
        }
        if (site.in_size - o < 32) return std::nullopt;  // straddles the end
        for (const auto& [off, word] : site.input_words) {
          if (off == o) return word;
        }
        return std::nullopt;  // callee reads an untracked caller word
      }
      case SymClass::kKeccak: {
        SymExpr out;
        out.cls = SymClass::kKeccak;
        for (const SymExpr& c : e.children) {
          std::optional<SymExpr> sc = subst(c, site);
          if (!sc) return std::nullopt;
          out.children.push_back(std::move(*sc));
        }
        if (out.node_count() > kMaxSubstNodes) return std::nullopt;
        return out;
      }
    }
    return std::nullopt;
  }

  AccountAccess& account_slot(std::vector<AccountAccess>& accesses,
                              const SymExpr& account) {
    for (AccountAccess& aa : accesses) {
      if (SymExpr::compare(aa.account, account) == 0) return aa;
    }
    accesses.emplace_back();
    accesses.back().account = account;
    return accesses.back();
  }

  /// Substitute the child's accesses through `site` and merge them into the
  /// caller frame. Returns false after setting an explicit bailout.
  bool splice_child(FrameOut& r, const FrameOut& child, const CallSite& site) {
    const auto bail = [&](ComposeBailout why) {
      set_top(r, why, site.pc);
      return false;
    };
    for (const AccountAccess& aa : child.accesses) {
      const std::optional<SymExpr> account = subst(aa.account, site);
      if (!account) return bail(ComposeBailout::kSubstitution);
      AccountAccess& into = account_slot(r.accesses, *account);
      for (const SymExpr& e : aa.reads) {
        const std::optional<SymExpr> key = subst(e, site);
        if (!key) return bail(ComposeBailout::kSubstitution);
        into.reads.push_back(std::move(*key));
        if (++total_keys_ > kMaxComposedKeys) {
          return bail(ComposeBailout::kKeyBudget);
        }
      }
      for (const SymExpr& e : aa.writes) {
        const std::optional<SymExpr> key = subst(e, site);
        if (!key) return bail(ComposeBailout::kSubstitution);
        into.writes.push_back(std::move(*key));
        if (++total_keys_ > kMaxComposedKeys) {
          return bail(ComposeBailout::kKeyBudget);
        }
      }
    }
    for (const SymExpr& e : child.balance_reads) {
      const std::optional<SymExpr> addr = subst(e, site);
      if (!addr) return bail(ComposeBailout::kSubstitution);
      r.balance_reads.push_back(std::move(*addr));
    }
    return true;
  }

  const state::StateView& db_;
  AnalysisCache& analyses_;
  ComposedSummary& out_;
  std::vector<Hash32> visiting_;  // code-hash stack for cycle detection
  std::size_t total_keys_ = 0;
};

}  // namespace

std::uint64_t ComposedSummary::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint8_t byte : root_code_keccak.data) h = fnv1a(h, byte);
  h = fnv1a(h, (top ? 1u : 0u) | (static_cast<std::uint64_t>(bailout) << 8));
  h = fnv1a(h, bailout_pc);
  h = fnv1a(h, min_gas);
  h = fnv1a(h, (static_cast<std::uint64_t>(frames) << 32) | max_depth);
  h = fnv1a(h, unknown_target_sites);
  h = fnv1a(h, accesses.size());
  for (const AccountAccess& aa : accesses) {
    h = fold_expr(h, aa.account);
    h = fnv1a(h, aa.reads.size());
    for (const SymExpr& e : aa.reads) h = fold_expr(h, e);
    h = fnv1a(h, aa.writes.size());
    for (const SymExpr& e : aa.writes) h = fold_expr(h, e);
  }
  h = fnv1a(h, balance_reads.size());
  for (const SymExpr& e : balance_reads) h = fold_expr(h, e);
  h = fnv1a(h, edges.size());
  for (const CallEdge& e : edges) {
    h = fnv1a(h, (static_cast<std::uint64_t>(e.pc) << 32) | e.depth);
    h = fnv1a(h, static_cast<std::uint64_t>(e.kind) |
                     (e.precompile ? 0x100u : 0u) |
                     (e.empty_code ? 0x200u : 0u));
    for (const std::uint8_t byte : e.callee.data) h = fnv1a(h, byte);
    for (const std::uint8_t byte : e.code_keccak.data) h = fnv1a(h, byte);
  }
  return h;
}

ComposedSummary compose_summary(const state::StateView& db, const Address& root,
                                AnalysisCache& analyses) {
  ComposedSummary out;
  const Bytes& code = db.code(root);
  if (code.empty()) return out;  // empty code: succeeds touching nothing
  out.root_code_keccak = db.code_keccak(root);

  Composer composer{db, analyses, out};
  FrameOut top_frame = composer.compose_frame(
      out.root_code_keccak, BytesView{code.data(), code.size()}, 0);

  out.top = top_frame.top;
  out.bailout = top_frame.bailout;
  out.bailout_pc = top_frame.bailout_pc;
  out.min_gas = top_frame.min_gas;
  if (!out.top) {
    out.accesses = std::move(top_frame.accesses);
    std::sort(out.accesses.begin(), out.accesses.end(),
              [](const AccountAccess& a, const AccountAccess& b) {
                return expr_less(a.account, b.account);
              });
    for (AccountAccess& aa : out.accesses) {
      finalize_exprs(aa.reads);
      finalize_exprs(aa.writes);
    }
    out.balance_reads = std::move(top_frame.balance_reads);
    finalize_exprs(out.balance_reads);
  }
  return out;
}

InterprocCache::InterprocCache(std::size_t max_roots) : max_roots_(max_roots) {}

InterprocCache& InterprocCache::global() {
  static InterprocCache cache;
  return cache;
}

std::shared_ptr<const ComposedSummary> InterprocCache::get(
    const state::StateView& db, const Address& addr, AnalysisCache& analyses) {
  const Bytes& code = db.code(addr);
  if (code.empty()) {
    static const std::shared_ptr<const ComposedSummary> kEmpty =
        std::make_shared<const ComposedSummary>();
    return kEmpty;
  }
  const Hash32 root = db.code_keccak(addr);

  // A cached variant is valid iff every resolved edge still holds the code
  // recorded at composition time — the "(caller hash, callee hash set)" key.
  const auto valid_against = [&db](const ComposedSummary& s) {
    for (const CallEdge& e : s.edges) {
      if (e.precompile) continue;
      if (e.empty_code) {
        if (!db.code(e.callee).empty()) return false;
      } else if (!(db.code_keccak(e.callee) == e.code_keccak)) {
        return false;
      }
    }
    return true;
  };

  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(root);
    if (it != entries_.end()) {
      for (const auto& candidate : it->second) {
        if (valid_against(*candidate)) {
          ++hits_;
          return candidate;
        }
      }
    }
  }

  // Compose outside the lock: it may analyze several contracts.
  auto composed =
      std::make_shared<const ComposedSummary>(compose_summary(db, addr, analyses));

  std::lock_guard<std::mutex> lock(mu_);
  ++misses_;
  auto it = entries_.find(root);
  if (it == entries_.end()) {
    if (entries_.size() >= max_roots_) return composed;  // full: don't cache
    it = entries_.emplace(root, std::vector<std::shared_ptr<const ComposedSummary>>{})
             .first;
  }
  // Another thread may have inserted an equivalent variant meanwhile; the
  // result is deterministic either way, so just bound the variant list.
  constexpr std::size_t kMaxVariantsPerRoot = 4;
  if (it->second.size() >= kMaxVariantsPerRoot) it->second.erase(it->second.begin());
  it->second.push_back(composed);
  return composed;
}

std::uint64_t InterprocCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t InterprocCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t InterprocCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [hash, variants] : entries_) n += variants.size();
  return n;
}

void InterprocCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace srbb::evm::analysis
