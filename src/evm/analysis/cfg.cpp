#include <algorithm>

#include "common/invariant.hpp"
#include "evm/analysis/analysis.hpp"
#include "evm/opcodes.hpp"

namespace srbb::evm::analysis {

const char* to_string(Terminator t) {
  switch (t) {
    case Terminator::kFallThrough: return "fallthrough";
    case Terminator::kJump: return "jump";
    case Terminator::kJumpI: return "jumpi";
    case Terminator::kStop: return "stop";
    case Terminator::kReturn: return "return";
    case Terminator::kRevert: return "revert";
    case Terminator::kSelfdestruct: return "selfdestruct";
    case Terminator::kInvalid: return "invalid";
    case Terminator::kUndefined: return "undefined";
    case Terminator::kFallOffEnd: return "fall-off-end";
  }
  return "unknown";
}

namespace {

bool ends_block(std::uint8_t op) {
  if (!opcode_info(op).defined) return true;
  switch (static_cast<Opcode>(op)) {
    case Opcode::JUMP:
    case Opcode::JUMPI:
    case Opcode::STOP:
    case Opcode::RETURN:
    case Opcode::REVERT:
    case Opcode::SELFDESTRUCT:
    case Opcode::INVALID:
      return true;
    default:
      return false;
  }
}

Terminator terminator_for(std::uint8_t op) {
  if (!opcode_info(op).defined) return Terminator::kUndefined;
  switch (static_cast<Opcode>(op)) {
    case Opcode::JUMP: return Terminator::kJump;
    case Opcode::JUMPI: return Terminator::kJumpI;
    case Opcode::STOP: return Terminator::kStop;
    case Opcode::RETURN: return Terminator::kReturn;
    case Opcode::REVERT: return Terminator::kRevert;
    case Opcode::SELFDESTRUCT: return Terminator::kSelfdestruct;
    case Opcode::INVALID: return Terminator::kInvalid;
    default: return Terminator::kFallThrough;
  }
}

/// Walk one block's instructions, filling the stack-effect summary and
/// resolving the jump-target operand via constant tracking of the stack
/// suffix built inside the block (PUSH-before-JUMP is the idiom every
/// assembled contract uses). `sim` models only values whose origin is known;
/// anything inherited from before the block or produced by a computation is
/// an unknown.
void summarize_block(const std::vector<Instruction>& instrs, BasicBlock& b) {
  std::int32_t h = 0;
  std::int32_t needed = 0;
  std::int32_t peak = 0;
  std::vector<std::optional<U256>> sim;
  std::optional<U256> jump_operand;

  for (std::uint32_t i = 0; i < b.instr_count; ++i) {
    const Instruction& ins = instrs[b.first_instr + i];
    const std::uint8_t op = ins.opcode;
    const OpcodeInfo& info = opcode_info(op);
    if (ins.truncated) b.has_truncated_push = true;

    needed = std::max(needed, static_cast<std::int32_t>(info.stack_in) - h);
    h += static_cast<std::int32_t>(info.stack_out) -
         static_cast<std::int32_t>(info.stack_in);
    peak = std::max(peak, h);
    b.static_gas += info.base_gas;

    if (op == static_cast<std::uint8_t>(Opcode::JUMP) ||
        op == static_cast<std::uint8_t>(Opcode::JUMPI)) {
      if (!sim.empty()) jump_operand = sim.back();
    }

    if (is_push(op)) {
      sim.emplace_back(ins.immediate);
    } else if (op >= 0x80 && op <= 0x8f) {  // DUPn
      const std::size_t n = static_cast<std::size_t>(op - 0x80) + 1;
      sim.push_back(sim.size() >= n ? sim[sim.size() - n] : std::nullopt);
    } else if (op >= 0x90 && op <= 0x9f) {  // SWAPn
      const std::size_t n = static_cast<std::size_t>(op - 0x90) + 1;
      if (sim.size() >= n + 1) {
        std::swap(sim.back(), sim[sim.size() - 1 - n]);
      } else if (!sim.empty()) {
        // The counterpart lives below the modeled suffix: the new top is a
        // value we never saw.
        sim.back() = std::nullopt;
      }
    } else {
      for (std::uint8_t p = 0; p < info.stack_in && !sim.empty(); ++p) {
        sim.pop_back();
      }
      for (std::uint8_t p = 0; p < info.stack_out; ++p) {
        sim.emplace_back(std::nullopt);
      }
    }
  }

  b.needed = static_cast<std::uint32_t>(std::max(needed, 0));
  b.delta = h;
  b.peak = static_cast<std::uint32_t>(std::max(peak, 0));

  if ((b.terminator == Terminator::kJump ||
       b.terminator == Terminator::kJumpI)) {
    if (jump_operand.has_value()) {
      b.jump_resolved = true;
      if (jump_operand->fits_u64() &&
          jump_operand->as_u64() < (1ull << 32)) {
        b.jump_target = static_cast<std::uint32_t>(jump_operand->as_u64());
      } else {
        b.jump_target_invalid = true;  // cannot even be a code offset
      }
    } else {
      b.unknown_jump = true;
    }
  }
}

}  // namespace

std::optional<std::uint32_t> Cfg::block_at(std::uint32_t pc) const {
  const auto it = std::lower_bound(
      blocks.begin(), blocks.end(), pc,
      [](const BasicBlock& b, std::uint32_t p) { return b.start_pc < p; });
  if (it == blocks.end() || it->start_pc != pc) return std::nullopt;
  return it->id;
}

Cfg build_cfg(BytesView code) {
  Cfg cfg;
  cfg.instrs = disassemble_code(code);
  if (cfg.instrs.empty()) return cfg;
  const std::vector<bool> jumpdests = jumpdest_bitmap(code);

  // Leader detection: pc 0, every JUMPDEST, and every instruction after a
  // block-ending one (so even unreachable code is partitioned, which is what
  // lets the deployer's dead payload bytes be represented without being
  // reported).
  std::vector<bool> leader(cfg.instrs.size(), false);
  leader[0] = true;
  for (std::size_t i = 0; i < cfg.instrs.size(); ++i) {
    const Instruction& ins = cfg.instrs[i];
    if (ins.opcode == static_cast<std::uint8_t>(Opcode::JUMPDEST)) {
      leader[i] = true;
    }
    if (ends_block(ins.opcode) && i + 1 < cfg.instrs.size()) {
      leader[i + 1] = true;
    }
  }

  for (std::size_t i = 0; i < cfg.instrs.size();) {
    BasicBlock b;
    b.id = static_cast<std::uint32_t>(cfg.blocks.size());
    b.first_instr = static_cast<std::uint32_t>(i);
    b.start_pc = cfg.instrs[i].pc;
    std::size_t j = i;
    while (j + 1 < cfg.instrs.size() && !ends_block(cfg.instrs[j].opcode) &&
           !leader[j + 1]) {
      ++j;
    }
    b.instr_count = static_cast<std::uint32_t>(j - i + 1);
    const Instruction& last = cfg.instrs[j];
    b.end_pc = last.pc + 1 + last.imm_size;
    b.terminator = terminator_for(last.opcode);
    if (b.terminator == Terminator::kFallThrough &&
        b.end_pc >= code.size()) {
      b.terminator = Terminator::kFallOffEnd;  // implicit STOP
    }
    summarize_block(cfg.instrs, b);
    cfg.blocks.push_back(b);
    i = j + 1;
  }

  // Successor wiring. Blocks are contiguous in pc order, so the fallthrough
  // successor is always the next block.
  for (BasicBlock& b : cfg.blocks) {
    const bool has_next = static_cast<std::size_t>(b.id) + 1 < cfg.blocks.size();
    if (b.terminator == Terminator::kFallThrough) {
      SRBB_CHECK(has_next);
      b.fallthrough = b.id + 1;
    } else if (b.terminator == Terminator::kJumpI && has_next) {
      // JUMPI as the last instruction of the code: the not-taken path runs
      // off the end, an implicit-stop success handled by the analyzer.
      b.fallthrough = b.id + 1;
    }
    if (b.jump_resolved && !b.jump_target_invalid) {
      if (b.jump_target < code.size() && jumpdests[b.jump_target]) {
        b.jump_succ = cfg.block_at(b.jump_target);
        SRBB_CHECK(b.jump_succ.has_value());  // every JUMPDEST is a leader
      } else {
        b.jump_target_invalid = true;
      }
    }
    if (cfg.instrs[b.first_instr].opcode ==
        static_cast<std::uint8_t>(Opcode::JUMPDEST)) {
      cfg.jumpdest_blocks.push_back(b.id);
    }
  }
  return cfg;
}

}  // namespace srbb::evm::analysis
