// Interprocedural analysis (docs/ANALYSIS.md "Interprocedural composition",
// DESIGN.md §15): composes cached per-contract frame summaries (rwset.hpp)
// through statically resolved CALL/STATICCALL/DELEGATECALL edges into a
// whole-call-tree summary for a root contract *in a given state*.
//
// The product is a ComposedSummary:
//  - storage/balance accesses grouped by a *symbolic account word* — the
//    callee's own-storage accesses arrive as `kSelf` in its frame and the
//    per-site substitution re-binds them (CALL/STATICCALL: the constant
//    target address; DELEGATECALL: still the caller's self), so cross-frame
//    account attribution falls out of the same algebra as the keys;
//  - the resolved static call graph (CallEdge list) plus an explicit
//    unknown-target site count;
//  - a refined min-gas bound: guarded resolved call sites (CallSite::guarded)
//    charge the callee's own composed min-gas onto the caller block, because
//    caller success provably implies callee success there.
//
// Soundness contract, enforced by tests/test_interproc.cpp and
// fuzz_interproc: for every execution of the root code from a transaction
// entry, observed storage/balance accesses on ANY account resolve out of a
// non-⊤ composed summary, and a successful execution consumes at least
// `min_gas` (which stays valid even when the rw side is ⊤). Every bailout
// is an explicit ComposeBailout reason — there is no silent miss.
//
// The InterprocCache keys entries on (root code hash, resolved callee hash
// set): a cached summary is only served while every recorded edge still
// resolves to the same code in the queried state, so state code changes
// invalidate cleanly without an explicit flush.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/bytes.hpp"
#include "common/u256.hpp"
#include "evm/analysis/cache.hpp"
#include "evm/analysis/rwset.hpp"

namespace srbb::state {
class StateView;
}

namespace srbb::evm::analysis {

/// Why a composed summary degraded to ⊤ on the rw side. kNone iff !top.
enum class ComposeBailout : std::uint8_t {
  kNone = 0,
  kLocalTop,        // a frame's own summary is ⊤ (CREATE/SELFDESTRUCT/...)
  kSitesOverflow,   // more call sites than the frame model tracks
  kUnknownTarget,   // call target is not a compile-time constant address
  kValueTransfer,   // call forwards value: balance effects unmodeled
  kArgsUntracked,   // child calldata region not statically known
  kSubstitution,    // callee key reads calldata the caller didn't track
  kCycle,           // static call cycle between code hashes
  kDepthBudget,     // composed call depth exceeded the budget
  kFrameBudget,     // total composed frames exceeded the budget
  kKeyBudget,       // composed key count exceeded the budget
};

const char* to_string(ComposeBailout b);

/// Storage keys grouped by the symbolic account word that owns them, in the
/// root frame's symbols. Lists are sorted by SymExpr::compare and deduped;
/// writes are not folded into reads (resolvers do that, as with
/// StorageSummary).
struct AccountAccess {
  SymExpr account;
  std::vector<SymExpr> reads;
  std::vector<SymExpr> writes;
};

/// One statically resolved call edge (cache invalidation + CLI output).
struct CallEdge {
  std::uint32_t pc = 0;     // call-site pc within the calling frame
  std::uint32_t depth = 1;  // 1 = direct callee of the root
  CallKind kind = CallKind::kCall;
  Address callee;
  Hash32 code_keccak{};  // code hash seen at composition time (zero when
                         // precompile/empty_code)
  bool precompile = false;
  bool empty_code = false;
};

struct ComposedSummary {
  Hash32 root_code_keccak{};

  /// rw usability: when set, storage-access/balance lists are unusable and
  /// `bailout` names the first reason hit. `min_gas` stays valid regardless.
  bool top = false;
  ComposeBailout bailout = ComposeBailout::kNone;
  std::uint32_t bailout_pc = 0;

  std::vector<AccountAccess> accesses;  // sorted by account expr
  std::vector<SymExpr> balance_reads;

  std::vector<CallEdge> edges;  // discovery order (pc within each frame)
  std::uint32_t unknown_target_sites = 0;
  std::uint32_t frames = 0;     // composed frames, root included
  std::uint32_t max_depth = 0;  // deepest composed frame

  /// Lower bound on gas a successful root-frame execution consumes; always
  /// >= the intraprocedural bound, kNoSuccessfulPath when no execution can
  /// succeed (e.g. every entry guards a call into doomed code).
  std::uint64_t min_gas = 0;

  /// Order-stable FNV-1a digest (fuzz determinism checks).
  std::uint64_t digest() const;
};

/// Compose the summary for the code deployed at `root` in `db`, pulling
/// per-contract analyses from `analyses`. Deterministic for a fixed
/// (db code mapping, root); empty code yields the empty summary.
ComposedSummary compose_summary(const state::StateView& db, const Address& root,
                                AnalysisCache& analyses);

/// State-keyed wrapper around compose_summary — the only sanctioned path
/// from scheduler/validation code to callee summaries (lint rule
/// `interproc-bypass`). Entries are cached per root code hash; each stores
/// its resolved edge set and is served only while every edge's address still
/// holds the code hash recorded at composition time.
class InterprocCache {
 public:
  explicit InterprocCache(std::size_t max_roots = 512);

  /// Process-wide instance (mirrors AnalysisCache::global()).
  static InterprocCache& global();

  std::shared_ptr<const ComposedSummary> get(const state::StateView& db,
                                             const Address& addr,
                                             AnalysisCache& analyses);

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::size_t max_roots_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  // Per root hash: one variant per distinct resolved callee-code set seen.
  std::map<Hash32, std::vector<std::shared_ptr<const ComposedSummary>>>
      entries_;
};

}  // namespace srbb::evm::analysis
