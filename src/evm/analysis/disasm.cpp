#include <algorithm>

#include "evm/analysis/analysis.hpp"
#include "evm/opcodes.hpp"

namespace srbb::evm::analysis {

std::vector<bool> jumpdest_bitmap(BytesView code) {
  std::vector<bool> valid(code.size(), false);
  for (std::size_t pc = 0; pc < code.size();) {
    const std::uint8_t op = code[pc];
    if (op == static_cast<std::uint8_t>(Opcode::JUMPDEST)) valid[pc] = true;
    pc += 1 + immediate_size(op);
  }
  return valid;
}

std::vector<Instruction> disassemble_code(BytesView code) {
  std::vector<Instruction> out;
  out.reserve(code.size());
  for (std::size_t pc = 0; pc < code.size();) {
    Instruction ins;
    ins.pc = static_cast<std::uint32_t>(pc);
    ins.opcode = code[pc];
    const unsigned n = immediate_size(ins.opcode);
    if (n > 0) {
      ins.imm_size = static_cast<std::uint8_t>(n);
      const std::size_t available = code.size() - pc - 1;
      const std::size_t take = std::min<std::size_t>(n, available);
      ins.truncated = take < n;
      // Missing immediate bytes read as zero (right-padded), matching the
      // interpreter's PUSH decoding exactly.
      Bytes imm(code.begin() + static_cast<std::ptrdiff_t>(pc + 1),
                code.begin() + static_cast<std::ptrdiff_t>(pc + 1 + take));
      imm.resize(n, 0);
      ins.immediate = U256::from_be(imm);
    }
    out.push_back(ins);
    pc += 1 + n;
  }
  return out;
}

}  // namespace srbb::evm::analysis
