#include "evm/opcodes.hpp"

#include <array>
#include <string>
#include <unordered_map>

namespace srbb::evm {

namespace {

struct Table {
  std::array<OpcodeInfo, 256> info{};
  std::unordered_map<std::string, std::uint8_t> by_name;

  void set(Opcode op, std::string_view name, std::uint8_t in, std::uint8_t out,
           std::uint32_t gas) {
    const auto idx = static_cast<std::uint8_t>(op);
    info[idx] = OpcodeInfo{name, in, out, gas, true};
    by_name.emplace(std::string{name}, idx);
  }
};

Table build_table() {
  Table t;
  // Gas costs follow the Ethereum "Istanbul-ish" schedule in spirit; exact
  // parity is not required for the congestion study, relative costs are.
  t.set(Opcode::STOP, "STOP", 0, 0, 0);
  t.set(Opcode::ADD, "ADD", 2, 1, 3);
  t.set(Opcode::MUL, "MUL", 2, 1, 5);
  t.set(Opcode::SUB, "SUB", 2, 1, 3);
  t.set(Opcode::DIV, "DIV", 2, 1, 5);
  t.set(Opcode::SDIV, "SDIV", 2, 1, 5);
  t.set(Opcode::MOD, "MOD", 2, 1, 5);
  t.set(Opcode::SMOD, "SMOD", 2, 1, 5);
  t.set(Opcode::ADDMOD, "ADDMOD", 3, 1, 8);
  t.set(Opcode::MULMOD, "MULMOD", 3, 1, 8);
  t.set(Opcode::EXP, "EXP", 2, 1, 10);  // +50 per exponent byte, dynamic
  t.set(Opcode::SIGNEXTEND, "SIGNEXTEND", 2, 1, 5);

  t.set(Opcode::LT, "LT", 2, 1, 3);
  t.set(Opcode::GT, "GT", 2, 1, 3);
  t.set(Opcode::SLT, "SLT", 2, 1, 3);
  t.set(Opcode::SGT, "SGT", 2, 1, 3);
  t.set(Opcode::EQ, "EQ", 2, 1, 3);
  t.set(Opcode::ISZERO, "ISZERO", 1, 1, 3);
  t.set(Opcode::AND, "AND", 2, 1, 3);
  t.set(Opcode::OR, "OR", 2, 1, 3);
  t.set(Opcode::XOR, "XOR", 2, 1, 3);
  t.set(Opcode::NOT, "NOT", 1, 1, 3);
  t.set(Opcode::BYTE, "BYTE", 2, 1, 3);
  t.set(Opcode::SHL, "SHL", 2, 1, 3);
  t.set(Opcode::SHR, "SHR", 2, 1, 3);
  t.set(Opcode::SAR, "SAR", 2, 1, 3);

  t.set(Opcode::SHA3, "SHA3", 2, 1, 30);  // +6 per word, dynamic

  t.set(Opcode::ADDRESS, "ADDRESS", 0, 1, 2);
  t.set(Opcode::BALANCE, "BALANCE", 1, 1, 100);
  t.set(Opcode::ORIGIN, "ORIGIN", 0, 1, 2);
  t.set(Opcode::CALLER, "CALLER", 0, 1, 2);
  t.set(Opcode::CALLVALUE, "CALLVALUE", 0, 1, 2);
  t.set(Opcode::CALLDATALOAD, "CALLDATALOAD", 1, 1, 3);
  t.set(Opcode::CALLDATASIZE, "CALLDATASIZE", 0, 1, 2);
  t.set(Opcode::CALLDATACOPY, "CALLDATACOPY", 3, 0, 3);  // +3 per word
  t.set(Opcode::CODESIZE, "CODESIZE", 0, 1, 2);
  t.set(Opcode::CODECOPY, "CODECOPY", 3, 0, 3);  // +3 per word
  t.set(Opcode::GASPRICE, "GASPRICE", 0, 1, 2);
  t.set(Opcode::EXTCODESIZE, "EXTCODESIZE", 1, 1, 100);
  t.set(Opcode::EXTCODECOPY, "EXTCODECOPY", 4, 0, 100);  // +3 per word
  t.set(Opcode::RETURNDATASIZE, "RETURNDATASIZE", 0, 1, 2);
  t.set(Opcode::RETURNDATACOPY, "RETURNDATACOPY", 3, 0, 3);  // +3 per word

  t.set(Opcode::BLOCKHASH, "BLOCKHASH", 1, 1, 20);
  t.set(Opcode::COINBASE, "COINBASE", 0, 1, 2);
  t.set(Opcode::TIMESTAMP, "TIMESTAMP", 0, 1, 2);
  t.set(Opcode::NUMBER, "NUMBER", 0, 1, 2);
  t.set(Opcode::DIFFICULTY, "DIFFICULTY", 0, 1, 2);
  t.set(Opcode::GASLIMIT, "GASLIMIT", 0, 1, 2);
  t.set(Opcode::CHAINID, "CHAINID", 0, 1, 2);
  t.set(Opcode::SELFBALANCE, "SELFBALANCE", 0, 1, 5);

  t.set(Opcode::POP, "POP", 1, 0, 2);
  t.set(Opcode::MLOAD, "MLOAD", 1, 1, 3);
  t.set(Opcode::MSTORE, "MSTORE", 2, 0, 3);
  t.set(Opcode::MSTORE8, "MSTORE8", 2, 0, 3);
  t.set(Opcode::SLOAD, "SLOAD", 1, 1, 200);
  t.set(Opcode::SSTORE, "SSTORE", 2, 0, 0);  // fully dynamic
  t.set(Opcode::JUMP, "JUMP", 1, 0, 8);
  t.set(Opcode::JUMPI, "JUMPI", 2, 0, 10);
  t.set(Opcode::PC, "PC", 0, 1, 2);
  t.set(Opcode::MSIZE, "MSIZE", 0, 1, 2);
  t.set(Opcode::GAS, "GAS", 0, 1, 2);
  t.set(Opcode::JUMPDEST, "JUMPDEST", 0, 0, 1);

  for (int i = 0; i < 32; ++i) {
    const auto op = static_cast<std::uint8_t>(0x60 + i);
    t.info[op] = OpcodeInfo{"", 0, 1, 3, true};
    // Names registered below with owned storage.
  }
  for (int i = 0; i < 16; ++i) {
    const auto dup = static_cast<std::uint8_t>(0x80 + i);
    t.info[dup] =
        OpcodeInfo{"", static_cast<std::uint8_t>(i + 1),
                   static_cast<std::uint8_t>(i + 2), 3, true};
    const auto swap = static_cast<std::uint8_t>(0x90 + i);
    t.info[swap] =
        OpcodeInfo{"", static_cast<std::uint8_t>(i + 2),
                   static_cast<std::uint8_t>(i + 2), 3, true};
  }
  for (int i = 0; i <= 4; ++i) {
    const auto log = static_cast<std::uint8_t>(0xa0 + i);
    t.info[log] = OpcodeInfo{"", static_cast<std::uint8_t>(2 + i), 0,
                             static_cast<std::uint32_t>(375 + 375 * i), true};
  }

  t.set(Opcode::CREATE, "CREATE", 3, 1, 32000);
  t.set(Opcode::CALL, "CALL", 7, 1, 700);
  t.set(Opcode::RETURN, "RETURN", 2, 0, 0);
  t.set(Opcode::DELEGATECALL, "DELEGATECALL", 6, 1, 700);
  t.set(Opcode::STATICCALL, "STATICCALL", 6, 1, 700);
  t.set(Opcode::REVERT, "REVERT", 2, 0, 0);
  t.set(Opcode::INVALID, "INVALID", 0, 0, 0);
  t.set(Opcode::SELFDESTRUCT, "SELFDESTRUCT", 1, 0, 5000);

  // Register families with owned names so string_views stay valid.
  static std::array<std::string, 32> push_names;
  static std::array<std::string, 16> dup_names;
  static std::array<std::string, 16> swap_names;
  static std::array<std::string, 5> log_names;
  for (int i = 0; i < 32; ++i) {
    push_names[i] = "PUSH" + std::to_string(i + 1);
    const auto op = static_cast<std::uint8_t>(0x60 + i);
    t.info[op].name = push_names[i];
    t.by_name.emplace(push_names[i], op);
  }
  for (int i = 0; i < 16; ++i) {
    dup_names[i] = "DUP" + std::to_string(i + 1);
    swap_names[i] = "SWAP" + std::to_string(i + 1);
    const auto dup = static_cast<std::uint8_t>(0x80 + i);
    const auto swap = static_cast<std::uint8_t>(0x90 + i);
    t.info[dup].name = dup_names[i];
    t.info[swap].name = swap_names[i];
    t.by_name.emplace(dup_names[i], dup);
    t.by_name.emplace(swap_names[i], swap);
  }
  for (int i = 0; i <= 4; ++i) {
    log_names[i] = "LOG" + std::to_string(i);
    const auto log = static_cast<std::uint8_t>(0xa0 + i);
    t.info[log].name = log_names[i];
    t.by_name.emplace(log_names[i], log);
  }
  return t;
}

const Table& table() {
  static const Table t = build_table();
  return t;
}

}  // namespace

const OpcodeInfo& opcode_info(std::uint8_t opcode) {
  return table().info[opcode];
}

std::optional<std::uint8_t> opcode_by_name(std::string_view name) {
  const auto& by_name = table().by_name;
  const auto it = by_name.find(std::string{name});
  if (it == by_name.end()) return std::nullopt;
  return it->second;
}

}  // namespace srbb::evm
