// Canned DApp contracts written against the SRBB VM, mirroring the workloads
// the paper evaluates: a stock exchange (NASDAQ trace), a mobility service
// (Uber trace), a ticket shop (FIFA trace), plus a counter for quickstarts
// and a staking contract demonstrating the on-chain deposit used by committee
// membership (§IV-E).
//
// ABI convention: standard 4-byte keccak selectors followed by 32-byte
// big-endian arguments.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/u256.hpp"

namespace srbb::evm {

/// First 4 bytes of keccak256(signature), e.g. "trade(uint256,uint256,uint256)".
std::uint32_t selector(std::string_view signature);

/// selector ++ 32-byte big-endian args.
Bytes encode_call(std::uint32_t selector, const std::vector<U256>& args);
Bytes encode_call(std::string_view signature, const std::vector<U256>& args);

struct Contract {
  Bytes runtime_code;  // what lives at the account
  Bytes deploy_code;   // init code that returns runtime_code
};

/// Slot 0 counter: increment() / get().
const Contract& counter_contract();

/// Exchange DApp: trade(uint256 stockId, uint256 price, uint256 volume)
/// stores the last price, accumulates volume per stock and counts trades;
/// quote(uint256 stockId) and count() are views. Emits a Trade log per trade.
const Contract& exchange_contract();

/// Mobility DApp: ride(uint256 rideId, uint256 fare) records the fare,
/// accumulates total fares and counts rides; fareOf(uint256), totalFares(),
/// count() are views.
const Contract& mobility_contract();

/// Ticketing DApp: buy(uint256 matchId, uint256 seat) assigns the seat to the
/// caller or reverts if already sold; ownerOf(uint256,uint256) and sold() are
/// views.
const Contract& ticketing_contract();

/// Staking: deposit() payable credits the caller, stakeOf(uint256 addrWord)
/// and totalStake() are views.
const Contract& staking_contract();

/// Key-value store: put(uint256 key, uint256 value) writes
/// storage[keccak(key,0)]; get(uint256 key) is a view. Unlike the other
/// DApps there is no global stats slot, so puts under distinct keys touch
/// disjoint storage — the contention-free regime for the analysis-hinted
/// scheduler benchmarks.
const Contract& kvstore_contract();

/// ERC-20-style token: mint(uint256 toWord, uint256 amount),
/// transfer(uint256 toWord, uint256 amount) (reverts on insufficient
/// balance, emits a Transfer log), balanceOf(uint256 addrWord),
/// totalSupply(). Addresses are passed as 32-byte words.
const Contract& token_contract();

/// Two-contract router — the interprocedural-analysis workload. Parameterized
/// on the deployed addresses it forwards to:
///   rput(uint256 key, uint256 value)    — CALL kvstore.put(key, value)
///   rtransfer(uint256 to, uint256 amt)  — DELEGATECALL token.transfer(to, amt)
///                                         (balances live in *router* storage)
///   rget(uint256 key)                   — STATICCALL kvstore.get(key), returns
///                                         the word
/// Every call checks the success flag and reverts on failure (the guarded-call
/// idiom the min-gas composition credits). Child calldata is built at constant
/// memory offsets so the frame pass tracks every argument word.
Contract router_contract(const Address& kvstore_at, const Address& token_at);

}  // namespace srbb::evm
