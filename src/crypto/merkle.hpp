// Binary Merkle tree over 32-byte leaves with proof generation/verification.
// Used for block transaction roots and state-root summaries.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bytes.hpp"

namespace srbb::crypto {

/// Root of a Merkle tree whose leaves are already hashes. An odd node at any
/// level is paired with itself. Empty input hashes the empty string, so the
/// "no transactions" root is well defined.
Hash32 merkle_root(const std::vector<Hash32>& leaves);

struct MerkleProofStep {
  Hash32 sibling;
  bool sibling_on_left = false;
};

using MerkleProof = std::vector<MerkleProofStep>;

/// Proof for the leaf at `index`; empty proof for a single-leaf tree.
MerkleProof merkle_prove(const std::vector<Hash32>& leaves, std::size_t index);

bool merkle_verify(const Hash32& leaf, const MerkleProof& proof,
                   const Hash32& root);

}  // namespace srbb::crypto
