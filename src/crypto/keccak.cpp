#include "crypto/keccak.hpp"

#include <cstring>

namespace srbb::crypto {

namespace {

constexpr int kRate = 136;  // 1088-bit rate for Keccak-256

constexpr std::uint64_t kRoundConstants[24] = {
    0x0000000000000001ull, 0x0000000000008082ull, 0x800000000000808aull,
    0x8000000080008000ull, 0x000000000000808bull, 0x0000000080000001ull,
    0x8000000080008081ull, 0x8000000000008009ull, 0x000000000000008aull,
    0x0000000000000088ull, 0x0000000080008009ull, 0x000000008000000aull,
    0x000000008000808bull, 0x800000000000008bull, 0x8000000000008089ull,
    0x8000000000008003ull, 0x8000000000008002ull, 0x8000000000000080ull,
    0x000000000000800aull, 0x800000008000000aull, 0x8000000080008081ull,
    0x8000000000008080ull, 0x0000000080000001ull, 0x8000000080008008ull};

constexpr int kRotations[25] = {0,  1,  62, 28, 27, 36, 44, 6,  55, 20, 3,  10, 43,
                                25, 39, 41, 45, 15, 21, 8,  18, 2,  61, 56, 14};

// Destination lane for source lane i = x + 5y under pi: (x, y) -> (y, 2x+3y).
constexpr int kPiLane[25] = {0,  10, 20, 5,  15, 16, 1,  11, 21, 6,  7,  17, 2,
                             12, 22, 23, 8,  18, 3,  13, 14, 24, 9,  19, 4};

std::uint64_t rotl(std::uint64_t x, int n) {
  return n == 0 ? x : (x << n) | (x >> (64 - n));
}

void keccak_f(std::uint64_t a[25]) {
  for (int round = 0; round < 24; ++round) {
    // Theta
    std::uint64_t c[5];
    for (int x = 0; x < 5; ++x) {
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    }
    for (int x = 0; x < 5; ++x) {
      const std::uint64_t d = c[(x + 4) % 5] ^ rotl(c[(x + 1) % 5], 1);
      for (int y = 0; y < 25; y += 5) a[x + y] ^= d;
    }
    // Rho + Pi
    std::uint64_t b[25];
    for (int i = 0; i < 25; ++i) b[kPiLane[i]] = rotl(a[i], kRotations[i]);
    // Chi
    for (int y = 0; y < 25; y += 5) {
      for (int x = 0; x < 5; ++x) {
        a[y + x] = b[y + x] ^ (~b[y + (x + 1) % 5] & b[y + (x + 2) % 5]);
      }
    }
    // Iota
    a[0] ^= kRoundConstants[round];
  }
}

}  // namespace

void Keccak256::absorb_block() {
  for (int i = 0; i < kRate / 8; ++i) {
    std::uint64_t lane = 0;
    for (int j = 0; j < 8; ++j) {
      lane |= static_cast<std::uint64_t>(buffer_[8 * i + j]) << (8 * j);
    }
    state_[i] ^= lane;
  }
  keccak_f(state_);
}

void Keccak256::update(BytesView data) {
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t take =
        std::min<std::size_t>(kRate - buffered_, data.size() - offset);
    std::memcpy(buffer_ + buffered_, data.data() + offset, take);
    buffered_ += take;
    offset += take;
    if (buffered_ == kRate) {
      absorb_block();
      buffered_ = 0;
    }
  }
}

Hash32 Keccak256::finish() {
  // Original Keccak pad10*1: 0x01 ... 0x80 within the rate block.
  std::memset(buffer_ + buffered_, 0, kRate - buffered_);
  buffer_[buffered_] = 0x01;
  buffer_[kRate - 1] |= 0x80;
  absorb_block();
  buffered_ = 0;

  Hash32 out;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 8; ++j) {
      out.data[8 * i + j] = static_cast<std::uint8_t>(state_[i] >> (8 * j));
    }
  }
  return out;
}

Hash32 Keccak256::hash(BytesView data) {
  Keccak256 k;
  k.update(data);
  return k.finish();
}

Address address_from_pubkey(BytesView pubkey) {
  const Hash32 h = Keccak256::hash(pubkey);
  Address out;
  std::memcpy(out.data.data(), h.data.data() + 12, 20);
  return out;
}

}  // namespace srbb::crypto
