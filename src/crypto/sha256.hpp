// FIPS 180-4 SHA-256 plus HMAC-SHA-256 (RFC 2104), implemented from scratch.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace srbb::crypto {

class Sha256 {
 public:
  Sha256();
  void update(BytesView data);
  Hash32 finish();

  static Hash32 hash(BytesView data);

 private:
  void process_block(const std::uint8_t block[64]);

  std::uint32_t state_[8];
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

Hash32 hmac_sha256(BytesView key, BytesView message);

}  // namespace srbb::crypto
