// FIPS 180-4 SHA-512, required by Ed25519 (RFC 8032).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace srbb::crypto {

using Hash64 = std::array<std::uint8_t, 64>;

class Sha512 {
 public:
  Sha512();
  void update(BytesView data);
  Hash64 finish();

  static Hash64 hash(BytesView data);

 private:
  void process_block(const std::uint8_t block[128]);

  std::uint64_t state_[8];
  std::uint8_t buffer_[128];
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace srbb::crypto
