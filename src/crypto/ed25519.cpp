#include "crypto/ed25519.hpp"

#include <cstring>

#include "common/u256.hpp"
#include "crypto/sha512.hpp"

namespace srbb::crypto {

namespace {

// ---------------------------------------------------------------------------
// Field arithmetic mod p = 2^255 - 19, radix-51 (5 limbs of 51 bits).
// Limbs are kept loosely reduced (< 2^52); canonical form is produced only by
// to_bytes(), which routes through U256 for a simple, obviously-correct
// reduction.
// ---------------------------------------------------------------------------

using u64 = std::uint64_t;
using u128 = unsigned __int128;

constexpr u64 kMask51 = (1ull << 51) - 1;

struct Fe {
  u64 v[5] = {0, 0, 0, 0, 0};
};

const U256 kP = (U256::one() << 255) - U256{19};

Fe fe_from_u64(u64 x) {
  Fe f;
  f.v[0] = x & kMask51;
  f.v[1] = x >> 51;
  return f;
}

u64 load_le64(const std::uint8_t* in) {
  u64 out;
  std::memcpy(&out, in, 8);  // little-endian host assumed (x86/ARM)
  return out;
}

Fe fe_from_bytes(const std::uint8_t in[32]) {
  Fe f;
  f.v[0] = load_le64(in) & kMask51;
  f.v[1] = (load_le64(in + 6) >> 3) & kMask51;
  f.v[2] = (load_le64(in + 12) >> 6) & kMask51;
  f.v[3] = (load_le64(in + 19) >> 1) & kMask51;
  f.v[4] = (load_le64(in + 24) >> 12) & kMask51;  // also drops the sign bit
  return f;
}

// Value as an integer (limbs loosely reduced so this fits 256 bits).
U256 fe_to_u256(const Fe& f) {
  U256 acc;
  for (int i = 4; i >= 0; --i) {
    acc = (acc << 51) + U256{f.v[i]};
  }
  return acc % kP;
}

void fe_to_bytes(std::uint8_t out[32], const Fe& f) {
  const U256 canonical = fe_to_u256(f);
  std::uint8_t be[32];
  canonical.to_be(be);
  for (int i = 0; i < 32; ++i) out[i] = be[31 - i];
}

void fe_carry(Fe& f) {
  u64 c;
  c = f.v[0] >> 51; f.v[0] &= kMask51; f.v[1] += c;
  c = f.v[1] >> 51; f.v[1] &= kMask51; f.v[2] += c;
  c = f.v[2] >> 51; f.v[2] &= kMask51; f.v[3] += c;
  c = f.v[3] >> 51; f.v[3] &= kMask51; f.v[4] += c;
  c = f.v[4] >> 51; f.v[4] &= kMask51; f.v[0] += 19 * c;
  c = f.v[0] >> 51; f.v[0] &= kMask51; f.v[1] += c;
}

Fe fe_add(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  fe_carry(r);
  return r;
}

Fe fe_sub(const Fe& a, const Fe& b) {
  // a + 2p - b keeps limbs non-negative for loosely reduced inputs.
  static constexpr u64 kTwoP[5] = {0xFFFFFFFFFFFDAull, 0xFFFFFFFFFFFFEull,
                                   0xFFFFFFFFFFFFEull, 0xFFFFFFFFFFFFEull,
                                   0xFFFFFFFFFFFFEull};
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + kTwoP[i] - b.v[i];
  fe_carry(r);
  return r;
}

Fe fe_neg(const Fe& a) { return fe_sub(Fe{}, a); }

Fe fe_mul(const Fe& a, const Fe& b) {
  const u128 f0 = a.v[0], f1 = a.v[1], f2 = a.v[2], f3 = a.v[3], f4 = a.v[4];
  const u64 g0 = b.v[0], g1 = b.v[1], g2 = b.v[2], g3 = b.v[3], g4 = b.v[4];
  const u64 g1_19 = 19 * g1, g2_19 = 19 * g2, g3_19 = 19 * g3, g4_19 = 19 * g4;

  u128 r0 = f0 * g0 + f1 * g4_19 + f2 * g3_19 + f3 * g2_19 + f4 * g1_19;
  u128 r1 = f0 * g1 + f1 * g0 + f2 * g4_19 + f3 * g3_19 + f4 * g2_19;
  u128 r2 = f0 * g2 + f1 * g1 + f2 * g0 + f3 * g4_19 + f4 * g3_19;
  u128 r3 = f0 * g3 + f1 * g2 + f2 * g1 + f3 * g0 + f4 * g4_19;
  u128 r4 = f0 * g4 + f1 * g3 + f2 * g2 + f3 * g1 + f4 * g0;

  Fe out;
  u64 c;
  c = static_cast<u64>(r0 >> 51); out.v[0] = static_cast<u64>(r0) & kMask51;
  r1 += c;
  c = static_cast<u64>(r1 >> 51); out.v[1] = static_cast<u64>(r1) & kMask51;
  r2 += c;
  c = static_cast<u64>(r2 >> 51); out.v[2] = static_cast<u64>(r2) & kMask51;
  r3 += c;
  c = static_cast<u64>(r3 >> 51); out.v[3] = static_cast<u64>(r3) & kMask51;
  r4 += c;
  c = static_cast<u64>(r4 >> 51); out.v[4] = static_cast<u64>(r4) & kMask51;
  out.v[0] += 19 * c;
  c = out.v[0] >> 51; out.v[0] &= kMask51; out.v[1] += c;
  return out;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

// n successive squarings: a^(2^n).
Fe fe_sqn(Fe a, int n) {
  for (int i = 0; i < n; ++i) a = fe_sq(a);
  return a;
}

// Generic square-and-multiply; exponents here are fixed public constants, so
// variable time is fine. Only used for cold one-off constants (sqrt(-1));
// the hot exponentiations below use fixed addition chains.
Fe fe_pow(const Fe& base, const U256& exponent) {
  Fe result = fe_from_u64(1);
  const unsigned nbits = exponent.bit_length();
  for (unsigned i = nbits; i-- > 0;) {
    result = fe_sq(result);
    if (exponent.bit(i)) result = fe_mul(result, base);
  }
  return result;
}

// Shared prefix of the inversion and 2^252-3 addition chains: z^(2^250-1)
// plus the small powers z^2 and z^11 the tails need.
struct FeChain250 {
  Fe t250;  // z^(2^250-1)
  Fe z2;    // z^2
  Fe z11;   // z^11
};

FeChain250 fe_chain250(const Fe& z) {
  FeChain250 out;
  const Fe z2 = fe_sq(z);                       // z^2
  Fe t1 = fe_mul(z, fe_sqn(z2, 2));             // z^9
  const Fe z11 = fe_mul(z2, t1);                // z^11
  t1 = fe_mul(t1, fe_sq(z11));                  // z^31 = z^(2^5-1)
  t1 = fe_mul(fe_sqn(t1, 5), t1);               // z^(2^10-1)
  Fe t2 = fe_mul(fe_sqn(t1, 10), t1);           // z^(2^20-1)
  t2 = fe_mul(fe_sqn(t2, 20), t2);              // z^(2^40-1)
  t1 = fe_mul(fe_sqn(t2, 10), t1);              // z^(2^50-1)
  t2 = fe_mul(fe_sqn(t1, 50), t1);              // z^(2^100-1)
  t2 = fe_mul(fe_sqn(t2, 100), t2);             // z^(2^200-1)
  out.t250 = fe_mul(fe_sqn(t2, 50), t1);        // z^(2^250-1)
  out.z2 = z2;
  out.z11 = z11;
  return out;
}

// z^(p-2) = z^(2^255-21) via the standard 254-squaring addition chain —
// ~11 multiplies instead of the ~127 of generic square-and-multiply.
Fe fe_invert(const Fe& z) {
  const FeChain250 c = fe_chain250(z);
  return fe_mul(fe_sqn(c.t250, 5), c.z11);      // z^(2^255-32+11)
}

// z^((p-5)/8) = z^(2^252-3), the exponent of the combined square-root-ratio
// trick used by point decompression.
Fe fe_pow22523(const Fe& z) {
  const FeChain250 c = fe_chain250(z);
  return fe_mul(fe_sqn(c.t250, 2), z);          // z^(2^252-4+1)
}

bool fe_is_zero(const Fe& a) { return fe_to_u256(a).is_zero(); }

bool fe_equal(const Fe& a, const Fe& b) { return fe_to_u256(a) == fe_to_u256(b); }

bool fe_is_negative(const Fe& a) { return fe_to_u256(a).bit(0); }

// ---------------------------------------------------------------------------
// Edwards curve -x^2 + y^2 = 1 + d x^2 y^2 in extended coordinates (X:Y:Z:T)
// with x = X/Z, y = Y/Z, T = XY/Z.
// ---------------------------------------------------------------------------

struct Point {
  Fe x, y, z, t;
};

struct CurveConstants {
  Fe d;
  Fe d2;
  Fe sqrt_m1;
  Point base;
  // Fixed-base table: table[i][j] = (j+1) * 16^i * B, i in [0,64), j in [0,15).
  Point base_table[64][15];
};

Point point_identity() {
  Point p;
  p.x = Fe{};
  p.y = fe_from_u64(1);
  p.z = fe_from_u64(1);
  p.t = Fe{};
  return p;
}

const CurveConstants& constants();

// Unified addition (add-2008-hwcd for a = -1); complete on this curve, so it
// also serves as doubling. The d2 parameter keeps this callable while the
// constants singleton is still being constructed.
Point point_add_with(const Fe& d2, const Point& p, const Point& q) {
  const Fe a = fe_mul(fe_sub(p.y, p.x), fe_sub(q.y, q.x));
  const Fe b = fe_mul(fe_add(p.y, p.x), fe_add(q.y, q.x));
  const Fe c = fe_mul(fe_mul(p.t, d2), q.t);
  const Fe zz = fe_mul(p.z, q.z);
  const Fe d = fe_add(zz, zz);
  const Fe e = fe_sub(b, a);
  const Fe f = fe_sub(d, c);
  const Fe g = fe_add(d, c);
  const Fe h = fe_add(b, a);
  Point r;
  r.x = fe_mul(e, f);
  r.y = fe_mul(g, h);
  r.t = fe_mul(e, h);
  r.z = fe_mul(f, g);
  return r;
}

Point point_add(const Point& p, const Point& q) {
  return point_add_with(constants().d2, p, q);
}

Point point_double(const Point& p) { return point_add(p, p); }

// Equality without normalizing: X1/Z1 == X2/Z2 and Y1/Z1 == Y2/Z2 compared
// by cross-multiplication, avoiding the two inversions of compressing both
// sides.
bool point_equal(const Point& p, const Point& q) {
  if (!fe_equal(fe_mul(p.x, q.z), fe_mul(q.x, p.z))) return false;
  return fe_equal(fe_mul(p.y, q.z), fe_mul(q.y, p.z));
}

void point_compress(std::uint8_t out[32], const Point& p) {
  const Fe zinv = fe_invert(p.z);
  const Fe x = fe_mul(p.x, zinv);
  const Fe y = fe_mul(p.y, zinv);
  fe_to_bytes(out, y);
  if (fe_is_negative(x)) out[31] |= 0x80;
}

// Recover x from y: x^2 = (y^2 - 1) / (d y^2 + 1). Returns false for
// non-points. Takes d and sqrt(-1) explicitly so the constants initializer
// can use it.
//
// Uses the combined square-root-of-a-ratio trick (RFC 8032 §5.1.3): the
// candidate x = u v^3 (u v^7)^((p-5)/8) needs one fixed-chain exponentiation
// instead of a field inversion plus a generic (p+3)/8 power. v = d y^2 + 1
// is never zero because -1/d is a non-square mod p.
bool point_decompress_with(const Fe& curve_d, const Fe& sqrt_m1, Point& out,
                           const std::uint8_t in[32]) {
  std::uint8_t ybytes[32];
  std::memcpy(ybytes, in, 32);
  const bool sign = (ybytes[31] & 0x80) != 0;
  ybytes[31] &= 0x7f;
  const Fe y = fe_from_bytes(ybytes);

  const Fe y2 = fe_sq(y);
  const Fe u = fe_sub(y2, fe_from_u64(1));
  const Fe v = fe_add(fe_mul(curve_d, y2), fe_from_u64(1));

  const Fe v3 = fe_mul(fe_sq(v), v);
  const Fe v7 = fe_mul(fe_sq(v3), v);
  Fe x = fe_mul(fe_mul(u, v3), fe_pow22523(fe_mul(u, v7)));

  const Fe vx2 = fe_mul(v, fe_sq(x));
  if (!fe_equal(vx2, u)) {
    if (!fe_equal(vx2, fe_neg(u))) return false;  // u/v is a non-residue
    x = fe_mul(x, sqrt_m1);
  }
  if (fe_is_zero(x) && sign) return false;  // -0 is not encodable
  if (fe_is_negative(x) != sign) x = fe_neg(x);

  out.x = x;
  out.y = y;
  out.z = fe_from_u64(1);
  out.t = fe_mul(x, y);
  return true;
}

bool point_decompress(Point& out, const std::uint8_t in[32]) {
  const CurveConstants& cc = constants();
  return point_decompress_with(cc.d, cc.sqrt_m1, out, in);
}

// Variable-base double-and-add over the 256 scalar bits.
Point scalar_mul(const U256& scalar, const Point& p) {
  Point r = point_identity();
  for (unsigned i = scalar.bit_length(); i-- > 0;) {
    r = point_double(r);
    if (scalar.bit(i)) r = point_add(r, p);
  }
  return r;
}

// Fixed-base multiplication using the precomputed 4-bit window table.
Point scalar_mul_base(const U256& scalar) {
  const CurveConstants& cc = constants();
  Point r = point_identity();
  std::uint8_t le[32];
  {
    std::uint8_t be[32];
    scalar.to_be(be);
    for (int i = 0; i < 32; ++i) le[i] = be[31 - i];
  }
  for (int i = 0; i < 64; ++i) {
    const std::uint8_t byte = le[i / 2];
    const unsigned digit = (i % 2 == 0) ? (byte & 0x0f) : (byte >> 4);
    if (digit != 0) r = point_add(r, cc.base_table[i][digit - 1]);
  }
  return r;
}

const CurveConstants& constants() {
  static CurveConstants cc = [] {
    CurveConstants c;
    // d = -121665/121666 mod p
    const Fe num = fe_neg(fe_from_u64(121665));
    c.d = fe_mul(num, fe_invert(fe_from_u64(121666)));
    c.d2 = fe_add(c.d, c.d);
    // sqrt(-1) = 2^((p-1)/4): 2 is a non-residue since p == 5 (mod 8).
    c.sqrt_m1 = fe_pow(fe_from_u64(2), (kP - U256::one()) / U256{4});

    // Base point: y = 4/5, x recovered with even (sign bit 0) x.
    const Fe y = fe_mul(fe_from_u64(4), fe_invert(fe_from_u64(5)));
    std::uint8_t enc[32];
    fe_to_bytes(enc, y);  // sign bit left 0
    Point base;
    if (!point_decompress_with(c.d, c.sqrt_m1, base, enc)) {
      // Unreachable on a correct field implementation.
      base = point_identity();
    }
    c.base = base;

    Point window_base = base;  // 16^i * B
    for (int i = 0; i < 64; ++i) {
      Point acc = window_base;
      for (int j = 0; j < 15; ++j) {
        c.base_table[i][j] = acc;
        acc = point_add_with(c.d2, acc, window_base);
      }
      window_base = acc;  // 16 * (16^i * B)
    }
    return c;
  }();
  return cc;
}

// ---------------------------------------------------------------------------
// Scalar arithmetic mod the group order L = 2^252 + delta.
// ---------------------------------------------------------------------------

const U256 kL = []() {
  return (U256::one() << 252) +
         U256::from_hex("0x14def9dea2f79cd65812631a5cf5d3ed").value_or(U256{});
}();

U256 u256_from_le(const std::uint8_t* in, std::size_t len) {
  std::uint8_t be[32] = {};
  for (std::size_t i = 0; i < len && i < 32; ++i) be[31 - i] = in[i];
  return U256::from_be(BytesView{be, 32});
}

void u256_to_le(std::uint8_t out[32], const U256& v) {
  std::uint8_t be[32];
  v.to_be(be);
  for (int i = 0; i < 32; ++i) out[i] = be[31 - i];
}

// Interpret a 64-byte little-endian hash as an integer mod L.
U256 scalar_from_hash(const Hash64& h) {
  const U256 lo = u256_from_le(h.data(), 32);
  const U256 hi = u256_from_le(h.data() + 32, 32);
  // 2^256 mod L
  const U256 two256 = (U256::max() % kL + U256::one()) % kL;
  return addmod(mulmod(hi % kL, two256, kL), lo % kL, kL);
}

struct ExpandedKey {
  U256 scalar;  // clamped secret scalar (integer, < 2^255)
  std::uint8_t prefix[32];
};

ExpandedKey expand_seed(const PrivateSeed& seed) {
  const Hash64 h = Sha512::hash(BytesView{seed.data(), seed.size()});
  std::uint8_t a[32];
  std::memcpy(a, h.data(), 32);
  a[0] &= 248;
  a[31] &= 127;
  a[31] |= 64;
  ExpandedKey out;
  out.scalar = u256_from_le(a, 32);
  std::memcpy(out.prefix, h.data() + 32, 32);
  return out;
}

// ---------------------------------------------------------------------------
// Batch verification: one multi-scalar multiplication checks the random
// linear combination
//
//   (sum z_i s_i) B  ==  sum z_i R_i  +  sum (z_i k_i) A_i
//
// of the per-signature equations s_i B == R_i + k_i A_i. The shared chain of
// doublings amortizes across all points, so N signatures cost well under N
// independent verifies. Coefficients z_i are 128-bit and derived
// deterministically from a SHA-512 transcript of the whole batch (the repo
// bans runtime randomness); forging a batch whose defects cancel in the
// combination requires grinding the transcript hash. docs/PERF.md records
// the exact soundness caveat. On combined-equation failure the range is
// bisected deterministically; size-1 leaves use the plain single-signature
// equation, so rejected batches converge to results positionally identical
// to sequential verification.
// ---------------------------------------------------------------------------

// Interleaved-window (Straus) multi-scalar multiplication sum c_j P_j with
// 4-bit windows over little-endian scalar nibbles. Variable time; all inputs
// here are public.
Point multi_scalar_mul(const std::vector<U256>& scalars,
                       const std::vector<Point>& points) {
  const std::size_t n = points.size();
  const Fe d2 = constants().d2;
  std::vector<std::array<Point, 15>> tables(n);
  std::vector<std::array<std::uint8_t, 32>> le(n);
  unsigned max_bits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (scalars[i].bit_length() > max_bits) max_bits = scalars[i].bit_length();
    u256_to_le(le[i].data(), scalars[i]);
    Point acc = points[i];  // tables[i][j] = (j+1) * P_i
    for (int j = 0; j < 15; ++j) {
      tables[i][j] = acc;
      acc = point_add_with(d2, acc, points[i]);
    }
  }
  Point r = point_identity();
  for (unsigned w = (max_bits + 3) / 4; w-- > 0;) {
    for (int dbl = 0; dbl < 4; ++dbl) r = point_add_with(d2, r, r);
    for (std::size_t i = 0; i < n; ++i) {
      const unsigned digit = (le[i][w / 2] >> (4 * (w & 1))) & 0x0f;
      if (digit != 0) r = point_add_with(d2, r, tables[i][digit - 1]);
    }
  }
  return r;
}

struct BatchEntry {
  bool precheck_ok = false;  // s canonical and both points decompressed
  Point a;                   // public key point
  Point r;                   // signature R point
  U256 s;                    // signature scalar, < L
  U256 k;                    // challenge H(R || A || M) mod L
  U256 z;                    // batch coefficient, 128-bit, nonzero
};

bool batch_equation_single(const BatchEntry& e) {
  const Point lhs = scalar_mul_base(e.s);
  const Point rhs = point_add(e.r, scalar_mul(e.k, e.a));
  return point_equal(lhs, rhs);
}

// Combined equation over live[lo, hi) (indices into `entries`).
bool batch_equation_range(const std::vector<BatchEntry>& entries,
                          const std::vector<std::uint32_t>& live,
                          std::size_t lo, std::size_t hi) {
  U256 s_sum;
  std::vector<U256> scalars;
  std::vector<Point> points;
  scalars.reserve(2 * (hi - lo));
  points.reserve(2 * (hi - lo));
  for (std::size_t i = lo; i < hi; ++i) {
    const BatchEntry& e = entries[live[i]];
    s_sum = addmod(s_sum, mulmod(e.z, e.s, kL), kL);
    scalars.push_back(e.z);
    points.push_back(e.r);
    scalars.push_back(mulmod(e.z, e.k, kL));
    points.push_back(e.a);
  }
  return point_equal(scalar_mul_base(s_sum), multi_scalar_mul(scalars, points));
}

// Deterministic bisection: a passing combined equation accepts the whole
// range; a failing one splits at the midpoint until size-1 leaves fall back
// to the exact single-signature check.
void batch_resolve_range(const std::vector<BatchEntry>& entries,
                         const std::vector<std::uint32_t>& live,
                         std::size_t lo, std::size_t hi,
                         std::vector<std::uint8_t>& results) {
  if (hi == lo) return;
  if (hi - lo == 1) {
    results[live[lo]] = batch_equation_single(entries[live[lo]]) ? 1 : 0;
    return;
  }
  if (batch_equation_range(entries, live, lo, hi)) {
    for (std::size_t i = lo; i < hi; ++i) results[live[i]] = 1;
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  batch_resolve_range(entries, live, lo, mid, results);
  batch_resolve_range(entries, live, mid, hi, results);
}

}  // namespace

Ed25519KeyPair ed25519_keypair(const PrivateSeed& seed) {
  Ed25519KeyPair kp;
  kp.seed = seed;
  const ExpandedKey ek = expand_seed(seed);
  const Point a_point = scalar_mul_base(ek.scalar);
  point_compress(kp.public_key.data(), a_point);
  return kp;
}

Ed25519KeyPair ed25519_keypair_from_id(std::uint64_t id) {
  PrivateSeed seed{};
  std::uint8_t tag[16] = {'s', 'r', 'b', 'b', '-', 'k', 'e', 'y'};
  put_be64(tag + 8, id);
  const Hash64 h = Sha512::hash(BytesView{tag, 16});
  std::memcpy(seed.data(), h.data(), 32);
  return ed25519_keypair(seed);
}

Signature ed25519_sign(BytesView message, const Ed25519KeyPair& keypair) {
  const ExpandedKey ek = expand_seed(keypair.seed);

  Sha512 h1;
  h1.update(BytesView{ek.prefix, 32});
  h1.update(message);
  const U256 r = scalar_from_hash(h1.finish());

  const Point r_point = scalar_mul_base(r);
  Signature sig{};
  point_compress(sig.data(), r_point);

  Sha512 h2;
  h2.update(BytesView{sig.data(), 32});
  h2.update(BytesView{keypair.public_key.data(), 32});
  h2.update(message);
  const U256 k = scalar_from_hash(h2.finish());

  const U256 s = addmod(r, mulmod(k, ek.scalar % kL, kL), kL);
  u256_to_le(sig.data() + 32, s);
  return sig;
}

bool ed25519_verify(BytesView message, const Signature& signature,
                    const PublicKey& public_key) {
  const U256 s = u256_from_le(signature.data() + 32, 32);
  if (!(s < kL)) return false;  // reject malleable encodings

  Point a_point;
  if (!point_decompress(a_point, public_key.data())) return false;
  Point r_point;
  if (!point_decompress(r_point, signature.data())) return false;

  Sha512 h;
  h.update(BytesView{signature.data(), 32});
  h.update(BytesView{public_key.data(), 32});
  h.update(message);
  const U256 k = scalar_from_hash(h.finish());

  // Check s*B == R + k*A in projective coordinates.
  const Point lhs = scalar_mul_base(s);
  const Point rhs = point_add(r_point, scalar_mul(k, a_point));
  return point_equal(lhs, rhs);
}

std::vector<bool> ed25519_verify_batch(std::span<const Ed25519BatchItem> items) {
  const std::size_t n = items.size();
  std::vector<std::uint8_t> results(n, 0);
  std::vector<BatchEntry> entries(n);
  std::vector<std::uint32_t> live;  // indices that passed the prechecks
  live.reserve(n);

  // Transcript binding every (signature, pubkey, message) of the batch; the
  // per-item coefficients are derived from its digest below.
  Sha512 transcript;
  static constexpr char kDomain[] = "srbb-ed25519-batch-v1";
  transcript.update(
      BytesView{reinterpret_cast<const std::uint8_t*>(kDomain), sizeof(kDomain) - 1});

  for (std::size_t i = 0; i < n; ++i) {
    const Ed25519BatchItem& item = items[i];
    transcript.update(BytesView{item.signature->data(), 64});
    transcript.update(BytesView{item.public_key->data(), 32});
    std::uint8_t len8[8];
    put_be64(len8, item.message.size());
    transcript.update(BytesView{len8, 8});
    transcript.update(item.message);

    BatchEntry& e = entries[i];
    e.s = u256_from_le(item.signature->data() + 32, 32);
    if (!(e.s < kL)) continue;  // reject malleable encodings
    if (!point_decompress(e.a, item.public_key->data())) continue;
    if (!point_decompress(e.r, item.signature->data())) continue;

    Sha512 h;
    h.update(BytesView{item.signature->data(), 32});
    h.update(BytesView{item.public_key->data(), 32});
    h.update(item.message);
    e.k = scalar_from_hash(h.finish());
    e.precheck_ok = true;
    live.push_back(static_cast<std::uint32_t>(i));
  }

  if (!live.empty()) {
    const Hash64 seed = transcript.finish();
    for (const std::uint32_t i : live) {
      Sha512 h;
      h.update(BytesView{seed.data(), seed.size()});
      std::uint8_t idx8[8];
      put_be64(idx8, i);
      h.update(BytesView{idx8, 8});
      const Hash64 digest = h.finish();
      U256 z = u256_from_le(digest.data(), 16);  // 128-bit coefficient
      if (z.is_zero()) z = U256::one();
      entries[i].z = z;
    }
    batch_resolve_range(entries, live, 0, live.size(), results);
  }

  return std::vector<bool>(results.begin(), results.end());
}

}  // namespace srbb::crypto
