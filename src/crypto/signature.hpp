// Pluggable signature scheme used by transactions and block certificates.
//
// Two implementations:
//  - Ed25519Scheme: the real RFC 8032 signatures (default for tests, examples
//    and small simulations).
//  - FastSimScheme: signature = SHA-256(pubkey || message) repeated to 64
//    bytes. Publicly forgeable, so usable ONLY inside the closed simulation;
//    it preserves the property the congestion model needs (a tampered message
//    or wrong key fails verification) while letting benchmarks pre-sign
//    hundreds of thousands of transactions in milliseconds. DESIGN.md records
//    this substitution.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/ed25519.hpp"

namespace srbb::crypto {

/// A signing identity: a deterministic keypair derived from a 64-bit id.
struct Identity {
  std::uint64_t id = 0;
  PublicKey public_key{};
  PrivateSeed seed{};
  Address address() const;  // Keccak-derived, Ethereum style
};

/// One entry of a batch verification call. The message is a view into a
/// caller-owned buffer — batching never copies calldata — so the buffer must
/// outlive the verify call.
struct BatchVerifyItem {
  BytesView message{};
  Signature signature{};
  PublicKey public_key{};
};

class SignatureScheme {
 public:
  virtual ~SignatureScheme() = default;

  virtual Identity make_identity(std::uint64_t id) const = 0;
  virtual Signature sign(const Identity& signer, BytesView message) const = 0;
  virtual bool verify(BytesView message, const Signature& signature,
                      const PublicKey& public_key) const = 0;
  /// Verify many items at once. Results are positionally identical to
  /// calling verify() per item; the base implementation is that loop, and
  /// schemes with a shared-computation batch algorithm override it.
  virtual std::vector<bool> verify_batch(
      std::span<const BatchVerifyItem> items) const;
  virtual const char* name() const = 0;

  static const SignatureScheme& ed25519();
  static const SignatureScheme& fast_sim();
};

}  // namespace srbb::crypto
