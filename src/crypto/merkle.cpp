#include "crypto/merkle.hpp"

#include "crypto/sha256.hpp"

namespace srbb::crypto {

namespace {

Hash32 hash_pair(const Hash32& left, const Hash32& right) {
  Sha256 h;
  h.update(left.view());
  h.update(right.view());
  return h.finish();
}

}  // namespace

Hash32 merkle_root(const std::vector<Hash32>& leaves) {
  if (leaves.empty()) return Sha256::hash(BytesView{});
  std::vector<Hash32> level = leaves;
  while (level.size() > 1) {
    std::vector<Hash32> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      const Hash32& right = (i + 1 < level.size()) ? level[i + 1] : level[i];
      next.push_back(hash_pair(level[i], right));
    }
    level = std::move(next);
  }
  return level[0];
}

MerkleProof merkle_prove(const std::vector<Hash32>& leaves, std::size_t index) {
  MerkleProof proof;
  if (index >= leaves.size()) return proof;
  std::vector<Hash32> level = leaves;
  std::size_t pos = index;
  while (level.size() > 1) {
    const std::size_t sibling =
        (pos % 2 == 0) ? (pos + 1 < level.size() ? pos + 1 : pos) : pos - 1;
    proof.push_back(MerkleProofStep{level[sibling], sibling < pos});

    std::vector<Hash32> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      const Hash32& right = (i + 1 < level.size()) ? level[i + 1] : level[i];
      next.push_back(hash_pair(level[i], right));
    }
    level = std::move(next);
    pos /= 2;
  }
  return proof;
}

bool merkle_verify(const Hash32& leaf, const MerkleProof& proof,
                   const Hash32& root) {
  Hash32 cur = leaf;
  for (const auto& step : proof) {
    cur = step.sibling_on_left ? hash_pair(step.sibling, cur)
                               : hash_pair(cur, step.sibling);
  }
  return cur == root;
}

}  // namespace srbb::crypto
