// Parallel batch signature verification. Eager validation is dominated by
// the per-transaction signature check; a validator catching up (or absorbing
// a burst) verifies independent signatures across cores. Results are
// positionally identical to sequential verification — the thread pool only
// changes wall-clock time, never outcomes.
#pragma once

#include <vector>

#include "common/thread_pool.hpp"
#include "crypto/signature.hpp"

namespace srbb::crypto {

struct BatchVerifyItem {
  Bytes message;
  Signature signature{};
  PublicKey public_key{};
};

/// Verify every item, fanning out across `pool`.
std::vector<bool> batch_verify(const SignatureScheme& scheme,
                               const std::vector<BatchVerifyItem>& items,
                               ThreadPool& pool);

/// Sequential reference (used by tests and single-core callers).
std::vector<bool> batch_verify_sequential(
    const SignatureScheme& scheme, const std::vector<BatchVerifyItem>& items);

}  // namespace srbb::crypto
