// Batch signature verification strategies. Eager validation is dominated by
// the per-transaction signature check; how a batch of independent signatures
// is verified is a pluggable strategy:
//
//   SequentialBatchVerifier      one verify() per item on the calling thread
//                                (the reference all strategies must match).
//   ThreadedBatchVerifier        independent verifies fanned across a thread
//                                pool — changes wall-clock time, never
//                                outcomes.
//   SharedBatchVerifier          the scheme's own shared-computation batch
//                                algorithm (for ed25519, one multi-scalar
//                                multiplication for the whole batch).
//   ThreadedSharedBatchVerifier  shared-computation chunks spread across a
//                                thread pool — multi-scalar sharing inside a
//                                chunk, core parallelism across chunks.
//
// Every strategy returns results positionally identical to
// batch_verify_sequential (the ed25519 soundness caveat is documented in
// docs/PERF.md). Items carry BytesView messages; the caller owns the message
// buffers and must keep them alive across the call.
#pragma once

#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "crypto/signature.hpp"

namespace srbb::crypto {

class BatchVerifier {
 public:
  virtual ~BatchVerifier() = default;
  virtual const char* name() const = 0;
  virtual std::vector<bool> verify(const SignatureScheme& scheme,
                                   std::span<const BatchVerifyItem> items)
      const = 0;
};

/// One scheme.verify() per item on the calling thread.
class SequentialBatchVerifier final : public BatchVerifier {
 public:
  const char* name() const override { return "sequential"; }
  std::vector<bool> verify(const SignatureScheme& scheme,
                           std::span<const BatchVerifyItem> items)
      const override;
};

/// Independent verifies fanned out across a thread pool. Batches smaller
/// than `min_parallel` stay on the calling thread — the fan-out overhead
/// dwarfs tiny batches.
class ThreadedBatchVerifier final : public BatchVerifier {
 public:
  explicit ThreadedBatchVerifier(ThreadPool& pool,
                                 std::size_t min_parallel = 8)
      : pool_(pool), min_parallel_(min_parallel) {}
  const char* name() const override { return "threaded"; }
  std::vector<bool> verify(const SignatureScheme& scheme,
                           std::span<const BatchVerifyItem> items)
      const override;

 private:
  ThreadPool& pool_;
  std::size_t min_parallel_;
};

/// The scheme's shared-computation batch algorithm on the calling thread.
class SharedBatchVerifier final : public BatchVerifier {
 public:
  const char* name() const override { return "shared"; }
  std::vector<bool> verify(const SignatureScheme& scheme,
                           std::span<const BatchVerifyItem> items)
      const override;
};

/// Shared-computation chunks of `chunk_size` spread across a thread pool.
/// Batches smaller than `min_parallel` run as one chunk on the calling
/// thread.
class ThreadedSharedBatchVerifier final : public BatchVerifier {
 public:
  explicit ThreadedSharedBatchVerifier(ThreadPool& pool,
                                       std::size_t chunk_size = 64,
                                       std::size_t min_parallel = 16)
      : pool_(pool), chunk_size_(chunk_size), min_parallel_(min_parallel) {}
  const char* name() const override { return "threaded-shared"; }
  std::vector<bool> verify(const SignatureScheme& scheme,
                           std::span<const BatchVerifyItem> items)
      const override;

 private:
  ThreadPool& pool_;
  std::size_t chunk_size_;
  std::size_t min_parallel_;
};

/// Verify every item, fanning out across `pool` (ThreadedBatchVerifier).
std::vector<bool> batch_verify(const SignatureScheme& scheme,
                               std::span<const BatchVerifyItem> items,
                               ThreadPool& pool);

/// Sequential reference (used by tests and single-core callers).
std::vector<bool> batch_verify_sequential(
    const SignatureScheme& scheme, std::span<const BatchVerifyItem> items);

}  // namespace srbb::crypto
