// Keccak-256 with the original Keccak padding (0x01), as used by Ethereum for
// transaction hashes, addresses and the EVM SHA3 opcode.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace srbb::crypto {

class Keccak256 {
 public:
  Keccak256() = default;
  void update(BytesView data);
  Hash32 finish();

  static Hash32 hash(BytesView data);

 private:
  void absorb_block();

  std::uint64_t state_[25] = {};
  std::uint8_t buffer_[136] = {};
  std::size_t buffered_ = 0;
};

/// Ethereum-style address derivation: low 20 bytes of Keccak-256(pubkey).
Address address_from_pubkey(BytesView pubkey);

}  // namespace srbb::crypto
