#include "crypto/batch.hpp"

namespace srbb::crypto {

std::vector<bool> batch_verify(const SignatureScheme& scheme,
                               const std::vector<BatchVerifyItem>& items,
                               ThreadPool& pool) {
  // vector<bool> is not safe for concurrent element writes; use bytes.
  std::vector<std::uint8_t> results(items.size(), 0);
  pool.parallel_for(items.size(), [&](std::size_t i) {
    const BatchVerifyItem& item = items[i];
    results[i] =
        scheme.verify(item.message, item.signature, item.public_key) ? 1 : 0;
  });
  return std::vector<bool>(results.begin(), results.end());
}

std::vector<bool> batch_verify_sequential(
    const SignatureScheme& scheme, const std::vector<BatchVerifyItem>& items) {
  std::vector<bool> results(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    results[i] = scheme.verify(items[i].message, items[i].signature,
                               items[i].public_key);
  }
  return results;
}

}  // namespace srbb::crypto
