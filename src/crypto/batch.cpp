#include "crypto/batch.hpp"

#include <algorithm>

namespace srbb::crypto {

std::vector<bool> SequentialBatchVerifier::verify(
    const SignatureScheme& scheme,
    std::span<const BatchVerifyItem> items) const {
  std::vector<bool> results(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    results[i] = scheme.verify(items[i].message, items[i].signature,
                               items[i].public_key);
  }
  return results;
}

std::vector<bool> ThreadedBatchVerifier::verify(
    const SignatureScheme& scheme,
    std::span<const BatchVerifyItem> items) const {
  if (items.size() < min_parallel_) {
    return SequentialBatchVerifier{}.verify(scheme, items);
  }
  // vector<bool> is not safe for concurrent element writes; use bytes.
  std::vector<std::uint8_t> results(items.size(), 0);
  pool_.parallel_for(items.size(), [&](std::size_t i) {
    const BatchVerifyItem& item = items[i];
    results[i] =
        scheme.verify(item.message, item.signature, item.public_key) ? 1 : 0;
  });
  return std::vector<bool>(results.begin(), results.end());
}

std::vector<bool> SharedBatchVerifier::verify(
    const SignatureScheme& scheme,
    std::span<const BatchVerifyItem> items) const {
  return scheme.verify_batch(items);
}

std::vector<bool> ThreadedSharedBatchVerifier::verify(
    const SignatureScheme& scheme,
    std::span<const BatchVerifyItem> items) const {
  if (items.size() < min_parallel_) {
    return scheme.verify_batch(items);
  }
  const std::size_t chunks = (items.size() + chunk_size_ - 1) / chunk_size_;
  std::vector<std::uint8_t> results(items.size(), 0);
  pool_.parallel_for(chunks, [&](std::size_t c) {
    const std::size_t lo = c * chunk_size_;
    const std::size_t hi = std::min(lo + chunk_size_, items.size());
    const std::vector<bool> chunk =
        scheme.verify_batch(items.subspan(lo, hi - lo));
    for (std::size_t i = lo; i < hi; ++i) results[i] = chunk[i - lo] ? 1 : 0;
  });
  return std::vector<bool>(results.begin(), results.end());
}

std::vector<bool> batch_verify(const SignatureScheme& scheme,
                               std::span<const BatchVerifyItem> items,
                               ThreadPool& pool) {
  return ThreadedBatchVerifier{pool, /*min_parallel=*/0}.verify(scheme, items);
}

std::vector<bool> batch_verify_sequential(
    const SignatureScheme& scheme, std::span<const BatchVerifyItem> items) {
  return SequentialBatchVerifier{}.verify(scheme, items);
}

}  // namespace srbb::crypto
