#include "crypto/signature.hpp"

#include <cstring>

#include "crypto/keccak.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"

namespace srbb::crypto {

Address Identity::address() const {
  return address_from_pubkey(BytesView{public_key.data(), public_key.size()});
}

std::vector<bool> SignatureScheme::verify_batch(
    std::span<const BatchVerifyItem> items) const {
  std::vector<bool> results(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    results[i] = verify(items[i].message, items[i].signature,
                        items[i].public_key);
  }
  return results;
}

namespace {

class Ed25519Scheme final : public SignatureScheme {
 public:
  Identity make_identity(std::uint64_t id) const override {
    const Ed25519KeyPair kp = ed25519_keypair_from_id(id);
    return Identity{id, kp.public_key, kp.seed};
  }

  Signature sign(const Identity& signer, BytesView message) const override {
    Ed25519KeyPair kp;
    kp.seed = signer.seed;
    kp.public_key = signer.public_key;
    return ed25519_sign(message, kp);
  }

  bool verify(BytesView message, const Signature& signature,
              const PublicKey& public_key) const override {
    return ed25519_verify(message, signature, public_key);
  }

  std::vector<bool> verify_batch(
      std::span<const BatchVerifyItem> items) const override {
    std::vector<Ed25519BatchItem> refs;
    refs.reserve(items.size());
    for (const BatchVerifyItem& item : items) {
      refs.push_back({item.message, &item.signature, &item.public_key});
    }
    return ed25519_verify_batch(refs);
  }

  const char* name() const override { return "ed25519"; }
};

class FastSimScheme final : public SignatureScheme {
 public:
  Identity make_identity(std::uint64_t id) const override {
    Identity out;
    out.id = id;
    std::uint8_t tag[16] = {'s', 'i', 'm', '-', 'k', 'e', 'y', 0};
    put_be64(tag + 8, id);
    const Hash64 h = Sha512::hash(BytesView{tag, 16});
    std::memcpy(out.public_key.data(), h.data(), 32);
    std::memcpy(out.seed.data(), h.data() + 32, 32);
    return out;
  }

  Signature sign(const Identity& signer, BytesView message) const override {
    return mac(signer.public_key, message);
  }

  bool verify(BytesView message, const Signature& signature,
              const PublicKey& public_key) const override {
    return mac(public_key, message) == signature;
  }

  const char* name() const override { return "fast-sim"; }

 private:
  static Signature mac(const PublicKey& pub, BytesView message) {
    Sha256 h;
    h.update(BytesView{pub.data(), pub.size()});
    h.update(message);
    const Hash32 digest = h.finish();
    Signature out{};
    std::memcpy(out.data(), digest.data.data(), 32);
    std::memcpy(out.data() + 32, digest.data.data(), 32);
    return out;
  }
};

}  // namespace

const SignatureScheme& SignatureScheme::ed25519() {
  static const Ed25519Scheme scheme;
  return scheme;
}

const SignatureScheme& SignatureScheme::fast_sim() {
  static const FastSimScheme scheme;
  return scheme;
}

}  // namespace srbb::crypto
