// Ed25519 signatures (RFC 8032), implemented from scratch:
//  - field arithmetic mod 2^255-19 in radix-51 with 128-bit products,
//  - unified twisted-Edwards addition in extended coordinates,
//  - 4-bit windowed fixed-base scalar multiplication for signing,
//  - scalar arithmetic mod the group order L via the shared U256 helpers.
//
// This implementation favours clarity and auditability over side-channel
// hardening: scalar multiplication is not constant-time, which is acceptable
// for a simulation/benchmarking system that never holds real funds.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.hpp"

namespace srbb::crypto {

using PrivateSeed = std::array<std::uint8_t, 32>;
using PublicKey = std::array<std::uint8_t, 32>;
using Signature = std::array<std::uint8_t, 64>;

struct Ed25519KeyPair {
  PrivateSeed seed{};
  PublicKey public_key{};
};

/// Expand a 32-byte seed into a keypair (seed is the RFC 8032 private key).
Ed25519KeyPair ed25519_keypair(const PrivateSeed& seed);

/// Deterministic keypair for tests/simulations, derived from a 64-bit id.
Ed25519KeyPair ed25519_keypair_from_id(std::uint64_t id);

Signature ed25519_sign(BytesView message, const Ed25519KeyPair& keypair);

bool ed25519_verify(BytesView message, const Signature& signature,
                    const PublicKey& public_key);

/// One (message, signature, key) reference for batch verification. All three
/// buffers are caller-owned and must outlive the call.
struct Ed25519BatchItem {
  BytesView message{};
  const Signature* signature = nullptr;
  const PublicKey* public_key = nullptr;
};

/// Shared-computation batch verification: a single multi-scalar
/// multiplication checks the random linear combination of all N signature
/// equations, amortizing the doubling chain across the batch. Coefficients
/// are derived deterministically from a transcript hash (no runtime
/// randomness); a failing combination bisects down to exact per-signature
/// checks, so results are positionally identical to calling ed25519_verify
/// per item for every non-pathological input (soundness caveat in
/// docs/PERF.md).
std::vector<bool> ed25519_verify_batch(std::span<const Ed25519BatchItem> items);

}  // namespace srbb::crypto
