// The §VI censorship mitigation: a load balancer between clients and
// validators that forwards each client transaction to a randomly chosen
// validator. Combined with client retries, a transaction censored by one
// validator eventually reaches one that includes it. (The paper defers a
// full multi-balancer design to future work; this is the single-balancer
// building block.)
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/rng.hpp"
#include "sim/network.hpp"
#include "srbb/messages.hpp"

namespace srbb::node {

class LoadBalancerNode : public sim::SimNode {
 public:
  LoadBalancerNode(sim::Simulation& simulation, sim::NodeId id,
                   sim::RegionId region, std::uint32_t validator_count,
                   std::uint64_t seed)
      : sim::SimNode(simulation, id, region),
        validator_count_(validator_count),
        rng_(seed) {}

  void handle_message(sim::NodeId from, const sim::MessagePtr& message) override {
    // Forward client transactions to a random validator; randomness is what
    // makes repeated submissions of a censored transaction land elsewhere.
    if (const auto* tx = dynamic_cast<const ClientTxMsg*>(message.get())) {
      ++forwarded_;
      origins_[tx->tx->hash] = from;
      send(static_cast<sim::NodeId>(rng_.next_below(validator_count_)),
           message);
      return;
    }
    // Relay commit acknowledgements back to the submitting client.
    if (const auto* ack = dynamic_cast<const CommitAckMsg*>(message.get())) {
      const auto it = origins_.find(ack->tx_hash);
      if (it != origins_.end()) {
        send(it->second, message);
        origins_.erase(it);
      }
    }
  }

  std::uint64_t forwarded() const { return forwarded_; }

 private:
  std::uint32_t validator_count_;
  Rng rng_;
  std::uint64_t forwarded_ = 0;
  std::unordered_map<Hash32, sim::NodeId, Hash32Hasher> origins_;
};

}  // namespace srbb::node
