#include "srbb/validator.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"
#include "txn/validation.hpp"

namespace srbb::node {

using consensus::SuperblockCallbacks;
using consensus::SuperblockConfig;
using consensus::SuperblockInstance;

ValidatorNode::ValidatorNode(sim::Simulation& simulation, sim::NodeId id,
                             sim::RegionId region, ValidatorConfig config,
                             std::shared_ptr<ExecutionOracle> oracle,
                             std::shared_ptr<rpm::RewardPenaltyMechanism> rpm,
                             const sim::GossipOverlay* overlay)
    : sim::SimNode(simulation, id, region),
      config_(std::move(config)),
      identity_(config_.scheme->make_identity(config_.self)),
      oracle_(std::move(oracle)),
      rpm_(std::move(rpm)),
      overlay_(overlay),
      pool_(config_.pool),
      pipeline_(*config_.scheme, config_.validation,
                txn::PipelineOptions{.metrics = config_.metrics}) {
  CatchUpConfig sync_config;
  sync_config.n = config_.n;
  sync_config.self = config_.self;
  sync_config.request_timeout = config_.sync_request_timeout;
  sync_config.backoff_cap = config_.sync_backoff_cap;
  CatchUpCallbacks sync_cb;
  sync_cb.send_to = [this](std::uint32_t peer, sim::MessagePtr msg) {
    if (peer != config_.self) send(peer, std::move(msg));
  };
  sync_cb.set_timer = [this](SimDuration delay, std::function<void()> fn) {
    // CatchUpSync disarms stale timers via its generation counter; the epoch
    // guard additionally kills timers armed before a second crash.
    sim().schedule_after(delay, guarded(std::move(fn)));
  };
  sync_cb.on_superblock = [this](std::uint64_t index,
                                 std::vector<txn::BlockPtr> blocks) {
    on_synced_superblock(index, std::move(blocks));
  };
  sync_cb.on_caught_up = [this](std::uint64_t frontier) {
    on_caught_up(frontier);
  };
  sync_ = std::make_unique<CatchUpSync>(sync_config, std::move(sync_cb));
  if (config_.adaptive_membership) {
    config_.reliability.n = config_.n;
    config_.reliability.f = config_.f;
    tracker_ = std::make_unique<rpm::ReliabilityTracker>(config_.reliability);
  }
  register_obs();
}

void ValidatorNode::register_obs() {
  pool_.set_observability(config_.trace, config_.metrics, config_.self);
  if (config_.metrics != nullptr) {
    hist_propose_to_decide_ =
        &config_.metrics->histogram("lat.propose_to_decide");
    hist_decide_to_commit_ = &config_.metrics->histogram("lat.decide_to_commit");
    ctr_spec_runs_ = &config_.metrics->counter("exec.speculative_runs");
    ctr_spec_aborts_ = &config_.metrics->counter("exec.aborts");
    ctr_fallback_txs_ = &config_.metrics->counter("exec.fallback_txs");
    g_roots_computed_ = &config_.metrics->gauge("state.roots_computed");
    g_roots_deferred_ = &config_.metrics->gauge("state.roots_deferred");
    g_state_hits_ = &config_.metrics->gauge("state.snapshot_hits");
    g_state_faults_ = &config_.metrics->gauge("state.snapshot_faults");
    g_state_evictions_ = &config_.metrics->gauge("state.snapshot_evictions");
    g_state_resident_ = &config_.metrics->gauge("state.resident_accounts");
  }
}

void ValidatorNode::publish_state_obs() {
  if (g_roots_computed_ == nullptr) return;
  const ExecutionOracle::RootStats& roots = oracle_->root_stats();
  g_roots_computed_->set(static_cast<std::int64_t>(roots.computed));
  g_roots_deferred_->set(static_cast<std::int64_t>(roots.deferred));
  const state::StateDB::BackingStats backing = oracle_->db().backing_stats();
  g_state_hits_->set(static_cast<std::int64_t>(backing.hits));
  g_state_faults_->set(static_cast<std::int64_t>(backing.faults));
  g_state_evictions_->set(static_cast<std::int64_t>(backing.evictions));
  g_state_resident_->set(
      static_cast<std::int64_t>(oracle_->db().resident_accounts()));
}

void ValidatorNode::start() {
  if (started_ || config_.behavior.silent) return;
  started_ = true;
  begin_round(0);
}

// ---------------------------------------------------------------------------
// Reception (Alg. 1 lines 4-9)
// ---------------------------------------------------------------------------

void ValidatorNode::handle_message(sim::NodeId from,
                                   const sim::MessagePtr& message) {
  if (config_.behavior.silent) return;
  if (crashed_) return;  // down: anything still in flight is lost
  if (const auto* client = dynamic_cast<const ClientTxMsg*>(message.get())) {
    on_client_tx(from, client->tx);
    return;
  }
  if (const auto* gossip = dynamic_cast<const GossipTxMsg*>(message.get())) {
    on_gossip_tx(from, gossip->tx);
    return;
  }
  if (const auto* req = dynamic_cast<const SyncRequestMsg*>(message.get())) {
    on_sync_request(from, *req);
    return;
  }
  if (const auto* resp = dynamic_cast<const SyncResponseMsg*>(message.get())) {
    sync_->on_response(static_cast<std::uint32_t>(from), *resp);
    return;
  }
  // Consensus traffic: route by index. Instances exist lazily so early
  // messages for future rounds are absorbed by their (not yet begun)
  // instance; PULLs for completed instances are answered by them too.
  std::uint64_t index = 0;
  const auto* pull = dynamic_cast<const consensus::PullMsg*>(message.get());
  const auto* bin = dynamic_cast<const consensus::BinMsg*>(message.get());
  const auto* dec = dynamic_cast<const consensus::DecidedMsg*>(message.get());
  if (pull != nullptr) {
    index = pull->index;
  } else if (bin != nullptr) {
    index = bin->index;
  } else if (dec != nullptr) {
    index = dec->index;
  } else if (const auto* p = dynamic_cast<const consensus::ProposeMsg*>(message.get())) {
    index = p->index;
  } else if (const auto* e = dynamic_cast<const consensus::EchoMsg*>(message.get())) {
    index = e->index;
  } else {
    return;  // unknown message type
  }
  if (index < next_commit_ && !instances_.contains(index)) {
    // The index is committed and its instance pruned (or never rebuilt after
    // a crash wiped it). Don't resurrect a zombie instance; a straggler still
    // working the index is answered from the decided store instead: PULLs
    // with the body plus our echo, bin traffic with the decision the network
    // certified. Without the latter a straggler can starve: with one peer
    // syncing and one already decided, the two still ESTing never reach the
    // 2f+1 binding quorum, and a single retained instance's DECIDED hint is
    // one short of the f+1 adoption threshold.
    if (pull != nullptr) {
      on_stale_pull(from, *pull);
    } else if (bin != nullptr) {
      on_stale_bin(from, index, bin->proposer);
    } else if (dec != nullptr) {
      on_stale_bin(from, index, dec->proposer);
    }
    return;
  }
  // Falling-behind detection: traffic for an index two or more superblocks
  // past our commit frontier means the network decided superblocks we missed
  // entirely. Peers prune completed instances and stop rebroadcasting them,
  // so the consensus layer can no longer heal a gap that old — fall back to
  // catch-up sync (served from the peers' decided stores) and rejoin at the
  // frontier. The message still reaches its instance below: live consensus
  // keeps flowing through passive instances while we replay.
  if (started_ && !syncing_ && index >= next_commit_ + 2) {
    syncing_ = true;
    sync_->start(next_commit_);
  }
  // Adaptive membership: the view governing index k is a pure function of
  // the commits up to k - kViewLag, so an instance may only exist once those
  // commits landed locally. Traffic beyond the derivable horizon is dropped
  // (NOT buffered in a passive instance — it would run under a stale view
  // and could complete with the wrong quorums); the sync started above
  // replays the gap, and the peers' rebroadcast timers re-deliver the live
  // rounds afterwards. With a static committee every view is the same, so no
  // drop is needed and behaviour is unchanged.
  if (tracker_ != nullptr && index > tracker_->max_view_index()) return;
  instance_for(index).handle(from, message);
}

void ValidatorNode::on_stale_pull(sim::NodeId from,
                                  const consensus::PullMsg& msg) {
  const auto it = decided_store_.find(msg.index);
  if (it == decided_store_.end()) return;
  for (const txn::BlockPtr& block : it->second) {
    if (block->header.proposer == msg.proposer) {
      auto reply = std::make_shared<consensus::ProposeMsg>();
      reply->index = msg.index;
      reply->block = block;
      send(from, std::move(reply));
      // Vouch for the hash too: the committed superblock carries the echo
      // quorum's certificate, so re-asserting it is safe and lets the
      // puller rebuild slot readiness (body + echo quorum) from scratch.
      auto echo = std::make_shared<consensus::EchoMsg>();
      echo->index = msg.index;
      echo->proposer = msg.proposer;
      echo->block_hash = block->hash();
      send(from, std::move(echo));
      return;
    }
  }
}

void ValidatorNode::on_client_tx(sim::NodeId from, const txn::TxPtr& tx) {
  ++metrics_.client_txs_received;
  // Eager validation burns CPU before the admission decision (this queueing
  // is the congestion the paper measures).
  post_work(config_.costs.eager_validation, guarded([this, from, tx] {
    ++metrics_.eager_validations;
    if (committed_txs_.contains(tx->hash) || pool_.contains(tx->hash)) return;
    const Status valid = pipeline_.validate_one(*tx, oracle_->db());
    // Span covering the validation CPU charge: post_work delivered us at the
    // completion instant, so the span starts one cost earlier.
    SRBB_TRACE(config_.trace, now() - config_.costs.eager_validation,
               config_.costs.eager_validation, config_.self, "pool",
               "tx.eager_validate", "tx", obs::trace_id(tx->hash), "ok",
               valid ? 1 : 0);
    if (!valid) {
      ++metrics_.eager_failures;
      return;  // drop (Alg. 1: failed eager validation)
    }
    client_origins_.emplace(tx->hash, from);
    admit_to_pool(tx);
    if (!config_.tvpr) {
      // Modern blockchain: propagate the individual transaction (line 9).
      gossip_tx(tx, std::nullopt);
    }
  }));
}

void ValidatorNode::on_gossip_tx(sim::NodeId from, const txn::TxPtr& tx) {
  ++metrics_.gossip_txs_received;
  // Cheap dedup before the expensive validation, as Geth does. This is what
  // makes duplicated/reordered gossip (fault injection) harmless: a second
  // copy costs one seen-set lookup, never a second validation or pool slot.
  post_work(config_.costs.gossip_dedup, guarded([this, from, tx] {
    if (seen_gossip_.contains(tx->hash) || committed_txs_.contains(tx->hash) ||
        pool_.contains(tx->hash)) {
      ++metrics_.gossip_dups_suppressed;
      return;
    }
    seen_gossip_.insert(tx->hash);
    post_work(config_.costs.eager_validation, guarded([this, from, tx] {
      ++metrics_.eager_validations;  // the redundant validation TVPR removes
      const Status valid = pipeline_.validate_one(*tx, oracle_->db());
      if (!valid) {
        ++metrics_.eager_failures;
        return;
      }
      admit_to_pool(tx);
      gossip_tx(tx, from);
    }));
  }));
}

void ValidatorNode::admit_to_pool(const txn::TxPtr& tx) {
  pool_.add(tx, now());
}

void ValidatorNode::gossip_tx(const txn::TxPtr& tx,
                              std::optional<sim::NodeId> skip) {
  if (overlay_ == nullptr) return;
  seen_gossip_.insert(tx->hash);
  auto msg = std::make_shared<GossipTxMsg>();
  msg->tx = tx;
  for (const sim::NodeId peer : overlay_->peers(id())) {
    if (peer >= config_.n) continue;  // only validators gossip
    if (skip.has_value() && peer == *skip) continue;
    ++metrics_.gossip_txs_sent;
    send(peer, msg);
  }
}

// ---------------------------------------------------------------------------
// Consensus (Alg. 1 lines 10-18)
// ---------------------------------------------------------------------------

SuperblockInstance& ValidatorNode::instance_for(std::uint64_t index) {
  auto it = instances_.find(index);
  if (it != instances_.end()) return *it->second;

  SuperblockConfig sb_config;
  sb_config.n = config_.n;
  sb_config.f = config_.f;
  sb_config.self = config_.self;
  sb_config.proposal_timeout = config_.proposal_timeout;
  sb_config.pull_retry = config_.pull_retry;
  sb_config.rebroadcast_interval = config_.rebroadcast_interval;
  sb_config.scheme = config_.scheme;
  sb_config.trace = config_.trace;
  // Snapshot the governing view once: the instance keeps it for its whole
  // life, so a later tracker advance (pruning old views) cannot affect it.
  const consensus::MembershipView view =
      tracker_ != nullptr ? tracker_->view_for(index)
                          : consensus::MembershipView{};
  sb_config.membership = view;

  SuperblockCallbacks cb;
  cb.broadcast = [this](sim::MessagePtr msg) {
    for (std::uint32_t peer = 0; peer < config_.n; ++peer) {
      if (peer != config_.self) send(peer, msg);
    }
  };
  cb.send_to = [this](std::uint32_t peer, sim::MessagePtr msg) {
    if (peer != config_.self && peer < config_.n) send(peer, std::move(msg));
  };
  cb.validate_header = [this](const txn::Block& block) {
    return validate_header(block);
  };
  cb.expect_proposal = [this, view](std::uint32_t proposer) {
    // Removed validators propose nothing ever again; disabled ones keep
    // their slot (a decided-1 slot is their re-admission evidence), so only
    // removal short-circuits the proposal timeout.
    if (view.committee_n() != 0 && view.removed(proposer)) return false;
    if (rpm_ == nullptr || !config_.rpm) return true;
    const crypto::Identity who = config_.scheme->make_identity(proposer);
    return !rpm_->is_excluded(who.address());
  };
  cb.on_superblock = [this, index](std::vector<txn::BlockPtr> blocks) {
    on_superblock(index, std::move(blocks));
  };
  cb.set_timer = [this](SimDuration delay, std::function<void()> fn) {
    // The instance's own alive_ sentinel already no-ops timers of destroyed
    // instances; the epoch guard covers the crash-wipes-instances_ case too.
    sim().schedule_after(delay, guarded(std::move(fn)));
  };
  cb.now = [this] { return now(); };

  it = instances_
           .emplace(index, std::make_unique<SuperblockInstance>(
                               sb_config, index, std::move(cb)))
           .first;
  return *it->second;
}

void ValidatorNode::begin_round(std::uint64_t index) {
  current_round_ = index;
  last_round_start_ = now();
  if (obs_on()) round_began_at_[index] = now();
  txn::BlockPtr proposal = build_proposal(index);
  SRBB_TRACE(config_.trace, now(), 0, config_.self, "consensus",
             "round.propose", "index", index, "txs", proposal->txs.size());
  instance_for(index).begin(std::move(proposal));
}

txn::BlockPtr ValidatorNode::build_proposal(std::uint64_t index) {
  std::vector<txn::TxPtr> txs;
  if (!config_.behavior.censor) {
    txs = pool_.take_batch(config_.max_block_txs, config_.max_block_bytes,
                           now());
  }
  // Flooding attack: a Byzantine proposer stuffs invalid transactions into
  // its block, skipping eager validation to save cost (§III-B, §V-B).
  for (std::uint32_t i = 0; i < config_.behavior.flood_invalid_per_block; ++i) {
    if (config_.behavior.flood_total_limit != 0 &&
        metrics_.invalid_txs_flooded >= config_.behavior.flood_total_limit) {
      break;
    }
    txs.push_back(make_invalid_tx());
    ++metrics_.invalid_txs_flooded;
  }
  ++metrics_.blocks_proposed;
  return std::make_shared<const txn::Block>(
      txn::make_block(index, config_.self, now(), parent_hash_, std::move(txs),
                      identity_, *config_.scheme));
}

txn::TxPtr ValidatorNode::make_invalid_tx() {
  // Properly signed, but the sender has 0 balance (the paper's construction)
  // so lazy validation / execution rejects it.
  const crypto::Identity broke = config_.scheme->make_identity(
      0xF000'0000'0000'0000ull + (static_cast<std::uint64_t>(config_.self) << 32) +
      invalid_tx_counter_++);
  txn::TxParams params;
  params.kind = txn::TxKind::kTransfer;
  params.nonce = 0;
  params.gas_price = U256{1};
  params.gas_limit = 21'000;
  params.to = identity_.address();
  params.value = U256{1};
  return txn::make_tx_ptr(txn::make_signed(params, broke, *config_.scheme));
}

bool ValidatorNode::validate_header(const txn::Block& block) const {
  if (block.header.proposer >= config_.n) return false;
  // The certificate key must be the known key of the claimed rank, so a
  // Byzantine validator cannot propose under another's slot.
  const crypto::Identity expected =
      config_.scheme->make_identity(block.header.proposer);
  if (block.header.cert.proposer_pubkey != expected.public_key) return false;
  // RPM exclusion (Alg. 2 line 42): correct validators drop blocks from
  // slashed proposers.
  if (rpm_ != nullptr && config_.rpm &&
      rpm_->is_excluded(expected.address())) {
    return false;
  }
  // Adaptive membership: removal is permanent (slash-beats-disable), so a
  // removed rank's blocks are invalid under the view governing their index.
  // handle_message already dropped traffic beyond the derivable horizon, so
  // the view lookup cannot miss.
  if (tracker_ != nullptr &&
      tracker_->view_for(block.header.index).removed(
          static_cast<std::uint32_t>(block.header.proposer))) {
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Commit (Alg. 1 lines 19-31)
// ---------------------------------------------------------------------------

void ValidatorNode::on_superblock(std::uint64_t index,
                                  std::vector<txn::BlockPtr> blocks) {
  // The decided set is recorded before commit so a restarted peer can fetch
  // it; the commit pipeline then drains pending_superblocks_ in order.
  decided_store_[index] = blocks;
  if (index < next_commit_) return;  // already committed (sync + passive dup)
  if (obs_on() && round_began_at_.contains(index)) {
    decided_at_[index] = now();
    if (hist_propose_to_decide_ != nullptr) {
      hist_propose_to_decide_->observe(now() - round_began_at_[index]);
    }
  }
  pending_superblocks_[index] = std::move(blocks);
  try_commit();
}

void ValidatorNode::try_commit() {
  if (commit_in_flight_) return;
  const auto it = pending_superblocks_.find(next_commit_);
  if (it == pending_superblocks_.end()) return;
  commit_in_flight_ = true;

  const std::uint64_t index = it->first;
  // Execute (memoized in shared mode, deterministic either way) to learn the
  // attempt/valid split, then charge the commit-path CPU before finalizing:
  // every attempt pays lazy validation + signature recovery, valid
  // transactions additionally pay the EVM apply.
  const bool first_exec = !oracle_->executed(index);
  const IndexExecResult& result = oracle_->execute(
      index, it->second,
      ExecutionOracle::ExecContext{config_.trace, now(), config_.self});
  if (first_exec) {
    // Parallel-execution counters land once per index (the first executor;
    // memoized replays on a shared oracle did no speculative work).
    if (ctr_spec_runs_ != nullptr) {
      ctr_spec_runs_->inc(result.parallel.speculative_runs);
    }
    if (ctr_spec_aborts_ != nullptr) ctr_spec_aborts_->inc(result.parallel.aborts);
    if (ctr_fallback_txs_ != nullptr) {
      ctr_fallback_txs_->inc(result.parallel.fallback_txs);
    }
  }
  std::size_t attempts = 0;
  for (const txn::BlockPtr& block : it->second) attempts += block->txs.size();
  const SimDuration cost =
      static_cast<SimDuration>(attempts) *
          (config_.costs.lazy_validation + config_.costs.sig_check_exec) +
      static_cast<SimDuration>(result.total_valid) *
          config_.costs.execution_per_tx;
  post_work(cost, guarded([this, index] {
    const auto pending = pending_superblocks_.find(index);
    commit_index(index, pending->second);
    pending_superblocks_.erase(pending);
    commit_in_flight_ = false;
    try_commit();  // next superblock may already be waiting
  }));
}

void ValidatorNode::commit_index(std::uint64_t index,
                                 const std::vector<txn::BlockPtr>& blocks) {
  const IndexExecResult& result = oracle_->execute(index, blocks);
  publish_state_obs();

  std::vector<Hash32> committed_hashes;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const txn::BlockPtr& block = blocks[b];
    const BlockExecResult& block_result = result.blocks[b];
    for (std::size_t t = 0; t < block->txs.size(); ++t) {
      const TxOutcome& outcome = block_result.outcomes[t];
      if (outcome.valid) {
        ++metrics_.txs_committed_valid;
        committed_txs_.insert(outcome.hash);
        committed_hashes.push_back(outcome.hash);
        const auto origin = client_origins_.find(outcome.hash);
        if (origin != client_origins_.end()) {
          auto ack = std::make_shared<CommitAckMsg>();
          ack->tx_hash = outcome.hash;
          ack->executed_ok = outcome.executed_ok;
          SRBB_TRACE(config_.trace, now(), 0, config_.self, "commit",
                     "commit.ack", "tx", obs::trace_id(outcome.hash), "ok",
                     outcome.executed_ok ? 1 : 0);
          send(origin->second, ack);
          client_origins_.erase(origin);
        }
      } else {
        ++metrics_.txs_discarded_invalid;
      }
    }
  }
  pool_.remove_committed(committed_hashes);

  // Chain digest for safety checks: previous digest + block hashes + root.
  crypto::Sha256 digest;
  digest.update(parent_hash_.view());
  for (const txn::BlockPtr& block : blocks) {
    digest.update(block->hash().view());
  }
  digest.update(result.state_root.view());
  parent_hash_ = digest.finish();
  chain_.push_back(parent_hash_);
  last_state_root_ = result.state_root;
  ++metrics_.superblocks_committed;
  SRBB_TRACE(config_.trace, now(), 0, config_.self, "commit",
             "superblock.commit", "index", index, "valid", result.total_valid);
  if (obs_on()) {
    const auto decided = decided_at_.find(index);
    if (decided != decided_at_.end()) {
      if (hist_decide_to_commit_ != nullptr) {
        hist_decide_to_commit_->observe(now() - decided->second);
      }
      decided_at_.erase(decided);
    }
    round_began_at_.erase(index);
  }

  // Adaptive membership: fold this committed superblock into the reliability
  // tracker — including during catch-up replay (the tracker is per-node and
  // must observe every index exactly once to regrow the identical view
  // sequence). Evidence is consensus-visible only: which ranks contributed a
  // decided block, and each block's deterministic invalid-transaction count.
  if (tracker_ != nullptr) {
    std::vector<bool> contributed(config_.n, false);
    std::vector<std::uint32_t> invalid_txs(config_.n, 0);
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      const auto proposer =
          static_cast<std::uint32_t>(blocks[b]->header.proposer);
      contributed[proposer] = true;
      // Removal evidence counts only *provably* invalid transactions: ones
      // whose sender is a virgin account (balance 0, nonce 0) — an account
      // that could never have produced a valid transaction at any chain
      // state, which is exactly the paper's flooding construction (§V-B).
      // Honest blocks also carry invalid transactions under load — duplicate
      // resends and cross-endpoint nonce races — but those come from funded
      // senders, so they never accumulate toward removal. The predicate is
      // evaluation-state-stable (flood senders are never funded, workload
      // senders are genesis-funded), so every replica counts identically.
      std::uint32_t invalid = 0;
      const std::vector<TxOutcome>& outcomes = result.blocks[b].outcomes;
      for (std::size_t t = 0; t < outcomes.size(); ++t) {
        if (outcomes[t].valid) continue;
        const Address& sender = blocks[b]->txs[t]->sender;
        if (oracle_->db().balance(sender).is_zero() &&
            oracle_->db().nonce(sender) == 0) {
          ++invalid;
        }
      }
      invalid_txs[proposer] += invalid;
    }
    const std::vector<rpm::MembershipEvent> events =
        tracker_->on_superblock_committed(index, contributed, invalid_txs);
    for (const rpm::MembershipEvent& event : events) {
      switch (event.kind) {
        case rpm::MembershipEvent::Kind::kDisabled:
          ++metrics_.membership_disables;
          break;
        case rpm::MembershipEvent::Kind::kReadmitted:
          ++metrics_.membership_readmissions;
          break;
        case rpm::MembershipEvent::Kind::kRemoved:
          ++metrics_.membership_removals;
          break;
      }
      SRBB_TRACE(config_.trace, now(), 0, config_.self, "membership",
                 "membership.event", "rank", event.rank, "kind",
                 static_cast<std::uint64_t>(event.kind));
    }
  }

  // During catch-up replay the RPM hooks are skipped: the pre-crash run (and
  // every live peer) already reported these indices to the shared contract,
  // so replaying the reports would double-count them.
  if (rpm_ != nullptr && config_.rpm && !syncing_) {
    run_rpm_hooks(index, blocks, result);
  }
  recycle_undecided(index);

  // A live commit always comes from its instance completing; an instance
  // still incomplete here is a passive husk built from traffic that raced a
  // catch-up replay. Keeping it would swallow stragglers' messages for this
  // index that the decided store can actually answer — drop it.
  const auto husk = instances_.find(index);
  if (husk != instances_.end() && !husk->second->complete()) {
    instances_.erase(husk);
  }

  ++next_commit_;
  if (syncing_) {
    // Replay only: consensus resumes once the commit frontier reaches the
    // fetch frontier (begin_round for an old index would propose doomed
    // blocks into rounds the peers finished long ago).
    if (sync_caught_up_ && !sync_->active() && next_commit_ >= sync_frontier_) {
      finish_sync();
    }
    return;
  }
  if (!started_) return;
  // Schedule the next round, pacing by the configured block interval.
  const std::uint64_t next_round = index + 1;
  if (next_round > current_round_) {
    const SimTime earliest = last_round_start_ + config_.min_block_interval;
    if (now() >= earliest) {
      begin_round(next_round);
    } else {
      sim().schedule_at(earliest, guarded([this, next_round] {
        if (next_round > current_round_) begin_round(next_round);
      }));
    }
  }
}

void ValidatorNode::recycle_undecided(std::uint64_t index) {
  // Alg. 1 lines 27-31: transactions of received-but-undecided blocks are
  // eagerly validated and returned to the pool for a future block. Each
  // block goes through the staged pipeline as one batch — one batched
  // signature verification per block instead of per transaction — and the
  // survivors are re-admitted in one add_batch call. Candidate selection and
  // metric accounting match the old per-transaction loop exactly: in-block
  // duplicates are screened by `in_batch` (the sequential loop caught them
  // via pool_.contains after the first admission), and admission between
  // blocks keeps cross-block duplicates on the pool_.contains path.
  const auto it = instances_.find(index);
  if (it == instances_.end()) return;
  std::vector<txn::TxPtr> candidates;
  std::vector<txn::TxPtr> admit;
  std::unordered_set<Hash32, Hash32Hasher> in_batch;
  for (const txn::BlockPtr& block : it->second->undecided_blocks()) {
    candidates.clear();
    admit.clear();
    in_batch.clear();
    for (const txn::TxPtr& tx : block->txs) {
      if (committed_txs_.contains(tx->hash) || pool_.contains(tx->hash) ||
          !in_batch.insert(tx->hash).second) {
        continue;
      }
      candidates.push_back(tx);
    }
    if (candidates.empty()) continue;
    metrics_.eager_validations += candidates.size();
    const std::vector<Status> results =
        pipeline_.validate(candidates, oracle_->db());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (results[i].is_ok()) {
        admit.push_back(candidates[i]);
      } else {
        ++metrics_.eager_failures;
      }
    }
    metrics_.txs_recycled += pool_.add_batch(admit, now()).added;
  }
  // The instance has served its purpose; keep only a window for late PULLs.
  if (index >= 4) instances_.erase(instances_.begin(),
                                   instances_.lower_bound(index - 3));
}

// ---------------------------------------------------------------------------
// Crash / recovery (DESIGN.md §7)
// ---------------------------------------------------------------------------

void ValidatorNode::crash() {
  if (crashed_) return;
  crashed_ = true;
  started_ = false;
  syncing_ = false;
  sync_caught_up_ = false;
  sync_frontier_ = 0;
  ++epoch_;  // disarm every queued closure (CPU work, timers, round pacing)
  ++metrics_.crashes;
  sync_->cancel();

  // Volatile state is gone: pool, dedup sets, chain, consensus instances,
  // decided-block store, execution state. Destroying the instances also
  // orphans their pending timers via the alive_ sentinels.
  pool_ = pool::TxPool(config_.pool);
  register_obs();  // the fresh pool needs its sink/counters re-attached
  round_began_at_.clear();
  decided_at_.clear();
  seen_gossip_.clear();
  committed_txs_.clear();
  client_origins_.clear();
  instances_.clear();
  pending_superblocks_.clear();
  decided_store_.clear();
  current_round_ = 0;
  next_commit_ = 0;
  commit_in_flight_ = false;
  last_round_start_ = 0;
  parent_hash_ = Hash32{};
  chain_.clear();
  last_state_root_ = Hash32{};
  if (tracker_ != nullptr) {
    // Rebuilt from genesis; the catch-up replay feeds it every committed
    // index again, regrowing the identical deterministic view sequence.
    tracker_ = std::make_unique<rpm::ReliabilityTracker>(config_.reliability);
  }
  if (config_.oracle_private) oracle_->reset();
}

void ValidatorNode::restart() {
  if (!crashed_) return;
  crashed_ = false;
  ++metrics_.restarts;
  if (config_.behavior.silent) return;
  syncing_ = true;
  sync_->start(next_commit_);  // 0 after a full wipe
}

void ValidatorNode::on_stale_bin(sim::NodeId from, std::uint64_t index,
                                 std::uint32_t proposer) {
  const auto it = decided_store_.find(index);
  if (it == decided_store_.end()) return;
  bool value = false;
  for (const txn::BlockPtr& block : it->second) {
    if (block->header.proposer == proposer) {
      value = true;
      break;
    }
  }
  auto msg = std::make_shared<consensus::DecidedMsg>();
  msg->index = index;
  msg->proposer = proposer;
  msg->value = value;
  send(from, std::move(msg));
}

void ValidatorNode::on_sync_request(sim::NodeId from,
                                    const SyncRequestMsg& msg) {
  ++metrics_.sync_requests_served;
  auto resp = std::make_shared<SyncResponseMsg>();
  resp->index = msg.index;
  resp->height = next_commit_;
  const auto it = decided_store_.find(msg.index);
  if (it != decided_store_.end()) {
    resp->have = true;
    resp->blocks = it->second;
  }
  send(from, std::move(resp));
}

void ValidatorNode::on_synced_superblock(std::uint64_t index,
                                         std::vector<txn::BlockPtr> blocks) {
  ++metrics_.superblocks_synced;
  // Feed the fetched superblock through the regular commit pipeline: the
  // replay re-executes (or reuses the memoized result of) every index, so
  // the rebuilt chain digest is bit-for-bit the one the node lost.
  on_superblock(index, std::move(blocks));
}

void ValidatorNode::on_caught_up(std::uint64_t frontier) {
  sync_caught_up_ = true;
  sync_frontier_ = frontier;
  // Resume only once the replay drained. If a commit is in flight it is for
  // next_commit_ itself; its continuation re-runs this check.
  if (next_commit_ >= sync_frontier_ && !commit_in_flight_) finish_sync();
}

void ValidatorNode::finish_sync() {
  if (!syncing_) return;
  syncing_ = false;
  sync_caught_up_ = false;
  started_ = true;
  // While we replayed, live consensus kept flowing through the passive
  // instances; the frontier superblock may therefore already be decided.
  // Commit it instead of proposing into a finished round.
  if (pending_superblocks_.contains(next_commit_)) {
    try_commit();
  } else {
    begin_round(next_commit_);
  }
}

void ValidatorNode::run_rpm_hooks(std::uint64_t index,
                                  const std::vector<txn::BlockPtr>& blocks,
                                  const IndexExecResult& result) {
  // Adaptive membership composes with RPM through the quorum context: the
  // propReceived / report thresholds run over the effective committee of the
  // view governing this index, and a disabled proposer accrues no reward
  // (its key is still consumed). Without a tracker the contract keeps its
  // static n - f thresholds.
  rpm::QuorumContext ctx;
  const rpm::QuorumContext* ctx_ptr = nullptr;
  consensus::MembershipView view;
  if (tracker_ != nullptr) {
    view = tracker_->view_for(index);
    ctx.quorums = view.quorums();
    ctx_ptr = &ctx;
  }
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const txn::BlockPtr& block = blocks[b];
    if (ctx_ptr != nullptr) {
      ctx.proposer_reward_eligible =
          view.counts(static_cast<std::uint32_t>(block->header.proposer));
    }
    rpm::BlockSummary summary;
    summary.proposer_pubkey = block->header.cert.proposer_pubkey;
    summary.signed_tx_root = block->header.cert.signed_tx_root;
    summary.tx_root = block->header.tx_root;
    summary.tx_count = static_cast<std::uint32_t>(block->txs.size());
    for (const TxOutcome& outcome : result.blocks[b].outcomes) {
      summary.total_fees += outcome.fee;
    }
    rpm_->prop_received(identity_.address(), summary,
                        static_cast<std::uint32_t>(b), index, ctx_ptr);

    // Report every invalid transaction with its Merkle inclusion proof.
    std::vector<Hash32> leaves;
    leaves.reserve(block->txs.size());
    for (const txn::TxPtr& tx : block->txs) leaves.push_back(tx->hash);
    for (std::size_t t = 0; t < block->txs.size(); ++t) {
      if (result.blocks[b].outcomes[t].valid) continue;
      const crypto::MerkleProof proof = crypto::merkle_prove(leaves, t);
      rpm_->report(identity_.address(), summary, index, leaves[t], proof,
                   ctx_ptr);
    }
  }
}

}  // namespace srbb::node
