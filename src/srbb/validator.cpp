#include "srbb/validator.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"
#include "txn/validation.hpp"

namespace srbb::node {

using consensus::SuperblockCallbacks;
using consensus::SuperblockConfig;
using consensus::SuperblockInstance;

ValidatorNode::ValidatorNode(sim::Simulation& simulation, sim::NodeId id,
                             sim::RegionId region, ValidatorConfig config,
                             std::shared_ptr<ExecutionOracle> oracle,
                             std::shared_ptr<rpm::RewardPenaltyMechanism> rpm,
                             const sim::GossipOverlay* overlay)
    : sim::SimNode(simulation, id, region),
      config_(std::move(config)),
      identity_(config_.scheme->make_identity(config_.self)),
      oracle_(std::move(oracle)),
      rpm_(std::move(rpm)),
      overlay_(overlay),
      pool_(config_.pool) {}

void ValidatorNode::start() {
  if (started_ || config_.behavior.silent) return;
  started_ = true;
  begin_round(0);
}

// ---------------------------------------------------------------------------
// Reception (Alg. 1 lines 4-9)
// ---------------------------------------------------------------------------

void ValidatorNode::handle_message(sim::NodeId from,
                                   const sim::MessagePtr& message) {
  if (config_.behavior.silent) return;
  if (const auto* client = dynamic_cast<const ClientTxMsg*>(message.get())) {
    on_client_tx(from, client->tx);
    return;
  }
  if (const auto* gossip = dynamic_cast<const GossipTxMsg*>(message.get())) {
    on_gossip_tx(from, gossip->tx);
    return;
  }
  // Consensus traffic: route by index. Instances exist lazily so early
  // messages for future rounds are absorbed by their (not yet begun)
  // instance; PULLs for completed instances are answered by them too.
  std::uint64_t index = 0;
  if (const auto* p = dynamic_cast<const consensus::ProposeMsg*>(message.get())) {
    index = p->index;
  } else if (const auto* e = dynamic_cast<const consensus::EchoMsg*>(message.get())) {
    index = e->index;
  } else if (const auto* pl = dynamic_cast<const consensus::PullMsg*>(message.get())) {
    index = pl->index;
  } else if (const auto* b = dynamic_cast<const consensus::BinMsg*>(message.get())) {
    index = b->index;
  } else if (const auto* d = dynamic_cast<const consensus::DecidedMsg*>(message.get())) {
    index = d->index;
  } else {
    return;  // unknown message type
  }
  instance_for(index).handle(from, message);
}

void ValidatorNode::on_client_tx(sim::NodeId from, const txn::TxPtr& tx) {
  ++metrics_.client_txs_received;
  // Eager validation burns CPU before the admission decision (this queueing
  // is the congestion the paper measures).
  post_work(config_.costs.eager_validation, [this, from, tx] {
    ++metrics_.eager_validations;
    if (committed_txs_.contains(tx->hash) || pool_.contains(tx->hash)) return;
    const Status valid = txn::eager_validate(
        tx->tx, oracle_->db(), *config_.scheme, config_.validation);
    if (!valid) {
      ++metrics_.eager_failures;
      return;  // drop (Alg. 1: failed eager validation)
    }
    client_origins_.emplace(tx->hash, from);
    admit_to_pool(tx);
    if (!config_.tvpr) {
      // Modern blockchain: propagate the individual transaction (line 9).
      gossip_tx(tx, std::nullopt);
    }
  });
}

void ValidatorNode::on_gossip_tx(sim::NodeId from, const txn::TxPtr& tx) {
  ++metrics_.gossip_txs_received;
  // Cheap dedup before the expensive validation, as Geth does.
  post_work(config_.costs.gossip_dedup, [this, from, tx] {
    if (seen_gossip_.contains(tx->hash) || committed_txs_.contains(tx->hash) ||
        pool_.contains(tx->hash)) {
      return;
    }
    seen_gossip_.insert(tx->hash);
    post_work(config_.costs.eager_validation, [this, from, tx] {
      ++metrics_.eager_validations;  // the redundant validation TVPR removes
      const Status valid = txn::eager_validate(
          tx->tx, oracle_->db(), *config_.scheme, config_.validation);
      if (!valid) {
        ++metrics_.eager_failures;
        return;
      }
      admit_to_pool(tx);
      gossip_tx(tx, from);
    });
  });
}

void ValidatorNode::admit_to_pool(const txn::TxPtr& tx) {
  pool_.add(tx, now());
}

void ValidatorNode::gossip_tx(const txn::TxPtr& tx,
                              std::optional<sim::NodeId> skip) {
  if (overlay_ == nullptr) return;
  seen_gossip_.insert(tx->hash);
  auto msg = std::make_shared<GossipTxMsg>();
  msg->tx = tx;
  for (const sim::NodeId peer : overlay_->peers(id())) {
    if (peer >= config_.n) continue;  // only validators gossip
    if (skip.has_value() && peer == *skip) continue;
    ++metrics_.gossip_txs_sent;
    send(peer, msg);
  }
}

// ---------------------------------------------------------------------------
// Consensus (Alg. 1 lines 10-18)
// ---------------------------------------------------------------------------

SuperblockInstance& ValidatorNode::instance_for(std::uint64_t index) {
  auto it = instances_.find(index);
  if (it != instances_.end()) return *it->second;

  SuperblockConfig sb_config;
  sb_config.n = config_.n;
  sb_config.f = config_.f;
  sb_config.self = config_.self;
  sb_config.proposal_timeout = config_.proposal_timeout;
  sb_config.pull_retry = config_.pull_retry;
  sb_config.scheme = config_.scheme;

  SuperblockCallbacks cb;
  cb.broadcast = [this](sim::MessagePtr msg) {
    for (std::uint32_t peer = 0; peer < config_.n; ++peer) {
      if (peer != config_.self) send(peer, msg);
    }
  };
  cb.send_to = [this](std::uint32_t peer, sim::MessagePtr msg) {
    if (peer != config_.self && peer < config_.n) send(peer, std::move(msg));
  };
  cb.validate_header = [this](const txn::Block& block) {
    return validate_header(block);
  };
  cb.expect_proposal = [this](std::uint32_t proposer) {
    if (rpm_ == nullptr || !config_.rpm) return true;
    const crypto::Identity who = config_.scheme->make_identity(proposer);
    return !rpm_->is_excluded(who.address());
  };
  cb.on_superblock = [this, index](std::vector<txn::BlockPtr> blocks) {
    on_superblock(index, std::move(blocks));
  };
  cb.set_timer = [this](SimDuration delay, std::function<void()> fn) {
    sim().schedule_after(delay, std::move(fn));
  };

  it = instances_
           .emplace(index, std::make_unique<SuperblockInstance>(
                               sb_config, index, std::move(cb)))
           .first;
  return *it->second;
}

void ValidatorNode::begin_round(std::uint64_t index) {
  current_round_ = index;
  last_round_start_ = now();
  instance_for(index).begin(build_proposal(index));
}

txn::BlockPtr ValidatorNode::build_proposal(std::uint64_t index) {
  std::vector<txn::TxPtr> txs;
  if (!config_.behavior.censor) {
    txs = pool_.take_batch(config_.max_block_txs, config_.max_block_bytes,
                           now());
  }
  // Flooding attack: a Byzantine proposer stuffs invalid transactions into
  // its block, skipping eager validation to save cost (§III-B, §V-B).
  for (std::uint32_t i = 0; i < config_.behavior.flood_invalid_per_block; ++i) {
    if (config_.behavior.flood_total_limit != 0 &&
        metrics_.invalid_txs_flooded >= config_.behavior.flood_total_limit) {
      break;
    }
    txs.push_back(make_invalid_tx());
    ++metrics_.invalid_txs_flooded;
  }
  ++metrics_.blocks_proposed;
  return std::make_shared<const txn::Block>(
      txn::make_block(index, config_.self, now(), parent_hash_, std::move(txs),
                      identity_, *config_.scheme));
}

txn::TxPtr ValidatorNode::make_invalid_tx() {
  // Properly signed, but the sender has 0 balance (the paper's construction)
  // so lazy validation / execution rejects it.
  const crypto::Identity broke = config_.scheme->make_identity(
      0xF000'0000'0000'0000ull + (static_cast<std::uint64_t>(config_.self) << 32) +
      invalid_tx_counter_++);
  txn::TxParams params;
  params.kind = txn::TxKind::kTransfer;
  params.nonce = 0;
  params.gas_price = U256{1};
  params.gas_limit = 21'000;
  params.to = identity_.address();
  params.value = U256{1};
  return txn::make_tx_ptr(txn::make_signed(params, broke, *config_.scheme));
}

bool ValidatorNode::validate_header(const txn::Block& block) const {
  if (block.header.proposer >= config_.n) return false;
  // The certificate key must be the known key of the claimed rank, so a
  // Byzantine validator cannot propose under another's slot.
  const crypto::Identity expected =
      config_.scheme->make_identity(block.header.proposer);
  if (block.header.cert.proposer_pubkey != expected.public_key) return false;
  // RPM exclusion (Alg. 2 line 42): correct validators drop blocks from
  // slashed proposers.
  if (rpm_ != nullptr && config_.rpm &&
      rpm_->is_excluded(expected.address())) {
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Commit (Alg. 1 lines 19-31)
// ---------------------------------------------------------------------------

void ValidatorNode::on_superblock(std::uint64_t index,
                                  std::vector<txn::BlockPtr> blocks) {
  pending_superblocks_[index] = std::move(blocks);
  try_commit();
}

void ValidatorNode::try_commit() {
  if (commit_in_flight_) return;
  const auto it = pending_superblocks_.find(next_commit_);
  if (it == pending_superblocks_.end()) return;
  commit_in_flight_ = true;

  const std::uint64_t index = it->first;
  // Execute (memoized in shared mode, deterministic either way) to learn the
  // attempt/valid split, then charge the commit-path CPU before finalizing:
  // every attempt pays lazy validation + signature recovery, valid
  // transactions additionally pay the EVM apply.
  const IndexExecResult& result = oracle_->execute(index, it->second);
  std::size_t attempts = 0;
  for (const txn::BlockPtr& block : it->second) attempts += block->txs.size();
  const SimDuration cost =
      static_cast<SimDuration>(attempts) *
          (config_.costs.lazy_validation + config_.costs.sig_check_exec) +
      static_cast<SimDuration>(result.total_valid) *
          config_.costs.execution_per_tx;
  post_work(cost, [this, index] {
    const auto pending = pending_superblocks_.find(index);
    commit_index(index, pending->second);
    pending_superblocks_.erase(pending);
    commit_in_flight_ = false;
    try_commit();  // next superblock may already be waiting
  });
}

void ValidatorNode::commit_index(std::uint64_t index,
                                 const std::vector<txn::BlockPtr>& blocks) {
  const IndexExecResult& result = oracle_->execute(index, blocks);

  std::vector<Hash32> committed_hashes;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const txn::BlockPtr& block = blocks[b];
    const BlockExecResult& block_result = result.blocks[b];
    for (std::size_t t = 0; t < block->txs.size(); ++t) {
      const TxOutcome& outcome = block_result.outcomes[t];
      if (outcome.valid) {
        ++metrics_.txs_committed_valid;
        committed_txs_.insert(outcome.hash);
        committed_hashes.push_back(outcome.hash);
        const auto origin = client_origins_.find(outcome.hash);
        if (origin != client_origins_.end()) {
          auto ack = std::make_shared<CommitAckMsg>();
          ack->tx_hash = outcome.hash;
          ack->executed_ok = outcome.executed_ok;
          send(origin->second, ack);
          client_origins_.erase(origin);
        }
      } else {
        ++metrics_.txs_discarded_invalid;
      }
    }
  }
  pool_.remove_committed(committed_hashes);

  // Chain digest for safety checks: previous digest + block hashes + root.
  crypto::Sha256 digest;
  digest.update(parent_hash_.view());
  for (const txn::BlockPtr& block : blocks) {
    digest.update(block->hash().view());
  }
  digest.update(result.state_root.view());
  parent_hash_ = digest.finish();
  chain_.push_back(parent_hash_);
  last_state_root_ = result.state_root;
  ++metrics_.superblocks_committed;

  if (rpm_ != nullptr && config_.rpm) run_rpm_hooks(index, blocks, result);
  recycle_undecided(index);

  ++next_commit_;
  // Schedule the next round, pacing by the configured block interval.
  const std::uint64_t next_round = index + 1;
  if (next_round > current_round_) {
    const SimTime earliest = last_round_start_ + config_.min_block_interval;
    if (now() >= earliest) {
      begin_round(next_round);
    } else {
      sim().schedule_at(earliest, [this, next_round] {
        if (next_round > current_round_) begin_round(next_round);
      });
    }
  }
}

void ValidatorNode::recycle_undecided(std::uint64_t index) {
  // Alg. 1 lines 27-31: transactions of received-but-undecided blocks are
  // eagerly validated and returned to the pool for a future block.
  const auto it = instances_.find(index);
  if (it == instances_.end()) return;
  for (const txn::BlockPtr& block : it->second->undecided_blocks()) {
    for (const txn::TxPtr& tx : block->txs) {
      if (committed_txs_.contains(tx->hash) || pool_.contains(tx->hash)) {
        continue;
      }
      ++metrics_.eager_validations;
      if (txn::eager_validate(tx->tx, oracle_->db(), *config_.scheme,
                              config_.validation)) {
        if (pool_.add(tx, now()) == pool::TxPool::AddResult::kAdded) {
          ++metrics_.txs_recycled;
        }
      } else {
        ++metrics_.eager_failures;
      }
    }
  }
  // The instance has served its purpose; keep only a window for late PULLs.
  if (index >= 4) instances_.erase(instances_.begin(),
                                   instances_.lower_bound(index - 3));
}

void ValidatorNode::run_rpm_hooks(std::uint64_t index,
                                  const std::vector<txn::BlockPtr>& blocks,
                                  const IndexExecResult& result) {
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const txn::BlockPtr& block = blocks[b];
    rpm::BlockSummary summary;
    summary.proposer_pubkey = block->header.cert.proposer_pubkey;
    summary.signed_tx_root = block->header.cert.signed_tx_root;
    summary.tx_root = block->header.tx_root;
    summary.tx_count = static_cast<std::uint32_t>(block->txs.size());
    for (const TxOutcome& outcome : result.blocks[b].outcomes) {
      summary.total_fees += outcome.fee;
    }
    rpm_->prop_received(identity_.address(), summary,
                        static_cast<std::uint32_t>(b), index);

    // Report every invalid transaction with its Merkle inclusion proof.
    std::vector<Hash32> leaves;
    leaves.reserve(block->txs.size());
    for (const txn::TxPtr& tx : block->txs) leaves.push_back(tx->hash);
    for (std::size_t t = 0; t < block->txs.size(); ++t) {
      if (result.blocks[b].outcomes[t].valid) continue;
      const crypto::MerkleProof proof = crypto::merkle_prove(leaves, t);
      rpm_->report(identity_.address(), summary, index, leaves[t], proof);
    }
  }
}

}  // namespace srbb::node
