// Genesis state shared by every validator: pre-funded accounts and
// pre-deployed contracts (the DIABLO DApps are installed at genesis, as the
// benchmark deploys them before the measured run starts).
#pragma once

#include <vector>

#include "common/bytes.hpp"
#include "common/u256.hpp"
#include "state/statedb.hpp"

namespace srbb::node {

struct GenesisSpec {
  struct FundedAccount {
    Address address;
    U256 balance;
  };
  struct PredeployedContract {
    Address address;
    Bytes runtime_code;
    /// Pre-set storage slots (e.g. token balances a workload spends from).
    std::vector<std::pair<Hash32, U256>> storage_slots;
  };

  std::vector<FundedAccount> accounts;
  std::vector<PredeployedContract> contracts;

  void apply(state::StateDB& db) const {
    for (const FundedAccount& account : accounts) {
      db.add_balance(account.address, account.balance);
    }
    for (const PredeployedContract& contract : contracts) {
      db.create_account(contract.address);
      db.set_nonce(contract.address, 1);
      db.set_code(contract.address, contract.runtime_code);
      for (const auto& [slot, value] : contract.storage_slots) {
        db.set_storage(contract.address, slot, value);
      }
    }
    db.commit();
  }
};

}  // namespace srbb::node
