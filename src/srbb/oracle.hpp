// Deterministic block execution. The oracle owns a StateDB and replays
// decided blocks index by index, exactly once per index, discarding invalid
// transactions (Alg. 1 lines 19-26).
//
// Execution modes (see DESIGN.md):
//  - Replicated: each validator owns a private oracle and really executes
//    every block through the EVM — used by tests to check that replicas
//    converge to identical state roots.
//  - Shared: validators share one oracle; the first to commit an index
//    executes it, the rest reuse the memoized result (identical by
//    determinism) while still being charged the modelled CPU time. This is
//    what makes 200-validator benchmark runs laptop-feasible.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "evm/types.hpp"
#include "obs/trace.hpp"
#include "srbb/genesis.hpp"
#include "state/statedb.hpp"
#include "txn/block.hpp"
#include "txn/executor.hpp"
#include "txn/parallel_executor.hpp"

namespace srbb::node {

struct TxOutcome {
  Hash32 hash;
  bool valid = false;        // false -> discarded from the block (Alg.1 l.23)
  bool executed_ok = false;  // EVM frame success (reverts are valid but fail)
  std::uint64_t gas_used = 0;
  U256 fee;                  // gas_used * gas_price
};

struct BlockExecResult {
  std::uint64_t proposer = 0;
  std::vector<TxOutcome> outcomes;
};

struct IndexExecResult {
  std::vector<BlockExecResult> blocks;
  Hash32 state_root;
  std::uint64_t total_valid = 0;
  std::uint64_t total_invalid = 0;
  /// Optimistic-execution counters for this index (all zero when the
  /// superblock was executed sequentially).
  txn::ParallelExecStats parallel;
};

class ExecutionOracle {
 public:
  ExecutionOracle(const GenesisSpec& genesis, evm::BlockContext block_template,
                  const crypto::SignatureScheme& scheme);
  /// Same, with state-stack knobs: commitment cache bounds and deferred root
  /// computation (state/config.hpp). The default StateConfig reproduces the
  /// three-argument constructor exactly.
  ExecutionOracle(const GenesisSpec& genesis, evm::BlockContext block_template,
                  const crypto::SignatureScheme& scheme,
                  state::StateConfig state_config);

  /// Trace context for one execute() call. Events are emitted only on the
  /// first (non-memoized) execution of an index: a shared oracle's memoized
  /// replays are a simulation artifact, not protocol work, and tracing them
  /// would make the trace depend on which replica committed first.
  struct ExecContext {
    obs::TraceSink* trace = nullptr;
    SimTime at = 0;
    std::uint32_t node = 0;
  };

  /// Execute the superblock for `index` (idempotent: repeated calls return
  /// the memoized result). Indices must be executed in increasing order on
  /// first call.
  const IndexExecResult& execute(std::uint64_t index,
                                 const std::vector<txn::BlockPtr>& blocks);
  const IndexExecResult& execute(std::uint64_t index,
                                 const std::vector<txn::BlockPtr>& blocks,
                                 const ExecContext& ctx);

  bool executed(std::uint64_t index) const { return results_.contains(index); }
  const state::StateDB& db() const { return db_; }
  state::StateDB& mutable_db() { return db_; }

  /// Wipe all execution state back to genesis (a validator crash losing its
  /// volatile state). Only meaningful for a privately owned oracle — resetting
  /// a shared oracle would destroy the state of every co-owning replica.
  void reset();

  /// Execution knobs (parallelism, signature re-checking). Changing
  /// `workers` after the first parallel execution has no effect: the worker
  /// pool is created lazily on first use and then kept.
  txn::ExecutionConfig& exec_config() { return exec_config_; }
  const txn::ExecutionConfig& exec_config() const { return exec_config_; }

  /// Deferred-root accounting (state/config.hpp): with defer_root on, the
  /// oracle recomputes the state root only every root_interval indices and
  /// republishes the last computed root in between, keeping the O(n·log n)
  /// digest off most commit paths. Pure function of (state, index, config),
  /// so replicas sharing a config still converge on identical result roots.
  struct RootStats {
    std::uint64_t computed = 0;
    std::uint64_t deferred = 0;
  };
  const RootStats& root_stats() const { return root_stats_; }

 private:
  GenesisSpec genesis_;  // kept so reset() can rebuild the world state
  state::StateConfig state_config_;
  state::StateDB db_;
  evm::BlockContext block_template_;
  txn::ExecutionConfig exec_config_;
  std::unique_ptr<txn::ParallelExecutor> parallel_;
  std::map<std::uint64_t, IndexExecResult> results_;
  Hash32 last_root_;
  bool has_last_root_ = false;
  RootStats root_stats_;
};

}  // namespace srbb::node
