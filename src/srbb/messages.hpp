// Client-facing and gossip messages of the blockchain layer (consensus wire
// messages live in consensus/messages.hpp).
#pragma once

#include "sim/network.hpp"
#include "txn/txref.hpp"

namespace srbb::node {

/// A client submits a pre-signed transaction to one validator (stage 1 of
/// the SRBB transaction life cycle, §IV-C).
struct ClientTxMsg final : sim::Message {
  txn::TxPtr tx;

  std::size_t size_bytes() const override { return tx->size; }
  const char* type() const override { return "client-tx"; }
};

/// Individual transaction propagation between validators — Alg. 1 line 9,
/// the step TVPR removes. Only the modern-blockchain/baseline configuration
/// ever sends these.
struct GossipTxMsg final : sim::Message {
  txn::TxPtr tx;

  std::size_t size_bytes() const override { return tx->size; }
  const char* type() const override { return "gossip-tx"; }
};

/// Commit acknowledgement back to the sending client; the client's observed
/// commit time defines latency, as in DIABLO.
struct CommitAckMsg final : sim::Message {
  Hash32 tx_hash;
  bool executed_ok = false;  // false: included but reverted/failed

  std::size_t size_bytes() const override { return 32 + 1 + 32; }
  const char* type() const override { return "commit-ack"; }
};

}  // namespace srbb::node
