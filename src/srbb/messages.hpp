// Client-facing and gossip messages of the blockchain layer (consensus wire
// messages live in consensus/messages.hpp).
#pragma once

#include <vector>

#include "sim/network.hpp"
#include "txn/block.hpp"
#include "txn/txref.hpp"

namespace srbb::node {

/// A client submits a pre-signed transaction to one validator (stage 1 of
/// the SRBB transaction life cycle, §IV-C).
struct ClientTxMsg final : sim::Message {
  txn::TxPtr tx;

  std::size_t size_bytes() const override { return tx->size; }
  const char* type() const override { return "client-tx"; }
};

/// Individual transaction propagation between validators — Alg. 1 line 9,
/// the step TVPR removes. Only the modern-blockchain/baseline configuration
/// ever sends these.
struct GossipTxMsg final : sim::Message {
  txn::TxPtr tx;

  std::size_t size_bytes() const override { return tx->size; }
  const char* type() const override { return "gossip-tx"; }
};

/// Commit acknowledgement back to the sending client; the client's observed
/// commit time defines latency, as in DIABLO.
struct CommitAckMsg final : sim::Message {
  Hash32 tx_hash;
  bool executed_ok = false;  // false: included but reverted/failed

  std::size_t size_bytes() const override { return 32 + 1 + 32; }
  const char* type() const override { return "commit-ack"; }
};

/// Catch-up sync (crash recovery): a restarted validator asks a peer for the
/// decided superblock at `index`.
struct SyncRequestMsg final : sim::Message {
  std::uint64_t index = 0;

  std::size_t size_bytes() const override { return 8 + 32; }
  const char* type() const override { return "sync-req"; }
};

/// Reply to a SyncRequestMsg. `height` is the responder's commit frontier
/// (next index it will commit); `have` is false when the responder has not
/// decided `index` yet, which tells the requester it reached the frontier.
struct SyncResponseMsg final : sim::Message {
  std::uint64_t index = 0;
  bool have = false;
  std::uint64_t height = 0;
  std::vector<txn::BlockPtr> blocks;  // decided superblock, iff `have`

  std::size_t size_bytes() const override {
    std::size_t bytes = 8 + 1 + 8 + 32;
    for (const txn::BlockPtr& block : blocks) bytes += block->wire_size();
    return bytes;
  }
  const char* type() const override { return "sync-resp"; }
};

}  // namespace srbb::node
