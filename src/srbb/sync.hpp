// Catch-up synchronization for crash recovery (robustness layer, DESIGN.md
// §7). A validator that restarts after a crash has lost its volatile state
// and must rebuild the chain before it can rejoin consensus: it fetches the
// decided superblocks it is missing, one index at a time, from its peers.
//
// Protocol: request index k from a peer; the reply either carries the decided
// superblock for k (advance to k+1) or reports the responder's commit
// frontier with `have = false`, which means the requester has reached the
// head of the chain. Requests that time out are retried against the next
// peer in rank order with exponential backoff, so a crashed or partitioned
// responder only costs one timeout.
//
// Trust model: replies are accepted from the first peer that answers. With
// at most f Byzantine validators this is sound only because every fetched
// superblock is re-executed locally and the resulting chain digest is
// cross-checked by the harness safety checks; a production implementation
// would verify the embedded n-f echo certificates instead (the simulator's
// blocks carry them, see txn::BlockCertificate). See docs/FAULTS.md.
//
// Like the consensus classes this is a pure state machine driven by
// callbacks (no direct network/sim dependency) so it unit-tests standalone.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.hpp"
#include "srbb/messages.hpp"

namespace srbb::node {

struct CatchUpConfig {
  std::uint32_t n = 4;     // validator count (ranks 0..n-1)
  std::uint32_t self = 0;  // this validator's rank
  /// Base request timeout; doubles per consecutive timed-out request.
  SimDuration request_timeout = millis(250);
  /// Cap on the backoff exponent: timeout <<= min(consecutive timeouts, cap).
  std::uint32_t backoff_cap = 4;
};

struct CatchUpCallbacks {
  std::function<void(std::uint32_t peer, sim::MessagePtr)> send_to;
  std::function<void(SimDuration, std::function<void()>)> set_timer;
  /// A fetched decided superblock, fired in strictly increasing index order.
  std::function<void(std::uint64_t index, std::vector<txn::BlockPtr> blocks)>
      on_superblock;
  /// Fired once when the fetch frontier reached the chain head; the frontier
  /// (first index NOT fetched) is passed along.
  std::function<void(std::uint64_t frontier)> on_caught_up;
};

class CatchUpSync {
 public:
  struct Stats {
    std::uint64_t requests_sent = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t superblocks_fetched = 0;
    std::uint64_t stale_responses = 0;
  };

  CatchUpSync(CatchUpConfig config, CatchUpCallbacks callbacks);

  /// Begin fetching at `from_index` (the restarted node's commit frontier,
  /// normally 0 after a full wipe). Restartable: a second start() while
  /// active is ignored.
  void start(std::uint64_t from_index);

  /// Route a peer's SyncResponseMsg.
  void on_response(std::uint32_t from, const SyncResponseMsg& msg);

  /// Abort an in-flight sync (the node crashed again); pending timers become
  /// no-ops and a later start() begins a fresh fetch.
  void cancel();

  bool active() const { return active_; }
  std::uint64_t next_index() const { return next_; }
  /// Highest commit frontier any responder has reported so far.
  std::uint64_t target_height() const { return target_height_; }
  const Stats& stats() const { return stats_; }

 private:
  void request_current();
  std::uint32_t pick_peer() const;

  CatchUpConfig config_;
  CatchUpCallbacks cb_;
  bool active_ = false;
  std::uint64_t next_ = 0;           // index currently being fetched
  std::uint64_t target_height_ = 0;  // max height reported by responders
  /// Which peer to ask: advances on timeouts and on answered-but-empty
  /// responses, holds position while a peer keeps serving.
  std::uint32_t rotation_ = 0;
  /// Consecutive unanswered requests; drives the backoff exponent. Kept
  /// separate from rotation_ so a responsive peer that merely lacks the
  /// block ("have = false") never escalates the timeout — only silence does.
  std::uint32_t backoff_ = 0;
  /// Bumped on every request and accepted response; pending timeout closures
  /// compare against it so a late timer for an already-answered request (or
  /// a sync that was cancelled by a second crash) is a no-op.
  std::uint64_t generation_ = 0;

  Stats stats_;
};

}  // namespace srbb::node
