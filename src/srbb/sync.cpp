#include "srbb/sync.hpp"

#include <algorithm>
#include <utility>

#include "common/invariant.hpp"

namespace srbb::node {

CatchUpSync::CatchUpSync(CatchUpConfig config, CatchUpCallbacks callbacks)
    : config_(std::move(config)), cb_(std::move(callbacks)) {
  SRBB_CHECK(config_.n >= 2);  // needs at least one peer to fetch from
  SRBB_CHECK(config_.self < config_.n);
}

void CatchUpSync::start(std::uint64_t from_index) {
  if (active_) return;
  active_ = true;
  next_ = from_index;
  target_height_ = from_index;
  rotation_ = 0;
  backoff_ = 0;
  request_current();
}

void CatchUpSync::cancel() {
  active_ = false;
  ++generation_;  // orphan any pending timeout closure
}

std::uint32_t CatchUpSync::pick_peer() const {
  // Rotate through the other validators in rank order, one step per retry,
  // so a dead or partitioned responder costs exactly one timeout.
  const std::uint32_t offset = 1 + rotation_ % (config_.n - 1);
  return (config_.self + offset) % config_.n;
}

void CatchUpSync::request_current() {
  const std::uint32_t peer = pick_peer();
  auto request = std::make_shared<SyncRequestMsg>();
  request->index = next_;
  ++stats_.requests_sent;
  cb_.send_to(peer, sim::MessagePtr{std::move(request)});

  const std::uint64_t generation = ++generation_;
  const SimDuration timeout =
      config_.request_timeout
      << std::min<std::uint32_t>(backoff_, config_.backoff_cap);
  cb_.set_timer(timeout, [this, generation] {
    if (!active_ || generation != generation_) return;  // already answered
    ++stats_.timeouts;
    ++rotation_;
    ++backoff_;
    request_current();
  });
}

void CatchUpSync::on_response(std::uint32_t from, const SyncResponseMsg& msg) {
  (void)from;
  if (!active_ || msg.index != next_) {
    // Duplicate delivery or a reply to a request we already retried; both
    // are expected under fault injection and safely ignored.
    ++stats_.stale_responses;
    return;
  }
  ++generation_;  // retire the pending timeout for this request
  target_height_ = std::max(target_height_, msg.height);
  backoff_ = 0;  // the network answered; only silence escalates the timeout

  if (msg.have) {
    ++stats_.superblocks_fetched;
    // Keep asking the peer that just served: it demonstrably has the chain.
    const std::uint64_t index = next_;
    ++next_;
    cb_.on_superblock(index, msg.blocks);
    if (!active_) return;  // on_superblock may have cancelled (re-crash)
    request_current();
    return;
  }

  // The responder does not have `next_`: its frontier is at or below ours.
  // If some earlier responder reported a higher frontier we are not done —
  // rotate to another peer and keep fetching; otherwise we have reached the
  // head of the chain.
  if (target_height_ > next_) {
    ++rotation_;
    request_current();
    return;
  }
  active_ = false;
  cb_.on_caught_up(next_);
}

}  // namespace srbb::node
