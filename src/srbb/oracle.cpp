#include "srbb/oracle.hpp"

namespace srbb::node {

ExecutionOracle::ExecutionOracle(const GenesisSpec& genesis,
                                 evm::BlockContext block_template,
                                 const crypto::SignatureScheme& scheme)
    : block_template_(block_template) {
  genesis.apply(db_);
  exec_config_.verify_signature = true;
  exec_config_.scheme = &scheme;
}

const IndexExecResult& ExecutionOracle::execute(
    std::uint64_t index, const std::vector<txn::BlockPtr>& blocks) {
  if (const auto it = results_.find(index); it != results_.end()) {
    return it->second;
  }
  IndexExecResult result;
  evm::BlockContext block_ctx = block_template_;
  block_ctx.number = index;

  for (const txn::BlockPtr& block : blocks) {
    BlockExecResult block_result;
    block_result.proposer = block->header.proposer;
    for (const txn::TxPtr& tx : block->txs) {
      TxOutcome outcome;
      outcome.hash = tx->hash;
      auto receipt = txn::apply_transaction(tx->tx, db_, block_ctx,
                                            exec_config_);
      if (receipt.is_ok()) {
        outcome.valid = true;
        outcome.executed_ok = receipt.value().success;
        outcome.gas_used = receipt.value().gas_used;
        outcome.fee = tx->tx.gas_price * U256{receipt.value().gas_used};
        ++result.total_valid;
      } else {
        // Invalid transaction: no state transition; discard from the block
        // (Alg. 1 line 23).
        ++result.total_invalid;
      }
      block_result.outcomes.push_back(std::move(outcome));
    }
    result.blocks.push_back(std::move(block_result));
  }
  db_.commit();
  result.state_root = db_.state_root();
  return results_.emplace(index, std::move(result)).first->second;
}

}  // namespace srbb::node
