#include "srbb/oracle.hpp"

namespace srbb::node {

namespace {

// Shared by the sequential and parallel paths so both produce identical
// per-transaction accounting.
TxOutcome outcome_from(const txn::TxPtr& tx,
                       const Result<txn::Receipt>& receipt,
                       IndexExecResult& result) {
  TxOutcome outcome;
  outcome.hash = tx->hash;
  if (receipt.is_ok()) {
    outcome.valid = true;
    outcome.executed_ok = receipt.value().success;
    outcome.gas_used = receipt.value().gas_used;
    outcome.fee = tx->tx.gas_price * U256{receipt.value().gas_used};
    ++result.total_valid;
  } else {
    // Invalid transaction: no state transition; discard from the block
    // (Alg. 1 line 23).
    ++result.total_invalid;
  }
  return outcome;
}

}  // namespace

ExecutionOracle::ExecutionOracle(const GenesisSpec& genesis,
                                 evm::BlockContext block_template,
                                 const crypto::SignatureScheme& scheme)
    : ExecutionOracle(genesis, block_template, scheme, state::StateConfig{}) {}

ExecutionOracle::ExecutionOracle(const GenesisSpec& genesis,
                                 evm::BlockContext block_template,
                                 const crypto::SignatureScheme& scheme,
                                 state::StateConfig state_config)
    : genesis_(genesis),
      state_config_(state_config),
      db_(state_config),
      block_template_(block_template) {
  genesis_.apply(db_);
  exec_config_.verify_signature = true;
  exec_config_.scheme = &scheme;
}

void ExecutionOracle::reset() {
  db_ = state::StateDB{state_config_};
  genesis_.apply(db_);
  results_.clear();
  has_last_root_ = false;
  root_stats_ = RootStats{};
}

const IndexExecResult& ExecutionOracle::execute(
    std::uint64_t index, const std::vector<txn::BlockPtr>& blocks) {
  return execute(index, blocks, ExecContext{});
}

const IndexExecResult& ExecutionOracle::execute(
    std::uint64_t index, const std::vector<txn::BlockPtr>& blocks,
    const ExecContext& ctx) {
  if (const auto it = results_.find(index); it != results_.end()) {
    return it->second;
  }
  IndexExecResult result;
  evm::BlockContext block_ctx = block_template_;
  block_ctx.number = index;

  if (exec_config_.parallel) {
    // Flatten the superblock into canonical order (block order, then
    // transaction order) and hand it to the optimistic executor; receipts
    // come back in the same order and scatter into per-block outcomes.
    std::vector<const txn::Transaction*> flat;
    for (const txn::BlockPtr& block : blocks) {
      for (const txn::TxPtr& tx : block->txs) flat.push_back(&tx->tx);
    }
    if (!parallel_) {
      parallel_ = std::make_unique<txn::ParallelExecutor>(
          exec_config_.workers, exec_config_.max_retries);
    }
    const std::vector<Result<txn::Receipt>> receipts =
        parallel_->execute_block(flat, db_, block_ctx, exec_config_,
                                 &result.parallel,
                                 txn::ExecTraceContext{ctx.trace, ctx.at,
                                                       ctx.node});
    std::size_t next = 0;
    for (const txn::BlockPtr& block : blocks) {
      BlockExecResult block_result;
      block_result.proposer = block->header.proposer;
      for (const txn::TxPtr& tx : block->txs) {
        block_result.outcomes.push_back(
            outcome_from(tx, receipts[next++], result));
      }
      result.blocks.push_back(std::move(block_result));
    }
  } else {
    for (const txn::BlockPtr& block : blocks) {
      BlockExecResult block_result;
      block_result.proposer = block->header.proposer;
      for (const txn::TxPtr& tx : block->txs) {
        const auto receipt =
            txn::apply_transaction(tx->tx, db_, block_ctx, exec_config_);
        block_result.outcomes.push_back(outcome_from(tx, receipt, result));
      }
      result.blocks.push_back(std::move(block_result));
    }
  }
  db_.commit();
  // Deferred roots (state/config.hpp): recompute only on interval
  // boundaries, republish the last root in between. Index 0 (and any index
  // before the first computed root) always computes.
  const bool recompute = !state_config_.defer_root || !has_last_root_ ||
                         state_config_.root_interval == 0 ||
                         index % state_config_.root_interval == 0;
  if (recompute) {
    result.state_root = db_.state_root();
    last_root_ = result.state_root;
    has_last_root_ = true;
    ++root_stats_.computed;
  } else {
    result.state_root = last_root_;
    ++root_stats_.deferred;
  }
  SRBB_TRACE(ctx.trace, ctx.at, 0, ctx.node, "commit", "superblock.exec",
             "index", index, "valid", result.total_valid);
  return results_.emplace(index, std::move(result)).first->second;
}

}  // namespace srbb::node
