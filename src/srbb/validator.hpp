// The SRBB validator node: Alg. 1 wired onto the simulated network.
//
//   Reception  — client transactions are eagerly validated once and pooled;
//                with TVPR disabled (modern/baseline mode) they are also
//                gossiped to peers, each of which re-validates and re-gossips
//                (Alg. 1 line 9, the step SRBB removes).
//   Consensus  — every round each validator proposes a block from its pool;
//                the superblock layer (consensus/) decides the block set.
//   Commit     — decided blocks are executed in order; invalid transactions
//                are discarded (lines 19-26); valid transactions from
//                received-but-undecided blocks are recycled into the pool
//                (lines 27-31); commit ACKs flow back to the sending client.
//   RPM        — on commit, validators invoke propReceived per decided block
//                and report invalid transactions with Merkle proofs; slashed
//                proposers are excluded from future headers (Alg. 2).
//
// Byzantine behaviours (silent, censoring, invalid-transaction flooding) are
// switched per node to drive the paper's §V-B experiments.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "consensus/superblock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pool/txpool.hpp"
#include "rpm/reliability.hpp"
#include "rpm/rpm.hpp"
#include "sim/gossip.hpp"
#include "sim/network.hpp"
#include "srbb/messages.hpp"
#include "srbb/oracle.hpp"
#include "srbb/sync.hpp"
#include "txn/pipeline.hpp"
#include "txn/validation.hpp"

namespace srbb::node {

/// CPU cost model, calibrated from bench_micro_crypto / bench_micro_evm and
/// Geth-order-of-magnitude figures. The commit path charges, per transaction
/// *attempt* in a decided block, lazy validation plus the execution-path
/// signature recovery (check (i) of §IV-D — Geth ecrecovers every
/// transaction before applying it), and the EVM apply cost only for valid
/// transactions. This is what makes duplicate proposals in the EVM+DBFT
/// baseline so expensive: a superblock with n near-identical blocks costs
/// n * (lazy + sig) per unique transaction.
struct CostModel {
  SimDuration eager_validation = micros(100);  // signature verify dominates
  SimDuration lazy_validation = micros(5);     // nonce/gas/balance checks
  SimDuration sig_check_exec = micros(150);    // ecrecover on the commit path
  SimDuration execution_per_tx = micros(250);  // EVM apply + state update
  SimDuration gossip_dedup = micros(1);        // seen-set lookup
};

struct ValidatorBehavior {
  bool silent = false;  // crash fault
  bool censor = false;  // propose empty blocks (§VI censorship discussion)
  /// Flooding attack (§V-B): include this many invalid transactions (zero-
  /// balance senders, skipping eager validation) in every proposal.
  std::uint32_t flood_invalid_per_block = 0;
  /// Stop flooding after this many invalid transactions (0 = unlimited);
  /// Table I's attacker sends 10K total.
  std::uint64_t flood_total_limit = 0;
};

struct ValidatorConfig {
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  std::uint32_t self = 0;  // rank; validators own network ids 0..n-1
  bool tvpr = true;        // SRBB; false = modern/EVM+DBFT per-tx gossip
  bool rpm = true;
  CostModel costs;
  pool::TxPoolConfig pool;
  std::size_t max_block_txs = 4096;
  std::size_t max_block_bytes = 4 * 1024 * 1024;
  SimDuration min_block_interval = millis(400);
  SimDuration proposal_timeout = millis(800);
  SimDuration pull_retry = millis(200);
  txn::ValidationConfig validation;
  const crypto::SignatureScheme* scheme = &crypto::SignatureScheme::fast_sim();
  ValidatorBehavior behavior;

  // --- robustness knobs (DESIGN.md §7) ---
  /// True when this validator owns its oracle exclusively (replicated
  /// execution mode): crash() then resets it to genesis. Must stay false for
  /// a shared oracle — resetting it would wipe every co-owner's state.
  bool oracle_private = false;
  /// Superblock-layer state re-broadcast while an instance is incomplete
  /// (liveness under message loss / healed partitions). 0 = off; chaos
  /// configurations enable it. See SuperblockConfig::rebroadcast_interval.
  SimDuration rebroadcast_interval = 0;
  /// Catch-up sync request timeout (doubles per retry) and backoff cap.
  SimDuration sync_request_timeout = millis(250);
  std::uint32_t sync_backoff_cap = 4;

  // --- adaptive membership (DESIGN.md §13) ---
  /// Derive per-validator reliability scores from the committed superblock
  /// sequence and run consensus quorums over the effective committee
  /// (disabled validators stop counting; removed validators' blocks are
  /// rejected outright). Off (the default) keeps the static all-active
  /// committee — bit-identical to the pre-membership behaviour.
  bool adaptive_membership = false;
  /// Scoring / hysteresis parameters for the reliability tracker. The (n, f)
  /// fields are overwritten from this config's own n / f at construction.
  rpm::ReliabilityConfig reliability;

  // --- observability (DESIGN.md §8) ---
  /// Commit-path trace sink and shared metrics registry (neither owned;
  /// typically one of each per run, shared across nodes). Both null by
  /// default: the node then behaves exactly as before this layer existed.
  obs::TraceSink* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

class ValidatorNode : public sim::SimNode {
 public:
  struct Metrics {
    std::uint64_t client_txs_received = 0;
    std::uint64_t eager_validations = 0;
    std::uint64_t eager_failures = 0;
    std::uint64_t gossip_txs_received = 0;
    std::uint64_t gossip_txs_sent = 0;
    std::uint64_t blocks_proposed = 0;
    std::uint64_t superblocks_committed = 0;
    std::uint64_t txs_committed_valid = 0;
    std::uint64_t txs_discarded_invalid = 0;
    std::uint64_t txs_recycled = 0;
    std::uint64_t invalid_txs_flooded = 0;
    // Robustness counters.
    std::uint64_t gossip_dups_suppressed = 0;  // dedup hits (dup/reorder safe)
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t superblocks_synced = 0;     // fetched via catch-up sync
    std::uint64_t sync_requests_served = 0;
    // Adaptive-membership events observed locally (deterministic across
    // correct nodes at equal heights).
    std::uint64_t membership_disables = 0;
    std::uint64_t membership_readmissions = 0;
    std::uint64_t membership_removals = 0;
  };

  ValidatorNode(sim::Simulation& simulation, sim::NodeId id,
                sim::RegionId region, ValidatorConfig config,
                std::shared_ptr<ExecutionOracle> oracle,
                std::shared_ptr<rpm::RewardPenaltyMechanism> rpm,
                const sim::GossipOverlay* overlay);

  /// Kick off consensus (call after all nodes are attached).
  void start();

  /// Crash fault: wipe ALL volatile state (pool, chain, instances, dedup
  /// sets) and ignore traffic until restart(). Closures already queued on
  /// the simulated CPU are disarmed via an epoch counter.
  void crash();

  /// Come back from a crash: run the catch-up sync protocol to refetch and
  /// replay every decided superblock, then rejoin consensus at the frontier.
  void restart();

  void handle_message(sim::NodeId from, const sim::MessagePtr& message) override;

  // --- inspection ---
  const Metrics& metrics() const { return metrics_; }
  const pool::TxPool& tx_pool() const { return pool_; }
  std::uint64_t chain_height() const { return next_commit_; }
  const std::vector<Hash32>& chain() const { return chain_; }
  Hash32 last_state_root() const { return last_state_root_; }
  const crypto::Identity& identity() const { return identity_; }
  ExecutionOracle& oracle() { return *oracle_; }
  bool crashed() const { return crashed_; }
  bool syncing() const { return syncing_; }
  const CatchUpSync::Stats& sync_stats() const { return sync_->stats(); }
  const CatchUpSync& catch_up() const { return *sync_; }
  std::uint64_t current_round() const { return current_round_; }
  /// Adaptive-membership tracker; nullptr when adaptive_membership is off.
  const rpm::ReliabilityTracker* reliability() const { return tracker_.get(); }
  /// Introspection for the chaos harness; nullptr when no instance exists.
  const consensus::SuperblockInstance* instance(std::uint64_t index) const {
    const auto it = instances_.find(index);
    return it == instances_.end() ? nullptr : it->second.get();
  }

 private:
  void on_client_tx(sim::NodeId from, const txn::TxPtr& tx);
  void on_gossip_tx(sim::NodeId from, const txn::TxPtr& tx);
  void admit_to_pool(const txn::TxPtr& tx);
  void gossip_tx(const txn::TxPtr& tx, std::optional<sim::NodeId> skip);

  consensus::SuperblockInstance& instance_for(std::uint64_t index);
  void begin_round(std::uint64_t index);
  txn::BlockPtr build_proposal(std::uint64_t index);
  txn::TxPtr make_invalid_tx();
  bool validate_header(const txn::Block& block) const;
  void on_superblock(std::uint64_t index, std::vector<txn::BlockPtr> blocks);
  void try_commit();
  void commit_index(std::uint64_t index,
                    const std::vector<txn::BlockPtr>& blocks);
  void recycle_undecided(std::uint64_t index);
  void run_rpm_hooks(std::uint64_t index,
                     const std::vector<txn::BlockPtr>& blocks,
                     const IndexExecResult& result);
  void on_stale_pull(sim::NodeId from, const consensus::PullMsg& msg);
  void on_stale_bin(sim::NodeId from, std::uint64_t index,
                    std::uint32_t proposer);
  void on_sync_request(sim::NodeId from, const SyncRequestMsg& msg);
  void on_synced_superblock(std::uint64_t index,
                            std::vector<txn::BlockPtr> blocks);
  void on_caught_up(std::uint64_t frontier);
  void finish_sync();

  /// Wrap a deferred closure so it no-ops if the node crashed (and possibly
  /// restarted) between scheduling and execution. Every post_work /
  /// schedule_* closure that touches validator state must go through this:
  /// crash() wipes the state those closures capture indices/iterators into.
  template <typename Fn>
  sim::EventFn guarded(Fn fn) {
    return [this, epoch = epoch_, fn = std::move(fn)] {
      if (epoch == epoch_ && !crashed_) fn();
    };
  }

  ValidatorConfig config_;
  crypto::Identity identity_;
  std::shared_ptr<ExecutionOracle> oracle_;
  std::shared_ptr<rpm::RewardPenaltyMechanism> rpm_;
  const sim::GossipOverlay* overlay_;

  pool::TxPool pool_;
  /// Staged validation (DESIGN.md §11): per-event paths use validate_one
  /// (the monolith's exact order over cached fields); recycle_undecided
  /// batches a whole undecided block through the stages at once.
  txn::ValidationPipeline pipeline_;
  std::unordered_set<Hash32, Hash32Hasher> seen_gossip_;
  std::unordered_set<Hash32, Hash32Hasher> committed_txs_;
  std::unordered_map<Hash32, sim::NodeId, Hash32Hasher> client_origins_;

  std::map<std::uint64_t, std::unique_ptr<consensus::SuperblockInstance>>
      instances_;
  std::map<std::uint64_t, std::vector<txn::BlockPtr>> pending_superblocks_;
  /// Every decided superblock this node has seen, kept to serve catch-up
  /// sync requests from restarted peers (the simulator's stand-in for the
  /// persisted block store; memory growth is bounded by run length).
  std::map<std::uint64_t, std::vector<txn::BlockPtr>> decided_store_;
  std::uint64_t current_round_ = 0;   // highest index begun
  std::uint64_t next_commit_ = 0;     // next index to commit
  bool commit_in_flight_ = false;
  SimTime last_round_start_ = 0;
  Hash32 parent_hash_;
  std::vector<Hash32> chain_;
  Hash32 last_state_root_;
  std::uint64_t invalid_tx_counter_ = 0;
  bool started_ = false;

  // Crash/recovery state (DESIGN.md §7).
  bool crashed_ = false;
  bool syncing_ = false;
  bool sync_caught_up_ = false;   // fetch frontier reached; replay may lag
  std::uint64_t sync_frontier_ = 0;
  std::uint64_t epoch_ = 0;       // bumped by crash(); disarms old closures
  std::unique_ptr<CatchUpSync> sync_;

  /// Adaptive membership (DESIGN.md §13): non-null iff
  /// config_.adaptive_membership. Fed the committed superblock sequence in
  /// commit_index (including catch-up replay — the tracker is per-node and
  /// must observe every index exactly once); crash() rebuilds it from
  /// genesis, and the replay regrows the identical view sequence.
  std::unique_ptr<rpm::ReliabilityTracker> tracker_;

  Metrics metrics_;

  // Observability (DESIGN.md §8): registered once in the constructor, null
  // when disabled. The timestamp maps exist only while observability is on
  // (obs_on()), are pruned per commit, and are wiped by crash() — a restarted
  // node's pre-crash rounds never leak into post-restart latencies.
  bool obs_on() const {
    return config_.trace != nullptr || config_.metrics != nullptr;
  }
  void register_obs();
  obs::Histogram* hist_propose_to_decide_ = nullptr;
  obs::Histogram* hist_decide_to_commit_ = nullptr;
  obs::Counter* ctr_spec_runs_ = nullptr;
  obs::Counter* ctr_spec_aborts_ = nullptr;
  obs::Counter* ctr_fallback_txs_ = nullptr;
  // State-stack levels (DESIGN.md §14): cumulative totals read back from the
  // oracle's StateDB after each commit, published as gauges so a shared
  // oracle is sampled, not double-counted.
  obs::Gauge* g_roots_computed_ = nullptr;
  obs::Gauge* g_roots_deferred_ = nullptr;
  obs::Gauge* g_state_hits_ = nullptr;
  obs::Gauge* g_state_faults_ = nullptr;
  obs::Gauge* g_state_evictions_ = nullptr;
  obs::Gauge* g_state_resident_ = nullptr;
  void publish_state_obs();
  std::map<std::uint64_t, SimTime> round_began_at_;
  std::map<std::uint64_t, SimTime> decided_at_;
};

}  // namespace srbb::node
