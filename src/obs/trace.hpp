// Commit-path tracing (DESIGN.md §8). A TraceSink collects structured span /
// event records — pool admit, eager validation, proposal, DBFT decide,
// superblock execution, receipt — stamped with deterministic simulated time.
// Because the simulator is a pure function of its seeds, a (workload, seed,
// fault-plan) triple yields a bit-identical event stream, which makes the
// trace itself a regression-test surface: tests/test_golden_trace.cpp pins
// scenarios to checked-in fingerprints.
//
// Cost model: a component holds a `TraceSink*` that is nullptr (or a
// disabled sink) when tracing is off; the SRBB_TRACE macro reduces to one
// pointer test plus one flag test — branch-predicted no-ops on the hot path
// (overhead measured in EXPERIMENTS.md "Observability overhead"). Payloads
// are two optional u64 args with static names; no formatting, no allocation
// beyond the event vector's amortized growth.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/time.hpp"

namespace srbb::obs {

/// One span (dur > 0) or instant (dur == 0). `category` and `name` must be
/// string literals (or otherwise outlive the sink): the sink stores the
/// pointers and hashes/export reads the characters, never the addresses, so
/// fingerprints are stable across processes and ASLR.
struct TraceEvent {
  SimTime ts = 0;        // simulated nanoseconds
  SimDuration dur = 0;   // 0 = instant event
  std::uint32_t node = 0;
  const char* category = "";
  const char* name = "";
  const char* arg0_name = nullptr;
  std::uint64_t arg0 = 0;
  const char* arg1_name = nullptr;
  std::uint64_t arg1 = 0;
};

class TraceSink {
 public:
  explicit TraceSink(bool enabled = true) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  void emit(SimTime ts, SimDuration dur, std::uint32_t node,
            const char* category, const char* name,
            const char* arg0_name = nullptr, std::uint64_t arg0 = 0,
            const char* arg1_name = nullptr, std::uint64_t arg1 = 0) {
    if (!enabled_) return;
    events_.push_back(TraceEvent{ts, dur, node, category, name, arg0_name,
                                 arg0, arg1_name, arg1});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Events whose name matches exactly.
  std::uint64_t count_of(std::string_view name) const;
  /// Events whose category matches exactly.
  std::uint64_t count_of_category(std::string_view category) const;
  /// name -> occurrence count, deterministic ordering.
  std::map<std::string, std::uint64_t> event_counts() const;

  /// SHA-256 over the canonical little-endian serialization of every event
  /// (string *contents*, not pointers). Bit-identical streams — the golden
  /// determinism contract — give bit-identical fingerprints.
  Hash32 fingerprint() const;

  /// Chrome/Perfetto `trace_event` JSON (load via chrome://tracing or
  /// https://ui.perfetto.dev). pid = node, ts/dur in microseconds rendered
  /// with integer math so the file is byte-deterministic.
  std::string chrome_json() const;

 private:
  bool enabled_;
  std::vector<TraceEvent> events_;
};

/// First 8 bytes of a hash, little-endian: the compact per-transaction (or
/// per-block) id carried in trace event args.
inline std::uint64_t trace_id(const Hash32& hash) {
  std::uint64_t id = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    id |= static_cast<std::uint64_t>(hash[i]) << (8 * i);
  }
  return id;
}

/// Hot-path guard: evaluates the sink expression once, skips everything when
/// tracing is off. Usage mirrors TraceSink::emit:
///   SRBB_TRACE(trace_, now(), cost, id(), "pool", "pool.admit", "txs", n);
#define SRBB_TRACE(sink, ...)                          \
  do {                                                 \
    ::srbb::obs::TraceSink* srbb_trace_sink = (sink);  \
    if (srbb_trace_sink != nullptr && srbb_trace_sink->enabled()) { \
      srbb_trace_sink->emit(__VA_ARGS__);              \
    }                                                  \
  } while (0)

}  // namespace srbb::obs
