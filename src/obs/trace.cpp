#include "obs/trace.hpp"

#include <array>
#include <cstring>

#include "crypto/sha256.hpp"

namespace srbb::obs {

namespace {

void fold_u64(crypto::Sha256& digest, std::uint64_t value) {
  std::array<std::uint8_t, 8> bytes{};
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  digest.update(BytesView{bytes.data(), bytes.size()});
}

void fold_str(crypto::Sha256& digest, const char* s) {
  static const std::uint8_t kSeparator = 0;
  if (s != nullptr) {
    digest.update(BytesView{reinterpret_cast<const std::uint8_t*>(s),
                            std::strlen(s)});
  }
  digest.update(BytesView{&kSeparator, 1});
}

/// "123.456" — microseconds with nanosecond fraction, pure integer math so
/// the exported file never depends on floating-point formatting.
std::string micros_fixed(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  return buf;
}

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char esc[8];
      std::snprintf(esc, sizeof(esc), "\\u%04x", c);
      out += esc;
    } else {
      out += c;
    }
  }
}

}  // namespace

std::uint64_t TraceSink::count_of(std::string_view name) const {
  std::uint64_t n = 0;
  for (const TraceEvent& event : events_) {
    if (name == event.name) ++n;
  }
  return n;
}

std::uint64_t TraceSink::count_of_category(std::string_view category) const {
  std::uint64_t n = 0;
  for (const TraceEvent& event : events_) {
    if (category == event.category) ++n;
  }
  return n;
}

std::map<std::string, std::uint64_t> TraceSink::event_counts() const {
  std::map<std::string, std::uint64_t> counts;
  for (const TraceEvent& event : events_) {
    ++counts[event.name];
  }
  return counts;
}

Hash32 TraceSink::fingerprint() const {
  crypto::Sha256 digest;
  fold_u64(digest, events_.size());
  for (const TraceEvent& event : events_) {
    fold_u64(digest, event.ts);
    fold_u64(digest, event.dur);
    fold_u64(digest, event.node);
    fold_str(digest, event.category);
    fold_str(digest, event.name);
    fold_str(digest, event.arg0_name);
    fold_u64(digest, event.arg0);
    fold_str(digest, event.arg1_name);
    fold_u64(digest, event.arg1);
  }
  return digest.finish();
}

std::string TraceSink::chrome_json() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events_) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":\"";
    append_json_escaped(out, event.name);
    out += "\",\"cat\":\"";
    append_json_escaped(out, event.category);
    out += "\",\"ph\":\"X\",\"ts\":";
    out += micros_fixed(event.ts);
    out += ",\"dur\":";
    out += micros_fixed(event.dur);
    out += ",\"pid\":";
    out += std::to_string(event.node);
    out += ",\"tid\":0,\"args\":{";
    bool first_arg = true;
    const auto append_arg = [&out, &first_arg](const char* arg_name,
                                               std::uint64_t value) {
      if (arg_name == nullptr) return;
      if (!first_arg) out += ',';
      first_arg = false;
      out += '"';
      append_json_escaped(out, arg_name);
      out += "\":";
      out += std::to_string(value);
    };
    append_arg(event.arg0_name, event.arg0);
    append_arg(event.arg1_name, event.arg1);
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace srbb::obs
