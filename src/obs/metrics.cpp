#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace srbb::obs {

// ---------------------------------------------------------------------------
// HistogramBounds
// ---------------------------------------------------------------------------

HistogramBounds HistogramBounds::exponential(std::uint64_t first,
                                             double factor,
                                             std::size_t count) {
  SRBB_CHECK(first > 0);
  SRBB_CHECK(factor > 1.0);
  SRBB_CHECK(count > 0);
  HistogramBounds bounds;
  bounds.edges.reserve(count);
  double edge = static_cast<double>(first);
  std::uint64_t last = 0;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t rounded = static_cast<std::uint64_t>(edge);
    if (rounded <= last) rounded = last + 1;  // keep strictly ascending
    bounds.edges.push_back(rounded);
    last = rounded;
    edge *= factor;
    if (edge >= 1.8e19) break;  // next edge would exceed u64
  }
  return bounds;
}

const HistogramBounds& HistogramBounds::sim_latency() {
  static const HistogramBounds bounds =
      exponential(1'000 /* 1 µs */, 2.0, 40);
  return bounds;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(HistogramBounds bounds) : bounds_(std::move(bounds)) {
  SRBB_CHECK(!bounds_.edges.empty());
  SRBB_CHECK(std::is_sorted(bounds_.edges.begin(), bounds_.edges.end()));
  counts_.assign(bounds_.edges.size() + 1, 0);
}

void Histogram::observe(std::uint64_t value) {
  const auto it =
      std::lower_bound(bounds_.edges.begin(), bounds_.edges.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.edges.begin());
  ++counts_[bucket];  // == edges.size() -> overflow bucket
  ++count_;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += value;
}

double Histogram::mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile observation, 1-based, at least 1.
  const double scaled = q * static_cast<double>(count_);
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(scaled));
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) {
      // Overflow bucket has no upper edge; the observed max is the tightest
      // finite bound we can report. The observed max also clamps edge
      // buckets: both bound the true quantile from above, and without the
      // clamp a summary could print p50 > max.
      return i < bounds_.edges.size() ? std::min(bounds_.edges[i], max_)
                                      : max_;
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  SRBB_CHECK(bounds_ == other.bounds_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.edges = bounds_.edges;
  snap.counts = counts_;
  snap.count = count_;
  snap.min = min();
  snap.max = max();
  snap.mean = mean();
  snap.p50 = quantile(0.50);
  snap.p90 = quantile(0.90);
  snap.p99 = quantile(0.99);
  return snap;
}

std::string HistogramSnapshot::summary() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%s p50=%s p90=%s p99=%s max=%s",
                static_cast<unsigned long long>(count),
                format_duration_ns(static_cast<std::uint64_t>(mean)).c_str(),
                format_duration_ns(p50).c_str(),
                format_duration_ns(p90).c_str(),
                format_duration_ns(p99).c_str(),
                format_duration_ns(max).c_str());
  return buf;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const HistogramBounds& bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    SRBB_CHECK(it->second->bounds() == bounds);
    return *it->second;
  }
  return *histograms_
              .emplace(std::string(name), std::make_unique<Histogram>(bounds))
              .first->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    counter(name).merge(*value);
  }
  for (const auto& [name, value] : other.gauges_) {
    gauge(name).merge(*value);
  }
  for (const auto& [name, value] : other.histograms_) {
    histogram(name, value->bounds()).merge(*value);
  }
}

std::string MetricsRegistry::to_string() const {
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += name + " = " + std::to_string(value->value()) + "\n";
  }
  for (const auto& [name, value] : gauges_) {
    out += name + " = " + std::to_string(value->value()) + "\n";
  }
  for (const auto& [name, value] : histograms_) {
    out += name + " : " + value->snapshot().summary() + "\n";
  }
  return out;
}

std::string format_duration_ns(std::uint64_t ns) {
  char buf[48];
  if (ns < 10'000) {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus",
                  static_cast<double>(ns) / 1e3);
  } else if (ns < 10'000'000'000ull) {
    std::snprintf(buf, sizeof(buf), "%.1fms",
                  static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs",
                  static_cast<double>(ns) / 1e9);
  }
  return buf;
}

}  // namespace srbb::obs
