// Deterministic metrics substrate (DESIGN.md §8). Every layer of the stack
// publishes counters, gauges and fixed-bucket latency histograms into a
// MetricsRegistry instead of growing ad-hoc `struct Metrics` fields per
// component. Design constraints, in order:
//
//  - zero allocation on the hot path: callers register once (setup time,
//    may allocate) and keep the returned Counter&/Histogram& reference;
//    recording is then a plain integer add / bucket increment;
//  - determinism: values are integers (sim-time nanoseconds, counts), export
//    iterates name-sorted maps, and nothing reads a wall clock — so a metric
//    dump is as replayable as the simulation that produced it;
//  - mergeability: registries from different nodes (or runs) fold together
//    with merge_from(); histograms merge bucket-wise, which is what lets the
//    DIABLO runner report one network-wide latency distribution per phase.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/invariant.hpp"

namespace srbb::obs {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }
  void merge(const Counter& other) { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous level (pool occupancy, frontier height). Merging keeps the
/// maximum: the interesting aggregate for a level sampled across nodes.
class Gauge {
 public:
  void set(std::int64_t value) { value_ = value; }
  void add(std::int64_t delta) { value_ += delta; }
  std::int64_t value() const { return value_; }
  void merge(const Gauge& other) {
    if (other.value_ > value_) value_ = other.value_;
  }

 private:
  std::int64_t value_ = 0;
};

/// Fixed bucket layout shared by every histogram with the same name, so the
/// per-node instances stay mergeable.
struct HistogramBounds {
  /// Ascending inclusive upper edges; values above the last edge land in the
  /// overflow bucket.
  std::vector<std::uint64_t> edges;

  /// `count` buckets at `first, first*factor, first*factor^2, ...`.
  static HistogramBounds exponential(std::uint64_t first, double factor,
                                     std::size_t count);

  /// Default layout for simulated-time durations: 1 µs doubling up to ~9
  /// simulated minutes (40 buckets), which covers everything from a single
  /// signature check to a FIFA-workload commit latency.
  static const HistogramBounds& sim_latency();

  bool operator==(const HistogramBounds& other) const = default;
};

/// Point-in-time copy of a histogram, carried in results structs (e.g.
/// diablo::RunResult) after the run that produced it is gone.
struct HistogramSnapshot {
  std::vector<std::uint64_t> edges;
  std::vector<std::uint64_t> counts;  // edges.size() + 1 (overflow last)
  std::uint64_t count = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;

  /// One human-readable line, durations scaled to a readable unit.
  std::string summary() const;
};

/// Fixed-bucket histogram. observe() is two comparisons plus a binary search
/// over ~40 edges — no allocation, no floating point.
class Histogram {
 public:
  explicit Histogram(HistogramBounds bounds);

  void observe(std::uint64_t value);

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const;

  /// Upper edge of the bucket holding the q-quantile observation, clamped to
  /// the observed max (both bound the true quantile from above; the clamp
  /// keeps p50 <= max in summaries). For the overflow bucket the observed
  /// max is returned, so the estimate stays finite even at u64 extremes.
  /// q outside (0,1] is clamped.
  std::uint64_t quantile(double q) const;

  /// Bucket-wise fold; bounds must match (checked).
  void merge(const Histogram& other);

  const HistogramBounds& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  HistogramSnapshot snapshot() const;

 private:
  HistogramBounds bounds_;
  std::vector<std::uint64_t> counts_;  // edges + overflow
  std::uint64_t count_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
  /// 128-bit so observing u64-extreme values cannot overflow the mean.
  unsigned __int128 sum_ = 0;
};

/// Name-keyed registry. Registration (counter()/gauge()/histogram()) is
/// idempotent — a second call with the same name returns the same instance,
/// which is how several nodes sharing one registry aggregate into one set of
/// series. References stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(
      std::string_view name,
      const HistogramBounds& bounds = HistogramBounds::sim_latency());

  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  /// Fold another registry in: counters add, gauges keep the max, histograms
  /// merge bucket-wise (registering any series this registry lacks).
  void merge_from(const MetricsRegistry& other);

  /// Deterministic text dump, sorted by series name.
  std::string to_string() const;

  std::size_t series_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  // std::map (ordered) on purpose: export iterates these, and the
  // determinism lint forbids ranged-for over unordered containers.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Render a nanosecond duration with an adaptive unit (ns/µs/ms/s).
std::string format_duration_ns(std::uint64_t ns);

}  // namespace srbb::obs
