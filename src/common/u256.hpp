// 256-bit unsigned integer with wrapping arithmetic — the EVM word type.
// Little-endian limbs (limb[0] least significant). All arithmetic is modulo
// 2^256, matching EVM semantics; division by zero yields zero as the EVM
// defines for DIV/MOD.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace srbb {

struct U256 {
  std::array<std::uint64_t, 4> limb{};

  constexpr U256() = default;
  constexpr U256(std::uint64_t v) : limb{v, 0, 0, 0} {}  // NOLINT implicit
  constexpr U256(std::uint64_t l0, std::uint64_t l1, std::uint64_t l2,
                 std::uint64_t l3)
      : limb{l0, l1, l2, l3} {}

  static U256 zero() { return U256{}; }
  static U256 one() { return U256{1}; }
  static U256 max();

  /// Big-endian 32-byte decode/encode (EVM word layout).
  static U256 from_be(BytesView bytes);  // right-aligned if shorter than 32
  void to_be(std::uint8_t out[32]) const;
  Bytes be_bytes() const;
  Hash32 to_hash() const;

  static std::optional<U256> from_dec(std::string_view s);
  static std::optional<U256> from_hex(std::string_view s);
  std::string to_dec() const;
  std::string to_hex() const;

  bool is_zero() const { return (limb[0] | limb[1] | limb[2] | limb[3]) == 0; }
  /// Number of significant bits (0 for zero).
  unsigned bit_length() const;
  bool bit(unsigned i) const {
    return i < 256 && ((limb[i / 64] >> (i % 64)) & 1u) != 0;
  }
  /// Truncating conversion; callers must check fits_u64 when exactness matters.
  std::uint64_t as_u64() const { return limb[0]; }
  bool fits_u64() const { return (limb[1] | limb[2] | limb[3]) == 0; }

  friend bool operator==(const U256&, const U256&) = default;

  U256 operator+(const U256& o) const;
  U256 operator-(const U256& o) const;
  U256 operator*(const U256& o) const;
  U256 operator/(const U256& o) const;  // 0 if o == 0 (EVM DIV)
  U256 operator%(const U256& o) const;  // 0 if o == 0 (EVM MOD)
  U256 operator&(const U256& o) const;
  U256 operator|(const U256& o) const;
  U256 operator^(const U256& o) const;
  U256 operator~() const;
  U256 operator<<(unsigned n) const;
  U256 operator>>(unsigned n) const;
  U256& operator+=(const U256& o) { return *this = *this + o; }
  U256& operator-=(const U256& o) { return *this = *this - o; }

  bool operator<(const U256& o) const;
  bool operator>(const U256& o) const { return o < *this; }
  bool operator<=(const U256& o) const { return !(o < *this); }
  bool operator>=(const U256& o) const { return !(*this < o); }

  struct DivMod;
  struct Wide;
  /// Quotient and remainder in one pass; {0, 0} when divisor is zero.
  DivMod divmod(const U256& divisor) const;
  /// 512-bit product split into (low, high) 256-bit halves.
  Wide full_mul(const U256& o) const;
};

struct U256::DivMod {
  U256 quot;
  U256 rem;
};

struct U256::Wide {
  U256 lo;
  U256 hi;
};

// --- EVM-flavoured operations on the two's-complement interpretation. ---
bool sign_bit(const U256& v);
U256 negate(const U256& v);  // two's complement
bool slt(const U256& a, const U256& b);
bool sgt(const U256& a, const U256& b);
U256 sdiv(const U256& a, const U256& b);  // truncated signed division
U256 smod(const U256& a, const U256& b);  // sign follows dividend
U256 sar(const U256& v, unsigned n);      // arithmetic shift right
/// EVM SIGNEXTEND: extend the sign of the byte at index `byte_index`
/// (0 = least significant) through the high bytes.
U256 signextend(unsigned byte_index, const U256& v);
/// EVM BYTE: the i-th byte counting from the most significant (0..31).
std::uint8_t nth_byte(const U256& v, unsigned i);
U256 addmod(const U256& a, const U256& b, const U256& m);
U256 mulmod(const U256& a, const U256& b, const U256& m);
U256 exp_pow(const U256& base, const U256& exponent);  // wrapping pow

}  // namespace srbb
