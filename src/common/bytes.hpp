// Byte-container primitives shared by every module: dynamic byte buffers,
// fixed-width byte arrays (hashes, addresses, keys), and hex conversion.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace srbb {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Lowercase hex encoding without a "0x" prefix.
std::string to_hex(BytesView data);

/// Accepts an optional "0x" prefix and mixed-case digits; nullopt on any
/// non-hex character or odd length.
std::optional<Bytes> from_hex(std::string_view hex);

/// Constant-size byte array with value semantics; used for hashes, addresses
/// and key material. Comparable, hashable and hex-printable.
template <std::size_t N>
struct FixedBytes {
  std::array<std::uint8_t, N> data{};

  constexpr FixedBytes() = default;
  explicit FixedBytes(BytesView view) {
    if (view.size() == N) std::memcpy(data.data(), view.data(), N);
  }

  static constexpr std::size_t size() { return N; }
  std::uint8_t* begin() { return data.data(); }
  std::uint8_t* end() { return data.data() + N; }
  const std::uint8_t* begin() const { return data.data(); }
  const std::uint8_t* end() const { return data.data() + N; }
  std::uint8_t& operator[](std::size_t i) { return data[i]; }
  const std::uint8_t& operator[](std::size_t i) const { return data[i]; }

  BytesView view() const { return BytesView{data.data(), N}; }
  Bytes bytes() const { return Bytes{data.begin(), data.end()}; }
  std::string hex() const { return to_hex(view()); }

  bool is_zero() const {
    for (auto b : data)
      if (b != 0) return false;
    return true;
  }

  static std::optional<FixedBytes> from_hex_str(std::string_view hex) {
    auto raw = from_hex(hex);
    if (!raw || raw->size() != N) return std::nullopt;
    return FixedBytes{BytesView{raw->data(), raw->size()}};
  }

  friend bool operator==(const FixedBytes&, const FixedBytes&) = default;
  friend auto operator<=>(const FixedBytes&, const FixedBytes&) = default;
};

using Hash32 = FixedBytes<32>;
using Address = FixedBytes<20>;

/// FNV-1a over the bytes; good enough for unordered_map keys (the contents
/// are usually already cryptographic hashes).
template <std::size_t N>
struct FixedBytesHasher {
  std::size_t operator()(const FixedBytes<N>& v) const {
    std::size_t h = 1469598103934665603ull;
    for (auto b : v.data) {
      h ^= b;
      h *= 1099511628211ull;
    }
    return h;
  }
};

using Hash32Hasher = FixedBytesHasher<32>;
using AddressHasher = FixedBytesHasher<20>;

inline void append(Bytes& out, BytesView more) {
  out.insert(out.end(), more.begin(), more.end());
}

inline Bytes concat(BytesView a, BytesView b) {
  Bytes out;
  out.reserve(a.size() + b.size());
  append(out, a);
  append(out, b);
  return out;
}

/// Big-endian integer serialization helpers used by codecs and crypto.
void put_be32(std::uint8_t* out, std::uint32_t v);
void put_be64(std::uint8_t* out, std::uint64_t v);
std::uint32_t get_be32(const std::uint8_t* in);
std::uint64_t get_be64(const std::uint8_t* in);

}  // namespace srbb

template <std::size_t N>
struct std::hash<srbb::FixedBytes<N>> {
  std::size_t operator()(const srbb::FixedBytes<N>& v) const {
    return srbb::FixedBytesHasher<N>{}(v);
  }
};
