// Minimal work-stealing-free thread pool for embarrassingly parallel batches
// (signature verification sweeps, multi-seed experiment fans). The simulator
// itself is single-threaded and deterministic; the pool is only used where
// task outputs are order-independent.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace srbb {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);
  /// Block until every submitted task has finished.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace srbb
