// Runtime invariant checks for consensus-critical data structures.
//
// Two tiers (docs/CORRECTNESS.md "Invariant macros"):
//
//  - SRBB_CHECK: always compiled in, O(1) conditions only. A failure means a
//    consensus-critical structure is corrupt; continuing would let a replica
//    silently diverge, so the process aborts with a diagnostic instead.
//  - SRBB_PARANOID: expensive (O(n) or worse) cross-structure consistency
//    sweeps. Compiled out unless the build sets -DSRBB_PARANOID_CHECKS
//    (cmake -DSRBB_PARANOID=ON); the sanitizer matrix and fuzz builds turn
//    them on so corruption is caught at the point of introduction.
//
// Both macros are statements, usable wherever an expression-statement is.
// On failure they print the condition and source location, then abort.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace srbb::detail {

[[noreturn]] inline void invariant_failed(const char* kind, const char* cond,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s failed: %s at %s:%d\n", kind, cond, file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace srbb::detail

#define SRBB_CHECK(cond)                                                 \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::srbb::detail::invariant_failed("SRBB_CHECK", #cond, __FILE__,    \
                                       __LINE__);                        \
    }                                                                    \
  } while (0)

#ifdef SRBB_PARANOID_CHECKS
#define SRBB_PARANOID(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::srbb::detail::invariant_failed("SRBB_PARANOID", #cond, __FILE__, \
                                       __LINE__);                        \
    }                                                                    \
  } while (0)
#else
#define SRBB_PARANOID(cond) \
  do {                      \
  } while (0)
#endif
