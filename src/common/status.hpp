// Lightweight status/result types for expected failures (validation errors,
// malformed input). Exceptions are reserved for programming errors; protocol
// code communicates failure through these value types per the Core Guidelines
// advice for error codes on hot paths.
#pragma once

#include <optional>
#include <string>
#include <utility>

namespace srbb {

class Status {
 public:
  Status() = default;  // OK
  static Status ok() { return Status{}; }
  static Status error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    return s;
  }

  bool is_ok() const { return !message_.has_value(); }
  explicit operator bool() const { return is_ok(); }
  const std::string& message() const {
    static const std::string kOk = "ok";
    return message_ ? *message_ : kOk;
  }

 private:
  std::optional<std::string> message_;
};

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : status_(std::move(status)) {}  // NOLINT implicit

  bool is_ok() const { return value_.has_value(); }
  explicit operator bool() const { return is_ok(); }
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& take() && { return std::move(*value_); }
  const Status& status() const { return status_; }
  const std::string& message() const { return status_.message(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace srbb
