// Fixed-capacity FIFO with drop accounting — models saturating transaction
// and message queues whose overflow behaviour (loss) is the congestion signal
// the paper studies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

namespace srbb {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// False (and counts a drop) when full.
  bool push(T item) {
    if (items_.size() >= capacity_) {
      ++dropped_;
      return false;
    }
    items_.push_back(std::move(item));
    return true;
  }

  std::optional<T> pop() {
    if (items_.empty()) return std::nullopt;
    T front = std::move(items_.front());
    items_.pop_front();
    return front;
  }

  const T* peek() const { return items_.empty() ? nullptr : &items_.front(); }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  bool full() const { return items_.size() >= capacity_; }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t dropped() const { return dropped_; }

  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

 private:
  std::size_t capacity_;
  std::deque<T> items_;
  std::uint64_t dropped_ = 0;
};

}  // namespace srbb
