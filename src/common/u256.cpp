#include "common/u256.hpp"

#include <algorithm>
#include <cstring>

namespace srbb {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

U256 U256::max() {
  return U256{~0ull, ~0ull, ~0ull, ~0ull};
}

U256 U256::from_be(BytesView bytes) {
  U256 out;
  if (bytes.size() > 32) bytes = bytes.subspan(bytes.size() - 32);
  // Right-align: the last byte of input is the least significant.
  std::size_t shift = 0;
  for (std::size_t i = bytes.size(); i-- > 0;) {
    out.limb[shift / 64] |= static_cast<u64>(bytes[i]) << (shift % 64);
    shift += 8;
  }
  return out;
}

void U256::to_be(std::uint8_t out[32]) const {
  for (int i = 0; i < 4; ++i) put_be64(out + 8 * i, limb[3 - i]);
}

Bytes U256::be_bytes() const {
  Bytes out(32);
  to_be(out.data());
  return out;
}

Hash32 U256::to_hash() const {
  Hash32 h;
  to_be(h.data.data());
  return h;
}

unsigned U256::bit_length() const {
  for (int i = 3; i >= 0; --i) {
    if (limb[i] != 0) {
      return static_cast<unsigned>(64 * i + 64 - __builtin_clzll(limb[i]));
    }
  }
  return 0;
}

U256 U256::operator+(const U256& o) const {
  U256 r;
  unsigned char carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 sum = static_cast<u128>(limb[i]) + o.limb[i] + carry;
    r.limb[i] = static_cast<u64>(sum);
    carry = static_cast<unsigned char>(sum >> 64);
  }
  return r;
}

U256 U256::operator-(const U256& o) const {
  U256 r;
  unsigned char borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 lhs = static_cast<u128>(limb[i]);
    const u128 rhs = static_cast<u128>(o.limb[i]) + borrow;
    r.limb[i] = static_cast<u64>(lhs - rhs);
    borrow = lhs < rhs ? 1 : 0;
  }
  return r;
}

U256 U256::operator*(const U256& o) const {
  // Schoolbook 4x4 limb multiply, keeping only the low 256 bits.
  U256 r;
  for (int i = 0; i < 4; ++i) {
    u64 carry = 0;
    for (int j = 0; i + j < 4; ++j) {
      const u128 cur =
          static_cast<u128>(limb[i]) * o.limb[j] + r.limb[i + j] + carry;
      r.limb[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
  }
  return r;
}

U256::Wide U256::full_mul(const U256& o) const {
  u64 w[8] = {};
  for (int i = 0; i < 4; ++i) {
    u64 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 cur = static_cast<u128>(limb[i]) * o.limb[j] + w[i + j] + carry;
      w[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    w[i + 4] = carry;
  }
  return Wide{U256{w[0], w[1], w[2], w[3]}, U256{w[4], w[5], w[6], w[7]}};
}

bool U256::operator<(const U256& o) const {
  for (int i = 3; i >= 0; --i) {
    if (limb[i] != o.limb[i]) return limb[i] < o.limb[i];
  }
  return false;
}

U256 U256::operator&(const U256& o) const {
  return U256{limb[0] & o.limb[0], limb[1] & o.limb[1], limb[2] & o.limb[2],
              limb[3] & o.limb[3]};
}
U256 U256::operator|(const U256& o) const {
  return U256{limb[0] | o.limb[0], limb[1] | o.limb[1], limb[2] | o.limb[2],
              limb[3] | o.limb[3]};
}
U256 U256::operator^(const U256& o) const {
  return U256{limb[0] ^ o.limb[0], limb[1] ^ o.limb[1], limb[2] ^ o.limb[2],
              limb[3] ^ o.limb[3]};
}
U256 U256::operator~() const {
  return U256{~limb[0], ~limb[1], ~limb[2], ~limb[3]};
}

U256 U256::operator<<(unsigned n) const {
  if (n >= 256) return U256{};
  U256 r;
  const unsigned limb_shift = n / 64;
  const unsigned bit_shift = n % 64;
  for (int i = 3; i >= 0; --i) {
    const int src = i - static_cast<int>(limb_shift);
    if (src < 0) break;
    u64 v = limb[src] << bit_shift;
    if (bit_shift != 0 && src > 0) v |= limb[src - 1] >> (64 - bit_shift);
    r.limb[i] = v;
  }
  return r;
}

U256 U256::operator>>(unsigned n) const {
  if (n >= 256) return U256{};
  U256 r;
  const unsigned limb_shift = n / 64;
  const unsigned bit_shift = n % 64;
  for (unsigned i = 0; i < 4; ++i) {
    const unsigned src = i + limb_shift;
    if (src > 3) break;
    u64 v = limb[src] >> bit_shift;
    if (bit_shift != 0 && src < 3) v |= limb[src + 1] << (64 - bit_shift);
    r.limb[i] = v;
  }
  return r;
}

namespace {

// Divide a 256-bit value by a single 64-bit limb.
U256::DivMod divmod_small(const U256& num, u64 d) {
  U256 q;
  u128 rem = 0;
  for (int i = 3; i >= 0; --i) {
    const u128 cur = (rem << 64) | num.limb[i];
    q.limb[i] = static_cast<u64>(cur / d);
    rem = cur % d;
  }
  return {q, U256{static_cast<u64>(rem)}};
}

}  // namespace

U256::DivMod U256::divmod(const U256& divisor) const {
  if (divisor.is_zero()) return {U256{}, U256{}};
  if (divisor.fits_u64()) return divmod_small(*this, divisor.limb[0]);
  if (*this < divisor) return {U256{}, *this};

  // Binary long division: at most bit_length() iterations, each O(limbs).
  U256 quot;
  U256 rem;
  const unsigned nbits = bit_length();
  for (unsigned i = nbits; i-- > 0;) {
    rem = rem << 1;
    if (bit(i)) rem.limb[0] |= 1;
    if (rem >= divisor) {
      rem = rem - divisor;
      quot.limb[i / 64] |= 1ull << (i % 64);
    }
  }
  return {quot, rem};
}

U256 U256::operator/(const U256& o) const { return divmod(o).quot; }
U256 U256::operator%(const U256& o) const { return divmod(o).rem; }

std::optional<U256> U256::from_dec(std::string_view s) {
  if (s.empty()) return std::nullopt;
  U256 out;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    // out = out * 10 + digit, detecting overflow past 2^256.
    const U256 prev = out;
    out = out * U256{10};
    if (out / U256{10} != prev) return std::nullopt;
    const U256 next = out + U256{static_cast<u64>(c - '0')};
    if (next < out) return std::nullopt;
    out = next;
  }
  return out;
}

std::optional<U256> U256::from_hex(std::string_view s) {
  if (s.size() >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    s.remove_prefix(2);
  }
  if (s.empty() || s.size() > 64) return std::nullopt;
  std::string padded(64 - s.size(), '0');
  padded.append(s);
  auto raw = srbb::from_hex(padded);
  if (!raw) return std::nullopt;
  return from_be(BytesView{raw->data(), raw->size()});
}

std::string U256::to_dec() const {
  if (is_zero()) return "0";
  std::string out;
  U256 cur = *this;
  while (!cur.is_zero()) {
    auto [q, r] = divmod_small(cur, 10);
    out.push_back(static_cast<char>('0' + r.limb[0]));
    cur = q;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string U256::to_hex() const {
  std::string full = srbb::to_hex(be_bytes());
  const auto pos = full.find_first_not_of('0');
  return "0x" + (pos == std::string::npos ? std::string{"0"} : full.substr(pos));
}

bool sign_bit(const U256& v) { return (v.limb[3] >> 63) != 0; }

U256 negate(const U256& v) { return (~v) + U256::one(); }

bool slt(const U256& a, const U256& b) {
  const bool sa = sign_bit(a);
  const bool sb = sign_bit(b);
  if (sa != sb) return sa;  // negative < non-negative
  return a < b;
}

bool sgt(const U256& a, const U256& b) { return slt(b, a); }

U256 sdiv(const U256& a, const U256& b) {
  if (b.is_zero()) return U256{};
  const bool na = sign_bit(a);
  const bool nb = sign_bit(b);
  const U256 ua = na ? negate(a) : a;
  const U256 ub = nb ? negate(b) : b;
  const U256 q = ua / ub;
  return (na != nb) ? negate(q) : q;
}

U256 smod(const U256& a, const U256& b) {
  if (b.is_zero()) return U256{};
  const bool na = sign_bit(a);
  const U256 ua = na ? negate(a) : a;
  const U256 ub = sign_bit(b) ? negate(b) : b;
  const U256 r = ua % ub;
  return na ? negate(r) : r;
}

U256 sar(const U256& v, unsigned n) {
  if (!sign_bit(v)) return v >> n;
  if (n >= 256) return U256::max();
  // Shift then backfill the vacated high bits with ones.
  U256 shifted = v >> n;
  if (n == 0) return shifted;
  const U256 fill = ~(U256::max() >> n);
  return shifted | fill;
}

U256 signextend(unsigned byte_index, const U256& v) {
  if (byte_index >= 31) return v;
  const unsigned bit = byte_index * 8 + 7;
  const U256 mask = (U256::one() << (bit + 1)) - U256::one();
  if (v.bit(bit)) return v | ~mask;
  return v & mask;
}

std::uint8_t nth_byte(const U256& v, unsigned i) {
  if (i >= 32) return 0;
  std::uint8_t be[32];
  v.to_be(be);
  return be[i];
}

namespace {

// Remainder of a 512-bit value (hi:lo) modulo a 256-bit modulus, via binary
// long division over the full width.
U256 mod512(const U256& lo, const U256& hi, const U256& m) {
  if (m.is_zero()) return U256{};
  U256 rem;
  const unsigned total = hi.is_zero() ? lo.bit_length() : 256 + hi.bit_length();
  for (unsigned i = total; i-- > 0;) {
    // When bit 255 shifts out, the true value is 2^256 + shifted; since
    // rem < m <= 2^256 - 1, subtracting m once (with wraparound) lands back
    // below m because 2*rem + 1 < 2m.
    const bool overflow = rem.bit(255);
    rem = rem << 1;
    const bool b = i >= 256 ? hi.bit(i - 256) : lo.bit(i);
    if (b) rem.limb[0] |= 1;
    if (overflow) {
      rem = rem - m;  // wrapping subtraction: shifted - m + 2^256
    } else if (rem >= m) {
      rem = rem - m;
    }
  }
  return rem;
}

}  // namespace

U256 addmod(const U256& a, const U256& b, const U256& m) {
  if (m.is_zero()) return U256{};
  const U256 sum = a + b;
  const bool carry = sum < a;  // wrapped past 2^256
  return mod512(sum, carry ? U256::one() : U256{}, m);
}

U256 mulmod(const U256& a, const U256& b, const U256& m) {
  if (m.is_zero()) return U256{};
  const auto wide = a.full_mul(b);
  return mod512(wide.lo, wide.hi, m);
}

U256 exp_pow(const U256& base, const U256& exponent) {
  U256 result = U256::one();
  U256 b = base;
  const unsigned nbits = exponent.bit_length();
  for (unsigned i = 0; i < nbits; ++i) {
    if (exponent.bit(i)) result = result * b;
    b = b * b;
  }
  return result;
}

}  // namespace srbb
