// Deterministic pseudo-randomness for simulations and tests.
// xoshiro256** seeded through SplitMix64: fast, high quality, and — unlike
// std::mt19937 across standard libraries — bit-for-bit reproducible, which the
// discrete-event simulator relies on.
#pragma once

#include <cstdint>

namespace srbb {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();
  /// Uniform in [0, bound) without modulo bias; 0 when bound == 0.
  std::uint64_t next_below(std::uint64_t bound);
  /// Uniform double in [0, 1).
  double next_double();
  /// Exponentially distributed with the given mean (inter-arrival times).
  double next_exponential(double mean);
  /// Uniform in [lo, hi].
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi);
  bool next_bool(double probability_true);

  /// Derive an independent child stream (per node, per client, ...), so that
  /// adding consumers does not perturb unrelated streams.
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace srbb
