#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace srbb {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Chunked dispatch: one task per worker pulling indices from a shared
  // counter keeps scheduling overhead independent of n.
  auto counter = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t tasks = std::min(n, workers_.size());
  for (std::size_t t = 0; t < tasks; ++t) {
    submit([counter, n, &fn] {
      for (;;) {
        const std::size_t i = counter->fetch_add(1);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace srbb
