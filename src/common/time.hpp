// Simulated-time units. The discrete-event simulator advances a virtual clock
// measured in nanoseconds; these helpers keep call sites dimension-checked by
// naming rather than by a heavyweight units library.
#pragma once

#include <cstdint>

namespace srbb {

/// Virtual nanoseconds since simulation start.
using SimTime = std::uint64_t;
/// Virtual duration in nanoseconds.
using SimDuration = std::uint64_t;

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr SimDuration micros(std::uint64_t n) { return n * kMicrosecond; }
constexpr SimDuration millis(std::uint64_t n) { return n * kMillisecond; }
constexpr SimDuration seconds(std::uint64_t n) { return n * kSecond; }

constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr SimDuration from_seconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}

}  // namespace srbb
