#include "common/bytes.hpp"

namespace srbb {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (auto b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

std::optional<Bytes> from_hex(std::string_view hex) {
  if (hex.size() >= 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X')) {
    hex.remove_prefix(2);
  }
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

void put_be32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}

void put_be64(std::uint8_t* out, std::uint64_t v) {
  put_be32(out, static_cast<std::uint32_t>(v >> 32));
  put_be32(out + 4, static_cast<std::uint32_t>(v));
}

std::uint32_t get_be32(const std::uint8_t* in) {
  return (static_cast<std::uint32_t>(in[0]) << 24) |
         (static_cast<std::uint32_t>(in[1]) << 16) |
         (static_cast<std::uint32_t>(in[2]) << 8) |
         static_cast<std::uint32_t>(in[3]);
}

std::uint64_t get_be64(const std::uint8_t* in) {
  return (static_cast<std::uint64_t>(get_be32(in)) << 32) | get_be32(in + 4);
}

}  // namespace srbb
