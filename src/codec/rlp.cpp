#include "codec/rlp.hpp"

namespace srbb::rlp {

namespace {

// Append the length header for a payload of `length` bytes, using `base`
// 0x80 for strings or 0xc0 for lists.
void append_header(Bytes& out, std::size_t length, std::uint8_t base) {
  if (length <= 55) {
    out.push_back(static_cast<std::uint8_t>(base + length));
    return;
  }
  std::uint8_t len_be[8];
  put_be64(len_be, length);
  std::size_t first = 0;
  while (first < 7 && len_be[first] == 0) ++first;
  const std::size_t len_of_len = 8 - first;
  out.push_back(static_cast<std::uint8_t>(base + 55 + len_of_len));
  out.insert(out.end(), len_be + first, len_be + 8);
}

Bytes minimal_be(const U256& value) {
  const Bytes full = value.be_bytes();
  std::size_t first = 0;
  while (first < full.size() && full[first] == 0) ++first;
  return Bytes{full.begin() + static_cast<std::ptrdiff_t>(first), full.end()};
}

}  // namespace

Bytes encode_bytes(BytesView payload) {
  Bytes out;
  if (payload.size() == 1 && payload[0] < 0x80) {
    out.push_back(payload[0]);
    return out;
  }
  append_header(out, payload.size(), 0x80);
  append(out, payload);
  return out;
}

Bytes encode_u64(std::uint64_t value) { return encode_u256(U256{value}); }

Bytes encode_u256(const U256& value) {
  const Bytes payload = minimal_be(value);
  return encode_bytes(payload);
}

Bytes encode_list(const std::vector<Bytes>& encoded_items) {
  std::size_t total = 0;
  for (const auto& item : encoded_items) total += item.size();
  Bytes out;
  out.reserve(total + 9);
  append_header(out, total, 0xc0);
  for (const auto& item : encoded_items) append(out, item);
  return out;
}

ListBuilder& ListBuilder::add_bytes(BytesView payload) {
  items_.push_back(encode_bytes(payload));
  return *this;
}

ListBuilder& ListBuilder::add_u64(std::uint64_t value) {
  items_.push_back(encode_u64(value));
  return *this;
}

ListBuilder& ListBuilder::add_u256(const U256& value) {
  items_.push_back(encode_u256(value));
  return *this;
}

ListBuilder& ListBuilder::add_raw(Bytes encoded) {
  items_.push_back(std::move(encoded));
  return *this;
}

Bytes ListBuilder::build() const { return encode_list(items_); }

Result<std::uint64_t> Item::as_u64() const {
  auto wide = as_u256();
  if (!wide) return wide.status();
  if (!wide.value().fits_u64()) return Status::error("rlp: integer exceeds 64 bits");
  return wide.value().as_u64();
}

Result<U256> Item::as_u256() const {
  if (is_list) return Status::error("rlp: expected integer, found list");
  if (payload.size() > 32) return Status::error("rlp: integer exceeds 256 bits");
  if (!payload.empty() && payload[0] == 0) {
    return Status::error("rlp: non-canonical integer (leading zero)");
  }
  return U256::from_be(payload);
}

namespace {

// Nesting deeper than this is rejected. The recursive decoder consumes stack
// per level, so without a cap a Byzantine peer could crash a validator with a
// few hundred KB of correctly-framed nested lists (stack overflow; reproduced
// by fuzz/corpus/rlp/deep_nesting_100k.bin). 512 levels is far beyond any
// legitimate SRBB structure (blocks nest 3 deep) yet well within stack
// budget on every platform we run on.
constexpr std::size_t kMaxDepth = 512;

Result<std::size_t> read_long_length(BytesView& data, std::size_t len_of_len) {
  if (data.size() < len_of_len) return Status::error("rlp: truncated length");
  if (len_of_len > 8) return Status::error("rlp: length too large");
  if (data[0] == 0) return Status::error("rlp: non-canonical length (leading zero)");
  std::size_t length = 0;
  for (std::size_t i = 0; i < len_of_len; ++i) {
    length = (length << 8) | data[i];
  }
  if (length <= 55) return Status::error("rlp: non-canonical long form");
  data = data.subspan(len_of_len);
  return length;
}

Result<Item> decode_prefix_at(BytesView& data, std::size_t depth) {
  if (depth > kMaxDepth) return Status::error("rlp: nesting too deep");
  if (data.empty()) return Status::error("rlp: empty input");
  const std::uint8_t prefix = data[0];
  data = data.subspan(1);

  Item out;
  std::size_t length = 0;

  if (prefix < 0x80) {
    // Single byte encodes itself.
    out.payload.push_back(prefix);
    return out;
  }
  if (prefix <= 0xb7) {  // short string
    length = prefix - 0x80;
    if (data.size() < length) return Status::error("rlp: truncated string");
    if (length == 1 && data[0] < 0x80) {
      return Status::error("rlp: non-canonical single byte");
    }
    out.payload.assign(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(length));
    data = data.subspan(length);
    return out;
  }
  if (prefix <= 0xbf) {  // long string
    auto len = read_long_length(data, prefix - 0xb7);
    if (!len) return len.status();
    length = len.value();
    if (data.size() < length) return Status::error("rlp: truncated string");
    out.payload.assign(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(length));
    data = data.subspan(length);
    return out;
  }
  // Lists.
  out.is_list = true;
  if (prefix <= 0xf7) {
    length = prefix - 0xc0;
  } else {
    auto len = read_long_length(data, prefix - 0xf7);
    if (!len) return len.status();
    length = len.value();
  }
  if (data.size() < length) return Status::error("rlp: truncated list");
  BytesView body = data.subspan(0, length);
  data = data.subspan(length);
  while (!body.empty()) {
    auto child = decode_prefix_at(body, depth + 1);
    if (!child) return child.status();
    out.items.push_back(std::move(child).take());
  }
  return out;
}

// Zero-copy twin of decode_prefix_at: identical control flow and error
// strings, but payloads become views into the wire buffer and the tree is
// appended to the flat node arena in DFS pre-order. Kept side by side with
// the copying decoder above so a diff of the two functions shows only the
// copy-vs-view difference (fuzz_rlp_view enforces behavioural equality).
Status view_parse_at(BytesView& data, std::vector<ViewNode>& nodes,
                     std::size_t depth) {
  if (depth > kMaxDepth) return Status::error("rlp: nesting too deep");
  if (data.empty()) return Status::error("rlp: empty input");
  const std::uint8_t prefix = data[0];
  const std::uint8_t* start = data.data();
  data = data.subspan(1);

  const std::uint32_t self = static_cast<std::uint32_t>(nodes.size());
  nodes.emplace_back();  // may reallocate during recursion; index, don't hold
  std::size_t length = 0;

  if (prefix < 0x80) {
    // Single byte encodes itself; the view is that wire byte.
    nodes[self].payload = BytesView{start, 1};
    nodes[self].subtree_end = self + 1;
    return Status::ok();
  }
  if (prefix <= 0xb7) {  // short string
    length = prefix - 0x80;
    if (data.size() < length) return Status::error("rlp: truncated string");
    if (length == 1 && data[0] < 0x80) {
      return Status::error("rlp: non-canonical single byte");
    }
    nodes[self].payload = data.first(length);
    data = data.subspan(length);
    nodes[self].subtree_end = self + 1;
    return Status::ok();
  }
  if (prefix <= 0xbf) {  // long string
    auto len = read_long_length(data, prefix - 0xb7);
    if (!len) return len.status();
    length = len.value();
    if (data.size() < length) return Status::error("rlp: truncated string");
    nodes[self].payload = data.first(length);
    data = data.subspan(length);
    nodes[self].subtree_end = self + 1;
    return Status::ok();
  }
  // Lists.
  nodes[self].is_list = true;
  if (prefix <= 0xf7) {
    length = prefix - 0xc0;
  } else {
    auto len = read_long_length(data, prefix - 0xf7);
    if (!len) return len.status();
    length = len.value();
  }
  if (data.size() < length) return Status::error("rlp: truncated list");
  BytesView body = data.subspan(0, length);
  nodes[self].payload = body;
  data = data.subspan(length);
  std::uint32_t children = 0;
  while (!body.empty()) {
    const Status child = view_parse_at(body, nodes, depth + 1);
    if (!child.is_ok()) return child;
    ++children;
  }
  nodes[self].child_count = children;
  nodes[self].subtree_end = static_cast<std::uint32_t>(nodes.size());
  return Status::ok();
}

}  // namespace

Result<Item> decode_prefix(BytesView& data) {
  return decode_prefix_at(data, 0);
}

Result<Item> decode(BytesView data) {
  auto item = decode_prefix(data);
  if (!item) return item.status();
  if (!data.empty()) return Status::error("rlp: trailing bytes");
  return item;
}

bool ItemView::is_list() const { return doc_->nodes_[index_].is_list; }

BytesView ItemView::payload() const {
  const ViewNode& n = doc_->nodes_[index_];
  return n.is_list ? BytesView{} : n.payload;
}

BytesView ItemView::list_body() const {
  const ViewNode& n = doc_->nodes_[index_];
  return n.is_list ? n.payload : BytesView{};
}

std::size_t ItemView::size() const { return doc_->nodes_[index_].child_count; }

ItemView ItemView::child(std::size_t i) const {
  std::uint32_t idx = index_ + 1;
  for (std::size_t hop = 0; hop < i; ++hop) {
    idx = doc_->nodes_[idx].subtree_end;
  }
  return ItemView{doc_, idx};
}

ItemView ItemView::next_sibling() const {
  return ItemView{doc_, doc_->nodes_[index_].subtree_end};
}

Result<std::uint64_t> ItemView::as_u64() const {
  auto wide = as_u256();
  if (!wide) return wide.status();
  if (!wide.value().fits_u64()) {
    return Status::error("rlp: integer exceeds 64 bits");
  }
  return wide.value().as_u64();
}

Result<U256> ItemView::as_u256() const {
  const ViewNode& n = doc_->nodes_[index_];
  if (n.is_list) return Status::error("rlp: expected integer, found list");
  if (n.payload.size() > 32) {
    return Status::error("rlp: integer exceeds 256 bits");
  }
  if (!n.payload.empty() && n.payload[0] == 0) {
    return Status::error("rlp: non-canonical integer (leading zero)");
  }
  return U256::from_be(n.payload);
}

Item ItemView::materialize() const {
  const ViewNode& n = doc_->nodes_[index_];
  Item out;
  out.is_list = n.is_list;
  if (!n.is_list) {
    out.payload.assign(n.payload.begin(), n.payload.end());
    return out;
  }
  out.items.reserve(n.child_count);
  ItemView c = ItemView{doc_, index_ + 1};
  for (std::uint32_t i = 0; i < n.child_count; ++i) {
    out.items.push_back(c.materialize());
    c = c.next_sibling();
  }
  return out;
}

Result<ItemView> decode_view(BytesView data, ViewDoc& doc) {
  doc.clear();
  const Status parsed = view_parse_at(data, doc.nodes_, 0);
  if (!parsed.is_ok()) return parsed;
  if (!data.empty()) return Status::error("rlp: trailing bytes");
  return doc.root();
}

}  // namespace srbb::rlp
