// Recursive Length Prefix (RLP) serialization, as specified in the Ethereum
// yellow paper. Encoding is canonical; decoding rejects every non-canonical
// form (long form for short payloads, leading zeros in lengths, trailing
// bytes), so `decode(encode(x)) == x` and malformed wire data is surfaced as
// an error rather than undefined behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "common/u256.hpp"

namespace srbb::rlp {

// --- Encoding -------------------------------------------------------------

Bytes encode_bytes(BytesView payload);
/// Minimal big-endian integer encoding (zero encodes as the empty string).
Bytes encode_u64(std::uint64_t value);
Bytes encode_u256(const U256& value);
/// Wrap already-encoded items into a list.
Bytes encode_list(const std::vector<Bytes>& encoded_items);

/// Incremental builder for composite structures.
class ListBuilder {
 public:
  ListBuilder& add_bytes(BytesView payload);
  ListBuilder& add_u64(std::uint64_t value);
  ListBuilder& add_u256(const U256& value);
  ListBuilder& add_raw(Bytes encoded);  // pre-encoded item (e.g. nested list)
  Bytes build() const;

 private:
  std::vector<Bytes> items_;
};

// --- Decoding ---------------------------------------------------------------

struct Item {
  bool is_list = false;
  Bytes payload;            // string contents when !is_list
  std::vector<Item> items;  // children when is_list

  /// Integer view of a string item; error when it is a list, has a leading
  /// zero byte, or exceeds the requested width.
  Result<std::uint64_t> as_u64() const;
  Result<U256> as_u256() const;
};

/// Decode a complete RLP document; trailing bytes are an error. Nesting
/// beyond 512 levels is rejected ("rlp: nesting too deep") so hostile wire
/// data cannot exhaust the decoder's stack.
Result<Item> decode(BytesView data);

/// Decode one item from the front of `data`, advancing it.
Result<Item> decode_prefix(BytesView& data);

}  // namespace srbb::rlp
