// Recursive Length Prefix (RLP) serialization, as specified in the Ethereum
// yellow paper. Encoding is canonical; decoding rejects every non-canonical
// form (long form for short payloads, leading zeros in lengths, trailing
// bytes), so `decode(encode(x)) == x` and malformed wire data is surfaced as
// an error rather than undefined behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "common/u256.hpp"

namespace srbb::rlp {

// --- Encoding -------------------------------------------------------------

Bytes encode_bytes(BytesView payload);
/// Minimal big-endian integer encoding (zero encodes as the empty string).
Bytes encode_u64(std::uint64_t value);
Bytes encode_u256(const U256& value);
/// Wrap already-encoded items into a list.
Bytes encode_list(const std::vector<Bytes>& encoded_items);

/// Incremental builder for composite structures.
class ListBuilder {
 public:
  ListBuilder& add_bytes(BytesView payload);
  ListBuilder& add_u64(std::uint64_t value);
  ListBuilder& add_u256(const U256& value);
  ListBuilder& add_raw(Bytes encoded);  // pre-encoded item (e.g. nested list)
  Bytes build() const;

 private:
  std::vector<Bytes> items_;
};

// --- Decoding ---------------------------------------------------------------

struct Item {
  bool is_list = false;
  Bytes payload;            // string contents when !is_list
  std::vector<Item> items;  // children when is_list

  /// Integer view of a string item; error when it is a list, has a leading
  /// zero byte, or exceeds the requested width.
  Result<std::uint64_t> as_u64() const;
  Result<U256> as_u256() const;
};

/// Decode a complete RLP document; trailing bytes are an error. Nesting
/// beyond 512 levels is rejected ("rlp: nesting too deep") so hostile wire
/// data cannot exhaust the decoder's stack.
Result<Item> decode(BytesView data);

/// Decode one item from the front of `data`, advancing it.
Result<Item> decode_prefix(BytesView& data);

// --- Zero-copy decoding -----------------------------------------------------
//
// decode_view() parses the same grammar with the same canonicality rules,
// traversal order and error strings as decode() (fuzz_rlp_view checks the
// two differentially), but instead of copying payloads it records views into
// the wire buffer, with the tree structure flattened into a ViewDoc arena in
// DFS pre-order.
//
// Lifetime rules (docs/PERF.md "Arena lifetime"):
//  - every ItemView and every BytesView obtained from one aliases BOTH the
//    ViewDoc and the wire buffer passed to decode_view; neither may move or
//    be destroyed while views are in use;
//  - decode_view clears the doc on entry, so reusing one ViewDoc across many
//    frames amortizes the node allocations (arena behaviour) but invalidates
//    all views into the previous frame;
//  - on error the doc contents are unspecified.

struct ViewNode {
  std::uint32_t subtree_end = 0;  // one past this node's subtree in the doc
  std::uint32_t child_count = 0;  // direct children (0 for strings)
  bool is_list = false;
  BytesView payload{};  // string contents; for lists, the raw encoded body
};

class ViewDoc;

/// A node handle into a ViewDoc. Cheap to copy (pointer + index).
class ItemView {
 public:
  ItemView() = default;

  bool valid() const { return doc_ != nullptr; }
  bool is_list() const;
  /// String contents (empty view for lists).
  BytesView payload() const;
  /// Raw encoded body of a list — the concatenated encoded children, a slice
  /// of the wire buffer (empty view for strings). Lets callers cut nested
  /// frames out of the wire without re-encoding.
  BytesView list_body() const;
  /// Direct child count (0 for strings).
  std::size_t size() const;
  /// i-th child via O(i) subtree hops; prefer next_sibling() when walking a
  /// long list. Precondition: is_list() and i < size().
  ItemView child(std::size_t i) const;
  /// The node after this subtree. Only meaningful while the walk stays below
  /// the parent's size() — the hop past the last child lands outside the
  /// sibling range.
  ItemView next_sibling() const;

  /// Same semantics and error strings as Item::as_u64/as_u256.
  Result<std::uint64_t> as_u64() const;
  Result<U256> as_u256() const;

  /// Deep copy into an owning Item (differential oracle / cold paths).
  Item materialize() const;

 private:
  friend class ViewDoc;
  friend Result<ItemView> decode_view(BytesView data, ViewDoc& doc);
  ItemView(const ViewDoc* doc, std::uint32_t index)
      : doc_(doc), index_(index) {}

  const ViewDoc* doc_ = nullptr;
  std::uint32_t index_ = 0;
};

/// Flat arena holding one decoded frame in DFS pre-order: a node's children
/// start at its own index + 1, and sibling n+1 starts at sibling n's
/// subtree_end.
class ViewDoc {
 public:
  /// Root of the last successful decode_view into this doc.
  ItemView root() const { return ItemView{this, 0}; }
  std::size_t node_count() const { return nodes_.size(); }
  /// Drop the nodes but keep the capacity (arena reuse across frames).
  void clear() { nodes_.clear(); }

 private:
  friend class ItemView;
  friend Result<ItemView> decode_view(BytesView data, ViewDoc& doc);
  std::vector<ViewNode> nodes_;
};

/// Zero-copy analogue of decode(): same grammar, same canonicality rules,
/// same error strings, no payload copies. On success the returned root view
/// and its whole subtree live in `doc`.
Result<ItemView> decode_view(BytesView data, ViewDoc& doc);

}  // namespace srbb::rlp
