// Golden-trace determinism suite (DESIGN.md §8, ISSUE headline deliverable).
//
// The simulator is a pure function of (workload, seed, fault-plan), so the
// commit-path trace must be bit-identical across runs — and across commits,
// unless a change deliberately alters protocol behaviour. Each scenario here
// is pinned to a checked-in SHA-256 fingerprint under tests/golden/. To
// refresh after an intentional behaviour change:
//
//   SRBB_UPDATE_GOLDEN=1 ctest -R GoldenTrace
//
// and commit the updated tests/golden/*.sha256 with an explanation.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/bytes.hpp"
#include "diablo/runner.hpp"
#include "diablo/workload.hpp"
#include "obs/trace.hpp"
#include "sim/fault.hpp"

namespace srbb {
namespace {

diablo::RunConfig small_config(diablo::SystemKind kind) {
  diablo::RunConfig config;
  config.kind = kind;
  config.system_name = kind == diablo::SystemKind::kSrbb ? "SRBB" : "EVM+DBFT";
  config.validators = 4;
  config.clients = 2;
  config.seed = 42;
  config.workload = diablo::WorkloadSpec::constant("golden", 40, 3);
  config.drain = seconds(10);
  config.min_block_interval = millis(200);
  config.proposal_timeout = millis(500);
  return config;
}

Hash32 run_fingerprint(const diablo::RunConfig& base, obs::TraceSink* sink) {
  diablo::RunConfig config = base;
  config.trace = sink;
  (void)diablo::run_experiment(config);
  return sink->fingerprint();
}

// Resolve tests/golden/<name>.sha256 relative to this source file, so the
// goldens live (and are reviewed) next to the tests regardless of the build
// directory ctest runs from.
std::string golden_path(const std::string& name) {
  std::string dir = __FILE__;
  dir.resize(dir.rfind('/'));
  return dir + "/golden/" + name + ".sha256";
}

bool update_goldens() {
  const char* env = std::getenv("SRBB_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// Compare a fingerprint against its checked-in golden; write-if-missing (or
// under SRBB_UPDATE_GOLDEN=1) so bootstrapping a new scenario is one run.
void expect_matches_golden(const std::string& name, const Hash32& actual) {
  const std::string path = golden_path(name);
  const std::string hex = actual.hex();
  std::ifstream in(path);
  if (!in.good() || update_goldens()) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << hex << "\n";
    GTEST_LOG_(INFO) << "wrote golden " << path;
    return;
  }
  std::string expected;
  in >> expected;
  EXPECT_EQ(hex, expected)
      << "trace fingerprint for '" << name << "' diverged from " << path
      << "\nIf this change is intentional, regenerate with "
         "SRBB_UPDATE_GOLDEN=1 and commit the new golden.";
}

TEST(GoldenTrace, SrbbRunIsBitIdenticalAcrossTwentyRuns) {
  const diablo::RunConfig config = small_config(diablo::SystemKind::kSrbb);
  obs::TraceSink first;
  const Hash32 reference = run_fingerprint(config, &first);
  ASSERT_GT(first.size(), 0u) << "trace sink saw no events";
  for (int run = 1; run < 20; ++run) {
    obs::TraceSink sink;
    ASSERT_EQ(run_fingerprint(config, &sink), reference)
        << "run " << run << " diverged";
  }
  expect_matches_golden("srbb_small", reference);
}

TEST(GoldenTrace, SrbbCoversTheWholeCommitPath) {
  diablo::RunConfig config = small_config(diablo::SystemKind::kSrbb);
  obs::TraceSink sink;
  config.trace = &sink;
  const diablo::RunResult result = diablo::run_experiment(config);
  ASSERT_GT(result.committed, 0u);

  // Every stage of pool admit -> eager-validate -> proposal -> DBFT decide ->
  // superblock exec -> receipt must appear in the trace.
  for (const char* name :
       {"client.send", "pool.admit", "tx.eager_validate", "round.propose",
        "consensus.begin", "consensus.bin_decided", "consensus.decide",
        "superblock.exec", "superblock.commit", "commit.ack", "client.ack"}) {
    EXPECT_GT(sink.count_of(name), 0u) << "missing trace event " << name;
  }
  // One ack per committed transaction reaches a client.
  EXPECT_EQ(sink.count_of("client.ack"), result.committed);
  // The per-phase histograms the registry aggregates must have fired too.
  EXPECT_GT(result.pool_wait.count, 0u);
  EXPECT_GT(result.propose_to_decide.count, 0u);
  EXPECT_GT(result.decide_to_commit.count, 0u);
  EXPECT_EQ(result.e2e_commit.count, result.committed);
}

TEST(GoldenTrace, ChromeJsonExportIsByteDeterministic) {
  const diablo::RunConfig config = small_config(diablo::SystemKind::kSrbb);
  obs::TraceSink a;
  obs::TraceSink b;
  run_fingerprint(config, &a);
  run_fingerprint(config, &b);
  const std::string json_a = a.chrome_json();
  EXPECT_EQ(json_a, b.chrome_json());
  EXPECT_NE(json_a.find("\"traceEvents\""), std::string::npos);
}

TEST(GoldenTrace, EvmDbftBaselineIsPinned) {
  const diablo::RunConfig config = small_config(diablo::SystemKind::kEvmDbft);
  obs::TraceSink a;
  const Hash32 reference = run_fingerprint(config, &a);
  obs::TraceSink b;
  ASSERT_EQ(run_fingerprint(config, &b), reference);
  expect_matches_golden("evm_dbft_small", reference);
}

TEST(GoldenTrace, FaultyRunIsPinned) {
  // Message loss + a partition exercise the net.* attribution events; the
  // rebroadcast timer keeps the run live. Still a pure function of the plan.
  diablo::RunConfig config = small_config(diablo::SystemKind::kSrbb);
  config.rebroadcast_interval = millis(250);
  config.faults.seed = 7;
  config.faults.default_link.drop = 0.05;
  sim::PartitionSpec partition;
  partition.from = seconds(1);
  partition.until = seconds(2);
  partition.island = {0};
  config.faults.partitions.push_back(partition);

  obs::TraceSink a;
  const Hash32 reference = run_fingerprint(config, &a);
  EXPECT_GT(a.count_of("net.drop"), 0u);
  EXPECT_GT(a.count_of("net.partition_block"), 0u);
  obs::TraceSink b;
  ASSERT_EQ(run_fingerprint(config, &b), reference);
  expect_matches_golden("srbb_faulty", reference);
}

TEST(GoldenTrace, DifferentSeedsGiveDifferentTraces) {
  diablo::RunConfig config = small_config(diablo::SystemKind::kSrbb);
  obs::TraceSink a;
  const Hash32 first = run_fingerprint(config, &a);
  config.seed = 43;
  obs::TraceSink b;
  EXPECT_NE(run_fingerprint(config, &b), first)
      << "fingerprint is insensitive to the seed — it is not covering the "
         "event stream";
}

}  // namespace
}  // namespace srbb
