// Randomized robustness tests: hostile inputs must produce clean errors,
// never crashes, hangs or resource blowups. These are the paths a Byzantine
// peer controls (wire bytes, bytecode inside deployments).
#include <gtest/gtest.h>

#include <memory>

#include "codec/rlp.hpp"
#include "common/rng.hpp"
#include "evm/interpreter.hpp"
#include "evm/opcodes.hpp"
#include "txn/block.hpp"
#include "txn/transaction.hpp"

namespace srbb {
namespace {

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::ed25519();
}

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes out(rng.next_below(max_len));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, RlpDecodeNeverCrashesAndRoundTrips) {
  Rng rng{GetParam()};
  for (int i = 0; i < 2000; ++i) {
    const Bytes input = random_bytes(rng, 64);
    auto item = rlp::decode(input);
    if (!item.is_ok()) continue;
    // Anything that decodes must re-encode to the identical canonical bytes.
    std::function<Bytes(const rlp::Item&)> reencode =
        [&](const rlp::Item& node) -> Bytes {
      if (!node.is_list) return rlp::encode_bytes(node.payload);
      std::vector<Bytes> parts;
      for (const rlp::Item& child : node.items) parts.push_back(reencode(child));
      return rlp::encode_list(parts);
    };
    EXPECT_EQ(reencode(item.value()), input);
  }
}

TEST_P(FuzzSeeds, TransactionDecodeNeverCrashes) {
  Rng rng{GetParam()};
  for (int i = 0; i < 1000; ++i) {
    const Bytes input = random_bytes(rng, 300);
    (void)txn::Transaction::decode(input);  // must not crash or leak
  }
  // Mutations of a valid transaction: decode either fails or yields a
  // transaction whose signature no longer verifies (unless untouched).
  const auto& scheme = crypto::SignatureScheme::ed25519();
  txn::TxParams params;
  params.gas_limit = 30'000;
  const txn::Transaction tx =
      txn::make_signed(params, scheme.make_identity(1), scheme);
  const Bytes wire = tx.encode();
  for (int i = 0; i < 200; ++i) {
    Bytes mutated = wire;
    mutated[rng.next_below(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.next_below(255));
    auto decoded = txn::Transaction::decode(mutated);
    if (!decoded.is_ok()) continue;
    if (decoded.value() == tx) continue;  // mutation hit redundant encoding
    EXPECT_FALSE(verify_signature(decoded.value(), scheme));
  }
}

TEST_P(FuzzSeeds, BlockDecodeNeverCrashes) {
  Rng rng{GetParam()};
  for (int i = 0; i < 500; ++i) {
    (void)txn::decode_block(random_bytes(rng, 400));
  }
}

TEST_P(FuzzSeeds, RandomBytecodeTerminatesCleanly) {
  Rng rng{GetParam()};
  state::StateDB db;
  Address contract;
  contract[19] = 0xFC;
  Address caller;
  caller[19] = 0xCA;
  db.add_balance(caller, U256{1'000'000});
  for (int i = 0; i < 300; ++i) {
    const Bytes code = random_bytes(rng, 200);
    db.set_code(contract, code);
    evm::Evm evm{db, {}, {}};
    evm::Message msg;
    msg.caller = caller;
    msg.to = contract;
    msg.gas = 100'000;
    msg.data = random_bytes(rng, 64);
    const evm::ExecResult result = evm.execute(msg);
    // Whatever happened, gas cannot be created.
    EXPECT_LE(result.gas_left, 100'000u);
  }
}

TEST_P(FuzzSeeds, RandomValidOpcodeSoupTerminates) {
  // Bias toward defined opcodes so deeper interpreter paths are reached.
  Rng rng{GetParam() ^ 0xBEEF};
  std::vector<std::uint8_t> defined;
  for (int op = 0; op < 256; ++op) {
    if (evm::opcode_info(static_cast<std::uint8_t>(op)).defined) {
      defined.push_back(static_cast<std::uint8_t>(op));
    }
  }
  state::StateDB db;
  Address contract;
  contract[19] = 0xFD;
  for (int i = 0; i < 300; ++i) {
    Bytes code(rng.next_below(300));
    for (auto& b : code) b = defined[rng.next_below(defined.size())];
    db.set_code(contract, code);
    evm::Evm evm{db, {}, {}};
    evm::Message msg;
    msg.to = contract;
    msg.gas = 200'000;
    const evm::ExecResult result = evm.execute(msg);
    EXPECT_LE(result.gas_left, 200'000u);
    db.commit();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(101ull, 202ull, 303ull));

// ---------------------------------------------------------------------------
// Deterministic edge cases promoted from fuzzing (see fuzz/corpus/).
// ---------------------------------------------------------------------------

Bytes nested_list(std::size_t depth) {
  // `depth` single-element lists wrapped around an empty list, with correct
  // length headers at every level. Built outside-in from precomputed sizes
  // so generating a 100k-deep frame stays linear.
  std::vector<std::size_t> sizes(depth + 1);
  sizes[0] = 1;  // 0xc0
  for (std::size_t k = 1; k <= depth; ++k) {
    const std::size_t inner = sizes[k - 1];
    std::size_t header = 1;
    if (inner > 55) {
      for (std::size_t v = inner; v != 0; v >>= 8) ++header;
    }
    sizes[k] = header + inner;
  }
  Bytes wire;
  wire.reserve(sizes[depth]);
  for (std::size_t k = depth; k >= 1; --k) {
    const std::size_t inner = sizes[k - 1];
    if (inner <= 55) {
      wire.push_back(static_cast<std::uint8_t>(0xc0 + inner));
    } else {
      Bytes be;
      for (std::size_t v = inner; v != 0; v >>= 8) {
        be.insert(be.begin(), static_cast<std::uint8_t>(v & 0xff));
      }
      wire.push_back(static_cast<std::uint8_t>(0xf7 + be.size()));
      wire.insert(wire.end(), be.begin(), be.end());
    }
  }
  wire.push_back(0xc0);
  return wire;
}

TEST(FuzzRegression, RlpNestingWithinCapRoundTrips) {
  for (const std::size_t depth : {0u, 1u, 64u, 500u}) {
    const Bytes wire = nested_list(depth);
    auto item = rlp::decode(wire);
    ASSERT_TRUE(item.is_ok()) << "depth " << depth;
    // Walk back down: each level must be a single-element list.
    const rlp::Item* node = &item.value();
    for (std::size_t level = 0; level < depth; ++level) {
      ASSERT_TRUE(node->is_list);
      ASSERT_EQ(node->items.size(), 1u);
      node = &node->items[0];
    }
    EXPECT_TRUE(node->is_list);
    EXPECT_TRUE(node->items.empty());
  }
}

TEST(FuzzRegression, RlpNestingBeyondCapFailsCleanly) {
  // Regression: before the 512-level cap, ~100KB of 0xc1 prefixes drove the
  // recursive decoder into stack overflow — a remotely triggerable validator
  // crash from a single hostile message.
  EXPECT_FALSE(rlp::decode(nested_list(600)).is_ok());
  EXPECT_FALSE(rlp::decode(nested_list(100'000)).is_ok());
}

txn::Block indexed_block(std::uint64_t index, std::uint64_t proposer_id) {
  const crypto::Identity proposer = scheme().make_identity(proposer_id);
  txn::TxParams params;
  params.nonce = proposer_id;
  auto tx = txn::make_tx_ptr(
      txn::make_signed(params, scheme().make_identity(7), scheme()));
  return txn::make_block(index, proposer_id, 1234, Hash32{}, {tx}, proposer,
                         scheme());
}

TEST(FuzzRegression, SuperblockRoundTrips) {
  std::vector<txn::BlockPtr> blocks;
  blocks.push_back(std::make_shared<txn::Block>(indexed_block(5, 1)));
  blocks.push_back(std::make_shared<txn::Block>(indexed_block(5, 2)));
  const Bytes wire = txn::encode_superblock(5, blocks);
  auto decoded = txn::decode_superblock(wire);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().message();
  EXPECT_EQ(decoded.value().index, 5u);
  ASSERT_EQ(decoded.value().blocks.size(), 2u);
  EXPECT_EQ(decoded.value().blocks[0]->hash(), blocks[0]->hash());
  EXPECT_EQ(decoded.value().blocks[1]->hash(), blocks[1]->hash());
}

TEST(FuzzRegression, SuperblockIndexMismatchRejected) {
  std::vector<txn::BlockPtr> blocks;
  blocks.push_back(std::make_shared<txn::Block>(indexed_block(5, 1)));
  const Bytes wire = txn::encode_superblock(7, blocks);  // frame says 7
  EXPECT_FALSE(txn::decode_superblock(wire).is_ok());
}

TEST(FuzzRegression, TruncatedSuperblockFramesFailCleanly) {
  std::vector<txn::BlockPtr> blocks;
  blocks.push_back(std::make_shared<txn::Block>(indexed_block(9, 1)));
  blocks.push_back(std::make_shared<txn::Block>(indexed_block(9, 2)));
  const Bytes wire = txn::encode_superblock(9, blocks);
  // Every strict prefix of a valid frame must fail (lengths are explicit in
  // RLP, so no prefix of a well-formed frame is itself well-formed)...
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const BytesView prefix{wire.data(), len};
    EXPECT_FALSE(txn::decode_superblock(prefix).is_ok()) << "prefix " << len;
  }
  // ...and so must trailing garbage (strict decode consumes exactly the
  // frame).
  Bytes padded = wire;
  padded.push_back(0x00);
  EXPECT_FALSE(txn::decode_superblock(padded).is_ok());
}

}  // namespace
}  // namespace srbb
