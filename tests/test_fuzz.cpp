// Randomized robustness tests: hostile inputs must produce clean errors,
// never crashes, hangs or resource blowups. These are the paths a Byzantine
// peer controls (wire bytes, bytecode inside deployments).
#include <gtest/gtest.h>

#include "codec/rlp.hpp"
#include "common/rng.hpp"
#include "evm/interpreter.hpp"
#include "evm/opcodes.hpp"
#include "txn/block.hpp"
#include "txn/transaction.hpp"

namespace srbb {
namespace {

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes out(rng.next_below(max_len));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, RlpDecodeNeverCrashesAndRoundTrips) {
  Rng rng{GetParam()};
  for (int i = 0; i < 2000; ++i) {
    const Bytes input = random_bytes(rng, 64);
    auto item = rlp::decode(input);
    if (!item.is_ok()) continue;
    // Anything that decodes must re-encode to the identical canonical bytes.
    std::function<Bytes(const rlp::Item&)> reencode =
        [&](const rlp::Item& node) -> Bytes {
      if (!node.is_list) return rlp::encode_bytes(node.payload);
      std::vector<Bytes> parts;
      for (const rlp::Item& child : node.items) parts.push_back(reencode(child));
      return rlp::encode_list(parts);
    };
    EXPECT_EQ(reencode(item.value()), input);
  }
}

TEST_P(FuzzSeeds, TransactionDecodeNeverCrashes) {
  Rng rng{GetParam()};
  for (int i = 0; i < 1000; ++i) {
    const Bytes input = random_bytes(rng, 300);
    (void)txn::Transaction::decode(input);  // must not crash or leak
  }
  // Mutations of a valid transaction: decode either fails or yields a
  // transaction whose signature no longer verifies (unless untouched).
  const auto& scheme = crypto::SignatureScheme::ed25519();
  txn::TxParams params;
  params.gas_limit = 30'000;
  const txn::Transaction tx =
      txn::make_signed(params, scheme.make_identity(1), scheme);
  const Bytes wire = tx.encode();
  for (int i = 0; i < 200; ++i) {
    Bytes mutated = wire;
    mutated[rng.next_below(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.next_below(255));
    auto decoded = txn::Transaction::decode(mutated);
    if (!decoded.is_ok()) continue;
    if (decoded.value() == tx) continue;  // mutation hit redundant encoding
    EXPECT_FALSE(verify_signature(decoded.value(), scheme));
  }
}

TEST_P(FuzzSeeds, BlockDecodeNeverCrashes) {
  Rng rng{GetParam()};
  for (int i = 0; i < 500; ++i) {
    (void)txn::decode_block(random_bytes(rng, 400));
  }
}

TEST_P(FuzzSeeds, RandomBytecodeTerminatesCleanly) {
  Rng rng{GetParam()};
  state::StateDB db;
  Address contract;
  contract[19] = 0xFC;
  Address caller;
  caller[19] = 0xCA;
  db.add_balance(caller, U256{1'000'000});
  for (int i = 0; i < 300; ++i) {
    const Bytes code = random_bytes(rng, 200);
    db.set_code(contract, code);
    evm::Evm evm{db, {}, {}};
    evm::Message msg;
    msg.caller = caller;
    msg.to = contract;
    msg.gas = 100'000;
    msg.data = random_bytes(rng, 64);
    const evm::ExecResult result = evm.execute(msg);
    // Whatever happened, gas cannot be created.
    EXPECT_LE(result.gas_left, 100'000u);
  }
}

TEST_P(FuzzSeeds, RandomValidOpcodeSoupTerminates) {
  // Bias toward defined opcodes so deeper interpreter paths are reached.
  Rng rng{GetParam() ^ 0xBEEF};
  std::vector<std::uint8_t> defined;
  for (int op = 0; op < 256; ++op) {
    if (evm::opcode_info(static_cast<std::uint8_t>(op)).defined) {
      defined.push_back(static_cast<std::uint8_t>(op));
    }
  }
  state::StateDB db;
  Address contract;
  contract[19] = 0xFD;
  for (int i = 0; i < 300; ++i) {
    Bytes code(rng.next_below(300));
    for (auto& b : code) b = defined[rng.next_below(defined.size())];
    db.set_code(contract, code);
    evm::Evm evm{db, {}, {}};
    evm::Message msg;
    msg.to = contract;
    msg.gas = 200'000;
    const evm::ExecResult result = evm.execute(msg);
    EXPECT_LE(result.gas_left, 200'000u);
    db.commit();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(101ull, 202ull, 303ull));

}  // namespace
}  // namespace srbb
