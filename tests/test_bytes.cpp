#include "common/bytes.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace srbb {
namespace {

TEST(Hex, EncodeEmpty) { EXPECT_EQ(to_hex(BytesView{}), ""); }

TEST(Hex, EncodeKnown) {
  const Bytes data{0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "0001abff");
}

TEST(Hex, DecodeRoundTrip) {
  const Bytes data{0xde, 0xad, 0xbe, 0xef, 0x00, 0x7f};
  const auto decoded = from_hex(to_hex(data));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(Hex, DecodeAccepts0xPrefixAndMixedCase) {
  const auto decoded = from_hex("0xDeadBEEF");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Hex, DecodeRejectsOddLength) { EXPECT_FALSE(from_hex("abc").has_value()); }

TEST(Hex, DecodeRejectsNonHex) { EXPECT_FALSE(from_hex("zz").has_value()); }

TEST(Hex, DecodeEmptyIsEmpty) {
  const auto decoded = from_hex("");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(FixedBytes, DefaultIsZero) {
  Hash32 h;
  EXPECT_TRUE(h.is_zero());
  EXPECT_EQ(h.hex(), std::string(64, '0'));
}

TEST(FixedBytes, ConstructFromView) {
  Bytes raw(20, 0x42);
  Address a{BytesView{raw.data(), raw.size()}};
  EXPECT_FALSE(a.is_zero());
  EXPECT_EQ(a[0], 0x42);
  EXPECT_EQ(a[19], 0x42);
}

TEST(FixedBytes, WrongSizeViewYieldsZero) {
  Bytes raw(5, 0x42);
  Address a{BytesView{raw.data(), raw.size()}};
  EXPECT_TRUE(a.is_zero());
}

TEST(FixedBytes, FromHexStr) {
  const auto a = Address::from_hex_str("0x" + std::string(40, '1'));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ((*a)[0], 0x11);
  EXPECT_FALSE(Address::from_hex_str("0x1234").has_value());
}

TEST(FixedBytes, Ordering) {
  Hash32 a, b;
  b[31] = 1;
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  a[31] = 1;
  EXPECT_EQ(a, b);
}

TEST(FixedBytes, Hashable) {
  std::unordered_set<Hash32> set;
  Hash32 a;
  Hash32 b;
  b[0] = 1;
  set.insert(a);
  set.insert(b);
  set.insert(a);
  EXPECT_EQ(set.size(), 2u);
}

TEST(BigEndian, RoundTrip32) {
  std::uint8_t buf[4];
  put_be32(buf, 0x12345678u);
  EXPECT_EQ(buf[0], 0x12);
  EXPECT_EQ(buf[3], 0x78);
  EXPECT_EQ(get_be32(buf), 0x12345678u);
}

TEST(BigEndian, RoundTrip64) {
  std::uint8_t buf[8];
  put_be64(buf, 0x0123456789abcdefull);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0xef);
  EXPECT_EQ(get_be64(buf), 0x0123456789abcdefull);
}

TEST(BytesHelpers, Concat) {
  const Bytes a{1, 2};
  const Bytes b{3};
  EXPECT_EQ(concat(a, b), (Bytes{1, 2, 3}));
}

}  // namespace
}  // namespace srbb
