// Property test: binary consensus agreement/termination must hold under
// ANY message delivery order. Each seed drives a different random schedule
// (random delays, random interleavings); all correct nodes must decide the
// same value, and with unanimous correct input the decision must be that
// input (validity) regardless of scheduling.
#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "common/rng.hpp"
#include "consensus/binary.hpp"
#include "sim/event_loop.hpp"

namespace srbb::consensus {
namespace {

struct RandomizedCluster {
  sim::Simulation sim;
  Rng rng;
  std::uint32_t n;
  std::uint32_t f;
  std::vector<std::unique_ptr<BinaryConsensus>> nodes;
  std::vector<bool> decided;
  std::vector<bool> decision;

  RandomizedCluster(std::uint32_t n_, std::uint32_t f_, std::uint64_t seed)
      : rng(seed), n(n_), f(f_) {
    nodes.resize(n);
    decided.resize(n, false);
    decision.resize(n, false);
    for (std::uint32_t i = 0; i < n; ++i) {
      BinaryConsensus::Callbacks cb;
      cb.send_est = [this, i](std::uint32_t r, bool v) {
        fan_out(i, r, v, /*est=*/true);
        nodes[i]->on_est(i, r, v);
      };
      cb.send_aux = [this, i](std::uint32_t r, bool v) {
        fan_out(i, r, v, /*est=*/false);
        nodes[i]->on_aux(i, r, v);
      };
      cb.send_decided = [this, i](bool v) {
        for (std::uint32_t to = 0; to < n; ++to) {
          if (to == i) continue;
          schedule([this, to, i, v] { nodes[to]->on_decided(i, v); });
        }
      };
      cb.send_decided_to = [this, i](std::uint32_t to, bool v) {
        schedule([this, to, i, v] { nodes[to]->on_decided(i, v); });
      };
      cb.on_decide = [this, i](bool v) {
        decided[i] = true;
        decision[i] = v;
      };
      nodes[i] = std::make_unique<BinaryConsensus>(n, f, std::move(cb));
    }
  }

  void schedule(std::function<void()> fn) {
    // Random delay in [1, 1000] gives arbitrary interleavings.
    sim.schedule_after(1 + rng.next_below(1000), std::move(fn));
  }

  void fan_out(std::uint32_t from, std::uint32_t round, bool value, bool est) {
    for (std::uint32_t to = 0; to < n; ++to) {
      if (to == from) continue;
      schedule([this, to, from, round, value, est] {
        if (est) {
          nodes[to]->on_est(from, round, value);
        } else {
          nodes[to]->on_aux(from, round, value);
        }
      });
    }
  }

  void run(const std::vector<bool>& inputs) {
    for (std::uint32_t i = 0; i < n; ++i) nodes[i]->start(inputs[i]);
    sim.run_until_idle();
  }
};

class RandomSchedules : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSchedules, UnanimousInputIsDecided) {
  for (const bool input : {false, true}) {
    RandomizedCluster cluster{7, 2, GetParam() ^ (input ? 0xF00D : 0)};
    cluster.run(std::vector<bool>(7, input));
    for (std::uint32_t i = 0; i < 7; ++i) {
      ASSERT_TRUE(cluster.decided[i]) << "node " << i;
      EXPECT_EQ(cluster.decision[i], input) << "node " << i;
    }
  }
}

TEST_P(RandomSchedules, MixedInputsAgree) {
  RandomizedCluster cluster{7, 2, GetParam()};
  std::vector<bool> inputs(7);
  Rng input_rng{GetParam() * 31 + 7};
  for (std::size_t i = 0; i < 7; ++i) inputs[i] = input_rng.next_bool(0.5);
  cluster.run(inputs);
  for (std::uint32_t i = 1; i < 7; ++i) {
    ASSERT_TRUE(cluster.decided[i]);
    EXPECT_EQ(cluster.decision[i], cluster.decision[0]);
  }
  // Validity: the decision was somebody's input.
  bool proposed[2] = {false, false};
  for (const bool input : inputs) proposed[input ? 1 : 0] = true;
  EXPECT_TRUE(proposed[cluster.decision[0] ? 1 : 0]);
}

TEST_P(RandomSchedules, SurvivesSilentFaults) {
  RandomizedCluster cluster{10, 3, GetParam()};
  // Ranks 7..9 never start (crash before proposing). Quorums still close.
  for (std::uint32_t i = 0; i < 7; ++i) cluster.nodes[i]->start(true);
  cluster.sim.run_until_idle();
  for (std::uint32_t i = 0; i < 7; ++i) {
    ASSERT_TRUE(cluster.decided[i]) << i;
    EXPECT_TRUE(cluster.decision[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSchedules,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull, 55ull,
                                           66ull, 77ull, 88ull));

}  // namespace
}  // namespace srbb::consensus
