// Differential tests for the staged validation pipeline (DESIGN.md §11):
// every batch result must be positionally identical — same accept/reject
// bit, same Status string — to running the eager_validate monolith on each
// transaction, across all BatchVerifier strategies and batch compositions.
#include "txn/pipeline.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "pool/txpool.hpp"
#include "txn/validation.hpp"

namespace srbb::txn {
namespace {

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::ed25519();
}

struct World {
  state::StateDB db;
  ValidationConfig vcfg;
  crypto::Identity alice = scheme().make_identity(1);
  crypto::Identity bob = scheme().make_identity(2);
  crypto::Identity pauper = scheme().make_identity(77);  // zero balance

  World() {
    db.add_balance(alice.address(), U256{10'000'000});
    db.add_balance(bob.address(), U256{10'000'000});
  }

  Transaction transfer(const crypto::Identity& from, const Address& to,
                       std::uint64_t value, std::uint64_t nonce,
                       std::uint64_t gas_limit = 30'000) {
    TxParams params;
    params.nonce = nonce;
    params.to = to;
    params.value = U256{value};
    params.gas_limit = gas_limit;
    params.gas_price = U256{1};
    return make_signed(params, from, scheme());
  }

  /// One transaction per failure class the monolith can produce, plus
  /// passing ones interleaved — the full differential corpus.
  std::vector<TxPtr> mixed_corpus() {
    std::vector<TxPtr> txs;
    // Passing.
    txs.push_back(make_tx_ptr(transfer(alice, bob.address(), 100, 0)));
    // (i) corrupted signature.
    Transaction bad_sig = transfer(alice, bob.address(), 100, 1);
    bad_sig.signature[5] ^= 1;
    txs.push_back(make_tx_ptr(std::move(bad_sig)));
    // (ii) oversized wire encoding.
    TxParams big;
    big.data = Bytes(vcfg.max_tx_size + 1, 0xaa);
    big.gas_limit = 10'000'000;
    txs.push_back(make_tx_ptr(make_signed(big, alice, scheme())));
    // (ii) gas limit below the intrinsic floor.
    TxParams low_gas;
    low_gas.to = bob.address();
    low_gas.gas_limit = 20'000;
    txs.push_back(make_tx_ptr(make_signed(low_gas, alice, scheme())));
    // Passing again (ordering matters for bisection coverage).
    txs.push_back(make_tx_ptr(transfer(bob, alice.address(), 7, 0)));
    // (iii) nonce beyond the window.
    txs.push_back(make_tx_ptr(
        transfer(alice, bob.address(), 1, vcfg.nonce_window + 5)));
    // (iv)+(v) pauper cannot afford gas + value.
    txs.push_back(make_tx_ptr(transfer(pauper, bob.address(), 100, 0)));
    // (vi) invoke of a callee with no successful path (infinite loop:
    // JUMPDEST PUSH1 0 JUMP), gated by the static min-gas check.
    const Address doomed = scheme().make_identity(500).address();
    db.set_code(doomed, Bytes{0x5b, 0x60, 0x00, 0x56});
    TxParams invoke;
    invoke.kind = TxKind::kInvoke;
    invoke.to = doomed;
    invoke.gas_limit = 10'000'000;
    txs.push_back(make_tx_ptr(make_signed(invoke, alice, scheme())));
    return txs;
  }
};

void expect_matches_monolith(const ValidationPipeline& pipeline,
                             const std::vector<TxPtr>& txs,
                             const state::StateView& db, const World& w) {
  const std::vector<Status> got = pipeline.validate(txs, db);
  ASSERT_EQ(got.size(), txs.size());
  for (std::size_t i = 0; i < txs.size(); ++i) {
    const Status want = eager_validate(txs[i]->tx, db, scheme(), w.vcfg);
    EXPECT_EQ(got[i].is_ok(), want.is_ok()) << "tx " << i;
    EXPECT_EQ(got[i].message(), want.message()) << "tx " << i;
    // The single-transaction path must agree too.
    const Status one = pipeline.validate_one(*txs[i], db);
    EXPECT_EQ(one.is_ok(), want.is_ok()) << "tx " << i;
    EXPECT_EQ(one.message(), want.message()) << "tx " << i;
  }
}

TEST(ValidationPipeline, BatchMatchesMonolithPerFailureClass) {
  World w;
  const std::vector<TxPtr> txs = w.mixed_corpus();
  ValidationPipeline pipeline(scheme(), w.vcfg);
  expect_matches_monolith(pipeline, txs, w.db, w);
}

TEST(ValidationPipeline, AllStrategiesAgree) {
  World w;
  const std::vector<TxPtr> txs = w.mixed_corpus();
  ThreadPool pool(4);
  const crypto::SequentialBatchVerifier sequential;
  const crypto::ThreadedBatchVerifier threaded(pool, /*min_parallel=*/0);
  const crypto::SharedBatchVerifier shared;
  const crypto::ThreadedSharedBatchVerifier threaded_shared(
      pool, /*chunk_size=*/2, /*min_parallel=*/0);
  const crypto::BatchVerifier* verifiers[] = {&sequential, &threaded, &shared,
                                              &threaded_shared};
  for (const crypto::BatchVerifier* verifier : verifiers) {
    PipelineOptions options;
    options.verifier = verifier;
    ValidationPipeline pipeline(scheme(), w.vcfg, options);
    expect_matches_monolith(pipeline, txs, w.db, w);
  }
}

TEST(ValidationPipeline, EmptyAndSingletonBatches) {
  World w;
  ValidationPipeline pipeline(scheme(), w.vcfg);
  EXPECT_TRUE(pipeline.validate({}, w.db).empty());
  const std::vector<TxPtr> one = {
      make_tx_ptr(w.transfer(w.alice, w.bob.address(), 1, 0))};
  expect_matches_monolith(pipeline, one, w.db, w);
}

TEST(ValidationPipeline, EagerValidateCachedMatchesMonolith) {
  World w;
  for (const TxPtr& tx : w.mixed_corpus()) {
    const Status want = eager_validate(tx->tx, w.db, scheme(), w.vcfg);
    const Status got = eager_validate_cached(*tx, w.db, scheme(), w.vcfg);
    EXPECT_EQ(got.is_ok(), want.is_ok());
    EXPECT_EQ(got.message(), want.message());
  }
}

TEST(ValidationPipeline, StageCountersTrackPassAndFail) {
  World w;
  obs::MetricsRegistry metrics;
  PipelineOptions options;
  options.metrics = &metrics;
  ValidationPipeline pipeline(scheme(), w.vcfg, options);
  const std::vector<TxPtr> txs = w.mixed_corpus();
  pipeline.validate(txs, w.db);
  // Corpus: 8 txs — 2 structural failures (oversize, low gas), 1 signature
  // failure, 3 state failures (nonce window, balance, min-gas gate), 2 pass.
  EXPECT_EQ(metrics.counter("validate.stage.structural.pass").value(), 6u);
  EXPECT_EQ(metrics.counter("validate.stage.structural.fail").value(), 2u);
  EXPECT_EQ(metrics.counter("validate.stage.signature.pass").value(), 5u);
  EXPECT_EQ(metrics.counter("validate.stage.signature.fail").value(), 1u);
  EXPECT_EQ(metrics.counter("validate.stage.state.pass").value(), 2u);
  EXPECT_EQ(metrics.counter("validate.stage.state.fail").value(), 3u);
}

TEST(ValidationPipeline, StageNamesAndOrder) {
  World w;
  ValidationPipeline pipeline(scheme(), w.vcfg);
  ASSERT_EQ(pipeline.stages().size(), 3u);
  EXPECT_STREQ(pipeline.stages()[0]->name(), "structural");
  EXPECT_STREQ(pipeline.stages()[1]->name(), "signature");
  EXPECT_STREQ(pipeline.stages()[2]->name(), "state");
}

// Named to match the TSan gate's test regex: a pooled pipeline run over a
// batch large enough that the structural stage goes data-parallel must be
// race-free and still agree with the monolith.
TEST(ValidationPipeline, PooledValidationIsRaceFreeAndExact) {
  World w;
  ThreadPool pool(4);
  PipelineOptions options;
  options.pool = &pool;
  options.min_parallel = 4;
  const crypto::ThreadedSharedBatchVerifier verifier(pool, /*chunk_size=*/8,
                                                     /*min_parallel=*/4);
  options.verifier = &verifier;
  ValidationPipeline pipeline(scheme(), w.vcfg, options);

  std::vector<TxPtr> txs;
  for (std::size_t i = 0; i < 48; ++i) {
    Transaction tx = w.transfer(w.alice, w.bob.address(), 1 + i % 7, i % 11);
    if (i % 5 == 0) tx.signature[i % 64] ^= 1;  // sprinkle bad signatures
    if (i % 7 == 0) tx.signature[31] ^= 0x80;   // and corrupted R points
    txs.push_back(make_tx_ptr(std::move(tx)));
  }
  for (int round = 0; round < 3; ++round) {
    expect_matches_monolith(pipeline, txs, w.db, w);
  }
}

TEST(ValidationPipeline, AddBatchMatchesPerTxAdd) {
  World w;
  pool::TxPool pool(pool::TxPoolConfig{.capacity = 6});
  std::vector<TxPtr> txs;
  for (std::size_t i = 0; i < 8; ++i) {
    txs.push_back(make_tx_ptr(w.transfer(w.alice, w.bob.address(), 1, i)));
  }
  txs.push_back(txs[0]);  // duplicate
  const auto result = pool.add_batch(txs, /*now=*/0);
  // Capacity 6: first 6 admitted, next 2 dropped full, duplicate detected.
  EXPECT_EQ(result.added, 6u);
  EXPECT_EQ(result.dropped_full, 2u);
  EXPECT_EQ(result.duplicates, 1u);
  EXPECT_EQ(pool.size(), 6u);
  EXPECT_EQ(pool.admitted(), 6u);
  EXPECT_EQ(pool.dropped_full(), 2u);
}

}  // namespace
}  // namespace srbb::txn
