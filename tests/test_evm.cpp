#include "evm/interpreter.hpp"

#include <gtest/gtest.h>

#include <string>

#include "evm/asm.hpp"
#include "evm/opcodes.hpp"

namespace srbb::evm {
namespace {

using state::StateDB;

Address addr(std::uint8_t tag) {
  Address a;
  a[19] = tag;
  return a;
}

const Address kContract = addr(0xCC);
const Address kCaller = addr(0xAA);

struct Harness {
  StateDB db;
  BlockContext block;
  TxContext tx;

  Harness() {
    block.number = 7;
    block.timestamp = 1'700'000'000;
    block.coinbase = addr(0xC0);
    tx.origin = kCaller;
    tx.gas_price = U256{2};
    db.add_balance(kCaller, U256{1'000'000});
  }

  ExecResult run(const std::string& source, Bytes calldata = {},
                 std::uint64_t gas = 1'000'000, U256 value = U256::zero()) {
    auto code = assemble(source);
    EXPECT_TRUE(code.is_ok()) << code.message();
    db.set_code(kContract, code.value());
    Evm evm{db, block, tx};
    Message msg;
    msg.caller = kCaller;
    msg.to = kContract;
    msg.data = std::move(calldata);
    msg.gas = gas;
    msg.value = value;
    last_logs = [&] {
      const ExecResult r = evm.execute(msg);
      logs = evm.logs();
      return r;
    }();
    return last_logs;
  }

  ExecResult last_logs;
  std::vector<LogEntry> logs;
};

U256 word(const Bytes& output) { return U256::from_be(output); }

// --- arithmetic through RETURN ---

struct BinOpCase {
  const char* op;
  std::uint64_t a;
  std::uint64_t b;
  std::uint64_t expected;  // op(b, a) in EVM order: top is first operand
};

class EvmBinOp : public ::testing::TestWithParam<BinOpCase> {};

TEST_P(EvmBinOp, ComputesExpected) {
  const BinOpCase& c = GetParam();
  Harness h;
  // push a, push b, OP -> top-of-stack order makes b the first operand.
  const std::string source = "PUSH8 " + std::to_string(c.a) + " PUSH8 " +
                             std::to_string(c.b) + " " + c.op +
                             " PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN";
  const ExecResult r = h.run(source);
  ASSERT_TRUE(r.ok()) << to_string(r.status);
  EXPECT_EQ(word(r.output), U256{c.expected});
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EvmBinOp,
    ::testing::Values(
        BinOpCase{"ADD", 2, 3, 5}, BinOpCase{"MUL", 7, 6, 42},
        BinOpCase{"SUB", 3, 10, 7},       // 10 - 3
        BinOpCase{"DIV", 3, 10, 3},       // 10 / 3
        BinOpCase{"MOD", 3, 10, 1},       // 10 % 3
        BinOpCase{"LT", 10, 3, 1},        // 3 < 10
        BinOpCase{"GT", 10, 3, 0},        // 3 > 10
        BinOpCase{"EQ", 5, 5, 1},
        BinOpCase{"AND", 0b1100, 0b1010, 0b1000},
        BinOpCase{"OR", 0b1100, 0b1010, 0b1110},
        BinOpCase{"XOR", 0b1100, 0b1010, 0b0110},
        BinOpCase{"SHL", 1, 4, 16},       // 1 << 4
        BinOpCase{"SHR", 16, 4, 1},       // 16 >> 4
        BinOpCase{"BYTE", 0xff, 31, 0xff}));

TEST(EvmArithmetic, DivByZeroYieldsZero) {
  Harness h;
  const ExecResult r = h.run(
      "PUSH1 0 PUSH1 9 DIV PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(word(r.output), U256::zero());
}

TEST(EvmArithmetic, ExpChargesPerExponentByte) {
  Harness h;
  const ExecResult cheap = h.run(
      "PUSH1 2 PUSH1 2 EXP PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN");
  ASSERT_TRUE(cheap.ok());
  EXPECT_EQ(word(cheap.output), U256{4});
  Harness h2;
  const ExecResult wide = h2.run(
      "PUSH4 65536 PUSH1 2 EXP PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN");
  ASSERT_TRUE(wide.ok());
  // 2^65536 wraps to 0 mod 2^256.
  EXPECT_EQ(word(wide.output), U256::zero());
  EXPECT_LT(wide.gas_left, cheap.gas_left);  // 3-byte exponent costs more
}

TEST(EvmArithmetic, SignedOps) {
  Harness h;
  // -10 / 3 == -3 (truncated): build -10 as 0 - 10.
  const ExecResult r = h.run(
      "PUSH1 3 PUSH1 10 PUSH1 0 SUB SDIV PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(word(r.output), negate(U256{3}));
}

// --- control flow ---

TEST(EvmControlFlow, JumpOverTrap) {
  Harness h;
  const ExecResult r = h.run(
      "PUSH @ok JUMP INVALID ok: PUSH1 1 PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN");
  ASSERT_TRUE(r.ok()) << to_string(r.status);
  EXPECT_EQ(word(r.output), U256::one());
}

TEST(EvmControlFlow, JumpiTakenAndNotTaken) {
  Harness h;
  // condition 1: jump to `one`, return 1.
  const ExecResult taken = h.run(
      "PUSH1 1 PUSH @one JUMPI PUSH1 2 PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN "
      "one: PUSH1 1 PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN");
  ASSERT_TRUE(taken.ok());
  EXPECT_EQ(word(taken.output), U256::one());
  Harness h2;
  const ExecResult fallthrough = h2.run(
      "PUSH1 0 PUSH @one JUMPI PUSH1 2 PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN "
      "one: PUSH1 1 PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN");
  ASSERT_TRUE(fallthrough.ok());
  EXPECT_EQ(word(fallthrough.output), U256{2});
}

TEST(EvmControlFlow, JumpToNonJumpdestFails) {
  Harness h;
  const ExecResult r = h.run("PUSH1 0 JUMP");
  EXPECT_EQ(r.status, ExecStatus::kInvalidJump);
  EXPECT_EQ(r.gas_left, 0u);
}

TEST(EvmControlFlow, JumpIntoPushImmediateFails) {
  Harness h;
  // Code: PUSH2 0x5b00 ... offset 1 contains byte 0x5b but inside immediate.
  const ExecResult r = h.run("PUSH1 1 JUMP PUSH2 0x5b00 STOP");
  EXPECT_EQ(r.status, ExecStatus::kInvalidJump);
}

TEST(EvmControlFlow, LoopSumsCorrectly) {
  Harness h;
  // sum 1..10 in a loop: i in slot of stack; acc; while i != 0 { acc+=i; --i }
  const std::string source = R"(
    PUSH1 0        ; acc
    PUSH1 10       ; i
  loop:
    DUP1 ISZERO PUSH @done JUMPI
    DUP1 SWAP2 ADD SWAP1   ; acc += i
    PUSH1 1 SWAP1 SUB      ; i -= 1
    PUSH @loop JUMP
  done:
    POP
    PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN
  )";
  const ExecResult r = h.run(source);
  ASSERT_TRUE(r.ok()) << to_string(r.status);
  EXPECT_EQ(word(r.output), U256{55});
}

TEST(EvmControlFlow, ImplicitStopAtEndOfCode) {
  Harness h;
  const ExecResult r = h.run("PUSH1 1 PUSH1 2 ADD");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.output.empty());
}

// --- stack discipline ---

TEST(EvmStack, UnderflowDetected) {
  Harness h;
  const ExecResult r = h.run("ADD");
  EXPECT_EQ(r.status, ExecStatus::kStackUnderflow);
}

TEST(EvmStack, OverflowDetected) {
  Harness h;
  std::string source;
  for (int i = 0; i < 1025; ++i) source += "PUSH1 1 ";
  const ExecResult r = h.run(source);
  EXPECT_EQ(r.status, ExecStatus::kStackOverflow);
}

TEST(EvmStack, DupAndSwapFamilies) {
  Harness h;
  // [1 2 3], DUP3 duplicates the 3rd from top (1), SWAP1 then returns.
  const ExecResult r = h.run(
      "PUSH1 1 PUSH1 2 PUSH1 3 DUP3 PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(word(r.output), U256::one());
  Harness h2;
  const ExecResult r2 = h2.run(
      "PUSH1 1 PUSH1 2 SWAP1 PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(word(r2.output), U256::one());
}

// --- memory ---

TEST(EvmMemory, Mstore8AndMload) {
  Harness h;
  const ExecResult r = h.run(
      "PUSH1 0xAB PUSH1 0 MSTORE8 PUSH1 0 MLOAD PUSH1 0 MSTORE "
      "PUSH1 32 PUSH1 0 RETURN");
  ASSERT_TRUE(r.ok());
  // 0xAB in the most significant byte of the word.
  EXPECT_EQ(word(r.output), U256{0xAB} << 248);
}

TEST(EvmMemory, MsizeTracksExpansion) {
  Harness h;
  const ExecResult r = h.run(
      "PUSH1 1 PUSH1 100 MSTORE MSIZE PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN");
  ASSERT_TRUE(r.ok());
  // Offset 100 + 32 = 132 -> rounded to 160 bytes (5 words).
  EXPECT_EQ(word(r.output), U256{160});
}

TEST(EvmMemory, HugeOffsetRunsOutOfGas) {
  Harness h;
  const ExecResult r = h.run("PUSH1 1 PUSH8 4294967295 MSTORE");
  EXPECT_EQ(r.status, ExecStatus::kOutOfGas);
}

// --- storage ---

TEST(EvmStorage, SstoreSloadRoundTrip) {
  Harness h;
  const ExecResult r = h.run(
      "PUSH1 42 PUSH1 7 SSTORE PUSH1 7 SLOAD PUSH1 0 MSTORE "
      "PUSH1 32 PUSH1 0 RETURN");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(word(r.output), U256{42});
  EXPECT_EQ(h.db.storage(kContract, U256{7}.to_hash()), U256{42});
}

TEST(EvmStorage, SstoreGasTiersDiffer) {
  Harness h;
  // Fresh write (0 -> nonzero) costs 20000.
  const ExecResult fresh = h.run("PUSH1 1 PUSH1 0 SSTORE");
  ASSERT_TRUE(fresh.ok());
  // Same-value write costs 200.
  Harness h2;
  h2.db.set_storage(kContract, U256{0}.to_hash(), U256{1});
  const ExecResult same = h2.run("PUSH1 1 PUSH1 0 SSTORE");
  ASSERT_TRUE(same.ok());
  EXPECT_GT(same.gas_left, fresh.gas_left);
}

// --- environment ---

TEST(EvmEnv, CallerOriginAddressValue) {
  Harness h;
  const ExecResult r = h.run(
      "CALLER PUSH1 0 MSTORE CALLVALUE PUSH1 32 MSTORE "
      "PUSH1 64 PUSH1 0 RETURN",
      {}, 1'000'000, U256{123});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Bytes(r.output.begin() + 12, r.output.begin() + 32),
            Bytes(kCaller.begin(), kCaller.end()));
  EXPECT_EQ(U256::from_be(BytesView{r.output}.subspan(32)), U256{123});
  EXPECT_EQ(h.db.balance(kContract), U256{123});  // value transferred
}

TEST(EvmEnv, BlockContextVisible) {
  Harness h;
  const ExecResult r = h.run(
      "NUMBER PUSH1 0 MSTORE TIMESTAMP PUSH1 32 MSTORE CHAINID PUSH1 64 MSTORE "
      "PUSH1 96 PUSH1 0 RETURN");
  ASSERT_TRUE(r.ok());
  BytesView out{r.output};
  EXPECT_EQ(U256::from_be(out.subspan(0, 32)), U256{7});
  EXPECT_EQ(U256::from_be(out.subspan(32, 32)), U256{1'700'000'000});
  EXPECT_EQ(U256::from_be(out.subspan(64, 32)), U256{4242});
}

TEST(EvmEnv, CalldataloadPadsWithZeros) {
  Harness h;
  const ExecResult r = h.run(
      "PUSH1 0 CALLDATALOAD PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN",
      Bytes{0x12, 0x34});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(word(r.output), U256{0x1234} << 240);
}

TEST(EvmEnv, Sha3OfMemory) {
  Harness h;
  const ExecResult r = h.run(
      "PUSH1 1 PUSH1 31 MSTORE8 PUSH1 32 PUSH1 0 SHA3 "
      "PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN");
  ASSERT_TRUE(r.ok());
  // keccak256(uint256(1)) — the canonical mapping-slot hash.
  EXPECT_EQ(to_hex(r.output),
            "b10e2d527612073b26eecdfd717e6a320cf44b4afac2b0732d9fcbe2b7fa0cf6");
}

// --- revert and errors ---

TEST(EvmErrors, RevertReturnsDataAndKeepsGas) {
  Harness h;
  const ExecResult r = h.run(
      "PUSH1 9 PUSH1 0 MSTORE PUSH1 32 PUSH1 0 REVERT");
  EXPECT_EQ(r.status, ExecStatus::kRevert);
  EXPECT_GT(r.gas_left, 0u);
  EXPECT_EQ(word(r.output), U256{9});
}

TEST(EvmErrors, RevertRollsBackState) {
  Harness h;
  const ExecResult r = h.run("PUSH1 1 PUSH1 0 SSTORE PUSH1 0 PUSH1 0 REVERT");
  EXPECT_EQ(r.status, ExecStatus::kRevert);
  EXPECT_EQ(h.db.storage(kContract, U256{0}.to_hash()), U256::zero());
}

TEST(EvmErrors, OutOfGasConsumesEverything) {
  Harness h;
  const ExecResult r = h.run("PUSH1 1 PUSH1 0 SSTORE", {}, 100);
  EXPECT_EQ(r.status, ExecStatus::kOutOfGas);
  EXPECT_EQ(r.gas_left, 0u);
}

TEST(EvmErrors, InvalidOpcode) {
  Harness h;
  const ExecResult r = h.run("INVALID");
  EXPECT_EQ(r.status, ExecStatus::kInvalidOpcode);
}

TEST(EvmErrors, UndefinedOpcodeByte) {
  Harness h;
  Bytes code{0x0c};  // hole in the instruction set
  h.db.set_code(kContract, code);
  Evm evm{h.db, h.block, h.tx};
  Message msg;
  msg.caller = kCaller;
  msg.to = kContract;
  msg.gas = 1000;
  EXPECT_EQ(evm.execute(msg).status, ExecStatus::kInvalidOpcode);
}

TEST(EvmErrors, InsufficientBalanceForValueTransfer) {
  Harness h;
  Evm evm{h.db, h.block, h.tx};
  Message msg;
  msg.caller = addr(0x77);  // empty account
  msg.to = kContract;
  msg.value = U256{5};
  msg.gas = 100000;
  EXPECT_EQ(evm.execute(msg).status, ExecStatus::kInsufficientBalance);
}

// --- logs ---

TEST(EvmLogs, TopicsAndData) {
  Harness h;
  const ExecResult r = h.run(
      "PUSH1 0xEE PUSH1 0 MSTORE8 PUSH1 8 PUSH1 7 PUSH1 1 PUSH1 0 LOG2");
  ASSERT_TRUE(r.ok()) << to_string(r.status);
  ASSERT_EQ(h.logs.size(), 1u);
  EXPECT_EQ(h.logs[0].address, kContract);
  ASSERT_EQ(h.logs[0].topics.size(), 2u);
  EXPECT_EQ(U256::from_be(h.logs[0].topics[0].view()), U256{7});
  EXPECT_EQ(U256::from_be(h.logs[0].topics[1].view()), U256{8});
  EXPECT_EQ(h.logs[0].data, Bytes{0xEE});
}

TEST(EvmLogs, RevertedFrameDropsLogs) {
  Harness h;
  const ExecResult r = h.run("PUSH1 0 PUSH1 0 LOG0 PUSH1 0 PUSH1 0 REVERT");
  EXPECT_EQ(r.status, ExecStatus::kRevert);
  EXPECT_TRUE(h.logs.empty());
}

// --- value transfer to empty code ---

TEST(EvmTransfer, PlainTransferSucceeds) {
  Harness h;
  Evm evm{h.db, h.block, h.tx};
  Message msg;
  msg.caller = kCaller;
  msg.to = addr(0x55);
  msg.value = U256{250};
  msg.gas = 21000;
  const ExecResult r = evm.execute(msg);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(h.db.balance(addr(0x55)), U256{250});
  EXPECT_EQ(r.gas_left, 21000u);  // code-less call burns nothing here
}

}  // namespace
}  // namespace srbb::evm
