#include "state/statedb.hpp"

#include <gtest/gtest.h>

#include "crypto/keccak.hpp"
#include "state/overlay.hpp"

namespace srbb::state {
namespace {

Address addr(std::uint8_t tag) {
  Address a;
  a[19] = tag;
  return a;
}

Hash32 key(std::uint8_t tag) {
  Hash32 k;
  k[31] = tag;
  return k;
}

TEST(StateDB, MissingAccountReadsAreZero) {
  StateDB db;
  EXPECT_FALSE(db.account_exists(addr(1)));
  EXPECT_EQ(db.balance(addr(1)), U256::zero());
  EXPECT_EQ(db.nonce(addr(1)), 0u);
  EXPECT_TRUE(db.code(addr(1)).empty());
  EXPECT_EQ(db.storage(addr(1), key(1)), U256::zero());
}

TEST(StateDB, BalanceLifecycle) {
  StateDB db;
  db.add_balance(addr(1), U256{100});
  EXPECT_TRUE(db.account_exists(addr(1)));
  EXPECT_EQ(db.balance(addr(1)), U256{100});
  EXPECT_TRUE(db.sub_balance(addr(1), U256{30}));
  EXPECT_EQ(db.balance(addr(1)), U256{70});
  EXPECT_FALSE(db.sub_balance(addr(1), U256{71}));
  EXPECT_EQ(db.balance(addr(1)), U256{70});  // unchanged on failure
}

TEST(StateDB, NonceIncrement) {
  StateDB db;
  db.increment_nonce(addr(2));
  db.increment_nonce(addr(2));
  EXPECT_EQ(db.nonce(addr(2)), 2u);
}

TEST(StateDB, CodeAndHash) {
  StateDB db;
  const Bytes code{0x60, 0x01};
  db.set_code(addr(3), code);
  EXPECT_EQ(db.code(addr(3)), code);
  EXPECT_NE(db.code_hash(addr(3)), db.code_hash(addr(4)));  // vs empty
}

TEST(StateDB, StorageZeroWriteClearsSlot) {
  StateDB db;
  db.set_storage(addr(1), key(1), U256{9});
  EXPECT_EQ(db.storage(addr(1), key(1)), U256{9});
  db.set_storage(addr(1), key(1), U256::zero());
  EXPECT_EQ(db.storage(addr(1), key(1)), U256::zero());
}

TEST(StateDB, DeleteAccount) {
  StateDB db;
  db.add_balance(addr(5), U256{10});
  db.set_storage(addr(5), key(1), U256{1});
  db.delete_account(addr(5));
  EXPECT_FALSE(db.account_exists(addr(5)));
  EXPECT_EQ(db.storage(addr(5), key(1)), U256::zero());
}

TEST(StateDBJournal, RevertUndoesEverything) {
  StateDB db;
  db.add_balance(addr(1), U256{100});
  db.commit();
  const Hash32 base_root = db.state_root();

  const auto snap = db.snapshot();
  db.add_balance(addr(1), U256{5});
  db.increment_nonce(addr(1));
  db.set_code(addr(2), Bytes{0x01});
  db.set_storage(addr(1), key(7), U256{7});
  db.create_account(addr(9));
  db.delete_account(addr(1));
  db.revert_to(snap);

  EXPECT_EQ(db.state_root(), base_root);
  EXPECT_EQ(db.balance(addr(1)), U256{100});
  EXPECT_EQ(db.nonce(addr(1)), 0u);
  EXPECT_FALSE(db.account_exists(addr(2)));
  EXPECT_FALSE(db.account_exists(addr(9)));
}

TEST(StateDBJournal, NestedSnapshots) {
  StateDB db;
  db.add_balance(addr(1), U256{10});
  const auto outer = db.snapshot();
  db.add_balance(addr(1), U256{10});
  const auto inner = db.snapshot();
  db.add_balance(addr(1), U256{10});
  EXPECT_EQ(db.balance(addr(1)), U256{30});
  db.revert_to(inner);
  EXPECT_EQ(db.balance(addr(1)), U256{20});
  db.revert_to(outer);
  EXPECT_EQ(db.balance(addr(1)), U256{10});
}

TEST(StateDBJournal, RevertRestoresDeletedAccountFully) {
  StateDB db;
  db.add_balance(addr(1), U256{10});
  db.set_storage(addr(1), key(1), U256{5});
  db.set_code(addr(1), Bytes{0xaa});
  db.commit();
  const auto snap = db.snapshot();
  db.delete_account(addr(1));
  db.revert_to(snap);
  EXPECT_EQ(db.balance(addr(1)), U256{10});
  EXPECT_EQ(db.storage(addr(1), key(1)), U256{5});
  EXPECT_EQ(db.code(addr(1)), (Bytes{0xaa}));
}

TEST(StateDBJournal, CommitMakesChangesPermanentAgainstRevert) {
  StateDB db;
  const auto snap = db.snapshot();
  db.add_balance(addr(1), U256{10});
  db.commit();
  db.revert_to(snap);  // no-op: journal is empty after commit
  EXPECT_EQ(db.balance(addr(1)), U256{10});
}

TEST(StateDBJournal, RevertStorageToPreviousNonZero) {
  StateDB db;
  db.set_storage(addr(1), key(1), U256{1});
  db.commit();
  const auto snap = db.snapshot();
  db.set_storage(addr(1), key(1), U256{2});
  db.set_storage(addr(1), key(1), U256::zero());
  db.revert_to(snap);
  EXPECT_EQ(db.storage(addr(1), key(1)), U256{1});
}

TEST(StateRoot, DeterministicAcrossInsertionOrder) {
  StateDB a;
  StateDB b;
  // Insert the same accounts in opposite orders.
  for (int i = 0; i < 20; ++i) {
    a.add_balance(addr(static_cast<std::uint8_t>(i)), U256{static_cast<std::uint64_t>(i)});
    a.set_storage(addr(static_cast<std::uint8_t>(i)), key(1), U256{7});
  }
  for (int i = 19; i >= 0; --i) {
    b.set_storage(addr(static_cast<std::uint8_t>(i)), key(1), U256{7});
    b.add_balance(addr(static_cast<std::uint8_t>(i)), U256{static_cast<std::uint64_t>(i)});
  }
  EXPECT_EQ(a.state_root(), b.state_root());
}

TEST(StateRoot, SensitiveToEveryField) {
  StateDB base;
  base.add_balance(addr(1), U256{1});
  const Hash32 root = base.state_root();

  StateDB balance_diff;
  balance_diff.add_balance(addr(1), U256{2});
  EXPECT_NE(balance_diff.state_root(), root);

  StateDB nonce_diff;
  nonce_diff.add_balance(addr(1), U256{1});
  nonce_diff.increment_nonce(addr(1));
  EXPECT_NE(nonce_diff.state_root(), root);

  StateDB code_diff;
  code_diff.add_balance(addr(1), U256{1});
  code_diff.set_code(addr(1), Bytes{0x00});
  EXPECT_NE(code_diff.state_root(), root);

  StateDB storage_diff;
  storage_diff.add_balance(addr(1), U256{1});
  storage_diff.set_storage(addr(1), key(1), U256{1});
  EXPECT_NE(storage_diff.state_root(), root);

  StateDB addr_diff;
  addr_diff.add_balance(addr(2), U256{1});
  EXPECT_NE(addr_diff.state_root(), root);
}

TEST(StateRoot, EmptyStatesAgree) {
  StateDB a;
  StateDB b;
  EXPECT_EQ(a.state_root(), b.state_root());
}

TEST(StateRootMpt, DeterministicAcrossInsertionOrder) {
  StateDB a;
  StateDB b;
  for (int i = 0; i < 15; ++i) {
    a.add_balance(addr(static_cast<std::uint8_t>(i)), U256{7});
    a.set_storage(addr(static_cast<std::uint8_t>(i)), key(2), U256{9});
  }
  for (int i = 14; i >= 0; --i) {
    b.set_storage(addr(static_cast<std::uint8_t>(i)), key(2), U256{9});
    b.add_balance(addr(static_cast<std::uint8_t>(i)), U256{7});
  }
  EXPECT_EQ(a.state_root_mpt(), b.state_root_mpt());
}

TEST(StateRootMpt, SensitiveToEveryField) {
  StateDB base;
  base.add_balance(addr(1), U256{1});
  const Hash32 root = base.state_root_mpt();

  StateDB nonce_diff;
  nonce_diff.add_balance(addr(1), U256{1});
  nonce_diff.increment_nonce(addr(1));
  EXPECT_NE(nonce_diff.state_root_mpt(), root);

  StateDB storage_diff;
  storage_diff.add_balance(addr(1), U256{1});
  storage_diff.set_storage(addr(1), key(1), U256{1});
  EXPECT_NE(storage_diff.state_root_mpt(), root);

  StateDB code_diff;
  code_diff.add_balance(addr(1), U256{1});
  code_diff.set_code(addr(1), Bytes{0x60});
  EXPECT_NE(code_diff.state_root_mpt(), root);
}

TEST(StateRoot, MemoizedRootTracksWritesAndReverts) {
  // state_root() is cached until the next journaled write; the cached value
  // must stay indistinguishable from a fresh recompute.
  StateDB db;
  db.add_balance(addr(1), U256{5});
  const Hash32 first = db.state_root();
  EXPECT_EQ(db.state_root(), first);  // cache hit, same digest
  db.add_balance(addr(2), U256{9});
  const Hash32 second = db.state_root();
  EXPECT_NE(second, first);
  const auto snap = db.snapshot();
  db.set_storage(addr(2), key(1), U256{3});
  EXPECT_NE(db.state_root(), second);
  db.revert_to(snap);  // revert must invalidate the cache too
  EXPECT_EQ(db.state_root(), second);
  db.delete_account(addr(2));
  EXPECT_EQ(db.state_root(), first);
}

TEST(StateRootMpt, TracksRevert) {
  StateDB db;
  db.add_balance(addr(1), U256{5});
  db.commit();
  const Hash32 before = db.state_root_mpt();
  const auto snap = db.snapshot();
  db.add_balance(addr(2), U256{9});
  EXPECT_NE(db.state_root_mpt(), before);
  db.revert_to(snap);
  EXPECT_EQ(db.state_root_mpt(), before);
}

TEST(StateRootMpt, IndependentOfInsertionOrder) {
  // Regression: the root computations used to walk the unordered account
  // map directly, so replicas whose maps had different bucket histories
  // could (in principle) disagree. Roots are now derived over sorted keys;
  // populating the same state in opposite orders must yield identical
  // commitments.
  StateDB forward;
  StateDB backward;
  for (int i = 1; i <= 24; ++i) {
    forward.add_balance(addr(i), U256{static_cast<std::uint64_t>(i)});
    forward.set_storage(addr(i), key(i), U256{7});
    forward.set_storage(addr(i), key(i + 100), U256{9});
  }
  for (int i = 24; i >= 1; --i) {
    backward.set_storage(addr(i), key(i + 100), U256{9});
    backward.set_storage(addr(i), key(i), U256{7});
    backward.add_balance(addr(i), U256{static_cast<std::uint64_t>(i)});
  }
  forward.commit();
  backward.commit();
  EXPECT_EQ(forward.state_root(), backward.state_root());
  EXPECT_EQ(forward.state_root_mpt(), backward.state_root_mpt());
}

TEST(StateDB, CodeKeccakIsMemoizedBySetCode) {
  StateDB db;
  EXPECT_EQ(db.code_keccak(addr(1)), empty_code_keccak());  // no account
  const Bytes code{0x60, 0x01, 0x00};
  db.set_code(addr(1), code);
  EXPECT_EQ(db.code_keccak(addr(1)),
            crypto::Keccak256::hash(BytesView{code}));
  // Overwriting code refreshes the memo.
  const Bytes other{0x60, 0x02, 0x00};
  db.set_code(addr(1), other);
  EXPECT_EQ(db.code_keccak(addr(1)),
            crypto::Keccak256::hash(BytesView{other}));
}

TEST(StateDB, CodeKeccakSurvivesRevert) {
  StateDB db;
  const Bytes before{0x60, 0x01, 0x00};
  db.set_code(addr(1), before);
  const auto snap = db.snapshot();
  db.set_code(addr(1), Bytes{0xfe});
  db.revert_to(snap);
  EXPECT_EQ(db.code(addr(1)), before);
  EXPECT_EQ(db.code_keccak(addr(1)),
            crypto::Keccak256::hash(BytesView{before}));
}

TEST(Overlay, CodeKeccakRoutesThroughBuffer) {
  StateDB base;
  const Bytes base_code{0x60, 0x01, 0x00};
  base.set_code(addr(1), base_code);
  OverlayState overlay{base};
  // Unmodified account: overlay serves the base memo.
  EXPECT_EQ(overlay.code_keccak(addr(1)),
            crypto::Keccak256::hash(BytesView{base_code}));
  // Buffered write: the overlay hashes its pending code, base untouched.
  const Bytes pending{0x60, 0x02, 0x00};
  overlay.set_code(addr(1), pending);
  EXPECT_EQ(overlay.code_keccak(addr(1)),
            crypto::Keccak256::hash(BytesView{pending}));
  EXPECT_EQ(base.code_keccak(addr(1)),
            crypto::Keccak256::hash(BytesView{base_code}));
  // Code-less address: the canonical empty-code hash.
  EXPECT_EQ(overlay.code_keccak(addr(9)), empty_code_keccak());
}

TEST(StateDbInvariants, RevertToStaleSnapshotAborts) {
  // SRBB_CHECK (common/invariant.hpp) turns an out-of-range revert — a
  // corrupted snapshot token — into an immediate abort instead of silent
  // journal corruption.
  StateDB db;
  db.add_balance(addr(1), U256{5});
  const auto bogus = db.snapshot() + 17;
  EXPECT_DEATH(db.revert_to(bogus), "SRBB_CHECK");
}

}  // namespace
}  // namespace srbb::state
