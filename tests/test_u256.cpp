#include "common/u256.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace srbb {
namespace {

U256 rand_u256(Rng& rng) {
  return U256{rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64()};
}

TEST(U256Basic, ZeroAndOne) {
  EXPECT_TRUE(U256::zero().is_zero());
  EXPECT_FALSE(U256::one().is_zero());
  EXPECT_EQ(U256::one().as_u64(), 1u);
  EXPECT_EQ(U256::one().bit_length(), 1u);
  EXPECT_EQ(U256::zero().bit_length(), 0u);
  EXPECT_EQ(U256::max().bit_length(), 256u);
}

TEST(U256Basic, AddCarriesAcrossLimbs) {
  const U256 a{~0ull, 0, 0, 0};
  const U256 r = a + U256::one();
  EXPECT_EQ(r, (U256{0, 1, 0, 0}));
}

TEST(U256Basic, AddWrapsAt2Pow256) {
  EXPECT_EQ(U256::max() + U256::one(), U256::zero());
}

TEST(U256Basic, SubBorrowsAcrossLimbs) {
  const U256 a{0, 1, 0, 0};
  EXPECT_EQ(a - U256::one(), (U256{~0ull, 0, 0, 0}));
}

TEST(U256Basic, SubWraps) {
  EXPECT_EQ(U256::zero() - U256::one(), U256::max());
}

TEST(U256Basic, MulSmall) {
  EXPECT_EQ(U256{7} * U256{6}, U256{42});
}

TEST(U256Basic, MulCrossLimb) {
  const U256 a{1ull << 63, 0, 0, 0};
  EXPECT_EQ(a * U256{2}, (U256{0, 1, 0, 0}));
}

TEST(U256Basic, DivByZeroIsZero) {
  EXPECT_EQ(U256{5} / U256::zero(), U256::zero());
  EXPECT_EQ(U256{5} % U256::zero(), U256::zero());
}

TEST(U256Basic, ShiftsRoundTrip) {
  const U256 v{0x1234567890abcdefull};
  for (unsigned n : {0u, 1u, 7u, 63u, 64u, 65u, 128u, 191u}) {
    EXPECT_EQ((v << n) >> n, v) << "n=" << n;
  }
  EXPECT_EQ(v << 256, U256::zero());
  EXPECT_EQ(v >> 256, U256::zero());
}

TEST(U256Basic, CompareAcrossLimbs) {
  const U256 lo{~0ull, ~0ull, ~0ull, 0};
  const U256 hi{0, 0, 0, 1};
  EXPECT_LT(lo, hi);
  EXPECT_GT(hi, lo);
  EXPECT_LE(lo, lo);
  EXPECT_GE(hi, hi);
}

TEST(U256Codec, BigEndianRoundTrip) {
  Rng rng{7};
  for (int i = 0; i < 100; ++i) {
    const U256 v = rand_u256(rng);
    EXPECT_EQ(U256::from_be(v.be_bytes()), v);
  }
}

TEST(U256Codec, FromBeShorterIsRightAligned) {
  const Bytes raw{0x01, 0x02};
  EXPECT_EQ(U256::from_be(raw), U256{0x0102});
}

TEST(U256Codec, DecStringRoundTrip) {
  Rng rng{8};
  for (int i = 0; i < 50; ++i) {
    const U256 v = rand_u256(rng);
    const auto back = U256::from_dec(v.to_dec());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, v);
  }
}

TEST(U256Codec, KnownDecimal) {
  // 2^128 = 340282366920938463463374607431768211456
  const auto v = U256::from_dec("340282366920938463463374607431768211456");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, U256::one() << 128);
  EXPECT_EQ(v->to_dec(), "340282366920938463463374607431768211456");
}

TEST(U256Codec, FromDecRejectsJunkAndOverflow) {
  EXPECT_FALSE(U256::from_dec("").has_value());
  EXPECT_FALSE(U256::from_dec("12a").has_value());
  // 2^256 overflows.
  EXPECT_FALSE(U256::from_dec("115792089237316195423570985008687907853"
                              "269984665640564039457584007913129639936")
                   .has_value());
  // 2^256 - 1 is fine.
  const auto max = U256::from_dec("115792089237316195423570985008687907853"
                                  "269984665640564039457584007913129639935");
  ASSERT_TRUE(max.has_value());
  EXPECT_EQ(*max, U256::max());
}

TEST(U256Codec, HexStrings) {
  const auto v = U256::from_hex("0xff");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, U256{255});
  EXPECT_EQ(v->to_hex(), "0xff");
  EXPECT_EQ(U256::zero().to_hex(), "0x0");
  EXPECT_FALSE(U256::from_hex(std::string(65, 'f')).has_value());
}

// Property check against native 128-bit arithmetic on values that fit.
TEST(U256PropertySmall, MatchesNative128) {
  Rng rng{42};
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a64 = rng.next_u64();
    const std::uint64_t b64 = rng.next_u64() | 1;  // avoid div by zero
    const U256 a{a64};
    const U256 b{b64};
    EXPECT_EQ((a + b).limb[0], a64 + b64);
    const unsigned __int128 prod =
        static_cast<unsigned __int128>(a64) * b64;
    const U256 p = a * b;
    EXPECT_EQ(p.limb[0], static_cast<std::uint64_t>(prod));
    EXPECT_EQ(p.limb[1], static_cast<std::uint64_t>(prod >> 64));
    EXPECT_EQ((a / b).limb[0], a64 / b64);
    EXPECT_EQ((a % b).limb[0], a64 % b64);
  }
}

// divmod invariant: a == q*b + r with r < b, for full-width operands.
TEST(U256PropertyWide, DivModInvariant) {
  Rng rng{43};
  for (int i = 0; i < 500; ++i) {
    const U256 a = rand_u256(rng);
    U256 b = rand_u256(rng);
    // Mix widths: sometimes shrink divisor to exercise both division paths.
    if (i % 3 == 0) b = U256{b.limb[0]};
    if (i % 3 == 1) b = U256{b.limb[0], b.limb[1], 0, 0};
    if (b.is_zero()) b = U256::one();
    const auto [q, r] = a.divmod(b);
    EXPECT_LT(r, b);
    EXPECT_EQ(q * b + r, a);
  }
}

TEST(U256PropertyWide, MulDistributesOverAdd) {
  Rng rng{44};
  for (int i = 0; i < 300; ++i) {
    const U256 a = rand_u256(rng);
    const U256 b = rand_u256(rng);
    const U256 c = rand_u256(rng);
    EXPECT_EQ(a * (b + c), a * b + a * c);  // mod 2^256
  }
}

TEST(U256PropertyWide, FullMulMatchesWrappedLow) {
  Rng rng{45};
  for (int i = 0; i < 300; ++i) {
    const U256 a = rand_u256(rng);
    const U256 b = rand_u256(rng);
    EXPECT_EQ(a.full_mul(b).lo, a * b);
  }
}

TEST(U256Signed, SignBitAndNegate) {
  EXPECT_FALSE(sign_bit(U256{1}));
  EXPECT_TRUE(sign_bit(U256::max()));  // -1
  EXPECT_EQ(negate(U256::one()), U256::max());
  EXPECT_EQ(negate(U256::zero()), U256::zero());
  EXPECT_EQ(negate(negate(U256{12345})), U256{12345});
}

TEST(U256Signed, SltSgt) {
  const U256 minus_one = U256::max();
  const U256 minus_two = U256::max() - U256::one();
  EXPECT_TRUE(slt(minus_one, U256::zero()));
  EXPECT_TRUE(slt(minus_two, minus_one));
  EXPECT_TRUE(sgt(U256::one(), minus_one));
  EXPECT_FALSE(slt(U256::one(), U256::one()));
}

TEST(U256Signed, SdivSmodMatchNativeSigned) {
  Rng rng{46};
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t a = static_cast<std::int64_t>(rng.next_u64());
    std::int64_t b = static_cast<std::int64_t>(rng.next_u64());
    if (b == 0) b = 1;
    if (a == INT64_MIN || b == INT64_MIN) continue;
    const U256 ua = a < 0 ? negate(U256{static_cast<std::uint64_t>(-a)})
                          : U256{static_cast<std::uint64_t>(a)};
    const U256 ub = b < 0 ? negate(U256{static_cast<std::uint64_t>(-b)})
                          : U256{static_cast<std::uint64_t>(b)};
    const std::int64_t q = a / b;
    const std::int64_t r = a % b;
    const U256 uq = q < 0 ? negate(U256{static_cast<std::uint64_t>(-q)})
                          : U256{static_cast<std::uint64_t>(q)};
    const U256 ur = r < 0 ? negate(U256{static_cast<std::uint64_t>(-r)})
                          : U256{static_cast<std::uint64_t>(r)};
    EXPECT_EQ(sdiv(ua, ub), uq) << a << "/" << b;
    EXPECT_EQ(smod(ua, ub), ur) << a << "%" << b;
  }
}

TEST(U256Signed, SdivByZeroIsZero) {
  EXPECT_EQ(sdiv(U256{5}, U256::zero()), U256::zero());
  EXPECT_EQ(smod(U256{5}, U256::zero()), U256::zero());
}

TEST(U256Signed, SarShiftsInSignBit) {
  const U256 minus_8 = negate(U256{8});
  EXPECT_EQ(sar(minus_8, 1), negate(U256{4}));
  EXPECT_EQ(sar(minus_8, 300), U256::max());  // saturates to -1
  EXPECT_EQ(sar(U256{8}, 1), U256{4});
  EXPECT_EQ(sar(U256{8}, 300), U256::zero());
  EXPECT_EQ(sar(minus_8, 0), minus_8);
}

TEST(U256Signed, SignExtend) {
  // 0xff at byte 0 sign-extends to -1.
  EXPECT_EQ(signextend(0, U256{0xff}), U256::max());
  // 0x7f stays positive.
  EXPECT_EQ(signextend(0, U256{0x7f}), U256{0x7f});
  // Extension also clears stray high bits for positive values.
  EXPECT_EQ(signextend(0, U256{0x17f}), U256{0x7f});
  // byte_index >= 31 is the identity.
  const U256 v{0xdeadbeef};
  EXPECT_EQ(signextend(31, v), v);
  EXPECT_EQ(signextend(200, v), v);
}

TEST(U256Evm, NthByte) {
  const U256 v = U256{0xaabbccdd};
  EXPECT_EQ(nth_byte(v, 31), 0xdd);
  EXPECT_EQ(nth_byte(v, 30), 0xcc);
  EXPECT_EQ(nth_byte(v, 0), 0x00);
  EXPECT_EQ(nth_byte(v, 32), 0x00);
}

TEST(U256Evm, AddModMulMod) {
  // (2^256 - 1 + 1) mod 7 == 2^256 mod 7.
  // 2^256 mod 7: 2^3=1 mod 7, 256 = 3*85+1 -> 2^256 = 2 mod 7.
  EXPECT_EQ(addmod(U256::max(), U256::one(), U256{7}), U256{2});
  EXPECT_EQ(addmod(U256{5}, U256{6}, U256{7}), U256{4});
  EXPECT_EQ(addmod(U256{5}, U256{6}, U256::zero()), U256::zero());
  EXPECT_EQ(mulmod(U256{5}, U256{6}, U256{7}), U256{2});
  EXPECT_EQ(mulmod(U256::max(), U256::max(), U256::max() - U256::one()),
            U256::one());  // (m+1)^2 mod m with m = 2^256-2: wait, checked below
}

TEST(U256Evm, MulModProperty) {
  Rng rng{47};
  for (int i = 0; i < 200; ++i) {
    const U256 a = rand_u256(rng);
    const U256 b = rand_u256(rng);
    U256 m = rand_u256(rng);
    if (m.is_zero()) m = U256{3};
    // mulmod(a,b,m) == full 512-bit product mod m; cross-check with the
    // identity (a mod m)*(b mod m) mod m.
    EXPECT_EQ(mulmod(a, b, m), mulmod(a % m, b % m, m));
    EXPECT_LT(mulmod(a, b, m), m);
    EXPECT_EQ(addmod(a, b, m), addmod(b, a, m));
  }
}

TEST(U256Evm, ExpPow) {
  EXPECT_EQ(exp_pow(U256{2}, U256{10}), U256{1024});
  EXPECT_EQ(exp_pow(U256{0}, U256{0}), U256::one());  // EVM: 0^0 == 1
  EXPECT_EQ(exp_pow(U256{0}, U256{5}), U256::zero());
  EXPECT_EQ(exp_pow(U256{3}, U256::zero()), U256::one());
  // Wrapping: 2^256 == 0 mod 2^256.
  EXPECT_EQ(exp_pow(U256{2}, U256{256}), U256::zero());
  EXPECT_EQ(exp_pow(U256{2}, U256{255}), U256::one() << 255);
}

}  // namespace
}  // namespace srbb
