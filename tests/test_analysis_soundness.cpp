// Soundness differential for the static analyzer (docs/ANALYSIS.md): the
// verdicts must agree with what the interpreter actually does.
//
//  - kAccept claims no execution from the analyzed entry can hit a stack
//    underflow/overflow, an invalid jump, or an invalid/undefined opcode —
//    so we execute accepted programs under several calldata/gas variants and
//    require none of those statuses.
//  - kReject (other than the structural kTruncatedPush) claims every
//    execution is doomed — so we force-install the code with validation off,
//    give it a generous budget, and require it neither succeeds nor cleanly
//    reverts.
//
// Inputs: every file under fuzz/corpus/evm* (the real corpus the fuzzers
// replay) plus 200 seeded random programs biased toward interesting shapes.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "evm/analysis/analysis.hpp"
#include "evm/interpreter.hpp"
#include "state/statedb.hpp"

namespace srbb::evm::analysis {
namespace {

namespace fs = std::filesystem;

Address addr(std::uint8_t tag) {
  Address a;
  a[19] = tag;
  return a;
}

bool is_analysis_failure(ExecStatus s) {
  return s == ExecStatus::kStackUnderflow || s == ExecStatus::kStackOverflow ||
         s == ExecStatus::kInvalidJump || s == ExecStatus::kInvalidOpcode;
}

/// Execute `code` at a fixed account with validation off (we are probing the
/// interpreter's native behaviour, not the gate).
ExecResult force_execute(const Bytes& code, const Bytes& calldata,
                         std::uint64_t gas) {
  state::StateDB db;
  const Address self = addr(0xFC);
  const Address caller = addr(0xCA);
  db.add_balance(caller, U256{1'000'000});
  db.set_code(self, code);
  BlockContext block;
  TxContext tx;
  Evm evm{db, block, tx};
  evm.set_validate_code(false);
  Message msg;
  msg.caller = caller;
  msg.to = self;
  msg.gas = gas;
  msg.data = calldata;
  return evm.execute(msg);
}

void check_program(const Bytes& code, const std::string& label) {
  const AnalysisResult r = analyze(BytesView{code});
  if (r.verdict == Verdict::kAccept) {
    // No execution may hit a statically-excluded failure, whatever the
    // calldata or (generous) gas budget.
    const Bytes calldatas[] = {
        Bytes{},
        Bytes(32, 0x00),
        Bytes(32, 0xff),
        Bytes{0xde, 0xad, 0xbe, 0xef},
    };
    for (const Bytes& data : calldatas) {
      for (const std::uint64_t gas : {200'000ull, 1'000'000ull}) {
        const ExecResult run = force_execute(code, data, gas);
        EXPECT_FALSE(is_analysis_failure(run.status))
            << label << ": accepted code failed with " << to_string(run.status)
            << " (calldata " << data.size() << "B, gas " << gas << ")";
      }
    }
  } else if (r.verdict == Verdict::kReject &&
             r.reject_reason != RejectReason::kTruncatedPush) {
    // Provably doomed: with a budget far above the code's worst case, the
    // run must end in a hard failure — never success, never a clean REVERT.
    const ExecResult run = force_execute(code, Bytes(32, 0x01), 5'000'000);
    EXPECT_NE(run.status, ExecStatus::kSuccess)
        << label << ": rejected code (" << to_string(r.reject_reason)
        << " at pc " << r.reject_pc << ") succeeded";
    EXPECT_NE(run.status, ExecStatus::kRevert)
        << label << ": rejected code (" << to_string(r.reject_reason)
        << " at pc " << r.reject_pc << ") reverted cleanly";
  } else if (r.verdict == Verdict::kReject) {
    // kTruncatedPush is structural malformation: the interpreter pads the
    // immediate with zeros and may well run to STOP, so the claim to verify
    // is that the entry path really does execute a cut-off PUSH.
    ASSERT_FALSE(code.empty());
    EXPECT_TRUE(r.reachable_truncated_push)
        << label << ": truncated-push reject without a reachable one";
  }
}

TEST(AnalysisSoundness, CorpusPrograms) {
  std::vector<fs::path> files;
  const fs::path root{SRBB_CORPUS_DIR};
  ASSERT_TRUE(fs::exists(root)) << root;
  for (const auto& dir : fs::directory_iterator(root)) {
    if (!dir.is_directory()) continue;
    const std::string name = dir.path().filename().string();
    if (name.rfind("evm", 0) != 0) continue;  // evm, evm_analysis, ...
    for (const auto& entry : fs::directory_iterator(dir.path())) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty());
  for (const fs::path& file : files) {
    std::ifstream in{file, std::ios::binary};
    ASSERT_TRUE(in.good()) << file;
    std::vector<char> raw{std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>()};
    const Bytes code{raw.begin(), raw.end()};
    check_program(code, file.filename().string());
  }
}

/// Random program generator, biased to exercise the analyzer: runs of plain
/// opcodes, PUSH-label-JUMP idioms, JUMPDESTs, and occasional garbage bytes.
Bytes random_program(Rng& rng) {
  Bytes code;
  const std::size_t target = 4 + rng.next_below(120);
  while (code.size() < target) {
    switch (rng.next_below(8)) {
      case 0: {  // PUSH1..PUSH4 with a small immediate
        const std::uint8_t n = static_cast<std::uint8_t>(1 + rng.next_below(4));
        code.push_back(static_cast<std::uint8_t>(0x5f + n));
        for (std::uint8_t i = 0; i < n; ++i) {
          code.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
        }
        break;
      }
      case 1:  // arithmetic / comparison
        code.push_back(static_cast<std::uint8_t>(
            std::uint64_t{0x01} + rng.next_below(7)));  // ADD..SMOD
        break;
      case 2:  // DUP / SWAP
        code.push_back(static_cast<std::uint8_t>(
            (rng.next_bool(0.5) ? 0x80 : 0x90) + rng.next_below(4)));
        break;
      case 3:
        code.push_back(0x5b);  // JUMPDEST
        break;
      case 4:  // static jump to a random (often bogus) target
        code.push_back(0x60);
        code.push_back(static_cast<std::uint8_t>(rng.next_below(128)));
        code.push_back(rng.next_bool(0.5) ? 0x56 : 0x57);  // JUMP / JUMPI
        break;
      case 5:  // environment reads
        code.push_back(rng.next_bool(0.5) ? 0x35 : 0x33);  // CALLDATALOAD/CALLER
        break;
      case 6:  // terminator mid-stream
        code.push_back(rng.next_bool(0.5) ? 0x00 : 0x5b);
        break;
      default:  // raw byte, may be an undefined opcode
        code.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
        break;
    }
  }
  return code;
}

TEST(AnalysisSoundness, RandomPrograms) {
  Rng rng{0x5eed'ab1e};
  for (int i = 0; i < 200; ++i) {
    const Bytes code = random_program(rng);
    check_program(code, "random#" + std::to_string(i));
  }
}

}  // namespace
}  // namespace srbb::evm::analysis
