#include "crypto/ed25519.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/bytes.hpp"

namespace srbb::crypto {
namespace {

BytesView sv(const std::string& s) {
  return BytesView{reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

PrivateSeed seed_from_hex(const std::string& hex) {
  const auto raw = from_hex(hex);
  PrivateSeed out{};
  std::memcpy(out.data(), raw->data(), 32);
  return out;
}

// RFC 8032 section 7.1, TEST 1 (empty message).
TEST(Ed25519Rfc8032, Test1KeyDerivation) {
  const auto kp = ed25519_keypair(seed_from_hex(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"));
  EXPECT_EQ(to_hex(BytesView{kp.public_key.data(), 32}),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a");
}

TEST(Ed25519Rfc8032, Test1Signature) {
  const auto kp = ed25519_keypair(seed_from_hex(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"));
  const Signature sig = ed25519_sign(BytesView{}, kp);
  EXPECT_EQ(to_hex(BytesView{sig.data(), 64}),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
            "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b");
  EXPECT_TRUE(ed25519_verify(BytesView{}, sig, kp.public_key));
}

// RFC 8032 section 7.1, TEST 2 (one-byte message 0x72).
TEST(Ed25519Rfc8032, Test2Signature) {
  const auto kp = ed25519_keypair(seed_from_hex(
      "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb"));
  EXPECT_EQ(to_hex(BytesView{kp.public_key.data(), 32}),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c");
  const std::uint8_t msg = 0x72;
  const Signature sig = ed25519_sign(BytesView{&msg, 1}, kp);
  EXPECT_EQ(to_hex(BytesView{sig.data(), 64}),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
            "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00");
  EXPECT_TRUE(ed25519_verify(BytesView{&msg, 1}, sig, kp.public_key));
}

TEST(Ed25519, SignVerifyRoundTrip) {
  const auto kp = ed25519_keypair_from_id(42);
  const std::string msg = "congestion is the enemy of web3";
  const Signature sig = ed25519_sign(sv(msg), kp);
  EXPECT_TRUE(ed25519_verify(sv(msg), sig, kp.public_key));
}

TEST(Ed25519, TamperedMessageFails) {
  const auto kp = ed25519_keypair_from_id(1);
  const Signature sig = ed25519_sign(sv("original"), kp);
  EXPECT_FALSE(ed25519_verify(sv("tampered"), sig, kp.public_key));
}

TEST(Ed25519, TamperedSignatureFails) {
  const auto kp = ed25519_keypair_from_id(2);
  Signature sig = ed25519_sign(sv("message"), kp);
  sig[10] ^= 0x01;
  EXPECT_FALSE(ed25519_verify(sv("message"), sig, kp.public_key));
  sig[10] ^= 0x01;
  sig[40] ^= 0x80;  // corrupt S half
  EXPECT_FALSE(ed25519_verify(sv("message"), sig, kp.public_key));
}

TEST(Ed25519, WrongKeyFails) {
  const auto kp1 = ed25519_keypair_from_id(3);
  const auto kp2 = ed25519_keypair_from_id(4);
  const Signature sig = ed25519_sign(sv("message"), kp1);
  EXPECT_FALSE(ed25519_verify(sv("message"), sig, kp2.public_key));
}

TEST(Ed25519, DeterministicSignatures) {
  const auto kp = ed25519_keypair_from_id(5);
  EXPECT_EQ(ed25519_sign(sv("m"), kp), ed25519_sign(sv("m"), kp));
}

TEST(Ed25519, DistinctIdsDistinctKeys) {
  EXPECT_NE(ed25519_keypair_from_id(10).public_key,
            ed25519_keypair_from_id(11).public_key);
}

TEST(Ed25519, EmptyAndLargeMessages) {
  const auto kp = ed25519_keypair_from_id(6);
  const Signature s1 = ed25519_sign(BytesView{}, kp);
  EXPECT_TRUE(ed25519_verify(BytesView{}, s1, kp.public_key));
  const std::string big(100000, 'B');
  const Signature s2 = ed25519_sign(sv(big), kp);
  EXPECT_TRUE(ed25519_verify(sv(big), s2, kp.public_key));
  EXPECT_FALSE(ed25519_verify(sv(big), s1, kp.public_key));
}

TEST(Ed25519, GarbagePublicKeyRejected) {
  const auto kp = ed25519_keypair_from_id(7);
  const Signature sig = ed25519_sign(sv("m"), kp);
  PublicKey bogus{};
  for (int i = 0; i < 32; ++i) bogus[i] = static_cast<std::uint8_t>(0xC3 + i);
  // Either decompression fails or the equation fails; must not verify.
  EXPECT_FALSE(ed25519_verify(sv("m"), sig, bogus));
}

TEST(Ed25519, CrossMessageSignatureReuseFails) {
  const auto kp = ed25519_keypair_from_id(8);
  const Signature sig_a = ed25519_sign(sv("msg-a"), kp);
  EXPECT_FALSE(ed25519_verify(sv("msg-b"), sig_a, kp.public_key));
}

TEST(Ed25519, MalleableSignatureRejected) {
  // A naive verifier accepts (R, s + L) whenever it accepts (R, s); RFC 8032
  // requires s < L. Forge the malleated twin and check it is rejected.
  const auto kp = ed25519_keypair_from_id(12);
  const std::string msg = "malleability";
  Signature sig = ed25519_sign(sv(msg), kp);
  ASSERT_TRUE(ed25519_verify(sv(msg), sig, kp.public_key));

  // s' = s + L, computed little-endian over sig[32..64].
  // L = 2^252 + 0x14def9dea2f79cd65812631a5cf5d3ed.
  std::uint8_t ell[32] = {0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58,
                          0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
                          0,    0,    0,    0,    0,    0,    0,    0,
                          0,    0,    0,    0,    0,    0,    0,    0x10};
  unsigned carry = 0;
  for (int i = 0; i < 32; ++i) {
    const unsigned sum = sig[32 + i] + ell[i] + carry;
    sig[32 + i] = static_cast<std::uint8_t>(sum);
    carry = sum >> 8;
  }
  ASSERT_EQ(carry, 0u);  // s + L fits 256 bits
  EXPECT_FALSE(ed25519_verify(sv(msg), sig, kp.public_key));
}

class Ed25519ManyIds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Ed25519ManyIds, RoundTripAndTamper) {
  const auto kp = ed25519_keypair_from_id(GetParam());
  const std::string msg = "id-" + std::to_string(GetParam());
  const Signature sig = ed25519_sign(sv(msg), kp);
  EXPECT_TRUE(ed25519_verify(sv(msg), sig, kp.public_key));
  EXPECT_FALSE(ed25519_verify(sv(msg + "!"), sig, kp.public_key));
}

INSTANTIATE_TEST_SUITE_P(Sweep, Ed25519ManyIds,
                         ::testing::Values(0ull, 1ull, 2ull, 100ull, 9999ull,
                                           1ull << 32, ~0ull));

}  // namespace
}  // namespace srbb::crypto
