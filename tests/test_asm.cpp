#include "evm/asm.hpp"

#include <gtest/gtest.h>

#include "evm/opcodes.hpp"

namespace srbb::evm {
namespace {

TEST(Assembler, SimpleMnemonics) {
  auto code = assemble("PUSH1 1 PUSH1 2 ADD STOP");
  ASSERT_TRUE(code.is_ok()) << code.message();
  EXPECT_EQ(code.value(), (Bytes{0x60, 0x01, 0x60, 0x02, 0x01, 0x00}));
}

TEST(Assembler, CaseInsensitiveMnemonics) {
  auto code = assemble("push1 1 Add stop");
  ASSERT_TRUE(code.is_ok());
  // push1 needs an operand; "1" consumed; then Add, stop.
  EXPECT_EQ(code.value(), (Bytes{0x60, 0x01, 0x01, 0x00}));
}

TEST(Assembler, HexAndDecimalLiterals) {
  auto code = assemble("PUSH1 0x2a PUSH1 42");
  ASSERT_TRUE(code.is_ok());
  EXPECT_EQ(code.value(), (Bytes{0x60, 0x2a, 0x60, 0x2a}));
}

TEST(Assembler, WidePushes) {
  auto code = assemble("PUSH4 0xdeadbeef");
  ASSERT_TRUE(code.is_ok());
  EXPECT_EQ(code.value(), (Bytes{0x63, 0xde, 0xad, 0xbe, 0xef}));
}

TEST(Assembler, PushLiteralPaddedToRequestedWidth) {
  auto code = assemble("PUSH4 1");
  ASSERT_TRUE(code.is_ok());
  EXPECT_EQ(code.value(), (Bytes{0x63, 0x00, 0x00, 0x00, 0x01}));
}

TEST(Assembler, LiteralTooWideRejected) {
  EXPECT_FALSE(assemble("PUSH1 256").is_ok());
  EXPECT_TRUE(assemble("PUSH2 256").is_ok());
}

TEST(Assembler, CommentsIgnored) {
  auto code = assemble("PUSH1 1 ; this is a comment\n ADD ; trailing");
  ASSERT_TRUE(code.is_ok());
  EXPECT_EQ(code.value(), (Bytes{0x60, 0x01, 0x01}));
}

TEST(Assembler, LabelsResolveForwardAndBackward) {
  auto code = assemble("start: PUSH @end JUMP end: PUSH @start JUMP");
  ASSERT_TRUE(code.is_ok()) << code.message();
  const Bytes& c = code.value();
  // start: JUMPDEST @0; PUSH2 end; JUMP; end: JUMPDEST @5 ...
  EXPECT_EQ(c[0], 0x5b);
  EXPECT_EQ(c[1], 0x61);  // PUSH2
  EXPECT_EQ((c[2] << 8) | c[3], 5);
  EXPECT_EQ(c[5], 0x5b);
  EXPECT_EQ(c[6], 0x61);  // PUSH2 @start
  EXPECT_EQ((c[7] << 8) | c[8], 0);
}

TEST(Assembler, UndefinedLabelRejected) {
  EXPECT_FALSE(assemble("PUSH @nowhere JUMP").is_ok());
}

TEST(Assembler, UnknownMnemonicRejected) {
  EXPECT_FALSE(assemble("FROBNICATE").is_ok());
}

TEST(Assembler, MissingPushOperandRejected) {
  EXPECT_FALSE(assemble("PUSH1").is_ok());
}

TEST(Assembler, BadLiteralRejected) {
  EXPECT_FALSE(assemble("PUSH1 zz").is_ok());
  EXPECT_FALSE(assemble("PUSH1 0xgg").is_ok());
}

TEST(ProgramBuilder, AutoSizedPush) {
  Program p;
  p.push(U256{0});
  p.push(U256{0xff});
  p.push(U256{0x100});
  auto code = p.build();
  ASSERT_TRUE(code.is_ok());
  EXPECT_EQ(code.value(),
            (Bytes{0x60, 0x00, 0x60, 0xff, 0x61, 0x01, 0x00}));
}

TEST(ProgramBuilder, Push32Max) {
  Program p;
  p.push(U256::max());
  auto code = p.build();
  ASSERT_TRUE(code.is_ok());
  EXPECT_EQ(code.value().size(), 33u);
  EXPECT_EQ(code.value()[0], 0x7f);  // PUSH32
}

TEST(ProgramBuilder, LabelFixups) {
  Program p;
  p.push_label("target");
  p.op(Opcode::JUMP);
  p.label("target");
  p.op(Opcode::STOP);
  auto code = p.build();
  ASSERT_TRUE(code.is_ok());
  const Bytes& c = code.value();
  EXPECT_EQ((c[1] << 8) | c[2], 4);  // label after PUSH2(3) + JUMP(1)
  EXPECT_EQ(c[4], 0x5b);
}

TEST(ProgramBuilder, MissingLabelErrors) {
  Program p;
  p.push_label("ghost");
  EXPECT_FALSE(p.build().is_ok());
}

TEST(Disassembler, RoundReadable) {
  auto code = assemble("PUSH1 0x2a PUSH2 0x0102 ADD STOP");
  ASSERT_TRUE(code.is_ok());
  const std::string text = disassemble(code.value());
  EXPECT_NE(text.find("PUSH1 0x2a"), std::string::npos);
  EXPECT_NE(text.find("PUSH2 0x0102"), std::string::npos);
  EXPECT_NE(text.find("ADD"), std::string::npos);
  EXPECT_NE(text.find("STOP"), std::string::npos);
}

TEST(Disassembler, UndefinedBytesFlagged) {
  const Bytes code{0x0c, 0x00};
  const std::string text = disassemble(code);
  EXPECT_NE(text.find("UNDEFINED"), std::string::npos);
}

TEST(Deployer, WrapsRuntime) {
  const Bytes runtime{0x60, 0x01, 0x60, 0x02, 0x01, 0x00};
  const Bytes deploy = make_deployer(runtime);
  // Header is 13 bytes, then the payload verbatim.
  ASSERT_EQ(deploy.size(), 13 + runtime.size());
  EXPECT_EQ(Bytes(deploy.begin() + 13, deploy.end()), runtime);
}

TEST(OpcodeTable, NamesRoundTrip) {
  for (int op = 0; op < 256; ++op) {
    const OpcodeInfo& info = opcode_info(static_cast<std::uint8_t>(op));
    if (!info.defined) continue;
    const auto back = opcode_by_name(info.name);
    ASSERT_TRUE(back.has_value()) << info.name;
    EXPECT_EQ(*back, op) << info.name;
  }
}

TEST(OpcodeTable, ImmediateSizes) {
  EXPECT_EQ(immediate_size(0x60), 1u);
  EXPECT_EQ(immediate_size(0x7f), 32u);
  EXPECT_EQ(immediate_size(0x01), 0u);
  EXPECT_TRUE(is_push(0x60));
  EXPECT_FALSE(is_push(0x5f));
}

}  // namespace
}  // namespace srbb::evm
