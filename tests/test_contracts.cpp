// End-to-end tests of the canned DApp contracts: deploy via CREATE, invoke
// through the ABI, observe storage/returns — exercising the full interpreter
// call path the blockchain nodes use.
#include "evm/contracts.hpp"

#include <gtest/gtest.h>

#include "evm/interpreter.hpp"

namespace srbb::evm {
namespace {

using state::StateDB;

Address addr(std::uint8_t tag) {
  Address a;
  a[19] = tag;
  return a;
}

const Address kAlice = addr(0xA1);
const Address kBob = addr(0xB2);

struct Chain {
  StateDB db;
  BlockContext block;
  TxContext tx;

  Chain() {
    tx.origin = kAlice;
    db.add_balance(kAlice, U256{1'000'000'000});
    db.add_balance(kBob, U256{1'000'000'000});
  }

  Address deploy(const Contract& contract, const Address& from = kAlice) {
    Evm evm{db, block, tx};
    Message msg;
    msg.caller = from;
    msg.is_create = true;
    msg.data = contract.deploy_code;
    msg.gas = 10'000'000;
    db.increment_nonce(from);  // txn layer behaviour
    const ExecResult r = evm.execute(msg);
    EXPECT_TRUE(r.ok()) << to_string(r.status);
    EXPECT_EQ(db.code(r.created_address), contract.runtime_code);
    return r.created_address;
  }

  ExecResult call(const Address& to, const Bytes& data,
                  const Address& from = kAlice, U256 value = U256::zero()) {
    Evm evm{db, block, tx};
    Message msg;
    msg.caller = from;
    msg.to = to;
    msg.data = data;
    msg.value = value;
    msg.gas = 5'000'000;
    ExecResult r = evm.execute(msg);
    logs = evm.logs();
    return r;
  }

  U256 call_view(const Address& to, const Bytes& data) {
    const ExecResult r = call(to, data);
    EXPECT_TRUE(r.ok()) << to_string(r.status);
    return U256::from_be(r.output);
  }

  std::vector<LogEntry> logs;
};

TEST(CounterContract, IncrementAndGet) {
  Chain chain;
  const Address counter = chain.deploy(counter_contract());
  EXPECT_EQ(chain.call_view(counter, encode_call("get()", {})), U256::zero());
  for (int i = 0; i < 5; ++i) {
    const ExecResult r = chain.call(counter, encode_call("increment()", {}));
    ASSERT_TRUE(r.ok()) << to_string(r.status);
  }
  EXPECT_EQ(chain.call_view(counter, encode_call("get()", {})), U256{5});
}

TEST(CounterContract, UnknownSelectorReverts) {
  Chain chain;
  const Address counter = chain.deploy(counter_contract());
  const ExecResult r = chain.call(counter, encode_call("nope()", {}));
  EXPECT_EQ(r.status, ExecStatus::kRevert);
}

TEST(CounterContract, EmptyCalldataReverts) {
  Chain chain;
  const Address counter = chain.deploy(counter_contract());
  const ExecResult r = chain.call(counter, Bytes{});
  EXPECT_EQ(r.status, ExecStatus::kRevert);
}

TEST(ExchangeContract, TradeUpdatesPriceVolumeCount) {
  Chain chain;
  const Address ex = chain.deploy(exchange_contract());
  const U256 apple{1};
  ASSERT_TRUE(chain
                  .call(ex, encode_call("trade(uint256,uint256,uint256)",
                                        {apple, U256{150}, U256{10}}))
                  .ok());
  ASSERT_TRUE(chain
                  .call(ex, encode_call("trade(uint256,uint256,uint256)",
                                        {apple, U256{155}, U256{5}}))
                  .ok());
  EXPECT_EQ(chain.call_view(ex, encode_call("quote(uint256)", {apple})),
            U256{155});  // last price wins
  EXPECT_EQ(chain.call_view(ex, encode_call("count()", {})), U256{2});
}

TEST(ExchangeContract, IndependentStocks) {
  Chain chain;
  const Address ex = chain.deploy(exchange_contract());
  chain.call(ex, encode_call("trade(uint256,uint256,uint256)",
                             {U256{1}, U256{100}, U256{1}}));
  chain.call(ex, encode_call("trade(uint256,uint256,uint256)",
                             {U256{2}, U256{200}, U256{1}}));
  EXPECT_EQ(chain.call_view(ex, encode_call("quote(uint256)", {U256{1}})),
            U256{100});
  EXPECT_EQ(chain.call_view(ex, encode_call("quote(uint256)", {U256{2}})),
            U256{200});
}

TEST(ExchangeContract, EmitsTradeLog) {
  Chain chain;
  const Address ex = chain.deploy(exchange_contract());
  chain.call(ex, encode_call("trade(uint256,uint256,uint256)",
                             {U256{1}, U256{100}, U256{1}}));
  ASSERT_EQ(chain.logs.size(), 1u);
  EXPECT_EQ(chain.logs[0].address, ex);
  ASSERT_EQ(chain.logs[0].topics.size(), 1u);
}

TEST(MobilityContract, RidesAccumulate) {
  Chain chain;
  const Address mob = chain.deploy(mobility_contract());
  ASSERT_TRUE(
      chain.call(mob, encode_call("ride(uint256,uint256)", {U256{1}, U256{25}}))
          .ok());
  ASSERT_TRUE(
      chain.call(mob, encode_call("ride(uint256,uint256)", {U256{2}, U256{40}}))
          .ok());
  EXPECT_EQ(chain.call_view(mob, encode_call("fareOf(uint256)", {U256{1}})),
            U256{25});
  EXPECT_EQ(chain.call_view(mob, encode_call("fareOf(uint256)", {U256{2}})),
            U256{40});
  EXPECT_EQ(chain.call_view(mob, encode_call("totalFares()", {})), U256{65});
  EXPECT_EQ(chain.call_view(mob, encode_call("count()", {})), U256{2});
}

TEST(TicketingContract, SeatsAssignedToCaller) {
  Chain chain;
  const Address tix = chain.deploy(ticketing_contract());
  ASSERT_TRUE(chain
                  .call(tix, encode_call("buy(uint256,uint256)",
                                         {U256{1}, U256{10}}),
                        kAlice)
                  .ok());
  const U256 owner =
      chain.call_view(tix, encode_call("ownerOf(uint256,uint256)",
                                       {U256{1}, U256{10}}));
  EXPECT_EQ(owner, U256::from_be(kAlice.view()));
  EXPECT_EQ(chain.call_view(tix, encode_call("sold()", {})), U256::one());
}

TEST(TicketingContract, DoubleSellReverts) {
  Chain chain;
  const Address tix = chain.deploy(ticketing_contract());
  ASSERT_TRUE(chain
                  .call(tix, encode_call("buy(uint256,uint256)",
                                         {U256{1}, U256{10}}),
                        kAlice)
                  .ok());
  const ExecResult r = chain.call(
      tix, encode_call("buy(uint256,uint256)", {U256{1}, U256{10}}), kBob);
  EXPECT_EQ(r.status, ExecStatus::kRevert);
  // Seat still Alice's; count unchanged.
  EXPECT_EQ(chain.call_view(tix, encode_call("ownerOf(uint256,uint256)",
                                             {U256{1}, U256{10}})),
            U256::from_be(kAlice.view()));
  EXPECT_EQ(chain.call_view(tix, encode_call("sold()", {})), U256::one());
}

TEST(TicketingContract, DifferentSeatsBothSell) {
  Chain chain;
  const Address tix = chain.deploy(ticketing_contract());
  ASSERT_TRUE(chain.call(tix, encode_call("buy(uint256,uint256)", {U256{1}, U256{10}}), kAlice).ok());
  ASSERT_TRUE(chain.call(tix, encode_call("buy(uint256,uint256)", {U256{1}, U256{11}}), kBob).ok());
  EXPECT_EQ(chain.call_view(tix, encode_call("sold()", {})), U256{2});
}

TEST(StakingContract, DepositsTrackCallersAndTotal) {
  Chain chain;
  const Address stake = chain.deploy(staking_contract());
  ASSERT_TRUE(chain.call(stake, encode_call("deposit()", {}), kAlice, U256{500}).ok());
  ASSERT_TRUE(chain.call(stake, encode_call("deposit()", {}), kBob, U256{300}).ok());
  ASSERT_TRUE(chain.call(stake, encode_call("deposit()", {}), kAlice, U256{200}).ok());
  EXPECT_EQ(chain.call_view(stake, encode_call("stakeOf(uint256)",
                                               {U256::from_be(kAlice.view())})),
            U256{700});
  EXPECT_EQ(chain.call_view(stake, encode_call("stakeOf(uint256)",
                                               {U256::from_be(kBob.view())})),
            U256{300});
  EXPECT_EQ(chain.call_view(stake, encode_call("totalStake()", {})), U256{1000});
  // Ether actually moved to the contract.
  EXPECT_EQ(chain.db.balance(stake), U256{1000});
}

TEST(Deployment, DistinctAddressesPerNonce) {
  Chain chain;
  const Address first = chain.deploy(counter_contract());
  const Address second = chain.deploy(counter_contract());
  EXPECT_NE(first, second);
}

TEST(Deployment, StateIsolatedBetweenInstances) {
  Chain chain;
  const Address c1 = chain.deploy(counter_contract());
  const Address c2 = chain.deploy(counter_contract());
  chain.call(c1, encode_call("increment()", {}));
  EXPECT_EQ(chain.call_view(c1, encode_call("get()", {})), U256::one());
  EXPECT_EQ(chain.call_view(c2, encode_call("get()", {})), U256::zero());
}

TEST(TokenContract, MintAndSupply) {
  Chain chain;
  const Address token = chain.deploy(token_contract());
  const U256 alice_word = U256::from_be(kAlice.view());
  ASSERT_TRUE(chain
                  .call(token, encode_call("mint(uint256,uint256)",
                                           {alice_word, U256{1000}}))
                  .ok());
  EXPECT_EQ(chain.call_view(token, encode_call("balanceOf(uint256)", {alice_word})),
            U256{1000});
  EXPECT_EQ(chain.call_view(token, encode_call("totalSupply()", {})),
            U256{1000});
}

TEST(TokenContract, TransferMovesBalance) {
  Chain chain;
  const Address token = chain.deploy(token_contract());
  const U256 alice_word = U256::from_be(kAlice.view());
  const U256 bob_word = U256::from_be(kBob.view());
  chain.call(token, encode_call("mint(uint256,uint256)", {alice_word, U256{500}}));
  ASSERT_TRUE(chain
                  .call(token, encode_call("transfer(uint256,uint256)",
                                           {bob_word, U256{200}}),
                        kAlice)
                  .ok());
  // Emits the canonical Transfer topic (checked before views overwrite the
  // captured logs).
  ASSERT_EQ(chain.logs.size(), 1u);
  EXPECT_EQ(chain.logs[0].address, token);
  EXPECT_EQ(chain.call_view(token, encode_call("balanceOf(uint256)", {alice_word})),
            U256{300});
  EXPECT_EQ(chain.call_view(token, encode_call("balanceOf(uint256)", {bob_word})),
            U256{200});
}

TEST(TokenContract, InsufficientBalanceReverts) {
  Chain chain;
  const Address token = chain.deploy(token_contract());
  const U256 alice_word = U256::from_be(kAlice.view());
  const U256 bob_word = U256::from_be(kBob.view());
  chain.call(token, encode_call("mint(uint256,uint256)", {alice_word, U256{100}}));
  const ExecResult r = chain.call(
      token, encode_call("transfer(uint256,uint256)", {bob_word, U256{101}}),
      kAlice);
  EXPECT_EQ(r.status, ExecStatus::kRevert);
  // Balances untouched.
  EXPECT_EQ(chain.call_view(token, encode_call("balanceOf(uint256)", {alice_word})),
            U256{100});
  EXPECT_EQ(chain.call_view(token, encode_call("balanceOf(uint256)", {bob_word})),
            U256::zero());
}

TEST(TokenContract, ExactBalanceTransferSucceeds) {
  Chain chain;
  const Address token = chain.deploy(token_contract());
  const U256 alice_word = U256::from_be(kAlice.view());
  const U256 bob_word = U256::from_be(kBob.view());
  chain.call(token, encode_call("mint(uint256,uint256)", {alice_word, U256{50}}));
  ASSERT_TRUE(chain
                  .call(token, encode_call("transfer(uint256,uint256)",
                                           {bob_word, U256{50}}),
                        kAlice)
                  .ok());
  EXPECT_EQ(chain.call_view(token, encode_call("balanceOf(uint256)", {alice_word})),
            U256::zero());
}

TEST(TokenContract, SelfTransferIsBalancePreserving) {
  Chain chain;
  const Address token = chain.deploy(token_contract());
  const U256 alice_word = U256::from_be(kAlice.view());
  chain.call(token, encode_call("mint(uint256,uint256)", {alice_word, U256{70}}));
  ASSERT_TRUE(chain
                  .call(token, encode_call("transfer(uint256,uint256)",
                                           {alice_word, U256{30}}),
                        kAlice)
                  .ok());
  EXPECT_EQ(chain.call_view(token, encode_call("balanceOf(uint256)", {alice_word})),
            U256{70});
}

TEST(Selectors, MatchKeccakPrefix) {
  // Canonical example: transfer(address,uint256) -> 0xa9059cbb.
  EXPECT_EQ(selector("transfer(address,uint256)"), 0xa9059cbbu);
}

TEST(Selectors, EncodeCallLayout) {
  const Bytes call = encode_call(0x01020304u, {U256{5}});
  ASSERT_EQ(call.size(), 36u);
  EXPECT_EQ(call[0], 0x01);
  EXPECT_EQ(call[3], 0x04);
  EXPECT_EQ(call[35], 5);
}

}  // namespace
}  // namespace srbb::evm
