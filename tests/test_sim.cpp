#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event_loop.hpp"
#include "sim/gossip.hpp"
#include "sim/latency.hpp"
#include "sim/network.hpp"

namespace srbb::sim {
namespace {

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulation, SameTimeEventsAreFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run_until_idle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, HandlersCanScheduleMore) {
  Simulation sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.schedule_after(10, chain);
  };
  sim.schedule_at(0, chain);
  sim.run_until_idle();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), 40u);
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.schedule_at(30, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20u);
  sim.run_until_idle();
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, PastSchedulingClampsToNow) {
  Simulation sim;
  sim.schedule_at(100, [&] {
    sim.schedule_at(50, [] {});  // "in the past" -> fires at now
  });
  sim.run_until_idle();
  EXPECT_EQ(sim.now(), 100u);
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(Latency, AwsGlobalShape) {
  const LatencyModel model = LatencyModel::aws_global();
  EXPECT_EQ(model.region_count(), 10u);
  // Symmetric, near-zero diagonal, Sydney-Stockholm is the long haul.
  for (RegionId i = 0; i < 10; ++i) {
    EXPECT_EQ(model.base(i, i), millis(1));
    for (RegionId j = 0; j < 10; ++j) {
      EXPECT_EQ(model.base(i, j), model.base(j, i));
    }
  }
  EXPECT_GT(model.base(8, 7), millis(100));  // Sydney <-> Stockholm
  EXPECT_LT(model.base(4, 5), millis(10));   // N. Virginia <-> Ohio
}

TEST(Latency, SampleJitterBounded) {
  const LatencyModel model = LatencyModel::aws_global();
  Rng rng{3};
  const SimDuration base = model.base(0, 9);
  for (int i = 0; i < 500; ++i) {
    const SimDuration sample = model.sample(0, 9, rng);
    EXPECT_GE(sample, base * 9 / 10);
    EXPECT_LE(sample, base * 11 / 10);
  }
}

TEST(Latency, RoundRobinAssignmentBalanced) {
  const LatencyModel model = LatencyModel::aws_global();
  const auto regions = model.assign_round_robin(200);
  std::vector<int> counts(10, 0);
  for (const RegionId r : regions) counts[r]++;
  for (const int c : counts) EXPECT_EQ(c, 20);
}

// --- network ---

struct Ping : Message {
  explicit Ping(std::size_t n) : bytes(n) {}
  std::size_t bytes;
  std::size_t size_bytes() const override { return bytes; }
  const char* type() const override { return "ping"; }
};

class EchoNode : public SimNode {
 public:
  using SimNode::SimNode;
  void handle_message(NodeId from, const MessagePtr& message) override {
    received.emplace_back(from, now());
    (void)message;
  }
  std::vector<std::pair<NodeId, SimTime>> received;
};

struct NetFixture {
  Simulation sim;
  NetworkConfig config;
  std::unique_ptr<Network> net;
  std::vector<std::unique_ptr<EchoNode>> nodes;

  explicit NetFixture(std::size_t n, NetworkConfig cfg = {}) : config(cfg) {
    net = std::make_unique<Network>(sim, config);
    const auto regions = config.latency.assign_round_robin(n);
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<EchoNode>(
          sim, static_cast<NodeId>(i), regions[i]));
      net->attach(nodes.back().get());
    }
  }
};

TEST(Network, DeliversWithLatency) {
  NetworkConfig cfg;
  cfg.latency = LatencyModel::uniform(2, millis(50));
  NetFixture f{2, cfg};
  f.nodes[0]->send(1, std::make_shared<Ping>(100));
  f.sim.run_until_idle();
  ASSERT_EQ(f.nodes[1]->received.size(), 1u);
  // 50 ms propagation with +/-10% jitter, plus sub-ms serialization.
  EXPECT_GE(f.nodes[1]->received[0].second, millis(45));
  EXPECT_LT(f.nodes[1]->received[0].second, millis(57));
}

TEST(Network, BandwidthSerializesLargeMessages) {
  NetworkConfig cfg;
  cfg.latency = LatencyModel::uniform(2, 0);
  cfg.bandwidth_bps = 8e6;  // 1 MB/s
  NetFixture f{2, cfg};
  // 1 MB message: ~1 s egress + ~1 s ingress serialization.
  f.nodes[0]->send(1, std::make_shared<Ping>(1'000'000));
  f.sim.run_until_idle();
  ASSERT_EQ(f.nodes[1]->received.size(), 1u);
  EXPECT_GE(f.nodes[1]->received[0].second, seconds(2));
  EXPECT_LT(f.nodes[1]->received[0].second, seconds(2) + millis(10));
}

TEST(Network, EgressQueueDelaysBackToBackSends) {
  NetworkConfig cfg;
  cfg.latency = LatencyModel::uniform(3, 0);
  cfg.bandwidth_bps = 8e6;
  NetFixture f{3, cfg};
  // Two 0.5 MB messages to different receivers share the sender NIC.
  f.nodes[0]->send(1, std::make_shared<Ping>(500'000));
  f.nodes[0]->send(2, std::make_shared<Ping>(500'000));
  f.sim.run_until_idle();
  ASSERT_EQ(f.nodes[1]->received.size(), 1u);
  ASSERT_EQ(f.nodes[2]->received.size(), 1u);
  // Second message waits ~0.5 s behind the first at egress.
  EXPECT_GT(f.nodes[2]->received[0].second, f.nodes[1]->received[0].second);
}

TEST(Network, StatsAccounting) {
  NetFixture f{2};
  f.nodes[0]->send(1, std::make_shared<Ping>(123));
  f.sim.run_until_idle();
  EXPECT_EQ(f.nodes[0]->stats().messages_sent, 1u);
  EXPECT_EQ(f.nodes[0]->stats().bytes_sent, 123u);
  EXPECT_EQ(f.nodes[1]->stats().messages_received, 1u);
  EXPECT_EQ(f.nodes[1]->stats().bytes_received, 123u);
  EXPECT_EQ(f.net->total_messages(), 1u);
  EXPECT_EQ(f.net->total_bytes(), 123u);
}

TEST(Network, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    NetworkConfig cfg;
    cfg.latency = LatencyModel::aws_global();
    cfg.seed = seed;
    NetFixture f{20, cfg};
    for (NodeId i = 0; i < 20; ++i) {
      f.nodes[i]->send((i + 1) % 20, std::make_shared<Ping>(1000 + i));
    }
    f.sim.run_until_idle();
    std::vector<SimTime> times;
    for (const auto& node : f.nodes) {
      for (const auto& [from, at] : node->received) times.push_back(at);
    }
    return times;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(NodeCpu, WorkSerializesFifo) {
  Simulation sim;
  Network net{sim, NetworkConfig{}};
  EchoNode node{sim, 0, 0};
  net.attach(&node);
  std::vector<SimTime> done;
  sim.schedule_at(0, [&] {
    node.post_work(millis(10), [&] { done.push_back(sim.now()); });
    node.post_work(millis(5), [&] { done.push_back(sim.now()); });
  });
  sim.run_until_idle();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], millis(10));
  EXPECT_EQ(done[1], millis(15));  // queued behind the first
  EXPECT_EQ(node.stats().cpu_busy, millis(15));
}

// --- gossip overlay ---

class GossipShape : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GossipShape, ConnectedWithMinFanout) {
  const std::size_t n = GetParam();
  const GossipOverlay overlay{n, 4, 99};
  EXPECT_TRUE(overlay.connected());
  for (NodeId i = 0; i < n; ++i) {
    if (n > 4) {
      EXPECT_GE(overlay.peers(i).size(), 4u) << i;
    }
    for (const NodeId peer : overlay.peers(i)) {
      EXPECT_NE(peer, i);
      EXPECT_LT(peer, n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GossipShape,
                         ::testing::Values(1u, 2u, 4u, 5u, 20u, 100u, 200u));

TEST(Gossip, EdgesAreSymmetric) {
  const GossipOverlay overlay{50, 6, 1};
  for (NodeId i = 0; i < 50; ++i) {
    for (const NodeId peer : overlay.peers(i)) {
      const auto& back = overlay.peers(peer);
      EXPECT_NE(std::find(back.begin(), back.end(), i), back.end());
    }
  }
}

TEST(Gossip, DeterministicInSeed) {
  const GossipOverlay a{30, 4, 5};
  const GossipOverlay b{30, 4, 5};
  const GossipOverlay c{30, 4, 6};
  for (NodeId i = 0; i < 30; ++i) EXPECT_EQ(a.peers(i), b.peers(i));
  bool any_diff = false;
  for (NodeId i = 0; i < 30; ++i) {
    if (a.peers(i) != c.peers(i)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace srbb::sim
