#include "crypto/merkle.hpp"

#include <gtest/gtest.h>

#include "crypto/sha256.hpp"

namespace srbb::crypto {
namespace {

Hash32 leaf(std::uint8_t tag) {
  return Sha256::hash(BytesView{&tag, 1});
}

std::vector<Hash32> make_leaves(std::size_t n) {
  std::vector<Hash32> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(leaf(static_cast<std::uint8_t>(i)));
  return out;
}

TEST(Merkle, EmptyRootIsHashOfEmpty) {
  EXPECT_EQ(merkle_root({}), Sha256::hash(BytesView{}));
}

TEST(Merkle, SingleLeafRootIsLeaf) {
  const auto leaves = make_leaves(1);
  EXPECT_EQ(merkle_root(leaves), leaves[0]);
}

TEST(Merkle, TwoLeavesRootIsPairHash) {
  const auto leaves = make_leaves(2);
  Sha256 h;
  h.update(leaves[0].view());
  h.update(leaves[1].view());
  EXPECT_EQ(merkle_root(leaves), h.finish());
}

TEST(Merkle, RootChangesWithAnyLeaf) {
  auto leaves = make_leaves(8);
  const Hash32 root = merkle_root(leaves);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    auto mutated = leaves;
    mutated[i][0] ^= 0xff;
    EXPECT_NE(merkle_root(mutated), root) << "leaf " << i;
  }
}

TEST(Merkle, OrderMatters) {
  auto leaves = make_leaves(4);
  const Hash32 root = merkle_root(leaves);
  std::swap(leaves[0], leaves[1]);
  EXPECT_NE(merkle_root(leaves), root);
}

class MerkleProofSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProofSweep, EveryLeafProves) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  const Hash32 root = merkle_root(leaves);
  for (std::size_t i = 0; i < n; ++i) {
    const MerkleProof proof = merkle_prove(leaves, i);
    EXPECT_TRUE(merkle_verify(leaves[i], proof, root)) << "leaf " << i;
  }
}

TEST_P(MerkleProofSweep, WrongLeafFailsProof) {
  const std::size_t n = GetParam();
  if (n < 2) return;
  const auto leaves = make_leaves(n);
  const Hash32 root = merkle_root(leaves);
  const MerkleProof proof = merkle_prove(leaves, 0);
  EXPECT_FALSE(merkle_verify(leaves[1], proof, root));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u,
                                           31u, 33u, 100u));

TEST(MerkleProof, OutOfRangeIndexYieldsEmptyProof) {
  const auto leaves = make_leaves(4);
  EXPECT_TRUE(merkle_prove(leaves, 10).empty());
}

TEST(MerkleProof, TamperedProofFails) {
  const auto leaves = make_leaves(8);
  const Hash32 root = merkle_root(leaves);
  MerkleProof proof = merkle_prove(leaves, 3);
  ASSERT_FALSE(proof.empty());
  proof[0].sibling[5] ^= 0x01;
  EXPECT_FALSE(merkle_verify(leaves[3], proof, root));
}

TEST(MerkleProof, ProofAgainstWrongRootFails) {
  const auto leaves = make_leaves(8);
  const MerkleProof proof = merkle_prove(leaves, 2);
  Hash32 wrong_root = merkle_root(leaves);
  wrong_root[0] ^= 1;
  EXPECT_FALSE(merkle_verify(leaves[2], proof, wrong_root));
}

}  // namespace
}  // namespace srbb::crypto
