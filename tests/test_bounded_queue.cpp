#include "common/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <string>

namespace srbb {
namespace {

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q{4};
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(*q.pop(), 1);
  EXPECT_EQ(*q.pop(), 2);
  EXPECT_EQ(*q.pop(), 3);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, DropsWhenFullAndCounts) {
  BoundedQueue<int> q{2};
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_FALSE(q.push(3));
  EXPECT_FALSE(q.push(4));
  EXPECT_EQ(q.dropped(), 2u);
  EXPECT_TRUE(q.full());
  // Popping frees a slot.
  q.pop();
  EXPECT_TRUE(q.push(5));
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, PeekDoesNotConsume) {
  BoundedQueue<std::string> q{2};
  EXPECT_EQ(q.peek(), nullptr);
  q.push("front");
  ASSERT_NE(q.peek(), nullptr);
  EXPECT_EQ(*q.peek(), "front");
  EXPECT_EQ(q.size(), 1u);
}

TEST(BoundedQueue, IterationSeesContents) {
  BoundedQueue<int> q{8};
  for (int i = 0; i < 5; ++i) q.push(i);
  int expected = 0;
  for (const int v : q) EXPECT_EQ(v, expected++);
  EXPECT_EQ(expected, 5);
}

TEST(BoundedQueue, MoveOnlyPayloads) {
  BoundedQueue<std::unique_ptr<int>> q{2};
  q.push(std::make_unique<int>(7));
  auto out = q.pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, 7);
}

TEST(BoundedQueue, ZeroCapacityDropsEverything) {
  BoundedQueue<int> q{0};
  EXPECT_FALSE(q.push(1));
  EXPECT_EQ(q.dropped(), 1u);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace srbb
