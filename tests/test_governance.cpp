// Cross-module governance test (§IV-E + §IV-F): candidates stake deposits,
// committees rotate per epoch, an RPM slashing event removes the culprit
// from the candidate pool, and honest candidates recover their stake after
// the lock period. This is the life cycle that makes re-joining with a fresh
// wallet unprofitable (the paper's argument against simple address bans).
#include <gtest/gtest.h>

#include <set>

#include "crypto/merkle.hpp"
#include "rpm/committee.hpp"
#include "rpm/rpm.hpp"

namespace srbb::rpm {
namespace {

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::ed25519();
}

struct Governance {
  CommitteeConfig committee_config;
  CommitteeManager committee;
  std::vector<crypto::Identity> candidates;

  Governance() : committee_config(make_config()), committee(committee_config) {
    for (std::uint64_t i = 0; i < 12; ++i) {
      candidates.push_back(scheme().make_identity(i));
      EXPECT_TRUE(committee.add_candidate(candidates.back().address(),
                                          U256{1'000'000}));
    }
  }

  static CommitteeConfig make_config() {
    CommitteeConfig c;
    c.committee_size = 4;
    c.epoch_length = 10;
    c.min_deposit = U256{1'000'000};
    c.withdraw_lock_epochs = 2;
    return c;
  }

  Hash32 randomness_for_epoch(std::uint64_t epoch) const {
    Hash32 r;
    put_be64(r.data.data(), epoch * 1234567);
    return r;
  }
};

TEST(Governance, SlashedValidatorNeverRejoinsCommittees) {
  Governance gov;

  // Epoch 0 committee; pick one member and register the committee in RPM.
  const auto epoch0 = gov.committee.committee(0, gov.randomness_for_epoch(0));
  ASSERT_EQ(epoch0.size(), 4u);

  RpmConfig rpm_config;
  rpm_config.n = 4;
  rpm_config.f = 1;
  rpm_config.scheme = &scheme();
  RewardPenaltyMechanism rpm{rpm_config};
  for (const Address& member : epoch0) {
    rpm.register_validator(member, gov.committee.deposit_of(member));
  }

  // The member at slot 0 proposes a block with an invalid transaction.
  crypto::Identity culprit;
  for (const auto& candidate : gov.candidates) {
    if (candidate.address() == epoch0[0]) culprit = candidate;
  }
  std::vector<Hash32> leaves(3);
  leaves[1][0] = 0xBB;
  BlockSummary bad;
  bad.proposer_pubkey = culprit.public_key;
  bad.tx_root = crypto::merkle_root(leaves);
  bad.signed_tx_root = scheme().sign(culprit, bad.tx_root.view());
  bad.tx_count = 3;

  const auto proof = crypto::merkle_prove(leaves, 1);
  std::optional<SlashEvent> slash;
  for (const Address& reporter : epoch0) {
    if (reporter == culprit.address()) continue;
    const auto event = rpm.report(reporter, bad, 5, leaves[1], proof);
    if (event.has_value()) slash = event;
  }
  ASSERT_TRUE(slash.has_value());

  // The exclusion event feeds committee reconfiguration.
  gov.committee.exclude(slash->validator);
  EXPECT_FALSE(gov.committee.is_candidate(culprit.address()));

  // The culprit never appears in any later committee.
  for (std::uint64_t epoch = 1; epoch < 60; ++epoch) {
    const auto members =
        gov.committee.committee(epoch, gov.randomness_for_epoch(epoch));
    for (const Address& member : members) {
      EXPECT_NE(member, culprit.address()) << "epoch " << epoch;
    }
  }

  // Rejoining with a NEW wallet requires a fresh full deposit while the old
  // one is gone: the economics the paper relies on.
  const crypto::Identity fresh = scheme().make_identity(999);
  EXPECT_FALSE(gov.committee.add_candidate(fresh.address(), U256{999'999}));
  EXPECT_TRUE(gov.committee.add_candidate(fresh.address(), U256{1'000'000}));
  EXPECT_EQ(rpm.deposit_of(culprit.address()), U256::zero());
}

TEST(Governance, HonestLifecycleStakeRotateWithdraw) {
  Governance gov;
  const Address leaver = gov.candidates[5].address();

  // The candidate serves in some committee eventually.
  bool served = false;
  for (std::uint64_t epoch = 0; epoch < 40 && !served; ++epoch) {
    const auto members =
        gov.committee.committee(epoch, gov.randomness_for_epoch(epoch));
    for (const Address& member : members) served |= member == leaver;
  }
  EXPECT_TRUE(served);

  // Requests withdrawal at epoch 40; stake stays locked (and slashable)
  // until epoch 42.
  ASSERT_TRUE(gov.committee.request_withdraw(leaver, 40));
  EXPECT_EQ(gov.committee.claim_withdraw(leaver, 41), U256::zero());
  EXPECT_TRUE(gov.committee.is_candidate(leaver));
  EXPECT_EQ(gov.committee.claim_withdraw(leaver, 42), U256{1'000'000});
  EXPECT_FALSE(gov.committee.is_candidate(leaver));

  // Future committees never include the departed candidate.
  for (std::uint64_t epoch = 42; epoch < 60; ++epoch) {
    const auto members =
        gov.committee.committee(epoch, gov.randomness_for_epoch(epoch));
    for (const Address& member : members) EXPECT_NE(member, leaver);
  }
}

TEST(Governance, EpochOfBlockDrivesRotationCadence) {
  Governance gov;
  EXPECT_EQ(gov.committee.epoch_of_block(0), 0u);
  EXPECT_EQ(gov.committee.epoch_of_block(9), 0u);
  EXPECT_EQ(gov.committee.epoch_of_block(10), 1u);
  // Committees within one epoch are stable; across epochs they rotate.
  const auto ca = gov.committee.committee(
      gov.committee.epoch_of_block(3), gov.randomness_for_epoch(0));
  const auto cb = gov.committee.committee(
      gov.committee.epoch_of_block(7), gov.randomness_for_epoch(0));
  EXPECT_EQ(ca, cb);
  std::set<std::vector<Address>> distinct;
  for (std::uint64_t epoch = 0; epoch < 10; ++epoch) {
    distinct.insert(gov.committee.committee(epoch,
                                            gov.randomness_for_epoch(epoch)));
  }
  EXPECT_GT(distinct.size(), 1u);
}

}  // namespace
}  // namespace srbb::rpm
