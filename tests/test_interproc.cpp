// Interprocedural composition tests (docs/ANALYSIS.md "Interprocedural
// composition", DESIGN.md §15). The contracts under test:
//
//  1. Precision: the two-contract router workload composes to a non-⊤
//     summary with per-account keys — DELEGATECALL re-binds the token
//     ledger onto the router's own storage, CALL/STATICCALL attribute the
//     kvstore keys to the kvstore's address.
//  2. Soundness: the composed prediction covers every observed access of a
//     live execution (differentially, against OverlayState), the composed
//     min-gas never rejects a transaction that would have succeeded, and
//     every degradation is an explicit ComposeBailout.
//  3. Invalidation: the InterprocCache re-composes when a resolved callee's
//     code changes in state.
//  4. Scheduling: a hinted router block runs with zero aborts and zero
//     fallbacks, bit-identical to sequential execution.
#include "evm/analysis/interproc.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "crypto/keccak.hpp"
#include "evm/analysis/analysis.hpp"
#include "evm/asm.hpp"
#include "evm/contracts.hpp"
#include "evm/opcodes.hpp"
#include "state/overlay.hpp"
#include "state/statedb.hpp"
#include "txn/parallel_executor.hpp"
#include "txn/rwset.hpp"
#include "txn/validation.hpp"

namespace srbb::txn {
namespace {

using evm::Opcode;
using evm::Program;
using evm::analysis::AccountAccess;
using evm::analysis::AnalysisCache;
using evm::analysis::AnalysisResult;
using evm::analysis::CallKind;
using evm::analysis::ComposeBailout;
using evm::analysis::ComposedSummary;
using evm::analysis::InterprocCache;
using evm::analysis::SymClass;
using evm::analysis::SymExpr;
using evm::analysis::compose_summary;

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::fast_sim();
}

Address contract_addr(std::uint8_t tag) {
  Address a;
  a[0] = 0xC0;
  a[19] = tag;
  return a;
}

const Address kToken = contract_addr(6);
const Address kKvStore = contract_addr(7);
const Address kRouter = contract_addr(8);

U256 addr_word(const Address& a) { return U256::from_be(a.view()); }

/// storage slot keccak(word ++ tag) — the emit_map_key idiom.
Hash32 map_slot(const U256& word, std::uint64_t tag) {
  Bytes preimage;
  append(preimage, word.be_bytes());
  append(preimage, U256{tag}.be_bytes());
  return crypto::Keccak256::hash(BytesView{preimage});
}

SymExpr map_key(SymExpr word, std::uint64_t tag) {
  SymExpr e;
  e.cls = SymClass::kKeccak;
  e.children.push_back(std::move(word));
  e.children.push_back(SymExpr::make_const(U256{tag}));
  return e;
}

bool contains_expr(const std::vector<SymExpr>& exprs, const SymExpr& e) {
  for (const SymExpr& x : exprs) {
    if (x == e) return true;
  }
  return false;
}

const AccountAccess* find_account(const ComposedSummary& s, const SymExpr& a) {
  for (const AccountAccess& aa : s.accesses) {
    if (aa.account == a) return &aa;
  }
  return nullptr;
}

state::StateDB make_state(std::size_t senders) {
  state::StateDB db;
  for (std::size_t i = 0; i < senders; ++i) {
    db.add_balance(scheme().make_identity(i).address(), U256{1'000'000'000});
  }
  auto deploy = [&db](const Address& at, const Bytes& code) {
    db.create_account(at);
    db.set_nonce(at, 1);
    db.set_code(at, code);
  };
  deploy(kToken, evm::token_contract().runtime_code);
  deploy(kKvStore, evm::kvstore_contract().runtime_code);
  deploy(kRouter, evm::router_contract(kKvStore, kToken).runtime_code);
  // The token ledger lives in *router* storage (DELEGATECALL): pre-fund
  // every sender's balance slot so rtransfer succeeds.
  for (std::size_t i = 0; i < senders; ++i) {
    const Address sender = scheme().make_identity(i).address();
    db.set_storage(kRouter, map_slot(addr_word(sender), 0), U256{1'000'000});
  }
  db.commit();
  return db;
}

Transaction invoke(std::uint64_t sender, std::uint64_t nonce,
                   const Address& contract, Bytes calldata,
                   std::uint64_t gas_limit = 300'000) {
  TxParams params;
  params.kind = TxKind::kInvoke;
  params.nonce = nonce;
  params.gas_limit = gas_limit;
  params.to = contract;
  params.data = std::move(calldata);
  return make_signed(params, scheme().make_identity(sender), scheme());
}

Bytes build_or_die(const Program& p) {
  auto built = p.build();
  EXPECT_TRUE(built.is_ok());
  return built.is_ok() ? std::move(built).take() : Bytes{};
}

/// Minimal caller: CALL `target` with empty calldata, guard the success flag
/// with the revert-on-failure idiom, STOP.
Bytes guarded_call_code(const Address& target) {
  Program p;
  p.push(0).push(0).push(0).push(0).push(0);
  p.push(addr_word(target)).op(Opcode::GAS).op(Opcode::CALL);
  p.push_label("ok").op(Opcode::JUMPI);
  p.push(0).push(0).op(Opcode::REVERT);
  p.label("ok").op(Opcode::STOP);
  return build_or_die(p);
}

// ---------------------------------------------------------------------------
// Composition precision on the router workload.

TEST(InterprocComposition, RouterResolvesAllThreeEdges) {
  state::StateDB db = make_state(1);
  AnalysisCache cache;
  const ComposedSummary s = compose_summary(db, kRouter, cache);

  EXPECT_FALSE(s.top) << to_string(s.bailout);
  EXPECT_EQ(s.bailout, ComposeBailout::kNone);
  EXPECT_EQ(s.unknown_target_sites, 0u);
  ASSERT_EQ(s.edges.size(), 3u);
  EXPECT_EQ(s.max_depth, 1u);

  bool saw_call_kv = false, saw_delegate_token = false, saw_static_kv = false;
  for (const auto& e : s.edges) {
    EXPECT_FALSE(e.precompile);
    EXPECT_FALSE(e.empty_code);
    EXPECT_EQ(e.depth, 1u);
    if (e.kind == CallKind::kCall && e.callee == kKvStore) saw_call_kv = true;
    if (e.kind == CallKind::kDelegateCall && e.callee == kToken) {
      saw_delegate_token = true;
    }
    if (e.kind == CallKind::kStaticCall && e.callee == kKvStore) {
      saw_static_kv = true;
    }
  }
  EXPECT_TRUE(saw_call_kv);
  EXPECT_TRUE(saw_delegate_token);
  EXPECT_TRUE(saw_static_kv);
}

TEST(InterprocComposition, DelegatecallRebindsAccountsAndCaller) {
  state::StateDB db = make_state(1);
  AnalysisCache cache;
  const ComposedSummary s = compose_summary(db, kRouter, cache);
  ASSERT_FALSE(s.top) << to_string(s.bailout);

  // DELEGATECALL token.transfer: the ledger keys land on the *router's own*
  // storage (kSelf survives the delegate substitution), and the callee's
  // CALLER stays the router's caller — the tx sender.
  const AccountAccess* self =
      find_account(s, SymExpr::make_leaf(SymClass::kSelf));
  ASSERT_NE(self, nullptr);
  const SymExpr from_key = map_key(SymExpr::make_leaf(SymClass::kCaller), 0);
  const SymExpr to_key = map_key(SymExpr::make_calldata(4), 0);
  EXPECT_TRUE(contains_expr(self->writes, from_key));
  EXPECT_TRUE(contains_expr(self->writes, to_key));
  EXPECT_TRUE(contains_expr(self->reads, from_key));

  // CALL/STATICCALL kvstore: keys attributed to the kvstore's address word,
  // re-based through the forwarded calldata (router arg 0 == callee arg 0).
  const AccountAccess* kv =
      find_account(s, SymExpr::make_const(addr_word(kKvStore)));
  ASSERT_NE(kv, nullptr);
  EXPECT_TRUE(contains_expr(kv->writes, to_key));
  EXPECT_TRUE(contains_expr(kv->reads, to_key));
}

TEST(InterprocComposition, SelfCallCycleBailsExplicitly) {
  // A contract that guard-calls its own address: composition must detect the
  // code-hash cycle, not recurse to the depth budget.
  const Address self_addr = contract_addr(0x33);
  state::StateDB db;
  db.create_account(self_addr);
  db.set_nonce(self_addr, 1);
  db.set_code(self_addr, guarded_call_code(self_addr));
  db.commit();

  AnalysisCache cache;
  const ComposedSummary s = compose_summary(db, self_addr, cache);
  EXPECT_TRUE(s.top);
  EXPECT_EQ(s.bailout, ComposeBailout::kCycle);
  ASSERT_EQ(s.edges.size(), 1u);
  EXPECT_EQ(s.edges[0].callee, self_addr);
}

TEST(InterprocComposition, UnknownTargetBailsExplicitly) {
  // Call target taken from calldata: not statically resolvable.
  Program p;
  p.push(0).push(0).push(0).push(0).push(0);
  p.push(4).op(Opcode::CALLDATALOAD).op(Opcode::GAS).op(Opcode::CALL);
  p.op(Opcode::POP).op(Opcode::STOP);
  const Address at = contract_addr(0x34);
  state::StateDB db;
  db.create_account(at);
  db.set_nonce(at, 1);
  db.set_code(at, build_or_die(p));
  db.commit();

  AnalysisCache cache;
  const ComposedSummary s = compose_summary(db, at, cache);
  EXPECT_TRUE(s.top);
  EXPECT_EQ(s.bailout, ComposeBailout::kUnknownTarget);
  EXPECT_EQ(s.unknown_target_sites, 1u);
}

TEST(InterprocComposition, EmptyCalleeIsAResolvedNoAccessEdge) {
  const Address eoa = scheme().make_identity(77).address();
  const Address at = contract_addr(0x35);
  state::StateDB db;
  db.add_balance(eoa, U256{1});
  db.create_account(at);
  db.set_nonce(at, 1);
  db.set_code(at, guarded_call_code(eoa));
  db.commit();

  AnalysisCache cache;
  const ComposedSummary s = compose_summary(db, at, cache);
  EXPECT_FALSE(s.top) << to_string(s.bailout);
  ASSERT_EQ(s.edges.size(), 1u);
  EXPECT_TRUE(s.edges[0].empty_code);
  EXPECT_TRUE(s.accesses.empty());
}

TEST(InterprocComposition, DeterministicDigest) {
  state::StateDB db = make_state(1);
  AnalysisCache cache_a;
  AnalysisCache cache_b;
  const ComposedSummary a = compose_summary(db, kRouter, cache_a);
  const ComposedSummary b = compose_summary(db, kRouter, cache_b);
  EXPECT_EQ(a.digest(), b.digest());
}

// ---------------------------------------------------------------------------
// Cache keying: (root hash, resolved callee hash set).

TEST(InterprocCacheKeying, HitWhileStableRecomposeOnCalleeCodeChange) {
  state::StateDB db = make_state(1);
  AnalysisCache analyses;
  InterprocCache cache;

  const auto first = cache.get(db, kRouter, analyses);
  ASSERT_FALSE(first->top);
  EXPECT_EQ(cache.misses(), 1u);
  const auto second = cache.get(db, kRouter, analyses);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(first->digest(), second->digest());

  // Swap the kvstore's code under the router: the cached summary's edge no
  // longer matches state, so the next lookup must re-compose.
  db.set_code(kKvStore, evm::counter_contract().runtime_code);
  db.commit();
  const auto third = cache.get(db, kRouter, analyses);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_NE(third->digest(), first->digest());
  // The counter's put/get selectors don't exist, but composition is purely
  // static: the new summary reflects the counter's slot-0 keys.
  ASSERT_FALSE(third->top);
  const AccountAccess* kv =
      find_account(*third, SymExpr::make_const(addr_word(kKvStore)));
  ASSERT_NE(kv, nullptr);
  EXPECT_TRUE(contains_expr(kv->writes, SymExpr::make_const(U256{0})));

  // The old state's variant still serves when queried against matching code:
  // both variants live under the same root hash, keyed by callee hash set.
  state::StateDB fresh = make_state(1);
  const auto fourth = cache.get(fresh, kRouter, analyses);
  EXPECT_EQ(fourth->digest(), first->digest());
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 2u);
}

// ---------------------------------------------------------------------------
// Composed min-gas: the under-gas drop (check vi) fires through calls.

TEST(InterprocMinGas, ComposedBoundExceedsIntraprocOnRouter) {
  state::StateDB db = make_state(1);
  AnalysisCache cache;
  const Bytes& router_code = db.code(kRouter);
  const auto intra = cache.get(db.code_keccak(kRouter),
                               BytesView{router_code.data(), router_code.size()});
  const ComposedSummary s = compose_summary(db, kRouter, cache);
  ASSERT_NE(s.min_gas, AnalysisResult::kNoSuccessfulPath);
  // Every router entry guards a call into real code, so the composed bound
  // must strictly exceed the router's own frame minimum.
  EXPECT_GT(s.min_gas, intra->min_gas);
}

TEST(InterprocMinGas, EagerValidationGatesOnTheComposedBound) {
  state::StateDB db = make_state(4);
  AnalysisCache analyses;
  const ComposedSummary s = compose_summary(db, kRouter, analyses);
  ASSERT_FALSE(s.top);

  ValidationConfig vcfg;
  vcfg.analysis_cache = &analyses;
  const Bytes calldata = evm::encode_call("rtransfer(uint256,uint256)",
                                          {addr_word(contract_addr(0x77)),
                                           U256{1}});
  const std::uint64_t intrinsic =
      intrinsic_gas(invoke(0, 0, kRouter, calldata));

  // One unit below the composed minimum: rejected before consensus.
  const Transaction under =
      invoke(0, 0, kRouter, calldata, intrinsic + s.min_gas - 1);
  const Status rejected = eager_validate(under, db, scheme(), vcfg);
  EXPECT_FALSE(rejected.is_ok());
  EXPECT_NE(rejected.message().find("static minimum"), std::string::npos);

  // At the bound: admitted, and the execution must actually succeed —
  // the static bound must never reject a satisfiable budget.
  const Transaction at_bound =
      invoke(0, 1, kRouter, calldata, intrinsic + s.min_gas);
  EXPECT_TRUE(eager_validate(at_bound, db, scheme(), vcfg).is_ok());

  ExecutionConfig config;
  config.scheme = &scheme();
  const Transaction generous = invoke(0, 0, kRouter, calldata);
  const Result<Receipt> res = apply_transaction(generous, db, {}, config);
  ASSERT_TRUE(res.is_ok());
  EXPECT_TRUE(res.value().success);
  // Differential: the composed lower bound is below the real cost.
  EXPECT_GE(res.value().gas_used, intrinsic + s.min_gas);
}

TEST(InterprocMinGas, GuardedDoomedCalleeDoomsTheCaller) {
  // The callee always reverts; the caller guards the call. No budget can buy
  // a successful execution, and the composed bound proves it.
  Program doomed;
  doomed.push(0).push(0).op(Opcode::REVERT);
  const Address callee_at = contract_addr(0x41);
  const Address caller_at = contract_addr(0x42);

  state::StateDB db;
  db.add_balance(scheme().make_identity(0).address(), U256{1'000'000'000});
  db.create_account(callee_at);
  db.set_nonce(callee_at, 1);
  db.set_code(callee_at, build_or_die(doomed));
  db.create_account(caller_at);
  db.set_nonce(caller_at, 1);
  db.set_code(caller_at, guarded_call_code(callee_at));
  db.commit();

  AnalysisCache analyses;
  const ComposedSummary s = compose_summary(db, caller_at, analyses);
  EXPECT_EQ(s.min_gas, AnalysisResult::kNoSuccessfulPath);

  ValidationConfig vcfg;
  vcfg.analysis_cache = &analyses;
  const Transaction tx = invoke(0, 0, caller_at, {}, 10'000'000);
  const Status st = eager_validate(tx, db, scheme(), vcfg);
  EXPECT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("static minimum"), std::string::npos);

  // Differential: the rejected transaction indeed cannot succeed.
  ExecutionConfig config;
  config.scheme = &scheme();
  const Result<Receipt> res = apply_transaction(tx, db, {}, config);
  ASSERT_TRUE(res.is_ok());
  EXPECT_FALSE(res.value().success);
}

// ---------------------------------------------------------------------------
// Soundness differential on the live router: predicted ⊇ observed.

TEST(InterprocSoundness, RouterPredictionsCoverExecution) {
  state::StateDB db = make_state(8);
  AnalysisCache cache;
  ExecutionConfig config;
  config.scheme = &scheme();
  const evm::BlockContext block{};

  std::vector<Transaction> txs;
  txs.push_back(invoke(0, 0, kRouter,
                       evm::encode_call("rput(uint256,uint256)",
                                        {U256{7}, U256{99}})));
  txs.push_back(invoke(1, 0, kRouter,
                       evm::encode_call("rtransfer(uint256,uint256)",
                                        {addr_word(contract_addr(0x55)),
                                         U256{10}})));
  txs.push_back(invoke(2, 0, kRouter,
                       evm::encode_call("rget(uint256)", {U256{7}})));
  // Insufficient funds: the DELEGATECALL child reverts, the guard propagates
  // the revert — reads of the reverted frame must still be covered.
  txs.push_back(invoke(3, 0, kRouter,
                       evm::encode_call("rtransfer(uint256,uint256)",
                                        {addr_word(contract_addr(0x55)),
                                         U256{100'000'000}})));
  // Unknown selector: router-level revert without reaching any call.
  txs.push_back(invoke(4, 0, kRouter, evm::encode_call("nonexistent()", {})));

  for (std::size_t i = 0; i < txs.size(); ++i) {
    const PredictedRwSet pred = predict_rwset(txs[i], db, block, cache);
    EXPECT_FALSE(pred.top) << "tx " << i << " degraded to blind";
    state::OverlayState overlay{db};
    const Result<Receipt> res = apply_transaction(txs[i], overlay, block, config);
    EXPECT_TRUE(
        pred.covers(overlay.observed_reads(), overlay.observed_writes()))
        << "tx " << i << ": composed prediction does not cover execution";
    if (res.is_ok()) overlay.apply_to(db);
  }
}

// ---------------------------------------------------------------------------
// Hinted scheduling on the router block: zero aborts, zero fallbacks,
// bit-identical results. (Runs under TSan via tools/tsan_check.sh.)

TEST(InterprocExecutor, HintedRouterBlockZeroAbortsBitIdentical) {
  constexpr std::uint64_t kSenders = 8;
  std::vector<Transaction> txs;
  for (std::uint64_t s = 0; s < kSenders; ++s) {
    // Distinct recipients: ledger slots are pairwise disjoint, so the
    // composed hints prove non-conflict — blind speculation cannot.
    txs.push_back(invoke(s, 0, kRouter,
                         evm::encode_call("rtransfer(uint256,uint256)",
                                          {U256{1'000 + s}, U256{1}})));
  }

  ExecutionConfig seq_config;
  seq_config.scheme = &scheme();
  state::StateDB seq_db = make_state(kSenders);
  std::vector<Result<Receipt>> seq;
  for (const Transaction& tx : txs) {
    seq.push_back(apply_transaction(tx, seq_db, {}, seq_config));
  }
  seq_db.commit();

  state::StateDB par_db = make_state(kSenders);
  AnalysisCache cache;
  ExecutionConfig config;
  config.scheme = &scheme();
  config.analysis_hints = true;
  config.hint_cache = &cache;
  ParallelExecutor executor{4, 3};
  std::vector<const Transaction*> ptrs;
  for (const Transaction& tx : txs) ptrs.push_back(&tx);
  ParallelExecStats stats;
  const auto par = executor.execute_block(ptrs, par_db, {}, config, &stats);
  par_db.commit();

  EXPECT_EQ(stats.hinted_txs, kSenders);
  EXPECT_EQ(stats.top_txs, 0u);
  EXPECT_EQ(stats.aborts, 0u);
  EXPECT_EQ(stats.fallback_txs, 0u);
  EXPECT_EQ(stats.hint_violations, 0u);

  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    ASSERT_TRUE(seq[i].is_ok());
    ASSERT_TRUE(par[i].is_ok()) << par[i].message();
    EXPECT_EQ(seq[i].value().tx_hash, par[i].value().tx_hash);
    EXPECT_TRUE(seq[i].value().success);
    EXPECT_EQ(seq[i].value().success, par[i].value().success);
    EXPECT_EQ(seq[i].value().gas_used, par[i].value().gas_used);
  }
  EXPECT_EQ(seq_db.state_root(), par_db.state_root());
}

}  // namespace
}  // namespace srbb::txn
