#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace srbb {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool{2};
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool{1};
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool{2};
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ThreadPool, ParallelForFewerItemsThanThreads) {
  ThreadPool pool{8};
  std::atomic<int> counter{0};
  pool.parallel_for(3, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool{2};
  std::atomic<long> sum{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(100, [&sum](std::size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(sum.load(), 5 * (99 * 100 / 2));
}

TEST(ThreadPool, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

}  // namespace
}  // namespace srbb
