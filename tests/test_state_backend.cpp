// Differential suite for the layered state stack (docs/STATE.md).
//
// The seed-configuration StateDB (fully resident, no backend) is the
// reference. Every other configuration — memory backend, tiny snapshot
// capacity, log-structured backend on disk — must produce bit-identical
// state_root() and state_root_mpt() at every commit point of a randomized
// journaled workload, across backend reopen, torn-log recovery, compaction,
// and self-destruct/recreate cycles.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "codec/rlp.hpp"
#include "common/rng.hpp"
#include "crypto/keccak.hpp"
#include "srbb/oracle.hpp"
#include "state/log_backend.hpp"
#include "state/overlay.hpp"
#include "state/statedb.hpp"

namespace srbb::state {
namespace {

Address addr_of(std::uint64_t i) {
  Address a{};
  put_be64(a.data.data() + 12, i);
  return a;
}

Hash32 slot_of(std::uint64_t i) {
  Hash32 h{};
  put_be64(h.data.data() + 24, i);
  return h;
}

std::string fresh_log_path(const std::string& name) {
  const std::string path =
      (std::filesystem::path{::testing::TempDir()} / name).string();
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".compact");
  return path;
}

// --- account record codec ---------------------------------------------------

TEST(AccountRecord, RoundTripsRandomAccounts) {
  Rng rng{7};
  for (int i = 0; i < 200; ++i) {
    Account account;
    account.nonce = rng.next_u64();
    account.balance = U256{rng.next_u64()};
    if (rng.next_below(2) == 0) {
      account.code.resize(rng.next_below(64));
      for (auto& b : account.code) b = static_cast<std::uint8_t>(rng.next_u64());
      account.code_keccak = account.code.empty()
                                ? Hash32{}
                                : crypto::Keccak256::hash(account.code);
    }
    const std::uint64_t slots = rng.next_below(6);
    for (std::uint64_t s = 0; s < slots; ++s) {
      account.storage[slot_of(rng.next_below(32))] = U256{1 + rng.next_u64()};
    }
    const Bytes record = encode_account_record(account);
    const std::optional<Account> decoded = decode_account_record(record);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->nonce, account.nonce);
    EXPECT_EQ(decoded->balance, account.balance);
    EXPECT_EQ(decoded->code, account.code);
    EXPECT_EQ(decoded->code_keccak, account.code_keccak);
    EXPECT_EQ(decoded->storage.size(), account.storage.size());
    for (const auto& [slot, value] : account.storage) {
      ASSERT_TRUE(decoded->storage.contains(slot));
      EXPECT_EQ(decoded->storage.at(slot), value);
    }
  }
}

TEST(AccountRecord, RejectsNonCanonicalRecords) {
  // Wrong arity.
  {
    rlp::ListBuilder three;
    three.add_u64(1);
    three.add_u64(2);
    three.add_u64(3);
    EXPECT_FALSE(decode_account_record(three.build()).has_value());
  }
  // Storage entry with a short slot.
  {
    rlp::ListBuilder entry;
    entry.add_bytes(Bytes(31, 0xAA));
    entry.add_u64(5);
    rlp::ListBuilder storage;
    storage.add_raw(entry.build());
    rlp::ListBuilder record;
    record.add_u64(0);
    record.add_u256(U256::zero());
    record.add_bytes(BytesView{});
    record.add_raw(storage.build());
    EXPECT_FALSE(decode_account_record(record.build()).has_value());
  }
  // Slots out of order (and duplicated) are both rejected.
  for (const std::uint64_t second : {std::uint64_t{1}, std::uint64_t{2}}) {
    rlp::ListBuilder storage;
    for (const std::uint64_t s : {std::uint64_t{2}, second}) {
      rlp::ListBuilder entry;
      entry.add_bytes(slot_of(s).view());
      entry.add_u256(U256{7});
      storage.add_raw(entry.build());
    }
    rlp::ListBuilder record;
    record.add_u64(0);
    record.add_u256(U256::zero());
    record.add_bytes(BytesView{});
    record.add_raw(storage.build());
    EXPECT_FALSE(decode_account_record(record.build()).has_value());
  }
  // Zero-valued slot (never representable in the flat map).
  {
    rlp::ListBuilder entry;
    entry.add_bytes(slot_of(1).view());
    entry.add_u256(U256::zero());
    rlp::ListBuilder storage;
    storage.add_raw(entry.build());
    rlp::ListBuilder record;
    record.add_u64(0);
    record.add_u256(U256::zero());
    record.add_bytes(BytesView{});
    record.add_raw(storage.build());
    EXPECT_FALSE(decode_account_record(record.build()).has_value());
  }
  // Truncated bytes.
  Account account;
  account.nonce = 9;
  Bytes record = encode_account_record(account);
  record.pop_back();
  EXPECT_FALSE(decode_account_record(record).has_value());
}

TEST(Crc32, KnownVector) {
  const std::string data = "123456789";
  EXPECT_EQ(crc32(BytesView{reinterpret_cast<const std::uint8_t*>(data.data()),
                            data.size()}),
            0xCBF43926u);
}

// --- randomized differential workload ---------------------------------------

/// Applies one random journaled op to every db identically. Ops cover
/// create/balance/nonce/code/storage writes, SELFDESTRUCT, recreate-after-
/// destruct, snapshot/revert, and commit (where all roots are compared).
class StateFleet {
 public:
  explicit StateFleet(std::vector<StateDB*> dbs) : dbs_(std::move(dbs)) {}

  void step(Rng& rng) {
    const Address addr = addr_of(rng.next_below(24));
    switch (rng.next_below(12)) {
      case 0:
      case 1: {
        const U256 delta{1 + rng.next_below(1000)};
        for_each([&](StateDB& db) { db.add_balance(addr, delta); });
        break;
      }
      case 2:
        for_each([&](StateDB& db) { db.increment_nonce(addr); });
        break;
      case 3:
      case 4: {
        const Hash32 slot = slot_of(rng.next_below(8));
        // Zero values exercise EVM slot-clearing.
        const U256 value{rng.next_below(4) == 0 ? 0 : 1 + rng.next_u64() % 1000};
        for_each([&](StateDB& db) { db.set_storage(addr, slot, value); });
        break;
      }
      case 5: {
        Bytes code(rng.next_below(24));
        for (auto& b : code) b = static_cast<std::uint8_t>(rng.next_u64());
        for_each([&](StateDB& db) { db.set_code(addr, code); });
        break;
      }
      case 6:
        for_each([&](StateDB& db) { db.delete_account(addr); });
        break;
      case 7: {
        // Self-destruct then immediately recreate with fresh storage — the
        // old storage must not leak into the recreated account.
        const Hash32 slot = slot_of(rng.next_below(8));
        const U256 value{1 + rng.next_below(100)};
        for_each([&](StateDB& db) {
          db.delete_account(addr);
          db.create_account(addr);
          db.set_storage(addr, slot, value);
        });
        break;
      }
      case 8:
        snapshots_.push_back(take_snapshots());
        break;
      case 9:
        if (!snapshots_.empty()) {
          const auto snaps = snapshots_.back();
          snapshots_.pop_back();
          for (std::size_t i = 0; i < dbs_.size(); ++i) {
            dbs_[i]->revert_to(snaps[i]);
          }
        }
        break;
      default:
        commit_and_check();
        break;
    }
  }

  void commit_and_check() {
    snapshots_.clear();
    for_each([](StateDB& db) { db.commit(); });
    const Hash32 root = dbs_[0]->state_root();
    const Hash32 mpt = dbs_[0]->state_root_mpt();
    ASSERT_EQ(mpt, dbs_[0]->state_root_mpt_full());
    for (std::size_t i = 1; i < dbs_.size(); ++i) {
      ASSERT_EQ(dbs_[i]->state_root(), root) << "db " << i;
      ASSERT_EQ(dbs_[i]->state_root_mpt(), mpt) << "db " << i;
      ASSERT_EQ(dbs_[i]->account_count(), dbs_[0]->account_count())
          << "db " << i;
    }
  }

 private:
  template <typename Fn>
  void for_each(Fn fn) {
    for (StateDB* db : dbs_) fn(*db);
  }
  std::vector<StateView::Snapshot> take_snapshots() {
    std::vector<StateView::Snapshot> snaps;
    snaps.reserve(dbs_.size());
    for (StateDB* db : dbs_) snaps.push_back(db->snapshot());
    return snaps;
  }

  std::vector<StateDB*> dbs_;
  std::vector<std::vector<StateView::Snapshot>> snapshots_;
};

// Regression: a self-destruct followed by a recreate-over-tombstone, with the
// recreate reverted, must keep the pending backend erase. The original code
// let the create-undo's note_erased() consume the deletion's dirty mark, so
// commit() cleared the tombstone without erasing the record and the next
// fault-in resurrected the stale account (found by the differential suite).
TEST(StateBackend, RevertedRecreateOverTombstoneStillFlushesDeletion) {
  auto backend = std::make_shared<MemoryBackend>();
  StateConfig cfg;
  cfg.snapshot_capacity = 2;
  StateDB db{cfg, backend};
  StateDB reference;
  const Address victim = addr_of(7);
  for (StateDB* d : {&db, &reference}) {
    d->add_balance(victim, U256{33});
    d->set_storage(victim, slot_of(1), U256{9});
    d->commit();

    d->delete_account(victim);
    const auto mid = d->snapshot();
    d->create_account(victim);          // resurrect over the tombstone
    d->add_balance(victim, U256{1});
    d->revert_to(mid);                  // back to "deleted"
    d->commit();
    EXPECT_FALSE(d->account_exists(victim));
  }
  EXPECT_EQ(backend->get(victim), std::nullopt);
  EXPECT_EQ(db.state_root(), reference.state_root());
  EXPECT_EQ(db.state_root_mpt(), reference.state_root_mpt());

  // The double-delete variant: the second deletion sees a tombstoned-but-
  // resident account, and a full revert must restore the original.
  for (StateDB* d : {&db, &reference}) {
    d->add_balance(victim, U256{5});
    d->commit();
    const auto base = d->snapshot();
    d->delete_account(victim);
    d->create_account(victim);
    d->delete_account(victim);
    d->revert_to(base);
    d->commit();
    EXPECT_EQ(d->balance(victim), U256{5});
  }
  EXPECT_EQ(db.state_root(), reference.state_root());
}

class StateBackendDifferential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(StateBackendDifferential, AllConfigurationsAgreeAtEveryCommit) {
  const std::uint64_t seed = GetParam();
  StateDB reference;  // seed configuration

  StateConfig bounded_cfg;
  bounded_cfg.snapshot_capacity = 4;
  bounded_cfg.storage_trie_cache = 2;
  bounded_cfg.trie_node_cache_limit = 64;
  StateDB bounded{bounded_cfg, std::make_shared<MemoryBackend>()};

  StateDB unbounded{StateConfig{}, std::make_shared<MemoryBackend>()};

  const std::string log_path =
      fresh_log_path("srbb_diff_" + std::to_string(seed) + ".log");
  StateConfig log_cfg;
  log_cfg.snapshot_capacity = 2;
  StateDB logged{log_cfg, std::make_shared<LogBackend>(log_path)};

  StateFleet fleet{{&reference, &bounded, &unbounded, &logged}};
  Rng rng{seed};
  for (int step = 0; step < 300; ++step) fleet.step(rng);
  fleet.commit_and_check();
}

INSTANTIATE_TEST_SUITE_P(Seeds, StateBackendDifferential,
                         ::testing::Range(std::uint64_t{0}, std::uint64_t{24}));

// --- backend-mode behaviour --------------------------------------------------

TEST(StateBackend, FaultsRecordsInOnDemand) {
  auto backend = std::make_shared<MemoryBackend>();
  StateConfig cfg;
  cfg.snapshot_capacity = 1;
  StateDB db{cfg, backend};
  for (std::uint64_t i = 0; i < 8; ++i) {
    db.add_balance(addr_of(i), U256{100 + i});
  }
  db.commit();
  EXPECT_LE(db.resident_accounts(), 1u);
  EXPECT_EQ(db.account_count(), 8u);
  // Evicted accounts read back correctly through fault-in.
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(db.balance(addr_of(i)), U256{100 + i}) << i;
  }
  const StateDB::BackingStats stats = db.backing_stats();
  EXPECT_GT(stats.faults, 0u);
  EXPECT_GT(stats.evictions, 0u);
  // Reads of never-existing accounts miss everywhere.
  EXPECT_FALSE(db.account_exists(addr_of(999)));
  EXPECT_GT(db.backing_stats().misses, 0u);
}

TEST(StateBackend, PrefetchPopulatesResidentCache) {
  auto backend = std::make_shared<MemoryBackend>();
  StateConfig cfg;
  cfg.snapshot_capacity = 1;
  StateDB db{cfg, backend};
  db.add_balance(addr_of(1), U256{5});
  db.add_balance(addr_of(2), U256{6});
  db.commit();
  EXPECT_LE(db.resident_accounts(), 1u);
  db.prefetch(addr_of(1));
  db.prefetch(addr_of(2));
  EXPECT_EQ(db.resident_accounts(), 2u);  // dirty-free faults accumulate
  EXPECT_EQ(db.balance(addr_of(1)), U256{5});
}

TEST(StateBackend, DeletedAccountIsNotResurrectedByFaultIn) {
  auto backend = std::make_shared<MemoryBackend>();
  StateConfig cfg;
  cfg.snapshot_capacity = 1;
  StateDB db{cfg, backend};
  db.add_balance(addr_of(1), U256{5});
  db.add_balance(addr_of(2), U256{6});
  db.commit();  // both flushed; at most one resident
  db.delete_account(addr_of(1));
  // Before the deletion commits, the backend still holds the record; the
  // tombstone must hide it.
  EXPECT_FALSE(db.account_exists(addr_of(1)));
  EXPECT_EQ(db.account_count(), 1u);
  db.commit();
  EXPECT_FALSE(db.account_exists(addr_of(1)));
  EXPECT_EQ(backend->size(), 1u);
  // Reverted deletion restores visibility.
  db.add_balance(addr_of(2), U256{1});
  const auto snap = db.snapshot();
  db.delete_account(addr_of(2));
  EXPECT_FALSE(db.account_exists(addr_of(2)));
  db.revert_to(snap);
  EXPECT_TRUE(db.account_exists(addr_of(2)));
  EXPECT_EQ(db.balance(addr_of(2)), U256{7});
}

TEST(StateBackend, ConcurrentFaultInIsSafe) {
  // Parallel speculation faults records in concurrently through the shared
  // fault lock; the values each thread observes must be exact. Run under
  // TSan via tools/tsan_check.sh.
  auto backend = std::make_shared<MemoryBackend>();
  StateConfig cfg;
  cfg.snapshot_capacity = 16;
  StateDB db{cfg, backend};
  constexpr std::uint64_t kAccounts = 256;
  for (std::uint64_t i = 0; i < kAccounts; ++i) {
    db.add_balance(addr_of(i), U256{1000 + i});
  }
  db.commit();  // evicts down to 16 resident

  std::vector<std::thread> readers;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&db, &mismatches, t] {
      Rng rng{static_cast<std::uint64_t>(t)};
      for (int i = 0; i < 2000; ++i) {
        const std::uint64_t idx = rng.next_below(kAccounts);
        if (db.balance(addr_of(idx)) != U256{1000 + idx}) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(db.backing_stats().faults, 0u);
}

TEST(StateBackend, OverlaySpeculationOverBackedState) {
  auto backend = std::make_shared<MemoryBackend>();
  StateConfig cfg;
  cfg.snapshot_capacity = 1;
  StateDB db{cfg, backend};
  StateDB reference;
  for (std::uint64_t i = 0; i < 6; ++i) {
    db.add_balance(addr_of(i), U256{50});
    reference.add_balance(addr_of(i), U256{50});
  }
  db.commit();
  reference.commit();

  // Speculate over the backed state: reads fault records in under the lock.
  OverlayState overlay{db};
  EXPECT_EQ(overlay.balance(addr_of(3)), U256{50});
  overlay.set_balance(addr_of(3), U256{20});
  overlay.add_balance(addr_of(4), U256{30});
  EXPECT_TRUE(overlay.validate(db));
  overlay.apply_to(db);
  db.commit();

  reference.set_balance(addr_of(3), U256{20});
  reference.add_balance(addr_of(4), U256{30});
  reference.commit();
  EXPECT_EQ(db.state_root(), reference.state_root());
  EXPECT_EQ(db.state_root_mpt(), reference.state_root_mpt());
}

// --- log backend: reopen, crash safety, compaction ---------------------------

TEST(LogBackendReopen, StateSurvivesCloseAndReopen) {
  const std::string path = fresh_log_path("srbb_reopen.log");
  StateDB reference;
  Hash32 root;
  Hash32 mpt_root;
  {
    StateConfig cfg;
    cfg.snapshot_capacity = 3;
    StateDB db{cfg, std::make_shared<LogBackend>(path)};
    StateFleet fleet{{&reference, &db}};
    Rng rng{42};
    for (int step = 0; step < 200; ++step) fleet.step(rng);
    fleet.commit_and_check();
    root = db.state_root();
    mpt_root = db.state_root_mpt();
  }  // db and backend destroyed; the log file holds the state

  StateDB reopened{StateConfig{}, std::make_shared<LogBackend>(path)};
  EXPECT_EQ(reopened.state_root(), root);
  EXPECT_EQ(reopened.state_root_mpt(), mpt_root);
  EXPECT_EQ(reopened.state_root_mpt_full(), mpt_root);
  EXPECT_EQ(reopened.account_count(), reference.account_count());
}

TEST(LogBackendRecovery, TornTailIsDroppedOnReopen) {
  const std::string path = fresh_log_path("srbb_torn.log");
  Hash32 root;
  {
    StateDB db{StateConfig{}, std::make_shared<LogBackend>(path)};
    db.add_balance(addr_of(1), U256{11});
    db.set_storage(addr_of(1), slot_of(1), U256{7});
    db.add_balance(addr_of(2), U256{22});
    db.commit();
    root = db.state_root();
  }
  // A crash mid-append leaves a torn suffix.
  {
    std::ofstream out{path, std::ios::binary | std::ios::app};
    const char garbage[] = {0x00, 0x14, 0x00};  // looks like a frame start
    out.write(garbage, sizeof garbage);
  }
  auto backend = std::make_shared<LogBackend>(path);
  EXPECT_GT(backend->stats().torn_bytes_dropped, 0u);
  StateDB reopened{StateConfig{}, backend};
  EXPECT_EQ(reopened.state_root(), root);
}

TEST(LogBackendRecovery, CorruptFinalRecordRollsBackToPreviousFlush) {
  const std::string path = fresh_log_path("srbb_corrupt.log");
  Hash32 root_before_last;
  std::uint64_t bytes_before_last = 0;
  {
    StateDB db{StateConfig{}, std::make_shared<LogBackend>(path)};
    db.add_balance(addr_of(1), U256{11});
    db.commit();
    root_before_last = db.state_root();
    bytes_before_last = static_cast<LogBackend*>(db.backend())->file_bytes();
    db.add_balance(addr_of(2), U256{22});
    db.commit();
  }
  // Flip the last byte (inside the final record's CRC): that record must be
  // dropped, restoring exactly the previous durable state.
  {
    std::fstream file{path, std::ios::binary | std::ios::in | std::ios::out};
    file.seekp(-1, std::ios::end);
    file.put('\x5A');
  }
  auto backend = std::make_shared<LogBackend>(path);
  EXPECT_GT(backend->stats().torn_bytes_dropped, 0u);
  EXPECT_EQ(backend->file_bytes(), bytes_before_last);
  StateDB reopened{StateConfig{}, backend};
  EXPECT_EQ(reopened.state_root(), root_before_last);
  EXPECT_FALSE(reopened.account_exists(addr_of(2)));
}

TEST(LogBackendCompaction, DropsSupersededRecordsAndPreservesState) {
  const std::string path = fresh_log_path("srbb_compact.log");
  auto backend = std::make_shared<LogBackend>(path);
  StateDB db{StateConfig{}, backend};
  for (int round = 0; round < 20; ++round) {
    db.add_balance(addr_of(1), U256{1});
    db.add_balance(addr_of(2), U256{2});
    db.commit();
  }
  db.delete_account(addr_of(2));
  db.commit();
  const Hash32 root = db.state_root();
  const std::uint64_t before = backend->file_bytes();
  backend->compact();
  EXPECT_LT(backend->file_bytes(), before);
  EXPECT_EQ(backend->stats().compactions, 1u);
  EXPECT_EQ(db.state_root(), root);
  EXPECT_EQ(db.balance(addr_of(1)), U256{20});
  EXPECT_FALSE(db.account_exists(addr_of(2)));

  // The compacted file reopens to the same state.
  backend.reset();
  StateDB reopened{StateConfig{}, std::make_shared<LogBackend>(path)};
  EXPECT_EQ(reopened.state_root(), root);
}

}  // namespace
}  // namespace srbb::state

// --- deferred root computation (oracle wiring) -------------------------------

namespace srbb::node {
namespace {

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::fast_sim();
}

txn::BlockPtr transfer_block(std::uint64_t index, std::uint64_t nonce) {
  txn::TxParams params;
  params.nonce = nonce;
  params.gas_limit = 30'000;
  params.to = scheme().make_identity(4242).address();
  params.value = U256{10};
  auto tx = txn::make_tx_ptr(
      txn::make_signed(params, scheme().make_identity(1), scheme()));
  return std::make_shared<const txn::Block>(
      txn::make_block(index, 0, 0, Hash32{}, {std::move(tx)},
                      scheme().make_identity(0), scheme()));
}

GenesisSpec funded_genesis() {
  GenesisSpec genesis;
  genesis.accounts.push_back(
      {scheme().make_identity(1).address(), U256{1'000'000'000}});
  return genesis;
}

TEST(DeferredRoot, RepublishesBetweenIntervalBoundaries) {
  state::StateConfig cfg;
  cfg.defer_root = true;
  cfg.root_interval = 4;
  ExecutionOracle deferred{funded_genesis(), {}, scheme(), cfg};
  ExecutionOracle eager{funded_genesis(), {}, scheme()};

  std::vector<Hash32> deferred_roots;
  std::vector<Hash32> eager_roots;
  for (std::uint64_t index = 0; index < 9; ++index) {
    const std::vector<txn::BlockPtr> blocks = {transfer_block(index, index)};
    deferred_roots.push_back(deferred.execute(index, blocks).state_root);
    eager_roots.push_back(eager.execute(index, blocks).state_root);
  }

  // Boundaries recompute and agree with the eager oracle; in between, the
  // last boundary root is republished even though the state advanced.
  for (std::uint64_t index = 0; index < 9; ++index) {
    if (index % cfg.root_interval == 0) {
      EXPECT_EQ(deferred_roots[index], eager_roots[index]) << index;
    } else {
      EXPECT_EQ(deferred_roots[index],
                deferred_roots[index - index % cfg.root_interval])
          << index;
      EXPECT_NE(deferred_roots[index], eager_roots[index]) << index;
    }
  }
  EXPECT_EQ(deferred.root_stats().computed, 3u);  // indices 0, 4, 8
  EXPECT_EQ(deferred.root_stats().deferred, 6u);
  EXPECT_EQ(eager.root_stats().computed, 9u);
  EXPECT_EQ(eager.root_stats().deferred, 0u);
  // The underlying states are identical regardless of publication cadence.
  EXPECT_EQ(deferred.db().state_root(), eager.db().state_root());
}

TEST(DeferredRoot, ResetClearsRootMemo) {
  state::StateConfig cfg;
  cfg.defer_root = true;
  cfg.root_interval = 8;
  ExecutionOracle oracle{funded_genesis(), {}, scheme(), cfg};
  const Hash32 genesis_root = oracle.db().state_root();
  oracle.execute(0, {transfer_block(0, 0)});
  oracle.reset();
  EXPECT_EQ(oracle.db().state_root(), genesis_root);
  EXPECT_EQ(oracle.root_stats().computed, 0u);
  // Index 0 after reset computes afresh (no stale memo republished).
  const Hash32 root = oracle.execute(0, {transfer_block(0, 0)}).state_root;
  EXPECT_EQ(root, oracle.db().state_root());
}

}  // namespace
}  // namespace srbb::node
