// Inter-contract call semantics: CALL / STATICCALL / DELEGATECALL context
// rules, nested CREATE, return-data plumbing, value flow, the 63/64 gas
// rule and SELFDESTRUCT.
#include <gtest/gtest.h>

#include "evm/asm.hpp"
#include "evm/interpreter.hpp"

namespace srbb::evm {
namespace {

using state::StateDB;

Address addr(std::uint8_t tag) {
  Address a;
  a[19] = tag;
  return a;
}

const Address kCaller = addr(0xAA);
const Address kA = addr(0x0A);  // outer contract
const Address kB = addr(0x0B);  // inner contract

struct World {
  StateDB db;
  BlockContext block;
  TxContext tx;

  World() { db.add_balance(kCaller, U256{1'000'000}); }

  void install(const Address& where, const std::string& source) {
    auto code = assemble(source);
    ASSERT_TRUE(code.is_ok()) << code.message();
    db.set_code(where, code.value());
  }

  ExecResult run(const Address& to, std::uint64_t gas = 1'000'000,
                 U256 value = U256::zero(), Bytes data = {}) {
    Evm evm{db, block, tx};
    Message msg;
    msg.caller = kCaller;
    msg.to = to;
    msg.gas = gas;
    msg.value = value;
    msg.data = std::move(data);
    return evm.execute(msg);
  }
};

// Inner contract: stores CALLER at slot 0, CALLVALUE at slot 1, returns 42.
constexpr const char* kInner = R"(
  CALLER PUSH1 0 SSTORE
  CALLVALUE PUSH1 1 SSTORE
  PUSH1 42 PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN
)";

TEST(EvmCall, CallSwitchesContextToCallee) {
  World w;
  w.install(kB, kInner);
  // Outer: call B with value 5, copy return word to output.
  w.install(kA, R"(
    PUSH1 32 PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 5 PUSH1 0x0B GAS CALL
    POP
    PUSH1 32 PUSH1 0 RETURN
  )");
  w.db.add_balance(kA, U256{100});
  const ExecResult r = w.run(kA);
  ASSERT_TRUE(r.ok()) << to_string(r.status);
  EXPECT_EQ(U256::from_be(r.output), U256{42});
  // Inside B: caller is A, storage written to B, value moved A -> B.
  EXPECT_EQ(w.db.storage(kB, U256{0}.to_hash()), U256::from_be(kA.view()));
  EXPECT_EQ(w.db.storage(kB, U256{1}.to_hash()), U256{5});
  EXPECT_EQ(w.db.balance(kB), U256{5});
  EXPECT_EQ(w.db.balance(kA), U256{95});
}

TEST(EvmCall, DelegatecallKeepsCallerContextAndStorage) {
  World w;
  w.install(kB, kInner);
  w.install(kA, R"(
    PUSH1 32 PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0x0B GAS DELEGATECALL
    POP
    PUSH1 32 PUSH1 0 RETURN
  )");
  const ExecResult r = w.run(kA, 1'000'000, U256{7});
  ASSERT_TRUE(r.ok()) << to_string(r.status);
  EXPECT_EQ(U256::from_be(r.output), U256{42});
  // B's code ran in A's context: storage landed in A, caller is the EOA,
  // value is the original call value, and B is untouched.
  EXPECT_EQ(w.db.storage(kA, U256{0}.to_hash()), U256::from_be(kCaller.view()));
  EXPECT_EQ(w.db.storage(kA, U256{1}.to_hash()), U256{7});
  EXPECT_EQ(w.db.storage(kB, U256{0}.to_hash()), U256::zero());
}

TEST(EvmCall, StaticcallBlocksWrites) {
  World w;
  w.install(kB, kInner);  // kInner writes storage -> must fail statically
  w.install(kA, R"(
    PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0x0B GAS STATICCALL
    PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN
  )");
  const ExecResult r = w.run(kA);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(U256::from_be(r.output), U256::zero());  // child failed
  EXPECT_EQ(w.db.storage(kB, U256{0}.to_hash()), U256::zero());
}

TEST(EvmCall, StaticContextPropagatesThroughNestedCall) {
  World w;
  w.install(kB, kInner);
  // A does a *plain* CALL to B, but A itself is entered via STATICCALL:
  // the write in B must still fail.
  w.install(kA, R"(
    PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0x0B GAS CALL
    PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN
  )");
  Address outer = addr(0x0C);
  w.install(outer, R"(
    PUSH1 32 PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0x0A GAS STATICCALL
    POP
    PUSH1 32 PUSH1 0 RETURN
  )");
  const ExecResult r = w.run(outer);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(U256::from_be(r.output), U256::zero());  // inner write rejected
}

TEST(EvmCall, ReturndataSizeAndCopy) {
  World w;
  w.install(kB, kInner);
  w.install(kA, R"(
    PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0x0B GAS CALL
    POP
    RETURNDATASIZE PUSH1 0 MSTORE
    PUSH1 32 PUSH1 0 PUSH1 32 RETURNDATACOPY
    PUSH1 64 PUSH1 0 RETURN
  )");
  const ExecResult r = w.run(kA);
  ASSERT_TRUE(r.ok()) << to_string(r.status);
  BytesView out{r.output};
  EXPECT_EQ(U256::from_be(out.subspan(0, 32)), U256{32});  // returndatasize
  EXPECT_EQ(U256::from_be(out.subspan(32, 32)), U256{42});  // copied data
}

TEST(EvmCall, FailedChildRevertsItsStateOnly) {
  World w;
  // B writes then reverts.
  w.install(kB, "PUSH1 9 PUSH1 0 SSTORE PUSH1 0 PUSH1 0 REVERT");
  // A writes slot 7, calls B, stores B's success flag in slot 8.
  w.install(kA, R"(
    PUSH1 1 PUSH1 7 SSTORE
    PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0x0B GAS CALL
    PUSH1 8 SSTORE
    STOP
  )");
  const ExecResult r = w.run(kA);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(w.db.storage(kA, U256{7}.to_hash()), U256::one());   // kept
  EXPECT_EQ(w.db.storage(kA, U256{8}.to_hash()), U256::zero());  // failed
  EXPECT_EQ(w.db.storage(kB, U256{0}.to_hash()), U256::zero());  // reverted
}

TEST(EvmCall, NestedCreateDeploysRuntime) {
  World w;
  // Factory: deploys 2-byte runtime {PUSH1 0? no...} — runtime must be
  // returned by init code. Init: returns a single STOP byte.
  //   mstore8(0, 0x00)            ; runtime = STOP
  //   create(0, 0, 1)             ; value 0, offset 0, size 1 of init? init
  // CREATE runs the init code; so memory holds INIT code. Use init that
  // returns one zero byte: PUSH1 1 PUSH1 0 RETURN  -> 0x60 0x01 0x60 0x00 0xF3
  w.install(kA, R"(
    PUSH1 0x60 PUSH1 0 MSTORE8
    PUSH1 0x01 PUSH1 1 MSTORE8
    PUSH1 0x60 PUSH1 2 MSTORE8
    PUSH1 0x00 PUSH1 3 MSTORE8
    PUSH1 0xf3 PUSH1 4 MSTORE8
    PUSH1 5 PUSH1 0 PUSH1 0 CREATE
    PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN
  )");
  const ExecResult r = w.run(kA);
  ASSERT_TRUE(r.ok()) << to_string(r.status);
  const U256 created_word = U256::from_be(r.output);
  EXPECT_FALSE(created_word.is_zero());
  // The created account holds the 1-byte runtime (a single zero byte).
  Address created;
  const Bytes be = created_word.be_bytes();
  std::copy(be.begin() + 12, be.end(), created.begin());
  EXPECT_EQ(w.db.code(created), Bytes{0x00});
  EXPECT_EQ(w.db.nonce(created), 1u);
}

TEST(EvmCall, GasForwardingLeavesReserve) {
  World w;
  // B burns everything it gets (infinite loop until out of gas).
  w.install(kB, "loop: PUSH @loop JUMP");
  w.install(kA, R"(
    PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0x0B GAS CALL
    PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN
  )");
  const ExecResult r = w.run(kA, 200'000);
  // A survives thanks to the 1/64 reserve and reports B's failure.
  ASSERT_TRUE(r.ok()) << to_string(r.status);
  EXPECT_EQ(U256::from_be(r.output), U256::zero());
  EXPECT_GT(r.gas_left, 0u);
}

TEST(EvmCall, ExtcodesizeAndExtcodecopy) {
  World w;
  w.install(kB, "STOP");  // 1-byte code at B
  w.install(kA, R"(
    PUSH1 0x0B EXTCODESIZE PUSH1 0 MSTORE
    PUSH1 32 PUSH1 0 PUSH1 32 PUSH1 0x0B EXTCODECOPY
    PUSH1 64 PUSH1 0 RETURN
  )");
  const ExecResult r = w.run(kA);
  ASSERT_TRUE(r.ok()) << to_string(r.status);
  BytesView out{r.output};
  EXPECT_EQ(U256::from_be(out.subspan(0, 32)), U256::one());  // size of B
  // Copied code: first byte is STOP (0x00), rest zero-padded.
  for (std::size_t i = 32; i < 64; ++i) EXPECT_EQ(out[i], 0x00);
}

TEST(EvmCall, ExtcodecopyOfEmptyAccountZeroFills) {
  World w;
  w.install(kA, R"(
    PUSH1 0xEE PUSH1 0 MSTORE8
    PUSH1 1 PUSH1 0 PUSH1 0 PUSH1 0x77 EXTCODECOPY
    PUSH1 32 PUSH1 0 RETURN
  )");
  const ExecResult r = w.run(kA);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.output[0], 0x00);  // the 0xEE byte was overwritten with zero
}

TEST(EvmCall, SelfdestructMovesBalanceAndRemovesAccount) {
  World w;
  w.install(kB, "PUSH1 0x0A SELFDESTRUCT");
  w.db.add_balance(kB, U256{77});
  const ExecResult r = w.run(kB);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(w.db.account_exists(kB));
  EXPECT_EQ(w.db.balance(kA), U256{77});
}

TEST(EvmCall, CallDepthLimitEnforced) {
  World w;
  // A calls itself recursively; depth must bottom out without crashing.
  w.install(kA, R"(
    PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0x0A GAS CALL
    POP STOP
  )");
  const ExecResult r = w.run(kA, 10'000'000);
  EXPECT_TRUE(r.ok());  // outermost frame still succeeds
}

}  // namespace
}  // namespace srbb::evm
