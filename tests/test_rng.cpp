#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace srbb {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng{5};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng{6};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng rng{8};
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng{9};
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, BoolProbability) {
  Rng rng{10};
  int trues = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) trues += rng.next_bool(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(trues) / n, 0.25, 0.02);
}

TEST(Rng, ForkIndependence) {
  // Consuming from a fork must not change the parent's future output.
  Rng a{11};
  Rng b{11};
  Rng fork_a = a.fork();
  Rng fork_b = b.fork();
  for (int i = 0; i < 10; ++i) (void)fork_a.next_u64();  // drain one fork only
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  // And the forks themselves agree.
  Rng c{11};
  Rng fork_c = c.fork();
  for (int i = 0; i < 10; ++i) (void)fork_c.next_u64();
  EXPECT_EQ(fork_c.next_u64(), fork_a.next_u64());
  (void)fork_b;
}

}  // namespace
}  // namespace srbb
