// Chaos harness (ISSUE: robustness): the SRBB validator network under
// scripted and randomized fault injection. Every scenario asserts the two
// properties of DESIGN.md §7:
//
//  safety   — correct validators never diverge: their chain digests agree on
//             the common committed prefix and replicated execution converges
//             to identical state roots;
//  liveness — once the plan's faults heal (partitions lift, crashed nodes
//             restart and catch up), the commit frontier advances again
//             within a bound.
//
// Runs are pure functions of (workload seed, fault seed): each scenario can
// be replayed bit-for-bit, which the determinism tests check by running the
// same seed twice and comparing run fingerprints. tools/chaos_soak.sh sweeps
// seed ranges through these tests via the SRBB_CHAOS_SEED_BASE /
// SRBB_CHAOS_SEEDS environment overrides.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"
#include "obs/trace.hpp"
#include "sim/fault.hpp"
#include "srbb/validator.hpp"

namespace srbb::node {
namespace {

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::fast_sim();
}

// Seed-range overrides so the soak script can sweep without recompiling.
std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

class ChaosClient : public sim::SimNode {
 public:
  using sim::SimNode::SimNode;

  void handle_message(sim::NodeId, const sim::MessagePtr& message) override {
    if (const auto* ack = dynamic_cast<const CommitAckMsg*>(message.get())) {
      if (acked_.insert(ack->tx_hash).second) ++commits_observed;
    }
  }

  void submit(sim::NodeId validator, const txn::TxPtr& tx) {
    auto msg = std::make_shared<ClientTxMsg>();
    msg->tx = tx;
    send(validator, msg);
  }

  std::uint64_t commits_observed = 0;

 private:
  std::set<Hash32> acked_;
};

struct ChaosOptions {
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  bool tvpr = true;
  bool parallel_execution = false;  // ChaosParallel.* (TSan subset) sets this
  /// Adaptive membership (DESIGN.md §13): reliability scoring + the bounded
  /// disabled list. ChaosChurn.* scenarios set this.
  bool adaptive = false;
  SimDuration rebroadcast_interval = millis(200);
  sim::FaultPlan plan;
  // Workload: `tx_count` transfers, one every `tx_interval`, submitted
  // round-robin across validators starting at t = 100ms.
  std::size_t tx_count = 60;
  SimDuration tx_interval = millis(40);
  std::size_t accounts = 8;
  /// Commit-path trace sink (not owned); wired through the network's fault
  /// attribution and every validator when non-null.
  obs::TraceSink* trace = nullptr;
};

struct ChaosNet {
  sim::Simulation sim;
  std::unique_ptr<sim::Network> network;
  sim::FaultInjector injector;
  sim::GossipOverlay overlay;
  GenesisSpec genesis;
  std::shared_ptr<rpm::RewardPenaltyMechanism> rpm_contract;
  std::vector<std::unique_ptr<ValidatorNode>> validators;
  std::unique_ptr<ChaosClient> client;
  std::vector<crypto::Identity> senders;

  explicit ChaosNet(const ChaosOptions& opts)
      : injector(opts.plan), overlay(opts.n, 4, 7) {
    sim::NetworkConfig net_config;
    net_config.latency = sim::LatencyModel::uniform(1, millis(5));
    network = std::make_unique<sim::Network>(sim, net_config);
    network->set_fault_injector(&injector);
    network->set_trace(opts.trace);

    for (std::size_t i = 0; i < opts.accounts; ++i) {
      senders.push_back(scheme().make_identity(1000 + i));
      genesis.accounts.push_back(
          {senders.back().address(), U256{1'000'000'000}});
    }

    rpm::RpmConfig rpm_config;
    rpm_config.n = opts.n;
    rpm_config.f = opts.f;
    rpm_config.scheme = &scheme();
    rpm_contract = std::make_shared<rpm::RewardPenaltyMechanism>(rpm_config);

    evm::BlockContext block_template;
    for (std::uint32_t rank = 0; rank < opts.n; ++rank) {
      ValidatorConfig config;
      config.n = opts.n;
      config.f = opts.f;
      config.self = rank;
      config.tvpr = opts.tvpr;
      config.rpm = false;  // shared RPM contract + crash replay don't mix
      config.scheme = &scheme();
      config.min_block_interval = millis(100);
      config.proposal_timeout = millis(300);
      config.rebroadcast_interval = opts.rebroadcast_interval;
      config.oracle_private = true;  // replicated execution; reset on crash
      // The default sync backoff (250ms << 4 = 4s cap) is sized for WAN
      // RTTs; at the sim's millisecond RTTs an unlucky streak of dropped
      // responses would push the next retry past the liveness probe window.
      config.sync_request_timeout = millis(150);
      config.sync_backoff_cap = 2;
      config.adaptive_membership = opts.adaptive;
      config.trace = opts.trace;
      auto oracle = std::make_shared<ExecutionOracle>(genesis, block_template,
                                                      scheme());
      if (opts.parallel_execution) {
        oracle->exec_config().parallel = true;
        oracle->exec_config().workers = 2;
      }
      validators.push_back(std::make_unique<ValidatorNode>(
          sim, rank, 0, config, std::move(oracle), rpm_contract, &overlay));
      network->attach(validators.back().get());
    }
    client = std::make_unique<ChaosClient>(sim, opts.n, 0u);
    network->attach(client.get());

    injector.arm(
        sim,
        [this](sim::NodeId node) {
          if (node < validators.size()) validators[node]->crash();
        },
        [this](sim::NodeId node) {
          if (node < validators.size()) validators[node]->restart();
        });

    for (auto& validator : validators) validator->start();

    // Deterministic workload: fixed submission times, round-robin target.
    for (std::size_t i = 0; i < opts.tx_count; ++i) {
      const std::size_t sender = i % opts.accounts;
      const std::uint64_t nonce = i / opts.accounts;
      const sim::NodeId target =
          static_cast<sim::NodeId>(i % validators.size());
      const SimTime when =
          millis(100) + static_cast<SimDuration>(i) * opts.tx_interval;
      txn::TxParams params;
      params.nonce = nonce;
      params.to = scheme().make_identity(5).address();
      params.value = U256{100};
      const txn::TxPtr tx = txn::make_tx_ptr(
          txn::make_signed(params, senders[sender], scheme()));
      sim.schedule_at(when, [this, target, tx] { client->submit(target, tx); });
    }
  }

  void run_until(SimTime deadline) { sim.run_until(deadline); }

  std::uint64_t min_height() const {
    std::uint64_t height = UINT64_MAX;
    for (const auto& validator : validators) {
      height = std::min(height, validator->chain_height());
    }
    return height;
  }

  /// Commit frontier over the validators that are up (crashed nodes sit at
  /// height 0 after the wipe and would mask the live committee's progress).
  /// `skip` additionally excludes one rank (e.g. a flapping node that is
  /// technically up but perpetually resyncing).
  std::uint64_t live_min_height(std::uint32_t skip = UINT32_MAX) const {
    std::uint64_t height = UINT64_MAX;
    for (std::size_t i = 0; i < validators.size(); ++i) {
      if (i == skip || validators[i]->crashed()) continue;
      height = std::min(height, validators[i]->chain_height());
    }
    return height == UINT64_MAX ? 0 : height;
  }

  /// Per-validator progress snapshot, printed when SRBB_CHAOS_DEBUG is set.
  void debug_dump() const {
    if (std::getenv("SRBB_CHAOS_DEBUG") == nullptr) return;
    for (std::size_t i = 0; i < validators.size(); ++i) {
      const auto& v = *validators[i];
      std::printf(
          "v%zu h=%llu crashed=%d syncing=%d synced=%llu committed=%llu "
          "sync_req_served=%llu fetched=%llu timeouts=%llu\n",
          i, (unsigned long long)v.chain_height(), v.crashed(), v.syncing(),
          (unsigned long long)v.metrics().superblocks_synced,
          (unsigned long long)v.metrics().superblocks_committed,
          (unsigned long long)v.metrics().sync_requests_served,
          (unsigned long long)v.sync_stats().superblocks_fetched,
          (unsigned long long)v.sync_stats().timeouts);
      std::printf("   crashes=%llu restarts=%llu sync_active=%d next=%llu "
                  "target=%llu\n",
                  (unsigned long long)v.metrics().crashes,
                  (unsigned long long)v.metrics().restarts,
                  v.catch_up().active(),
                  (unsigned long long)v.catch_up().next_index(),
                  (unsigned long long)v.catch_up().target_height());
      const auto* inst = v.instance(v.chain_height());
      if (inst != nullptr) {
        std::printf("   round=%llu complete=%d decided=%u ones=%u\n",
                    (unsigned long long)v.current_round(), inst->complete(),
                    inst->decided_count(), inst->ones_decided());
        for (std::uint32_t s = 0; s < 4; ++s) {
          const auto sd = inst->slot_debug(s);
          std::printf(
              "     slot%u dec=%d val=%d blk=%d dlv=%d pull=%d ech=%zu "
              "bst=%d brnd=%u dv0=%zu dv1=%zu\n",
              s, sd.bin_decided, sd.bin_value, sd.has_block, sd.delivered,
              sd.pulling, sd.echoers, sd.bin_started, sd.bin_round,
              sd.decided_votes[0], sd.decided_votes[1]);
        }
      } else {
        std::printf("   round=%llu no-instance\n",
                    (unsigned long long)v.current_round());
      }
    }
  }

  /// Safety (Def. 1 agreement): every pair of validators agrees on the
  /// common prefix of chain digests, and replicated execution produced the
  /// same digest (the digest folds in the state root) at every height.
  void expect_no_divergence() const {
    for (std::size_t a = 0; a < validators.size(); ++a) {
      for (std::size_t b = a + 1; b < validators.size(); ++b) {
        const auto& ca = validators[a]->chain();
        const auto& cb = validators[b]->chain();
        const std::size_t common = std::min(ca.size(), cb.size());
        for (std::size_t i = 0; i < common; ++i) {
          ASSERT_EQ(ca[i], cb[i])
              << "chain divergence between validators " << a << " and " << b
              << " at height " << i;
        }
      }
    }
  }

  /// Bit-for-bit run fingerprint: chains, state roots, and the counters that
  /// summarize every fault decision and recovery action.
  Hash32 fingerprint() const {
    crypto::Sha256 digest;
    const auto fold_u64 = [&digest](std::uint64_t value) {
      std::array<std::uint8_t, 8> bytes{};
      for (std::size_t i = 0; i < 8; ++i) {
        bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
      }
      digest.update(BytesView{bytes.data(), bytes.size()});
    };
    for (const auto& validator : validators) {
      for (const Hash32& link : validator->chain()) digest.update(link.view());
      digest.update(validator->last_state_root().view());
      fold_u64(validator->chain_height());
      const ValidatorNode::Metrics& m = validator->metrics();
      fold_u64(m.superblocks_committed);
      fold_u64(m.txs_committed_valid);
      fold_u64(m.txs_discarded_invalid);
      fold_u64(m.gossip_dups_suppressed);
      fold_u64(m.crashes);
      fold_u64(m.restarts);
      fold_u64(m.superblocks_synced);
      fold_u64(m.membership_disables);
      fold_u64(m.membership_readmissions);
      fold_u64(m.membership_removals);
      // Byte-determinism of disabling/re-admission: the tracker digest folds
      // scores, streaks, statuses, and the full event log.
      if (validator->reliability() != nullptr) {
        digest.update(validator->reliability()->fingerprint().view());
      }
      const sim::NodeStats& s = validator->stats();
      fold_u64(s.messages_sent);
      fold_u64(s.messages_received);
      fold_u64(s.messages_dropped);
      fold_u64(s.messages_duplicated);
      fold_u64(s.partition_blocked);
    }
    const sim::FaultStats& fs = injector.stats();
    fold_u64(fs.dropped);
    fold_u64(fs.duplicated);
    fold_u64(fs.reordered);
    fold_u64(fs.partition_blocked);
    fold_u64(fs.crash_blocked);
    fold_u64(client->commits_observed);
    return digest.finish();
  }
};

// ---------------------------------------------------------------------------
// FaultInjector unit behaviour
// ---------------------------------------------------------------------------

TEST(FaultInjectorUnit, CertainDropAlwaysDropsAndQuietAlwaysDelivers) {
  sim::FaultPlan drop_all;
  drop_all.default_link.drop = 1.0;
  sim::FaultInjector dropper{drop_all};
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(dropper.judge(0, 1, millis(i)).deliver);
  }
  EXPECT_EQ(dropper.stats().dropped, 64u);

  sim::FaultInjector quiet{sim::FaultPlan{}};
  for (int i = 0; i < 64; ++i) {
    const auto verdict = quiet.judge(0, 1, millis(i));
    EXPECT_TRUE(verdict.deliver);
    EXPECT_EQ(verdict.copies, 1u);
    EXPECT_EQ(verdict.extra_delay, 0u);
  }
}

TEST(FaultInjectorUnit, SymmetricPartitionBlocksBothWaysAndHeals) {
  sim::FaultPlan plan;
  plan.partitions.push_back({seconds(1), seconds(2), {0, 1}, false});
  sim::FaultInjector injector{plan};

  EXPECT_FALSE(injector.link_blocked(0, 2, millis(500)));
  EXPECT_TRUE(injector.link_blocked(0, 2, millis(1500)));   // island -> out
  EXPECT_TRUE(injector.link_blocked(2, 0, millis(1500)));   // out -> island
  EXPECT_FALSE(injector.link_blocked(0, 1, millis(1500)));  // intra-island
  EXPECT_FALSE(injector.link_blocked(2, 3, millis(1500)));  // intra-outside
  EXPECT_FALSE(injector.link_blocked(0, 2, millis(2500)));  // healed
}

TEST(FaultInjectorUnit, AsymmetricPartitionBlocksOnlyOutbound) {
  sim::FaultPlan plan;
  plan.partitions.push_back({seconds(1), seconds(2), {0}, true});
  sim::FaultInjector injector{plan};

  EXPECT_TRUE(injector.link_blocked(0, 2, millis(1500)));   // island mute
  EXPECT_FALSE(injector.link_blocked(2, 0, millis(1500)));  // still hears
}

TEST(FaultInjectorUnit, CrashWindowTracksDownNodes) {
  sim::FaultPlan plan;
  plan.crashes.push_back({2, seconds(1), seconds(3)});
  sim::FaultInjector injector{plan};

  EXPECT_FALSE(injector.node_down(2, millis(999)));
  EXPECT_TRUE(injector.node_down(2, seconds(1)));
  EXPECT_TRUE(injector.node_down(2, millis(2999)));
  EXPECT_FALSE(injector.node_down(2, seconds(3)));  // restarted
  EXPECT_FALSE(injector.node_down(1, seconds(2)));  // other nodes up
  // Sends to (and from) a down node are blocked, not randomly dropped.
  EXPECT_FALSE(injector.judge(0, 2, seconds(2)).deliver);
  EXPECT_EQ(injector.stats().crash_blocked, 1u);
  EXPECT_EQ(injector.stats().dropped, 0u);
}

TEST(FaultInjectorUnit, JudgeStreamIsSeedDeterministic) {
  sim::FaultPlan plan;
  plan.seed = 99;
  plan.default_link.drop = 0.3;
  plan.default_link.duplicate = 0.2;
  plan.default_link.reorder = 0.2;

  sim::FaultInjector a{plan};
  sim::FaultInjector b{plan};
  for (int i = 0; i < 256; ++i) {
    const auto va = a.judge(0, 1, millis(i));
    const auto vb = b.judge(0, 1, millis(i));
    EXPECT_EQ(va.deliver, vb.deliver);
    EXPECT_EQ(va.copies, vb.copies);
    EXPECT_EQ(va.extra_delay, vb.extra_delay);
  }

  // A different seed produces a different decision stream.
  plan.seed = 100;
  sim::FaultInjector c{plan};
  plan.seed = 99;
  sim::FaultInjector a2{plan};
  bool any_difference = false;
  for (int i = 0; i < 256 && !any_difference; ++i) {
    const auto va = a2.judge(0, 1, millis(i));
    const auto vc = c.judge(0, 1, millis(i));
    any_difference = va.deliver != vc.deliver || va.copies != vc.copies ||
                     va.extra_delay != vc.extra_delay;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultInjectorUnit, RandomizedPlanIsAFunctionOfItsSeed) {
  const sim::FaultPlan a = sim::FaultPlan::randomized(4, seconds(6), 7);
  const sim::FaultPlan b = sim::FaultPlan::randomized(4, seconds(6), 7);
  EXPECT_EQ(a.default_link.drop, b.default_link.drop);
  EXPECT_EQ(a.default_link.duplicate, b.default_link.duplicate);
  EXPECT_EQ(a.partitions.size(), b.partitions.size());
  EXPECT_EQ(a.crashes.size(), b.crashes.size());
  EXPECT_LE(a.default_link.drop, 0.2);

  // Every partition heals and every crash restarts inside the horizon, so a
  // run outlasting the horizon always reaches a fault-free steady state.
  for (const auto& partition : a.partitions) {
    EXPECT_GT(partition.until, partition.from);
    EXPECT_LE(partition.until, seconds(6));
  }
  for (const auto& crash : a.crashes) {
    EXPECT_GT(crash.restart_at, crash.at);
    EXPECT_LE(crash.restart_at, seconds(6));
  }
}

// ---------------------------------------------------------------------------
// Whole-network chaos scenarios
// ---------------------------------------------------------------------------

Hash32 crash_recovery_run(std::uint64_t seed, std::uint64_t* synced_out) {
  ChaosOptions opts;
  opts.plan.seed = seed;
  opts.plan.default_link.drop = 0.05;
  opts.plan.default_link.duplicate = 0.05;
  opts.plan.default_link.reorder = 0.1;
  // Validator 1 crashes mid-run and restarts 1.5 simulated seconds later,
  // after the network has committed several superblocks without it.
  opts.plan.crashes.push_back({1, seconds(1), millis(2500)});
  ChaosNet net{opts};
  net.run_until(seconds(9));

  net.debug_dump();
  ValidatorNode& revenant = *net.validators[1];
  EXPECT_EQ(revenant.metrics().crashes, 1u);
  EXPECT_EQ(revenant.metrics().restarts, 1u);
  EXPECT_FALSE(revenant.crashed());
  EXPECT_FALSE(revenant.syncing()) << "catch-up sync never finished";
  // It refetched history it slept through and rejoined the frontier.
  EXPECT_GT(revenant.metrics().superblocks_synced, 0u);
  std::uint64_t max_height = 0;
  for (const auto& validator : net.validators) {
    max_height = std::max(max_height, validator->chain_height());
  }
  EXPECT_GE(revenant.chain_height() + 1, max_height);
  EXPECT_GT(net.min_height(), 5u);
  net.expect_no_divergence();
  if (synced_out != nullptr) {
    *synced_out = revenant.metrics().superblocks_synced;
  }
  return net.fingerprint();
}

// Acceptance bar from the ISSUE: a crashed-and-restarted validator provably
// catches up across >= 20 distinct seeds, each run bit-for-bit reproducible.
TEST(ChaosCrashRecovery, CatchesUpAcrossSeedsReproducibly) {
  const std::uint64_t base = env_u64("SRBB_CHAOS_SEED_BASE", 1);
  const std::uint64_t count = env_u64("SRBB_CHAOS_SEEDS", 20);
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::uint64_t synced_first = 0;
    const Hash32 first = crash_recovery_run(seed, &synced_first);
    const Hash32 second = crash_recovery_run(seed, nullptr);
    ASSERT_EQ(first, second) << "run is not a pure function of the seed";
  }
}

// Randomized plans at the ISSUE's fault budget (drop <= 20%, one crash):
// safety always, liveness once the plan's horizon passes and faults heal.
TEST(ChaosSoak, RandomizedPlansKeepSafetyAndRegainLiveness) {
  const std::uint64_t base = env_u64("SRBB_CHAOS_SEED_BASE", 1);
  const std::uint64_t count = env_u64("SRBB_CHAOS_SEEDS", 6);
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ChaosOptions opts;
    opts.plan = sim::FaultPlan::randomized(4, seconds(6), seed,
                                           /*max_drop=*/0.2,
                                           /*max_crashes=*/1);
    opts.tx_count = 80;
    ChaosNet net{opts};

    std::uint64_t height_at_horizon = 0;
    net.sim.schedule_at(seconds(6), [&net, &height_at_horizon] {
      height_at_horizon = net.min_height();
    });
    net.run_until(seconds(11));

    net.debug_dump();
    net.expect_no_divergence();
    // Liveness bound: within 5 simulated seconds of the last fault healing,
    // every validator's frontier advanced by at least two superblocks.
    EXPECT_GE(net.min_height(), height_at_horizon + 2)
        << "commit frontier stalled after faults healed";
    std::uint64_t max_height = 0;
    for (const auto& validator : net.validators) {
      max_height = std::max(max_height, validator->chain_height());
    }
    for (const auto& validator : net.validators) {
      EXPECT_FALSE(validator->crashed());
      // A lag-detection catch-up sync triggered by tail-of-window traffic may
      // legitimately still be in flight at the snapshot (it self-terminates
      // once it reaches the peers' frontier), so instead of asserting
      // !syncing() assert the property that matters: nobody was left behind.
      EXPECT_GE(validator->chain_height() + 2, max_height)
          << "validator stuck behind the commit frontier";
    }
  }
}

// A clean 2-2 symmetric split stalls consensus (no n-f quorum on either
// side); the EST/AUX/ECHO state lost inside the partition is unrecoverable
// without the re-broadcast timer, so this scenario is exactly the liveness
// hole the rebroadcast closes.
TEST(ChaosPartition, SplitStallsThenHealsViaRebroadcast) {
  ChaosOptions opts;
  opts.plan.partitions.push_back({seconds(1), seconds(3), {0, 1}, false});
  ChaosNet net{opts};

  std::uint64_t height_mid_partition = 0;
  std::uint64_t height_at_heal = 0;
  net.sim.schedule_at(millis(1500), [&net, &height_mid_partition] {
    height_mid_partition = net.min_height();
  });
  net.sim.schedule_at(seconds(3), [&net, &height_at_heal] {
    height_at_heal = net.min_height();
  });
  net.run_until(seconds(8));

  // Stall: at most one more superblock (the one already in flight at the
  // cut) decided during the two partitioned seconds.
  EXPECT_LE(height_at_heal, height_mid_partition + 1);
  // Heal: the frontier moves again, and the stalled round itself finishes.
  EXPECT_GE(net.min_height(), height_at_heal + 3);
  EXPECT_GT(net.injector.stats().partition_blocked, 0u);
  net.expect_no_divergence();
}

TEST(ChaosPartition, AsymmetricMutePartitionRecovers) {
  ChaosOptions opts;
  opts.plan.partitions.push_back({seconds(1), millis(2500), {2}, true});
  ChaosNet net{opts};
  net.run_until(seconds(8));

  // n-1 = 3 = n-f validators keep deciding while node 2 is mute; after the
  // heal its backlog of buffered rounds resolves and it rejoins the tip.
  EXPECT_GE(net.min_height() + 2, net.validators[0]->chain_height());
  EXPECT_GT(net.min_height(), 5u);
  net.expect_no_divergence();
}

// Duplicate and reordered gossip must be absorbed by the dedup layer: no
// transaction is ever committed twice, and the expensive eager validation is
// charged at most once per unique transaction (plus recycling) — the TVPR
// accounting the paper's congestion argument depends on.
TEST(ChaosGossip, DuplicatedReorderedGossipNeverDoubleCharges) {
  ChaosOptions opts;
  opts.tvpr = false;  // gossip mode: per-transaction propagation
  opts.tx_count = 24;
  // Validator-to-validator links misbehave; client links stay quiet so the
  // per-transaction accounting below is exact.
  sim::LinkFaults noisy;
  noisy.duplicate = 0.3;
  noisy.reorder = 0.3;
  for (sim::NodeId from = 0; from < 4; ++from) {
    for (sim::NodeId to = 0; to < 4; ++to) {
      if (from != to) opts.plan.links[{from, to}] = noisy;
    }
  }
  ChaosNet net{opts};
  net.run_until(seconds(8));

  EXPECT_GT(net.injector.stats().duplicated, 0u);
  std::uint64_t dups_suppressed = 0;
  for (const auto& validator : net.validators) {
    const ValidatorNode::Metrics& m = validator->metrics();
    // Every unique transaction commits exactly once, network-wide.
    EXPECT_EQ(m.txs_committed_valid, opts.tx_count);
    // Eager validation ran at most once per unique transaction (client or
    // gossip path) plus undecided-block recycling — duplicates only ever hit
    // the O(1) dedup lookup.
    EXPECT_LE(m.eager_validations, opts.tx_count + m.txs_recycled);
    dups_suppressed += m.gossip_dups_suppressed;
  }
  EXPECT_GT(dups_suppressed, 0u);
  net.expect_no_divergence();
}

TEST(ChaosDeterminism, IdenticalSeedsProduceIdenticalRuns) {
  const auto run = [] {
    ChaosOptions opts;
    opts.plan = sim::FaultPlan::randomized(4, seconds(4), 42);
    opts.tx_count = 40;
    ChaosNet net{opts};
    net.run_until(seconds(7));
    return net.fingerprint();
  };
  EXPECT_EQ(run(), run());
}

// Chaos with the trace on: every fault decision the injector makes must be
// mirrored by exactly one `net.*` trace event, so the trace reconciles with
// FaultStats field-for-field — the attribution contract a post-mortem
// reading a trace file relies on. The run itself (and hence the trace) stays
// a pure function of the plan.
TEST(ChaosTrace, NetEventsReconcileExactlyWithFaultStats) {
  const auto run = [](obs::TraceSink* sink) {
    ChaosOptions opts;
    opts.trace = sink;
    opts.plan.seed = 13;
    opts.plan.default_link.drop = 0.08;
    opts.plan.default_link.duplicate = 0.06;
    opts.plan.default_link.reorder = 0.1;
    opts.plan.default_link.reorder_delay_max = millis(20);
    opts.plan.partitions.push_back({seconds(1), seconds(2), {3}, false});
    opts.plan.crashes.push_back({1, millis(2500), seconds(4)});
    ChaosNet net{opts};
    net.run_until(seconds(8));
    net.expect_no_divergence();
    return net.injector.stats();
  };

  obs::TraceSink trace;
  const sim::FaultStats stats = run(&trace);

  // Each fault class actually fired...
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(stats.duplicated, 0u);
  EXPECT_GT(stats.reordered, 0u);
  EXPECT_GT(stats.partition_blocked, 0u);
  EXPECT_GT(stats.crash_blocked, 0u);
  // ...and the trace attributes every single decision, no more, no fewer.
  EXPECT_EQ(trace.count_of("net.drop"), stats.dropped);
  EXPECT_EQ(trace.count_of("net.dup"), stats.duplicated);
  EXPECT_EQ(trace.count_of("net.reorder"), stats.reordered);
  EXPECT_EQ(trace.count_of("net.partition_block"), stats.partition_blocked);
  EXPECT_EQ(trace.count_of("net.crash_block"), stats.crash_blocked);

  // The traced run is bit-reproducible, and tracing does not perturb the
  // fault schedule: an untraced run sees the identical FaultStats.
  obs::TraceSink again;
  run(&again);
  EXPECT_EQ(trace.fingerprint(), again.fingerprint());
  const sim::FaultStats untraced = run(nullptr);
  EXPECT_EQ(untraced.dropped, stats.dropped);
  EXPECT_EQ(untraced.duplicated, stats.duplicated);
  EXPECT_EQ(untraced.reordered, stats.reordered);
  EXPECT_EQ(untraced.partition_blocked, stats.partition_blocked);
  EXPECT_EQ(untraced.crash_blocked, stats.crash_blocked);
}

// Crash recovery with the optimistic parallel executor underneath — the
// thread-pool path the TSan leg (tools/tsan_check.sh) replays.
TEST(ChaosParallel, CrashRecoveryUnderParallelExecution) {
  ChaosOptions opts;
  opts.parallel_execution = true;
  opts.tx_count = 40;
  opts.plan.crashes.push_back({2, seconds(1), millis(2200)});
  ChaosNet net{opts};
  net.run_until(seconds(8));

  EXPECT_EQ(net.validators[2]->metrics().restarts, 1u);
  EXPECT_FALSE(net.validators[2]->syncing());
  EXPECT_GT(net.min_height(), 4u);
  net.expect_no_divergence();
}

// ---------------------------------------------------------------------------
// Adaptive membership under churn (DESIGN.md §13, docs/FAULTS.md)
// ---------------------------------------------------------------------------

// Three validators of nine crash for good, each crash arriving while the
// committee still tolerates it: rank 6 at 1s, rank 7 at 3.5s, rank 8 at 6s.
// Gradual is the operative word — reliability scores only move at commits, so
// a *sudden* >f wipeout stalls before anyone can be disabled (documented
// limitation, exactly rippled's); spaced crashes give the scoring time to
// disable each casualty before the next one lands.
sim::FaultPlan gradual_three_crashes() {
  sim::FaultPlan plan;
  plan.seed = 3;
  plan.crashes.push_back({6, seconds(1), 0});
  plan.crashes.push_back({7, millis(3500), 0});
  plan.crashes.push_back({8, seconds(6), 0});
  return plan;
}

ChaosOptions churn_options(bool adaptive) {
  ChaosOptions opts;
  opts.n = 9;
  opts.f = 2;
  opts.adaptive = adaptive;
  opts.tx_count = 100;
  return opts;
}

// Pinned regression for the stall a static committee cannot avoid: after the
// third crash only 6 validators are live, forever short of the fixed
// n - f = 7 completion quorum. If this test ever starts committing past the
// third crash without adaptive membership, the quorum arithmetic changed.
TEST(ChaosChurn, FixedQuorumStallsWhenMoreThanFCrashGradually) {
  ChaosOptions opts = churn_options(/*adaptive=*/false);
  opts.plan = gradual_three_crashes();
  ChaosNet net{opts};

  std::uint64_t height_after_third = 0;
  net.sim.schedule_at(seconds(7), [&net, &height_after_third] {
    height_after_third = net.live_min_height();
  });
  net.run_until(seconds(13));

  net.debug_dump();
  // At most the superblock already in flight at the third crash completes;
  // from then on the frontier is frozen.
  EXPECT_LE(net.live_min_height(), height_after_third + 1);
  net.expect_no_divergence();
}

// The same plan with adaptive membership: the first two casualties cross the
// low-water mark and join the disabled list (cap floor((9-1)/4) = 2), the
// quorums shrink to the effective committee, and the chain keeps committing
// through the third crash even though the cap leaves rank 8 undisabled (its
// slot just times out every round — the degraded-cadence dip the ablation
// bench measures).
TEST(ChaosChurn, AdaptiveMembershipCommitsThroughGradualChurn) {
  ChaosOptions opts = churn_options(/*adaptive=*/true);
  opts.plan = gradual_three_crashes();
  ChaosNet net{opts};

  std::uint64_t height_after_third = 0;
  net.sim.schedule_at(seconds(7), [&net, &height_after_third] {
    height_after_third = net.live_min_height();
  });
  net.run_until(seconds(13));

  net.debug_dump();
  EXPECT_GE(net.live_min_height(), height_after_third + 3)
      << "adaptive membership failed to keep the chain live past >f crashes";
  const rpm::ReliabilityTracker* tracker = net.validators[0]->reliability();
  ASSERT_NE(tracker, nullptr);
  EXPECT_EQ(tracker->current_view().disabled_count(), 2u);  // cap saturated
  EXPECT_GE(net.validators[0]->metrics().membership_disables, 2u);
  EXPECT_EQ(net.validators[0]->metrics().membership_removals, 0u);
  // Every live validator derived the identical membership state.
  for (const auto& validator : net.validators) {
    if (validator->crashed() || validator->syncing()) continue;
    ASSERT_NE(validator->reliability(), nullptr);
    if (validator->chain_height() == net.validators[0]->chain_height()) {
      EXPECT_EQ(validator->reliability()->fingerprint(),
                tracker->fingerprint());
    }
  }
  net.expect_no_divergence();
}

// Recovery path: a crashed validator is disabled, restarts, catches up via
// the existing CatchUpSync, contributes decided blocks again, and is
// deterministically re-admitted once it clears the high-water mark for
// readmit_window consecutive superblocks.
TEST(ChaosChurn, DisabledValidatorIsReadmittedAfterCatchUp) {
  ChaosOptions opts = churn_options(/*adaptive=*/true);
  opts.plan.crashes.push_back({4, seconds(1), seconds(4)});
  ChaosNet net{opts};
  net.run_until(seconds(12));

  net.debug_dump();
  ValidatorNode& revenant = *net.validators[4];
  EXPECT_FALSE(revenant.crashed());
  EXPECT_FALSE(revenant.syncing());
  EXPECT_GT(revenant.metrics().superblocks_synced, 0u);  // caught up first
  EXPECT_GE(net.validators[0]->metrics().membership_disables, 1u);
  EXPECT_GE(net.validators[0]->metrics().membership_readmissions, 1u);
  const rpm::ReliabilityTracker* tracker = net.validators[0]->reliability();
  ASSERT_NE(tracker, nullptr);
  EXPECT_TRUE(tracker->current_view().counts(4));  // back in the committee
  EXPECT_EQ(tracker->current_view().effective_n(), 9u);
  std::uint64_t max_height = 0;
  for (const auto& validator : net.validators) {
    max_height = std::max(max_height, validator->chain_height());
  }
  EXPECT_GE(revenant.chain_height() + 2, max_height)
      << "re-admitted validator did not rejoin the frontier";
  net.expect_no_divergence();
}

// Hysteresis: a flapping validator (up 200ms, down 400ms, forever wiping and
// resyncing) is disabled once and never re-admitted — the re-admission
// streak requires readmit_window *consecutive* contributed superblocks.
TEST(ChaosChurn, FlappingValidatorStaysDisabled) {
  ChaosOptions opts = churn_options(/*adaptive=*/true);
  opts.plan.flapping(/*node=*/5, seconds(1), seconds(9), millis(600),
                     /*duty_cycle=*/1.0 / 3.0);
  ChaosNet net{opts};
  net.run_until(seconds(9));

  net.debug_dump();
  const rpm::ReliabilityTracker* tracker = net.validators[0]->reliability();
  ASSERT_NE(tracker, nullptr);
  EXPECT_GE(net.validators[0]->metrics().membership_disables, 1u);
  EXPECT_EQ(net.validators[0]->metrics().membership_readmissions, 0u);
  EXPECT_TRUE(tracker->current_view().disabled(5));
  // The rest of the committee is unaffected by the flapping.
  EXPECT_GT(net.live_min_height(/*skip=*/5), 8u);
  net.expect_no_divergence();
}

// A staggered rolling restart (one rank every 500ms, each down 400ms) stays
// within the tolerance envelope: nobody is disabled long-term, nobody is
// removed, and every validator ends caught up.
TEST(ChaosChurn, RollingRestartRetainsLivenessAndSafety) {
  ChaosOptions opts = churn_options(/*adaptive=*/true);
  opts.plan.rolling_restart(/*n=*/9, seconds(1), millis(4500), millis(400));
  ChaosNet net{opts};
  net.run_until(seconds(12));

  net.debug_dump();
  std::uint64_t max_height = 0;
  for (const auto& validator : net.validators) {
    EXPECT_FALSE(validator->crashed());
    EXPECT_EQ(validator->metrics().crashes, 1u);
    EXPECT_EQ(validator->metrics().restarts, 1u);
    EXPECT_EQ(validator->metrics().membership_removals, 0u);
    max_height = std::max(max_height, validator->chain_height());
  }
  EXPECT_GT(net.min_height(), 10u);
  for (const auto& validator : net.validators) {
    EXPECT_GE(validator->chain_height() + 2, max_height)
        << "validator left behind after the rolling restart";
  }
  net.expect_no_divergence();
}

// Fault-free equivalence: with nothing failing, adaptive membership derives
// the all-active view everywhere and must produce the exact chains of a
// static-committee run — the guard that keeps golden traces valid.
TEST(ChaosChurn, FaultFreeRunsMatchWithAdaptiveOnAndOff) {
  const auto run = [](bool adaptive) {
    ChaosOptions opts = churn_options(adaptive);
    opts.tx_count = 60;
    ChaosNet net{opts};
    net.run_until(seconds(6));
    std::vector<std::vector<Hash32>> chains;
    for (const auto& validator : net.validators) {
      chains.push_back(validator->chain());
    }
    return chains;
  };
  EXPECT_EQ(run(false), run(true));
}

// Disabling and re-admission are byte-deterministic: the full run — fault
// schedule, membership events, tracker digests — is a pure function of the
// seed, across >= 20 seeds (sweepable via SRBB_CHAOS_SEED_BASE/_SEEDS).
TEST(ChaosChurn, AdaptiveRunsAreSeedDeterministic) {
  const std::uint64_t base = env_u64("SRBB_CHAOS_SEED_BASE", 1);
  const std::uint64_t count = env_u64("SRBB_CHAOS_SEEDS", 20);
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const auto run = [seed] {
      ChaosOptions opts = churn_options(/*adaptive=*/true);
      opts.tx_count = 60;
      opts.plan.seed = seed;
      opts.plan.default_link.drop = 0.05;
      opts.plan.default_link.reorder = 0.1;
      // One permanent casualty (gets disabled) plus one crash/recover cycle
      // (may be disabled and re-admitted), ranks varying with the seed.
      opts.plan.crashes.push_back(
          {static_cast<sim::NodeId>(seed % 9), seconds(1), 0});
      opts.plan.crashes.push_back({static_cast<sim::NodeId>((seed + 3) % 9),
                                   millis(3500), seconds(5)});
      ChaosNet net{opts};
      net.run_until(seconds(8));
      net.expect_no_divergence();
      return net.fingerprint();
    };
    ASSERT_EQ(run(), run()) << "adaptive run is not a pure function of seed";
  }
}

// Long-horizon churn soak — 30% of a 13-strong committee offline through a
// window (three permanent-ish crashes plus one flapper) — run by
// tools/chaos_soak.sh --ci (churn leg); skipped in the regular suite.
TEST(ChaosChurnSoak, ThirtyPercentOfflineWindowWithFlapping) {
  if (std::getenv("SRBB_CHURN_SOAK") == nullptr) {
    GTEST_SKIP() << "set SRBB_CHURN_SOAK=1 (tools/chaos_soak.sh --ci runs it)";
  }
  const std::uint64_t base = env_u64("SRBB_CHAOS_SEED_BASE", 1);
  const std::uint64_t count = env_u64("SRBB_CHAOS_SEEDS", 4);
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ChaosOptions opts;
    opts.n = 13;
    opts.f = 4;
    opts.adaptive = true;
    opts.tx_count = 200;
    opts.tx_interval = millis(50);
    opts.plan.seed = seed;
    opts.plan.default_link.drop = 0.05;
    // 4 of 13 validators (~30%) offline inside the window: three staggered
    // long crashes that heal at 14s, one flapper from 2s to 12s.
    opts.plan.crashes.push_back({10, seconds(1), seconds(14)});
    opts.plan.crashes.push_back({11, seconds(3), seconds(14)});
    opts.plan.crashes.push_back({12, seconds(5), seconds(14)});
    opts.plan.flapping(/*node=*/0, seconds(2), seconds(12), millis(800),
                       /*duty_cycle=*/0.5);
    ChaosNet net{opts};

    std::uint64_t height_mid_window = 0;
    net.sim.schedule_at(seconds(8), [&net, &height_mid_window] {
      height_mid_window = net.live_min_height(/*skip=*/0);
    });
    net.run_until(seconds(20));

    net.debug_dump();
    // Liveness through the window and full recovery after it.
    EXPECT_GT(height_mid_window, 5u);
    EXPECT_GE(net.live_min_height(/*skip=*/0), height_mid_window + 5);
    std::uint64_t max_height = 0;
    for (const auto& validator : net.validators) {
      EXPECT_FALSE(validator->crashed());
      max_height = std::max(max_height, validator->chain_height());
    }
    EXPECT_GE(net.validators[10]->chain_height() + 3, max_height)
        << "long-crashed validator failed to catch back up";
    EXPECT_GE(net.validators[0]->metrics().membership_disables, 1u);
    net.expect_no_divergence();
  }
}

}  // namespace
}  // namespace srbb::node
