// Superblock consensus tests: agreement on the block set across correct
// validators under silent, equivocating and partially-connected proposers,
// including the PULL recovery path. Timers and delays run on the
// discrete-event engine for determinism.
#include "consensus/superblock.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/event_loop.hpp"

namespace srbb::consensus {
namespace {

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::ed25519();
}

txn::TxPtr make_tx(std::uint64_t sender, std::uint64_t nonce) {
  txn::TxParams params;
  params.nonce = nonce;
  return txn::make_tx_ptr(
      txn::make_signed(params, scheme().make_identity(sender), scheme()));
}

txn::BlockPtr make_proposal(std::uint32_t proposer, std::uint64_t index,
                            std::uint64_t tx_tag) {
  const crypto::Identity id = scheme().make_identity(proposer);
  return std::make_shared<const txn::Block>(
      txn::make_block(index, proposer, 0, Hash32{},
                      {make_tx(1000 + tx_tag, 0)}, id, scheme()));
}

struct Cluster {
  sim::Simulation sim;
  SuperblockConfig config;
  std::vector<std::unique_ptr<SuperblockInstance>> nodes;
  std::vector<bool> delivered;
  std::vector<std::vector<txn::BlockPtr>> superblocks;
  // Message filter: return false to drop (models a partitioned/Byzantine
  // sender); default passes everything.
  std::function<bool(std::uint32_t from, std::uint32_t to)> allow =
      [](std::uint32_t, std::uint32_t) { return true; };
  SimDuration wire_delay = millis(5);

  explicit Cluster(std::uint32_t n, std::uint32_t f) {
    config.n = n;
    config.f = f;
    config.proposal_timeout = millis(200);
    config.pull_retry = millis(50);
    delivered.resize(n, false);
    superblocks.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      SuperblockConfig node_config = config;
      node_config.self = i;
      SuperblockCallbacks cb;
      cb.broadcast = [this, i](sim::MessagePtr msg) {
        for (std::uint32_t to = 0; to < config.n; ++to) {
          if (to == i) continue;
          deliver(i, to, msg);
        }
      };
      cb.send_to = [this, i](std::uint32_t to, sim::MessagePtr msg) {
        deliver(i, to, msg);
      };
      cb.validate_header = [](const txn::Block&) { return true; };
      cb.on_superblock = [this, i](std::vector<txn::BlockPtr> blocks) {
        delivered[i] = true;
        superblocks[i] = std::move(blocks);
      };
      cb.set_timer = [this](SimDuration delay, std::function<void()> fn) {
        sim.schedule_after(delay, std::move(fn));
      };
      nodes.push_back(
          std::make_unique<SuperblockInstance>(node_config, 0, std::move(cb)));
    }
  }

  void deliver(std::uint32_t from, std::uint32_t to, sim::MessagePtr msg) {
    if (!allow(from, to)) return;
    sim.schedule_after(wire_delay, [this, from, to, msg] {
      nodes[to]->handle(from, msg);
    });
  }

  void run() { sim.run_until(seconds(30)); }

  void expect_all_complete_and_equal(std::size_t expected_blocks) {
    for (std::uint32_t i = 0; i < config.n; ++i) {
      EXPECT_TRUE(delivered[i]) << "node " << i << " incomplete";
    }
    for (std::uint32_t i = 1; i < config.n; ++i) {
      ASSERT_EQ(superblocks[i].size(), superblocks[0].size());
      for (std::size_t b = 0; b < superblocks[0].size(); ++b) {
        EXPECT_EQ(superblocks[i][b]->hash(), superblocks[0][b]->hash());
      }
    }
    EXPECT_EQ(superblocks[0].size(), expected_blocks);
  }
};

TEST(Superblock, AllProposeAllIncluded) {
  Cluster cluster{4, 1};
  for (std::uint32_t i = 0; i < 4; ++i) {
    cluster.nodes[i]->begin(make_proposal(i, 0, i));
  }
  cluster.run();
  cluster.expect_all_complete_and_equal(4);
  // Ordered by proposer rank.
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(cluster.superblocks[0][b]->header.proposer, b);
  }
}

TEST(Superblock, LargerCommittee) {
  Cluster cluster{10, 3};
  for (std::uint32_t i = 0; i < 10; ++i) {
    cluster.nodes[i]->begin(make_proposal(i, 0, i));
  }
  cluster.run();
  cluster.expect_all_complete_and_equal(10);
}

TEST(Superblock, SilentProposerExcluded) {
  Cluster cluster{4, 1};
  for (std::uint32_t i = 0; i < 3; ++i) {
    cluster.nodes[i]->begin(make_proposal(i, 0, i));
  }
  cluster.nodes[3]->begin(nullptr);  // proposes nothing
  cluster.run();
  cluster.expect_all_complete_and_equal(3);
}

TEST(Superblock, FullyCrashedNodeStillToleratedByRest) {
  Cluster cluster{4, 1};
  cluster.allow = [](std::uint32_t from, std::uint32_t to) {
    return from != 3 && to != 3;  // node 3 is dark both ways
  };
  for (std::uint32_t i = 0; i < 3; ++i) {
    cluster.nodes[i]->begin(make_proposal(i, 0, i));
  }
  cluster.run();
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(cluster.delivered[i]) << i;
  }
  ASSERT_TRUE(cluster.delivered[0]);
  EXPECT_EQ(cluster.superblocks[0].size(), 3u);
}

TEST(Superblock, InvalidCertificateDiscarded) {
  Cluster cluster{4, 1};
  // Node 0's proposal certificate is forged (signed by the wrong key).
  auto block = txn::make_block(0, 0, 0, Hash32{}, {make_tx(1, 0)},
                               scheme().make_identity(7), scheme());
  block.header.cert.proposer_pubkey = scheme().make_identity(0).public_key;
  cluster.nodes[0]->begin(std::make_shared<const txn::Block>(block));
  for (std::uint32_t i = 1; i < 4; ++i) {
    cluster.nodes[i]->begin(make_proposal(i, 0, i));
  }
  cluster.run();
  // The forged proposal is dropped everywhere -> 3 blocks.
  cluster.expect_all_complete_and_equal(3);
}

TEST(Superblock, PartialPropagationRecoversViaPull) {
  Cluster cluster{4, 1};
  // Node 0's PROPOSE reaches only nodes 1 and 2; echoes and everything else
  // flow normally, so node 3 learns the hash, decides 1, and must PULL the
  // body.
  int proposes_blocked = 0;
  cluster.allow = [&](std::uint32_t from, std::uint32_t to) {
    (void)from;
    (void)to;
    return true;
  };
  // Blocking selectively needs message-type awareness: wrap deliver via
  // allow on (from,to) won't see types, so instead send node 0's proposal
  // manually and skip its broadcast by beginning with nullptr.
  cluster.nodes[0]->begin(nullptr);
  const txn::BlockPtr block = make_proposal(0, 0, 0);
  auto propose = std::make_shared<ProposeMsg>();
  propose->index = 0;
  propose->block = block;
  // Deliver the body to 0 (self), 1 and 2 only.
  cluster.nodes[0]->handle(0, propose);
  cluster.deliver(0, 1, propose);
  cluster.deliver(0, 2, propose);
  (void)proposes_blocked;
  for (std::uint32_t i = 1; i < 4; ++i) {
    cluster.nodes[i]->begin(make_proposal(i, 0, i));
  }
  cluster.run();
  cluster.expect_all_complete_and_equal(4);
  // Node 3 ends with the same block 0 despite never receiving the PROPOSE
  // broadcast.
  EXPECT_EQ(cluster.superblocks[3][0]->hash(), block->hash());
}

TEST(Superblock, EquivocatingProposerCannotSplitTheSet) {
  Cluster cluster{4, 1};
  // Byzantine node 0 signs two different blocks for index 0 and sends one to
  // nodes 1, the other to nodes 2 and 3.
  const txn::BlockPtr block_a = make_proposal(0, 0, 100);
  const txn::BlockPtr block_b = make_proposal(0, 0, 200);
  ASSERT_NE(block_a->hash(), block_b->hash());
  cluster.nodes[0]->begin(nullptr);
  auto msg_a = std::make_shared<ProposeMsg>();
  msg_a->index = 0;
  msg_a->block = block_a;
  auto msg_b = std::make_shared<ProposeMsg>();
  msg_b->index = 0;
  msg_b->block = block_b;
  cluster.deliver(0, 1, msg_a);
  cluster.deliver(0, 2, msg_b);
  cluster.deliver(0, 3, msg_b);
  for (std::uint32_t i = 1; i < 4; ++i) {
    cluster.nodes[i]->begin(make_proposal(i, 0, i));
  }
  cluster.run();
  // Correct nodes 1..3 agree on one superblock; slot 0 is either excluded or
  // carries exactly one of the two blocks everywhere.
  for (std::uint32_t i = 1; i < 4; ++i) {
    EXPECT_TRUE(cluster.delivered[i]);
  }
  for (std::uint32_t i = 2; i < 4; ++i) {
    ASSERT_EQ(cluster.superblocks[i].size(), cluster.superblocks[1].size());
    for (std::size_t b = 0; b < cluster.superblocks[1].size(); ++b) {
      EXPECT_EQ(cluster.superblocks[i][b]->hash(),
                cluster.superblocks[1][b]->hash());
    }
  }
  EXPECT_GE(cluster.superblocks[1].size(), 3u);
}

TEST(Superblock, CompletesWithEmptySuperblockWhenNobodyProposes) {
  Cluster cluster{4, 1};
  for (std::uint32_t i = 0; i < 4; ++i) cluster.nodes[i]->begin(nullptr);
  cluster.run();
  cluster.expect_all_complete_and_equal(0);
}

TEST(Superblock, WrongIndexProposalIgnored) {
  Cluster cluster{4, 1};
  // A proposal built for index 7 must not enter index 0's superblock.
  auto stale = std::make_shared<ProposeMsg>();
  stale->index = 0;
  stale->block = make_proposal(0, 7, 0);
  cluster.nodes[1]->handle(0, stale);
  cluster.nodes[0]->begin(nullptr);
  for (std::uint32_t i = 1; i < 4; ++i) {
    cluster.nodes[i]->begin(make_proposal(i, 0, i));
  }
  cluster.run();
  cluster.expect_all_complete_and_equal(3);
}

TEST(Superblock, HeaderValidatorCanExcludeProposer) {
  // Models RPM exclusion: every correct node rejects blocks from rank 2.
  Cluster cluster{4, 1};
  for (std::uint32_t i = 0; i < 4; ++i) {
    SuperblockConfig node_config = cluster.config;
    node_config.self = i;
    // Rebuild node i with an excluding validator.
    SuperblockCallbacks cb;
    cb.broadcast = [&cluster, i](sim::MessagePtr msg) {
      for (std::uint32_t to = 0; to < cluster.config.n; ++to) {
        if (to != i) cluster.deliver(i, to, msg);
      }
    };
    cb.send_to = [&cluster, i](std::uint32_t to, sim::MessagePtr msg) {
      cluster.deliver(i, to, msg);
    };
    cb.validate_header = [](const txn::Block& b) {
      return b.header.proposer != 2;
    };
    cb.on_superblock = [&cluster, i](std::vector<txn::BlockPtr> blocks) {
      cluster.delivered[i] = true;
      cluster.superblocks[i] = std::move(blocks);
    };
    cb.set_timer = [&cluster](SimDuration d, std::function<void()> fn) {
      cluster.sim.schedule_after(d, std::move(fn));
    };
    cluster.nodes[i] =
        std::make_unique<SuperblockInstance>(node_config, 0, std::move(cb));
  }
  for (std::uint32_t i = 0; i < 4; ++i) {
    cluster.nodes[i]->begin(make_proposal(i, 0, i));
  }
  cluster.run();
  cluster.expect_all_complete_and_equal(3);
  for (const auto& block : cluster.superblocks[0]) {
    EXPECT_NE(block->header.proposer, 2u);
  }
}

}  // namespace
}  // namespace srbb::consensus
