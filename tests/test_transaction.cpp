#include "txn/transaction.hpp"

#include <gtest/gtest.h>

#include "txn/txref.hpp"

namespace srbb::txn {
namespace {

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::ed25519();
}

Transaction sample_tx(std::uint64_t sender_id = 1, std::uint64_t nonce = 0) {
  TxParams params;
  params.kind = TxKind::kTransfer;
  params.nonce = nonce;
  params.gas_price = U256{3};
  params.gas_limit = 30'000;
  params.to = Address::from_hex_str(std::string(40, '2')).value();
  params.value = U256{12345};
  params.data = Bytes{0xde, 0xad};
  return make_signed(params, scheme().make_identity(sender_id), scheme());
}

TEST(Transaction, SignatureVerifies) {
  const Transaction tx = sample_tx();
  EXPECT_TRUE(verify_signature(tx, scheme()));
}

TEST(Transaction, TamperedFieldBreaksSignature) {
  Transaction tx = sample_tx();
  tx.value = tx.value + U256::one();
  EXPECT_FALSE(verify_signature(tx, scheme()));
}

TEST(Transaction, TamperedDataBreaksSignature) {
  Transaction tx = sample_tx();
  tx.data.push_back(0x00);
  EXPECT_FALSE(verify_signature(tx, scheme()));
}

TEST(Transaction, ForeignPubkeyBreaksSignature) {
  Transaction tx = sample_tx(1);
  tx.sender_pubkey = scheme().make_identity(2).public_key;
  EXPECT_FALSE(verify_signature(tx, scheme()));
}

TEST(Transaction, EncodeDecodeRoundTrip) {
  const Transaction tx = sample_tx();
  auto decoded = Transaction::decode(tx.encode());
  ASSERT_TRUE(decoded.is_ok()) << decoded.message();
  EXPECT_EQ(decoded.value(), tx);
  EXPECT_TRUE(verify_signature(decoded.value(), scheme()));
}

TEST(Transaction, RoundTripAllKinds) {
  for (TxKind kind : {TxKind::kTransfer, TxKind::kDeploy, TxKind::kInvoke}) {
    TxParams params;
    params.kind = kind;
    params.nonce = 9;
    params.data = Bytes(100, 0x61);
    const Transaction tx =
        make_signed(params, scheme().make_identity(4), scheme());
    auto decoded = Transaction::decode(tx.encode());
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(decoded.value().kind, kind);
    EXPECT_EQ(decoded.value(), tx);
  }
}

TEST(Transaction, DecodeRejectsGarbage) {
  EXPECT_FALSE(Transaction::decode(Bytes{0x01, 0x02, 0x03}).is_ok());
  EXPECT_FALSE(Transaction::decode(BytesView{}).is_ok());
}

TEST(Transaction, DecodeRejectsTruncated) {
  const Bytes wire = sample_tx().encode();
  const Bytes cut{wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(wire.size() / 2)};
  EXPECT_FALSE(Transaction::decode(cut).is_ok());
}

TEST(Transaction, HashIsStableAndUnique) {
  const Transaction a = sample_tx(1, 0);
  const Transaction b = sample_tx(1, 1);
  const Transaction c = sample_tx(2, 0);
  EXPECT_EQ(a.hash(), sample_tx(1, 0).hash());
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
}

TEST(Transaction, SenderDerivesFromPubkey) {
  const Transaction tx = sample_tx(7);
  EXPECT_EQ(tx.sender(), scheme().make_identity(7).address());
}

TEST(CachedTx, CachesHashSizeSender) {
  const Transaction tx = sample_tx();
  const TxPtr ptr = make_tx_ptr(tx);
  EXPECT_EQ(ptr->hash, tx.hash());
  EXPECT_EQ(ptr->size, tx.encode().size());
  EXPECT_EQ(ptr->sender, tx.sender());
}

}  // namespace
}  // namespace srbb::txn
