#include "srbb/oracle.hpp"

#include <gtest/gtest.h>

#include "evm/contracts.hpp"

namespace srbb::node {
namespace {

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::fast_sim();
}

txn::TxPtr transfer(std::uint64_t sender, std::uint64_t nonce,
                    std::uint64_t value = 10) {
  txn::TxParams params;
  params.nonce = nonce;
  params.gas_limit = 30'000;
  params.to = scheme().make_identity(4242).address();
  params.value = U256{value};
  return txn::make_tx_ptr(
      txn::make_signed(params, scheme().make_identity(sender), scheme()));
}

txn::BlockPtr block_of(std::uint64_t index, std::uint64_t proposer,
                       std::vector<txn::TxPtr> txs) {
  return std::make_shared<const txn::Block>(
      txn::make_block(index, proposer, 0, Hash32{}, std::move(txs),
                      scheme().make_identity(proposer), scheme()));
}

GenesisSpec rich_genesis() {
  GenesisSpec genesis;
  for (std::uint64_t i = 0; i < 8; ++i) {
    genesis.accounts.push_back(
        {scheme().make_identity(i).address(), U256{1'000'000'000}});
  }
  return genesis;
}

TEST(Oracle, GenesisApplied) {
  ExecutionOracle oracle{rich_genesis(), {}, scheme()};
  EXPECT_EQ(oracle.db().balance(scheme().make_identity(0).address()),
            U256{1'000'000'000});
  EXPECT_EQ(oracle.db().balance(scheme().make_identity(99).address()),
            U256::zero());
}

TEST(Oracle, ExecutesAndMemoizes) {
  ExecutionOracle oracle{rich_genesis(), {}, scheme()};
  const std::vector<txn::BlockPtr> blocks = {block_of(0, 0, {transfer(0, 0)})};
  const IndexExecResult& first = oracle.execute(0, blocks);
  EXPECT_EQ(first.total_valid, 1u);
  EXPECT_EQ(first.total_invalid, 0u);
  EXPECT_TRUE(oracle.executed(0));

  // Second call returns the identical memoized object; even a different
  // block set cannot re-execute the index.
  const IndexExecResult& second = oracle.execute(0, {});
  EXPECT_EQ(&first, &second);
}

TEST(Oracle, DuplicateTxAcrossBlocksDiscarded) {
  ExecutionOracle oracle{rich_genesis(), {}, scheme()};
  const txn::TxPtr tx = transfer(1, 0);
  // Two proposers included the same transaction (the EVM+DBFT situation).
  const std::vector<txn::BlockPtr> blocks = {block_of(0, 0, {tx}),
                                             block_of(0, 1, {tx})};
  const IndexExecResult& result = oracle.execute(0, blocks);
  EXPECT_EQ(result.total_valid, 1u);
  EXPECT_EQ(result.total_invalid, 1u);  // nonce reuse fails lazy validation
  ASSERT_EQ(result.blocks.size(), 2u);
  EXPECT_TRUE(result.blocks[0].outcomes[0].valid);
  EXPECT_FALSE(result.blocks[1].outcomes[0].valid);
  // Value moved exactly once.
  EXPECT_EQ(oracle.db().balance(scheme().make_identity(4242).address()),
            U256{10});
}

TEST(Oracle, InvalidZeroBalanceSenderDiscarded) {
  ExecutionOracle oracle{rich_genesis(), {}, scheme()};
  const txn::TxPtr broke = transfer(777, 0);  // unfunded sender
  const IndexExecResult& result = oracle.execute(0, {block_of(0, 0, {broke})});
  EXPECT_EQ(result.total_valid, 0u);
  EXPECT_EQ(result.total_invalid, 1u);
}

TEST(Oracle, SequentialIndicesChainState) {
  ExecutionOracle oracle{rich_genesis(), {}, scheme()};
  oracle.execute(0, {block_of(0, 0, {transfer(2, 0)})});
  const Hash32 root0 = oracle.execute(0, {}).state_root;
  oracle.execute(1, {block_of(1, 0, {transfer(2, 1)})});
  const Hash32 root1 = oracle.execute(1, {}).state_root;
  EXPECT_NE(root0, root1);
  EXPECT_EQ(oracle.db().nonce(scheme().make_identity(2).address()), 2u);
}

TEST(Oracle, TwoReplicasConverge) {
  // Replicated-execution equivalence: independent oracles fed the same
  // blocks produce identical roots and outcomes.
  ExecutionOracle a{rich_genesis(), {}, scheme()};
  ExecutionOracle b{rich_genesis(), {}, scheme()};
  const std::vector<txn::BlockPtr> blocks = {
      block_of(0, 0, {transfer(0, 0), transfer(1, 0)}),
      block_of(0, 1, {transfer(2, 0), transfer(0, 0)})};  // one duplicate
  const IndexExecResult& ra = a.execute(0, blocks);
  const IndexExecResult& rb = b.execute(0, blocks);
  EXPECT_EQ(ra.state_root, rb.state_root);
  EXPECT_EQ(ra.total_valid, rb.total_valid);
  EXPECT_EQ(ra.total_invalid, rb.total_invalid);
  EXPECT_EQ(a.db().state_root(), b.db().state_root());
}

// End-to-end parity of the optimistic parallel executor behind the oracle:
// the same superblocks executed with ExecutionConfig{parallel=true} must be
// bit-identical to the sequential path. The suite name matches the
// tools/tsan_check.sh / tools/sanitize_matrix.sh filter so this runs under
// TSan as the concurrency gate for the full oracle pipeline.
TEST(ParallelOracle, MatchesSequentialExecution) {
  ExecutionOracle sequential{rich_genesis(), {}, scheme()};
  ExecutionOracle parallel{rich_genesis(), {}, scheme()};
  parallel.exec_config().parallel = true;
  parallel.exec_config().workers = 4;

  for (std::uint64_t index = 0; index < 3; ++index) {
    std::vector<txn::TxPtr> left;
    std::vector<txn::TxPtr> right;
    for (std::uint64_t s = 0; s < 6; ++s) {
      // Overlapping senders across proposers: conflicts + duplicates force
      // the speculative re-execution path, not just the happy path.
      left.push_back(transfer(s, index));
      if (s % 2 == 0) right.push_back(transfer(s, index));
    }
    const std::vector<txn::BlockPtr> blocks = {
        block_of(index, 0, std::move(left)),
        block_of(index, 1, std::move(right))};
    const IndexExecResult& rs = sequential.execute(index, blocks);
    const IndexExecResult& rp = parallel.execute(index, blocks);
    EXPECT_EQ(rs.state_root, rp.state_root) << "index " << index;
    EXPECT_EQ(rs.total_valid, rp.total_valid);
    EXPECT_EQ(rs.total_invalid, rp.total_invalid);
  }
  EXPECT_EQ(sequential.db().state_root(), parallel.db().state_root());
  EXPECT_EQ(sequential.db().state_root_mpt(), parallel.db().state_root_mpt());
}

TEST(Oracle, FeesComputedPerOutcome) {
  ExecutionOracle oracle{rich_genesis(), {}, scheme()};
  txn::TxParams params;
  params.nonce = 0;
  params.gas_limit = 30'000;
  params.gas_price = U256{3};
  params.to = scheme().make_identity(4242).address();
  params.value = U256{1};
  const txn::TxPtr tx = txn::make_tx_ptr(
      txn::make_signed(params, scheme().make_identity(3), scheme()));
  const IndexExecResult& result = oracle.execute(0, {block_of(0, 0, {tx})});
  ASSERT_EQ(result.blocks[0].outcomes.size(), 1u);
  const TxOutcome& outcome = result.blocks[0].outcomes[0];
  EXPECT_TRUE(outcome.valid);
  EXPECT_EQ(outcome.gas_used, 21'000u);
  EXPECT_EQ(outcome.fee, U256{3 * 21'000});
}

}  // namespace
}  // namespace srbb::node
