// Tests of Alg. 2 and Theorem 1: the proposer of a block with an invalid
// transaction ends at deposit 0 and is excluded; correct validators are
// never slashed; rewards R = I - C accrue only at the n-f threshold;
// duplicate invocations and forged certificates are rejected.
#include "rpm/rpm.hpp"

#include <gtest/gtest.h>

#include "txn/block.hpp"

namespace srbb::rpm {
namespace {

const crypto::SignatureScheme& scheme() {
  return crypto::SignatureScheme::ed25519();
}

struct Fixture {
  RpmConfig config;
  RewardPenaltyMechanism rpm;
  std::vector<crypto::Identity> validators;

  Fixture() : config{make_config()}, rpm{config} {
    for (std::uint64_t i = 0; i < config.n; ++i) {
      validators.push_back(scheme().make_identity(i));
      rpm.register_validator(validators.back().address(), U256{1'000'000'000});
    }
  }

  static RpmConfig make_config() {
    RpmConfig c;
    c.n = 4;
    c.f = 1;
    c.block_reward = U256{1000};
    c.validation_cost_per_tx = U256{10};
    return c;
  }

  Address addr(std::size_t i) const { return validators[i].address(); }

  /// A block summary with `tx_count` transactions signed by validator `i`.
  BlockSummary summary(std::size_t proposer, std::uint32_t tx_count,
                       U256 fees, std::vector<Hash32>* leaves_out = nullptr) {
    std::vector<Hash32> leaves;
    for (std::uint32_t t = 0; t < tx_count; ++t) {
      Hash32 leaf;
      put_be64(leaf.data.data(), 1000 * proposer + t);
      leaves.push_back(leaf);
    }
    BlockSummary s;
    s.proposer_pubkey = validators[proposer].public_key;
    s.tx_root = crypto::merkle_root(leaves);
    s.signed_tx_root = scheme().sign(validators[proposer], s.tx_root.view());
    s.tx_count = tx_count;
    s.total_fees = fees;
    if (leaves_out) *leaves_out = leaves;
    return s;
  }
};

TEST(RpmReward, PaysAtThreshold) {
  Fixture f;
  const BlockSummary block = f.summary(0, 5, U256{200});
  const U256 before = f.rpm.deposit_of(f.addr(0));
  // n-f = 3 distinct invocations required.
  EXPECT_TRUE(f.rpm.prop_received(f.addr(1), block, 0, 1));
  EXPECT_EQ(f.rpm.deposit_of(f.addr(0)), before);
  EXPECT_TRUE(f.rpm.prop_received(f.addr(2), block, 0, 1));
  EXPECT_EQ(f.rpm.deposit_of(f.addr(0)), before);
  EXPECT_TRUE(f.rpm.prop_received(f.addr(3), block, 0, 1));
  // R = I - C = (1000 + 200) - 10*5 = 1150.
  EXPECT_EQ(f.rpm.deposit_of(f.addr(0)), before + U256{1150});
  EXPECT_EQ(f.rpm.total_rewards_paid(), U256{1150});
}

TEST(RpmReward, DuplicateInvocationDoesNotCount) {
  Fixture f;
  const BlockSummary block = f.summary(0, 1, U256{0});
  EXPECT_TRUE(f.rpm.prop_received(f.addr(1), block, 0, 1));
  EXPECT_FALSE(f.rpm.prop_received(f.addr(1), block, 0, 1));  // Alg. 2 line 11
  EXPECT_TRUE(f.rpm.prop_received(f.addr(2), block, 0, 1));
  EXPECT_EQ(f.rpm.deposit_of(f.addr(0)), U256{1'000'000'000});  // still 2 < 3
}

TEST(RpmReward, RewardPaidOnlyOnce) {
  Fixture f;
  const BlockSummary block = f.summary(0, 0, U256{0});
  for (std::size_t i = 0; i < 4; ++i) {
    f.rpm.prop_received(f.addr(i), block, 0, 1);
  }
  // 4th invocation past the threshold must not double-pay.
  EXPECT_EQ(f.rpm.deposit_of(f.addr(0)), U256{1'000'000'000} + U256{1000});
}

TEST(RpmReward, DistinctRoundsRewardSeparately) {
  Fixture f;
  const BlockSummary block = f.summary(0, 0, U256{0});
  for (std::size_t i = 1; i < 4; ++i) f.rpm.prop_received(f.addr(i), block, 0, 1);
  for (std::size_t i = 1; i < 4; ++i) f.rpm.prop_received(f.addr(i), block, 0, 2);
  EXPECT_EQ(f.rpm.deposit_of(f.addr(0)),
            U256{1'000'000'000} + U256{2000});
}

TEST(RpmReward, NonValidatorCertificateRejected) {
  Fixture f;
  // Certificate from an identity outside V (Alg. 2 line 16).
  const crypto::Identity stranger = scheme().make_identity(99);
  BlockSummary block;
  block.proposer_pubkey = stranger.public_key;
  Hash32 root;
  block.tx_root = root;
  block.signed_tx_root = scheme().sign(stranger, root.view());
  EXPECT_FALSE(f.rpm.prop_received(f.addr(1), block, 0, 1));
}

TEST(RpmReward, BadSignatureRejected) {
  Fixture f;
  BlockSummary block = f.summary(0, 1, U256{0});
  block.signed_tx_root[7] ^= 1;  // hash(T) != recovered h_t (Alg. 2 line 20)
  EXPECT_FALSE(f.rpm.prop_received(f.addr(1), block, 0, 1));
}

TEST(RpmReward, NonValidatorCallerIgnored) {
  Fixture f;
  const BlockSummary block = f.summary(0, 1, U256{0});
  EXPECT_FALSE(f.rpm.prop_received(scheme().make_identity(55).address(),
                                   block, 0, 1));
}

TEST(RpmPenalty, Theorem1ByzantineLosesEntireDeposit) {
  Fixture f;
  // Validator 3 proposed a block containing an invalid transaction; its
  // deposit had grown by an earlier reward (D' = D + I - C').
  std::vector<Hash32> leaves;
  const BlockSummary bad_block = f.summary(3, 4, U256{100}, &leaves);
  for (std::size_t i = 0; i < 3; ++i) {
    f.rpm.prop_received(f.addr(i), bad_block, 2, 9);
  }
  const U256 grown = f.rpm.deposit_of(f.addr(3));
  EXPECT_GT(grown, U256{1'000'000'000});

  // Three validators report leaf[2] as invalid, with a Merkle proof.
  const crypto::MerkleProof proof = crypto::merkle_prove(leaves, 2);
  EXPECT_FALSE(f.rpm.report(f.addr(0), bad_block, 7, leaves[2], proof)
                   .has_value());
  EXPECT_FALSE(f.rpm.report(f.addr(1), bad_block, 7, leaves[2], proof)
                   .has_value());
  const auto slash = f.rpm.report(f.addr(2), bad_block, 7, leaves[2], proof);
  ASSERT_TRUE(slash.has_value());
  EXPECT_EQ(slash->validator, f.addr(3));
  EXPECT_EQ(slash->penalty, grown);

  // D_end = 0 (Theorem 1) and the validator is excluded.
  EXPECT_EQ(f.rpm.deposit_of(f.addr(3)), U256::zero());
  EXPECT_TRUE(f.rpm.is_excluded(f.addr(3)));

  // The penalty is distributed among the other |V|-1 validators.
  const U256 share = grown / U256{3};
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(f.rpm.deposit_of(f.addr(i)), U256{1'000'000'000} + share);
  }
  ASSERT_EQ(f.rpm.slash_events().size(), 1u);
}

TEST(RpmPenalty, FalseReportOutsideBlockRejected) {
  Fixture f;
  std::vector<Hash32> leaves;
  const BlockSummary block = f.summary(0, 3, U256{0}, &leaves);
  Hash32 foreign;
  foreign[0] = 0xAB;
  const crypto::MerkleProof proof = crypto::merkle_prove(leaves, 0);
  // t not in T (Alg. 2 line 32): proof does not bind `foreign` to tx_root.
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_FALSE(f.rpm.report(f.addr(i), block, 1, foreign, proof).has_value());
  }
  EXPECT_EQ(f.rpm.deposit_of(f.addr(0)), U256{1'000'000'000});
  EXPECT_FALSE(f.rpm.is_excluded(f.addr(0)));
}

TEST(RpmPenalty, DuplicateReportsDoNotReachThreshold) {
  Fixture f;
  std::vector<Hash32> leaves;
  const BlockSummary block = f.summary(0, 2, U256{0}, &leaves);
  const crypto::MerkleProof proof = crypto::merkle_prove(leaves, 0);
  for (int repeat = 0; repeat < 5; ++repeat) {
    EXPECT_FALSE(
        f.rpm.report(f.addr(1), block, 1, leaves[0], proof).has_value());
  }
  EXPECT_FALSE(f.rpm.is_excluded(f.addr(0)));
}

TEST(RpmPenalty, CorrectValidatorsNeverSlashedByRewardPath) {
  Fixture f;
  // Many legitimate rewards; nobody reported; all deposits only grow.
  for (std::uint64_t round = 0; round < 10; ++round) {
    for (std::size_t proposer = 0; proposer < 4; ++proposer) {
      const BlockSummary block = f.summary(proposer, 2, U256{50});
      for (std::size_t caller = 0; caller < 4; ++caller) {
        f.rpm.prop_received(f.addr(caller), block,
                            static_cast<std::uint32_t>(proposer), round);
      }
    }
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GT(f.rpm.deposit_of(f.addr(i)), U256{1'000'000'000});
    EXPECT_FALSE(f.rpm.is_excluded(f.addr(i)));
  }
  EXPECT_TRUE(f.rpm.slash_events().empty());
}

TEST(RpmPenalty, SecondSlashOfSameOffenseIgnored) {
  Fixture f;
  std::vector<Hash32> leaves;
  const BlockSummary block = f.summary(3, 2, U256{0}, &leaves);
  const crypto::MerkleProof proof = crypto::merkle_prove(leaves, 1);
  f.rpm.report(f.addr(0), block, 4, leaves[1], proof);
  f.rpm.report(f.addr(1), block, 4, leaves[1], proof);
  ASSERT_TRUE(f.rpm.report(f.addr(2), block, 4, leaves[1], proof).has_value());
  // A fourth report of the same offense cannot slash again.
  EXPECT_FALSE(f.rpm.report(f.addr(0), block, 4, leaves[1], proof).has_value());
  EXPECT_EQ(f.rpm.slash_events().size(), 1u);
}

}  // namespace
}  // namespace srbb::rpm
